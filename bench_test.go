// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation (the experiment index in DESIGN.md §4). Each
// benchmark regenerates its artifact through the same driver used by
// cmd/ftspm-bench and asserts the headline shape the paper reports, so
//
//	go test -bench=. -benchmem
//
// both times the reproduction and re-checks every claim.
package ftspm_test

import (
	"context"
	"testing"

	"ftspm"
	"ftspm/internal/experiments"
	"ftspm/internal/resultcache"
	"ftspm/internal/spm"
)

// benchOpts trades trace length for wall-clock time; the shapes asserted
// below hold from scale ~0.05 upward.
var benchOpts = experiments.Options{Scale: 0.1}

// sweepCache shares the expensive 12x3 sweep across benchmarks within
// one run.
var sweepCache *experiments.Sweep

func sweep(b *testing.B) *experiments.Sweep {
	b.Helper()
	if sweepCache == nil {
		sw, err := experiments.RunSweep(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		sweepCache = sw
	}
	return sweepCache
}

func BenchmarkTableI_CaseStudyProfile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.TableI(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		if len(t.Rows) != 8 {
			b.Fatalf("Table I rows = %d, want the 8 case-study blocks", len(t.Rows))
		}
	}
}

func BenchmarkTableII_CaseStudyMapping(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.TableII(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		if len(t.Rows) != 8 {
			b.Fatalf("Table II rows = %d", len(t.Rows))
		}
	}
}

func BenchmarkTableIII_Endurance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, _, err := experiments.TableIII(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		if res.Improvement() < 100 {
			b.Fatalf("endurance improvement %.0fx, want orders of magnitude", res.Improvement())
		}
	}
}

func BenchmarkTableIV_Configurations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.TableIV()
		if err != nil {
			b.Fatal(err)
		}
		if len(t.Rows) < 7 {
			b.Fatal("Table IV incomplete")
		}
	}
}

func BenchmarkFig2_CaseStudyDistribution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.Fig2(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		if len(t.Rows) != 3 {
			b.Fatal("Fig. 2 must report all three regions")
		}
	}
}

func BenchmarkCaseStudy_Scalars(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cs, err := experiments.CaseStudy(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		if cs.ReliabilityFTSPM <= cs.ReliabilityBaseline {
			b.Fatal("FTSPM must beat the baseline reliability")
		}
	}
}

func BenchmarkFig3_EnergyPerAccess(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig3(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4_SuiteDistribution(b *testing.B) {
	sw := sweep(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t, err := experiments.Fig4(sw)
		if err != nil {
			b.Fatal(err)
		}
		if len(t.Rows) < 12 {
			b.Fatal("Fig. 4 incomplete")
		}
	}
}

func BenchmarkFig5_Vulnerability(b *testing.B) {
	sw := sweep(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, sum, err := experiments.Fig5(sw)
		if err != nil {
			b.Fatal(err)
		}
		if sum.GeoMeanRatio < 4 {
			b.Fatalf("vulnerability improvement %.1fx, want ~7x", sum.GeoMeanRatio)
		}
	}
}

func BenchmarkFig6_StaticEnergy(b *testing.B) {
	sw := sweep(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, vsSRAM, _, err := experiments.Fig6(sw)
		if err != nil {
			b.Fatal(err)
		}
		if vsSRAM > 0.7 {
			b.Fatalf("static FTSPM/SRAM = %.2f, want ~0.45-0.55", vsSRAM)
		}
	}
}

func BenchmarkFig7_DynamicEnergy(b *testing.B) {
	sw := sweep(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, vsSRAM, vsSTT, err := experiments.Fig7(sw)
		if err != nil {
			b.Fatal(err)
		}
		if vsSRAM > 0.65 || vsSTT > 0.6 {
			b.Fatalf("dynamic ratios %.2f/%.2f out of shape", vsSRAM, vsSTT)
		}
	}
}

func BenchmarkFig8_Endurance(b *testing.B) {
	sw := sweep(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, sum, err := experiments.Fig8(sw)
		if err != nil {
			b.Fatal(err)
		}
		if sum.GeoMeanRatio < 10 {
			b.Fatalf("endurance improvement %.0fx, want >> 1", sum.GeoMeanRatio)
		}
	}
}

func BenchmarkPerf_Overhead(b *testing.B) {
	sw := sweep(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, ratio, err := experiments.PerfOverhead(sw)
		if err != nil {
			b.Fatal(err)
		}
		if ratio > 1.02 {
			b.Fatalf("FTSPM/SRAM cycles = %.3f, want <= ~1", ratio)
		}
	}
}

// BenchmarkEvaluate times one full single-run pipeline — trace
// generation, profile, MDA, simulate, AVF, endurance — with allocation
// counters, so the cost of trace materialization stays visible.
func BenchmarkEvaluate(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out, err := ftspm.Evaluate("sha", ftspm.FTSPM, benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		if out.Sim.Cycles == 0 {
			b.Fatal("empty run")
		}
	}
}

// BenchmarkRunSweep times the full 12-workload x 3-structure sweep, the
// unit of every figure regeneration and fault-injection campaign.
func BenchmarkRunSweep(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sw, err := experiments.RunSweep(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		if len(sw.Outcomes) != 12 {
			b.Fatalf("sweep rows = %d, want 12", len(sw.Outcomes))
		}
	}
}

// BenchmarkRunSweepWarmCache times the same sweep served from a warm
// content-addressed result cache (internal/resultcache): the cache is
// filled once outside the timer, then every iteration answers all 36
// jobs from memoized bytes. The ratio against BenchmarkRunSweep is the
// memoization speedup the daemon and fabric coordinator inherit.
func BenchmarkRunSweepWarmCache(b *testing.B) {
	b.ReportAllocs()
	c, err := resultcache.Open(resultcache.Config{})
	if err != nil {
		b.Fatal(err)
	}
	cc := experiments.CampaignConfig{Cache: c}
	if _, _, err := experiments.RunSweepCampaign(context.Background(), benchOpts, cc); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sw, st, err := experiments.RunSweepCampaign(context.Background(), benchOpts, cc)
		if err != nil {
			b.Fatal(err)
		}
		if len(sw.Outcomes) != 12 || st.Failed != 0 {
			b.Fatalf("degenerate warm sweep: %d rows, %d failed", len(sw.Outcomes), st.Failed)
		}
	}
	b.StopTimer()
	if s := c.Stats(); s.Hits == 0 || s.Misses > 36 {
		b.Fatalf("warm iterations were not cache-served: %+v", s)
	}
}

// BenchmarkRunSoak times one Monte-Carlo soak campaign — the paper's
// live-injection stress test — through both engines: "packed" is the
// bit-parallel SWAR path (internal/simd, up to 64 trials per trace
// pass), "scalar" forces one full simulation per trial. The two paths
// produce byte-identical reports (see the lane-equivalence tests); the
// ratio of these two numbers is the packed engine's speedup.
func BenchmarkRunSoak(b *testing.B) {
	run := func(lanes int) func(*testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			rec := spm.DefaultRecovery()
			opts := experiments.SoakOptions{
				Trials: 32, Scale: 0.02, StrikesPerAccess: 0.01, Seed: 1,
				Recovery: &rec, Lanes: lanes,
			}
			for i := 0; i < b.N; i++ {
				rep, err := experiments.RunSoak(opts)
				if err != nil {
					b.Fatal(err)
				}
				if rep.Trials != opts.Trials || rep.Strikes == 0 {
					b.Fatalf("degenerate soak report: %+v", rep)
				}
			}
		}
	}
	b.Run("packed", run(0))
	b.Run("scalar", run(1))
}

// BenchmarkPipeline_SingleRun times the full single-workload pipeline —
// profile, MDA, simulate, AVF, endurance — the unit everything above is
// built from.
func BenchmarkPipeline_SingleRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out, err := ftspm.Evaluate("sha", ftspm.FTSPM, benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		if out.Sim.Cycles == 0 {
			b.Fatal("empty run")
		}
	}
}

// Ablation benches: design-choice studies beyond the paper's own
// evaluation (DESIGN.md §4 extensions).

func BenchmarkAblation_ScheduledVsOnDemand(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c, err := experiments.AblationSchedule("casestudy", benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		if c.ScheduledTransferCycles > c.OnDemandTransferCycles {
			b.Fatal("static schedule lost to on-demand LRU")
		}
	}
}

func BenchmarkAblation_RegionSplit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, _, err := experiments.AblationRegionSplit(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		if len(points) != 5 {
			b.Fatal("incomplete split sweep")
		}
	}
}

func BenchmarkAblation_Priorities(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationPriorities("basicmath", benchOpts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation_WriteThreshold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.AblationWriteThreshold(benchOpts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation_Interleaving(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, _, err := experiments.AblationInterleaving(20000, 2013)
		if err != nil {
			b.Fatal(err)
		}
		if points[2].DRE <= points[1].DRE {
			b.Fatal("interleaving did not improve correction rate")
		}
	}
}

func BenchmarkAblation_Scrubbing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.AblationScrubbing(2000, 2013); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation_RelatedWork(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.RelatedWork(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 4 {
			b.Fatal("incomplete related-work comparison")
		}
	}
}

func BenchmarkAblation_Retention(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.AblationRetention("sha", benchOpts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation_Granularity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, _, err := experiments.AblationGranularity("matmul", benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		if points[1].UnmappedBytes != 0 {
			b.Fatal("refinement left unmapped bytes")
		}
	}
}

func BenchmarkValidation_LiveInjection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.ValidateAVF("casestudy", 0.05, 2013, benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Structure == ftspm.PureSTT && r.ConsumedErrors() != 0 {
				b.Fatal("immune structure consumed errors")
			}
		}
	}
}

func BenchmarkAblation_TechNode(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, _, err := experiments.AblationTechNode("casestudy", benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		if len(points) != 4 {
			b.Fatal("incomplete node sweep")
		}
	}
}

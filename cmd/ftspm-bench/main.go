// Command ftspm-bench regenerates every table and figure of the paper's
// evaluation (the experiment index in DESIGN.md §4), printing the results
// and optionally writing text + CSV files into a results directory.
//
// The full-suite sweep runs as a crash-safe campaign: with -checkpoint
// every finished (workload, structure) job is journaled, and -resume
// skips finished jobs so an interrupted run continues where it stopped,
// producing output byte-identical to an uninterrupted run. SIGINT or
// SIGTERM drains in-flight jobs, flushes the checkpoint, salvages
// partial results, and exits with status 3.
//
// Usage:
//
//	ftspm-bench [-scale 0.25] [-out results] [-json file]
//	            [-checkpoint sweep.ckpt] [-resume] [-cache file]
//	            [-parallel N] [-retries N] [-job-timeout d]
//	            [-workers host1:8077,host2:8077] [-lease 60s]
//	            [-audit-frac 0.1] [-audit-seed 0]
//
// With -workers the sweep campaign is sharded across the listed ftspmd
// daemons by the distributed fabric (internal/fabric); the merged sweep
// and its -checkpoint journal are byte-identical to a single-node run.
// The single-machine experiments (tables, case study, ablations) always
// run locally.
//
// -cache memoizes sweep jobs in a content-addressed result cache file
// (DESIGN.md §16): a warm re-run of the same sweep answers jobs from
// the cache instead of recomputing, byte-identical to a cold run. The
// file is versioned by the build fingerprint, and with -workers it
// becomes the coordinator's pre-merge cache (hits never leave the
// machine; only locally-computed results ever enter the file).
//
// Exit status: 0 success, 1 error, 2 bad flags, 3 interrupted (partial
// results salvaged; resumable).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"time"

	"ftspm/internal/campaign"
	"ftspm/internal/experiments"
	"ftspm/internal/fabric"
	"ftspm/internal/fabric/wire"
	"ftspm/internal/report"
	"ftspm/internal/resultcache"
)

func main() {
	ctx, stop := campaign.SignalContext(context.Background())
	err := run(ctx, os.Args[1:], os.Stdout)
	stop()
	if err != nil {
		fmt.Fprintln(os.Stderr, "ftspm-bench:", err)
		os.Exit(campaign.ExitCode(err))
	}
}

// sweepMeasurement is one BENCH_sweep.json / -perfjson record: the
// wall-clock and allocation cost of a full RunSweep, so the sweep
// engine's perf trajectory is tracked across PRs.
type sweepMeasurement struct {
	Benchmark  string  `json:"benchmark"`
	Scale      float64 `json:"scale"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	WallMS     float64 `json:"wall_ms"`
	AllocBytes uint64  `json:"alloc_bytes"`
	Allocs     uint64  `json:"allocs"`
	// Cache carries the result-cache counters when -cache was in play,
	// so warm and cold runs are distinguishable in the perf history.
	Cache *resultcache.Stats `json:"cache,omitempty"`
}

// appendSweepMeasurement appends one JSON line describing the sweep
// that just ran (allocation deltas are process-wide, so run with a
// quiet process for clean numbers). The record is fsynced before close:
// append-only history cannot be renamed into place atomically, but it
// must survive a crash right after the run it measures.
func appendSweepMeasurement(path string, scale float64, wall time.Duration, before runtime.MemStats, rc *resultcache.Cache) error {
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	m := sweepMeasurement{
		Benchmark:  "RunSweep",
		Scale:      scale,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		WallMS:     float64(wall.Microseconds()) / 1e3,
		AllocBytes: after.TotalAlloc - before.TotalAlloc,
		Allocs:     after.Mallocs - before.Mallocs,
	}
	if rc != nil {
		cs := rc.Stats()
		m.Cache = &cs
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := json.NewEncoder(f).Encode(m); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	return f.Close()
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ftspm-bench", flag.ContinueOnError)
	scale := fs.Float64("scale", 0.25, "trace length relative to the reference")
	outDir := fs.String("out", "", "directory for .txt/.csv result files (empty: stdout only)")
	ablations := fs.Bool("ablations", false, "also run the design-choice ablation studies")
	jsonPath := fs.String("json", "", "also write a machine-readable sweep summary to this file")
	cpuprofile := fs.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memprofile := fs.String("memprofile", "", "write a pprof heap profile at exit to this file")
	perfJSON := fs.String("perfjson", "", "append a sweep wall-clock/allocation measurement to this JSON-lines file")
	checkpoint := fs.String("checkpoint", "", "journal finished sweep jobs to this file (crash-safe campaign)")
	resume := fs.Bool("resume", false, "skip sweep jobs already journaled in -checkpoint")
	cachePath := fs.String("cache", "", "memoize sweep jobs in this content-addressed cache file (warm runs skip recomputing)")
	parallel := fs.Int("parallel", 0, "sweep worker pool size, local or per fabric chunk (0: GOMAXPROCS)")
	workers := fs.String("workers", "", "comma-separated ftspmd worker URLs: distribute the sweep over the fabric")
	lease := fs.Duration("lease", 0, "fabric heartbeat lease before a silent worker is declared dead (0: 60s)")
	auditFrac := fs.Float64("audit-frac", 0, "fraction of fabric results to audit by re-execution on a different executor (0 disables)")
	auditSeed := fs.Int64("audit-seed", 0, "seed for the deterministic audit job selection")
	retries := fs.Int("retries", 0, "per-job retries before a sweep job is recorded failed")
	jobTimeout := fs.Duration("job-timeout", 0, "per-job deadline for sweep jobs (0: none)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *scale <= 0 {
		return campaign.Usagef("-scale must be > 0 (got %g)", *scale)
	}
	if *auditFrac < 0 || *auditFrac > 1 {
		return campaign.Usagef("-audit-frac must be a probability in [0, 1] (got %g)", *auditFrac)
	}
	if *auditFrac > 0 && *workers == "" {
		return campaign.Usagef("-audit-frac requires -workers (audits re-execute fabric results)")
	}
	cc := experiments.CampaignConfig{
		Checkpoint: *checkpoint,
		Resume:     *resume,
		Workers:    *parallel,
		JobTimeout: *jobTimeout,
		Retries:    *retries,
	}
	if err := cc.Validate(); err != nil {
		return err
	}
	var rc *resultcache.Cache
	if *cachePath != "" {
		var err error
		rc, err = resultcache.Open(resultcache.Config{Path: *cachePath, Fingerprint: wire.Fingerprint()})
		if err != nil {
			return fmt.Errorf("cache: %w", err)
		}
		defer rc.Close()
		cc.Cache = rc
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "ftspm-bench: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the retained-heap picture
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "ftspm-bench: memprofile:", err)
			}
		}()
	}
	opts := experiments.Options{Scale: *scale}

	emit := func(name string, t *report.Table) error {
		if err := t.Render(out); err != nil {
			return err
		}
		fmt.Fprintln(out)
		if *outDir == "" {
			return nil
		}
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return err
		}
		if err := campaign.WriteAtomic(filepath.Join(*outDir, name+".txt"), 0o644, t.Render); err != nil {
			return err
		}
		return campaign.WriteAtomic(filepath.Join(*outDir, name+".csv"), 0o644, t.RenderCSV)
	}

	// Configuration and technology tables need no simulation.
	t4, err := experiments.TableIV()
	if err != nil {
		return err
	}
	if err := emit("table4_configurations", t4); err != nil {
		return err
	}
	f3, err := experiments.Fig3()
	if err != nil {
		return err
	}
	if err := emit("fig3_energy_per_access", f3); err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}

	// Case-study experiments (Section IV).
	t1, err := experiments.TableI(opts)
	if err != nil {
		return err
	}
	if err := emit("table1_case_study_profile", t1); err != nil {
		return err
	}
	t2, err := experiments.TableII(opts)
	if err != nil {
		return err
	}
	if err := emit("table2_case_study_mapping", t2); err != nil {
		return err
	}
	f2, err := experiments.Fig2(opts)
	if err != nil {
		return err
	}
	if err := emit("fig2_case_study_distribution", f2); err != nil {
		return err
	}
	cs, err := experiments.CaseStudy(opts)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "Section IV scalars: reliability %s vs %s baseline; dynamic %s of baseline; static %s of baseline; perf overhead %s\n\n",
		report.Pct(cs.ReliabilityFTSPM), report.Pct(cs.ReliabilityBaseline),
		report.Pct(cs.DynamicVsSRAM), report.Pct(cs.StaticVsSRAM),
		report.Pct(cs.PerfOverheadVsSRAM))

	_, t3, err := experiments.TableIII(opts)
	if err != nil {
		return err
	}
	if err := emit("table3_endurance", t3); err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}

	// Full-suite sweep (Section V figures), as a crash-safe campaign.
	fmt.Fprintln(out, "running the 12-workload x 3-structure sweep ...")
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	sweepStart := time.Now()
	var sw *experiments.Sweep
	var status *experiments.CampaignStatus
	var runErr error
	if *workers != "" {
		sw, status, runErr = fabric.RunSweep(ctx, fabric.Config{
			Workers:    fabric.ParseWorkers(*workers),
			Parallel:   *parallel,
			Lease:      *lease,
			Retries:    *retries,
			JobTimeout: *jobTimeout,
			Checkpoint: *checkpoint,
			Resume:     *resume,
			AuditFrac:  *auditFrac,
			AuditSeed:  *auditSeed,
			Cache:      rc,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "ftspm-bench: "+format+"\n", args...)
			},
		}, opts)
	} else {
		sw, status, runErr = experiments.RunSweepCampaign(ctx, opts, cc)
	}
	if sw == nil {
		return runErr // campaign setup failure (checkpoint, flags)
	}
	if status.Resumed > 0 {
		fmt.Fprintf(out, "resumed %d finished jobs from %s\n", status.Resumed, *checkpoint)
	}
	fabric.PrintAuditSummary(out, status)
	if runErr != nil || status.Failed > 0 {
		return salvageSweep(out, sw, status, *jsonPath, runErr)
	}
	if *perfJSON != "" {
		if err := appendSweepMeasurement(*perfJSON, *scale, time.Since(sweepStart), before, rc); err != nil {
			return err
		}
		fmt.Fprintf(out, "appended sweep measurement to %s\n", *perfJSON)
	}
	if rc != nil {
		cs := rc.Stats()
		fmt.Fprintf(out, "result cache: %d hits, %d misses, %d bypasses (%d entries)\n",
			cs.Hits, cs.Misses, cs.Bypasses, cs.Entries)
	}
	f4, err := experiments.Fig4(sw)
	if err != nil {
		return err
	}
	if err := emit("fig4_suite_distribution", f4); err != nil {
		return err
	}
	f5, sum5, err := experiments.Fig5(sw)
	if err != nil {
		return err
	}
	if err := emit("fig5_vulnerability", f5); err != nil {
		return err
	}
	f6, statSRAM, statSTT, err := experiments.Fig6(sw)
	if err != nil {
		return err
	}
	if err := emit("fig6_static_energy", f6); err != nil {
		return err
	}
	f7, dynSRAM, dynSTT, err := experiments.Fig7(sw)
	if err != nil {
		return err
	}
	if err := emit("fig7_dynamic_energy", f7); err != nil {
		return err
	}
	f8, sum8, err := experiments.Fig8(sw)
	if err != nil {
		return err
	}
	if err := emit("fig8_endurance", f8); err != nil {
		return err
	}
	fp, perfRatio, err := experiments.PerfOverhead(sw)
	if err != nil {
		return err
	}
	if err := emit("perf_overhead", fp); err != nil {
		return err
	}

	if *jsonPath != "" {
		summary, err := experiments.Summarize(sw)
		if err != nil {
			return err
		}
		if err := campaign.WriteAtomic(*jsonPath, 0o644, summary.WriteJSON); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote JSON summary to %s\n", *jsonPath)
	}

	if *ablations {
		if err := ctx.Err(); err != nil {
			return err
		}
		fmt.Fprintln(out, "running ablation studies ...")
		at, err := experiments.AblationScheduleTable(opts)
		if err != nil {
			return err
		}
		if err := emit("ablation_schedule", at); err != nil {
			return err
		}
		_, rt, err := experiments.AblationRegionSplit(opts)
		if err != nil {
			return err
		}
		if err := emit("ablation_region_split", rt); err != nil {
			return err
		}
		pt, err := experiments.AblationPriorities("basicmath", opts)
		if err != nil {
			return err
		}
		if err := emit("ablation_priorities", pt); err != nil {
			return err
		}
		_, wt, err := experiments.AblationWriteThreshold(opts)
		if err != nil {
			return err
		}
		if err := emit("ablation_write_threshold", wt); err != nil {
			return err
		}
		_, it, err := experiments.AblationInterleaving(50000, 2013)
		if err != nil {
			return err
		}
		if err := emit("ablation_interleaving", it); err != nil {
			return err
		}
		_, st, err := experiments.AblationScrubbing(3000, 2013)
		if err != nil {
			return err
		}
		if err := emit("ablation_scrubbing", st); err != nil {
			return err
		}
		_, rw, err := experiments.RelatedWork(opts)
		if err != nil {
			return err
		}
		if err := emit("related_work", rw); err != nil {
			return err
		}
		_, ret, err := experiments.AblationRetention("sha", opts)
		if err != nil {
			return err
		}
		if err := emit("ablation_retention", ret); err != nil {
			return err
		}
		for _, wl := range []string{"casestudy", "matmul"} {
			_, gt, err := experiments.AblationGranularity(wl, opts)
			if err != nil {
				return err
			}
			if err := emit("ablation_granularity_"+wl, gt); err != nil {
				return err
			}
		}
		_, vt, err := experiments.ValidateAVF("casestudy", 0.05, 2013, opts)
		if err != nil {
			return err
		}
		if err := emit("validation_live_injection", vt); err != nil {
			return err
		}
		_, nt, err := experiments.AblationTechNode("casestudy", opts)
		if err != nil {
			return err
		}
		if err := emit("ablation_tech_node", nt); err != nil {
			return err
		}
	}

	fmt.Fprintln(out, "Headline results (paper targets in parentheses):")
	fmt.Fprintf(out, "  vulnerability improvement: %.1fx geo-mean (paper ~7x)\n", sum5.GeoMeanRatio)
	fmt.Fprintf(out, "  dynamic energy: %.0f%% below pure SRAM (47%%), %.0f%% below pure STT-RAM (77%%)\n",
		(1-dynSRAM)*100, (1-dynSTT)*100)
	fmt.Fprintf(out, "  static energy: %.0f%% below pure SRAM (45-55%%); pure STT-RAM lowest (FTSPM/STT %.2f)\n",
		(1-statSRAM)*100, statSTT)
	fmt.Fprintf(out, "  endurance improvement: %.0fx geo-mean (paper ~3 orders of magnitude)\n", sum8.GeoMeanRatio)
	fmt.Fprintf(out, "  performance overhead vs pure SRAM: %.1f%% (paper <1%%)\n", (perfRatio-1)*100)
	return nil
}

// salvageSweep reports an interrupted or partially-failed sweep: it
// writes the partial JSON summary (explicitly marked incomplete) when
// requested, prints what happened, and returns the campaign error so
// the process exits non-zero (status 3 when resumable).
func salvageSweep(out io.Writer, sw *experiments.Sweep, status *experiments.CampaignStatus,
	jsonPath string, runErr error) error {
	for _, f := range status.Failures {
		fmt.Fprintf(out, "sweep job %s failed after %d attempt(s): %s\n", f.ID, f.Attempts, f.Error)
		if f.Stack != "" {
			fmt.Fprintf(out, "%s\n", f.Stack)
		}
	}
	fmt.Fprintf(out, "sweep incomplete: %d done, %d failed, %d pending\n",
		status.Completed, status.Failed, status.Pending)
	if jsonPath != "" {
		summary, err := experiments.SummarizePartial(sw, status)
		if err != nil {
			return errors.Join(runErr, err)
		}
		if err := campaign.WriteAtomic(jsonPath, 0o644, summary.WriteJSON); err != nil {
			return errors.Join(runErr, err)
		}
		fmt.Fprintf(out, "salvaged partial JSON summary to %s\n", jsonPath)
	}
	if runErr != nil {
		return runErr
	}
	return status.FirstFailure()
}

package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ftspm/internal/campaign"
)

func TestRunBenchEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep")
	}
	dir := t.TempDir()
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-scale", "0.05", "-out", dir}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Table I", "Table II", "Table III", "Table IV",
		"Fig. 2", "Fig. 3", "Fig. 4", "Fig. 5", "Fig. 6", "Fig. 7", "Fig. 8",
		"Headline results",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in bench output", want)
		}
	}
	// Every artifact lands as .txt and .csv.
	for _, name := range []string{
		"table1_case_study_profile", "table2_case_study_mapping",
		"table3_endurance", "table4_configurations",
		"fig2_case_study_distribution", "fig3_energy_per_access",
		"fig4_suite_distribution", "fig5_vulnerability",
		"fig6_static_energy", "fig7_dynamic_energy", "fig8_endurance",
		"perf_overhead",
	} {
		for _, ext := range []string{".txt", ".csv"} {
			if _, err := os.Stat(filepath.Join(dir, name+ext)); err != nil {
				t.Errorf("missing artifact %s%s: %v", name, ext, err)
			}
		}
	}
}

func TestRunBenchBadFlag(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-nope"}, &buf); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestRunBenchAblationsAndJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation suite is slow")
	}
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "summary.json")
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-scale", "0.05", "-ablations", "-out", dir, "-json", jsonPath}, &buf); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"ablation_schedule", "ablation_region_split", "ablation_priorities",
		"ablation_write_threshold", "ablation_interleaving", "ablation_scrubbing",
		"related_work", "ablation_retention",
		"ablation_granularity_casestudy", "ablation_granularity_matmul",
		"validation_live_injection", "ablation_tech_node",
	} {
		if _, err := os.Stat(filepath.Join(dir, name+".txt")); err != nil {
			t.Errorf("missing ablation artifact %s: %v", name, err)
		}
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "vulnerability_improvement") {
		t.Error("JSON summary missing headline field")
	}
}

func TestRunBenchUsageErrors(t *testing.T) {
	cases := [][]string{
		{"-resume"}, // resume requires -checkpoint
		{"-scale", "0"},
		{"-retries", "-2"},
	}
	for _, args := range cases {
		err := run(context.Background(), args, &bytes.Buffer{})
		if err == nil {
			t.Errorf("args %v accepted", args)
			continue
		}
		if campaign.ExitCode(err) != campaign.ExitUsage {
			t.Errorf("args %v: exit code %d, want %d (err: %v)",
				args, campaign.ExitCode(err), campaign.ExitUsage, err)
		}
	}
}

// Command ftspm-map runs the Mapping Determiner Algorithm (Algorithm 1)
// on a workload's profile and prints the resulting placement — the
// Table II view — together with the budget estimates.
//
// Usage:
//
//	ftspm-map [-workload casestudy] [-structure ftspm] [-priority reliability]
//	          [-scale 0.25] [-csv]
//	          [-cpuprofile f] [-memprofile f] [-perfjson f]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"ftspm/internal/campaign"
	"ftspm/internal/core"
	"ftspm/internal/profile"
	"ftspm/internal/report"
	"ftspm/internal/workloads"
)

func main() {
	ctx, stop := campaign.SignalContext(context.Background())
	err := run(ctx, os.Args[1:], os.Stdout)
	stop()
	if err != nil {
		fmt.Fprintln(os.Stderr, "ftspm-map:", err)
		os.Exit(campaign.ExitCode(err))
	}
}

// mapMeasurement is one -perfjson record: the wall-clock and allocation
// cost of the profile + MDA hot path, mirroring the measurement shape
// ftspm-bench and ftspm-soak append so one tool can chart all three.
type mapMeasurement struct {
	Benchmark  string  `json:"benchmark"`
	Workload   string  `json:"workload"`
	Structure  string  `json:"structure"`
	Scale      float64 `json:"scale"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	WallMS     float64 `json:"wall_ms"`
	AllocBytes uint64  `json:"alloc_bytes"`
	Allocs     uint64  `json:"allocs"`
}

// appendMapMeasurement appends one JSON line describing the mapping
// that just ran (allocation deltas are process-wide, so run with a
// quiet process for clean numbers). The record is fsynced before close.
func appendMapMeasurement(path string, m mapMeasurement, wall time.Duration, before runtime.MemStats) error {
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	m.Benchmark = "MapBlocks"
	m.GOMAXPROCS = runtime.GOMAXPROCS(0)
	m.WallMS = float64(wall.Microseconds()) / 1e3
	m.AllocBytes = after.TotalAlloc - before.TotalAlloc
	m.Allocs = after.Mallocs - before.Mallocs
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := json.NewEncoder(f).Encode(m); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	return f.Close()
}

func parseStructure(s string) (core.Structure, error) {
	switch strings.ToLower(s) {
	case "ftspm":
		return core.StructFTSPM, nil
	case "sram", "pure-sram":
		return core.StructPureSRAM, nil
	case "stt", "stt-ram", "pure-stt":
		return core.StructPureSTT, nil
	default:
		return 0, campaign.Usagef("unknown structure %q (ftspm, sram, stt)", s)
	}
}

func parsePriority(s string) (core.Priority, error) {
	switch strings.ToLower(s) {
	case "reliability":
		return core.PriorityReliability, nil
	case "performance":
		return core.PriorityPerformance, nil
	case "power":
		return core.PriorityPower, nil
	case "endurance":
		return core.PriorityEndurance, nil
	default:
		return 0, campaign.Usagef("unknown priority %q (reliability, performance, power, endurance)", s)
	}
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ftspm-map", flag.ContinueOnError)
	workload := fs.String("workload", workloads.CaseStudyName, "workload name")
	structure := fs.String("structure", "ftspm", "SPM structure: ftspm, sram, or stt")
	priority := fs.String("priority", "reliability",
		"MDA optimization priority: reliability, performance, power, or endurance")
	scale := fs.Float64("scale", 0.25, "trace length relative to the reference")
	asCSV := fs.Bool("csv", false, "emit CSV instead of an aligned table")
	cpuprofile := fs.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memprofile := fs.String("memprofile", "", "write a pprof heap profile at exit to this file")
	perfJSON := fs.String("perfjson", "", "append a profile+mapping wall-clock/allocation measurement to this JSON-lines file")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *scale <= 0 {
		return campaign.Usagef("-scale must be > 0 (got %g)", *scale)
	}
	s, err := parseStructure(*structure)
	if err != nil {
		return err
	}
	prio, err := parsePriority(*priority)
	if err != nil {
		return err
	}
	w, err := workloads.ByName(*workload)
	if err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "ftspm-map: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the retained-heap picture
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "ftspm-map: memprofile:", err)
			}
		}()
	}

	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	prof, err := profile.Run(w.Program(), w.TraceStream(*scale))
	if err != nil {
		return err
	}
	spec, err := core.NewSpec(s)
	if err != nil {
		return err
	}
	m, err := core.MapBlocks(prof, spec, core.DefaultThresholds(), prio)
	if err != nil {
		return err
	}
	if *perfJSON != "" {
		meas := mapMeasurement{Workload: w.Name, Structure: s.String(), Scale: *scale}
		if err := appendMapMeasurement(*perfJSON, meas, time.Since(start), before); err != nil {
			return err
		}
	}

	t := report.New(
		fmt.Sprintf("MDA placement: %s on %v (priority %v)", w.Name, s, prio),
		"Block", "Mapped", "Region", "Susceptibility", "Reason")
	for _, d := range m.Decisions {
		mapped, region := "No", "-"
		if d.Mapped {
			mapped, region = "Yes", d.Target.String()
		}
		t.AddRow(d.Block.Name, mapped, region,
			report.Float(prof.Blocks[d.Block.ID].Susceptibility(), 0), d.Reason)
	}
	if *asCSV {
		return t.RenderCSV(out)
	}
	if err := t.Render(out); err != nil {
		return err
	}
	_, err = fmt.Fprintf(out,
		"\nestimated perf overhead %.2f%%, energy overhead %.2f%%, write threshold %.0f words\n",
		m.EstPerfOverhead*100, m.EstEnergyOverhead*100, m.WriteThresholdWords)
	return err
}

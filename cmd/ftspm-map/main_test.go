package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ftspm/internal/core"
)

func TestParseStructure(t *testing.T) {
	tests := map[string]core.Structure{
		"ftspm": core.StructFTSPM, "FTSPM": core.StructFTSPM,
		"sram": core.StructPureSRAM, "pure-sram": core.StructPureSRAM,
		"stt": core.StructPureSTT, "stt-ram": core.StructPureSTT, "pure-stt": core.StructPureSTT,
	}
	for in, want := range tests {
		got, err := parseStructure(in)
		if err != nil || got != want {
			t.Errorf("parseStructure(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := parseStructure("dram"); err == nil {
		t.Error("bad structure accepted")
	}
}

func TestParsePriority(t *testing.T) {
	tests := map[string]core.Priority{
		"reliability": core.PriorityReliability,
		"performance": core.PriorityPerformance,
		"power":       core.PriorityPower,
		"Endurance":   core.PriorityEndurance,
	}
	for in, want := range tests {
		got, err := parsePriority(in)
		if err != nil || got != want {
			t.Errorf("parsePriority(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := parsePriority("speed"); err == nil {
		t.Error("bad priority accepted")
	}
}

func TestRunMapTableII(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-workload", "casestudy", "-scale", "0.1"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Array1", "SRAM(ECC)", "SRAM(parity)", "write threshold"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestRunMapCSVAndErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-workload", "sha", "-scale", "0.05", "-csv"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "Block,") {
		t.Error("csv header missing")
	}
	if err := run(context.Background(), []string{"-structure", "bogus"}, &buf); err == nil {
		t.Error("bad structure accepted")
	}
	if err := run(context.Background(), []string{"-priority", "bogus"}, &buf); err == nil {
		t.Error("bad priority accepted")
	}
	if err := run(context.Background(), []string{"-workload", "bogus"}, &buf); err == nil {
		t.Error("bad workload accepted")
	}
}

// TestRunMapPerfArtifacts drives the new profiling flags: -perfjson
// appends a MapBlocks measurement line and the pprof flags produce
// non-empty profile files.
func TestRunMapPerfArtifacts(t *testing.T) {
	dir := t.TempDir()
	perf := filepath.Join(dir, "perf.json")
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	var buf bytes.Buffer
	err := run(context.Background(), []string{
		"-workload", "casestudy", "-scale", "0.05",
		"-perfjson", perf, "-cpuprofile", cpu, "-memprofile", mem,
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	// Two invocations append two JSON lines.
	if err := run(context.Background(), []string{
		"-workload", "casestudy", "-scale", "0.05", "-perfjson", perf,
	}, &buf); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(perf)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 2 {
		t.Fatalf("perfjson lines = %d, want 2:\n%s", len(lines), data)
	}
	for _, line := range lines {
		var m mapMeasurement
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("bad perfjson line %q: %v", line, err)
		}
		if m.Benchmark != "MapBlocks" || m.Workload != "casestudy" || m.WallMS <= 0 {
			t.Errorf("unexpected measurement: %+v", m)
		}
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil || st.Size() == 0 {
			t.Errorf("profile %s missing or empty: %v", p, err)
		}
	}
}

// Command ftspm-profile profiles a workload and prints its block-level
// profile — the Table I columns — optionally as CSV.
//
// Usage:
//
//	ftspm-profile [-workload casestudy] [-scale 0.25] [-csv]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"ftspm/internal/campaign"
	"ftspm/internal/profile"
	"ftspm/internal/report"
	"ftspm/internal/workloads"
)

func main() {
	ctx, stop := campaign.SignalContext(context.Background())
	err := run(ctx, os.Args[1:], os.Stdout)
	stop()
	if err != nil {
		fmt.Fprintln(os.Stderr, "ftspm-profile:", err)
		os.Exit(campaign.ExitCode(err))
	}
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ftspm-profile", flag.ContinueOnError)
	workload := fs.String("workload", workloads.CaseStudyName,
		"workload name (casestudy or a suite program; see -list)")
	scale := fs.Float64("scale", 0.25, "trace length relative to the reference")
	asCSV := fs.Bool("csv", false, "emit CSV instead of an aligned table")
	list := fs.Bool("list", false, "list available workloads and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		fmt.Fprintf(out, "%-14s %s\n", workloads.CaseStudyName, "Section IV motivational example")
		for _, w := range workloads.Suite() {
			fmt.Fprintf(out, "%-14s %s\n", w.Name, w.Description)
		}
		return nil
	}

	if *scale <= 0 {
		return campaign.Usagef("-scale must be > 0 (got %g)", *scale)
	}
	w, err := workloads.ByName(*workload)
	if err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	prof, err := profile.Run(w.Program(), w.TraceStream(*scale))
	if err != nil {
		return err
	}

	t := report.New(
		fmt.Sprintf("Profile of %s (scale %.2f, %d cycles)", w.Name, *scale, prof.ExecCycles),
		"Block", "Kind", "Size (B)", "Reads", "Writes", "Refs",
		"Avg r/ref", "Avg w/ref", "Stack calls", "Max stack", "Life-time", "Span")
	for _, bp := range prof.Blocks {
		t.AddRow(
			bp.Block.Name,
			bp.Block.Kind.String(),
			report.Count(bp.Block.Size),
			report.Count(bp.Reads),
			report.Count(bp.Writes),
			report.Count(bp.References),
			report.Float(bp.AvgReadsPerRef(), 1),
			report.Float(bp.AvgWritesPerRef(), 1),
			report.Count(bp.StackCalls),
			report.Count(bp.MaxStackBytes),
			report.Count(int(bp.Lifetime)),
			report.Count(int(bp.Span())),
		)
	}
	if *asCSV {
		return t.RenderCSV(out)
	}
	return t.Render(out)
}

package main

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

func TestRunProfileTable(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-workload", "crc32", "-scale", "0.05"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Profile of crc32", "Data", "CrcTab", "Stack", "Life-time"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in output", want)
		}
	}
}

func TestRunProfileCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-workload", "crc32", "-scale", "0.05", "-csv"}, &buf); err != nil {
		t.Fatal(err)
	}
	first := strings.SplitN(buf.String(), "\n", 2)[0]
	if !strings.HasPrefix(first, "Block,Kind,") {
		t.Errorf("csv header = %q", first)
	}
}

func TestRunProfileList(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-list"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "casestudy") || !strings.Contains(buf.String(), "qsort") {
		t.Error("list missing workloads")
	}
}

func TestRunProfileErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-workload", "nope"}, &buf); err == nil {
		t.Error("unknown workload accepted")
	}
	if err := run(context.Background(), []string{"-bogus-flag"}, &buf); err == nil {
		t.Error("bad flag accepted")
	}
}

// Command ftspm-sim runs a workload on one of the evaluated SPM
// structures and prints the full accounting: cycles, energy, reliability,
// endurance, cache and on-line transfer statistics.
//
// Usage:
//
//	ftspm-sim [-workload casestudy] [-structure ftspm] [-scale 0.25]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"ftspm/internal/campaign"
	"ftspm/internal/core"
	"ftspm/internal/endurance"
	"ftspm/internal/experiments"
	"ftspm/internal/report"
	"ftspm/internal/schedule"
	"ftspm/internal/sim"
	"ftspm/internal/spm"
	"ftspm/internal/workloads"
)

func main() {
	ctx, stop := campaign.SignalContext(context.Background())
	err := run(ctx, os.Args[1:], os.Stdout)
	stop()
	if err != nil {
		fmt.Fprintln(os.Stderr, "ftspm-sim:", err)
		os.Exit(campaign.ExitCode(err))
	}
}

func parseStructure(s string) (core.Structure, error) {
	switch strings.ToLower(s) {
	case "ftspm":
		return core.StructFTSPM, nil
	case "sram", "pure-sram":
		return core.StructPureSRAM, nil
	case "stt", "stt-ram", "pure-stt":
		return core.StructPureSTT, nil
	case "dmr", "duplication":
		return core.StructDMR, nil
	default:
		return 0, campaign.Usagef("unknown structure %q (ftspm, sram, stt, dmr)", s)
	}
}

func parsePriority(s string) (core.Priority, error) {
	switch strings.ToLower(s) {
	case "reliability":
		return core.PriorityReliability, nil
	case "performance":
		return core.PriorityPerformance, nil
	case "power":
		return core.PriorityPower, nil
	case "endurance":
		return core.PriorityEndurance, nil
	default:
		return 0, campaign.Usagef("unknown priority %q (reliability, performance, power, endurance)", s)
	}
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ftspm-sim", flag.ContinueOnError)
	workload := fs.String("workload", workloads.CaseStudyName, "workload name")
	structure := fs.String("structure", "ftspm", "SPM structure: ftspm, sram, stt, or dmr")
	scale := fs.Float64("scale", 0.25, "trace length relative to the reference")
	priority := fs.String("priority", "reliability",
		"MDA optimization priority: reliability, performance, power, or endurance")
	usePlan := fs.Bool("plan", false,
		"execute a static (Belady) SMI transfer schedule instead of on-demand LRU")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *scale <= 0 {
		return campaign.Usagef("-scale must be > 0 (got %g)", *scale)
	}
	s, err := parseStructure(*structure)
	if err != nil {
		return err
	}
	prio, err := parsePriority(*priority)
	if err != nil {
		return err
	}

	if err := ctx.Err(); err != nil {
		return err
	}
	opts := experiments.Options{Scale: *scale, Priority: prio}
	o, err := experiments.EvaluateByName(*workload, s, opts)
	if err != nil {
		return err
	}
	if *usePlan {
		if err := ctx.Err(); err != nil {
			return err
		}
		w, err := workloads.ByName(*workload)
		if err != nil {
			return err
		}
		// The planner and the replayed execution stream the trace
		// instead of materializing it; the seeded generator guarantees
		// both see the exact sequence the MDA's profile was built from.
		plan, err := schedule.Build(w.Program(), o.Mapping.Placement, w.TraceStream(*scale),
			schedule.RegionWords(o.Spec.ISPM), schedule.RegionWords(o.Spec.DSPM))
		if err != nil {
			return err
		}
		machine, err := sim.New(w.Program(), o.Spec.SimConfig(o.Mapping.Placement))
		if err != nil {
			return err
		}
		res, err := machine.RunWithPlan(w.TraceStream(*scale), plan)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "static SMI schedule: %d loads, %d planned evictions\n",
			plan.Loads, plan.Evictions)
		o.Sim = res
	}

	fmt.Fprintf(out, "%s on %v (scale %.2f)\n\n", o.Workload, o.Structure, *scale)
	fmt.Fprintf(out, "execution:     %s cycles (%s accesses, %s compute cycles)\n",
		report.Count(int(o.Sim.Cycles)), report.Count(int(o.Sim.Accesses)),
		report.Count(int(o.Sim.ThinkCycles)))
	fmt.Fprintf(out, "SPM dynamic:   %s\n", report.Energy(float64(o.Sim.SPMDynamicEnergy)))
	fmt.Fprintf(out, "SPM static:    %s (leakage %v)\n",
		report.Energy(float64(o.Sim.SPMStaticEnergy)*1e9), o.Sim.SPMLeakage)
	fmt.Fprintf(out, "cache energy:  %s   DRAM energy: %s\n",
		report.Energy(float64(o.Sim.CacheEnergy)), report.Energy(float64(o.Sim.DRAMEnergy)))
	fmt.Fprintf(out, "vulnerability: %.4f (reliability %s, %v AVF)\n",
		o.AVF.Vulnerability(), report.Pct(o.AVF.Reliability()), o.AVF.Mode)
	if o.STTWriteRate > 0 {
		fmt.Fprintf(out, "endurance:     hottest STT-RAM cell at %.0f writes/s -> %s at 1e12 write cycles\n",
			o.STTWriteRate, endurance.Humanize(endurance.Lifetime(1e12, o.STTWriteRate)))
	} else {
		fmt.Fprintln(out, "endurance:     no STT-RAM wear")
	}

	t := report.New("\nData-SPM traffic by region",
		"Region", "Reads", "Writes")
	for _, k := range []spm.RegionKind{spm.RegionSTT, spm.RegionECC, spm.RegionParity} {
		if c, ok := o.Sim.DCtl.PerKind[k]; ok {
			t.AddRow(k.String(), report.Count(int(c.Reads)), report.Count(int(c.Writes)))
		}
	}
	if err := t.Render(out); err != nil {
		return err
	}

	fmt.Fprintf(out, "\non-line phase: %d map-ins, %d evictions, %s write-back words, %s transfer cycles\n",
		o.Sim.DCtl.MapIns+o.Sim.ICtl.MapIns,
		o.Sim.DCtl.Evictions+o.Sim.ICtl.Evictions,
		report.Count(int(o.Sim.DCtl.WritebackWords)),
		report.Count(int(o.Sim.DCtl.TransferCycles+o.Sim.ICtl.TransferCycles)))
	fmt.Fprintf(out, "caches:        I %.1f%% hit, D %.1f%% hit (unmapped blocks only)\n",
		o.Sim.ICacheStats.HitRate()*100, o.Sim.DCacheStats.HitRate()*100)

	if regions := o.AVF.ByRegion(); len(regions) > 0 {
		rt := report.New("\nVulnerability by region (SDC/DUE AVF)",
			"Region", "Blocks", "SDC", "DUE")
		for _, c := range regions {
			rt.AddRow(c.Region.String(), report.Count(c.Blocks),
				report.Float(c.SDC, 4), report.Float(c.DUE, 4))
		}
		if err := rt.Render(out); err != nil {
			return err
		}
	}
	return nil
}

package main

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

func TestRunSimFTSPM(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-workload", "sha", "-structure", "ftspm", "-scale", "0.05"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"sha on FTSPM", "execution:", "SPM dynamic:", "vulnerability:",
		"endurance:", "Data-SPM traffic", "on-line phase:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestRunSimBaselines(t *testing.T) {
	for _, s := range []string{"sram", "stt"} {
		var buf bytes.Buffer
		if err := run(context.Background(), []string{"-workload", "crc32", "-structure", s, "-scale", "0.05"}, &buf); err != nil {
			t.Fatalf("%s: %v", s, err)
		}
	}
	// The pure SRAM baseline has no STT-RAM wear to report.
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-workload", "crc32", "-structure", "sram", "-scale", "0.05"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no STT-RAM wear") {
		t.Error("pure SRAM run should report no STT-RAM wear")
	}
}

func TestRunSimErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-structure", "bogus"}, &buf); err == nil {
		t.Error("bad structure accepted")
	}
	if err := run(context.Background(), []string{"-workload", "bogus"}, &buf); err == nil {
		t.Error("bad workload accepted")
	}
	if err := run(context.Background(), []string{"-not-a-flag"}, &buf); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestRunSimWithPlanAndPriority(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-workload", "fft", "-plan", "-scale", "0.05",
		"-priority", "endurance"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "static SMI schedule") {
		t.Error("plan banner missing")
	}
	if !strings.Contains(out, "Vulnerability by region") {
		t.Error("per-region AVF breakdown missing")
	}
	if err := run(context.Background(), []string{"-priority", "bogus"}, &buf); err == nil {
		t.Error("bad priority accepted")
	}
	// DMR structure reachable from the CLI.
	buf.Reset()
	if err := run(context.Background(), []string{"-workload", "crc32", "-structure", "dmr", "-scale", "0.05"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "DMR") {
		t.Error("DMR run missing structure name")
	}
}

// Command ftspm-soak runs Monte-Carlo soak campaigns of the runtime
// error-recovery subsystem: many independently-seeded executions of a
// workload under live particle strikes (and optionally STT-RAM write
// wear), reporting recovered/DUE/SDC rates and time-to-degraded per
// structure.
//
// All (structure, trial) pairs run as one crash-safe campaign: with
// -checkpoint every finished trial is journaled, and -resume skips
// finished trials so an interrupted campaign continues where it
// stopped, producing output byte-identical to an uninterrupted run.
// SIGINT or SIGTERM drains in-flight trials, flushes the checkpoint,
// salvages partial reports (marked incomplete), and exits with
// status 3.
//
// Usage:
//
//	ftspm-soak [-workload casestudy] [-structures ftspm,sram,stt]
//	           [-trials 8] [-scale 0.05] [-strike 0.01] [-target data]
//	           [-scrub 4096] [-policy rollback] [-no-recovery]
//	           [-wear-fail 0] [-wear-stuck 0] [-seed 1] [-json file]
//	           [-lanes 0] [-checkpoint soak.ckpt] [-resume] [-cache file]
//	           [-parallel N] [-retries N] [-job-timeout d]
//	           [-workers host1:8077,host2:8077] [-lease 60s]
//	           [-audit-frac 0.1] [-audit-seed 0]
//	           [-storm] [-storm-calm 0.001] [-storm-intensity 0.2]
//	           [-storm-calm-dwell 4000] [-storm-dwell 400] [-storm-span 2]
//	           [-storm-thermal 1] [-storm-hot 0] [-storm-hot-blocks 4]
//	           [-adaptive]
//	           [-cpuprofile f] [-memprofile f] [-perfjson f]
//
// With -workers the campaign is sharded across the listed ftspmd
// daemons by the distributed fabric (internal/fabric): per-worker
// health probing, lease-based dead-worker detection with re-queue,
// poison-job quarantine, and local-execution fallback when every
// worker is down. The merged reports — and the -checkpoint journal —
// are byte-identical to a single-node run of the same campaign.
// -audit-frac re-executes a deterministic fraction of fabric results on
// a different executor: a divergence convicts the origin worker,
// quarantines it, and re-runs every result of its that the audit had
// not already confirmed (see DESIGN.md §15).
//
// -cache memoizes finished trials in a content-addressed result cache
// file (DESIGN.md §16). Trial keys carry the full fault/wear/recovery
// model, so a cache warmed under one strike rate or recovery policy is
// strictly bypassed — never wrongly served — under another; keys omit
// the campaign size, so a 2-trial warmup serves the first 2 trials of
// a later 8-trial campaign.
//
// -lanes controls the bit-parallel packed engine (internal/simd): 0
// (the default) packs up to 64 trials per trace pass, 1 forces the
// scalar simulator, 2..64 caps the batch width. Results are identical
// either way; the knob exists for benchmarking and bisection.
//
// -storm replaces the memoryless strike process with the correlated
// fault storm (DESIGN.md §17): Markov-modulated calm/storm bursts,
// spatially clustered multi-word events (-storm-span), a thermal
// write-failure ramp coupling into -wear-fail (-storm-thermal), and
// adversarial targeting of the hottest profiled blocks (-storm-hot).
// -adaptive arms the controller's storm defenses: windowed error-rate
// tracking with scrub escalation and hysteresis, emergency re-fetch of
// clean residents in storming regions, and storm-triggered bypass down
// the degradation ladder. Storm campaigns always run the scalar
// simulator (the packed engine rejects them and the job falls back).
//
// Exit status: 0 success, 1 error, 2 bad flags, 3 interrupted (partial
// reports salvaged; resumable).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"ftspm/internal/campaign"
	"ftspm/internal/core"
	"ftspm/internal/experiments"
	"ftspm/internal/fabric"
	"ftspm/internal/faults"
	"ftspm/internal/fabric/wire"
	"ftspm/internal/report"
	"ftspm/internal/resultcache"
	"ftspm/internal/sim"
	"ftspm/internal/spm"
	"ftspm/internal/workloads"
)

func main() {
	ctx, stop := campaign.SignalContext(context.Background())
	err := run(ctx, os.Args[1:], os.Stdout)
	stop()
	if err != nil {
		fmt.Fprintln(os.Stderr, "ftspm-soak:", err)
		os.Exit(campaign.ExitCode(err))
	}
}

// soakMeasurement is one BENCH_soak.json "perf" / -perfjson record:
// the wall-clock and allocation cost of a full RunSoakCampaign, keyed
// by the lane width so the packed engine's speedup over the scalar
// simulator is tracked across PRs.
type soakMeasurement struct {
	Benchmark  string  `json:"benchmark"`
	Lanes      int     `json:"lanes"`
	Trials     int     `json:"trials"`
	Scale      float64 `json:"scale"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	WallMS     float64 `json:"wall_ms"`
	AllocBytes uint64  `json:"alloc_bytes"`
	Allocs     uint64  `json:"allocs"`
	// Cache carries the result-cache counters when -cache was in play,
	// so warm and cold runs are distinguishable in the perf history.
	Cache *resultcache.Stats `json:"cache,omitempty"`
}

// appendSoakMeasurement appends one JSON line describing the campaign
// that just ran (allocation deltas are process-wide, so run with a
// quiet process for clean numbers). The record is fsynced before close.
func appendSoakMeasurement(path string, opts experiments.SoakOptions, wall time.Duration, before runtime.MemStats, rc *resultcache.Cache) error {
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	m := soakMeasurement{
		Benchmark:  "RunSoakCampaign",
		Lanes:      opts.Lanes,
		Trials:     opts.Trials,
		Scale:      opts.Scale,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		WallMS:     float64(wall.Microseconds()) / 1e3,
		AllocBytes: after.TotalAlloc - before.TotalAlloc,
		Allocs:     after.Mallocs - before.Mallocs,
	}
	if rc != nil {
		cs := rc.Stats()
		m.Cache = &cs
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := json.NewEncoder(f).Encode(m); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	return f.Close()
}

func parseStructures(s string) ([]core.Structure, error) {
	var out []core.Structure
	for _, name := range strings.Split(s, ",") {
		switch strings.ToLower(strings.TrimSpace(name)) {
		case "ftspm":
			out = append(out, core.StructFTSPM)
		case "sram", "pure-sram":
			out = append(out, core.StructPureSRAM)
		case "stt", "stt-ram", "pure-stt":
			out = append(out, core.StructPureSTT)
		case "dmr", "duplication":
			out = append(out, core.StructDMR)
		case "all":
			out = append(out, core.AllStructures()...)
		default:
			return nil, campaign.Usagef("unknown structure %q (ftspm, sram, stt, dmr, all)", name)
		}
	}
	return out, nil
}

func parseTarget(s string) (sim.InjectionTarget, error) {
	switch strings.ToLower(s) {
	case "data", "data-spm":
		return sim.TargetDataSPM, nil
	case "inst", "inst-spm", "code":
		return sim.TargetInstSPM, nil
	case "both":
		return sim.TargetBothSPMs, nil
	default:
		return 0, campaign.Usagef("unknown injection target %q (data, inst, both)", s)
	}
}

func parsePolicy(s string) (spm.DUEPolicy, error) {
	switch strings.ToLower(s) {
	case "rollback":
		return spm.DUERollback, nil
	case "sdc":
		return spm.DUEAsSDC, nil
	default:
		return 0, campaign.Usagef("unknown DUE policy %q (rollback, sdc)", s)
	}
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ftspm-soak", flag.ContinueOnError)
	workload := fs.String("workload", workloads.CaseStudyName, "workload name")
	structures := fs.String("structures", "ftspm,sram,stt", "comma-separated structures (or 'all')")
	trials := fs.Int("trials", 8, "independently-seeded runs per structure")
	scale := fs.Float64("scale", 0.05, "trace length relative to the reference")
	strike := fs.Float64("strike", 0.01, "per-access particle-strike probability")
	target := fs.String("target", "data", "struck SPM(s): data, inst, or both")
	scrub := fs.Uint64("scrub", 4096, "accesses between background scrubs (0 disables)")
	policy := fs.String("policy", "rollback", "dirty-block DUE policy: rollback or sdc")
	noRecovery := fs.Bool("no-recovery", false, "run the detection-only baseline (recovery off)")
	wearFail := fs.Float64("wear-fail", 0, "per-word STT-RAM transient write-failure probability")
	wearStuck := fs.Float64("wear-stuck", 0, "per-word-write STT-RAM cell wear-out probability")
	seed := fs.Int64("seed", 1, "campaign seed")
	storm := fs.Bool("storm", false, "replace the memoryless strike process with the correlated fault storm")
	stormCalm := fs.Float64("storm-calm", 0.001, "calm-state strike probability per access")
	stormIntensity := fs.Float64("storm-intensity", 0.2, "storm-state strike probability per access")
	stormCalmDwell := fs.Float64("storm-calm-dwell", 4000, "mean calm dwell in accesses")
	stormDwell := fs.Float64("storm-dwell", 400, "mean storm dwell in accesses")
	stormSpan := fs.Int("storm-span", 2, "adjacent words corrupted per storm-state event")
	stormThermal := fs.Float64("storm-thermal", 1, "wear write-failure multiplier at full storm heat (1 disables)")
	stormHot := fs.Float64("storm-hot", 0, "fraction of strikes aimed at the hottest profiled blocks")
	stormHotBlocks := fs.Int("storm-hot-blocks", 4, "how many hottest blocks the adversary targets per SPM")
	adaptive := fs.Bool("adaptive", false, "arm the adaptive storm defenses (scrub escalation, emergency refresh, bypass)")
	lanes := fs.Int("lanes", 0, "packed-engine lane width: 0 auto (64), 1 scalar, 2..64 explicit")
	jsonPath := fs.String("json", "", "also write the reports as JSON to this file")
	checkpoint := fs.String("checkpoint", "", "journal finished trials to this file (crash-safe campaign)")
	resume := fs.Bool("resume", false, "skip trials already journaled in -checkpoint")
	cachePath := fs.String("cache", "", "memoize finished trials in this content-addressed cache file (warm runs skip recomputing)")
	parallel := fs.Int("parallel", 0, "trial worker pool size, local or per fabric chunk (0: GOMAXPROCS)")
	workers := fs.String("workers", "", "comma-separated ftspmd worker URLs: distribute the campaign over the fabric")
	lease := fs.Duration("lease", 0, "fabric heartbeat lease before a silent worker is declared dead (0: 60s)")
	auditFrac := fs.Float64("audit-frac", 0, "fraction of fabric results to audit by re-execution on a different executor (0 disables)")
	auditSeed := fs.Int64("audit-seed", 0, "seed for the deterministic audit job selection")
	retries := fs.Int("retries", 0, "per-trial retries before a trial is recorded failed")
	jobTimeout := fs.Duration("job-timeout", 0, "per-trial deadline (0: none)")
	cpuprofile := fs.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memprofile := fs.String("memprofile", "", "write a pprof heap profile at exit to this file")
	perfJSON := fs.String("perfjson", "", "append a campaign wall-clock/allocation measurement to this JSON-lines file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *trials <= 0 {
		return campaign.Usagef("-trials must be > 0 (got %d)", *trials)
	}
	if *scale <= 0 {
		return campaign.Usagef("-scale must be > 0 (got %g)", *scale)
	}
	if *strike < 0 || *strike > 1 {
		return campaign.Usagef("-strike must be a probability in [0, 1] (got %g)", *strike)
	}
	if *adaptive && *noRecovery {
		return campaign.Usagef("-adaptive needs the recovery subsystem (drop -no-recovery)")
	}
	if (*stormHot != 0 || *stormThermal != 1) && !*storm {
		return campaign.Usagef("-storm-* knobs need -storm")
	}
	if *auditFrac < 0 || *auditFrac > 1 {
		return campaign.Usagef("-audit-frac must be a probability in [0, 1] (got %g)", *auditFrac)
	}
	if *auditFrac > 0 && *workers == "" {
		return campaign.Usagef("-audit-frac requires -workers (audits re-execute fabric results)")
	}
	cc := experiments.CampaignConfig{
		Checkpoint: *checkpoint,
		Resume:     *resume,
		Workers:    *parallel,
		JobTimeout: *jobTimeout,
		Retries:    *retries,
	}
	if err := cc.Validate(); err != nil {
		return err
	}
	var rc *resultcache.Cache
	if *cachePath != "" {
		var err error
		rc, err = resultcache.Open(resultcache.Config{Path: *cachePath, Fingerprint: wire.Fingerprint()})
		if err != nil {
			return fmt.Errorf("cache: %w", err)
		}
		defer rc.Close()
		cc.Cache = rc
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "ftspm-soak: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the retained-heap picture
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "ftspm-soak: memprofile:", err)
			}
		}()
	}
	structs, err := parseStructures(*structures)
	if err != nil {
		return err
	}
	tgt, err := parseTarget(*target)
	if err != nil {
		return err
	}
	pol, err := parsePolicy(*policy)
	if err != nil {
		return err
	}

	opts := experiments.SoakOptions{
		Workload:         *workload,
		Trials:           *trials,
		Scale:            *scale,
		StrikesPerAccess: *strike,
		Target:           tgt,
		Seed:             *seed,
		Lanes:            *lanes,
	}
	if !*noRecovery {
		rec := spm.DefaultRecovery()
		rec.ScrubInterval = *scrub
		rec.DirtyPolicy = pol
		if *adaptive {
			ad := spm.DefaultAdaptive()
			rec.Adaptive = &ad
		}
		opts.Recovery = &rec
	}
	if *storm {
		opts.Storm = &faults.StormConfig{
			CalmStrikesPerAccess:  *stormCalm,
			StormStrikesPerAccess: *stormIntensity,
			MeanCalmAccesses:      *stormCalmDwell,
			MeanStormAccesses:     *stormDwell,
			SpatialSpan:           *stormSpan,
			ThermalFactor:         *stormThermal,
			HotBias:               *stormHot,
			HotBlocks:             *stormHotBlocks,
		}
	}
	if *wearFail > 0 || *wearStuck > 0 {
		opts.Wear = &spm.WearConfig{
			WriteFailProb:   *wearFail,
			MaxWriteRetries: 3,
			StuckAtProb:     *wearStuck,
		}
	}

	mode := "recovery on"
	if *noRecovery {
		mode = "detection only"
	}
	if *adaptive {
		mode = "adaptive recovery"
	}
	if *storm {
		fmt.Fprintf(out, "soak: %s, %d trials/structure, scale %.2f, storm %.4g/%.4g per access (dwell %g/%g) on %v (%s)\n",
			*workload, *trials, *scale, *stormCalm, *stormIntensity, *stormCalmDwell, *stormDwell, tgt, mode)
	} else {
		fmt.Fprintf(out, "soak: %s, %d trials/structure, scale %.2f, strike %.4g/access on %v (%s)\n",
			*workload, *trials, *scale, *strike, tgt, mode)
	}

	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	var reports []*experiments.SoakReport
	var status *experiments.CampaignStatus
	var runErr error
	if *workers != "" {
		reports, status, runErr = fabric.RunSoak(ctx, fabric.Config{
			Workers:    fabric.ParseWorkers(*workers),
			Parallel:   *parallel,
			Lease:      *lease,
			Retries:    *retries,
			JobTimeout: *jobTimeout,
			Checkpoint: *checkpoint,
			Resume:     *resume,
			AuditFrac:  *auditFrac,
			AuditSeed:  *auditSeed,
			Cache:      rc,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "ftspm-soak: "+format+"\n", args...)
			},
		}, opts, structs)
	} else {
		reports, status, runErr = experiments.RunSoakCampaign(ctx, opts, structs, cc)
	}
	wall := time.Since(start)
	if reports == nil {
		return runErr // campaign setup failure (checkpoint, flags)
	}
	if *perfJSON != "" && runErr == nil {
		if err := appendSoakMeasurement(*perfJSON, opts, wall, before, rc); err != nil {
			return err
		}
	}
	if rc != nil {
		cs := rc.Stats()
		fmt.Fprintf(out, "result cache: %d hits, %d misses, %d bypasses (%d entries)\n",
			cs.Hits, cs.Misses, cs.Bypasses, cs.Entries)
	}
	if status.Resumed > 0 {
		fmt.Fprintf(out, "resumed %d finished trials from %s\n", status.Resumed, *checkpoint)
	}
	for _, f := range status.Failures {
		fmt.Fprintf(out, "trial %s failed after %d attempt(s): %s\n", f.ID, f.Attempts, f.Error)
		if f.Stack != "" {
			fmt.Fprintf(out, "%s\n", f.Stack)
		}
	}
	fabric.PrintAuditSummary(out, status)

	t := report.New("\nSoak campaign",
		"Structure", "Strikes", "Recovered/strike", "DUE/strike", "SDC/strike",
		"Degraded", "Mean TTD")
	for _, rep := range reports {
		ttd := "-"
		if rep.DegradedTrials > 0 {
			ttd = report.Count(int(rep.MeanTimeToDegraded)) + " acc"
		}
		structure := rep.Structure.String()
		if rep.Incomplete {
			structure += fmt.Sprintf(" (incomplete: %d/%d trials)", rep.Trials, rep.PlannedTrials)
		}
		t.AddRow(structure,
			report.Count(int(rep.Strikes)),
			report.Float(rep.RecoveredRate(), 4),
			report.Float(rep.DUERate(), 4),
			report.Float(rep.SDCRate(), 4),
			fmt.Sprintf("%d/%d", rep.DegradedTrials, rep.Trials),
			ttd)
	}
	if err := t.Render(out); err != nil {
		return err
	}
	for _, rep := range reports {
		rc := rep.Recovery
		fmt.Fprintf(out, "\n%v recovery activity: %d corrected in-line, %d re-fetched, %d rollbacks, "+
			"%d scrub runs (%d repairs, %d re-fetches, %d restores), %d write retries, "+
			"%d stuck-word events, %d remaps, %d demotions, %d retired words\n",
			rep.Structure, rc.CorrectedOnAccess, rc.RefetchedWords, rc.Rollbacks,
			rc.ScrubRuns, rc.ScrubRepairs, rc.ScrubRefetches, rc.ScrubRestores,
			rc.WriteRetries, rc.StuckWordEvents, rc.Remaps, rc.Demotions, rc.RetiredWords)
		if *storm {
			fmt.Fprintf(out, "%v storm defense: peak window error rate %.4f, %d escalations / %d de-escalations "+
				"(%d accesses escalated), %d blocks emergency-refreshed (%d words), %d storm bypasses\n",
				rep.Structure, rc.PeakWindowErrorRate, rc.ScrubEscalations, rc.ScrubDeescalations,
				rc.EscalatedAccesses, rc.EmergencyRefreshBlocks, rc.EmergencyRefreshWords, rc.StormBypasses)
		}
	}

	if *jsonPath != "" {
		blob, err := json.MarshalIndent(reports, "", "  ")
		if err != nil {
			return err
		}
		if err := campaign.WriteFileAtomic(*jsonPath, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		if status.Incomplete {
			fmt.Fprintf(out, "\nsalvaged partial reports to %s\n", *jsonPath)
		} else {
			fmt.Fprintf(out, "\nwrote %s\n", *jsonPath)
		}
	}
	if runErr != nil {
		fmt.Fprintf(out, "\nsoak incomplete: %d done, %d failed, %d pending\n",
			status.Completed, status.Failed, status.Pending)
		return runErr
	}
	return status.FirstFailure()
}

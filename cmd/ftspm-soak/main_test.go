package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ftspm/internal/campaign"
	"ftspm/internal/experiments"
)

func TestRunSoakEndToEnd(t *testing.T) {
	jsonPath := filepath.Join(t.TempDir(), "soak.json")
	var buf bytes.Buffer
	err := run(context.Background(), []string{
		"-structures", "ftspm",
		"-trials", "2",
		"-scale", "0.02",
		"-strike", "0.01",
		"-scrub", "512",
		"-json", jsonPath,
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Soak campaign", "FTSPM", "recovery activity", "DUE/strike"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in output:\n%s", want, out)
		}
	}
	blob, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var reports []*experiments.SoakReport
	if err := json.Unmarshal(blob, &reports); err != nil {
		t.Fatal(err)
	}
	if len(reports) != 1 || reports[0].Trials != 2 || reports[0].Strikes == 0 {
		t.Errorf("unexpected JSON reports: %+v", reports)
	}
}

func TestRunSoakFlagValidation(t *testing.T) {
	cases := [][]string{
		{"-structures", "warp-core"},
		{"-target", "moon"},
		{"-policy", "shrug"},
		{"-workload", "no-such-workload"},
	}
	for _, args := range cases {
		if err := run(context.Background(), args, &bytes.Buffer{}); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestRunSoakUsageErrors(t *testing.T) {
	cases := [][]string{
		{"-resume"}, // resume requires -checkpoint
		{"-trials", "0"},
		{"-scale", "-1"},
		{"-strike", "1.5"},
		{"-retries", "-1"},
	}
	for _, args := range cases {
		err := run(context.Background(), args, &bytes.Buffer{})
		if err == nil {
			t.Errorf("args %v accepted", args)
			continue
		}
		if campaign.ExitCode(err) != campaign.ExitUsage {
			t.Errorf("args %v: exit code %d, want %d (err: %v)",
				args, campaign.ExitCode(err), campaign.ExitUsage, err)
		}
	}
}

// TestRunSoakCheckpointResume drives the CLI path end to end: a
// checkpointed run, then a resume that must skip every trial and emit
// identical JSON.
func TestRunSoakCheckpointResume(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "soak.ckpt")
	args := func(jsonPath string, extra ...string) []string {
		return append([]string{
			"-structures", "ftspm,sram",
			"-trials", "2",
			"-scale", "0.02",
			"-strike", "0.01",
			"-checkpoint", ckpt,
			"-json", jsonPath,
		}, extra...)
	}
	first := filepath.Join(dir, "first.json")
	if err := run(context.Background(), args(first), &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	// Re-running onto an existing checkpoint without -resume must be
	// rejected, not silently overwrite the journal.
	if err := run(context.Background(), args(first), &bytes.Buffer{}); err == nil {
		t.Fatal("second run without -resume accepted")
	}
	second := filepath.Join(dir, "second.json")
	var buf bytes.Buffer
	if err := run(context.Background(), args(second, "-resume"), &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "resumed 4 finished trials") {
		t.Errorf("resume did not skip the journaled trials:\n%s", buf.String())
	}
	a, err := os.ReadFile(first)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(second)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("resumed JSON differs:\n%s\nvs\n%s", a, b)
	}
}

// TestRunSoakWarmCache drives -cache end to end: a cold run fills the
// cache file, a warm run of the same campaign answers every trial from
// it, and the JSON reports are byte-identical.
func TestRunSoakWarmCache(t *testing.T) {
	dir := t.TempDir()
	cache := filepath.Join(dir, "soak.cache")
	args := func(jsonPath string) []string {
		return []string{
			"-structures", "ftspm",
			"-trials", "2",
			"-scale", "0.02",
			"-strike", "0.01",
			"-cache", cache,
			"-json", jsonPath,
		}
	}
	cold := filepath.Join(dir, "cold.json")
	var coldBuf bytes.Buffer
	if err := run(context.Background(), args(cold), &coldBuf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(coldBuf.String(), "0 hits, 2 misses") {
		t.Errorf("cold run cache line missing:\n%s", coldBuf.String())
	}
	warm := filepath.Join(dir, "warm.json")
	var warmBuf bytes.Buffer
	if err := run(context.Background(), args(warm), &warmBuf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(warmBuf.String(), "2 hits, 0 misses") {
		t.Errorf("warm run not served from cache:\n%s", warmBuf.String())
	}
	cb, err := os.ReadFile(cold)
	if err != nil {
		t.Fatal(err)
	}
	wb, err := os.ReadFile(warm)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cb, wb) {
		t.Fatalf("warm reports diverge from cold:\n got %s\nwant %s", wb, cb)
	}
}

package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ftspm/internal/experiments"
)

func TestRunSoakEndToEnd(t *testing.T) {
	jsonPath := filepath.Join(t.TempDir(), "soak.json")
	var buf bytes.Buffer
	err := run([]string{
		"-structures", "ftspm",
		"-trials", "2",
		"-scale", "0.02",
		"-strike", "0.01",
		"-scrub", "512",
		"-json", jsonPath,
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Soak campaign", "FTSPM", "recovery activity", "DUE/strike"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in output:\n%s", want, out)
		}
	}
	blob, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var reports []*experiments.SoakReport
	if err := json.Unmarshal(blob, &reports); err != nil {
		t.Fatal(err)
	}
	if len(reports) != 1 || reports[0].Trials != 2 || reports[0].Strikes == 0 {
		t.Errorf("unexpected JSON reports: %+v", reports)
	}
}

func TestRunSoakFlagValidation(t *testing.T) {
	cases := [][]string{
		{"-structures", "warp-core"},
		{"-target", "moon"},
		{"-policy", "shrug"},
		{"-workload", "no-such-workload"},
	}
	for _, args := range cases {
		if err := run(args, &bytes.Buffer{}); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

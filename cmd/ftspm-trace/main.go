// Command ftspm-trace records a workload's memory-access trace to the
// line-oriented text format (for inspection or archival) and replays
// recorded traces back through the profiler — the record/replay path of
// the trace substrate.
//
// Usage:
//
//	ftspm-trace -workload sha -scale 0.1 -o sha.trace     # record
//	ftspm-trace -workload sha -replay sha.trace           # replay+profile
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"ftspm/internal/profile"
	"ftspm/internal/report"
	"ftspm/internal/trace"
	"ftspm/internal/workloads"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ftspm-trace:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ftspm-trace", flag.ContinueOnError)
	workload := fs.String("workload", workloads.CaseStudyName, "workload name")
	scale := fs.Float64("scale", 0.1, "trace length relative to the reference (record mode)")
	outPath := fs.String("o", "", "record the trace to this file ('-' or empty: stdout)")
	replay := fs.String("replay", "", "replay a recorded trace file through the profiler")
	if err := fs.Parse(args); err != nil {
		return err
	}
	w, err := workloads.ByName(*workload)
	if err != nil {
		return err
	}

	if *replay != "" {
		f, err := os.Open(*replay)
		if err != nil {
			return err
		}
		defer f.Close()
		r := trace.NewReader(f)
		prof, err := profile.Run(w.Program(), r)
		if err != nil {
			return err
		}
		if err := r.Err(); err != nil {
			return fmt.Errorf("replay: %w", err)
		}
		t := report.New(
			fmt.Sprintf("Replayed profile of %s from %s (%d cycles)", w.Name, *replay, prof.ExecCycles),
			"Block", "Reads", "Writes", "Refs", "Life-time")
		for _, bp := range prof.Blocks {
			t.AddRow(bp.Block.Name, report.Count(bp.Reads), report.Count(bp.Writes),
				report.Count(bp.References), report.Count(int(bp.Lifetime)))
		}
		return t.Render(out)
	}

	var sink io.Writer = out
	if *outPath != "" && *outPath != "-" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		sink = f
	}
	// Record straight from the streaming generator: the trace is never
	// materialized, so arbitrarily long recordings run in constant
	// memory.
	stream := &trace.CountingStream{S: w.TraceStream(*scale)}
	if err := trace.WriteAll(sink, stream); err != nil {
		return err
	}
	if *outPath != "" && *outPath != "-" {
		fmt.Fprintf(out, "recorded %d events of %s (scale %.2f) to %s\n",
			stream.N, w.Name, *scale, *outPath)
	}
	return nil
}

// Command ftspm-trace records a workload's memory-access trace to the
// line-oriented text format (for inspection or archival) and replays
// recorded traces back through the profiler — the record/replay path of
// the trace substrate.
//
// Usage:
//
//	ftspm-trace -workload sha -scale 0.1 -o sha.trace     # record
//	ftspm-trace -workload sha -replay sha.trace           # replay+profile
//
// Recordings to a file are written atomically (temp file + fsync +
// rename), so an interrupted recording never leaves a truncated trace
// at the target path. Exit status: 0 success, 1 error, 2 bad flags.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"ftspm/internal/campaign"
	"ftspm/internal/profile"
	"ftspm/internal/report"
	"ftspm/internal/trace"
	"ftspm/internal/workloads"
)

func main() {
	ctx, stop := campaign.SignalContext(context.Background())
	err := run(ctx, os.Args[1:], os.Stdout)
	stop()
	if err != nil {
		fmt.Fprintln(os.Stderr, "ftspm-trace:", err)
		os.Exit(campaign.ExitCode(err))
	}
}

// cancelStream forwards a trace stream until ctx is cancelled, then
// reports the context error — the cancellation point of arbitrarily
// long recordings.
type cancelStream struct {
	ctx context.Context
	s   trace.Stream
	n   int
	err error
}

func (c *cancelStream) Next() (trace.Event, bool) {
	c.n++
	if c.n%1024 == 0 && c.ctx.Err() != nil {
		c.err = c.ctx.Err()
		return trace.Event{}, false
	}
	return c.s.Next()
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ftspm-trace", flag.ContinueOnError)
	workload := fs.String("workload", workloads.CaseStudyName, "workload name")
	scale := fs.Float64("scale", 0.1, "trace length relative to the reference (record mode)")
	outPath := fs.String("o", "", "record the trace to this file ('-' or empty: stdout)")
	replay := fs.String("replay", "", "replay a recorded trace file through the profiler")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *scale <= 0 {
		return campaign.Usagef("-scale must be > 0 (got %g)", *scale)
	}
	if *replay != "" && *outPath != "" {
		return campaign.Usagef("-o and -replay are mutually exclusive (replay profiles, it does not re-record)")
	}
	w, err := workloads.ByName(*workload)
	if err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}

	if *replay != "" {
		f, err := os.Open(*replay)
		if err != nil {
			return err
		}
		defer f.Close()
		r := trace.NewReader(f)
		prof, err := profile.Run(w.Program(), r)
		if err != nil {
			return err
		}
		if err := r.Err(); err != nil {
			return fmt.Errorf("replay: %w", err)
		}
		t := report.New(
			fmt.Sprintf("Replayed profile of %s from %s (%d cycles)", w.Name, *replay, prof.ExecCycles),
			"Block", "Reads", "Writes", "Refs", "Life-time")
		for _, bp := range prof.Blocks {
			t.AddRow(bp.Block.Name, report.Count(bp.Reads), report.Count(bp.Writes),
				report.Count(bp.References), report.Count(int(bp.Lifetime)))
		}
		return t.Render(out)
	}

	// Record straight from the streaming generator: the trace is never
	// materialized, so arbitrarily long recordings run in constant
	// memory.
	record := func(sink io.Writer) (int, error) {
		cs := &cancelStream{ctx: ctx, s: w.TraceStream(*scale)}
		stream := &trace.CountingStream{S: cs}
		if err := trace.WriteAll(sink, stream); err != nil {
			return stream.N, err
		}
		return stream.N, cs.err
	}
	if *outPath == "" || *outPath == "-" {
		_, err := record(out)
		return err
	}
	var n int
	if err := campaign.WriteAtomic(*outPath, 0o644, func(sink io.Writer) error {
		var err error
		n, err = record(sink)
		return err
	}); err != nil {
		return err
	}
	fmt.Fprintf(out, "recorded %d events of %s (scale %.2f) to %s\n",
		n, w.Name, *scale, *outPath)
	return nil
}

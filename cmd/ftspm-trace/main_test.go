package main

import (
	"bytes"
	"context"
	"path/filepath"
	"strings"
	"testing"

	"ftspm/internal/campaign"
	"ftspm/internal/profile"
	"ftspm/internal/workloads"
)

func TestRecordAndReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sha.trace")

	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-workload", "sha", "-scale", "0.05", "-o", path}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "recorded") {
		t.Errorf("no record confirmation: %q", buf.String())
	}

	// Replaying must reproduce the generated profile exactly.
	buf.Reset()
	if err := run(context.Background(), []string{"-workload", "sha", "-replay", path}, &buf); err != nil {
		t.Fatal(err)
	}
	w, err := workloads.ByName("sha")
	if err != nil {
		t.Fatal(err)
	}
	want, err := profile.Run(w.Program(), w.Trace(0.05))
	if err != nil {
		t.Fatal(err)
	}
	for _, bp := range want.Blocks {
		row := bp.Block.Name
		if !strings.Contains(buf.String(), row) {
			t.Errorf("replayed profile missing block %s", row)
		}
	}
	// Spot-check one exact count survives the roundtrip.
	msgBuf, err := want.ByName("MsgBuf")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), formatCount(msgBuf.Reads)) {
		t.Errorf("replayed profile lost MsgBuf read count %d:\n%s", msgBuf.Reads, buf.String())
	}
}

func formatCount(n int) string {
	s := ""
	for n >= 1000 {
		s = "," + pad3(n%1000) + s
		n /= 1000
	}
	return itoa(n) + s
}

func pad3(n int) string {
	d := itoa(n)
	for len(d) < 3 {
		d = "0" + d
	}
	return d
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	s := ""
	for n > 0 {
		s = string(rune('0'+n%10)) + s
		n /= 10
	}
	return s
}

func TestRecordToStdout(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-workload", "crc32", "-scale", "0.02"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "A ") && !strings.HasPrefix(buf.String(), "C ") {
		t.Errorf("stdout record does not look like a trace: %q", buf.String()[:40])
	}
}

func TestTraceErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-workload", "bogus"}, &buf); err == nil {
		t.Error("bad workload accepted")
	}
	if err := run(context.Background(), []string{"-replay", "/does/not/exist"}, &buf); err == nil {
		t.Error("missing replay file accepted")
	}
	if err := run(context.Background(), []string{"-zzz"}, &buf); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestRunTraceUsageErrors(t *testing.T) {
	cases := [][]string{
		{"-scale", "0"},
		{"-o", "x.trace", "-replay", "y.trace"},
	}
	for _, args := range cases {
		err := run(context.Background(), args, &bytes.Buffer{})
		if err == nil {
			t.Errorf("args %v accepted", args)
			continue
		}
		if campaign.ExitCode(err) != campaign.ExitUsage {
			t.Errorf("args %v: exit code %d, want %d (err: %v)",
				args, campaign.ExitCode(err), campaign.ExitUsage, err)
		}
	}
}

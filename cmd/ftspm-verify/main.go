// Command ftspm-verify fscks a campaign checkpoint journal offline: it
// re-derives every record's CRC32C and result attestation hash (journal
// format v2), distinguishes a torn trailing record (a crash mid-append;
// recoverable, resume truncates it) from mid-file bitrot (silent disk
// or transfer corruption; unrecoverable without re-running), and
// summarizes what the journal holds. v1 journals (no per-record
// checksums) verify structurally only, and the report says so.
//
// Usage:
//
//	ftspm-verify [-json] journal.ckpt
//
// Exit status: 0 journal clean (a torn tail alone is clean), 1 corrupt
// journal or I/O error, 2 bad flags.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"ftspm/internal/campaign"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ftspm-verify:", err)
		os.Exit(campaign.ExitCode(err))
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ftspm-verify", flag.ContinueOnError)
	asJSON := fs.Bool("json", false, "emit the verification report as JSON")
	if err := fs.Parse(args); err != nil {
		return campaign.Usagef("%v", err)
	}
	if fs.NArg() != 1 {
		return campaign.Usagef("usage: ftspm-verify [-json] journal.ckpt")
	}
	path := fs.Arg(0)

	blob, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	info, err := campaign.VerifyJournal(blob)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}

	if *asJSON {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(info)
	}
	integrity := "structural only (v1: no per-record checksums)"
	if info.Version >= 2 {
		integrity = "CRC32C + result hash verified per record"
	}
	fmt.Fprintf(out, "%s: journal v%d, config %s\n", path, info.Version, info.ConfigHash)
	fmt.Fprintf(out, "  %d record(s): %d done, %d failed, %d invalidation tombstone(s)\n",
		info.Records, info.Done, info.Failed, info.Invalidated)
	fmt.Fprintf(out, "  integrity: %s\n", integrity)
	if info.TornBytes > 0 {
		fmt.Fprintf(out, "  torn tail: %d byte(s) of a partial record (crash mid-append; resume will truncate it)\n",
			info.TornBytes)
	}
	fmt.Fprintln(out, "OK")
	return nil
}

package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ftspm/internal/campaign"
)

// writeJournal builds a real v2 journal with two done results and one
// tombstone, exactly as a campaign run would.
func writeJournal(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "soak.ckpt")
	jl, _, err := campaign.OpenJournal(path, "cafe", false)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"job/00", "job/01"} {
		if err := jl.Append(campaign.Result[json.RawMessage]{
			ID: id, Status: campaign.StatusDone, Attempts: 1,
			Value: json.RawMessage(`{"metric":7}`),
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := jl.Invalidate("job/01"); err != nil {
		t.Fatal(err)
	}
	if err := jl.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestVerifyCleanJournal(t *testing.T) {
	path := writeJournal(t)
	var out bytes.Buffer
	if err := run([]string{path}, &out); err != nil {
		t.Fatalf("verify clean journal: %v\n%s", err, out.String())
	}
	s := out.String()
	for _, want := range []string{"journal v2", "config cafe", "1 invalidation tombstone", "OK"} {
		if !strings.Contains(s, want) {
			t.Fatalf("output missing %q:\n%s", want, s)
		}
	}
}

// Tentpole acceptance: a single flipped byte inside a v2 record must be
// detected and exit nonzero (run returns an error), naming bitrot.
func TestVerifyDetectsSingleFlippedByte(t *testing.T) {
	path := writeJournal(t)
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte in the middle of the journal, past the header.
	i := bytes.Index(blob, []byte("metric"))
	if i < 0 {
		t.Fatal("fixture has no payload byte to flip")
	}
	blob[i] ^= 0x04
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	err = run([]string{path}, &out)
	if !errors.Is(err, campaign.ErrJournalBitrot) {
		t.Fatalf("err = %v, want ErrJournalBitrot", err)
	}
	if campaign.ExitCode(err) == 0 {
		t.Fatal("corrupt journal must exit nonzero")
	}
}

func TestVerifyTornTailIsCleanButReported(t *testing.T) {
	path := writeJournal(t)
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"crc":"dead`); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	if err := run([]string{path}, &out); err != nil {
		t.Fatalf("torn tail must verify clean: %v", err)
	}
	if !strings.Contains(out.String(), "torn tail: 12 byte(s)") {
		t.Fatalf("torn tail not reported:\n%s", out.String())
	}
}

func TestVerifyJSONOutput(t *testing.T) {
	path := writeJournal(t)
	var out bytes.Buffer
	if err := run([]string{"-json", path}, &out); err != nil {
		t.Fatal(err)
	}
	var info campaign.JournalInfo
	if err := json.Unmarshal(out.Bytes(), &info); err != nil {
		t.Fatalf("unparseable -json output: %v\n%s", err, out.String())
	}
	if info.Version != 2 || info.Done != 1 || info.Invalidated != 1 {
		t.Fatalf("info = %+v, want v2 with 1 live done and 1 tombstone", info)
	}
}

func TestVerifyUsageErrors(t *testing.T) {
	if err := run(nil, io.Discard); campaign.ExitCode(err) != 2 {
		t.Fatalf("missing arg: err = %v, want usage error (exit 2)", err)
	}
	if err := run([]string{"a", "b"}, io.Discard); campaign.ExitCode(err) != 2 {
		t.Fatalf("two args: err = %v, want usage error (exit 2)", err)
	}
}

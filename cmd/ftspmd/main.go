// Command ftspmd serves the FTSPM evaluation engines over HTTP/JSON:
// synchronous single-structure evaluation plus asynchronous sweep and
// soak campaigns backed by the crash-safe campaign runner, with
// admission control, load shedding, per-request deadlines, a readiness
// circuit breaker, panic isolation, and graceful drain.
//
// Endpoints:
//
//	POST   /v1/evaluate   one workload × structure, within a deadline
//	POST   /v1/map        batch mapping-as-a-service: every requested
//	                      (workload, structure) placement, composed
//	                      from the content-addressed result cache
//	POST   /v1/sweep      async full design-space sweep job
//	POST   /v1/soak       async Monte-Carlo recovery soak job
//	POST   /v1/fabric     execute one distributed-campaign chunk,
//	                      streaming per-job results as NDJSON (the
//	                      worker side of internal/fabric; drive it with
//	                      ftspm-bench/ftspm-soak -workers)
//	GET    /v1/jobs       list jobs
//	GET    /v1/jobs/{id}  job status / result
//	DELETE /v1/jobs/{id}  cancel a job (checkpointed, resumable)
//	GET    /healthz       liveness + load signals: in-flight jobs,
//	                      per-class admission backlog, breaker state
//	GET    /readyz        readiness (503 while draining or tripped)
//
// SIGINT/SIGTERM drains gracefully: admission closes, in-flight
// campaign jobs finish their running sim jobs and journal them, and the
// daemon exits 0. Interrupted jobs resume byte-identically when
// resubmitted with the same parameters, the same checkpoint name, and
// resume=true against the same -data dir.
//
// Usage:
//
//	ftspmd [-listen 127.0.0.1:8077] [-data ftspmd-data]
//	       [-max-evaluate N] [-evaluate-queue N]
//	       [-max-campaigns N] [-campaign-queue N]
//	       [-default-timeout 30s] [-max-timeout 2m]
//	       [-drain-timeout 1m] [-scale 1.0] [-chaos-corrupt 0]
//	       [-cache file] [-no-cache] [-cache-entries N] [-cache-bytes N]
//
// Every deterministic evaluation is memoized in a content-addressed
// result cache (DESIGN.md §16): repeated evaluate/sweep/fabric work is
// answered from memory, and -cache adds a disk tier that survives
// restarts (versioned by the build fingerprint, so a rebuilt daemon
// never serves a stale epoch). -no-cache disables memoization entirely.
//
// Exit status: 0 success (including a clean drain), 1 error, 2 bad
// flags.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"time"

	"ftspm/internal/campaign"
	"ftspm/internal/server"
)

func main() {
	ctx, stop := campaign.SignalContext(context.Background())
	err := run(ctx, os.Args[1:], os.Stdout)
	stop()
	if err != nil {
		fmt.Fprintln(os.Stderr, "ftspmd:", err)
		os.Exit(campaign.ExitCode(err))
	}
}

// onListen, when set, observes the bound listen address (test seam for
// -listen :0).
var onListen func(addr string)

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ftspmd", flag.ContinueOnError)
	fs.SetOutput(out)
	listen := fs.String("listen", "127.0.0.1:8077", "TCP listen address")
	data := fs.String("data", "ftspmd-data", "directory for per-job campaign checkpoints")
	maxEval := fs.Int("max-evaluate", 0, "concurrent synchronous evaluations (0 = default)")
	evalQueue := fs.Int("evaluate-queue", 0, "queued evaluations before shedding (0 = default)")
	maxCamp := fs.Int("max-campaigns", 0, "concurrent campaign jobs (0 = default)")
	campQueue := fs.Int("campaign-queue", 0, "queued campaign jobs before shedding (0 = default)")
	defTimeout := fs.Duration("default-timeout", 0, "evaluate deadline when unspecified (0 = default)")
	maxTimeout := fs.Duration("max-timeout", 0, "ceiling for client-requested deadlines (0 = default)")
	drainTimeout := fs.Duration("drain-timeout", time.Minute, "grace period for in-flight work on shutdown")
	scale := fs.Float64("scale", 0, "default trace scale for evaluate/sweep (0 = engine default)")
	chaosCorrupt := fs.Float64("chaos-corrupt", 0, "TESTING ONLY: silently corrupt this fraction of fabric result payloads (byzantine-worker drill)")
	cachePath := fs.String("cache", "", "persist the result cache to this file (disk tier; survives restarts)")
	noCache := fs.Bool("no-cache", false, "disable the content-addressed result cache entirely")
	cacheEntries := fs.Int("cache-entries", 0, "in-memory cache entry bound (0 = default)")
	cacheBytes := fs.Int64("cache-bytes", 0, "in-memory cache byte bound (0 = default)")
	if err := fs.Parse(args); err != nil {
		return campaign.Usagef("%v", err)
	}
	if fs.NArg() != 0 {
		return campaign.Usagef("unexpected arguments: %v", fs.Args())
	}
	if *noCache && (*cachePath != "" || *cacheEntries != 0 || *cacheBytes != 0) {
		return campaign.Usagef("-no-cache conflicts with -cache/-cache-entries/-cache-bytes")
	}

	srv, err := server.New(server.Config{
		DataDir:          *data,
		MaxEvaluate:      *maxEval,
		EvaluateQueue:    *evalQueue,
		MaxCampaigns:     *maxCamp,
		CampaignQueue:    *campQueue,
		DefaultTimeout:   *defTimeout,
		MaxTimeout:       *maxTimeout,
		DefaultScale:     *scale,
		ChaosCorruptFrac: *chaosCorrupt,
		NoCache:          *noCache,
		CachePath:        *cachePath,
		CacheEntries:     *cacheEntries,
		CacheBytes:       *cacheBytes,
	})
	if err != nil {
		return err
	}
	if *chaosCorrupt > 0 {
		fmt.Fprintf(out, "ftspmd: CHAOS: corrupting %.2g of fabric result payloads — never use this daemon for real results\n", *chaosCorrupt)
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return fmt.Errorf("listen: %w", err)
	}
	fmt.Fprintf(out, "ftspmd listening on %s (data dir %s)\n", ln.Addr(), *data)
	if onListen != nil {
		onListen(ln.Addr().String())
	}

	hs := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		return fmt.Errorf("serve: %w", err)
	case <-ctx.Done():
	}

	fmt.Fprintf(out, "ftspmd draining (up to %s)\n", *drainTimeout)
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Drain the job layer first (checkpoints in-flight campaigns), then
	// stop the HTTP side, which waits for in-flight request handlers.
	drainErr := srv.Drain(dctx)
	if err := hs.Shutdown(dctx); err != nil && drainErr == nil {
		drainErr = fmt.Errorf("shutdown: %w", err)
	}
	if sErr := <-serveErr; sErr != nil && !errors.Is(sErr, http.ErrServerClosed) && drainErr == nil {
		drainErr = sErr
	}
	if drainErr != nil {
		return drainErr
	}
	fmt.Fprintln(out, "ftspmd drained cleanly")
	return nil
}

package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"ftspm/internal/campaign"
	"ftspm/internal/server"
)

// syncBuffer guards run()'s output writer against concurrent reads from
// the test goroutine.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func TestRunBadFlagsIsUsage(t *testing.T) {
	err := run(context.Background(), []string{"-bogus"}, io.Discard)
	if !campaign.IsUsage(err) {
		t.Fatalf("err = %v, want usage error", err)
	}
	if got := campaign.ExitCode(err); got != campaign.ExitUsage {
		t.Fatalf("exit code = %d, want %d", got, campaign.ExitUsage)
	}
	err = run(context.Background(), []string{"extra-arg"}, io.Discard)
	if !campaign.IsUsage(err) {
		t.Fatalf("positional args: err = %v, want usage error", err)
	}
}

func TestRunBadListenAddr(t *testing.T) {
	err := run(context.Background(), []string{
		"-listen", "256.256.256.256:99999", "-data", t.TempDir(),
	}, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "listen") {
		t.Fatalf("err = %v, want listen error", err)
	}
}

// TestRunServeEvaluateAndDrain boots the real daemon on an ephemeral
// port, serves one evaluation, then cancels the signal context and
// checks it drains to a nil error (exit 0) with the drain messages
// logged.
func TestRunServeEvaluateAndDrain(t *testing.T) {
	addrCh := make(chan string, 1)
	onListen = func(addr string) { addrCh <- addr }
	defer func() { onListen = nil }()

	ctx, cancel := context.WithCancel(context.Background())
	out := &syncBuffer{}
	runErr := make(chan error, 1)
	go func() {
		runErr <- run(ctx, []string{
			"-listen", "127.0.0.1:0",
			"-data", filepath.Join(t.TempDir(), "data"),
			"-drain-timeout", "30s",
		}, out)
	}()

	var addr string
	select {
	case addr = <-addrCh:
	case err := <-runErr:
		t.Fatalf("daemon exited early: %v\n%s", err, out.String())
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never started listening")
	}
	base := "http://" + addr

	resp, err := http.Get(base + "/readyz")
	if err != nil {
		t.Fatalf("readyz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz = %d, want 200", resp.StatusCode)
	}

	body := `{"workload":"casestudy","structure":"ftspm","scale":0.05}`
	resp, err = http.Post(base+"/v1/evaluate", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("evaluate: %v", err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("evaluate = %d\n%s", resp.StatusCode, data)
	}
	var er server.EvaluateResponse
	if err := json.Unmarshal(data, &er); err != nil || er.Run.Cycles == 0 {
		t.Fatalf("evaluate body: %v\n%s", err, data)
	}

	cancel() // the SIGTERM path
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("drain returned %v (exit %d), want nil (exit 0)\n%s",
				err, campaign.ExitCode(err), out.String())
		}
	case <-time.After(60 * time.Second):
		t.Fatalf("daemon never drained\n%s", out.String())
	}
	log := out.String()
	for _, want := range []string{"listening on", "draining", "drained cleanly"} {
		if !strings.Contains(log, want) {
			t.Fatalf("log missing %q:\n%s", want, log)
		}
	}
	if campaign.ExitCode(nil) != campaign.ExitOK {
		t.Fatal("clean drain must map to exit 0")
	}
}

// Casestudy reproduces the paper's Section IV motivational example end
// to end: Table I (profiling), Table II (MDA placement), Fig. 2 (the
// read/write distribution across the hybrid regions), and the scalar
// results (reliability 86% vs 62%, dynamic energy −44%, static −56%,
// negligible performance overhead).
//
// Run with:
//
//	go run ./examples/casestudy
package main

import (
	"fmt"
	"log"
	"os"

	"ftspm/internal/experiments"
	"ftspm/internal/report"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	opts := experiments.Options{Scale: 0.25}

	t1, err := experiments.TableI(opts)
	if err != nil {
		return err
	}
	if err := t1.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println()

	t2, err := experiments.TableII(opts)
	if err != nil {
		return err
	}
	if err := t2.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println()

	f2, err := experiments.Fig2(opts)
	if err != nil {
		return err
	}
	if err := f2.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println()

	cs, err := experiments.CaseStudy(opts)
	if err != nil {
		return err
	}
	fmt.Println("Section IV headline results (paper values in parentheses):")
	fmt.Printf("  FTSPM reliability:     %s  (paper ~86%%)\n", report.Pct(cs.ReliabilityFTSPM))
	fmt.Printf("  baseline reliability:  %s  (paper ~62%%)\n", report.Pct(cs.ReliabilityBaseline))
	fmt.Printf("  dynamic energy:        %s of the SRAM baseline  (paper 56%%)\n", report.Pct(cs.DynamicVsSRAM))
	fmt.Printf("  static energy:         %s of the SRAM baseline  (paper 44%%)\n", report.Pct(cs.StaticVsSRAM))
	fmt.Printf("  performance overhead:  %s  (paper: negligible)\n", report.Pct(cs.PerfOverheadVsSRAM))
	return nil
}

// Faultinjection validates the paper's analytic AVF model (equations
// 4-7) against Monte-Carlo bit-flip injection into the real encoded SPM
// storage. It bombards each protection region with particle strikes
// drawn from the 40 nm MBU distribution [6], decodes every word through
// the real parity/SEC-DED logic, and compares the observed SDC/DUE/DRE
// rates with the analytic probabilities the mapping algorithm relies on.
//
// Run with:
//
//	go run ./examples/faultinjection [-strikes 20000]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"ftspm/internal/dram"
	"ftspm/internal/ecc"
	"ftspm/internal/faults"
	"ftspm/internal/report"
	"ftspm/internal/spm"
)

func main() {
	strikes := flag.Int("strikes", 20000, "particle strikes per region")
	seed := flag.Int64("seed", 2013, "random seed")
	flag.Parse()
	if err := run(*strikes, *seed); err != nil {
		log.Fatal(err)
	}
}

func run(strikes int, seed int64) error {
	rng := rand.New(rand.NewSource(seed))

	// Per-word campaigns against the real codecs: the per-strike
	// outcome rates behind equations (4)-(7).
	fmt.Println("Per-strike outcome rates under the 40 nm MBU distribution (62/25/6/7%):")
	t := report.New("", "Code", "DRE (corrected)", "DUE (detected)", "SDC (silent)",
		"analytic DUE", "analytic SDC")
	codecs := []struct {
		name    string
		codec   ecc.Codec
		anaDUE  float64
		anaSDC  float64
		analyt  string
		comment string
	}{
		{"hamming(39,32)", ecc.MustHamming(32), faults.Dist40nm.PExactly(2), faults.Dist40nm.PAtLeast(3), "eq. 5/7", "ECC region"},
		{"hamming(72,64)", ecc.MustHamming(64), faults.Dist40nm.PExactly(2), faults.Dist40nm.PAtLeast(3), "eq. 5/7", "wide ECC"},
	}
	parity, err := ecc.NewParity(32)
	if err != nil {
		return err
	}
	codecs = append(codecs, struct {
		name    string
		codec   ecc.Codec
		anaDUE  float64
		anaSDC  float64
		analyt  string
		comment string
	}{"parity(33,32)", parity, faults.Dist40nm.PExactly(1), faults.Dist40nm.PAtLeast(2), "eq. 4/6", "parity region"})

	for _, c := range codecs {
		campaign := faults.Campaign{Codec: c.codec, Dist: faults.Dist40nm, Seed: seed}
		tally, err := campaign.Run(strikes)
		if err != nil {
			return err
		}
		t.AddRow(c.name,
			report.Pct(tally.Rate(faults.DRE)),
			report.Pct(tally.Rate(faults.DUE)),
			report.Pct(tally.Rate(faults.SDC)),
			report.Pct(c.anaDUE),
			report.Pct(c.anaSDC),
		)
	}
	fmt.Println(t.String())
	fmt.Println("(the analytic SDC column is the paper's conservative bound: some >=3-bit")
	fmt.Println(" upsets are detected by the real decoder rather than silently corrupting)")

	// Structure-level campaign: build the FTSPM data SPM, fill it, and
	// bombard the whole surface. STT-RAM absorbs its share of strikes.
	s, err := spm.New(0,
		spm.RegionConfig{Kind: spm.RegionSTT, SizeBytes: 12 * 1024},
		spm.RegionConfig{Kind: spm.RegionECC, SizeBytes: 2 * 1024},
		spm.RegionConfig{Kind: spm.RegionParity, SizeBytes: 2 * 1024},
	)
	if err != nil {
		return err
	}
	for _, r := range s.Regions() {
		values := make([]uint32, r.Words())
		for i := range values {
			values[i] = dram.Value(uint32(i))
		}
		if _, err := r.Write(0, values); err != nil {
			return err
		}
	}
	flipped := 0
	for i := 0; i < strikes; i++ {
		hit, err := s.InjectStrike(rng, faults.Dist40nm)
		if err != nil {
			return err
		}
		if hit {
			flipped++
		}
	}
	fmt.Printf("\nFTSPM data-SPM surface campaign: %d strikes, %d flipped bits (%.1f%% absorbed by STT-RAM)\n",
		strikes, flipped, 100*(1-float64(flipped)/float64(strikes)))
	audit := s.Audit()
	fmt.Printf("audit of %d stored words: %d intact, %d corrected-on-read pending, %d detected (DUE), %d silently corrupted (SDC)\n",
		audit.Total(), audit.Benign, audit.DRE, audit.DUE, audit.SDC)
	fmt.Println("\nreading the ECC region scrubs correctable words:")
	eccRegion, _ := s.RegionByKind(spm.RegionECC)
	if _, _, err := eccRegion.Read(0, eccRegion.Words()); err != nil {
		return err
	}
	st := eccRegion.Stats()
	fmt.Printf("  ECC region read back: %d corrected (DRE), %d detected (DUE)\n",
		st.CorrectedErrors, st.DetectedErrors)
	return nil
}

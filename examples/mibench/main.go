// Mibench sweeps the 12-program MiBench-substitute suite over all three
// SPM structures (pure SRAM, pure STT-RAM, FTSPM) and regenerates the
// Section V figures: per-benchmark region distribution (Fig. 4),
// vulnerability (Fig. 5), static and dynamic energy (Figs. 6-7),
// endurance (Fig. 8), and the performance comparison.
//
// Run with:
//
//	go run ./examples/mibench [-scale 0.15]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"ftspm/internal/experiments"
	"ftspm/internal/report"
)

func main() {
	scale := flag.Float64("scale", 0.15, "trace length relative to the reference")
	flag.Parse()
	if err := run(*scale); err != nil {
		log.Fatal(err)
	}
}

func run(scale float64) error {
	fmt.Printf("sweeping 12 workloads x 3 structures at scale %.2f ...\n\n", scale)
	sw, err := experiments.RunSweep(experiments.Options{Scale: scale})
	if err != nil {
		return err
	}

	f4, err := experiments.Fig4(sw)
	if err != nil {
		return err
	}
	f5, sum5, err := experiments.Fig5(sw)
	if err != nil {
		return err
	}
	f6, _, _, err := experiments.Fig6(sw)
	if err != nil {
		return err
	}
	f7, dynSRAM, dynSTT, err := experiments.Fig7(sw)
	if err != nil {
		return err
	}
	f8, sum8, err := experiments.Fig8(sw)
	if err != nil {
		return err
	}
	perf, perfRatio, err := experiments.PerfOverhead(sw)
	if err != nil {
		return err
	}

	for _, t := range []*report.Table{f4, f5, f6, f7, f8, perf} {
		if err := t.Render(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
	}

	fmt.Println("Headlines:")
	fmt.Printf("  FTSPM is %.1fx less vulnerable than the pure SRAM SPM (paper: ~7x)\n", sum5.GeoMeanRatio)
	fmt.Printf("  FTSPM dynamic energy is %.0f%% below pure SRAM (paper 47%%) and %.0f%% below pure STT-RAM (paper 77%%)\n",
		(1-dynSRAM)*100, (1-dynSTT)*100)
	fmt.Printf("  FTSPM extends STT-RAM lifetime %.0fx (geo-mean; grows with trace length — see EXPERIMENTS.md)\n",
		sum8.GeoMeanRatio)
	fmt.Printf("  FTSPM runs at %.1f%% of the pure SRAM SPM's cycles (paper: <1%% overhead)\n", perfRatio*100)
	return nil
}

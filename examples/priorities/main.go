// Priorities demonstrates the "multi-priority" part of FTSPM's mapping
// algorithm (Section III: the algorithm "is also able to optimize the
// mapping of program blocks for reliability, performance, power, or
// endurance according to system requirements") and two of the design
// ablations built on top of it: the ECC/parity region split and the
// write-cycle threshold.
//
// Run with:
//
//	go run ./examples/priorities
package main

import (
	"fmt"
	"log"
	"os"

	"ftspm/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	opts := experiments.Options{Scale: 0.15}

	t, err := experiments.AblationPriorities("basicmath", opts)
	if err != nil {
		return err
	}
	if err := t.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println(`
Reading the table: the endurance priority tightens the write-cycle
threshold, deporting more blocks from STT-RAM (fewer "STT data blocks",
lower hottest-cell write rate); the reliability priority keeps the
budgets loose so as much data as possible sits in the immune region.`)

	_, split, err := experiments.AblationRegionSplit(opts)
	if err != nil {
		return err
	}
	fmt.Println()
	if err := split.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println(`
The paper fixes the SRAM share at 2 KB ECC + 2 KB parity; the sweep
shows the trade: more ECC lowers vulnerability (stronger protection for
the evicted write-hot blocks), more parity lowers latency and energy.`)

	_, wt, err := experiments.AblationWriteThreshold(opts)
	if err != nil {
		return err
	}
	fmt.Println()
	if err := wt.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println(`
Loosening the threshold keeps more write traffic in STT-RAM: endurance
(hottest-cell write rate) degrades while vulnerability improves — the
knob that positions FTSPM between the two baselines.`)
	return nil
}

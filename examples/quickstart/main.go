// Quickstart: the minimal end-to-end FTSPM pipeline.
//
// It profiles a workload, runs the Mapping Determiner Algorithm for the
// hybrid FTSPM structure, executes the workload on the simulated
// platform, and prints the reliability/energy/endurance summary — the
// five steps every experiment in this repository is built from.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"ftspm/internal/avf"
	"ftspm/internal/core"
	"ftspm/internal/endurance"
	"ftspm/internal/faults"
	"ftspm/internal/profile"
	"ftspm/internal/sim"
	"ftspm/internal/spm"
	"ftspm/internal/workloads"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. Pick a workload: a program image (blocks) plus a deterministic
	//    memory-access trace generator.
	w, err := workloads.ByName("sha")
	if err != nil {
		return err
	}
	fmt.Printf("workload: %s — %s\n", w.Name, w.Description)

	// 2. Off-line profiling (the paper's static profiling phase):
	//    per-block reads/writes/references/life-times.
	prof, err := profile.Run(w.Program(), w.Trace(0.25))
	if err != nil {
		return err
	}
	fmt.Printf("profiled %d blocks over %d cycles\n",
		len(prof.Blocks), prof.ExecCycles)

	// 3. The Mapping Determiner Algorithm (Algorithm 1) distributes the
	//    blocks over the hybrid regions under the default budgets.
	spec := core.MustSpec(core.StructFTSPM)
	mapping, err := core.MapBlocks(prof, spec, core.DefaultThresholds(), core.PriorityReliability)
	if err != nil {
		return err
	}
	for _, d := range mapping.Decisions {
		where := "off-SPM (cache)"
		if d.Mapped {
			where = d.Target.String()
		}
		fmt.Printf("  %-14s -> %-12s (%s)\n", d.Block.Name, where, d.Reason)
	}

	// 4. Execute on the simulated platform (Table IV geometry).
	machine, err := sim.New(w.Program(), spec.SimConfig(mapping.Placement))
	if err != nil {
		return err
	}
	res, err := machine.Run(w.Trace(0.25))
	if err != nil {
		return err
	}
	fmt.Printf("executed in %d cycles; SPM dynamic %v, leakage %v\n",
		res.Cycles, res.SPMDynamicEnergy, res.SPMLeakage)

	// 5. Reliability (equations 1-7) and endurance analysis.
	rep, err := avf.Compute(prof, mapping.Placement, faults.Dist40nm,
		spec.DSPMBytes(), avf.ModePerBlock)
	if err != nil {
		return err
	}
	fmt.Printf("SPM vulnerability %.4f (reliability %.1f%%)\n",
		rep.Vulnerability(), rep.Reliability()*100)

	rate, err := endurance.MaxCellWriteRate(machine.DataSPM(), res.Cycles, spm.RegionSTT)
	if err != nil {
		return err
	}
	fmt.Printf("hottest STT-RAM cell: %.0f writes/s -> %s at a 10^12 write-cycle threshold\n",
		rate, endurance.Humanize(endurance.Lifetime(1e12, rate)))
	return nil
}

// Validation demonstrates the end-to-end empirical check of the paper's
// reliability model: the same workload runs on all three structures
// while particle strikes (40 nm MBU mix) land on the data SPM, and the
// corrupted words the program actually consumes are tallied through the
// real parity/SEC-DED decoders. The immune pure STT-RAM SPM consumes
// nothing; the SEC-DED baseline consumes several times more than FTSPM —
// the empirical face of the paper's 7x claim (Fig. 5).
//
// Run with:
//
//	go run ./examples/validation [-rate 0.05]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"ftspm/internal/experiments"
)

func main() {
	rate := flag.Float64("rate", 0.05, "strikes per access on the data SPM")
	seed := flag.Int64("seed", 2013, "campaign seed")
	flag.Parse()
	if err := run(*rate, *seed); err != nil {
		log.Fatal(err)
	}
}

func run(rate float64, seed int64) error {
	rows, table, err := experiments.ValidateAVF("casestudy", rate, seed,
		experiments.Options{Scale: 0.15})
	if err != nil {
		return err
	}
	if err := table.Render(os.Stdout); err != nil {
		return err
	}

	var sram, ftspm experiments.ValidationRow
	for _, r := range rows {
		switch r.Structure.String() {
		case "pure-SRAM":
			sram = r
		case "FTSPM":
			ftspm = r
		}
	}
	fmt.Printf(`
Reading the table: every structure absorbed the same strike flux, but
the pure SRAM baseline let %d corrupted reads through to the program
(%d detected-unrecoverable + %d silent) while FTSPM let through %d —
a %.1fx empirical gap, produced entirely by real codecs decoding really
corrupted words. The analytic column is the closed-form AVF the mapping
algorithm optimizes; injection and analysis agree on the ordering.
`,
		sram.ConsumedErrors(), sram.DetectedReads, sram.SilentReads,
		ftspm.ConsumedErrors(),
		float64(sram.ConsumedErrors())/float64(ftspm.ConsumedErrors()+1))
	return nil
}

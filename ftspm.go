// Package ftspm is a from-scratch reproduction of "FTSPM: A
// Fault-Tolerant ScratchPad Memory" (Monazzah et al., DSN 2013): a
// hybrid STT-RAM / ECC-SRAM / parity-SRAM scratchpad structure and the
// multi-priority Mapping Determiner Algorithm that distributes program
// blocks over it by vulnerability, under performance, energy, and
// endurance budgets.
//
// This package is the top-level facade. The pieces live in internal
// packages (see DESIGN.md for the full inventory):
//
//   - internal/core — the paper's contribution: structures and the MDA
//   - internal/spm, memtech, ecc, faults — the hardware substrates
//   - internal/sim, cache, dram — the FaCSim-substitute platform
//   - internal/workloads, profile — the MiBench substitute and profiler
//   - internal/avf, endurance — the reliability and wear models
//   - internal/experiments — one driver per paper table/figure
//
// The quickest ways in:
//
//	out, err := ftspm.Evaluate("sha", ftspm.FTSPM, ftspm.Options{})
//	sweep, err := ftspm.RunSweep(ftspm.Options{})
//
// or run the tools: cmd/ftspm-profile, cmd/ftspm-map, cmd/ftspm-sim,
// and cmd/ftspm-bench (which regenerates every table and figure).
package ftspm

import (
	"ftspm/internal/core"
	"ftspm/internal/experiments"
	"ftspm/internal/workloads"
)

// Structure selects one of the three evaluated SPM organizations.
type Structure = core.Structure

// The evaluated structures (Table IV).
const (
	// FTSPM is the proposed hybrid structure.
	FTSPM = core.StructFTSPM
	// PureSRAM is the SEC-DED SRAM baseline.
	PureSRAM = core.StructPureSRAM
	// PureSTT is the STT-RAM baseline.
	PureSTT = core.StructPureSTT
	// DMR is the related-work duplication comparator [3] (extension).
	DMR = core.StructDMR
)

// Priority selects the MDA optimization target.
type Priority = core.Priority

// MDA priorities (Section III).
const (
	Reliability = core.PriorityReliability
	Performance = core.PriorityPerformance
	Power       = core.PriorityPower
	Endurance   = core.PriorityEndurance
)

// Options parameterize an evaluation; the zero value uses the defaults
// recorded in EXPERIMENTS.md.
type Options = experiments.Options

// Outcome is a full single-run evaluation: profile, mapping, simulation,
// reliability, endurance.
type Outcome = experiments.Outcome

// Sweep is a full-suite, all-structures evaluation.
type Sweep = experiments.Sweep

// Evaluate runs the complete pipeline for one workload on one structure.
func Evaluate(workload string, s Structure, opts Options) (Outcome, error) {
	return experiments.EvaluateByName(workload, s, opts)
}

// RunSweep evaluates the 12-workload suite on all three structures.
func RunSweep(opts Options) (*Sweep, error) {
	return experiments.RunSweep(opts)
}

// Workloads returns the available workload names: the Section IV case
// study followed by the MiBench-substitute suite.
func Workloads() []string {
	return append([]string{workloads.CaseStudyName}, workloads.Names()...)
}

package ftspm_test

import (
	"fmt"
	"testing"

	"ftspm"
)

func TestFacadeWorkloads(t *testing.T) {
	names := ftspm.Workloads()
	if len(names) != 13 {
		t.Fatalf("Workloads() = %d names, want 13 (case study + suite)", len(names))
	}
	if names[0] != "casestudy" {
		t.Errorf("first workload = %q", names[0])
	}
}

func TestFacadeEvaluate(t *testing.T) {
	out, err := ftspm.Evaluate("crc32", ftspm.FTSPM, ftspm.Options{Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if out.Workload != "crc32" || out.Structure != ftspm.FTSPM {
		t.Errorf("identity = %s/%v", out.Workload, out.Structure)
	}
	if out.Sim.Cycles == 0 || out.AVF.Reliability() <= 0 {
		t.Error("empty outcome")
	}
	if _, err := ftspm.Evaluate("nope", ftspm.FTSPM, ftspm.Options{}); err == nil {
		t.Error("unknown workload accepted")
	}
	// The DMR comparator is reachable through the facade too.
	dmr, err := ftspm.Evaluate("crc32", ftspm.DMR, ftspm.Options{Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if dmr.AVF.SDCAVF != 0 {
		t.Error("DMR produced silent corruption mass")
	}
}

func TestFacadeRunSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep")
	}
	sw, err := ftspm.RunSweep(ftspm.Options{Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if len(sw.Workloads) != 12 {
		t.Errorf("sweep covered %d workloads", len(sw.Workloads))
	}
}

// ExampleEvaluate demonstrates the one-call pipeline: profile the
// workload, run the Mapping Determiner Algorithm for the hybrid
// structure, simulate, and read off the reliability result.
func ExampleEvaluate() {
	out, err := ftspm.Evaluate("casestudy", ftspm.FTSPM, ftspm.Options{Scale: 0.1})
	if err != nil {
		panic(err)
	}
	d, _ := out.Mapping.Decision("Stack")
	fmt.Println(out.Workload, "stack region:", d.Target)
	fmt.Println("more reliable than the 62% baseline:", out.AVF.Reliability() > 0.62)
	// Output:
	// casestudy stack region: SRAM(parity)
	// more reliable than the 62% baseline: true
}

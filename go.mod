module ftspm

go 1.22

// Package avf implements the paper's reliability model: the
// Architectural Vulnerability Factor equations (1)-(7) of Section IV.
// Vulnerability is the sum of the SDC and DUE AVFs, each accumulated over
// the blocks resident in vulnerable SPM regions, weighted by the block's
// occupancy of the SPM surface, its ACE time, and the per-region
// SDC/DUE probabilities derived from the MBU multiplicity distribution:
//
//	DUE(parity) = P(1)        SDC(parity) = P(≥2)     (eqs. 4, 6)
//	DUE(ECC)    = P(2)        SDC(ECC)    = P(≥3)     (eqs. 5, 7)
//	STT-RAM     = immune                               ([9])
//
// For the uniform single-region SRAM baseline the paper treats the whole
// SPM surface as architecturally live — which is why its Fig. 5 curve is
// flat across workloads — so Compute offers a ModeUniform that assigns
// the full surface the region's SDC/DUE probabilities.
package avf

import (
	"errors"
	"fmt"
	"sort"

	"ftspm/internal/faults"
	"ftspm/internal/profile"
	"ftspm/internal/program"
	"ftspm/internal/spm"
)

// Mode selects how block liveness maps onto the SPM surface.
type Mode int

// Modes.
const (
	// ModePerBlock weighs each mapped block by occupancy × ACE time —
	// the FTSPM analysis of Section IV.
	ModePerBlock Mode = iota + 1
	// ModeUniform treats the whole surface as ACE with the placement's
	// region probabilities — the paper's conservative treatment of the
	// uniform baselines (it is what makes the baseline curve flat).
	ModeUniform
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModePerBlock:
		return "per-block"
	case ModeUniform:
		return "uniform"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// BlockAVF is one block's contribution.
type BlockAVF struct {
	// Name is the block name.
	Name string
	// Region is the block's mapped region kind.
	Region spm.RegionKind
	// Occupancy is the block's share of the total SPM surface.
	Occupancy float64
	// ACE is the block's architecturally-correct-execution time
	// fraction.
	ACE float64
	// SDC and DUE are the block's AVF contributions.
	SDC, DUE float64
}

// Report is the structure-level reliability result.
type Report struct {
	// SDCAVF and DUEAVF are the equation (2) and (3) sums.
	SDCAVF, DUEAVF float64
	// PerBlock lists each mapped block's contribution (ModePerBlock
	// only).
	PerBlock []BlockAVF
	// Mode records how the report was computed.
	Mode Mode
}

// Vulnerability returns equation (1): SDC AVF + DUE AVF.
func (r Report) Vulnerability() float64 { return r.SDCAVF + r.DUEAVF }

// Reliability returns 1 - Vulnerability, the headline percentage quoted
// in Section IV (86% FTSPM vs 62% baseline for the case study).
func (r Report) Reliability() float64 { return 1 - r.Vulnerability() }

// sdcProb returns the per-strike SDC probability of a region kind
// (equations 6-7).
func sdcProb(k spm.RegionKind, d faults.MBUDistribution) float64 {
	switch k {
	case spm.RegionSTT:
		return 0
	case spm.RegionECC:
		return d.PAtLeast(3)
	case spm.RegionParity:
		return d.PAtLeast(2)
	case spm.RegionDMR:
		// Silent corruption needs identical flips in both copies:
		// negligible for independent strikes.
		return 0
	default: // plain SRAM: every upset is silent
		return d.PAtLeast(1)
	}
}

// dueProb returns the per-strike DUE probability of a region kind
// (equations 4-5).
func dueProb(k spm.RegionKind, d faults.MBUDistribution) float64 {
	switch k {
	case spm.RegionSTT:
		return 0
	case spm.RegionECC:
		return d.PExactly(2)
	case spm.RegionParity:
		return d.PExactly(1)
	case spm.RegionDMR:
		// Everything is detected, nothing recovered.
		return d.PAtLeast(1)
	default:
		return 0
	}
}

// Errors returned by Compute.
var (
	ErrNilProfile = errors.New("avf: profile must not be nil")
	ErrBadSurface = errors.New("avf: total SPM bytes must be positive")
	ErrBadMode    = errors.New("avf: unknown mode")
)

// Compute evaluates the AVF equations for a placement over a profile.
// totalSPMBytes is the full SPM surface (instruction + data SPM) that
// normalizes block occupancies.
//
// In ModeUniform the placement's region kinds are weighted by their share
// of the surface with ACE treated as 1 (see package comment); per-block
// contributions are not reported.
func Compute(prof *profile.Profile, place spm.Placement, dist faults.MBUDistribution,
	totalSPMBytes int, mode Mode) (Report, error) {
	if prof == nil {
		return Report{}, ErrNilProfile
	}
	if totalSPMBytes <= 0 {
		return Report{}, fmt.Errorf("%w: %d", ErrBadSurface, totalSPMBytes)
	}
	if err := dist.Validate(); err != nil {
		return Report{}, err
	}

	switch mode {
	case ModeUniform:
		// The surface takes the worst (most common) mapped kind's
		// probabilities; for the paper's baselines the placement is
		// single-kind, so this is exact.
		counts := place.CountByKind()
		var kind spm.RegionKind
		best := -1
		for k, n := range counts {
			if n > best || (n == best && k < kind) {
				kind, best = k, n
			}
		}
		if best < 0 {
			return Report{Mode: mode}, nil
		}
		return Report{
			SDCAVF: sdcProb(kind, dist),
			DUEAVF: dueProb(kind, dist),
			Mode:   mode,
		}, nil
	case ModePerBlock:
		rep := Report{Mode: mode}
		// Iterate the placement in ascending block order, not map
		// order: float accumulation is not associative, so a wandering
		// iteration order would smear the last ulp of the AVF across
		// runs — the sweep engine promises bit-identical outcomes.
		ids := make([]program.BlockID, 0, len(place))
		for id := range place {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			kind := place[id]
			if int(id) < 0 || int(id) >= len(prof.Blocks) {
				return Report{}, fmt.Errorf("avf: placement references unknown block %d", id)
			}
			bp := prof.Blocks[id]
			occ := float64(bp.Block.Size) / float64(totalSPMBytes)
			ace := prof.ACE(id)
			b := BlockAVF{
				Name:      bp.Block.Name,
				Region:    kind,
				Occupancy: occ,
				ACE:       ace,
				SDC:       occ * ace * sdcProb(kind, dist),
				DUE:       occ * ace * dueProb(kind, dist),
			}
			rep.SDCAVF += b.SDC
			rep.DUEAVF += b.DUE
			rep.PerBlock = append(rep.PerBlock, b)
		}
		sortBlocks(rep.PerBlock)
		return rep, nil
	default:
		return Report{}, fmt.Errorf("%w: %d", ErrBadMode, int(mode))
	}
}

// sortBlocks orders contributions by descending total AVF, then name,
// for stable reporting.
func sortBlocks(bs []BlockAVF) {
	for i := 1; i < len(bs); i++ {
		for j := i; j > 0; j-- {
			a, b := bs[j-1], bs[j]
			if a.SDC+a.DUE > b.SDC+b.DUE ||
				(a.SDC+a.DUE == b.SDC+b.DUE && a.Name <= b.Name) {
				break
			}
			bs[j-1], bs[j] = b, a
		}
	}
}

// RegionContribution sums the AVF mass per region kind.
type RegionContribution struct {
	Region   spm.RegionKind
	SDC, DUE float64
	Blocks   int
}

// ByRegion aggregates the per-block contributions by region kind,
// ordered by descending total contribution (ModePerBlock reports only).
func (r Report) ByRegion() []RegionContribution {
	agg := make(map[spm.RegionKind]*RegionContribution)
	var order []spm.RegionKind
	for _, b := range r.PerBlock {
		c, ok := agg[b.Region]
		if !ok {
			c = &RegionContribution{Region: b.Region}
			agg[b.Region] = c
			order = append(order, b.Region)
		}
		c.SDC += b.SDC
		c.DUE += b.DUE
		c.Blocks++
	}
	out := make([]RegionContribution, 0, len(order))
	for _, k := range order {
		out = append(out, *agg[k])
	}
	// Insertion sort by descending contribution, region id tie-break.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0; j-- {
			a, b := out[j-1], out[j]
			if a.SDC+a.DUE > b.SDC+b.DUE ||
				(a.SDC+a.DUE == b.SDC+b.DUE && a.Region <= b.Region) {
				break
			}
			out[j-1], out[j] = b, a
		}
	}
	return out
}

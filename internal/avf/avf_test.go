package avf

import (
	"errors"
	"math"
	"testing"

	"ftspm/internal/faults"
	"ftspm/internal/profile"
	"ftspm/internal/program"
	"ftspm/internal/spm"
	"ftspm/internal/trace"
	"ftspm/internal/workloads"
)

// fixedProfile builds a profile with two data blocks of known ACE.
func fixedProfile(t *testing.T) (*profile.Profile, map[string]program.BlockID) {
	t.Helper()
	p := program.New("avf")
	ids := map[string]program.BlockID{
		"A": p.MustAddBlock("A", program.DataBlock, 1024),
		"B": p.MustAddBlock("B", program.DataBlock, 512),
	}
	addr := func(name string, off int) uint32 {
		a, err := p.AddrOf(ids[name], off)
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	// Timeline: A accessed at cycles 1 and 10 (span 9), B at 5 (span 0),
	// exec = 10.
	evs := []trace.Event{
		trace.AccessEvent(trace.Access{Op: trace.Write, Space: trace.Data, Addr: addr("A", 0), Size: 4}),
		trace.AccessEvent(trace.Access{Op: trace.Read, Space: trace.Data, Addr: addr("B", 0), Size: 4, Think: 3}),
		trace.AccessEvent(trace.Access{Op: trace.Read, Space: trace.Data, Addr: addr("A", 4), Size: 4, Think: 4}),
	}
	prof, err := profile.Run(p, trace.NewSliceStream(evs))
	if err != nil {
		t.Fatal(err)
	}
	return prof, ids
}

func TestComputePerBlockEquations(t *testing.T) {
	prof, ids := fixedProfile(t)
	const surface = 32 * 1024
	place := spm.Placement{
		ids["A"]: spm.RegionECC,
		ids["B"]: spm.RegionParity,
	}
	rep, err := Compute(prof, place, faults.Dist40nm, surface, ModePerBlock)
	if err != nil {
		t.Fatal(err)
	}
	// A: occ 1024/32768, ACE = span 9 / exec 10.
	occA, aceA := 1024.0/surface, 0.9
	occB, aceB := 512.0/surface, 0.0
	wantSDC := occA*aceA*0.13 + occB*aceB*0.38 // eqs. 7, 6
	wantDUE := occA*aceA*0.25 + occB*aceB*0.62 // eqs. 5, 4
	if math.Abs(rep.SDCAVF-wantSDC) > 1e-12 {
		t.Errorf("SDC = %v, want %v", rep.SDCAVF, wantSDC)
	}
	if math.Abs(rep.DUEAVF-wantDUE) > 1e-12 {
		t.Errorf("DUE = %v, want %v", rep.DUEAVF, wantDUE)
	}
	if math.Abs(rep.Vulnerability()-(wantSDC+wantDUE)) > 1e-12 {
		t.Error("Vulnerability != SDC+DUE (eq. 1)")
	}
	if math.Abs(rep.Reliability()-(1-wantSDC-wantDUE)) > 1e-12 {
		t.Error("Reliability wrong")
	}
	if len(rep.PerBlock) != 2 {
		t.Fatalf("PerBlock = %d entries", len(rep.PerBlock))
	}
	// Sorted by descending contribution: A first.
	if rep.PerBlock[0].Name != "A" {
		t.Errorf("first contributor = %s", rep.PerBlock[0].Name)
	}
	if rep.Mode != ModePerBlock {
		t.Error("mode not recorded")
	}
}

func TestComputeSTTBlocksContributeNothing(t *testing.T) {
	prof, ids := fixedProfile(t)
	place := spm.Placement{
		ids["A"]: spm.RegionSTT,
		ids["B"]: spm.RegionSTT,
	}
	rep, err := Compute(prof, place, faults.Dist40nm, 32*1024, ModePerBlock)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Vulnerability() != 0 {
		t.Errorf("STT-only vulnerability = %v, want 0 (immune per [9])", rep.Vulnerability())
	}
	if rep.Reliability() != 1 {
		t.Error("STT-only reliability != 1")
	}
}

func TestComputeUniformBaseline(t *testing.T) {
	prof, ids := fixedProfile(t)
	place := spm.Placement{
		ids["A"]: spm.RegionECC,
		ids["B"]: spm.RegionECC,
	}
	rep, err := Compute(prof, place, faults.Dist40nm, 32*1024, ModeUniform)
	if err != nil {
		t.Fatal(err)
	}
	// The uniform SEC-DED baseline sits at DUE=P(2)=0.25,
	// SDC=P(>=3)=0.13 — vulnerability 0.38, reliability 62%: exactly the
	// Section IV baseline number.
	if math.Abs(rep.Vulnerability()-0.38) > 1e-12 {
		t.Errorf("uniform baseline vulnerability = %v, want 0.38", rep.Vulnerability())
	}
	if math.Abs(rep.Reliability()-0.62) > 1e-12 {
		t.Errorf("uniform baseline reliability = %v, want 0.62 (Section IV)", rep.Reliability())
	}
	if rep.PerBlock != nil {
		t.Error("uniform mode reported per-block entries")
	}
	// Empty placement: nothing vulnerable.
	empty, err := Compute(prof, spm.Placement{}, faults.Dist40nm, 32*1024, ModeUniform)
	if err != nil {
		t.Fatal(err)
	}
	if empty.Vulnerability() != 0 {
		t.Error("empty placement vulnerable")
	}
}

func TestComputeValidation(t *testing.T) {
	prof, ids := fixedProfile(t)
	place := spm.Placement{ids["A"]: spm.RegionECC}
	if _, err := Compute(nil, place, faults.Dist40nm, 1, ModePerBlock); !errors.Is(err, ErrNilProfile) {
		t.Error("nil profile accepted")
	}
	if _, err := Compute(prof, place, faults.Dist40nm, 0, ModePerBlock); !errors.Is(err, ErrBadSurface) {
		t.Error("zero surface accepted")
	}
	if _, err := Compute(prof, place, faults.MBUDistribution{}, 1024, ModePerBlock); err == nil {
		t.Error("invalid distribution accepted")
	}
	if _, err := Compute(prof, place, faults.Dist40nm, 1024, Mode(9)); !errors.Is(err, ErrBadMode) {
		t.Error("bad mode accepted")
	}
	bad := spm.Placement{program.BlockID(99): spm.RegionECC}
	if _, err := Compute(prof, bad, faults.Dist40nm, 1024, ModePerBlock); err == nil {
		t.Error("phantom block accepted")
	}
	if ModePerBlock.String() != "per-block" || ModeUniform.String() != "uniform" ||
		Mode(9).String() != "Mode(9)" {
		t.Error("mode stringer")
	}
}

func TestCaseStudyReliabilityShape(t *testing.T) {
	// Section IV: FTSPM reliability ~86% vs 62% baseline. With our
	// occupancy normalization the FTSPM value lands a little higher (see
	// EXPERIMENTS.md); the required shape is a large gap over the
	// baseline.
	w := workloads.CaseStudy()
	prof, err := profile.Run(w.Program(), w.Trace(0.25))
	if err != nil {
		t.Fatal(err)
	}
	ids := map[string]program.BlockID{}
	for _, name := range []string{"Array1", "Array2", "Array3", "Array4", "Stack", "Mul", "Add"} {
		id, ok := w.Program().Lookup(name)
		if !ok {
			t.Fatal("missing block")
		}
		ids[name] = id
	}
	place := spm.Placement{
		ids["Mul"]:    spm.RegionSTT,
		ids["Add"]:    spm.RegionSTT,
		ids["Array1"]: spm.RegionECC,
		ids["Array2"]: spm.RegionSTT,
		ids["Array3"]: spm.RegionECC,
		ids["Array4"]: spm.RegionSTT,
		ids["Stack"]:  spm.RegionParity,
	}
	rep, err := Compute(prof, place, faults.Dist40nm, 32*1024, ModePerBlock)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Reliability() < 0.80 {
		t.Errorf("FTSPM case-study reliability = %.3f, want > 0.80", rep.Reliability())
	}
	if rep.Vulnerability() <= 0 {
		t.Error("case study reported zero vulnerability")
	}
	// The gap over the 62% baseline must be large.
	if rep.Reliability()-0.62 < 0.18 {
		t.Errorf("reliability gap = %.3f, want > 0.18 (paper: 24pp)", rep.Reliability()-0.62)
	}
}

func TestByRegion(t *testing.T) {
	prof, ids := fixedProfile(t)
	place := spm.Placement{
		ids["A"]: spm.RegionECC,
		ids["B"]: spm.RegionParity,
	}
	rep, err := Compute(prof, place, faults.Dist40nm, 16*1024, ModePerBlock)
	if err != nil {
		t.Fatal(err)
	}
	regions := rep.ByRegion()
	if len(regions) != 2 {
		t.Fatalf("regions = %d", len(regions))
	}
	// A (ECC, ACE 0.9) dominates B (parity, ACE 0).
	if regions[0].Region != spm.RegionECC || regions[0].Blocks != 1 {
		t.Errorf("first region = %+v", regions[0])
	}
	var total float64
	for _, c := range regions {
		total += c.SDC + c.DUE
	}
	if math.Abs(total-rep.Vulnerability()) > 1e-12 {
		t.Errorf("region totals %v != vulnerability %v", total, rep.Vulnerability())
	}
	// Uniform reports have no per-block data and no regions.
	uni, err := Compute(prof, place, faults.Dist40nm, 16*1024, ModeUniform)
	if err != nil {
		t.Fatal(err)
	}
	if len(uni.ByRegion()) != 0 {
		t.Error("uniform report produced region contributions")
	}
}

// Package cache models the L1 instruction/data caches of the evaluated
// platform (Table IV: 8 KB unprotected SRAM, 1-cycle access). The caches
// back the program blocks that the mapping algorithm leaves out of the
// SPM (e.g. the case study's Main), so their hit/miss behaviour sets the
// cost of not mapping a block.
//
// The model is a set-associative, write-back, write-allocate cache with
// LRU replacement. It reports structural outcomes (hit, miss, dirty
// eviction) and charges the cache-array access itself; the simulator
// charges the off-chip traffic through the dram package.
package cache

import (
	"errors"
	"fmt"
	"math/bits"

	"ftspm/internal/memtech"
)

// Config sizes a cache.
type Config struct {
	// SizeBytes is the total capacity (power of two).
	SizeBytes int
	// LineBytes is the line size (power of two).
	LineBytes int
	// Ways is the associativity.
	Ways int
	// Bank supplies the latency/energy of one array access.
	Bank memtech.Bank
}

// DefaultL1 returns the Table IV 8 KB unprotected-SRAM L1 configuration.
func DefaultL1() Config {
	return Config{
		SizeBytes: 8 * 1024,
		LineBytes: 32,
		Ways:      4,
		Bank:      memtech.MustEstimateBank(memtech.SRAM, memtech.Unprotected, 8*1024),
	}
}

// Errors returned by New.
var (
	ErrBadGeometry = errors.New("cache: size, line size, and ways must be positive powers-of-two factors")
)

type line struct {
	tag   uint32
	valid bool
	dirty bool
	lru   uint64
}

// Stats counts cache events.
type Stats struct {
	Hits, Misses     uint64
	Evictions        uint64
	DirtyWritebacks  uint64
	ReadAccesses     uint64
	WriteAccesses    uint64
	EnergyPicojoules memtech.Picojoules
}

// HitRate returns hits/(hits+misses), 0 for an untouched cache.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Result reports the structural outcome of one access.
type Result struct {
	// Hit is true when the line was present.
	Hit bool
	// Cycles charges the cache-array time (miss handling time is charged
	// by the caller through the DRAM model).
	Cycles memtech.Cycles
	// Energy charges the cache-array energy.
	Energy memtech.Picojoules
	// FillWords is the number of words the caller must fetch from
	// off-chip to fill the missed line (0 on hit).
	FillWords int
	// WritebackWords is the number of dirty words the caller must write
	// back off-chip for the evicted line (0 if none).
	WritebackWords int
}

// Cache is a set-associative write-back cache.
type Cache struct {
	cfg      Config
	sets     [][]line
	setShift uint
	setMask  uint32
	tick     uint64
	stats    Stats
}

// New validates the configuration and returns an empty cache.
func New(cfg Config) (*Cache, error) {
	if cfg.SizeBytes <= 0 || cfg.LineBytes <= 0 || cfg.Ways <= 0 {
		return nil, fmt.Errorf("%w: %+v", ErrBadGeometry, cfg)
	}
	if cfg.SizeBytes%(cfg.LineBytes*cfg.Ways) != 0 {
		return nil, fmt.Errorf("%w: size %d not divisible by line*ways", ErrBadGeometry, cfg.SizeBytes)
	}
	if bits.OnesCount(uint(cfg.LineBytes)) != 1 {
		return nil, fmt.Errorf("%w: line size %d not a power of two", ErrBadGeometry, cfg.LineBytes)
	}
	nsets := cfg.SizeBytes / (cfg.LineBytes * cfg.Ways)
	if bits.OnesCount(uint(nsets)) != 1 {
		return nil, fmt.Errorf("%w: %d sets not a power of two", ErrBadGeometry, nsets)
	}
	sets := make([][]line, nsets)
	for i := range sets {
		sets[i] = make([]line, cfg.Ways)
	}
	return &Cache{
		cfg:      cfg,
		sets:     sets,
		setShift: uint(bits.TrailingZeros(uint(cfg.LineBytes))),
		setMask:  uint32(nsets - 1),
	}, nil
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a copy of the event counters.
func (c *Cache) Stats() Stats { return c.stats }

// Access performs one read or write of size bytes at addr. Accesses that
// straddle a line boundary are split internally; the returned Result
// aggregates the pieces (Hit is true only if every piece hit).
func (c *Cache) Access(addr uint32, size int, write bool) Result {
	if size < 1 {
		size = 1
	}
	var agg Result
	agg.Hit = true
	end := uint64(addr) + uint64(size)
	for cur := uint64(addr); cur < end; {
		lineEnd := (cur | uint64(c.cfg.LineBytes-1)) + 1
		if lineEnd > end {
			lineEnd = end
		}
		r := c.accessOne(uint32(cur), int(lineEnd-cur), write)
		agg.Hit = agg.Hit && r.Hit
		agg.Cycles += r.Cycles
		agg.Energy += r.Energy
		agg.FillWords += r.FillWords
		agg.WritebackWords += r.WritebackWords
		cur = lineEnd
	}
	return agg
}

func (c *Cache) accessOne(addr uint32, size int, write bool) Result {
	c.tick++
	if write {
		c.stats.WriteAccesses++
	} else {
		c.stats.ReadAccesses++
	}
	setIdx := (addr >> c.setShift) & c.setMask
	tag := addr >> c.setShift >> uint(bits.TrailingZeros(uint(len(c.sets))))
	set := c.sets[setIdx]

	res := Result{
		Cycles: c.cfg.Bank.AccessLatency(size, write),
		Energy: c.cfg.Bank.AccessEnergy(size, write),
	}
	c.stats.EnergyPicojoules += res.Energy

	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].lru = c.tick
			if write {
				set[i].dirty = true
			}
			c.stats.Hits++
			res.Hit = true
			return res
		}
	}

	// Miss: pick the LRU victim.
	c.stats.Misses++
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	if set[victim].valid {
		c.stats.Evictions++
		if set[victim].dirty {
			c.stats.DirtyWritebacks++
			res.WritebackWords = c.cfg.LineBytes / memtech.WordBytes
		}
	}
	set[victim] = line{tag: tag, valid: true, dirty: write, lru: c.tick}
	res.FillWords = c.cfg.LineBytes / memtech.WordBytes
	return res
}

// Flush invalidates every line and returns the number of dirty words the
// caller must write back.
func (c *Cache) Flush() int {
	dirtyWords := 0
	for si := range c.sets {
		for wi := range c.sets[si] {
			l := &c.sets[si][wi]
			if l.valid && l.dirty {
				dirtyWords += c.cfg.LineBytes / memtech.WordBytes
				c.stats.DirtyWritebacks++
			}
			*l = line{}
		}
	}
	return dirtyWords
}

package cache

import (
	"errors"
	"math/rand"
	"testing"
)

func newL1(t *testing.T) *Cache {
	t.Helper()
	c, err := New(DefaultL1())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewRejectsBadGeometry(t *testing.T) {
	base := DefaultL1()
	bad := []Config{
		{},
		{SizeBytes: 8192, LineBytes: 0, Ways: 4, Bank: base.Bank},
		{SizeBytes: 8192, LineBytes: 48, Ways: 4, Bank: base.Bank},    // not pow2
		{SizeBytes: 8190, LineBytes: 32, Ways: 4, Bank: base.Bank},    // not divisible
		{SizeBytes: 96 * 32, LineBytes: 32, Ways: 1, Bank: base.Bank}, // 96 sets not pow2
	}
	for i, cfg := range bad {
		if _, err := New(cfg); !errors.Is(err, ErrBadGeometry) {
			t.Errorf("config %d accepted: %v", i, err)
		}
	}
}

func TestColdMissThenHit(t *testing.T) {
	c := newL1(t)
	r := c.Access(0x1000, 4, false)
	if r.Hit {
		t.Error("cold access hit")
	}
	if r.FillWords != 8 {
		t.Errorf("FillWords = %d, want 8 (32-byte line)", r.FillWords)
	}
	if r.Cycles != 1 {
		t.Errorf("array latency = %d, want 1 (Table IV)", r.Cycles)
	}
	r = c.Access(0x1000, 4, false)
	if !r.Hit || r.FillWords != 0 {
		t.Errorf("warm access: %+v", r)
	}
	// Same line, different word.
	if r = c.Access(0x101c, 4, false); !r.Hit {
		t.Error("same-line access missed")
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.HitRate() < 0.66 || st.HitRate() > 0.67 {
		t.Errorf("HitRate = %v", st.HitRate())
	}
	if (Stats{}).HitRate() != 0 {
		t.Error("empty HitRate not 0")
	}
}

func TestWritebackOnDirtyEviction(t *testing.T) {
	cfg := DefaultL1()
	cfg.SizeBytes = 4 * 32 // 4 lines, 1 set at 4 ways
	cfg.Ways = 4
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Fill the single set with 4 dirty lines.
	for i := 0; i < 4; i++ {
		r := c.Access(uint32(i*32), 4, true)
		if r.Hit {
			t.Fatal("unexpected hit")
		}
	}
	// Fifth distinct line evicts the LRU (line 0), which is dirty.
	r := c.Access(4*32, 4, false)
	if r.Hit {
		t.Fatal("unexpected hit")
	}
	if r.WritebackWords != 8 {
		t.Errorf("WritebackWords = %d, want 8", r.WritebackWords)
	}
	st := c.Stats()
	if st.Evictions != 1 || st.DirtyWritebacks != 1 {
		t.Errorf("stats = %+v", st)
	}
	// Victim must be the least recently used: line 0 misses again.
	if r := c.Access(0, 4, false); r.Hit {
		t.Error("LRU line still present")
	}
}

func TestLRUPromotion(t *testing.T) {
	cfg := DefaultL1()
	cfg.SizeBytes = 4 * 32
	cfg.Ways = 4
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		c.Access(uint32(i*32), 4, false)
	}
	c.Access(0, 4, false) // promote line 0
	c.Access(4*32, 4, false)
	// Victim should be line 1 (LRU after promotion), line 0 must hit.
	if r := c.Access(0, 4, false); !r.Hit {
		t.Error("promoted line evicted")
	}
	if r := c.Access(32, 4, false); r.Hit {
		t.Error("expected line 1 to be the victim")
	}
}

func TestLineStraddle(t *testing.T) {
	c := newL1(t)
	// 8 bytes starting 4 bytes before a line boundary touch two lines.
	r := c.Access(0x101c, 8, false)
	if r.Hit {
		t.Error("cold straddle hit")
	}
	if r.FillWords != 16 {
		t.Errorf("FillWords = %d, want 16 (two lines)", r.FillWords)
	}
	st := c.Stats()
	if st.Misses != 2 {
		t.Errorf("straddle counted %d misses, want 2", st.Misses)
	}
	// Partial hit (one line present) reports Hit=false overall.
	c2 := newL1(t)
	c2.Access(0x1000, 4, false)
	r = c2.Access(0x101c, 8, false)
	if r.Hit {
		t.Error("partial presence reported as full hit")
	}
}

func TestFlush(t *testing.T) {
	c := newL1(t)
	c.Access(0x0, 4, true)
	c.Access(0x4000, 4, false)
	dirty := c.Flush()
	if dirty != 8 {
		t.Errorf("Flush returned %d dirty words, want 8", dirty)
	}
	if r := c.Access(0x0, 4, false); r.Hit {
		t.Error("flushed line still present")
	}
}

func TestZeroAndNegativeSize(t *testing.T) {
	c := newL1(t)
	r := c.Access(0x100, 0, false)
	if r.FillWords != 8 {
		t.Error("zero-size access not normalized to 1 byte")
	}
}

func TestEnergyAccumulates(t *testing.T) {
	c := newL1(t)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		c.Access(rng.Uint32()%0x8000, 4, rng.Intn(2) == 0)
	}
	if c.Stats().EnergyPicojoules <= 0 {
		t.Error("no energy charged")
	}
	if c.Config().SizeBytes != 8*1024 {
		t.Error("Config accessor wrong")
	}
}

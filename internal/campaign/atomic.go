package campaign

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// Atomic artifact persistence: every CLI-visible report file (JSON
// summaries, rendered tables, recorded traces) goes through
// write-to-temp + fsync + rename, so an interrupt or crash can never
// leave a truncated artifact under the final name — readers see either
// the old complete file or the new complete file.

// WriteAtomic streams write's output into a temp file in path's
// directory, fsyncs it, and renames it over path. On any error the
// temp file is removed and path is left untouched.
func WriteAtomic(path string, perm os.FileMode, write func(io.Writer) error) (err error) {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	tmp, err := os.CreateTemp(dir, "."+base+".tmp-*")
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err = write(tmp); err != nil {
		return fmt.Errorf("write %s: %w", path, err)
	}
	if err = tmp.Sync(); err != nil {
		return err
	}
	if err = tmp.Chmod(perm); err != nil {
		return err
	}
	if err = tmp.Close(); err != nil {
		return err
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	syncDir(path)
	return nil
}

// WriteFileAtomic is os.WriteFile with atomic write-fsync-rename
// persistence.
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	return WriteAtomic(path, perm, func(w io.Writer) error {
		_, err := w.Write(data)
		return err
	})
}

package campaign

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFileAtomicCreatesAndOverwrites(t *testing.T) {
	path := filepath.Join(t.TempDir(), "artifact.json")
	if err := WriteFileAtomic(path, []byte("v1"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(path, []byte("v2"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "v2" {
		t.Fatalf("content %q", got)
	}
}

func TestWriteAtomicFailureLeavesTargetUntouched(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "artifact.json")
	if err := WriteFileAtomic(path, []byte("good"), 0o644); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("render failed")
	err := WriteAtomic(path, 0o644, func(w io.Writer) error {
		io.WriteString(w, "partial garbage") //nolint:errcheck
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "good" {
		t.Fatalf("target clobbered: %q", got)
	}
	// No temp litter left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Errorf("leftover temp file %s", e.Name())
		}
	}
}

func TestExitCodeMapping(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{nil, ExitOK},
		{errors.New("boom"), ExitError},
		{Usagef("bad flags"), ExitUsage},
		{ErrIncomplete, ExitIncomplete},
	}
	for _, c := range cases {
		if got := ExitCode(c.err); got != c.want {
			t.Errorf("ExitCode(%v) = %d, want %d", c.err, got, c.want)
		}
	}
	if !IsUsage(Usagef("x")) || IsUsage(errors.New("x")) {
		t.Error("IsUsage misclassifies")
	}
}

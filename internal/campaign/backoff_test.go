package campaign

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestCancelMidBackoffAbortsPromptly is the regression test for the
// retry backoff honoring the campaign context: the cancellation lands
// while the worker is already asleep inside a (deliberately huge)
// backoff wait, and Run must return promptly with the job still
// pending, not block out the rest of the backoff.
//
// This differs from TestDrainAbandonsJobBetweenRetries, which cancels
// before the backoff starts: here the sleep is in progress, so the test
// fails (by deadlock on a 1h timer) if the wait ever stops selecting on
// ctx.Done().
func TestCancelMidBackoffAbortsPromptly(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	attempted := make(chan struct{})
	jobs := []Job[int]{{
		ID: "mid-backoff",
		Run: func(context.Context) (int, error) {
			close(attempted) // first attempt fails; worker enters backoff
			return 0, errors.New("transient")
		},
	}}

	done := make(chan struct{})
	var rep *Report[int]
	var err error
	go func() {
		defer close(done)
		rep, err = Run(ctx, Config{Attempts: 10, Backoff: time.Hour}, jobs)
	}()

	<-attempted
	// Give the worker time to actually arm the backoff timer before the
	// cancellation arrives (the pre-arm ordering is covered by
	// TestDrainAbandonsJobBetweenRetries).
	time.Sleep(20 * time.Millisecond)
	cancel()

	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Run still blocked 10s after cancellation: backoff wait ignores ctx")
	}
	if !errors.Is(err, ErrIncomplete) {
		t.Fatalf("err = %v, want ErrIncomplete", err)
	}
	// The abandoned job must stay pending (retryable on resume), never
	// recorded done or failed-permanent.
	if _, ok := rep.Results["mid-backoff"]; ok {
		t.Fatal("job abandoned mid-backoff was recorded as finished")
	}
	if len(rep.PendingIDs) != 1 || rep.PendingIDs[0] != "mid-backoff" {
		t.Fatalf("pending = %v, want [mid-backoff]", rep.PendingIDs)
	}
}

// Package campaign is a crash-safe runner for long experiment
// campaigns: a bounded worker pool that executes independent jobs with
// panic isolation, per-job deadlines, a bounded retry-with-backoff
// budget, an append-only JSONL checkpoint for resumable runs, and
// graceful drain on cancellation.
//
// The sweep (experiments.RunSweep) and soak (experiments.RunSoak)
// engines are both built on it. The contract that makes interrupted
// campaigns cheap instead of fatal:
//
//   - Every job has a deterministic ID. A finished job — completed or
//     failed-permanent — is journaled to the checkpoint with its
//     JSON-encoded result, and a resumed run skips it, so the final
//     report of an interrupted-then-resumed campaign is byte-identical
//     to an uninterrupted one (results round-trip exactly through
//     encoding/json).
//   - A worker panic is recovered into a per-job error carrying the
//     stack; the poisoned job fails alone while the campaign completes.
//   - Cancelling the context (e.g. SIGINT/SIGTERM via SignalContext)
//     stops dispatching new jobs but lets in-flight jobs finish and be
//     journaled; Run then reports the remaining jobs as pending and
//     returns an error wrapping ErrIncomplete.
package campaign

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"
)

// Status classifies a finished job in the report and the checkpoint.
type Status string

const (
	// StatusDone marks a job that produced a result.
	StatusDone Status = "done"
	// StatusFailed marks a job that exhausted its retry budget
	// (failed-permanent); it is journaled and never retried on resume.
	StatusFailed Status = "failed"
	// StatusInvalidated is a journal tombstone, never a live result: it
	// revokes an earlier record for the same job (the fabric writes one
	// when a worker is convicted of returning divergent results), so a
	// resumed run re-executes the job instead of trusting the revoked
	// record.
	StatusInvalidated Status = "invalidated"
)

// Job is one unit of work. Run receives a context carrying only the
// per-job deadline (never the campaign's cancellation: graceful drain
// lets in-flight jobs finish), and should return a JSON-serializable
// result when the campaign is checkpointed.
type Job[R any] struct {
	// ID is the job's deterministic identity; it keys the checkpoint,
	// so it must be stable across runs and unique within the campaign.
	ID string
	// Run executes the job.
	Run func(ctx context.Context) (R, error)
}

// Result is one finished job: the journal record and the report entry.
type Result[R any] struct {
	ID       string `json:"id"`
	Status   Status `json:"status"`
	Attempts int    `json:"attempts"`
	// Value is the job's result (StatusDone only).
	Value R `json:"value"`
	// Err is the final attempt's error text (StatusFailed only).
	Err string `json:"error,omitempty"`
	// Stack is the recovered goroutine stack when the final attempt
	// panicked.
	Stack string `json:"stack,omitempty"`
	// Resumed marks results loaded from the checkpoint rather than
	// executed in this run.
	Resumed bool `json:"-"`
	// Cause is the final attempt's error value for live (non-resumed)
	// failures; resumed failures only retain the Err text.
	Cause error `json:"-"`
}

// Config parameterizes Run. The zero value runs with GOMAXPROCS
// workers, one attempt per job, no deadline, and no checkpoint.
type Config struct {
	// Workers bounds the worker pool (default GOMAXPROCS, capped at
	// the job count).
	Workers int
	// JobTimeout is the per-attempt context deadline (0 = none). Jobs
	// must observe their context for the deadline to take effect.
	JobTimeout time.Duration
	// Attempts is the per-job attempt budget before the job is
	// recorded as failed-permanent (default 1, i.e. no retries).
	Attempts int
	// Backoff is the sleep before the first retry, doubling per
	// subsequent retry (default 100ms).
	Backoff time.Duration
	// CheckpointPath, when non-empty, journals every finished job to
	// this append-only JSONL file (each record is written and fsynced
	// before the job counts as finished).
	CheckpointPath string
	// Resume loads CheckpointPath and skips journaled jobs. The
	// journal's config hash must match ConfigHash — a mismatch is a
	// hard error, never silent reuse.
	Resume bool
	// ConfigHash fingerprints the campaign configuration (see
	// HashJSON); required when CheckpointPath is set.
	ConfigHash string
	// OnJobDone, when non-nil, observes every finished job after it is
	// journaled (called from the collector, never concurrently).
	OnJobDone func(id string, status Status)
	// OnJobResult, when non-nil, observes every finished job's full
	// result in journal form (value encoded as JSON) after it is
	// journaled — live results only; resumed ones are already in the
	// caller's hands. Called from the collector, never concurrently.
	// This is the seam the fabric worker endpoint streams from.
	OnJobResult func(Result[json.RawMessage])
}

func (c Config) normalize(jobs int) Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Workers > jobs {
		c.Workers = jobs
	}
	if c.Workers < 1 {
		c.Workers = 1
	}
	if c.Attempts <= 0 {
		c.Attempts = 1
	}
	if c.Backoff <= 0 {
		c.Backoff = 100 * time.Millisecond
	}
	return c
}

// Report aggregates a campaign run.
type Report[R any] struct {
	// Results holds every finished job by ID — executed this run or
	// loaded from the checkpoint.
	Results map[string]Result[R]
	// Completed and Failed count finished jobs by status (resumed ones
	// included); Resumed counts the subset loaded from the checkpoint.
	Completed, Failed, Resumed int
	// PendingIDs lists jobs never finished because the campaign was
	// cancelled mid-flight, in dispatch order. Pending jobs are not
	// journaled, so a resumed run retries them.
	PendingIDs []string
	// Audit summarizes the integrity audit pass of executors that
	// re-execute a fraction of finished jobs (the distributed fabric);
	// nil for plain local runs.
	Audit *AuditSummary
}

// AuditSummary reports an executor's audit re-execution pass: how many
// finished jobs were independently re-executed, how many matched, and
// every divergence — the SDC-shaped failure the audit exists to catch.
type AuditSummary struct {
	// Audited and Passed count audit re-executions and the subset whose
	// payload matched the original result byte for byte.
	Audited int `json:"audited"`
	Passed  int `json:"passed"`
	// Invalidated counts merged results revoked because their producer
	// was convicted (journaled as StatusInvalidated tombstones and
	// re-executed elsewhere).
	Invalidated int `json:"invalidated"`
	// SuspectWorkers lists convicted workers.
	SuspectWorkers []string `json:"suspect_workers,omitempty"`
	// Divergences itemizes every audit mismatch.
	Divergences []AuditDivergence `json:"divergences,omitempty"`
}

// AuditDivergence is one audit mismatch: a job whose re-execution
// produced a different payload than the merged result.
type AuditDivergence struct {
	// JobID names the diverging job; Worker the convicted producer.
	JobID  string `json:"job_id"`
	Worker string `json:"worker"`
	// GotSum is the attestation sum of the merged (revoked) result;
	// WantSum the sum of the trusted re-execution.
	GotSum  string `json:"got_sum"`
	WantSum string `json:"want_sum"`
}

// Incomplete reports whether the campaign was drained before every job
// finished.
func (r *Report[R]) Incomplete() bool { return len(r.PendingIDs) > 0 }

// Errors returned by Run.
var (
	// ErrIncomplete wraps the error returned when the campaign is
	// cancelled before all jobs ran (the report still carries every
	// salvaged result).
	ErrIncomplete = errors.New("campaign incomplete")
	// ErrDuplicateJob rejects job sets with colliding IDs.
	ErrDuplicateJob = errors.New("campaign: duplicate job ID")
)

// panicError converts a recovered worker panic into a per-job error
// carrying the goroutine stack.
type panicError struct {
	value string
	stack string
}

func (e *panicError) Error() string { return "panic: " + e.value }

// Run executes the campaign: resumable, panic-isolated, deadline- and
// retry-bounded, gracefully drained on ctx cancellation. Job failures
// are reported per-job in the Report, never as a Run error; Run's error
// reports setup problems (checkpoint, duplicate IDs) or — wrapping
// ErrIncomplete and the context error — an early drain. The Report is
// non-nil whenever jobs started, so callers can salvage partial
// results alongside a non-nil error.
func Run[R any](ctx context.Context, cfg Config, jobs []Job[R]) (*Report[R], error) {
	cfg = cfg.normalize(len(jobs))
	seen := make(map[string]bool, len(jobs))
	for _, j := range jobs {
		if seen[j.ID] {
			return nil, fmt.Errorf("%w: %q", ErrDuplicateJob, j.ID)
		}
		seen[j.ID] = true
	}

	rep := &Report[R]{Results: make(map[string]Result[R], len(jobs))}
	var jl *journal
	if cfg.CheckpointPath != "" {
		var err error
		var done map[string]Result[R]
		jl, done, err = openCheckpoint[R](cfg.CheckpointPath, cfg.ConfigHash, cfg.Resume)
		if err != nil {
			return nil, err
		}
		defer jl.Close()
		for id, r := range done {
			if !seen[id] {
				continue // journal entries for jobs not in this campaign
			}
			r.Resumed = true
			rep.Results[id] = r
			rep.Resumed++
			switch r.Status {
			case StatusFailed:
				rep.Failed++
			default:
				rep.Completed++
			}
		}
	}

	pending := make([]Job[R], 0, len(jobs))
	for _, j := range jobs {
		if _, ok := rep.Results[j.ID]; !ok {
			pending = append(pending, j)
		}
	}

	// finished carries one entry per dispatched job: its result, or
	// abandoned=true when the drain interrupted it between retry
	// attempts (such jobs stay pending and are not journaled).
	type outcome struct {
		res       Result[R]
		abandoned bool
	}
	jobCh := make(chan Job[R])
	outCh := make(chan outcome)
	var wg sync.WaitGroup
	for n := 0; n < cfg.Workers; n++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobCh {
				res, abandoned := runJob(ctx, cfg, j)
				outCh <- outcome{res: res, abandoned: abandoned}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(outCh)
	}()

	// The dispatcher stops at ctx cancellation; undispatched job IDs
	// are reported as pending.
	undispatched := make(chan []string, 1)
	go func() {
		defer close(jobCh)
		abort := func(i int) {
			ids := make([]string, 0, len(pending)-i)
			for _, p := range pending[i:] {
				ids = append(ids, p.ID)
			}
			undispatched <- ids
		}
		for i, j := range pending {
			if ctx.Err() != nil {
				abort(i)
				return
			}
			select {
			case jobCh <- j:
			case <-ctx.Done():
				abort(i)
				return
			}
		}
		undispatched <- nil
	}()

	// Collector: journal each finished job (write-fsync before it
	// counts), then account for it. A journal append failure means the
	// result was never durably recorded: the job is reported pending —
	// not completed — so callers (and resumed runs) re-run it instead of
	// silently trusting a result that would vanish with the process.
	var journalErr error
	for out := range outCh {
		if out.abandoned {
			rep.PendingIDs = append(rep.PendingIDs, out.res.ID)
			continue
		}
		// Encode for the observer before accounting: a result that
		// cannot round-trip through JSON is as unusable to the caller as
		// one that failed to journal, so it is reported pending too.
		var raw Result[json.RawMessage]
		var rawErr error
		if cfg.OnJobResult != nil {
			raw, rawErr = rawResult(out.res)
		}
		if jl != nil {
			if journalErr == nil {
				journalErr = jl.Append(out.res)
			}
			if journalErr != nil {
				rep.PendingIDs = append(rep.PendingIDs, out.res.ID)
				continue
			}
		}
		if rawErr != nil {
			rep.PendingIDs = append(rep.PendingIDs, out.res.ID)
			continue
		}
		rep.Results[out.res.ID] = out.res
		if out.res.Status == StatusFailed {
			rep.Failed++
		} else {
			rep.Completed++
		}
		if cfg.OnJobDone != nil {
			cfg.OnJobDone(out.res.ID, out.res.Status)
		}
		if cfg.OnJobResult != nil {
			cfg.OnJobResult(raw)
		}
	}
	rep.PendingIDs = append(rep.PendingIDs, <-undispatched...)

	if journalErr != nil {
		return rep, fmt.Errorf("campaign: checkpoint: %w", journalErr)
	}
	if jl != nil {
		if err := jl.Close(); err != nil {
			return rep, fmt.Errorf("campaign: checkpoint: %w", err)
		}
	}
	if len(rep.PendingIDs) > 0 {
		return rep, fmt.Errorf("%w: %d of %d jobs not run: %w",
			ErrIncomplete, len(rep.PendingIDs), len(jobs), context.Cause(ctx))
	}
	return rep, nil
}

// runJob executes one job through its attempt budget. The returned
// abandoned flag is true when ctx was cancelled between attempts: the
// job is neither done nor failed-permanent and must stay pending.
func runJob[R any](ctx context.Context, cfg Config, job Job[R]) (Result[R], bool) {
	res := Result[R]{ID: job.ID}
	backoff := cfg.Backoff
	for attempt := 1; ; attempt++ {
		res.Attempts = attempt
		v, err := runAttempt(cfg, job)
		if err == nil {
			res.Status = StatusDone
			res.Value = v
			return res, false
		}
		res.Err = err.Error()
		res.Cause = err
		res.Stack = ""
		var pe *panicError
		if errors.As(err, &pe) {
			res.Stack = pe.stack
		}
		if attempt >= cfg.Attempts {
			res.Status = StatusFailed
			return res, false
		}
		if !sleep(ctx, backoff) {
			return res, true
		}
		backoff *= 2
	}
}

// runAttempt runs a single attempt under the per-job deadline with
// panic isolation.
func runAttempt[R any](cfg Config, job Job[R]) (v R, err error) {
	// The job context is detached from the campaign context on
	// purpose: graceful drain means in-flight jobs run to completion.
	jctx := context.Background()
	if cfg.JobTimeout > 0 {
		var cancel context.CancelFunc
		jctx, cancel = context.WithTimeout(jctx, cfg.JobTimeout)
		defer cancel()
	}
	defer func() {
		if p := recover(); p != nil {
			err = &panicError{value: fmt.Sprint(p), stack: string(debug.Stack())}
		}
	}()
	return job.Run(jctx)
}

// rawResult re-encodes a typed result into journal form: the value as
// its JSON encoding, every other field unchanged.
func rawResult[R any](r Result[R]) (Result[json.RawMessage], error) {
	var raw json.RawMessage
	if r.Status == StatusDone {
		b, err := json.Marshal(r.Value)
		if err != nil {
			return Result[json.RawMessage]{}, fmt.Errorf("campaign: encode result %s: %w", r.ID, err)
		}
		raw = b
	}
	return Result[json.RawMessage]{
		ID: r.ID, Status: r.Status, Attempts: r.Attempts,
		Value: raw, Err: r.Err, Stack: r.Stack,
		Resumed: r.Resumed, Cause: r.Cause,
	}, nil
}

// DecodeReport converts a raw-JSON-typed report (the form external
// executors produce over OpenJournal's record format) into a typed one:
// done values are decoded, failed and pending entries carry their
// metadata unchanged. This is the same JSON round-trip a checkpoint
// resume performs, so a decoded report aggregates byte-identically to
// a natively-typed one.
func DecodeReport[R any](raw *Report[json.RawMessage]) (*Report[R], error) {
	rep := &Report[R]{
		Results:    make(map[string]Result[R], len(raw.Results)),
		Completed:  raw.Completed,
		Failed:     raw.Failed,
		Resumed:    raw.Resumed,
		PendingIDs: raw.PendingIDs,
		Audit:      raw.Audit,
	}
	for id, r := range raw.Results {
		var v R
		if r.Status == StatusDone && len(r.Value) > 0 {
			if err := json.Unmarshal(r.Value, &v); err != nil {
				return nil, fmt.Errorf("campaign: decode result %s: %w", id, err)
			}
		}
		rep.Results[id] = Result[R]{
			ID: r.ID, Status: r.Status, Attempts: r.Attempts,
			Value: v, Err: r.Err, Stack: r.Stack,
			Resumed: r.Resumed, Cause: r.Cause,
		}
	}
	return rep, nil
}

// sleep waits d or until ctx is cancelled; it reports whether the full
// duration elapsed.
func sleep(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

package campaign

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// sumJobs builds n jobs returning their own index.
func sumJobs(n int) []Job[int] {
	jobs := make([]Job[int], n)
	for i := 0; i < n; i++ {
		i := i
		jobs[i] = Job[int]{
			ID:  fmt.Sprintf("job/%02d", i),
			Run: func(context.Context) (int, error) { return i, nil },
		}
	}
	return jobs
}

func TestRunCompletesAllJobs(t *testing.T) {
	rep, err := Run(context.Background(), Config{Workers: 3}, sumJobs(17))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != 17 || rep.Failed != 0 || rep.Incomplete() {
		t.Fatalf("report: %+v", rep)
	}
	for i := 0; i < 17; i++ {
		r, ok := rep.Results[fmt.Sprintf("job/%02d", i)]
		if !ok || r.Value != i || r.Status != StatusDone || r.Attempts != 1 {
			t.Fatalf("job %d result: %+v (ok=%v)", i, r, ok)
		}
	}
}

func TestPanicIsolatedToOneJob(t *testing.T) {
	jobs := sumJobs(8)
	jobs[3].Run = func(context.Context) (int, error) { panic("poisoned job") }
	rep, err := Run(context.Background(), Config{Workers: 4}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != 7 || rep.Failed != 1 {
		t.Fatalf("completed=%d failed=%d", rep.Completed, rep.Failed)
	}
	r := rep.Results["job/03"]
	if r.Status != StatusFailed {
		t.Fatalf("poisoned job status %q", r.Status)
	}
	if !strings.Contains(r.Err, "poisoned job") {
		t.Errorf("error lost the panic value: %q", r.Err)
	}
	if !strings.Contains(r.Stack, "campaign_test") {
		t.Errorf("stack does not reach the panicking frame:\n%s", r.Stack)
	}
	if r.Cause == nil {
		t.Error("live failure lost its error value")
	}
}

func TestRetryWithBackoffEventuallySucceeds(t *testing.T) {
	var tries atomic.Int32
	jobs := []Job[int]{{
		ID: "flaky",
		Run: func(context.Context) (int, error) {
			if tries.Add(1) < 3 {
				return 0, errors.New("transient")
			}
			return 42, nil
		},
	}}
	rep, err := Run(context.Background(), Config{Attempts: 5, Backoff: time.Millisecond}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	r := rep.Results["flaky"]
	if r.Status != StatusDone || r.Value != 42 || r.Attempts != 3 {
		t.Fatalf("flaky result: %+v", r)
	}
}

func TestRetryBudgetExhaustedIsFailedPermanent(t *testing.T) {
	var tries atomic.Int32
	jobs := []Job[int]{{
		ID: "doomed",
		Run: func(context.Context) (int, error) {
			tries.Add(1)
			return 0, errors.New("always broken")
		},
	}}
	rep, err := Run(context.Background(), Config{Attempts: 3, Backoff: time.Millisecond}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	r := rep.Results["doomed"]
	if r.Status != StatusFailed || r.Attempts != 3 || tries.Load() != 3 {
		t.Fatalf("doomed result: %+v (tries %d)", r, tries.Load())
	}
}

func TestJobDeadline(t *testing.T) {
	jobs := []Job[int]{{
		ID: "slow",
		Run: func(ctx context.Context) (int, error) {
			<-ctx.Done() // a well-behaved job observes its deadline
			return 0, ctx.Err()
		},
	}}
	start := time.Now()
	rep, err := Run(context.Background(), Config{JobTimeout: 20 * time.Millisecond}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadline did not bound the job (%v)", elapsed)
	}
	r := rep.Results["slow"]
	if r.Status != StatusFailed || !strings.Contains(r.Err, "deadline") {
		t.Fatalf("slow result: %+v", r)
	}
}

func TestGracefulDrainFinishesInFlightJobs(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	// One worker: cancel as soon as the first job finishes; the rest
	// stay pending.
	cfg := Config{
		Workers:   1,
		OnJobDone: func(string, Status) { cancel() },
	}
	rep, err := Run(ctx, cfg, sumJobs(6))
	if !errors.Is(err, ErrIncomplete) {
		t.Fatalf("err = %v, want ErrIncomplete", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrapped context.Canceled", err)
	}
	if !rep.Incomplete() {
		t.Fatal("report not marked incomplete")
	}
	// At least one finished (the in-flight one) and at least one is
	// pending; nothing was dropped.
	if rep.Completed < 1 || len(rep.PendingIDs) < 1 ||
		rep.Completed+len(rep.PendingIDs) != 6 {
		t.Fatalf("completed=%d pending=%v", rep.Completed, rep.PendingIDs)
	}
}

func TestDrainAbandonsJobBetweenRetries(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	jobs := []Job[int]{{
		ID: "retrying",
		Run: func(context.Context) (int, error) {
			cancel() // fail after cancelling: the backoff sleep must abort
			return 0, errors.New("transient")
		},
	}}
	rep, err := Run(ctx, Config{Attempts: 10, Backoff: time.Hour}, jobs)
	if !errors.Is(err, ErrIncomplete) {
		t.Fatalf("err = %v, want ErrIncomplete", err)
	}
	// The job must be pending (retryable on resume), not failed-permanent.
	if _, ok := rep.Results["retrying"]; ok {
		t.Fatal("abandoned job was recorded as finished")
	}
	if len(rep.PendingIDs) != 1 || rep.PendingIDs[0] != "retrying" {
		t.Fatalf("pending = %v", rep.PendingIDs)
	}
}

func TestDuplicateJobIDsRejected(t *testing.T) {
	jobs := sumJobs(2)
	jobs[1].ID = jobs[0].ID
	if _, err := Run(context.Background(), Config{}, jobs); !errors.Is(err, ErrDuplicateJob) {
		t.Fatalf("err = %v, want ErrDuplicateJob", err)
	}
}

func TestCheckpointResumeSkipsFinishedJobs(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.jsonl")
	const hash = "cfg-v1"
	var ran atomic.Int32
	mkJobs := func() []Job[int] {
		jobs := sumJobs(10)
		for i := range jobs {
			inner := jobs[i].Run
			jobs[i].Run = func(ctx context.Context) (int, error) {
				ran.Add(1)
				return inner(ctx)
			}
		}
		return jobs
	}

	// First run: cancel after 4 finished jobs (simulated crash).
	ctx, cancel := context.WithCancel(context.Background())
	var finished atomic.Int32
	cfg := Config{
		Workers:        1,
		CheckpointPath: path,
		ConfigHash:     hash,
		OnJobDone: func(string, Status) {
			if finished.Add(1) == 4 {
				cancel()
			}
		},
	}
	rep, err := Run(ctx, cfg, mkJobs())
	if !errors.Is(err, ErrIncomplete) {
		t.Fatalf("first run err = %v, want ErrIncomplete", err)
	}
	firstDone := rep.Completed

	// Resume: only the remainder runs, and the union is complete.
	ran.Store(0)
	cfg2 := Config{Workers: 2, CheckpointPath: path, ConfigHash: hash, Resume: true}
	rep2, err := Run(context.Background(), cfg2, mkJobs())
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Resumed != firstDone {
		t.Errorf("resumed %d jobs, first run finished %d", rep2.Resumed, firstDone)
	}
	if int(ran.Load()) != 10-firstDone {
		t.Errorf("resume executed %d jobs, want %d", ran.Load(), 10-firstDone)
	}
	if rep2.Completed != 10 || rep2.Incomplete() {
		t.Fatalf("resume report: %+v", rep2)
	}
	for i := 0; i < 10; i++ {
		if r := rep2.Results[fmt.Sprintf("job/%02d", i)]; r.Value != i {
			t.Errorf("job %d value %d after resume", i, r.Value)
		}
	}
}

func TestResumedFailedPermanentIsNotRetried(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.jsonl")
	jobs := []Job[int]{{
		ID:  "broken",
		Run: func(context.Context) (int, error) { return 0, errors.New("permanent") },
	}}
	cfg := Config{CheckpointPath: path, ConfigHash: "h"}
	if _, err := Run(context.Background(), cfg, jobs); err != nil {
		t.Fatal(err)
	}
	var ran atomic.Int32
	jobs[0].Run = func(context.Context) (int, error) { ran.Add(1); return 1, nil }
	cfg.Resume = true
	rep, err := Run(context.Background(), cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 0 {
		t.Error("failed-permanent job was re-run on resume")
	}
	if rep.Failed != 1 || !rep.Results["broken"].Resumed {
		t.Fatalf("report: %+v", rep)
	}
}

func TestFreshRunOntoExistingCheckpointRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.jsonl")
	cfg := Config{CheckpointPath: path, ConfigHash: "h"}
	if _, err := Run(context.Background(), cfg, sumJobs(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(context.Background(), cfg, sumJobs(1)); !errors.Is(err, ErrCheckpointExists) {
		t.Fatalf("err = %v, want ErrCheckpointExists", err)
	}
}

func TestResumeWithoutFileRejected(t *testing.T) {
	cfg := Config{
		CheckpointPath: filepath.Join(t.TempDir(), "nope.jsonl"),
		ConfigHash:     "h",
		Resume:         true,
	}
	if _, err := Run(context.Background(), cfg, sumJobs(1)); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("err = %v, want ErrNoCheckpoint", err)
	}
}

func TestResumeConfigHashMismatchIsHardError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.jsonl")
	cfg := Config{CheckpointPath: path, ConfigHash: "hash-a"}
	if _, err := Run(context.Background(), cfg, sumJobs(2)); err != nil {
		t.Fatal(err)
	}
	cfg.ConfigHash = "hash-b"
	cfg.Resume = true
	if _, err := Run(context.Background(), cfg, sumJobs(2)); !errors.Is(err, ErrConfigHashMismatch) {
		t.Fatalf("err = %v, want ErrConfigHashMismatch", err)
	}
}

func TestHashJSONStableAndSensitive(t *testing.T) {
	type cfg struct {
		Scale float64
		Names []string
	}
	a1, err := HashJSON(cfg{Scale: 0.25, Names: []string{"x", "y"}})
	if err != nil {
		t.Fatal(err)
	}
	a2, _ := HashJSON(cfg{Scale: 0.25, Names: []string{"x", "y"}})
	b, _ := HashJSON(cfg{Scale: 0.5, Names: []string{"x", "y"}})
	if a1 != a2 {
		t.Error("hash not deterministic")
	}
	if a1 == b {
		t.Error("hash insensitive to config change")
	}
}

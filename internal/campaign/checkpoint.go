package campaign

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// The checkpoint is an append-only JSONL journal: a header line
// carrying the campaign's config hash, then one line per finished job.
// Records are written in a single Write call and fsynced before the job
// counts as finished, so after a crash the journal holds at most one
// torn trailing line, which load tolerates (the file is truncated back
// to the last complete record before appending resumes). Everything
// else about the file is strict: a corrupt non-trailing line or a
// config-hash mismatch is a hard error, never silent reuse.

// journalVersion is the checkpoint format version; bumped on
// incompatible record changes so stale journals fail loudly.
const journalVersion = 1

// Errors returned by the checkpoint layer.
var (
	// ErrCheckpointExists rejects a fresh (non-resume) run onto an
	// existing checkpoint file: pass Resume or remove the file.
	ErrCheckpointExists = errors.New("campaign: checkpoint file already exists (resume, or remove it to start over)")
	// ErrNoCheckpoint rejects Resume when the checkpoint file does not
	// exist.
	ErrNoCheckpoint = errors.New("campaign: resume requested but checkpoint file does not exist")
	// ErrConfigHashMismatch rejects resuming a checkpoint written
	// under a different campaign configuration.
	ErrConfigHashMismatch = errors.New("campaign: checkpoint config hash mismatch (the journal was written by a differently-configured campaign)")
	// ErrCorruptCheckpoint marks an unparseable non-trailing journal
	// line.
	ErrCorruptCheckpoint = errors.New("campaign: corrupt checkpoint")
)

type journalHeader struct {
	V          int    `json:"v"`
	ConfigHash string `json:"config_hash"`
}

// journal is the append side of an open checkpoint.
type journal struct {
	f      *os.File
	closed bool
}

// appendHook, when non-nil, intercepts journal appends before they are
// written — the test seam for injecting durable-write (fsync) failures.
var appendHook func(v any) error

// Append journals one finished job: a single JSON line, written in one
// call and fsynced so the record survives a crash of the very next
// instruction. The error is the caller's signal that the record is NOT
// durable: a job whose append failed must be treated as never finished.
func (j *journal) Append(v any) error {
	if appendHook != nil {
		if err := appendHook(v); err != nil {
			return err
		}
	}
	line, err := json.Marshal(v)
	if err != nil {
		return err
	}
	if _, err := j.f.Write(append(line, '\n')); err != nil {
		return err
	}
	return j.f.Sync()
}

// Close closes the journal; further Appends fail. Safe to call twice.
func (j *journal) Close() error {
	if j.closed {
		return nil
	}
	j.closed = true
	return j.f.Close()
}

// openCheckpoint opens path for journaling. A fresh run creates the
// file (failing if it already exists); a resume loads the finished
// records — verifying the config hash — truncates any torn trailing
// line, and reopens for appending.
func openCheckpoint[R any](path, hash string, resume bool) (*journal, map[string]Result[R], error) {
	if resume {
		return resumeCheckpoint[R](path, hash)
	}
	if _, err := os.Stat(path); err == nil {
		return nil, nil, fmt.Errorf("%w: %s", ErrCheckpointExists, path)
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, nil, err
	}
	jl := &journal{f: f}
	if err := jl.Append(journalHeader{V: journalVersion, ConfigHash: hash}); err != nil {
		f.Close()
		return nil, nil, err
	}
	syncDir(path)
	return jl, nil, nil
}

func resumeCheckpoint[R any](path, hash string) (*journal, map[string]Result[R], error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, nil, fmt.Errorf("%w: %s", ErrNoCheckpoint, path)
		}
		return nil, nil, err
	}
	done, validLen, err := parseJournal[R](blob, hash)
	if err != nil {
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		return nil, nil, err
	}
	// Drop a torn trailing record (crash mid-append) before new
	// appends, so the journal stays line-parseable.
	if err := f.Truncate(validLen); err != nil {
		f.Close()
		return nil, nil, err
	}
	if _, err := f.Seek(validLen, 0); err != nil {
		f.Close()
		return nil, nil, err
	}
	return &journal{f: f}, done, nil
}

// parseJournal decodes the journal: header first, then one record per
// line. It returns the finished records and the byte length of the
// valid prefix (everything before a torn trailing line).
func parseJournal[R any](blob []byte, hash string) (map[string]Result[R], int64, error) {
	done := make(map[string]Result[R])
	var off int64
	sawHeader := false
	for len(blob) > 0 {
		nl := bytes.IndexByte(blob, '\n')
		if nl < 0 {
			// Torn trailing line: the crash interrupted an append.
			// Everything before it is valid; the job it described was
			// never acknowledged, so dropping it is safe.
			break
		}
		line := blob[:nl]
		blob = blob[nl+1:]
		if !sawHeader {
			var h journalHeader
			if err := json.Unmarshal(line, &h); err != nil || h.V == 0 {
				return nil, 0, fmt.Errorf("%w: bad header", ErrCorruptCheckpoint)
			}
			if h.V != journalVersion {
				return nil, 0, fmt.Errorf("%w: journal version %d, want %d",
					ErrCorruptCheckpoint, h.V, journalVersion)
			}
			if h.ConfigHash != hash {
				return nil, 0, fmt.Errorf("%w: journal %s, campaign %s",
					ErrConfigHashMismatch, h.ConfigHash, hash)
			}
			sawHeader = true
			off += int64(nl + 1)
			continue
		}
		var r Result[R]
		if err := json.Unmarshal(line, &r); err != nil || r.ID == "" {
			if len(blob) == 0 {
				// Complete-looking but unparseable final line: treat
				// as torn (a crash can land exactly on the newline of
				// a partial buffered write).
				break
			}
			return nil, 0, fmt.Errorf("%w: unparseable record at byte %d", ErrCorruptCheckpoint, off)
		}
		done[r.ID] = r
		off += int64(nl + 1)
	}
	if !sawHeader {
		return nil, 0, fmt.Errorf("%w: missing header", ErrCorruptCheckpoint)
	}
	return done, off, nil
}

// Journal is the exported append side of a checkpoint, typed on raw
// JSON results. It exists for executors outside this package — the
// distributed fabric coordinator merges remotely-executed results into
// the very same JSONL journal Run writes locally, so a campaign can be
// interrupted under one executor and resumed under the other.
type Journal struct {
	j *journal
}

// OpenJournal opens (or, with resume, reloads) the checkpoint at path
// exactly as Run would: same header, same config-hash verification,
// same torn-tail truncation. It returns the journal and the results
// already finished in it (nil on a fresh run).
func OpenJournal(path, hash string, resume bool) (*Journal, map[string]Result[json.RawMessage], error) {
	jl, done, err := openCheckpoint[json.RawMessage](path, hash, resume)
	if err != nil {
		return nil, nil, err
	}
	return &Journal{j: jl}, done, nil
}

// Append journals one finished job (write + fsync before returning). A
// non-nil error means the record is not durable: the caller must treat
// the job as never finished and re-queue it.
func (j *Journal) Append(r Result[json.RawMessage]) error { return j.j.Append(r) }

// Close closes the journal. Safe to call twice.
func (j *Journal) Close() error { return j.j.Close() }

// syncDir fsyncs the directory containing path so a just-created
// journal survives a crash of the host (best-effort: some platforms
// reject directory fsync).
func syncDir(path string) {
	d, err := os.Open(filepath.Dir(path))
	if err != nil {
		return
	}
	defer d.Close()
	d.Sync() //nolint:errcheck // best-effort
}

// HashJSON fingerprints a configuration value: the SHA-256 of its
// canonical JSON encoding, truncated for readability. Campaigns use it
// to refuse resuming a checkpoint written under different settings.
func HashJSON(v any) (string, error) {
	blob, err := json.Marshal(v)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(blob)
	return hex.EncodeToString(sum[:8]), nil
}

package campaign

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// The checkpoint is an append-only JSONL journal: a header line
// carrying the format version and the campaign's config hash, then one
// line per finished job. Records are written in a single Write call and
// fsynced before the job counts as finished, so after a crash the
// journal holds at most one torn trailing line, which load tolerates
// (the file is truncated back to the last complete record before
// appending resumes).
//
// Format v2 makes the journal self-verifying: every record line wraps
// the result in an envelope carrying a CRC32C and the canonical SHA-256
// attestation of the result bytes. That lets load distinguish the two
// corruption shapes the FTSPM taxonomy cares about: a torn tail (the
// crash interrupted an append — detectable, safe to truncate, a DUE)
// versus mid-file bitrot (a record that was once durable no longer
// checksums — silent data corruption surfaced as a hard error naming
// the byte offset, never silently truncated or reused). v1 journals
// (no envelopes) remain readable and are appended to in v1 form, so a
// resumed v1 campaign stays parseable end to end.

// Journal format versions. New journals are written at journalVersion;
// journalV1 files are read- and append-compatible.
const (
	journalV1      = 1
	journalV2      = 2
	journalVersion = journalV2
)

// Errors returned by the checkpoint layer.
var (
	// ErrCheckpointExists rejects a fresh (non-resume) run onto an
	// existing checkpoint file: pass Resume or remove the file.
	ErrCheckpointExists = errors.New("campaign: checkpoint file already exists (resume, or remove it to start over)")
	// ErrNoCheckpoint rejects Resume when the checkpoint file does not
	// exist.
	ErrNoCheckpoint = errors.New("campaign: resume requested but checkpoint file does not exist")
	// ErrConfigHashMismatch rejects resuming a checkpoint written
	// under a different campaign configuration.
	ErrConfigHashMismatch = errors.New("campaign: checkpoint config hash mismatch (the journal was written by a differently-configured campaign)")
	// ErrCorruptCheckpoint marks an unparseable non-trailing journal
	// line or a malformed header.
	ErrCorruptCheckpoint = errors.New("campaign: corrupt checkpoint")
	// ErrJournalBitrot marks a v2 record that is newline-complete —
	// its append finished — but no longer matches its own checksums:
	// mid-file silent corruption, as opposed to a torn tail. It always
	// wraps ErrCorruptCheckpoint.
	ErrJournalBitrot = errors.New("journal bitrot")
)

type journalHeader struct {
	V          int    `json:"v"`
	ConfigHash string `json:"config_hash"`
}

// journalRecord is the v2 per-record envelope: the marshaled result
// plus its CRC32C (fast fsck) and canonical SHA-256 attestation (the
// same sum the fabric verifies on the wire, tying the journal to the
// attestation layer).
type journalRecord struct {
	CRC string          `json:"crc"`
	Sum string          `json:"sum"`
	R   json.RawMessage `json:"r"`
}

// castagnoli is the CRC32C polynomial table (hardware-accelerated on
// amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

func crcOf(b []byte) string {
	return fmt.Sprintf("%08x", crc32.Checksum(b, castagnoli))
}

// SumBytes is the canonical attestation hash of a marshaled result:
// hex SHA-256 over the exact JSON bytes. The fabric stamps it on every
// streamed result, the coordinator re-derives it on receipt, and v2
// journal records store it — one definition, three verification points.
func SumBytes(b []byte) string {
	s := sha256.Sum256(b)
	return hex.EncodeToString(s[:])
}

// SumResult marshals a raw-typed result and returns its canonical
// attestation sum (and the marshaled bytes, so callers streaming the
// result need not re-encode).
func SumResult(r Result[json.RawMessage]) (sum string, encoded []byte, err error) {
	b, err := json.Marshal(r)
	if err != nil {
		return "", nil, err
	}
	return SumBytes(b), b, nil
}

// journal is the append side of an open checkpoint. version selects the
// record encoding: v2 wraps records in checksum envelopes; a resumed v1
// file keeps appending bare records so the file stays uniformly
// parseable.
type journal struct {
	f       *os.File
	version int
	closed  bool
}

// appendHook, when non-nil, intercepts journal appends before they are
// written — the test seam for injecting durable-write (fsync) failures.
var appendHook func(v any) error

// Append journals one finished job: a single JSON line, written in one
// call and fsynced so the record survives a crash of the very next
// instruction. The error is the caller's signal that the record is NOT
// durable: a job whose append failed must be treated as never finished.
func (j *journal) Append(v any) error {
	if appendHook != nil {
		if err := appendHook(v); err != nil {
			return err
		}
	}
	rb, err := json.Marshal(v)
	if err != nil {
		return err
	}
	line := rb
	if j.version >= journalV2 {
		if line, err = FrameRecord(rb); err != nil {
			return err
		}
	}
	return j.appendLine(line)
}

// appendLine writes one raw line (no envelope) and fsyncs.
func (j *journal) appendLine(line []byte) error {
	if _, err := j.f.Write(append(line, '\n')); err != nil {
		return err
	}
	return j.f.Sync()
}

// Close closes the journal; further Appends fail. Safe to call twice.
func (j *journal) Close() error {
	if j.closed {
		return nil
	}
	j.closed = true
	return j.f.Close()
}

// openCheckpoint opens path for journaling. A fresh run creates the
// file (failing if it already exists); a resume loads the finished
// records — verifying the config hash and, for v2 journals, every
// record checksum — truncates any torn trailing line, and reopens for
// appending in the file's own format version.
func openCheckpoint[R any](path, hash string, resume bool) (*journal, map[string]Result[R], error) {
	if resume {
		return resumeCheckpoint[R](path, hash)
	}
	if _, err := os.Stat(path); err == nil {
		return nil, nil, fmt.Errorf("%w: %s", ErrCheckpointExists, path)
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, nil, err
	}
	jl := &journal{f: f, version: journalVersion}
	hdr, err := json.Marshal(journalHeader{V: journalVersion, ConfigHash: hash})
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	if err := jl.appendLine(hdr); err != nil {
		f.Close()
		return nil, nil, err
	}
	syncDir(path)
	return jl, nil, nil
}

func resumeCheckpoint[R any](path, hash string) (*journal, map[string]Result[R], error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, nil, fmt.Errorf("%w: %s", ErrNoCheckpoint, path)
		}
		return nil, nil, err
	}
	sc, err := parseJournal[R](blob, hash)
	if err != nil {
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		return nil, nil, err
	}
	// Drop a torn trailing record (crash mid-append) before new
	// appends, so the journal stays line-parseable.
	if err := f.Truncate(sc.validLen); err != nil {
		f.Close()
		return nil, nil, err
	}
	if _, err := f.Seek(sc.validLen, 0); err != nil {
		f.Close()
		return nil, nil, err
	}
	return &journal{f: f, version: sc.header.V}, sc.done, nil
}

// journalScan is one parse of a journal blob.
type journalScan[R any] struct {
	header      journalHeader
	done        map[string]Result[R]
	validLen    int64
	records     int
	invalidated int
	tornBytes   int64
}

// parseJournal decodes the journal: header first, then one record per
// line. An empty hash skips the config-hash check (offline
// verification, where the expected hash is unknown).
//
// Tail discipline, per version: a trailing line with no newline is a
// torn append in both formats — everything before it is valid and the
// job it described was never acknowledged, so dropping it is safe. A
// newline-terminated record that fails to parse is treated leniently in
// v1 only when it is the final line (a crash can land exactly on the
// newline of a partial buffered write; v1 has no checksum to rule that
// out). In v2 every completed line carries its own CRC32C + SHA-256, so
// any newline-terminated record that fails to parse or checksum —
// final or not — is bitrot: a hard error naming the byte offset.
func parseJournal[R any](blob []byte, hash string) (*journalScan[R], error) {
	sc := &journalScan[R]{done: make(map[string]Result[R])}
	sawHeader := false
	for len(blob) > 0 {
		nl := bytes.IndexByte(blob, '\n')
		if nl < 0 {
			sc.tornBytes = int64(len(blob))
			break
		}
		line := blob[:nl]
		rest := blob[nl+1:]
		if !sawHeader {
			var h journalHeader
			if err := json.Unmarshal(line, &h); err != nil || h.V == 0 {
				return nil, fmt.Errorf("%w: bad header", ErrCorruptCheckpoint)
			}
			if h.V != journalV1 && h.V != journalV2 {
				return nil, fmt.Errorf("%w: journal version %d, want %d or %d",
					ErrCorruptCheckpoint, h.V, journalV1, journalV2)
			}
			if hash != "" && h.ConfigHash != hash {
				return nil, fmt.Errorf("%w: journal %s, campaign %s",
					ErrConfigHashMismatch, h.ConfigHash, hash)
			}
			sc.header = h
			sawHeader = true
			sc.validLen += int64(nl + 1)
			blob = rest
			continue
		}
		var r Result[R]
		if sc.header.V >= journalV2 {
			rr, err := parseRecordV2[R](line)
			if err != nil {
				return nil, fmt.Errorf("%w: %w at byte %d: %w",
					ErrCorruptCheckpoint, ErrJournalBitrot, sc.validLen, err)
			}
			r = rr
		} else {
			if err := json.Unmarshal(line, &r); err != nil || r.ID == "" {
				if len(rest) == 0 {
					// Complete-looking but unparseable final v1 line:
					// treat as torn (see the tail discipline above).
					sc.tornBytes = int64(nl + 1)
					break
				}
				return nil, fmt.Errorf("%w: unparseable record at byte %d", ErrCorruptCheckpoint, sc.validLen)
			}
		}
		sc.records++
		if r.Status == StatusInvalidated {
			// A conviction tombstone: the earlier record for this job
			// was produced by a worker later caught returning divergent
			// results. The job re-runs; a superseding record follows.
			delete(sc.done, r.ID)
			sc.invalidated++
		} else {
			sc.done[r.ID] = r
		}
		sc.validLen += int64(nl + 1)
		blob = rest
	}
	if !sawHeader {
		if sc.tornBytes > 0 {
			return nil, fmt.Errorf("%w: bad header", ErrCorruptCheckpoint)
		}
		return nil, fmt.Errorf("%w: missing header", ErrCorruptCheckpoint)
	}
	return sc, nil
}

// parseRecordV2 decodes and checksum-verifies one v2 record line.
func parseRecordV2[R any](line []byte) (Result[R], error) {
	var r Result[R]
	rb, err := UnframeRecord(line)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(rb, &r); err != nil || r.ID == "" {
		return r, errors.New("checksummed payload is not a result record")
	}
	return r, nil
}

// FrameRecord wraps marshaled payload bytes in the v2 self-verifying
// record envelope: {crc32c, canonical sha-256, payload}, one JSON line
// without the trailing newline. The campaign journal frames every v2
// record this way; the result cache's disk tier reuses the exact same
// envelope so one framing definition (and one fsck discipline) covers
// both files.
func FrameRecord(payload []byte) ([]byte, error) {
	return json.Marshal(journalRecord{CRC: crcOf(payload), Sum: SumBytes(payload), R: payload})
}

// UnframeRecord reverses FrameRecord: it decodes one envelope line,
// verifies both checksums, and returns the payload bytes. Any framing
// or checksum failure is an error; callers decide whether that is fatal
// (journal bitrot) or lossy (a cache miss).
func UnframeRecord(line []byte) (json.RawMessage, error) {
	var rec journalRecord
	if err := json.Unmarshal(line, &rec); err != nil {
		return nil, fmt.Errorf("record envelope: %v", err)
	}
	if rec.CRC == "" || rec.Sum == "" || len(rec.R) == 0 {
		return nil, errors.New("record envelope missing crc/sum/r")
	}
	if got := crcOf(rec.R); got != rec.CRC {
		return nil, fmt.Errorf("crc32c %s, record says %s", got, rec.CRC)
	}
	if got := SumBytes(rec.R); got != rec.Sum {
		return nil, fmt.Errorf("sha-256 %s, record says %s", got, rec.Sum)
	}
	return rec.R, nil
}

// JournalInfo summarizes an offline journal verification (ftspm-verify
// and tests).
type JournalInfo struct {
	// Version and ConfigHash echo the header.
	Version    int    `json:"version"`
	ConfigHash string `json:"config_hash"`
	// Records counts parsed record lines (invalidation tombstones
	// included); Done/Failed/Invalidated break them down — Done and
	// Failed after tombstone supersession, Invalidated as raw tombstone
	// count.
	Records     int `json:"records"`
	Done        int `json:"done"`
	Failed      int `json:"failed"`
	Invalidated int `json:"invalidated"`
	// TornBytes is the length of a torn trailing partial record (0 for
	// a clean tail). A torn tail is recoverable — resume truncates it —
	// so it is reported, not an error.
	TornBytes int64 `json:"torn_bytes"`
}

// VerifyJournal fscks a journal blob offline: header, every record's
// structure, and — for v2 journals — every record's CRC32C and SHA-256.
// The config hash is reported, not checked (the expected value is not
// known offline). Corruption returns a non-nil error distinguishing
// bitrot (ErrJournalBitrot, with byte offset) from structural damage
// (ErrCorruptCheckpoint).
func VerifyJournal(blob []byte) (*JournalInfo, error) {
	sc, err := parseJournal[json.RawMessage](blob, "")
	if err != nil {
		return nil, err
	}
	info := &JournalInfo{
		Version:     sc.header.V,
		ConfigHash:  sc.header.ConfigHash,
		Records:     sc.records,
		Invalidated: sc.invalidated,
		TornBytes:   sc.tornBytes,
	}
	for _, r := range sc.done {
		if r.Status == StatusFailed {
			info.Failed++
		} else {
			info.Done++
		}
	}
	return info, nil
}

// Journal is the exported append side of a checkpoint, typed on raw
// JSON results. It exists for executors outside this package — the
// distributed fabric coordinator merges remotely-executed results into
// the very same JSONL journal Run writes locally, so a campaign can be
// interrupted under one executor and resumed under the other.
type Journal struct {
	j *journal
}

// OpenJournal opens (or, with resume, reloads) the checkpoint at path
// exactly as Run would: same header, same config-hash verification,
// same torn-tail truncation and bitrot detection. It returns the
// journal and the results already finished in it (nil on a fresh run).
func OpenJournal(path, hash string, resume bool) (*Journal, map[string]Result[json.RawMessage], error) {
	jl, done, err := openCheckpoint[json.RawMessage](path, hash, resume)
	if err != nil {
		return nil, nil, err
	}
	return &Journal{j: jl}, done, nil
}

// Append journals one finished job (write + fsync before returning). A
// non-nil error means the record is not durable: the caller must treat
// the job as never finished and re-queue it.
func (j *Journal) Append(r Result[json.RawMessage]) error { return j.j.Append(r) }

// Invalidate journals a conviction tombstone for one job: on resume the
// job's earlier record is discarded and the job re-runs. The tombstone
// is fsynced before the caller may drop the in-memory result, so a
// crash between invalidation and re-execution cannot resurrect a
// result from a convicted worker.
func (j *Journal) Invalidate(id string) error {
	return j.j.Append(Result[json.RawMessage]{ID: id, Status: StatusInvalidated})
}

// Close closes the journal. Safe to call twice.
func (j *Journal) Close() error { return j.j.Close() }

// syncDir fsyncs the directory containing path so a just-created
// journal survives a crash of the host (best-effort: some platforms
// reject directory fsync).
func syncDir(path string) {
	d, err := os.Open(filepath.Dir(path))
	if err != nil {
		return
	}
	defer d.Close()
	d.Sync() //nolint:errcheck // best-effort
}

// HashJSON fingerprints a configuration value: the SHA-256 of its
// canonical JSON encoding, truncated for readability. Campaigns use it
// to refuse resuming a checkpoint written under different settings.
func HashJSON(v any) (string, error) {
	blob, err := json.Marshal(v)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(blob)
	return hex.EncodeToString(sum[:8]), nil
}

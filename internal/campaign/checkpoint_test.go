package campaign

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// journalFor runs a small checkpointed campaign and returns the path.
func journalFor(t *testing.T, hash string, n int) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "ck.jsonl")
	cfg := Config{CheckpointPath: path, ConfigHash: hash}
	if _, err := Run(context.Background(), cfg, sumJobs(n)); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestTornTrailingLineTolerated(t *testing.T) {
	path := journalFor(t, "h", 3)
	// Simulate a crash mid-append: a partial record with no newline.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"id":"job/99","status":"do`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	cfg := Config{CheckpointPath: path, ConfigHash: "h", Resume: true}
	rep, err := Run(context.Background(), cfg, sumJobs(4))
	if err != nil {
		t.Fatal(err)
	}
	// The three complete records resumed; the torn one was dropped and
	// its job (job/03 here stands in) re-ran; the journal is parseable
	// again afterwards.
	if rep.Resumed != 3 || rep.Completed != 4 {
		t.Fatalf("report: %+v", rep)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i, line := range strings.Split(strings.TrimRight(string(blob), "\n"), "\n") {
		if !strings.HasPrefix(line, "{") || !strings.HasSuffix(line, "}") {
			t.Errorf("line %d not a complete JSON object: %q", i, line)
		}
	}
}

func TestCorruptMiddleLineIsHardError(t *testing.T) {
	path := journalFor(t, "h", 3)
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(blob), "\n")
	if len(lines) < 4 {
		t.Fatalf("journal too short: %d lines", len(lines))
	}
	lines[1] = "not json at all\n"
	if err := os.WriteFile(path, []byte(strings.Join(lines, "")), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := Config{CheckpointPath: path, ConfigHash: "h", Resume: true}
	if _, err := Run(context.Background(), cfg, sumJobs(3)); !errors.Is(err, ErrCorruptCheckpoint) {
		t.Fatalf("err = %v, want ErrCorruptCheckpoint", err)
	}
}

func TestMissingHeaderRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.jsonl")
	if err := os.WriteFile(path, []byte(`{"id":"x","status":"done","attempts":1,"value":0}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := Config{CheckpointPath: path, ConfigHash: "h", Resume: true}
	if _, err := Run(context.Background(), cfg, sumJobs(1)); !errors.Is(err, ErrCorruptCheckpoint) {
		t.Fatalf("err = %v, want ErrCorruptCheckpoint", err)
	}
}

func TestJournalValueRoundTripsExactly(t *testing.T) {
	// Checkpointed results must reproduce bit-exact values after the
	// JSON round trip — the byte-identical-resume guarantee rests on
	// this.
	type payload struct {
		F float64
		U uint64
		M map[int]float64
	}
	want := payload{
		F: 0.1 + 0.2, // a value with no short decimal representation
		U: 1<<63 + 12345,
		M: map[int]float64{7: 1.0 / 3.0},
	}
	path := filepath.Join(t.TempDir(), "ck.jsonl")
	jobs := []Job[payload]{{
		ID:  "p",
		Run: func(context.Context) (payload, error) { return want, nil },
	}}
	cfg := Config{CheckpointPath: path, ConfigHash: "h"}
	if _, err := Run(context.Background(), cfg, jobs); err != nil {
		t.Fatal(err)
	}
	jobs[0].Run = func(context.Context) (payload, error) {
		return payload{}, errors.New("must not re-run")
	}
	cfg.Resume = true
	rep, err := Run(context.Background(), cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	got := rep.Results["p"].Value
	if got.F != want.F || got.U != want.U || got.M[7] != want.M[7] {
		t.Fatalf("round trip drifted: %+v vs %+v", got, want)
	}
	if fmt.Sprintf("%v", got) != fmt.Sprintf("%v", want) {
		t.Fatalf("formatted values differ: %v vs %v", got, want)
	}
}

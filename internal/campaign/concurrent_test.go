package campaign

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// TestConcurrentCampaignsSeparateCheckpoints runs two campaigns
// concurrently against distinct checkpoint files in one shared
// directory — the ftspmd serving pattern, where every async job owns a
// journal in the server's data dir. Under -race this doubles as a
// data-race check on the journal layer; the assertions prove the two
// journals never interleave: every line parses, every record belongs to
// its own campaign, and a resume on each file skips exactly its jobs.
func TestConcurrentCampaignsSeparateCheckpoints(t *testing.T) {
	dir := t.TempDir()
	const jobsPer = 20
	mkJobs := func(prefix string) []Job[int] {
		jobs := make([]Job[int], jobsPer)
		for i := range jobs {
			i := i
			jobs[i] = Job[int]{
				ID:  fmt.Sprintf("%s/job-%02d", prefix, i),
				Run: func(context.Context) (int, error) { return i * i, nil },
			}
		}
		return jobs
	}

	var wg sync.WaitGroup
	errs := make([]error, 2)
	for c := 0; c < 2; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			prefix := fmt.Sprintf("campaign-%d", c)
			cfg := Config{
				Workers:        4,
				CheckpointPath: filepath.Join(dir, prefix+".ckpt"),
				ConfigHash:     "hash-" + prefix,
			}
			rep, err := Run(context.Background(), cfg, mkJobs(prefix))
			if err == nil && rep.Completed != jobsPer {
				err = fmt.Errorf("completed %d of %d", rep.Completed, jobsPer)
			}
			errs[c] = err
		}()
	}
	wg.Wait()
	for c, err := range errs {
		if err != nil {
			t.Fatalf("campaign %d: %v", c, err)
		}
	}

	// Every journal line must parse and belong to its own campaign — a
	// record from the sibling campaign (or a torn/interleaved line)
	// fails here.
	for c := 0; c < 2; c++ {
		prefix := fmt.Sprintf("campaign-%d", c)
		path := filepath.Join(dir, prefix+".ckpt")
		blob, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(bytes.NewReader(blob))
		ids := make(map[string]bool)
		line := 0
		for sc.Scan() {
			line++
			if line == 1 {
				var h journalHeader
				if err := json.Unmarshal(sc.Bytes(), &h); err != nil || h.ConfigHash != "hash-"+prefix {
					t.Fatalf("%s: bad header %q", path, sc.Text())
				}
				continue
			}
			r, err := parseRecordV2[int](sc.Bytes())
			if err != nil {
				t.Fatalf("%s line %d: unparseable record %q: %v", path, line, sc.Text(), err)
			}
			if want := prefix + "/"; len(r.ID) < len(want) || r.ID[:len(want)] != want {
				t.Fatalf("%s line %d: foreign record %q leaked into journal", path, line, r.ID)
			}
			if ids[r.ID] {
				t.Fatalf("%s line %d: duplicate record %q", path, line, r.ID)
			}
			ids[r.ID] = true
		}
		if len(ids) != jobsPer {
			t.Fatalf("%s: %d records, want %d", path, len(ids), jobsPer)
		}

		// A resume over the journal must skip every job.
		cfg := Config{
			CheckpointPath: path,
			Resume:         true,
			ConfigHash:     "hash-" + prefix,
		}
		ran := false
		jobs := mkJobs(prefix)
		for i := range jobs {
			inner := jobs[i].Run
			jobs[i].Run = func(ctx context.Context) (int, error) {
				ran = true
				return inner(ctx)
			}
		}
		rep, err := Run(context.Background(), cfg, jobs)
		if err != nil {
			t.Fatalf("resume %s: %v", path, err)
		}
		if ran || rep.Resumed != jobsPer {
			t.Fatalf("resume %s re-ran jobs (ran=%v resumed=%d)", path, ran, rep.Resumed)
		}
	}
}

// TestConcurrentCampaignsSameCheckpointExcluded pins the guarantee that
// makes the per-job-journal pattern safe: two fresh campaigns can never
// share one checkpoint file. The second opener loses the O_EXCL race
// and fails with ErrCheckpointExists instead of interleaving records.
func TestConcurrentCampaignsSameCheckpointExcluded(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shared.ckpt")
	gate := make(chan struct{})
	jobs := func() []Job[int] {
		return []Job[int]{{
			ID: "only",
			Run: func(context.Context) (int, error) {
				<-gate // hold the first campaign open until both have tried the file
				return 1, nil
			},
		}}
	}

	results := make(chan error, 2)
	for c := 0; c < 2; c++ {
		go func() {
			_, err := Run(context.Background(),
				Config{CheckpointPath: path, ConfigHash: "h"}, jobs())
			results <- err
		}()
	}
	// Exactly one campaign must fail with ErrCheckpointExists; unblock
	// the winner once the loser has been rejected.
	first := <-results
	if !errors.Is(first, ErrCheckpointExists) {
		t.Fatalf("first finisher err = %v, want ErrCheckpointExists", first)
	}
	close(gate)
	if second := <-results; second != nil {
		t.Fatalf("surviving campaign err = %v, want nil", second)
	}
}

package campaign

import (
	"encoding/json"
	"testing"
)

// FuzzParseJournal throws arbitrary blobs — seeded with valid v1/v2
// journals, truncations, and bit flips — at the journal parser. The
// properties under test:
//
//  1. parseJournal never panics, whatever the input;
//  2. on success, validLen never exceeds the blob and marks a
//     self-consistent prefix: re-parsing blob[:validLen] succeeds with
//     the same record count and the same validLen (so a resume that
//     truncates to validLen is guaranteed to land on a journal the next
//     resume accepts).
func FuzzParseJournal(f *testing.F) {
	v1 := []byte(`{"v":1,"config_hash":"h"}
{"id":"a","status":"done","attempts":1,"value":1}
{"id":"b","status":"failed","attempts":2,"value":0,"error":"boom"}
`)
	rb := []byte(`{"id":"a","status":"done","attempts":1,"value":7}`)
	env, err := json.Marshal(journalRecord{CRC: crcOf(rb), Sum: SumBytes(rb), R: rb})
	if err != nil {
		f.Fatal(err)
	}
	v2 := append([]byte(`{"v":2,"config_hash":"h"}`+"\n"), append(env, '\n')...)

	f.Add(v1)
	f.Add(v2)
	f.Add(v1[:len(v1)-9]) // torn tail
	f.Add(v2[:len(v2)-9])
	flipped := append([]byte(nil), v2...)
	flipped[len(flipped)-10] ^= 0x10
	f.Add(flipped)
	f.Add([]byte(""))
	f.Add([]byte("{\n"))
	f.Add([]byte(`{"v":9,"config_hash":"h"}` + "\n"))

	f.Fuzz(func(t *testing.T, blob []byte) {
		sc, err := parseJournal[json.RawMessage](blob, "")
		if err != nil {
			return
		}
		if sc.validLen < 0 || sc.validLen > int64(len(blob)) {
			t.Fatalf("validLen %d outside blob of %d bytes", sc.validLen, len(blob))
		}
		if sc.tornBytes < 0 || sc.validLen+sc.tornBytes != int64(len(blob)) {
			t.Fatalf("validLen %d + tornBytes %d != len %d", sc.validLen, sc.tornBytes, len(blob))
		}
		re, err := parseJournal[json.RawMessage](blob[:sc.validLen], "")
		if err != nil {
			t.Fatalf("valid prefix of %d bytes failed to re-parse: %v", sc.validLen, err)
		}
		if re.records != sc.records || re.validLen != sc.validLen || re.tornBytes != 0 {
			t.Fatalf("re-parse of valid prefix diverged: records %d→%d validLen %d→%d torn %d",
				sc.records, re.records, sc.validLen, re.validLen, re.tornBytes)
		}
	})
}

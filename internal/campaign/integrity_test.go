package campaign

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// v1Fixture is a frozen pre-envelope (v1) journal, byte for byte as PRs
// 3-7 wrote them: bare result records, no per-record checksums. It must
// stay resumable forever.
const v1Fixture = `{"v":1,"config_hash":"h"}
{"id":"job/00","status":"done","attempts":1,"value":0}
{"id":"job/01","status":"done","attempts":1,"value":1}
{"id":"job/02","status":"failed","attempts":2,"value":0,"error":"boom"}
`

func writeFixture(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "ck.jsonl")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestV1JournalResumesCleanly(t *testing.T) {
	path := writeFixture(t, v1Fixture)
	cfg := Config{CheckpointPath: path, ConfigHash: "h", Resume: true}
	rep, err := Run(context.Background(), cfg, sumJobs(4))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Resumed != 3 || rep.Completed != 3 || rep.Failed != 1 {
		t.Fatalf("report: %+v", rep)
	}
	// Appends onto a v1 journal stay in v1 form so the file remains
	// uniformly parseable: the new record must be a bare result line,
	// not a checksum envelope.
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(blob), "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("journal has %d lines, want 5:\n%s", len(lines), blob)
	}
	if strings.Contains(lines[4], `"crc"`) {
		t.Fatalf("v1 journal grew a v2 envelope record: %s", lines[4])
	}
	// And the whole mixed file still verifies offline.
	info, err := VerifyJournal(blob)
	if err != nil {
		t.Fatalf("VerifyJournal: %v", err)
	}
	if info.Version != 1 || info.Records != 4 || info.Done != 3 || info.Failed != 1 {
		t.Fatalf("info = %+v", info)
	}
}

// v2Journal writes a fresh 3-job v2 journal and returns its path.
func v2Journal(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "ck.jsonl")
	cfg := Config{CheckpointPath: path, ConfigHash: "h"}
	if _, err := Run(context.Background(), cfg, sumJobs(3)); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestV2SingleFlippedByteIsBitrotNotTruncation(t *testing.T) {
	path := v2Journal(t)
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one bit in every byte position of every record line in turn
	// (skipping the header and the newlines themselves): resume must
	// fail with the bitrot error every time, never silently truncate —
	// including flips in the FINAL record, which a torn-tail heuristic
	// would happily drop.
	headerEnd := strings.IndexByte(string(blob), '\n') + 1
	for off := headerEnd; off < len(blob); off++ {
		if blob[off] == '\n' {
			continue
		}
		mut := append([]byte(nil), blob...)
		mut[off] ^= 0x04
		if mut[off] == '\n' { // a flip must not fabricate a line break here
			continue
		}
		mpath := writeFixture(t, string(mut))
		cfg := Config{CheckpointPath: mpath, ConfigHash: "h", Resume: true}
		_, err := Run(context.Background(), cfg, sumJobs(3))
		if !errors.Is(err, ErrJournalBitrot) {
			t.Fatalf("flip at byte %d: err = %v, want ErrJournalBitrot", off, err)
		}
		if !errors.Is(err, ErrCorruptCheckpoint) {
			t.Fatalf("flip at byte %d: bitrot must wrap ErrCorruptCheckpoint, got %v", off, err)
		}
	}
}

func TestV2BitrotErrorNamesByteOffset(t *testing.T) {
	path := v2Journal(t)
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the second record; the error must name the offset of the
	// line it starts at.
	nl1 := strings.IndexByte(string(blob), '\n') + 1 // after header
	nl2 := nl1 + strings.IndexByte(string(blob[nl1:]), '\n') + 1
	mut := append([]byte(nil), blob...)
	mut[nl2+10] ^= 0x01
	_, err = VerifyJournal(mut)
	if !errors.Is(err, ErrJournalBitrot) {
		t.Fatalf("err = %v, want ErrJournalBitrot", err)
	}
	if want := "at byte " + strconv.Itoa(nl2); !strings.Contains(err.Error(), want) {
		t.Fatalf("err %q does not name offset %q", err, want)
	}
}

func TestV2TornTailStillTolerated(t *testing.T) {
	path := v2Journal(t)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"crc":"0102","sum":"ab","r":{"id":"job/9`); err != nil {
		t.Fatal(err)
	}
	f.Close()
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	info, err := VerifyJournal(blob)
	if err != nil {
		t.Fatalf("VerifyJournal: %v", err)
	}
	if info.TornBytes == 0 || info.Records != 3 {
		t.Fatalf("info = %+v, want torn tail over 3 records", info)
	}
	cfg := Config{CheckpointPath: path, ConfigHash: "h", Resume: true}
	rep, err := Run(context.Background(), cfg, sumJobs(3))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Resumed != 3 {
		t.Fatalf("resumed %d, want 3", rep.Resumed)
	}
}

func TestInvalidationTombstoneRerunsJobOnResume(t *testing.T) {
	path := v2Journal(t)
	jl, done, err := OpenJournal(path, "h", true)
	if err != nil {
		t.Fatal(err)
	}
	if len(done) != 3 {
		t.Fatalf("resumed %d records, want 3", len(done))
	}
	if err := jl.Invalidate("job/01"); err != nil {
		t.Fatal(err)
	}
	if err := jl.Close(); err != nil {
		t.Fatal(err)
	}

	reran := false
	jobs := sumJobs(3)
	inner := jobs[1].Run
	jobs[1].Run = func(ctx context.Context) (int, error) {
		reran = true
		return inner(ctx)
	}
	cfg := Config{CheckpointPath: path, ConfigHash: "h", Resume: true}
	rep, err := Run(context.Background(), cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if !reran {
		t.Fatal("invalidated job was not re-executed on resume")
	}
	if rep.Resumed != 2 || rep.Completed != 3 {
		t.Fatalf("report: %+v", rep)
	}
}

func TestVerifyJournalRejectsStructuralDamage(t *testing.T) {
	for name, blob := range map[string]string{
		"empty":          "",
		"no header":      `{"id":"x","status":"done","attempts":1,"value":0}` + "\n",
		"garbage header": "not json\n",
	} {
		if _, err := VerifyJournal([]byte(blob)); !errors.Is(err, ErrCorruptCheckpoint) {
			t.Errorf("%s: err = %v, want ErrCorruptCheckpoint", name, err)
		}
	}
}

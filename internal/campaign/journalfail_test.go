package campaign

import (
	"context"
	"encoding/json"
	"errors"
	"path/filepath"
	"strings"
	"testing"
)

// A checkpoint append (write+fsync) failure must be returned to the
// caller — not just logged — with the affected job left pending, so a
// coordinator can re-queue the job whose result was never durably
// recorded. The fabric merger relies on this contract: it acks a job
// only after this layer reports the record durable.
func TestJournalAppendFailureReturnsErrorAndKeepsJobPending(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.jsonl")
	appendHook = func(v any) error {
		if r, ok := v.(Result[int]); ok && r.ID == "bad" {
			return errors.New("injected fsync failure")
		}
		return nil
	}
	defer func() { appendHook = nil }()

	var observed []string
	jobs := []Job[int]{
		{ID: "good", Run: func(context.Context) (int, error) { return 1, nil }},
		{ID: "bad", Run: func(context.Context) (int, error) { return 2, nil }},
		{ID: "after", Run: func(context.Context) (int, error) { return 3, nil }},
	}
	rep, err := Run(context.Background(), Config{
		Workers:        1,
		CheckpointPath: path,
		ConfigHash:     "h1",
		OnJobResult: func(r Result[json.RawMessage]) {
			observed = append(observed, r.ID)
		},
	}, jobs)

	if err == nil {
		t.Fatal("journal append failure was not returned")
	}
	if !strings.Contains(err.Error(), "checkpoint") || !strings.Contains(err.Error(), "injected fsync failure") {
		t.Fatalf("err = %v, want checkpoint error carrying the injected cause", err)
	}
	// The un-journaled job (and everything after it: the journal error
	// is sticky) must be pending, never accounted as finished.
	if _, ok := rep.Results["bad"]; ok {
		t.Fatal("job with failed journal append was recorded as finished")
	}
	if len(rep.PendingIDs) != 2 || rep.PendingIDs[0] != "bad" || rep.PendingIDs[1] != "after" {
		t.Fatalf("pending = %v, want [bad after]", rep.PendingIDs)
	}
	if rep.Completed != 1 {
		t.Fatalf("completed = %d, want 1 (only the job journaled before the failure)", rep.Completed)
	}
	// The result observer must only see durable results.
	if len(observed) != 1 || observed[0] != "good" {
		t.Fatalf("OnJobResult saw %v, want [good]", observed)
	}
}

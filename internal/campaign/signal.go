package campaign

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
)

// SignalContext returns a context cancelled on the first SIGINT or
// SIGTERM, for graceful shutdown: campaigns drain in-flight jobs,
// flush their checkpoint, and salvage partial results. Signal handling
// is restored after the first signal, so a second one kills the
// process immediately (the escape hatch when a drain hangs). The
// returned stop releases the signal registration.
func SignalContext(parent context.Context) (context.Context, context.CancelFunc) {
	ctx, stop := signal.NotifyContext(parent, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-ctx.Done()
		stop()
	}()
	return ctx, stop
}

// usageError marks a flag-validation failure: an invalid value or
// combination the flag package itself cannot reject.
type usageError struct{ msg string }

func (e *usageError) Error() string { return e.msg }

// Usagef returns a usage error; ExitCode maps it to exit status 2.
func Usagef(format string, args ...any) error {
	return &usageError{msg: fmt.Sprintf(format, args...)}
}

// IsUsage reports whether err is a flag-validation failure.
func IsUsage(err error) bool {
	var ue *usageError
	return errors.As(err, &ue)
}

// Exit statuses shared by the cmds.
const (
	ExitOK         = 0
	ExitError      = 1 // any failure not covered below
	ExitUsage      = 2 // bad flags or flag combinations
	ExitIncomplete = 3 // interrupted: partial results salvaged, resumable
)

// ExitCode maps a cmd run error to its process exit status.
func ExitCode(err error) int {
	switch {
	case err == nil, errors.Is(err, flag.ErrHelp):
		return ExitOK
	case IsUsage(err):
		return ExitUsage
	case errors.Is(err, ErrIncomplete):
		return ExitIncomplete
	default:
		return ExitError
	}
}

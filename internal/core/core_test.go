package core

import (
	"errors"
	"testing"

	"ftspm/internal/memtech"
	"ftspm/internal/profile"
	"ftspm/internal/program"
	"ftspm/internal/spm"
	"ftspm/internal/trace"
	"ftspm/internal/workloads"
)

func TestStructureSpecsTableIV(t *testing.T) {
	ftspm := MustSpec(StructFTSPM)
	if ftspm.ISPMBytes() != 16*1024 || ftspm.DSPMBytes() != 16*1024 {
		t.Errorf("FTSPM SPM sizes = %d/%d", ftspm.ISPMBytes(), ftspm.DSPMBytes())
	}
	if ftspm.DataRegionBytes(spm.RegionSTT) != 12*1024 ||
		ftspm.DataRegionBytes(spm.RegionECC) != 2*1024 ||
		ftspm.DataRegionBytes(spm.RegionParity) != 2*1024 {
		t.Error("FTSPM data regions do not match Table IV")
	}
	if ftspm.ExtraLeakage != memtech.HybridControllerLeakage {
		t.Error("FTSPM missing controller leakage")
	}
	if ftspm.TotalBytes() != 32*1024 {
		t.Errorf("TotalBytes = %d", ftspm.TotalBytes())
	}

	sram := MustSpec(StructPureSRAM)
	if sram.DataRegionBytes(spm.RegionECC) != 16*1024 || len(sram.DSPM) != 1 {
		t.Error("pure SRAM structure wrong")
	}
	stt := MustSpec(StructPureSTT)
	if stt.DataRegionBytes(spm.RegionSTT) != 16*1024 || stt.ExtraLeakage != 0 {
		t.Error("pure STT structure wrong")
	}
	if stt.DataRegionBytes(spm.RegionParity) != 0 {
		t.Error("phantom parity region")
	}

	if _, err := NewSpec(Structure(0)); !errors.Is(err, ErrUnknownStructure) {
		t.Error("bad structure accepted")
	}
	if len(Structures()) != 3 {
		t.Error("Structures() wrong")
	}
	for _, s := range Structures() {
		if !s.Valid() || s.String() == "" {
			t.Errorf("structure %d invalid", s)
		}
	}
	if Structure(9).String() != "Structure(9)" || Structure(9).Valid() {
		t.Error("unknown structure helpers")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustSpec did not panic")
		}
	}()
	MustSpec(Structure(99))
}

func TestStructureLeakagePaperValues(t *testing.T) {
	// Section V: 15.8 / 3.0 / 7.1 mW.
	tests := []struct {
		s    Structure
		want float64
	}{
		{StructPureSRAM, 15.8},
		{StructPureSTT, 3.0},
		{StructFTSPM, 7.1},
	}
	for _, tt := range tests {
		spec := MustSpec(tt.s)
		leak, err := spec.Leakage()
		if err != nil {
			t.Fatal(err)
		}
		got := float64(leak)
		if got < tt.want*0.98 || got > tt.want*1.02 {
			t.Errorf("%v leakage = %.2f mW, want ~%.1f", tt.s, got, tt.want)
		}
	}
}

func caseStudyProfile(t *testing.T) *profile.Profile {
	t.Helper()
	w := workloads.CaseStudy()
	prof, err := profile.Run(w.Program(), w.Trace(0.25))
	if err != nil {
		t.Fatal(err)
	}
	return prof
}

func TestMDAReproducesTableII(t *testing.T) {
	// The headline correctness check: Algorithm 1 on the case-study
	// profile must reproduce the Table II placement —
	//   Main   unmapped (exceeds I-SPM)
	//   Mul    I-SPM (STT-RAM)
	//   Add    I-SPM (STT-RAM)
	//   Array1 SRAM(ECC)     Array2 STT-RAM
	//   Array3 SRAM(ECC)     Array4 STT-RAM
	//   Stack  SRAM(parity)
	prof := caseStudyProfile(t)
	m, err := MapBlocks(prof, MustSpec(StructFTSPM), DefaultThresholds(), PriorityReliability)
	if err != nil {
		t.Fatal(err)
	}

	want := map[string]struct {
		mapped bool
		kind   spm.RegionKind
	}{
		"Main":   {false, 0},
		"Mul":    {true, spm.RegionSTT},
		"Add":    {true, spm.RegionSTT},
		"Array1": {true, spm.RegionECC},
		"Array2": {true, spm.RegionSTT},
		"Array3": {true, spm.RegionECC},
		"Array4": {true, spm.RegionSTT},
		"Stack":  {true, spm.RegionParity},
	}
	for name, w := range want {
		d, ok := m.Decision(name)
		if !ok {
			t.Fatalf("no decision for %s", name)
		}
		if d.Mapped != w.mapped {
			t.Errorf("%s: mapped = %v (%s), want %v", name, d.Mapped, d.Reason, w.mapped)
			continue
		}
		if w.mapped && d.Target != w.kind {
			t.Errorf("%s: target = %v (%s), want %v", name, d.Target, d.Reason, w.kind)
		}
	}
	if len(m.Placement) != 7 {
		t.Errorf("placement has %d blocks, want 7", len(m.Placement))
	}
	// The write-hot blocks must carry eviction records.
	for _, name := range []string{"Array1", "Array3", "Stack"} {
		d, _ := m.Decision(name)
		if !d.Evicted {
			t.Errorf("%s not marked evicted (%s)", name, d.Reason)
		}
	}
	if m.AvgEvictedSusceptibility <= 0 {
		t.Error("no average evicted susceptibility")
	}
	if m.EstPerfOverhead < 0 || m.EstPerfOverhead > 0.25 {
		t.Errorf("final perf overhead estimate = %v", m.EstPerfOverhead)
	}
}

func TestMDABaselinesMapEverythingFitting(t *testing.T) {
	prof := caseStudyProfile(t)
	for _, s := range []Structure{StructPureSRAM, StructPureSTT} {
		m, err := MapBlocks(prof, MustSpec(s), DefaultThresholds(), PriorityReliability)
		if err != nil {
			t.Fatal(err)
		}
		kind := MustSpec(s).DataKinds[0]
		// All blocks except the oversized Main map to the single kind.
		for _, d := range m.Decisions {
			if d.Block.Name == "Main" {
				if d.Mapped {
					t.Errorf("%v: Main mapped", s)
				}
				continue
			}
			if !d.Mapped || d.Target != kind {
				t.Errorf("%v: %s -> %v mapped=%v", s, d.Block.Name, d.Target, d.Mapped)
			}
			if d.Evicted {
				t.Errorf("%v: baseline evicted %s", s, d.Block.Name)
			}
		}
	}
}

func TestMDAPriorityEnduranceEvictsMore(t *testing.T) {
	prof := caseStudyProfile(t)
	spec := MustSpec(StructFTSPM)
	rel, err := MapBlocks(prof, spec, DefaultThresholds(), PriorityReliability)
	if err != nil {
		t.Fatal(err)
	}
	end, err := MapBlocks(prof, spec, DefaultThresholds(), PriorityEndurance)
	if err != nil {
		t.Fatal(err)
	}
	sttCount := func(m Mapping) int {
		n := 0
		for id, k := range m.Placement {
			b, err := prof.Program().Block(id)
			if err != nil {
				t.Fatal(err)
			}
			if b.Kind.IsData() && k == spm.RegionSTT {
				n++
			}
		}
		return n
	}
	if sttCount(end) > sttCount(rel) {
		t.Errorf("endurance priority kept more STT blocks (%d) than reliability (%d)",
			sttCount(end), sttCount(rel))
	}
	if end.WriteThresholdWords >= rel.WriteThresholdWords {
		t.Error("endurance priority did not tighten the write threshold")
	}
}

func TestMDAPriorityPerformanceTightens(t *testing.T) {
	th := DefaultThresholds()
	perf := th.ForPriority(PriorityPerformance)
	if perf.PerfOverhead >= th.PerfOverhead {
		t.Error("performance priority did not tighten the budget")
	}
	power := th.ForPriority(PriorityPower)
	if power.EnergyOverhead >= th.EnergyOverhead {
		t.Error("power priority did not tighten the budget")
	}
	if th.ForPriority(PriorityReliability) != th {
		t.Error("reliability priority changed the budgets")
	}
}

func TestMDAInputValidation(t *testing.T) {
	prof := caseStudyProfile(t)
	spec := MustSpec(StructFTSPM)
	if _, err := MapBlocks(nil, spec, DefaultThresholds(), PriorityReliability); !errors.Is(err, ErrNilProfile) {
		t.Error("nil profile accepted")
	}
	if _, err := MapBlocks(prof, spec, Thresholds{}, PriorityReliability); !errors.Is(err, ErrBadThresholds) {
		t.Error("zero thresholds accepted")
	}
	if _, err := MapBlocks(prof, spec, DefaultThresholds(), Priority(0)); !errors.Is(err, ErrBadPriority) {
		t.Error("bad priority accepted")
	}
	for _, p := range []Priority{PriorityReliability, PriorityPerformance, PriorityPower, PriorityEndurance} {
		if !p.Valid() || p.String() == "" {
			t.Errorf("priority %d helpers wrong", p)
		}
	}
	if Priority(9).String() != "Priority(9)" {
		t.Error("unknown priority stringer")
	}
}

func TestMDASuiteMappingsAreControllable(t *testing.T) {
	// Every suite workload must produce a placement that the controller
	// accepts (no block bigger than its target region) and that keeps
	// write-hot traffic out of STT-RAM.
	for _, w := range workloads.Suite() {
		prof, err := profile.Run(w.Program(), w.Trace(0.1))
		if err != nil {
			t.Fatal(err)
		}
		m, err := MapBlocks(prof, MustSpec(StructFTSPM), DefaultThresholds(), PriorityReliability)
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		spec := MustSpec(StructFTSPM)
		for id, kind := range m.Placement {
			b, err := prof.Program().Block(id)
			if err != nil {
				t.Fatal(err)
			}
			var regionBytes int
			if b.Kind.IsData() {
				regionBytes = spec.DataRegionBytes(kind)
			} else {
				regionBytes = spec.ISPMBytes()
			}
			if b.Size > regionBytes {
				t.Errorf("%s: %s (%d B) into %v (%d B)", w.Name, b.Name, b.Size, kind, regionBytes)
			}
		}
		// STT write share must respect the endurance threshold: any
		// STT-resident data block over the volume threshold must be
		// write-sparse (the streaming-buffer exemption), and no block
		// may concentrate writes on a hot cell.
		totalWrites := 0.0
		for _, bp := range prof.DataBlocks() {
			totalWrites += float64(bp.WriteWords)
		}
		for id, kind := range m.Placement {
			b, err := prof.Program().Block(id)
			if err != nil {
				t.Fatal(err)
			}
			if !b.Kind.IsData() || kind != spm.RegionSTT {
				continue
			}
			bp := prof.Blocks[id]
			ownShare := float64(bp.WriteWords) / float64(bp.ReadWords+bp.WriteWords+1)
			if float64(bp.WriteWords) > m.WriteThresholdWords && ownShare > 0.02 {
				t.Errorf("%s: write-dense STT block %s exceeds write threshold", w.Name, b.Name)
			}
			if float64(bp.MaxWordWrites) > 0.001*totalWrites {
				t.Errorf("%s: STT block %s concentrates writes (%d on one cell)",
					w.Name, b.Name, bp.MaxWordWrites)
			}
		}
	}
}

func TestCostModelOverheads(t *testing.T) {
	// Hand-checkable overhead estimation: one block with known word
	// counts in each region.
	spec := MustSpec(StructFTSPM)
	cm, err := newCostModel(spec)
	if err != nil {
		t.Fatal(err)
	}
	p := program.New("cm")
	id := p.MustAddBlock("B", program.DataBlock, 1024)
	addr, err := p.AddrOf(id, 0)
	if err != nil {
		t.Fatal(err)
	}
	// 100 reads + 50 writes, one word each, no think: exec = 150 cycles.
	var evs []trace.Event
	for i := 0; i < 100; i++ {
		evs = append(evs, trace.AccessEvent(trace.Access{Op: trace.Read, Space: trace.Data, Addr: addr, Size: 4}))
	}
	for i := 0; i < 50; i++ {
		evs = append(evs, trace.AccessEvent(trace.Access{Op: trace.Write, Space: trace.Data, Addr: addr, Size: 4}))
	}
	prof, err := profile.Run(p, trace.NewSliceStream(evs))
	if err != nil {
		t.Fatal(err)
	}

	// In STT-RAM: reads cost the ideal 1 cycle, writes 9 extra each:
	// overhead = 50*9 / 150 = 3.0.
	perf, energy := cm.overheads(prof, map[program.BlockID]spm.RegionKind{id: spm.RegionSTT}, prof.ExecCycles)
	if perf < 2.9 || perf > 3.1 {
		t.Errorf("STT perf overhead = %v, want ~3.0", perf)
	}
	if energy <= 0 {
		t.Errorf("STT energy overhead = %v, want > 0 (2 nJ writes)", energy)
	}

	// In the ideal (parity) region both overheads vanish.
	perf, energy = cm.overheads(prof, map[program.BlockID]spm.RegionKind{id: spm.RegionParity}, prof.ExecCycles)
	if perf != 0 || energy != 0 {
		t.Errorf("parity overheads = %v/%v, want 0/0", perf, energy)
	}

	// Unassigned blocks are charged at the ideal kind.
	perf, energy = cm.overheads(prof, map[program.BlockID]spm.RegionKind{}, prof.ExecCycles)
	if perf != 0 || energy != 0 {
		t.Errorf("unassigned overheads = %v/%v, want 0/0", perf, energy)
	}

	// Zero execution time guards division.
	perf, energy = cm.overheads(prof, nil, 0)
	if perf != 0 || energy != 0 {
		t.Error("zero-exec overheads not 0")
	}

	// ECC costs one extra cycle per word in both directions:
	// overhead = 150*1 / 150 = 1.0.
	perf, _ = cm.overheads(prof, map[program.BlockID]spm.RegionKind{id: spm.RegionECC}, prof.ExecCycles)
	if perf < 0.9 || perf > 1.1 {
		t.Errorf("ECC perf overhead = %v, want ~1.0", perf)
	}
}

package core

import (
	"errors"
	"fmt"
	"sort"

	"ftspm/internal/memtech"
	"ftspm/internal/profile"
	"ftspm/internal/program"
	"ftspm/internal/spm"
)

// Priority selects which budget the multi-priority mapping tightens, as
// Section III describes: the algorithm "is also able to optimize the
// mapping of program blocks for reliability, performance, power, or
// endurance according to system requirements".
type Priority int

// Priorities.
const (
	// PriorityReliability keeps as many blocks as possible in the
	// immune STT-RAM region (the default budgets).
	PriorityReliability Priority = iota + 1
	// PriorityPerformance tightens the performance budget, pushing
	// write traffic out of the slow-write STT-RAM early.
	PriorityPerformance
	// PriorityPower tightens the dynamic-energy budget.
	PriorityPower
	// PriorityEndurance tightens the write-cycle threshold.
	PriorityEndurance
)

// String implements fmt.Stringer.
func (p Priority) String() string {
	switch p {
	case PriorityReliability:
		return "reliability"
	case PriorityPerformance:
		return "performance"
	case PriorityPower:
		return "power"
	case PriorityEndurance:
		return "endurance"
	default:
		return fmt.Sprintf("Priority(%d)", int(p))
	}
}

// Valid reports whether p is a known priority.
func (p Priority) Valid() bool {
	return p >= PriorityReliability && p <= PriorityEndurance
}

// Thresholds are the Algorithm 1 budgets ("custom predefined percentage
// of overhead from the ideal situation").
type Thresholds struct {
	// PerfOverhead bounds the estimated cycle overhead of the mapping
	// relative to the all-parity-SRAM ideal (step 3).
	PerfOverhead float64
	// EnergyOverhead bounds the estimated dynamic-energy overhead
	// relative to the same ideal (step 4).
	EnergyOverhead float64
	// WriteFraction is the step 5 write-cycle threshold, expressed as a
	// fraction of the program's total data write words so it is
	// trace-length invariant: blocks writing more than this share are
	// deported from STT-RAM regardless of vulnerability.
	WriteFraction float64
	// CellWriteFraction is the per-cell companion of WriteFraction:
	// a block is also deported when its hottest single word absorbs
	// more than this share of the total data write words. Endurance is
	// a per-cell phenomenon — a stack slot rewritten by every call
	// wears out long before a streaming buffer of the same total write
	// volume — so step 5 checks both (refinement documented in
	// DESIGN.md).
	CellWriteFraction float64
}

// DefaultThresholds returns the budgets used throughout the evaluation.
func DefaultThresholds() Thresholds {
	return Thresholds{
		PerfOverhead:      0.10,
		EnergyOverhead:    0.30,
		WriteFraction:     0.01,
		CellWriteFraction: 0.001,
	}
}

// ForPriority returns the thresholds tightened for the given priority
// (reliability keeps the defaults — the loosest budgets keep the most
// blocks in the immune region).
func (t Thresholds) ForPriority(p Priority) Thresholds {
	out := t
	switch p {
	case PriorityPerformance:
		out.PerfOverhead *= 0.25
	case PriorityPower:
		out.EnergyOverhead *= 0.25
	case PriorityEndurance:
		out.WriteFraction *= 0.25
		out.CellWriteFraction *= 0.25
	}
	return out
}

// Validate rejects non-positive budgets.
func (t Thresholds) Validate() error {
	if t.PerfOverhead <= 0 || t.EnergyOverhead <= 0 ||
		t.WriteFraction <= 0 || t.CellWriteFraction <= 0 {
		return fmt.Errorf("%w: %+v", ErrBadThresholds, t)
	}
	return nil
}

// Decision records why one block ended up where it did (the Table II
// rows).
type Decision struct {
	// Block is the decided block.
	Block program.Block
	// Mapped is false when the block stays off-SPM (served by caches).
	Mapped bool
	// Target is the region kind for mapped blocks.
	Target spm.RegionKind
	// Evicted is true for data blocks deported from STT-RAM by steps
	// 3-5.
	Evicted bool
	// Reason is a human-readable explanation.
	Reason string
}

// Mapping is the MDA output.
type Mapping struct {
	// Placement feeds the SPM controller.
	Placement spm.Placement
	// Decisions lists every block in program order.
	Decisions []Decision
	// AvgEvictedSusceptibility is the step 6 split point.
	AvgEvictedSusceptibility float64
	// EstPerfOverhead and EstEnergyOverhead are the final estimated
	// overheads versus the all-parity ideal.
	EstPerfOverhead, EstEnergyOverhead float64
	// WriteThresholdWords is the resolved step 5 threshold.
	WriteThresholdWords float64
	// Spec is the structure the mapping targets.
	Spec Spec
}

// Decision returns the decision for a named block.
func (m Mapping) Decision(name string) (Decision, bool) {
	for _, d := range m.Decisions {
		if d.Block.Name == name {
			return d, true
		}
	}
	return Decision{}, false
}

// Errors returned by MapBlocks.
var (
	ErrNilProfile    = errors.New("core: profile must not be nil")
	ErrBadThresholds = errors.New("core: thresholds must be positive")
	ErrBadPriority   = errors.New("core: unknown priority")
)

// costModel caches the per-kind word latencies/energies of the spec's
// data regions for the analytic overhead estimates of steps 3-4.
type costModel struct {
	readLat, writeLat map[spm.RegionKind]memtech.Cycles
	readE, writeE     map[spm.RegionKind]memtech.Picojoules
	idealKind         spm.RegionKind
}

func newCostModel(spec Spec) (*costModel, error) {
	cm := &costModel{
		readLat:  make(map[spm.RegionKind]memtech.Cycles),
		writeLat: make(map[spm.RegionKind]memtech.Cycles),
		readE:    make(map[spm.RegionKind]memtech.Picojoules),
		writeE:   make(map[spm.RegionKind]memtech.Picojoules),
	}
	for _, rc := range spec.DSPM {
		bank, err := memtech.EstimateBank(rc.Kind.Technology(), rc.Kind.Protection(), rc.SizeBytes)
		if err != nil {
			return nil, err
		}
		cm.readLat[rc.Kind] = bank.ReadLatency
		cm.writeLat[rc.Kind] = bank.WriteLatency
		cm.readE[rc.Kind] = bank.ReadEnergy
		cm.writeE[rc.Kind] = bank.WriteEnergy
	}
	// The "ideal situation" of Algorithm 1 is the fastest, cheapest
	// region available: parity SRAM when present, else the structure's
	// only kind.
	cm.idealKind = spec.DataKinds[len(spec.DataKinds)-1]
	return cm, nil
}

// overheads returns the estimated performance and energy overheads of
// the current assignment versus the all-ideal-region scenario.
// Blocks evicted but not yet assigned are charged at the ideal kind.
func (cm *costModel) overheads(prof *profile.Profile, assign map[program.BlockID]spm.RegionKind,
	execCycles memtech.Cycles) (perf, energy float64) {
	if execCycles == 0 {
		return 0, 0
	}
	var extraCycles float64
	var eScenario, eIdeal float64
	for _, bp := range prof.DataBlocks() {
		kind, ok := assign[bp.Block.ID]
		if !ok {
			kind = cm.idealKind
		}
		rw, ww := float64(bp.ReadWords), float64(bp.WriteWords)
		extraCycles += rw*float64(cm.readLat[kind]-cm.readLat[cm.idealKind]) +
			ww*float64(cm.writeLat[kind]-cm.writeLat[cm.idealKind])
		eScenario += rw*float64(cm.readE[kind]) + ww*float64(cm.writeE[kind])
		eIdeal += rw*float64(cm.readE[cm.idealKind]) + ww*float64(cm.writeE[cm.idealKind])
	}
	perf = extraCycles / float64(execCycles)
	if eIdeal > 0 {
		energy = (eScenario - eIdeal) / eIdeal
	}
	return perf, energy
}

// MapBlocks runs the Mapping Determiner Algorithm (Algorithm 1) over a
// profile for a structure. For the single-region baselines only step 1
// applies; for the hybrid FTSPM structure the full six steps run.
func MapBlocks(prof *profile.Profile, spec Spec, th Thresholds, prio Priority) (Mapping, error) {
	if prof == nil {
		return Mapping{}, ErrNilProfile
	}
	if !prio.Valid() {
		return Mapping{}, fmt.Errorf("%w: %d", ErrBadPriority, int(prio))
	}
	if err := th.Validate(); err != nil {
		return Mapping{}, err
	}
	th = th.ForPriority(prio)

	m := Mapping{Placement: make(spm.Placement), Spec: spec}
	cm, err := newCostModel(spec)
	if err != nil {
		return Mapping{}, err
	}

	decisions := make(map[program.BlockID]*Decision)
	record := func(b program.Block) *Decision {
		d := &Decision{Block: b}
		decisions[b.ID] = d
		return d
	}

	// Step 1a: instruction blocks into the I-SPM (lines 2-4). The
	// paper's check is per-block against the I-SPM size; the dynamic
	// on-line phase time-shares the space.
	for _, bp := range prof.CodeBlocks() {
		d := record(bp.Block)
		if bp.Block.Size <= spec.ISPMBytes() {
			d.Mapped, d.Target = true, spec.CodeKind
			d.Reason = "fits I-SPM"
			m.Placement[bp.Block.ID] = spec.CodeKind
		} else {
			d.Reason = fmt.Sprintf("exceeds %d KB I-SPM", spec.ISPMBytes()/1024)
		}
	}

	// Step 1b: data blocks into the primary (most reliable) data region
	// (lines 5-7).
	primary := spec.DataKinds[0]
	primaryBytes := spec.DataRegionBytes(primary)
	assign := make(map[program.BlockID]spm.RegionKind)
	var inPrimary []profile.BlockProfile
	for _, bp := range prof.DataBlocks() {
		d := record(bp.Block)
		if bp.Block.Size <= primaryBytes {
			assign[bp.Block.ID] = primary
			inPrimary = append(inPrimary, bp)
			d.Mapped, d.Target = true, primary
			d.Reason = "initial " + primary.String() + " mapping"
		} else {
			d.Reason = fmt.Sprintf("exceeds %d KB %v region", primaryBytes/1024, primary)
		}
	}

	// Single-region structures (the baselines) are done.
	if len(spec.DataKinds) > 1 {
		// Step 2: descending susceptibility order (lines 9-12).
		sort.SliceStable(inPrimary, func(i, j int) bool {
			si, sj := inPrimary[i].Susceptibility(), inPrimary[j].Susceptibility()
			if si != sj {
				return si > sj
			}
			return inPrimary[i].Block.Name < inPrimary[j].Block.Name
		})

		// Two refinements over the literal Algorithm 1 listing, both
		// documented in DESIGN.md:
		//
		//  1. The endurance filter (step 5) runs before the
		//     performance/energy loops. The paper's own narrative says
		//     the algorithm "deports the write intensive blocks ...
		//     through the primary stage of mapping", and its case study
		//     evicts exactly the write-hot blocks; running the filter
		//     last would let steps 3-4 spend their budget evicting
		//     read-mostly blocks first.
		//  2. The step 3/4 loops evict the least-susceptible block
		//     *among those contributing overhead*. Evicting a block
		//     whose STT-RAM costs equal the ideal's (a read-only block:
		//     STT reads are already 1 cycle) can never reduce the
		//     overhead, so the literal loop would discard reliability
		//     for nothing and might never converge.
		var evicted []profile.BlockProfile
		evictAt := func(i int, reason string) {
			bp := inPrimary[i]
			inPrimary = append(inPrimary[:i], inPrimary[i+1:]...)
			delete(assign, bp.Block.ID)
			evicted = append(evicted, bp)
			d := decisions[bp.Block.ID]
			d.Evicted = true
			d.Reason = reason
		}
		// leastContributing returns the index of the least-susceptible
		// block with positive marginal overhead, -1 if none. inPrimary
		// is in descending susceptibility order, so scan from the back.
		leastContributing := func() int {
			for i := len(inPrimary) - 1; i >= 0; i-- {
				if inPrimary[i].WriteWords > 0 || cm.readLat[primary] > cm.readLat[cm.idealKind] {
					return i
				}
			}
			return -1
		}

		// Step 5 (run first, see above): deport write-intensive blocks
		// regardless of vulnerability (lines 23-27).
		totalWrites := float64(totalDataWriteWords(prof))
		m.WriteThresholdWords = th.WriteFraction * totalWrites
		cellThreshold := th.CellWriteFraction * totalWrites
		// A block is write-intensive only if it is also write-dense
		// relative to its own traffic: a buffer read millions of times
		// with a rare in-place update is exactly what STT-RAM is for,
		// and spreading its few writes over its many words cannot wear
		// any cell (refinement documented in DESIGN.md).
		const minOwnWriteShare = 0.02
		for i := len(inPrimary) - 1; i >= 0; i-- {
			bp := inPrimary[i]
			ownShare := 0.0
			if total := bp.ReadWords + bp.WriteWords; total > 0 {
				ownShare = float64(bp.WriteWords) / float64(total)
			}
			switch {
			case float64(bp.WriteWords) > m.WriteThresholdWords && ownShare > minOwnWriteShare:
				evictAt(i, "evicted: write-cycle threshold")
			case float64(bp.MaxWordWrites) > cellThreshold:
				evictAt(i, "evicted: per-cell write concentration")
			}
		}

		// Step 3: performance budget (lines 13-17).
		for len(inPrimary) > 0 {
			perf, _ := cm.overheads(prof, assign, prof.ExecCycles)
			if perf <= th.PerfOverhead {
				break
			}
			i := leastContributing()
			if i < 0 {
				break
			}
			evictAt(i, "evicted: performance budget")
		}

		// Step 4: energy budget (lines 18-22).
		for len(inPrimary) > 0 {
			_, energy := cm.overheads(prof, assign, prof.ExecCycles)
			if energy <= th.EnergyOverhead {
				break
			}
			i := leastContributing()
			if i < 0 {
				break
			}
			evictAt(i, "evicted: energy budget")
		}

		// Step 6: place evicted blocks around the mean susceptibility
		// (lines 28-36): more susceptible halves earn the stronger
		// (SEC-DED) region.
		if len(evicted) > 0 {
			var sum float64
			for _, bp := range evicted {
				sum += bp.Susceptibility()
			}
			m.AvgEvictedSusceptibility = sum / float64(len(evicted))
			eccBytes := spec.DataRegionBytes(spm.RegionECC)
			parityBytes := spec.DataRegionBytes(spm.RegionParity)
			sort.SliceStable(evicted, func(i, j int) bool {
				si, sj := evicted[i].Susceptibility(), evicted[j].Susceptibility()
				if si != sj {
					return si > sj
				}
				return evicted[i].Block.Name < evicted[j].Block.Name
			})
			for _, bp := range evicted {
				d := decisions[bp.Block.ID]
				var kind spm.RegionKind
				switch {
				case bp.Susceptibility() >= m.AvgEvictedSusceptibility && bp.Block.Size <= eccBytes:
					kind = spm.RegionECC
				case bp.Block.Size <= parityBytes:
					kind = spm.RegionParity
				case bp.Block.Size <= eccBytes:
					kind = spm.RegionECC
				default:
					d.Mapped = false
					d.Reason += "; fits no SRAM region, unmapped"
					continue
				}
				assign[bp.Block.ID] = kind
				d.Mapped, d.Target = true, kind
				d.Reason += " -> " + kind.String()
			}
		}
	}

	for id, kind := range assign {
		m.Placement[id] = kind
	}
	m.EstPerfOverhead, m.EstEnergyOverhead = cm.overheads(prof, assign, prof.ExecCycles)

	// Decisions in program block order.
	blocks := prof.Program().Blocks()
	for _, b := range blocks {
		if d, ok := decisions[b.ID]; ok {
			m.Decisions = append(m.Decisions, *d)
		}
	}
	return m, nil
}

func totalDataWriteWords(prof *profile.Profile) int {
	total := 0
	for _, bp := range prof.DataBlocks() {
		total += bp.WriteWords
	}
	return total
}

package core

import (
	"fmt"
	"math/rand"
	"testing"

	"ftspm/internal/profile"
	"ftspm/internal/program"
	"ftspm/internal/trace"
)

// randomProfile builds a random program and trace and profiles it —
// fuzz-style input for the MDA invariants below.
func randomProfile(t *testing.T, rng *rand.Rand) *profile.Profile {
	t.Helper()
	p := program.New("fuzz")
	nCode := 1 + rng.Intn(3)
	nData := 1 + rng.Intn(6)
	for i := 0; i < nCode; i++ {
		size := 256 + rng.Intn(40)*512
		p.MustAddBlock(fmt.Sprintf("C%d", i), program.CodeBlock, size)
	}
	for i := 0; i < nData; i++ {
		size := 64 + rng.Intn(30)*256
		p.MustAddBlock(fmt.Sprintf("D%d", i), program.DataBlock, size)
	}
	if rng.Intn(2) == 0 {
		p.MustAddBlock("Stack", program.StackBlock, 128+rng.Intn(8)*64)
	}

	blocks := p.Blocks()
	var evs []trace.Event
	n := 200 + rng.Intn(2000)
	for i := 0; i < n; i++ {
		b := blocks[rng.Intn(len(blocks))]
		space := trace.Data
		op := trace.Read
		if b.Kind == program.CodeBlock {
			space = trace.Code
		} else if rng.Float64() < 0.4 {
			op = trace.Write
		}
		off := rng.Intn(b.Size) &^ 3
		size := 4
		if rng.Intn(4) == 0 {
			size = 4 * (1 + rng.Intn(4))
		}
		if off+size > b.Size {
			size = b.Size - off
			if size < 1 {
				size = 1
			}
		}
		evs = append(evs, trace.AccessEvent(trace.Access{
			Op: op, Space: space, Addr: b.Addr + uint32(off), Size: size,
			Think: rng.Intn(3),
		}))
	}
	prof, err := profile.Run(p, trace.NewSliceStream(evs))
	if err != nil {
		t.Fatal(err)
	}
	return prof
}

func TestMDAInvariantsOnRandomProfiles(t *testing.T) {
	// Property test: for arbitrary profiles, every structure, and every
	// priority, the MDA must terminate with a placement in which
	//   (1) every block has exactly one decision,
	//   (2) the placement agrees with the mapped decisions,
	//   (3) every mapped block fits the region it targets,
	//   (4) only kinds present in the structure are used.
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 40; trial++ {
		prof := randomProfile(t, rng)
		for _, s := range AllStructures() {
			spec := MustSpec(s)
			for _, prio := range []Priority{
				PriorityReliability, PriorityPerformance, PriorityPower, PriorityEndurance,
			} {
				m, err := MapBlocks(prof, spec, DefaultThresholds(), prio)
				if err != nil {
					t.Fatalf("trial %d %v/%v: %v", trial, s, prio, err)
				}
				if len(m.Decisions) != prof.Program().NumBlocks() {
					t.Fatalf("trial %d %v: %d decisions for %d blocks",
						trial, s, len(m.Decisions), prof.Program().NumBlocks())
				}
				mapped := 0
				for _, d := range m.Decisions {
					if !d.Mapped {
						continue
					}
					mapped++
					kind, ok := m.Placement[d.Block.ID]
					if !ok || kind != d.Target {
						t.Fatalf("trial %d %v: decision/placement mismatch for %s",
							trial, s, d.Block.Name)
					}
					var capacity int
					if d.Block.Kind == program.CodeBlock {
						if kind != spec.CodeKind {
							t.Fatalf("trial %d %v: code block in %v", trial, s, kind)
						}
						capacity = spec.ISPMBytes()
					} else {
						capacity = spec.DataRegionBytes(kind)
					}
					if capacity <= 0 {
						t.Fatalf("trial %d %v: block %s mapped to absent region %v",
							trial, s, d.Block.Name, kind)
					}
					if d.Block.Size > capacity {
						t.Fatalf("trial %d %v: %s (%d B) exceeds %v (%d B)",
							trial, s, d.Block.Name, d.Block.Size, kind, capacity)
					}
				}
				if mapped != len(m.Placement) {
					t.Fatalf("trial %d %v: %d mapped decisions vs %d placements",
						trial, s, mapped, len(m.Placement))
				}
			}
		}
	}
}

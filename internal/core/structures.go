// Package core implements the paper's contribution: the FTSPM hybrid SPM
// structures (Table IV) and the multi-priority Mapping Determiner
// Algorithm (Algorithm 1) that distributes program blocks over the
// hybrid regions under performance, energy, and endurance budgets.
package core

import (
	"errors"
	"fmt"

	"ftspm/internal/memtech"
	"ftspm/internal/sim"
	"ftspm/internal/spm"
)

// Structure identifies one of the three evaluated SPM organizations.
type Structure int

// Evaluated structures (Table IV columns).
const (
	// StructFTSPM is the proposed hybrid: 16 KB STT-RAM I-SPM and a
	// data SPM of 12 KB STT-RAM + 2 KB SEC-DED SRAM + 2 KB parity SRAM.
	StructFTSPM Structure = iota + 1
	// StructPureSRAM is the baseline 16+16 KB SEC-DED SRAM SPM.
	StructPureSRAM
	// StructPureSTT is the baseline 16+16 KB STT-RAM SPM.
	StructPureSTT
	// StructDMR is the duplication comparator from the related work
	// [3]: every word stored twice in unprotected SRAM. At the same
	// cell area as the other structures it offers half the data
	// capacity (8+8 KB), near-total detection, and no correction — the
	// "high overheads in terms of power and die size" the paper argues
	// against, quantified (experiments.RelatedWork).
	StructDMR
)

// String implements fmt.Stringer.
func (s Structure) String() string {
	switch s {
	case StructFTSPM:
		return "FTSPM"
	case StructPureSRAM:
		return "pure-SRAM"
	case StructPureSTT:
		return "pure-STT-RAM"
	case StructDMR:
		return "DMR-SRAM"
	default:
		return fmt.Sprintf("Structure(%d)", int(s))
	}
}

// Valid reports whether s is a known structure.
func (s Structure) Valid() bool {
	switch s {
	case StructFTSPM, StructPureSRAM, StructPureSTT, StructDMR:
		return true
	default:
		return false
	}
}

// Structures returns the three paper-evaluated structures in Table IV
// order (the DMR comparator is extra; see AllStructures).
func Structures() []Structure {
	return []Structure{StructPureSRAM, StructPureSTT, StructFTSPM}
}

// AllStructures additionally includes the related-work DMR comparator.
func AllStructures() []Structure {
	return append(Structures(), StructDMR)
}

// Spec is the geometry of one structure.
type Spec struct {
	// Structure names the organization.
	Structure Structure
	// ISPM and DSPM are the region configurations of the two SPMs.
	ISPM, DSPM []spm.RegionConfig
	// ExtraLeakage is the structure-level controller leakage (hybrid
	// mapping controller for FTSPM).
	ExtraLeakage memtech.Milliwatts
	// DataKinds lists the data-SPM region kinds in falling reliability
	// order (the MDA's placement targets).
	DataKinds []spm.RegionKind
	// CodeKind is the I-SPM region kind.
	CodeKind spm.RegionKind
}

// ErrUnknownStructure is returned for invalid Structure values.
var ErrUnknownStructure = errors.New("core: unknown structure")

// NewSpec returns the Table IV geometry of the structure.
func NewSpec(s Structure) (Spec, error) {
	const kb = 1024
	switch s {
	case StructFTSPM:
		return Spec{
			Structure: s,
			ISPM:      []spm.RegionConfig{{Kind: spm.RegionSTT, SizeBytes: 16 * kb}},
			DSPM: []spm.RegionConfig{
				{Kind: spm.RegionSTT, SizeBytes: 12 * kb},
				{Kind: spm.RegionECC, SizeBytes: 2 * kb},
				{Kind: spm.RegionParity, SizeBytes: 2 * kb},
			},
			ExtraLeakage: memtech.HybridControllerLeakage,
			DataKinds:    []spm.RegionKind{spm.RegionSTT, spm.RegionECC, spm.RegionParity},
			CodeKind:     spm.RegionSTT,
		}, nil
	case StructPureSRAM:
		return Spec{
			Structure: s,
			ISPM:      []spm.RegionConfig{{Kind: spm.RegionECC, SizeBytes: 16 * kb}},
			DSPM:      []spm.RegionConfig{{Kind: spm.RegionECC, SizeBytes: 16 * kb}},
			DataKinds: []spm.RegionKind{spm.RegionECC},
			CodeKind:  spm.RegionECC,
		}, nil
	case StructPureSTT:
		return Spec{
			Structure: s,
			ISPM:      []spm.RegionConfig{{Kind: spm.RegionSTT, SizeBytes: 16 * kb}},
			DSPM:      []spm.RegionConfig{{Kind: spm.RegionSTT, SizeBytes: 16 * kb}},
			DataKinds: []spm.RegionKind{spm.RegionSTT},
			CodeKind:  spm.RegionSTT,
		}, nil
	case StructDMR:
		// Iso-area with the SRAM baseline: duplication halves the data
		// capacity of the same cell array.
		return Spec{
			Structure: s,
			ISPM:      []spm.RegionConfig{{Kind: spm.RegionDMR, SizeBytes: 8 * kb}},
			DSPM:      []spm.RegionConfig{{Kind: spm.RegionDMR, SizeBytes: 8 * kb}},
			DataKinds: []spm.RegionKind{spm.RegionDMR},
			CodeKind:  spm.RegionDMR,
		}, nil
	default:
		return Spec{}, fmt.Errorf("%w: %d", ErrUnknownStructure, int(s))
	}
}

// MustSpec is NewSpec for statically-valid structures.
func MustSpec(s Structure) Spec {
	spec, err := NewSpec(s)
	if err != nil {
		panic(err)
	}
	return spec
}

// ISPMBytes returns the instruction-SPM capacity.
func (s Spec) ISPMBytes() int {
	total := 0
	for _, r := range s.ISPM {
		total += r.SizeBytes
	}
	return total
}

// DSPMBytes returns the data-SPM capacity.
func (s Spec) DSPMBytes() int {
	total := 0
	for _, r := range s.DSPM {
		total += r.SizeBytes
	}
	return total
}

// TotalBytes returns the full SPM surface (the AVF occupancy
// denominator).
func (s Spec) TotalBytes() int { return s.ISPMBytes() + s.DSPMBytes() }

// DataRegionBytes returns the capacity of the first data region of the
// given kind, 0 if absent.
func (s Spec) DataRegionBytes(kind spm.RegionKind) int {
	for _, r := range s.DSPM {
		if r.Kind == kind {
			return r.SizeBytes
		}
	}
	return 0
}

// SimConfig assembles the sim.Config for this structure with the given
// placement, on the default Table IV platform (8 KB L1s, default DRAM).
func (s Spec) SimConfig(place spm.Placement) sim.Config {
	cfg := sim.DefaultPlatform()
	cfg.ISPM = s.ISPM
	cfg.DSPM = s.DSPM
	cfg.ExtraLeakage = s.ExtraLeakage
	cfg.Placement = place
	return cfg
}

// Leakage returns the structure's total SPM static power (both SPMs plus
// controller overhead), the Fig. 6 per-structure constant.
func (s Spec) Leakage() (memtech.Milliwatts, error) {
	total := s.ExtraLeakage
	for _, rc := range append(append([]spm.RegionConfig{}, s.ISPM...), s.DSPM...) {
		bank, err := memtech.EstimateBank(rc.Kind.Technology(), rc.Kind.Protection(), rc.SizeBytes)
		if err != nil {
			return 0, err
		}
		total += bank.Leakage
	}
	return total, nil
}

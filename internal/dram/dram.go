// Package dram models the off-chip memory behind the SPM and the caches:
// fixed first-word latency plus a per-word burst rate, with per-word
// dynamic energy far above any on-chip structure. It serves cache fills
// and write-backs and the DMA block transfers of the SPM on-line mapping
// phase.
package dram

import (
	"errors"
	"fmt"

	"ftspm/internal/memtech"
)

// Config parameterizes the off-chip memory.
type Config struct {
	// FirstWordLatency is the cycles to the first word of a burst.
	FirstWordLatency memtech.Cycles
	// PerWordLatency is the additional cycles per burst word.
	PerWordLatency memtech.Cycles
	// EnergyPerWord is the dynamic energy per transferred word.
	EnergyPerWord memtech.Picojoules
}

// Default returns an embedded-class LPDDR-style configuration: 60-cycle
// access, 2 cycles per additional burst word, ~1.2 nJ per 32-bit word.
func Default() Config {
	return Config{
		FirstWordLatency: 60,
		PerWordLatency:   2,
		EnergyPerWord:    1200,
	}
}

// ErrBadConfig rejects non-positive timing/energy parameters.
var ErrBadConfig = errors.New("dram: config values must be positive")

// Stats accumulates off-chip traffic.
type Stats struct {
	Reads, Writes    uint64
	WordsRead        uint64
	WordsWritten     uint64
	Cycles           memtech.Cycles
	EnergyPicojoules memtech.Picojoules
}

// Memory is the off-chip device.
type Memory struct {
	cfg   Config
	stats Stats
}

// New validates the configuration and returns a Memory.
func New(cfg Config) (*Memory, error) {
	if cfg.FirstWordLatency <= 0 || cfg.PerWordLatency <= 0 || cfg.EnergyPerWord <= 0 {
		return nil, fmt.Errorf("%w: %+v", ErrBadConfig, cfg)
	}
	return &Memory{cfg: cfg}, nil
}

// Config returns the device parameters.
func (m *Memory) Config() Config { return m.cfg }

// Stats returns a copy of the traffic counters.
func (m *Memory) Stats() Stats { return m.stats }

// Burst transfers the given number of words and returns its cost. A
// zero-word burst is free.
func (m *Memory) Burst(words int, write bool) (memtech.Cycles, memtech.Picojoules) {
	if words <= 0 {
		return 0, 0
	}
	cycles := m.cfg.FirstWordLatency + m.cfg.PerWordLatency*memtech.Cycles(words-1)
	energy := m.cfg.EnergyPerWord * memtech.Picojoules(words)
	if write {
		m.stats.Writes++
		m.stats.WordsWritten += uint64(words)
	} else {
		m.stats.Reads++
		m.stats.WordsRead += uint64(words)
	}
	m.stats.Cycles += cycles
	m.stats.EnergyPicojoules += energy
	return cycles, energy
}

// Value returns the synthetic content of the off-chip image at a word
// address. The simulator does not track real program data (traces carry
// no values), so block DMA-ins fill SPM storage with this deterministic
// address-derived pattern; fault-injection campaigns then have concrete
// bits to corrupt.
func Value(wordAddr uint32) uint32 {
	// Knuth multiplicative hash: well-mixed, deterministic, cheap.
	return wordAddr * 2654435761
}

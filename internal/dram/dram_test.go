package dram

import (
	"errors"
	"testing"
)

func TestNewRejectsBadConfig(t *testing.T) {
	bad := []Config{
		{},
		{FirstWordLatency: 60, PerWordLatency: 0, EnergyPerWord: 1},
		{FirstWordLatency: 0, PerWordLatency: 2, EnergyPerWord: 1},
		{FirstWordLatency: 60, PerWordLatency: 2, EnergyPerWord: 0},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); !errors.Is(err, ErrBadConfig) {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestBurstCosts(t *testing.T) {
	m, err := New(Default())
	if err != nil {
		t.Fatal(err)
	}
	cyc, e := m.Burst(1, false)
	if cyc != 60 || e != 1200 {
		t.Errorf("1-word burst = %d cycles / %v pJ", cyc, e)
	}
	cyc, e = m.Burst(8, true)
	if cyc != 60+7*2 || e != 8*1200 {
		t.Errorf("8-word burst = %d cycles / %v pJ", cyc, e)
	}
	cyc, e = m.Burst(0, false)
	if cyc != 0 || e != 0 {
		t.Error("empty burst charged")
	}
	st := m.Stats()
	if st.Reads != 1 || st.Writes != 1 || st.WordsRead != 1 || st.WordsWritten != 8 {
		t.Errorf("stats = %+v", st)
	}
	if st.Cycles != 60+74 || st.EnergyPicojoules != 9*1200 {
		t.Errorf("accumulation wrong: %+v", st)
	}
	if m.Config().FirstWordLatency != 60 {
		t.Error("Config accessor wrong")
	}
}

func TestValueDeterministicAndMixed(t *testing.T) {
	if Value(1) != Value(1) {
		t.Error("Value not deterministic")
	}
	seen := map[uint32]bool{}
	for i := uint32(0); i < 1000; i++ {
		seen[Value(i)] = true
	}
	if len(seen) < 990 {
		t.Errorf("Value poorly mixed: %d distinct of 1000", len(seen))
	}
}

// Package ecc implements the error-coding substrate of FTSPM: a per-word
// parity code and extended-Hamming SEC-DED (Single Error Correction,
// Double Error Detection) codes, including the Hamming(39,32) and
// Hamming(72,64) organizations. These are real bit-level codecs — encode,
// syndrome decode, correction — so fault-injection campaigns can exercise
// the same detection/correction behaviour the paper's protection circuits
// provide, including the miscorrection of ≥3-bit upsets that drives the
// paper's SDC probabilities (equations (4)–(7)).
package ecc

import (
	"fmt"
	"math/bits"
)

// Bits is a fixed-capacity little bit vector, wide enough for the largest
// codeword in the package (Hamming(72,64) = 72 bits).
type Bits struct {
	w [2]uint64
}

// MaxBits is the capacity of a Bits value.
const MaxBits = 128

// BitsFromUint64 returns a Bits holding v in its low 64 positions.
func BitsFromUint64(v uint64) Bits { return Bits{w: [2]uint64{v, 0}} }

// Uint64 returns the low 64 bits.
func (b Bits) Uint64() uint64 { return b.w[0] }

// Get reports whether bit i is set.
func (b Bits) Get(i int) bool {
	return b.w[i>>6]&(1<<(uint(i)&63)) != 0
}

// Set returns b with bit i set to v.
func (b Bits) Set(i int, v bool) Bits {
	if v {
		b.w[i>>6] |= 1 << (uint(i) & 63)
	} else {
		b.w[i>>6] &^= 1 << (uint(i) & 63)
	}
	return b
}

// Flip returns b with bit i inverted.
func (b Bits) Flip(i int) Bits {
	b.w[i>>6] ^= 1 << (uint(i) & 63)
	return b
}

// Xor returns the bitwise XOR of b and o.
func (b Bits) Xor(o Bits) Bits {
	b.w[0] ^= o.w[0]
	b.w[1] ^= o.w[1]
	return b
}

// And returns the bitwise AND of b and o.
func (b Bits) And(o Bits) Bits {
	b.w[0] &= o.w[0]
	b.w[1] &= o.w[1]
	return b
}

// AndNot returns b with every bit set in o cleared.
func (b Bits) AndNot(o Bits) Bits {
	b.w[0] &^= o.w[0]
	b.w[1] &^= o.w[1]
	return b
}

// Or returns the bitwise OR of b and o.
func (b Bits) Or(o Bits) Bits {
	b.w[0] |= o.w[0]
	b.w[1] |= o.w[1]
	return b
}

// OnesCount returns the number of set bits.
func (b Bits) OnesCount() int {
	return bits.OnesCount64(b.w[0]) + bits.OnesCount64(b.w[1])
}

// IsZero reports whether no bit is set.
func (b Bits) IsZero() bool { return b.w[0] == 0 && b.w[1] == 0 }

// String implements fmt.Stringer (hex, high word first).
func (b Bits) String() string { return fmt.Sprintf("%016x%016x", b.w[1], b.w[0]) }

package ecc

import (
	"errors"
	"fmt"
	"math/bits"
)

// Status classifies the outcome of decoding one codeword, matching the
// error taxonomy of Section IV: DRE (detected & recovered), DUE (detected
// unrecoverable), and — when a multi-bit upset aliases to a clean or
// correctable syndrome — silent data corruption, which a decoder cannot
// observe and therefore reports as Clean or Corrected with wrong data.
type Status int

// Decode outcomes.
const (
	// Clean: the codeword is consistent; no error observed.
	Clean Status = iota + 1
	// Corrected: a single-bit error was detected and repaired (DRE).
	Corrected
	// Detected: an uncorrectable error was detected (DUE).
	Detected
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case Clean:
		return "clean"
	case Corrected:
		return "corrected"
	case Detected:
		return "detected"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Codec encodes fixed-width data words into codewords and decodes
// possibly-corrupted codewords back.
type Codec interface {
	// Name identifies the code, e.g. "parity(33,32)" or "hamming(39,32)".
	Name() string
	// DataBits is the number of payload bits per word.
	DataBits() int
	// CodeBits is the total stored bits per word, payload included.
	CodeBits() int
	// Encode maps a data word (low DataBits of the argument) to its
	// codeword.
	Encode(data Bits) Bits
	// Decode maps a codeword back to its data word, correcting what the
	// code can correct and classifying the outcome. The returned data is
	// meaningful for Clean and Corrected; for Detected it is the
	// best-effort extraction of the payload bits.
	Decode(code Bits) (Bits, Status)
}

// ErrBadDataBits is returned for unsupported payload widths.
var ErrBadDataBits = errors.New("ecc: unsupported number of data bits")

// lowMask returns a mask of the low k bits (1 ≤ k ≤ 64).
func lowMask(k int) uint64 {
	if k >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(k)) - 1
}

// ParityCodec is a single even-parity bit over k data bits: detects any
// odd number of bit flips, corrects nothing. This is protection level (2)
// of Table IV.
type ParityCodec struct {
	k    int
	mask uint64 // low k bits
}

var _ Codec = (*ParityCodec)(nil)

// NewParity returns a parity codec over k data bits (1 ≤ k ≤ 64).
func NewParity(k int) (*ParityCodec, error) {
	if k < 1 || k > 64 {
		return nil, fmt.Errorf("%w: %d", ErrBadDataBits, k)
	}
	return &ParityCodec{k: k, mask: lowMask(k)}, nil
}

// Name implements Codec.
func (c *ParityCodec) Name() string { return fmt.Sprintf("parity(%d,%d)", c.k+1, c.k) }

// DataBits implements Codec.
func (c *ParityCodec) DataBits() int { return c.k }

// CodeBits implements Codec.
func (c *ParityCodec) CodeBits() int { return c.k + 1 }

// Encode implements Codec: the parity bit is stored at position k.
func (c *ParityCodec) Encode(data Bits) Bits {
	d := data.w[0] & c.mask
	code := Bits{w: [2]uint64{d, 0}}
	if bits.OnesCount64(d)%2 == 1 {
		code = code.Set(c.k, true)
	}
	return code
}

// Decode implements Codec.
func (c *ParityCodec) Decode(code Bits) (Bits, Status) {
	data := Bits{w: [2]uint64{code.w[0] & c.mask, 0}}
	if code.OnesCount()%2 != 0 {
		return data, Detected
	}
	return data, Clean
}

// encodeBitwise is the pre-table reference implementation, kept as the
// oracle for golden-vector and fuzz cross-checks.
func (c *ParityCodec) encodeBitwise(data Bits) Bits {
	code := c.maskDataBitwise(data)
	return code.Set(c.k, code.OnesCount()%2 == 1)
}

// decodeBitwise is the pre-table reference implementation.
func (c *ParityCodec) decodeBitwise(code Bits) (Bits, Status) {
	data := c.maskDataBitwise(code)
	if code.OnesCount()%2 != 0 {
		return data, Detected
	}
	return data, Clean
}

func (c *ParityCodec) maskDataBitwise(b Bits) Bits {
	var out Bits
	for i := 0; i < c.k; i++ {
		if b.Get(i) {
			out = out.Set(i, true)
		}
	}
	return out
}

// HammingCodec is an extended Hamming SEC-DED code over k data bits:
// r check bits at power-of-two positions plus one overall parity bit.
// k=32 yields the (39,32) organization, k=64 the (72,64) organization
// referenced by the paper's SEC-DED regions (Table IV protection (3)).
//
// Encode and Decode are table-driven: the code is linear, so a codeword
// is the XOR of per-data-bit parity masks (encMask), and decoding walks
// only the set bits of the stored word, accumulating the syndrome and
// the extracted payload in one pass. A syndrome→bit-position table
// (corr) replaces the positional arithmetic of the correction step. The
// original per-bit loops survive as encodeBitwise/decodeBitwise, the
// oracle the golden-vector tests and the fuzz cross-check compare
// against.
type HammingCodec struct {
	k       int   // data bits
	r       int   // Hamming check bits
	n       int   // inner code length = k + r (positions 1..n)
	dataPos []int // 1-based inner positions holding data bits, len k

	dataMask uint64     // low k bits of the payload
	codeMask [2]uint64  // bits 0..n of the stored word (valid codeword positions)
	encMask  [64]Bits   // per-data-bit codeword contribution, overall parity excluded
	posData  [128]int8  // codeword position → payload bit index, -1 = check/parity position
	corr     [128]int16 // syndrome → codeword position to flip, -1 = outside the code (≥3 flips)
}

var _ Codec = (*HammingCodec)(nil)

// NewHamming returns an extended Hamming SEC-DED codec over k data bits.
// Supported widths are 8, 16, 32, and 64.
func NewHamming(k int) (*HammingCodec, error) {
	switch k {
	case 8, 16, 32, 64:
	default:
		return nil, fmt.Errorf("%w: %d", ErrBadDataBits, k)
	}
	r := 0
	for (1 << r) < k+r+1 {
		r++
	}
	c := &HammingCodec{k: k, r: r, n: k + r}
	for pos := 1; pos <= c.n; pos++ {
		if pos&(pos-1) != 0 { // not a power of two → data position
			c.dataPos = append(c.dataPos, pos)
		}
	}
	c.buildTables()
	return c, nil
}

// buildTables precomputes the encode masks and decode lookup tables from
// the bitwise reference path, which guarantees the two stay codeword-
// compatible by construction.
func (c *HammingCodec) buildTables() {
	c.dataMask = lowMask(c.k)
	full := Bits{}
	for pos := 0; pos <= c.n; pos++ {
		full = full.Set(pos, true)
	}
	c.codeMask = full.w
	for i := range c.posData {
		c.posData[i] = -1
	}
	for i, pos := range c.dataPos {
		c.posData[pos] = int8(i)
	}
	for i := 0; i < c.k; i++ {
		// The code is linear: the codeword of e_i (data position plus the
		// check bits covering it) is the XOR contribution of data bit i.
		// The overall parity bit is not linear per mask; Encode recomputes
		// it from the popcount of the assembled word.
		c.encMask[i] = c.encodeBitwise(BitsFromUint64(1<<uint(i))).Set(0, false)
	}
	for s := range c.corr {
		if s >= 1 && s <= c.n {
			c.corr[s] = int16(s) // the syndrome IS the flipped position
		} else {
			c.corr[s] = -1
		}
	}
}

// MustHamming is NewHamming for statically-valid widths; it panics on
// error and exists for package-level configuration in this module.
func MustHamming(k int) *HammingCodec {
	c, err := NewHamming(k)
	if err != nil {
		panic(err)
	}
	return c
}

// Name implements Codec.
func (c *HammingCodec) Name() string { return fmt.Sprintf("hamming(%d,%d)", c.n+1, c.k) }

// DataBits implements Codec.
func (c *HammingCodec) DataBits() int { return c.k }

// CodeBits implements Codec: inner code plus the overall parity bit.
func (c *HammingCodec) CodeBits() int { return c.n + 1 }

// Codeword layout in the returned Bits: bit 0 holds the overall parity,
// bits 1..n hold the inner Hamming codeword at their natural positions.

// Encode implements Codec: XOR of the parity masks of the set data bits,
// then the overall parity from one popcount.
func (c *HammingCodec) Encode(data Bits) Bits {
	var code Bits
	for v := data.w[0] & c.dataMask; v != 0; v &= v - 1 {
		m := &c.encMask[bits.TrailingZeros64(v)]
		code.w[0] ^= m.w[0]
		code.w[1] ^= m.w[1]
	}
	if code.OnesCount()%2 == 1 {
		code.w[0] |= 1
	}
	return code
}

// Decode implements Codec: one pass over the set bits of the stored word
// accumulates the syndrome and the extracted payload; the correction step
// is a table lookup.
func (c *HammingCodec) Decode(code Bits) (Bits, Status) {
	syndrome := 0
	var data uint64
	for v := code.w[0] & c.codeMask[0]; v != 0; v &= v - 1 {
		p := bits.TrailingZeros64(v)
		syndrome ^= p // position 0 (overall parity) contributes 0
		if d := c.posData[p]; d >= 0 {
			data |= 1 << uint(d)
		}
	}
	for v := code.w[1] & c.codeMask[1]; v != 0; v &= v - 1 {
		p := 64 + bits.TrailingZeros64(v)
		syndrome ^= p
		if d := c.posData[p]; d >= 0 {
			data |= 1 << uint(d)
		}
	}
	overall := code.OnesCount()%2 != 0 // parity of ALL stored bits

	switch {
	case syndrome == 0 && !overall:
		return BitsFromUint64(data), Clean
	case overall:
		// Odd number of flips → assume single and correct it. A
		// syndrome of 0 means the overall parity bit itself flipped.
		if syndrome == 0 {
			return BitsFromUint64(data), Corrected
		}
		if pos := c.corr[syndrome]; pos >= 0 {
			// Flipping a check position leaves the payload untouched.
			if d := c.posData[pos]; d >= 0 {
				data ^= 1 << uint(d)
			}
			return BitsFromUint64(data), Corrected
		}
		// Syndrome points outside the code: ≥3 flips detected.
		return BitsFromUint64(data), Detected
	default:
		// Even number of flips with a nonzero syndrome → DUE.
		return BitsFromUint64(data), Detected
	}
}

// encodeBitwise is the pre-table reference implementation: place data
// bits, then compute each check bit by a parity loop over the positions
// it covers. Kept as the oracle for golden-vector and fuzz cross-checks
// (and to build the tables).
func (c *HammingCodec) encodeBitwise(data Bits) Bits {
	var code Bits
	for i, pos := range c.dataPos {
		if data.Get(i) {
			code = code.Set(pos, true)
		}
	}
	// Check bit at position 2^j makes the parity over {pos: pos has bit
	// j set} even.
	for j := 0; j < c.r; j++ {
		parity := false
		for pos := 1; pos <= c.n; pos++ {
			if pos&(1<<j) != 0 && code.Get(pos) {
				parity = !parity
			}
		}
		if parity {
			code = code.Set(1<<j, true)
		}
	}
	// Overall parity over positions 1..n stored at position 0.
	if code.OnesCount()%2 == 1 {
		code = code.Set(0, true)
	}
	return code
}

// decodeBitwise is the pre-table reference implementation.
func (c *HammingCodec) decodeBitwise(code Bits) (Bits, Status) {
	syndrome := 0
	for pos := 1; pos <= c.n; pos++ {
		if code.Get(pos) {
			syndrome ^= pos
		}
	}
	overall := code.OnesCount()%2 != 0

	switch {
	case syndrome == 0 && !overall:
		return c.extract(code), Clean
	case overall:
		if syndrome == 0 {
			return c.extract(code), Corrected
		}
		if syndrome <= c.n {
			return c.extract(code.Flip(syndrome)), Corrected
		}
		return c.extract(code), Detected
	default:
		return c.extract(code), Detected
	}
}

func (c *HammingCodec) extract(code Bits) Bits {
	var data Bits
	for i, pos := range c.dataPos {
		if code.Get(pos) {
			data = data.Set(i, true)
		}
	}
	return data
}

// RawCodec stores data words unmodified: protection level (1) of Table IV
// (unprotected SRAM) and the representation used for STT-RAM regions,
// whose cells are inherently immune (level (4)).
type RawCodec struct {
	k int
}

var _ Codec = (*RawCodec)(nil)

// NewRaw returns a pass-through codec over k data bits (1 ≤ k ≤ 64).
func NewRaw(k int) (*RawCodec, error) {
	if k < 1 || k > 64 {
		return nil, fmt.Errorf("%w: %d", ErrBadDataBits, k)
	}
	return &RawCodec{k: k}, nil
}

// Name implements Codec.
func (c *RawCodec) Name() string { return fmt.Sprintf("raw(%d)", c.k) }

// DataBits implements Codec.
func (c *RawCodec) DataBits() int { return c.k }

// CodeBits implements Codec.
func (c *RawCodec) CodeBits() int { return c.k }

// Encode implements Codec.
func (c *RawCodec) Encode(data Bits) Bits { return data }

// Decode implements Codec: a raw word can never observe an error.
func (c *RawCodec) Decode(code Bits) (Bits, Status) { return code, Clean }

// DMRCodec stores every data word twice (dual modular redundancy) — the
// duplication-based SPM protection of the paper's related work [3].
// Reads compare the copies: a mismatch is detected but not correctable
// (with two copies there is no majority), so duplication converts
// almost every upset into a DUE at the cost of doubling the storage and
// the write traffic. Silent corruption requires the same flips in both
// copies, which independent strikes essentially never produce.
type DMRCodec struct {
	k    int
	mask uint64 // low k bits
}

var _ Codec = (*DMRCodec)(nil)

// NewDMR returns a duplication codec over k data bits (1 ≤ k ≤ 32: the
// codeword holds two copies).
func NewDMR(k int) (*DMRCodec, error) {
	if k < 1 || k > 32 {
		return nil, fmt.Errorf("%w: %d", ErrBadDataBits, k)
	}
	return &DMRCodec{k: k, mask: lowMask(k)}, nil
}

// Name implements Codec.
func (c *DMRCodec) Name() string { return fmt.Sprintf("dmr(%d,%d)", 2*c.k, c.k) }

// DataBits implements Codec.
func (c *DMRCodec) DataBits() int { return c.k }

// CodeBits implements Codec.
func (c *DMRCodec) CodeBits() int { return 2 * c.k }

// Encode implements Codec: copy A in bits [0,k), copy B in [k,2k).
func (c *DMRCodec) Encode(data Bits) Bits {
	d := data.w[0] & c.mask
	return Bits{w: [2]uint64{d | d<<uint(c.k), 0}}
}

// Decode implements Codec: mismatching copies are a detected,
// unrecoverable error; the first copy is returned as the best effort.
func (c *DMRCodec) Decode(code Bits) (Bits, Status) {
	a := code.w[0] & c.mask
	b := (code.w[0] >> uint(c.k)) & c.mask
	if a != b {
		return BitsFromUint64(a), Detected
	}
	return BitsFromUint64(a), Clean
}

// encodeBitwise is the pre-table reference implementation.
func (c *DMRCodec) encodeBitwise(data Bits) Bits {
	var code Bits
	for i := 0; i < c.k; i++ {
		if data.Get(i) {
			code = code.Set(i, true).Set(i+c.k, true)
		}
	}
	return code
}

// decodeBitwise is the pre-table reference implementation.
func (c *DMRCodec) decodeBitwise(code Bits) (Bits, Status) {
	var a, b Bits
	for i := 0; i < c.k; i++ {
		if code.Get(i) {
			a = a.Set(i, true)
		}
		if code.Get(i + c.k) {
			b = b.Set(i, true)
		}
	}
	if a != b {
		return a, Detected
	}
	return a, Clean
}

package ecc

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBitsBasics(t *testing.T) {
	var b Bits
	if !b.IsZero() {
		t.Error("zero Bits not zero")
	}
	b = b.Set(0, true).Set(63, true).Set(71, true)
	if !b.Get(0) || !b.Get(63) || !b.Get(71) || b.Get(1) {
		t.Error("Get/Set mismatch")
	}
	if b.OnesCount() != 3 {
		t.Errorf("OnesCount = %d, want 3", b.OnesCount())
	}
	b = b.Flip(71)
	if b.Get(71) || b.OnesCount() != 2 {
		t.Error("Flip failed")
	}
	if got := BitsFromUint64(0xdeadbeef).Uint64(); got != 0xdeadbeef {
		t.Errorf("Uint64 roundtrip = %#x", got)
	}
	x := BitsFromUint64(0xf0)
	y := BitsFromUint64(0x0f)
	if x.Xor(y).Uint64() != 0xff {
		t.Error("Xor failed")
	}
	if BitsFromUint64(1).String() == "" {
		t.Error("empty String")
	}
	if b = b.Set(63, false); b.Get(63) {
		t.Error("Set false failed")
	}
}

func codecs(t *testing.T) []Codec {
	t.Helper()
	p32, err := NewParity(32)
	if err != nil {
		t.Fatal(err)
	}
	h32, err := NewHamming(32)
	if err != nil {
		t.Fatal(err)
	}
	h64, err := NewHamming(64)
	if err != nil {
		t.Fatal(err)
	}
	h8, err := NewHamming(8)
	if err != nil {
		t.Fatal(err)
	}
	h16, err := NewHamming(16)
	if err != nil {
		t.Fatal(err)
	}
	r32, err := NewRaw(32)
	if err != nil {
		t.Fatal(err)
	}
	return []Codec{p32, h8, h16, h32, h64, r32}
}

func maskFor(c Codec) uint64 {
	if c.DataBits() == 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(c.DataBits())) - 1
}

func TestCodecGeometry(t *testing.T) {
	tests := []struct {
		name     string
		mk       func() (Codec, error)
		data     int
		code     int
		wantName string
	}{
		{"parity32", func() (Codec, error) { return NewParity(32) }, 32, 33, "parity(33,32)"},
		{"hamming32", func() (Codec, error) { return NewHamming(32) }, 32, 39, "hamming(39,32)"},
		{"hamming64", func() (Codec, error) { return NewHamming(64) }, 64, 72, "hamming(72,64)"},
		{"hamming8", func() (Codec, error) { return NewHamming(8) }, 8, 13, "hamming(13,8)"},
		{"hamming16", func() (Codec, error) { return NewHamming(16) }, 16, 22, "hamming(22,16)"},
		{"raw32", func() (Codec, error) { return NewRaw(32) }, 32, 32, "raw(32)"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c, err := tt.mk()
			if err != nil {
				t.Fatal(err)
			}
			if c.DataBits() != tt.data || c.CodeBits() != tt.code {
				t.Errorf("(%d,%d), want (%d,%d)", c.CodeBits(), c.DataBits(), tt.code, tt.data)
			}
			if c.Name() != tt.wantName {
				t.Errorf("Name = %q, want %q", c.Name(), tt.wantName)
			}
		})
	}
}

func TestCodecConstructorsReject(t *testing.T) {
	if _, err := NewParity(0); !errors.Is(err, ErrBadDataBits) {
		t.Error("NewParity(0) accepted")
	}
	if _, err := NewParity(65); !errors.Is(err, ErrBadDataBits) {
		t.Error("NewParity(65) accepted")
	}
	if _, err := NewHamming(12); !errors.Is(err, ErrBadDataBits) {
		t.Error("NewHamming(12) accepted")
	}
	if _, err := NewRaw(0); !errors.Is(err, ErrBadDataBits) {
		t.Error("NewRaw(0) accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustHamming(7) did not panic")
		}
	}()
	MustHamming(7)
}

func TestRoundTripClean(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, c := range codecs(t) {
		mask := maskFor(c)
		for i := 0; i < 500; i++ {
			want := rng.Uint64() & mask
			got, st := c.Decode(c.Encode(BitsFromUint64(want)))
			if st != Clean {
				t.Fatalf("%s: clean codeword decoded as %v", c.Name(), st)
			}
			if got.Uint64() != want {
				t.Fatalf("%s: roundtrip %#x -> %#x", c.Name(), want, got.Uint64())
			}
		}
	}
}

func TestHammingCorrectsEverySingleBitError(t *testing.T) {
	// Exhaustive over all single-bit positions for every supported width,
	// with many random payloads: the defining SEC property.
	rng := rand.New(rand.NewSource(2))
	for _, k := range []int{8, 16, 32, 64} {
		c := MustHamming(k)
		mask := maskFor(c)
		for trial := 0; trial < 50; trial++ {
			data := rng.Uint64() & mask
			code := c.Encode(BitsFromUint64(data))
			for pos := 0; pos < c.CodeBits(); pos++ {
				got, st := c.Decode(code.Flip(pos))
				if st != Corrected {
					t.Fatalf("hamming(%d): flip at %d -> %v, want Corrected", k, pos, st)
				}
				if got.Uint64() != data {
					t.Fatalf("hamming(%d): flip at %d miscorrected %#x -> %#x",
						k, pos, data, got.Uint64())
				}
			}
		}
	}
}

func TestHammingDetectsEveryDoubleBitError(t *testing.T) {
	// Exhaustive over all flip pairs for k=8 and k=16; sampled for wider
	// words: the defining DED property.
	rng := rand.New(rand.NewSource(3))
	for _, k := range []int{8, 16} {
		c := MustHamming(k)
		mask := maskFor(c)
		for trial := 0; trial < 20; trial++ {
			data := rng.Uint64() & mask
			code := c.Encode(BitsFromUint64(data))
			for i := 0; i < c.CodeBits(); i++ {
				for j := i + 1; j < c.CodeBits(); j++ {
					if _, st := c.Decode(code.Flip(i).Flip(j)); st != Detected {
						t.Fatalf("hamming(%d): flips at %d,%d -> %v, want Detected", k, i, j, st)
					}
				}
			}
		}
	}
	for _, k := range []int{32, 64} {
		c := MustHamming(k)
		mask := maskFor(c)
		for trial := 0; trial < 2000; trial++ {
			data := rng.Uint64() & mask
			code := c.Encode(BitsFromUint64(data))
			i := rng.Intn(c.CodeBits())
			j := rng.Intn(c.CodeBits())
			if i == j {
				continue
			}
			if _, st := c.Decode(code.Flip(i).Flip(j)); st != Detected {
				t.Fatalf("hamming(%d): flips at %d,%d -> %v, want Detected", k, i, j, st)
			}
		}
	}
}

func TestHammingTripleBitBehaviour(t *testing.T) {
	// With 3 flips an extended Hamming code either miscorrects (reports
	// Corrected with wrong data — an SDC, the basis of equation (7)) or
	// detects. It must never report Clean, and a meaningful fraction must
	// miscorrect.
	c := MustHamming(32)
	rng := rand.New(rand.NewSource(4))
	var miscorrected, detected int
	const trials = 5000
	for trial := 0; trial < trials; trial++ {
		data := rng.Uint64() & maskFor(c)
		code := c.Encode(BitsFromUint64(data))
		pos := rng.Perm(c.CodeBits())[:3]
		corrupt := code.Flip(pos[0]).Flip(pos[1]).Flip(pos[2])
		got, st := c.Decode(corrupt)
		switch st {
		case Clean:
			t.Fatalf("3 flips reported Clean")
		case Corrected:
			if got.Uint64() == data {
				t.Fatalf("3 flips fully corrected — impossible for SEC-DED")
			}
			miscorrected++
		case Detected:
			detected++
		}
	}
	if miscorrected == 0 || detected == 0 {
		t.Errorf("3-flip outcomes: %d miscorrected / %d detected; want both nonzero",
			miscorrected, detected)
	}
}

func TestParityDetectsOddFlips(t *testing.T) {
	p, err := NewParity(32)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 2000; trial++ {
		data := rng.Uint64() & maskFor(p)
		code := p.Encode(BitsFromUint64(data))
		nflips := 1 + rng.Intn(5)
		pos := rng.Perm(p.CodeBits())[:nflips]
		corrupt := code
		for _, i := range pos {
			corrupt = corrupt.Flip(i)
		}
		_, st := p.Decode(corrupt)
		if nflips%2 == 1 && st != Detected {
			t.Fatalf("parity: %d flips -> %v, want Detected", nflips, st)
		}
		if nflips%2 == 0 && st != Clean {
			t.Fatalf("parity: %d flips -> %v, want Clean (undetected SDC)", nflips, st)
		}
	}
}

func TestRawNeverObservesErrors(t *testing.T) {
	r, err := NewRaw(32)
	if err != nil {
		t.Fatal(err)
	}
	code := r.Encode(BitsFromUint64(0xabcd))
	got, st := r.Decode(code.Flip(3))
	if st != Clean {
		t.Errorf("raw codec status = %v, want Clean", st)
	}
	if got.Uint64() == 0xabcd {
		t.Error("raw codec silently repaired a flip")
	}
}

func TestEncodeDecodeQuickProperty(t *testing.T) {
	// Property: for every codec and any payload, Decode∘Encode is the
	// identity and reports Clean.
	for _, c := range codecs(t) {
		c := c
		f := func(v uint64) bool {
			want := v & maskFor(c)
			got, st := c.Decode(c.Encode(BitsFromUint64(want)))
			return st == Clean && got.Uint64() == want
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
			t.Errorf("%s: %v", c.Name(), err)
		}
	}
}

func TestStatusString(t *testing.T) {
	if Clean.String() != "clean" || Corrected.String() != "corrected" || Detected.String() != "detected" {
		t.Error("status stringer wrong")
	}
	if Status(9).String() != "Status(9)" {
		t.Error("unknown status stringer wrong")
	}
}

func TestDMRGeometryAndRoundTrip(t *testing.T) {
	d, err := NewDMR(32)
	if err != nil {
		t.Fatal(err)
	}
	if d.DataBits() != 32 || d.CodeBits() != 64 || d.Name() != "dmr(64,32)" {
		t.Errorf("geometry: %s (%d,%d)", d.Name(), d.CodeBits(), d.DataBits())
	}
	rng := rand.New(rand.NewSource(41))
	for i := 0; i < 300; i++ {
		want := uint64(rng.Uint32())
		got, st := d.Decode(d.Encode(BitsFromUint64(want)))
		if st != Clean || got.Uint64() != want {
			t.Fatalf("roundtrip %#x -> %#x (%v)", want, got.Uint64(), st)
		}
	}
	if _, err := NewDMR(0); !errors.Is(err, ErrBadDataBits) {
		t.Error("NewDMR(0) accepted")
	}
	if _, err := NewDMR(33); !errors.Is(err, ErrBadDataBits) {
		t.Error("NewDMR(33) accepted")
	}
}

func TestDMRDetectsAnyAsymmetricCorruption(t *testing.T) {
	// Any flip set that does not hit both copies identically is
	// detected; identical flips in both copies are the (vanishingly
	// rare) silent case.
	d, err := NewDMR(32)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 1000; i++ {
		data := uint64(rng.Uint32())
		code := d.Encode(BitsFromUint64(data))
		n := 1 + rng.Intn(5)
		corrupt := code
		for _, pos := range rng.Perm(64)[:n] {
			corrupt = corrupt.Flip(pos)
		}
		// Determine whether the flips happen to be copy-symmetric.
		var a, b uint32
		for j := 0; j < 32; j++ {
			if corrupt.Get(j) {
				a |= 1 << j
			}
			if corrupt.Get(j + 32) {
				b |= 1 << j
			}
		}
		_, st := d.Decode(corrupt)
		if a == b && st != Clean {
			t.Fatalf("symmetric corruption detected?")
		}
		if a != b && st != Detected {
			t.Fatalf("asymmetric corruption (%d flips) -> %v, want Detected", n, st)
		}
	}
}

func TestDMRSymmetricFlipsAreSilent(t *testing.T) {
	// The one weakness: the same bit flipped in both copies is
	// undetectable silent corruption.
	d, err := NewDMR(32)
	if err != nil {
		t.Fatal(err)
	}
	code := d.Encode(BitsFromUint64(0x1234))
	got, st := d.Decode(code.Flip(5).Flip(5 + 32))
	if st != Clean {
		t.Errorf("symmetric double flip -> %v, want Clean (silent)", st)
	}
	if got.Uint64() == 0x1234 {
		t.Error("data should be silently wrong")
	}
}

func FuzzHammingDecodeNeverPanics(f *testing.F) {
	f.Add(uint64(0), uint64(0))
	f.Add(uint64(0xdeadbeefcafef00d), uint64(0x1))
	f.Fuzz(func(t *testing.T, lo, hi uint64) {
		// Any 72-bit pattern must decode without panicking and with a
		// valid status.
		c := MustHamming(64)
		code := BitsFromUint64(lo)
		for i := 0; i < 8; i++ {
			if hi&(1<<i) != 0 {
				code = code.Set(64+i, true)
			}
		}
		_, st := c.Decode(code)
		if st != Clean && st != Corrected && st != Detected {
			t.Fatalf("invalid status %v", st)
		}
	})
}

package ecc

import (
	"testing"
)

// fuzzCodecs builds one instance of every codec kind at both supported
// payload widths. Failures here are fatal: the fuzz target cannot run
// without its subjects.
func fuzzCodecs(f *testing.F) []Codec {
	f.Helper()
	var out []Codec
	for _, k := range []int{32, 64} {
		h, err := NewHamming(k)
		if err != nil {
			f.Fatal(err)
		}
		out = append(out, h)
	}
	p, err := NewParity(32)
	if err != nil {
		f.Fatal(err)
	}
	r, err := NewRaw(32)
	if err != nil {
		f.Fatal(err)
	}
	d, err := NewDMR(32)
	if err != nil {
		f.Fatal(err)
	}
	return append(out, p, r, d)
}

// flipDistinct flips n distinct bit positions of the codeword, chosen
// deterministically from seed, and returns the corrupted word plus the
// positions hit.
func flipDistinct(code Bits, codeBits, n int, seed uint64) (Bits, []int) {
	hit := make([]int, 0, n)
	seen := make(map[int]bool, n)
	for len(hit) < n {
		// Simple SplitMix64 step: good enough to spread positions.
		seed += 0x9e3779b97f4a7c15
		z := seed
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		pos := int((z ^ (z >> 31)) % uint64(codeBits))
		if seen[pos] {
			continue
		}
		seen[pos] = true
		hit = append(hit, pos)
		code = code.Flip(pos)
	}
	return code, hit
}

// crossCheckBitwise compares the table-driven encode/decode results
// against the retained bitwise reference implementations.
func crossCheckBitwise(t *testing.T, c Codec, payload uint64, corrupt Bits, dec Bits, status Status) {
	t.Helper()
	var encRef func(Bits) Bits
	var decRef func(Bits) (Bits, Status)
	switch cc := c.(type) {
	case *HammingCodec:
		encRef, decRef = cc.encodeBitwise, cc.decodeBitwise
	case *ParityCodec:
		encRef, decRef = cc.encodeBitwise, cc.decodeBitwise
	case *DMRCodec:
		encRef, decRef = cc.encodeBitwise, cc.decodeBitwise
	default:
		return // raw codec is the identity; nothing to cross-check
	}
	if got, want := c.Encode(BitsFromUint64(payload)), encRef(BitsFromUint64(payload)); got != want {
		t.Fatalf("%s: table encode %s != bitwise %s for %#x", c.Name(), got, want, payload)
	}
	refDec, refStatus := decRef(corrupt)
	if dec != refDec || status != refStatus {
		t.Fatalf("%s: table decode %#x/%v != bitwise %#x/%v for %s",
			c.Name(), dec.Uint64(), status, refDec.Uint64(), refStatus, corrupt)
	}
}

// FuzzCodecRoundTrip drives every codec with arbitrary payloads and
// arbitrary distinct-bit corruption, checking the invariants the
// recovery subsystem is built on: clean round-trips, the per-codec
// detection/correction guarantees, and panic-free decoding of any
// corrupt word.
func FuzzCodecRoundTrip(f *testing.F) {
	codecs := fuzzCodecs(f)
	f.Add(uint64(0), uint8(0), uint64(0))
	f.Add(uint64(0xdeadbeefcafef00d), uint8(1), uint64(1))
	f.Add(^uint64(0), uint8(2), uint64(42))
	f.Add(uint64(0x5555aaaa5555aaaa), uint8(7), uint64(7))
	f.Fuzz(func(t *testing.T, data uint64, nFlips uint8, seed uint64) {
		for _, c := range codecs {
			payload := data
			if c.DataBits() < 64 {
				payload &= (uint64(1) << uint(c.DataBits())) - 1
			}
			enc := c.Encode(BitsFromUint64(payload))

			// Clean round-trip: exact payload, Clean status.
			dec, status := c.Decode(enc)
			if status != Clean || dec.Uint64() != payload {
				t.Fatalf("%T: clean round-trip gave %#x/%v, want %#x/Clean",
					c, dec.Uint64(), status, payload)
			}

			n := int(nFlips) % (c.CodeBits() + 1)
			corrupt, _ := flipDistinct(enc, c.CodeBits(), n, seed)
			dec, status = c.Decode(corrupt)
			if status != Clean && status != Corrected && status != Detected {
				t.Fatalf("%T: invalid status %v", c, status)
			}

			// The table-driven paths must agree bit for bit with the
			// loop-based reference implementations on every input,
			// corrupt or not.
			crossCheckBitwise(t, c, payload, corrupt, dec, status)

			switch c.(type) {
			case *ParityCodec:
				// Parity detects exactly the odd flip counts.
				if wantDetect := n%2 == 1; (status == Detected) != wantDetect {
					t.Fatalf("parity: %d flips gave %v", n, status)
				}
			case *HammingCodec:
				switch n {
				case 1:
					// SEC: single flips are corrected and the payload
					// is intact.
					if status != Corrected || dec.Uint64() != payload {
						t.Fatalf("hamming(%d): 1 flip gave %#x/%v, want %#x/Corrected",
							c.DataBits(), dec.Uint64(), status, payload)
					}
				case 2:
					// DED: double flips are always detected, never
					// miscorrected.
					if status != Detected {
						t.Fatalf("hamming(%d): 2 flips gave %v, want Detected",
							c.DataBits(), status)
					}
				}
			case *RawCodec:
				// No protection: never signals, payload is whatever the
				// corrupted cells hold.
				if status != Clean {
					t.Fatalf("raw: status %v", status)
				}
				if dec.Uint64() != corrupt.Uint64() {
					t.Fatalf("raw: decode %#x != stored %#x", dec.Uint64(), corrupt.Uint64())
				}
			case *DMRCodec:
				// Duplication compares the copies: any single flip makes
				// them differ.
				if n == 1 && status != Detected {
					t.Fatalf("dmr: 1 flip gave %v, want Detected", status)
				}
			}

			// A signalled-Clean or Corrected word must re-encode to the
			// stored image the decoder believed in — decode must be a
			// retraction of encode (no made-up payloads).
			if status == Corrected {
				if c.Encode(dec) == corrupt {
					t.Fatalf("%T: Corrected but stored word unchanged", c)
				}
			}
		}
	})
}

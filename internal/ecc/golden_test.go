package ecc

import (
	"testing"
)

// Golden codeword vectors frozen from the pre-table (loop-based) codec
// implementations at PR 4. The table-driven Encode/Decode must stay
// bit-identical to these forever: region storage, strike injection, and
// every sweep/soak artifact depend on exact codeword layouts.

var hamming32Golden = map[uint64]string{
	0x0:        "00000000000000000000000000000000",
	0x1:        "0000000000000000000000000000000f",
	0x2:        "00000000000000000000000000000033",
	0x80000000: "00000000000000000000004100000014",
	0xffffffff: "00000000000000000000007effffffe8",
	0xdeadbeef: "00000000000000000000006fab6edcef",
	0xcafef00d: "000000000000000000000065bfbc01cd",
	0x5555aaaa: "00000000000000000000002b556a55b1",
	0xaaaa5555: "000000000000000000000055aa95aa59",
	0x100:      "00000000000000000000000000002112",
	0x12345678: "0000000000000000000000098d14cf93",
	0x9e3779b9: "00000000000000000000004e8dde368e",
	0x7fffffff: "00000000000000000000003ffffffffc",
	0x1020304:  "00000000000000000000000040806151",
	0xf0f0f0f0: "0000000000000000000000783c3c1e00",
	0xffff:     "000000000000000000000000003ffffc",
}

var hamming64Golden = map[uint64]string{
	0x0:                "00000000000000000000000000000000",
	0x1:                "0000000000000000000000000000000f",
	0xffffffffffffffff: "00000000000000ffffffffffffffffff",
	0xdeadbeefcafef00d: "00000000000000de56df77e5bfbd01c9",
	0x5555aaaa5555aaaa: "0000000000000055aad5552a556b55a7",
	0x123456789abcdef0: "00000000000000121a2b3c4caf37df14",
	0x8000000000000000: "00000000000000810000000000000017",
	0x9e3779b97f4a7c15: "000000000000009f1bbcdcbed29e8359",
}

var parity32Golden = map[uint64]string{
	0x0:        "00000000000000000000000000000000",
	0x1:        "00000000000000000000000100000001",
	0x2:        "00000000000000000000000100000002",
	0x80000000: "00000000000000000000000180000000",
	0xffffffff: "000000000000000000000000ffffffff",
	0xdeadbeef: "000000000000000000000000deadbeef",
	0xcafef00d: "000000000000000000000000cafef00d",
	0x5555aaaa: "0000000000000000000000005555aaaa",
	0xaaaa5555: "000000000000000000000000aaaa5555",
	0x100:      "00000000000000000000000100000100",
	0x12345678: "00000000000000000000000112345678",
	0x9e3779b9: "0000000000000000000000009e3779b9",
	0x7fffffff: "0000000000000000000000017fffffff",
	0x1020304:  "00000000000000000000000101020304",
	0xf0f0f0f0: "000000000000000000000000f0f0f0f0",
	0xffff:     "0000000000000000000000000000ffff",
}

var dmr32Golden = map[uint64]string{
	0x0:        "00000000000000000000000000000000",
	0x1:        "00000000000000000000000100000001",
	0x2:        "00000000000000000000000200000002",
	0x80000000: "00000000000000008000000080000000",
	0xffffffff: "0000000000000000ffffffffffffffff",
	0xdeadbeef: "0000000000000000deadbeefdeadbeef",
	0xcafef00d: "0000000000000000cafef00dcafef00d",
	0x5555aaaa: "00000000000000005555aaaa5555aaaa",
	0xaaaa5555: "0000000000000000aaaa5555aaaa5555",
	0x100:      "00000000000000000000010000000100",
	0x12345678: "00000000000000001234567812345678",
	0x9e3779b9: "00000000000000009e3779b99e3779b9",
	0x7fffffff: "00000000000000007fffffff7fffffff",
	0x1020304:  "00000000000000000102030401020304",
	0xf0f0f0f0: "0000000000000000f0f0f0f0f0f0f0f0",
	0xffff:     "00000000000000000000ffff0000ffff",
}

// TestGoldenCodewords pins every codec's encoder to the frozen vectors
// and checks the bitwise reference path agrees bit for bit.
func TestGoldenCodewords(t *testing.T) {
	type goldenCase struct {
		name   string
		codec  Codec
		ref    func(Bits) Bits
		golden map[uint64]string
	}
	h32, h64 := MustHamming(32), MustHamming(64)
	p32, err := NewParity(32)
	if err != nil {
		t.Fatal(err)
	}
	d32, err := NewDMR(32)
	if err != nil {
		t.Fatal(err)
	}
	cases := []goldenCase{
		{"hamming32", h32, h32.encodeBitwise, hamming32Golden},
		{"hamming64", h64, h64.encodeBitwise, hamming64Golden},
		{"parity32", p32, p32.encodeBitwise, parity32Golden},
		{"dmr32", d32, d32.encodeBitwise, dmr32Golden},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for payload, want := range tc.golden {
				enc := tc.codec.Encode(BitsFromUint64(payload))
				if got := enc.String(); got != want {
					t.Errorf("Encode(%#x) = %s, want golden %s", payload, got, want)
				}
				if ref := tc.ref(BitsFromUint64(payload)); ref != enc {
					t.Errorf("Encode(%#x) = %s, bitwise reference %s", payload, enc, ref)
				}
				dec, status := tc.codec.Decode(enc)
				if status != Clean || dec.Uint64() != payload {
					t.Errorf("Decode(Encode(%#x)) = %#x/%v, want payload/Clean",
						payload, dec.Uint64(), status)
				}
			}
		})
	}
}

// TestGoldenSyndromes pins the full single- and sampled double-flip
// decode behaviour of hamming(39,32) on one payload: every single flip
// corrects back to the payload, and the frozen double-flip outcomes
// (status and best-effort payload) are reproduced exactly.
func TestGoldenSyndromes(t *testing.T) {
	c := MustHamming(32)
	const payload = 0xdeadbeef
	enc := c.Encode(BitsFromUint64(payload))
	for pos := 0; pos < c.CodeBits(); pos++ {
		data, status := c.Decode(enc.Flip(pos))
		if status != Corrected || data.Uint64() != payload {
			t.Errorf("flip %d: got %#x/%v, want %#x/Corrected", pos, data.Uint64(), status, uint64(payload))
		}
	}
	doubles := []struct {
		a, b int
		data uint64
	}{
		{0, 1, 0xdeadbeef},
		{1, 2, 0xdeadbeef},
		{3, 38, 0x5eadbeee},
		{17, 21, 0xdead36ef},
		{0, 38, 0x5eadbeef},
		{5, 6, 0xdeadbee9},
	}
	for _, d := range doubles {
		data, status := c.Decode(enc.Flip(d.a).Flip(d.b))
		if status != Detected || data.Uint64() != d.data {
			t.Errorf("flips %d,%d: got %#x/%v, want %#x/Detected",
				d.a, d.b, data.Uint64(), status, d.data)
		}
	}
}

// TestTableMatchesBitwiseExhaustive cross-checks the table-driven decode
// against the bitwise reference over every ≤2-flip corruption of a set
// of payloads — the regime the controller's recovery semantics depend
// on — plus a sample of heavier corruption.
func TestTableMatchesBitwiseExhaustive(t *testing.T) {
	payloads := []uint64{0, 1, 0xffffffff, 0xdeadbeef, 0x5555aaaa, 0x9e3779b9}
	for _, k := range []int{8, 16, 32, 64} {
		c := MustHamming(k)
		for _, p := range payloads {
			p &= c.dataMask
			enc := c.Encode(BitsFromUint64(p))
			if ref := c.encodeBitwise(BitsFromUint64(p)); ref != enc {
				t.Fatalf("hamming(%d): encode mismatch for %#x", k, p)
			}
			for i := 0; i < c.CodeBits(); i++ {
				for j := i; j < c.CodeBits(); j++ {
					corrupt := enc.Flip(i)
					if j != i {
						corrupt = corrupt.Flip(j)
					}
					d1, s1 := c.Decode(corrupt)
					d2, s2 := c.decodeBitwise(corrupt)
					if d1 != d2 || s1 != s2 {
						t.Fatalf("hamming(%d) %#x flips(%d,%d): table %#x/%v, bitwise %#x/%v",
							k, p, i, j, d1.Uint64(), s1, d2.Uint64(), s2)
					}
				}
			}
		}
	}
}

// TestCodecZeroAllocs pins encode and decode of every codec to zero
// heap allocations: these run per simulated word access, and the hot
// path must stay allocation-free.
func TestCodecZeroAllocs(t *testing.T) {
	codecs := []Codec{MustHamming(32), MustHamming(64)}
	p, err := NewParity(32)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRaw(32)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDMR(32)
	if err != nil {
		t.Fatal(err)
	}
	codecs = append(codecs, p, r, d)
	for _, c := range codecs {
		payload := uint64(0xdeadbeef) & lowMask(c.DataBits())
		var enc Bits
		if n := testing.AllocsPerRun(100, func() {
			enc = c.Encode(BitsFromUint64(payload))
		}); n != 0 {
			t.Errorf("%s: Encode allocates %.1f/op, want 0", c.Name(), n)
		}
		corrupt := enc.Flip(1)
		if n := testing.AllocsPerRun(100, func() {
			c.Decode(enc)
			c.Decode(corrupt)
		}); n != 0 {
			t.Errorf("%s: Decode allocates %.1f/op, want 0", c.Name(), n)
		}
	}
}

// BenchmarkCodecRoundTrip times one encode + decode per codec — the
// per-word cost every simulated SPM access pays.
func BenchmarkCodecRoundTrip(b *testing.B) {
	codecs := []Codec{MustHamming(32), MustHamming(64)}
	p, _ := NewParity(32)
	d, _ := NewDMR(32)
	codecs = append(codecs, Codec(p), Codec(d))
	for _, c := range codecs {
		b.Run(c.Name(), func(b *testing.B) {
			b.ReportAllocs()
			payload := uint64(0xdeadbeef) & lowMask(c.DataBits())
			var sink Status
			for i := 0; i < b.N; i++ {
				enc := c.Encode(BitsFromUint64(payload + uint64(i&0xff)))
				_, sink = c.Decode(enc)
			}
			if sink != Clean {
				b.Fatal("round trip not clean")
			}
		})
	}
}

// BenchmarkCodecRoundTripBitwise times the reference path for the
// before/after comparison while it exists.
func BenchmarkCodecRoundTripBitwise(b *testing.B) {
	c := MustHamming(32)
	b.ReportAllocs()
	var sink Status
	for i := 0; i < b.N; i++ {
		enc := c.encodeBitwise(BitsFromUint64(0xdeadbeef + uint64(i&0xff)))
		_, sink = c.decodeBitwise(enc)
	}
	if sink != Clean {
		b.Fatal("round trip not clean")
	}
}

package ecc

import (
	"fmt"
)

// InterleavedCodec physically interleaves the bits of `ways` independent
// inner codewords, so that a multi-bit upset striking a cluster of
// adjacent cells lands at most ⌈cluster/ways⌉ flips in any one inner
// codeword. With SEC-DED inner codes and 2-way interleaving, the 2-bit
// clusters that dominate the MBU tail (25% at 40 nm, eq. 5) become two
// correctable single-bit errors.
//
// This is the classic mitigation for the paper's observation that "ECCs
// have severe limitations on correcting MBUs"; the reproduction includes
// it as a quantified extension (see experiments.AblationInterleaving).
//
// Bit layout: logical storage position p holds bit p/ways of inner
// codeword p%ways.
type InterleavedCodec struct {
	inner []Codec
	ways  int
}

var _ Codec = (*InterleavedCodec)(nil)

// NewInterleaved builds a ways-way interleave of identical inner codecs
// produced by mk. All inner codecs must agree on geometry.
func NewInterleaved(ways int, mk func() (Codec, error)) (*InterleavedCodec, error) {
	if ways < 2 {
		return nil, fmt.Errorf("ecc: interleave needs >= 2 ways, got %d", ways)
	}
	c := &InterleavedCodec{ways: ways}
	for i := 0; i < ways; i++ {
		inner, err := mk()
		if err != nil {
			return nil, err
		}
		if i > 0 && (inner.DataBits() != c.inner[0].DataBits() || inner.CodeBits() != c.inner[0].CodeBits()) {
			return nil, fmt.Errorf("ecc: interleave ways disagree on geometry")
		}
		c.inner = append(c.inner, inner)
	}
	if c.CodeBits() > MaxBits {
		return nil, fmt.Errorf("ecc: interleaved codeword of %d bits exceeds %d", c.CodeBits(), MaxBits)
	}
	return c, nil
}

// Name implements Codec.
func (c *InterleavedCodec) Name() string {
	return fmt.Sprintf("interleaved-%dx%s", c.ways, c.inner[0].Name())
}

// DataBits implements Codec.
func (c *InterleavedCodec) DataBits() int { return c.ways * c.inner[0].DataBits() }

// CodeBits implements Codec.
func (c *InterleavedCodec) CodeBits() int { return c.ways * c.inner[0].CodeBits() }

// Encode implements Codec: data bits are split round-robin over the
// ways, each way encodes, and the codeword bits are re-interleaved.
func (c *InterleavedCodec) Encode(data Bits) Bits {
	k := c.inner[0].DataBits()
	var innerData = make([]Bits, c.ways)
	for i := 0; i < c.ways*k; i++ {
		if data.Get(i) {
			innerData[i%c.ways] = innerData[i%c.ways].Set(i/c.ways, true)
		}
	}
	var out Bits
	n := c.inner[0].CodeBits()
	for w, inner := range c.inner {
		code := inner.Encode(innerData[w])
		for b := 0; b < n; b++ {
			if code.Get(b) {
				out = out.Set(b*c.ways+w, true)
			}
		}
	}
	return out
}

// Decode implements Codec: the worst inner status wins (Detected >
// Corrected > Clean).
func (c *InterleavedCodec) Decode(code Bits) (Bits, Status) {
	n := c.inner[0].CodeBits()
	k := c.inner[0].DataBits()
	var data Bits
	status := Clean
	for w, inner := range c.inner {
		var innerCode Bits
		for b := 0; b < n; b++ {
			if code.Get(b*c.ways + w) {
				innerCode = innerCode.Set(b, true)
			}
		}
		innerData, st := inner.Decode(innerCode)
		for b := 0; b < k; b++ {
			if innerData.Get(b) {
				data = data.Set(b*c.ways+w, true)
			}
		}
		if st > status {
			status = st
		}
	}
	return data, status
}

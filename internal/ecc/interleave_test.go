package ecc

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func newInterleaved2x16(t *testing.T) *InterleavedCodec {
	t.Helper()
	c, err := NewInterleaved(2, func() (Codec, error) { return NewHamming(16) })
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestInterleavedGeometry(t *testing.T) {
	c := newInterleaved2x16(t)
	if c.DataBits() != 32 || c.CodeBits() != 44 {
		t.Errorf("geometry = (%d,%d), want (44,32)", c.CodeBits(), c.DataBits())
	}
	if c.Name() != "interleaved-2xhamming(22,16)" {
		t.Errorf("Name = %q", c.Name())
	}
}

func TestInterleavedConstructorRejects(t *testing.T) {
	if _, err := NewInterleaved(1, func() (Codec, error) { return NewHamming(16) }); err == nil {
		t.Error("1-way interleave accepted")
	}
	if _, err := NewInterleaved(2, func() (Codec, error) { return NewHamming(5) }); err == nil {
		t.Error("inner constructor error not propagated")
	}
	if _, err := NewInterleaved(4, func() (Codec, error) { return NewHamming(64) }); err == nil {
		t.Error("oversized interleave accepted (288 bits)")
	}
	// Inner codecs that disagree on geometry are rejected.
	sizes := []int{16, 32}
	i := 0
	if _, err := NewInterleaved(2, func() (Codec, error) {
		k := sizes[i%2]
		i++
		return NewHamming(k)
	}); err == nil {
		t.Error("mismatched inner geometry accepted")
	}
}

func TestInterleavedRoundTrip(t *testing.T) {
	c := newInterleaved2x16(t)
	f := func(v uint32) bool {
		got, st := c.Decode(c.Encode(BitsFromUint64(uint64(v))))
		return st == Clean && got.Uint64() == uint64(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestInterleavedCorrectsAdjacentDoubleFlips(t *testing.T) {
	// The whole point: a 2-bit adjacent cluster — a DUE for plain
	// SEC-DED (eq. 5) — splits across the two ways and is fully
	// corrected.
	c := newInterleaved2x16(t)
	rng := rand.New(rand.NewSource(20))
	for trial := 0; trial < 200; trial++ {
		data := uint64(rng.Uint32())
		code := c.Encode(BitsFromUint64(data))
		pos := rng.Intn(c.CodeBits() - 1)
		got, st := c.Decode(code.Flip(pos).Flip(pos + 1))
		if st != Corrected {
			t.Fatalf("adjacent double flip at %d -> %v, want Corrected", pos, st)
		}
		if got.Uint64() != data {
			t.Fatalf("adjacent double flip miscorrected")
		}
	}
}

func TestInterleavedSingleFlipsCorrected(t *testing.T) {
	c := newInterleaved2x16(t)
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 50; trial++ {
		data := uint64(rng.Uint32())
		code := c.Encode(BitsFromUint64(data))
		for pos := 0; pos < c.CodeBits(); pos++ {
			got, st := c.Decode(code.Flip(pos))
			if st != Corrected || got.Uint64() != data {
				t.Fatalf("single flip at %d -> %v", pos, st)
			}
		}
	}
}

func TestInterleavedAdjacentTripleDetectedOrCorrected(t *testing.T) {
	// A 3-bit adjacent cluster puts 2 flips in one way (detected) and 1
	// in the other (corrected): overall Detected — never silent.
	c := newInterleaved2x16(t)
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 200; trial++ {
		data := uint64(rng.Uint32())
		code := c.Encode(BitsFromUint64(data))
		pos := rng.Intn(c.CodeBits() - 2)
		_, st := c.Decode(code.Flip(pos).Flip(pos + 1).Flip(pos + 2))
		if st != Detected {
			t.Fatalf("adjacent triple flip -> %v, want Detected", st)
		}
	}
}

func TestInterleavedAdjacentQuadDetectedNotSilent(t *testing.T) {
	// A 4-bit adjacent cluster is 2 flips per way: both ways detect.
	c := newInterleaved2x16(t)
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 200; trial++ {
		data := uint64(rng.Uint32())
		code := c.Encode(BitsFromUint64(data))
		pos := rng.Intn(c.CodeBits() - 3)
		corrupt := code
		for i := 0; i < 4; i++ {
			corrupt = corrupt.Flip(pos + i)
		}
		if _, st := c.Decode(corrupt); st != Detected {
			t.Fatalf("adjacent quad flip -> %v, want Detected", st)
		}
	}
}

package ecc

// Lane-parallel decode entry points: the SWAR counterpart of Decode for
// up to 64 independent fault scenarios at once. The packed soak engine
// (internal/simd) keeps one bit per scenario ("lane") and asks, for a
// single stored word position, how every lane's codeword would classify
// — without materializing 64 separate Decode calls.
//
// The representation is bit-sliced (transposed): planes[p] holds bit p
// of every lane's codeword, one lane per bit of the uint64. A syndrome
// is then a handful of XORs over the planes, shared by all lanes, and
// the correctable/detected decision becomes bitwise arithmetic on the
// syndrome planes. Data extraction is deliberately out of scope: the
// caller falls back to the scalar Decode for the rare lanes that need
// corrected payloads (miscorrection tracking), which keeps this path
// pure classification.

// LaneClassifier is implemented by codecs that can classify up to 64
// codewords at once from a bit-sliced representation. planes[p] carries
// bit p of each lane's codeword (lane L in bit L); len(planes) must be
// CodeBits(). Only lanes set in active are classified; the returned
// masks hold the lanes whose codeword would Decode to Corrected and
// Detected respectively (never both; lanes in neither are Clean).
type LaneClassifier interface {
	ClassifyLanes(planes []uint64, active uint64) (corrected, detected uint64)
}

var (
	_ LaneClassifier = (*ParityCodec)(nil)
	_ LaneClassifier = (*HammingCodec)(nil)
	_ LaneClassifier = (*RawCodec)(nil)
	_ LaneClassifier = (*DMRCodec)(nil)
)

// ClassifyLanes implements LaneClassifier: a parity word is Detected
// exactly when its total popcount is odd, which bit-sliced is the XOR
// of every plane.
func (c *ParityCodec) ClassifyLanes(planes []uint64, active uint64) (corrected, detected uint64) {
	var odd uint64
	for _, p := range planes[:c.k+1] {
		odd ^= p
	}
	return 0, odd & active
}

// ClassifyLanes implements LaneClassifier. Per lane it reproduces the
// Decode switch: Clean on zero syndrome and even overall parity;
// Corrected on odd overall parity with a syndrome inside the code
// (including 0: the overall parity bit itself flipped); Detected
// otherwise. The syndrome is accumulated as bit-sliced planes — one XOR
// per codeword position per syndrome bit — and the "syndrome points
// outside the code" test (s > n) is a bit-sliced magnitude comparator.
func (c *HammingCodec) ClassifyLanes(planes []uint64, active uint64) (corrected, detected uint64) {
	// syn[j] holds bit j of every lane's syndrome; overall is the
	// parity of all stored bits per lane.
	var syn [8]uint64
	var overall uint64
	synBits := 0
	for (1 << synBits) <= c.n {
		synBits++
	}
	for pos := 0; pos <= c.n; pos++ {
		p := planes[pos]
		overall ^= p
		for j := 0; j < synBits; j++ {
			if pos&(1<<j) != 0 {
				syn[j] ^= p
			}
		}
	}
	var nonzero uint64
	for j := 0; j < synBits; j++ {
		nonzero |= syn[j]
	}
	// gt: lanes whose syndrome exceeds n (points outside the code, so
	// the flip count is ≥3 and the word is Detected even with odd
	// parity). MSB-first compare against the constant n.
	var gt uint64
	eq := ^uint64(0)
	for j := synBits - 1; j >= 0; j-- {
		if c.n&(1<<j) != 0 {
			eq &= syn[j]
		} else {
			gt |= eq & syn[j]
			eq &^= syn[j]
		}
	}
	corrected = overall &^ gt
	detected = (overall & gt) | (^overall & nonzero)
	return corrected & active, detected & active
}

// ClassifyLanes implements LaneClassifier: a raw word never observes an
// error.
func (c *RawCodec) ClassifyLanes(planes []uint64, active uint64) (corrected, detected uint64) {
	return 0, 0
}

// ClassifyLanes implements LaneClassifier: a DMR word is Detected
// exactly when the two copies differ in any bit position.
func (c *DMRCodec) ClassifyLanes(planes []uint64, active uint64) (corrected, detected uint64) {
	var mismatch uint64
	for i := 0; i < c.k; i++ {
		mismatch |= planes[i] ^ planes[i+c.k]
	}
	return 0, mismatch & active
}

package ecc

import (
	"math/rand"
	"testing"
)

// transposeLanes builds the bit-sliced planes ClassifyLanes consumes
// from per-lane codewords: planes[p] bit L = bit p of words[L].
func transposeLanes(words []uint64, codeBits int) []uint64 {
	planes := make([]uint64, codeBits)
	for l, w := range words {
		for p := 0; p < codeBits; p++ {
			if w>>uint(p)&1 != 0 {
				planes[p] |= 1 << uint(l)
			}
		}
	}
	return planes
}

// checkLanesAgainstScalar cross-checks ClassifyLanes against the scalar
// Decode for every active lane.
func checkLanesAgainstScalar(t *testing.T, codec Codec, words []uint64, active uint64) {
	t.Helper()
	lc, ok := codec.(LaneClassifier)
	if !ok {
		t.Fatalf("%s does not implement LaneClassifier", codec.Name())
	}
	planes := transposeLanes(words, codec.CodeBits())
	corrected, detected := lc.ClassifyLanes(planes, active)
	if corrected&detected != 0 {
		t.Fatalf("%s: lanes %#x classified both corrected and detected", codec.Name(), corrected&detected)
	}
	if inactive := ^active & (corrected | detected); inactive != 0 {
		t.Fatalf("%s: inactive lanes %#x classified", codec.Name(), inactive)
	}
	for l := range words {
		if active>>uint(l)&1 == 0 {
			continue
		}
		_, status := codec.Decode(BitsFromUint64(words[l]))
		var want Status
		switch {
		case corrected>>uint(l)&1 != 0:
			want = Corrected
		case detected>>uint(l)&1 != 0:
			want = Detected
		default:
			want = Clean
		}
		if status != want {
			t.Fatalf("%s lane %d word %#x: scalar %v, lanes %v", codec.Name(), l, words[l], status, want)
		}
	}
}

// TestClassifyLanesMatchesDecode sweeps every codec with randomized
// flip clusters over valid codewords, the exact fault shapes the soak
// engine produces.
func TestClassifyLanesMatchesDecode(t *testing.T) {
	codecs := []Codec{
		MustHamming(32),
		mustParity(t, 32),
		mustRaw(t, 32),
		mustDMR(t, 32),
	}
	rng := rand.New(rand.NewSource(7))
	for _, codec := range codecs {
		for round := 0; round < 200; round++ {
			words := make([]uint64, 64)
			for l := range words {
				code := codec.Encode(BitsFromUint64(rng.Uint64() & lowMask(codec.DataBits())))
				// 0..8 adjacent flips, the MBU cluster envelope.
				flips := rng.Intn(9)
				start := rng.Intn(codec.CodeBits())
				for i := 0; i < flips; i++ {
					code = code.Flip((start + i) % codec.CodeBits())
				}
				words[l] = code.Uint64()
			}
			checkLanesAgainstScalar(t, codec, words, rng.Uint64())
		}
	}
}

func mustParity(t *testing.T, k int) Codec {
	t.Helper()
	c, err := NewParity(k)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func mustRaw(t *testing.T, k int) Codec {
	t.Helper()
	c, err := NewRaw(k)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func mustDMR(t *testing.T, k int) Codec {
	t.Helper()
	c, err := NewDMR(k)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// FuzzHammingClassifyLanes cross-checks the lane-parallel SEC-DED
// classification against the scalar codec on arbitrary stored words —
// including patterns no strike process produces.
func FuzzHammingClassifyLanes(f *testing.F) {
	codec := MustHamming(32)
	f.Add(uint64(0), uint64(1), uint64(3), uint64(1<<38), uint64(0xffffffffff), uint64(42), uint64(7), uint64(1<<20|1), uint64(0xff))
	f.Add(^uint64(0), uint64(0), uint64(0x5555555555), uint64(0xaaaaaaaaaa), uint64(1), uint64(2), uint64(4), uint64(8), ^uint64(0))
	f.Fuzz(func(t *testing.T, w0, w1, w2, w3, w4, w5, w6, w7, active uint64) {
		mask := lowMask(codec.CodeBits())
		words := []uint64{w0 & mask, w1 & mask, w2 & mask, w3 & mask, w4 & mask, w5 & mask, w6 & mask, w7 & mask}
		checkLanesAgainstScalar(t, codec, words, active&0xff)
	})
}

// Package endurance implements the paper's STT-RAM wear model (Table
// III, Fig. 8): the lifetime of a structure is the time until its
// hottest cell accumulates the technology's write-cycle threshold. FTSPM
// wins by ~3 orders of magnitude because the MDA deports write-intensive
// blocks from the STT-RAM region, slashing the hottest STT cell's write
// rate.
package endurance

import (
	"errors"
	"fmt"
	"math"

	"ftspm/internal/memtech"
	"ftspm/internal/spm"
)

// PaperThresholds are the write-cycle thresholds of Table III: since
// there is no consensus on STT-RAM write endurance, the paper sweeps
// 10^12 through 10^16.
func PaperThresholds() []float64 {
	return []float64{1e12, 1e13, 1e14, 1e15, 1e16}
}

// Errors returned by the package.
var (
	ErrNoExecution = errors.New("endurance: execution time must be positive")
	ErrNilSPM      = errors.New("endurance: SPM must not be nil")
)

// MaxCellWriteRate returns the per-second write rate of the hottest word
// in the SPM's regions of the given kinds (writes accumulated by the
// simulation divided by the execution time). Restrict kinds to
// spm.RegionSTT to measure the endurance-relevant wear; SRAM regions
// have no endurance limit.
func MaxCellWriteRate(s *spm.SPM, cycles memtech.Cycles, kinds ...spm.RegionKind) (float64, error) {
	if s == nil {
		return 0, ErrNilSPM
	}
	if cycles == 0 {
		return 0, ErrNoExecution
	}
	match := func(k spm.RegionKind) bool {
		if len(kinds) == 0 {
			return true
		}
		for _, want := range kinds {
			if k == want {
				return true
			}
		}
		return false
	}
	var maxWrites uint64
	for _, r := range s.Regions() {
		if !match(r.Kind()) {
			continue
		}
		if w := r.MaxWriteCount(); w > maxWrites {
			maxWrites = w
		}
	}
	return float64(maxWrites) / cycles.Seconds(), nil
}

// Lifetime returns the seconds until a cell written at ratePerSec
// reaches the given write-cycle threshold. A zero rate yields +Inf (the
// structure never wears out).
func Lifetime(threshold, ratePerSec float64) float64 {
	if ratePerSec <= 0 {
		return math.Inf(1)
	}
	return threshold / ratePerSec
}

// Row is one Table III row: a threshold and the lifetimes of the two
// endurance-limited structures.
type Row struct {
	Threshold      float64
	BaselineSTTSec float64
	FTSPMSec       float64
}

// Improvement returns the FTSPM/baseline lifetime ratio.
func (r Row) Improvement() float64 {
	if r.BaselineSTTSec == 0 {
		return math.Inf(1)
	}
	return r.FTSPMSec / r.BaselineSTTSec
}

// Table builds Table III from the hottest-cell write rates of the pure
// STT-RAM baseline and FTSPM.
func Table(baselineRate, ftspmRate float64, thresholds []float64) []Row {
	rows := make([]Row, 0, len(thresholds))
	for _, th := range thresholds {
		rows = append(rows, Row{
			Threshold:      th,
			BaselineSTTSec: Lifetime(th, baselineRate),
			FTSPMSec:       Lifetime(th, ftspmRate),
		})
	}
	return rows
}

// Humanize renders a lifetime in the paper's Table III style
// ("~40 minutes", "~61 days", "~1665 years").
func Humanize(seconds float64) string {
	switch {
	case math.IsInf(seconds, 1):
		return "unlimited"
	case seconds < 60:
		return fmt.Sprintf("~%.0f seconds", seconds)
	case seconds < 2*3600:
		return fmt.Sprintf("~%.0f minutes", seconds/60)
	case seconds < 2*86400:
		return fmt.Sprintf("~%.0f hours", seconds/3600)
	case seconds < 90*86400:
		return fmt.Sprintf("~%.0f days", seconds/86400)
	case seconds < 2*31557600:
		return fmt.Sprintf("~%.1f years", seconds/31557600)
	default:
		return fmt.Sprintf("~%.0f years", seconds/31557600)
	}
}

package endurance

import (
	"errors"
	"math"
	"strings"
	"testing"

	"ftspm/internal/memtech"
	"ftspm/internal/spm"
)

func TestLifetime(t *testing.T) {
	if got := Lifetime(1e12, 4e8); math.Abs(got-2500) > 1e-9 {
		t.Errorf("Lifetime = %v, want 2500 s", got)
	}
	if !math.IsInf(Lifetime(1e12, 0), 1) {
		t.Error("zero rate not unlimited")
	}
	if !math.IsInf(Lifetime(1e12, -1), 1) {
		t.Error("negative rate not unlimited")
	}
}

func TestPaperThresholds(t *testing.T) {
	th := PaperThresholds()
	want := []float64{1e12, 1e13, 1e14, 1e15, 1e16}
	if len(th) != len(want) {
		t.Fatalf("thresholds = %v", th)
	}
	for i := range want {
		if th[i] != want[i] {
			t.Errorf("threshold[%d] = %v", i, th[i])
		}
	}
}

func TestTableShape(t *testing.T) {
	// Table III's first row: pure STT ~40 minutes vs FTSPM ~61 days at
	// 10^12 — a ~2200x improvement. Build the table from rates chosen to
	// match and verify the improvement is threshold-invariant.
	baseRate := 1e12 / (40 * 60.0)     // wears 1e12 in 40 minutes
	ftspmRate := 1e12 / (61 * 86400.0) // wears 1e12 in 61 days
	rows := Table(baseRate, ftspmRate, PaperThresholds())
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i, r := range rows {
		imp := r.Improvement()
		if math.Abs(imp-2196) > 1 {
			t.Errorf("row %d improvement = %v, want ~2196", i, imp)
		}
		if i > 0 && r.BaselineSTTSec <= rows[i-1].BaselineSTTSec {
			t.Error("lifetimes not increasing with threshold")
		}
	}
	if got := Humanize(rows[0].BaselineSTTSec); got != "~40 minutes" {
		t.Errorf("baseline row 0 = %q", got)
	}
	if got := Humanize(rows[0].FTSPMSec); got != "~61 days" {
		t.Errorf("FTSPM row 0 = %q", got)
	}
	inf := Row{Threshold: 1, BaselineSTTSec: 0, FTSPMSec: 1}
	if !math.IsInf(inf.Improvement(), 1) {
		t.Error("zero-baseline improvement not Inf")
	}
}

func TestHumanizeRanges(t *testing.T) {
	tests := []struct {
		sec  float64
		want string
	}{
		{30, "~30 seconds"},
		{40 * 60, "~40 minutes"},
		{7 * 3600, "~7 hours"},
		{3 * 86400, "~3 days"},
		{61 * 86400, "~61 days"},
		{1.5 * 31557600, "~1.5 years"},
		{16 * 31557600, "~16 years"},
		{1665 * 31557600, "~1665 years"},
		{math.Inf(1), "unlimited"},
	}
	for _, tt := range tests {
		if got := Humanize(tt.sec); got != tt.want {
			t.Errorf("Humanize(%v) = %q, want %q", tt.sec, got, tt.want)
		}
	}
	if !strings.HasPrefix(Humanize(59), "~59 sec") {
		t.Error("seconds range wrong")
	}
}

func TestMaxCellWriteRate(t *testing.T) {
	s, err := spm.New(0,
		spm.RegionConfig{Kind: spm.RegionSTT, SizeBytes: 256},
		spm.RegionConfig{Kind: spm.RegionParity, SizeBytes: 256},
	)
	if err != nil {
		t.Fatal(err)
	}
	stt, _ := s.RegionByKind(spm.RegionSTT)
	par, _ := s.RegionByKind(spm.RegionParity)
	// Write word 3 of STT five times, parity word 0 fifty times.
	for i := 0; i < 5; i++ {
		if _, err := stt.Write(3, []uint32{uint32(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 50; i++ {
		if _, err := par.Write(0, []uint32{uint32(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// One second of execution at 1 GHz.
	cycles := memtech.Cycles(1e9)
	rate, err := MaxCellWriteRate(s, cycles, spm.RegionSTT)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rate-5) > 1e-9 {
		t.Errorf("STT rate = %v, want 5/s", rate)
	}
	// Without a kind filter the parity region dominates.
	rate, err = MaxCellWriteRate(s, cycles)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rate-50) > 1e-9 {
		t.Errorf("unfiltered rate = %v, want 50/s", rate)
	}
	if _, err := MaxCellWriteRate(nil, cycles); !errors.Is(err, ErrNilSPM) {
		t.Error("nil SPM accepted")
	}
	if _, err := MaxCellWriteRate(s, 0); !errors.Is(err, ErrNoExecution) {
		t.Error("zero cycles accepted")
	}
	// A kind absent from the SPM yields zero rate.
	rate, err = MaxCellWriteRate(s, cycles, spm.RegionECC)
	if err != nil || rate != 0 {
		t.Errorf("absent kind rate = %v, err %v", rate, err)
	}
}

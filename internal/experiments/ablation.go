package experiments

import (
	"context"
	"fmt"
	"math/rand"

	"ftspm/internal/avf"
	"ftspm/internal/core"
	"ftspm/internal/dram"
	"ftspm/internal/ecc"
	"ftspm/internal/faults"
	"ftspm/internal/memtech"
	"ftspm/internal/profile"
	"ftspm/internal/program"
	"ftspm/internal/report"
	"ftspm/internal/schedule"
	"ftspm/internal/sim"
	"ftspm/internal/spm"
	"ftspm/internal/trace"
	"ftspm/internal/workloads"
)

// Ablation studies: each isolates one design choice of FTSPM and sweeps
// it, holding everything else at the defaults. They are extensions
// beyond the paper's own evaluation (its "according to system
// requirements" knobs), indexed in DESIGN.md §4.

// ablationTraces caches materialized traces for the ablation drivers,
// which replay the same (workload, scale) trace many times in a row —
// once for the profile, then once per swept design point. Cached
// traces are immutable and the replay streams own their cursors, so
// the shared cache never breaks determinism.
var ablationTraces = workloads.NewTraceCache(2)

// cachedTrace returns a replay stream over the (possibly cached)
// materialized trace of (w, scale).
func cachedTrace(w workloads.Workload, scale float64) trace.Stream {
	return ablationTraces.Stream(w, scale)
}

// ScheduleComparison contrasts the two implementations of the on-line
// phase: on-demand LRU transfers versus the statically planned (SMI,
// Belady) schedule.
type ScheduleComparison struct {
	Workload                  string
	OnDemandCycles            uint64
	ScheduledCycles           uint64
	OnDemandTransferCycles    uint64
	ScheduledTransferCycles   uint64
	OnDemandMapIns            uint64
	ScheduledMapIns           uint64
	PlannedLoads, PlannedEvix int
}

// AblationSchedule runs one workload on FTSPM twice — on-demand and with
// a static Belady plan — and reports the transfer-traffic difference.
func AblationSchedule(workloadName string, opts Options) (ScheduleComparison, error) {
	opts = opts.normalize()
	w, err := workloads.ByName(workloadName)
	if err != nil {
		return ScheduleComparison{}, err
	}
	spec := core.MustSpec(core.StructFTSPM)
	prof, err := profile.Run(w.Program(), cachedTrace(w, opts.Scale))
	if err != nil {
		return ScheduleComparison{}, err
	}
	mapping, err := core.MapBlocks(prof, spec, opts.Thresholds, opts.Priority)
	if err != nil {
		return ScheduleComparison{}, err
	}

	runMachine := func(plan *schedule.Plan) (sim.Result, error) {
		m, err := sim.New(w.Program(), spec.SimConfig(mapping.Placement))
		if err != nil {
			return sim.Result{}, err
		}
		if plan == nil {
			return m.Run(cachedTrace(w, opts.Scale))
		}
		return m.RunWithPlan(cachedTrace(w, opts.Scale), plan)
	}

	onDemand, err := runMachine(nil)
	if err != nil {
		return ScheduleComparison{}, err
	}
	plan, err := schedule.Build(w.Program(), mapping.Placement, cachedTrace(w, opts.Scale),
		schedule.RegionWords(spec.ISPM), schedule.RegionWords(spec.DSPM))
	if err != nil {
		return ScheduleComparison{}, err
	}
	scheduled, err := runMachine(plan)
	if err != nil {
		return ScheduleComparison{}, err
	}

	return ScheduleComparison{
		Workload:                workloadName,
		OnDemandCycles:          uint64(onDemand.Cycles),
		ScheduledCycles:         uint64(scheduled.Cycles),
		OnDemandTransferCycles:  uint64(onDemand.ICtl.TransferCycles + onDemand.DCtl.TransferCycles),
		ScheduledTransferCycles: uint64(scheduled.ICtl.TransferCycles + scheduled.DCtl.TransferCycles),
		OnDemandMapIns:          onDemand.ICtl.MapIns + onDemand.DCtl.MapIns,
		ScheduledMapIns:         scheduled.ICtl.MapIns + scheduled.DCtl.MapIns,
		PlannedLoads:            plan.Loads,
		PlannedEvix:             plan.Evictions,
	}, nil
}

// AblationScheduleTable runs the schedule comparison across the suite.
func AblationScheduleTable(opts Options) (*report.Table, error) {
	t := report.New(
		"Ablation: on-line phase — on-demand LRU vs static Belady schedule (SMI)",
		"Workload", "Cycles (LRU)", "Cycles (plan)", "Transfer cyc (LRU)", "Transfer cyc (plan)",
		"Map-ins (LRU)", "Map-ins (plan)")
	for _, name := range append([]string{workloads.CaseStudyName}, workloads.Names()...) {
		c, err := AblationSchedule(name, opts)
		if err != nil {
			return nil, err
		}
		t.AddRow(c.Workload,
			report.Count(int(c.OnDemandCycles)), report.Count(int(c.ScheduledCycles)),
			report.Count(int(c.OnDemandTransferCycles)), report.Count(int(c.ScheduledTransferCycles)),
			report.Count(int(c.OnDemandMapIns)), report.Count(int(c.ScheduledMapIns)))
	}
	return t, nil
}

// SplitPoint is one D-SPM ECC/parity partition under test.
type SplitPoint struct {
	ECCBytes, ParityBytes int
	Vulnerability         float64
	DynamicEnergyPJ       float64
	Cycles                uint64
}

// AblationRegionSplit sweeps the division of the 4 KB SRAM half of the
// FTSPM data SPM between the ECC and parity regions (the paper fixes
// 2 KB + 2 KB without justification) and evaluates the case study on
// each split.
func AblationRegionSplit(opts Options) ([]SplitPoint, *report.Table, error) {
	opts = opts.normalize()
	w := workloads.CaseStudy()
	prof, err := profile.Run(w.Program(), cachedTrace(w, opts.Scale))
	if err != nil {
		return nil, nil, err
	}

	t := report.New(
		"Ablation: ECC/parity split of the 4 KB SRAM share (case study)",
		"ECC", "Parity", "Vulnerability", "Dynamic energy", "Cycles")
	var points []SplitPoint
	const kb = 1024
	for _, split := range [][2]int{{0, 4}, {1, 3}, {2, 2}, {3, 1}, {4, 0}} {
		spec := core.MustSpec(core.StructFTSPM)
		spec.DSPM = []spm.RegionConfig{{Kind: spm.RegionSTT, SizeBytes: 12 * kb}}
		spec.DataKinds = []spm.RegionKind{spm.RegionSTT}
		if split[0] > 0 {
			spec.DSPM = append(spec.DSPM, spm.RegionConfig{Kind: spm.RegionECC, SizeBytes: split[0] * kb})
			spec.DataKinds = append(spec.DataKinds, spm.RegionECC)
		}
		if split[1] > 0 {
			spec.DSPM = append(spec.DSPM, spm.RegionConfig{Kind: spm.RegionParity, SizeBytes: split[1] * kb})
			spec.DataKinds = append(spec.DataKinds, spm.RegionParity)
		}
		out, err := evaluateSpec(context.Background(), w, spec, prof, opts)
		if err != nil {
			return nil, nil, err
		}
		p := SplitPoint{
			ECCBytes:        split[0] * kb,
			ParityBytes:     split[1] * kb,
			Vulnerability:   out.AVF.Vulnerability(),
			DynamicEnergyPJ: float64(out.Sim.SPMDynamicEnergy),
			Cycles:          uint64(out.Sim.Cycles),
		}
		points = append(points, p)
		t.AddRow(
			fmt.Sprintf("%d KB", split[0]), fmt.Sprintf("%d KB", split[1]),
			report.Float(p.Vulnerability, 4),
			report.Energy(p.DynamicEnergyPJ),
			report.Count(int(p.Cycles)))
	}
	return points, t, nil
}

// AblationPriorities evaluates a workload under each MDA priority and
// reports how the placement and the figures of merit move. On workloads
// whose blocks sit far from every budget (e.g. the case study, where the
// three write-hot blocks are evicted at any threshold) the four rows
// coincide — the budgets only act near their boundaries; basicmath and
// dijkstra are the interesting subjects in this suite.
func AblationPriorities(workloadName string, opts Options) (*report.Table, error) {
	opts = opts.normalize()
	w, err := workloads.ByName(workloadName)
	if err != nil {
		return nil, err
	}
	prof, err := profile.Run(w.Program(), cachedTrace(w, opts.Scale))
	if err != nil {
		return nil, err
	}
	t := report.New(
		"Ablation: MDA multi-priority mapping ("+workloadName+")",
		"Priority", "STT data blocks", "Vulnerability", "Cycles", "Dynamic energy", "Max STT cell writes/s")
	for _, prio := range []core.Priority{
		core.PriorityReliability, core.PriorityPerformance,
		core.PriorityPower, core.PriorityEndurance,
	} {
		o := opts
		o.Priority = prio
		out, err := evaluateSpec(context.Background(), w, core.MustSpec(core.StructFTSPM), prof, o)
		if err != nil {
			return nil, err
		}
		sttBlocks := 0
		for id, kind := range out.Mapping.Placement {
			b, err := w.Program().Block(id)
			if err != nil {
				return nil, err
			}
			if b.Kind.IsData() && kind == spm.RegionSTT {
				sttBlocks++
			}
		}
		t.AddRow(prio.String(),
			report.Count(sttBlocks),
			report.Float(out.AVF.Vulnerability(), 4),
			report.Count(int(out.Sim.Cycles)),
			report.Energy(float64(out.Sim.SPMDynamicEnergy)),
			report.Float(out.STTWriteRate, 0))
	}
	return t, nil
}

// ThresholdPoint is one write-threshold setting under test.
type ThresholdPoint struct {
	WriteFraction float64
	Vulnerability float64
	STTWriteRate  float64
	Cycles        uint64
}

// AblationWriteThreshold sweeps the step 5 write-cycle threshold with
// the other budgets relaxed, exposing the trade the knob controls: a
// loose threshold keeps the write-hot blocks in the immune STT-RAM
// region — the *best* vulnerability — while the hottest cell's write
// rate collapses the structure's lifetime toward the pure STT-RAM
// baseline; tightening deports the writers to the SRAM regions, giving
// up some AVF for orders of magnitude of endurance.
func AblationWriteThreshold(opts Options) ([]ThresholdPoint, *report.Table, error) {
	opts = opts.normalize()
	w := workloads.CaseStudy()
	prof, err := profile.Run(w.Program(), cachedTrace(w, opts.Scale))
	if err != nil {
		return nil, nil, err
	}
	t := report.New(
		"Ablation: step 5 write-cycle threshold, other budgets relaxed (case study)",
		"Write fraction", "Vulnerability", "Max STT cell writes/s", "Cycles")
	var points []ThresholdPoint
	for _, frac := range []float64{0.0025, 0.01, 0.05, 0.2, 0.35, 0.6} {
		o := opts
		o.Thresholds.WriteFraction = frac
		// Isolate step 5: with the default budgets the performance and
		// energy loops (steps 3-4) would deport the write-hot blocks
		// anyway — the MDA's budgets are deliberately redundant for
		// write traffic (an STT write is simultaneously slow, hot, and
		// wearing).
		o.Thresholds.PerfOverhead = 1000
		o.Thresholds.EnergyOverhead = 1000
		o.Thresholds.CellWriteFraction = frac / 10
		out, err := evaluateSpec(context.Background(), w, core.MustSpec(core.StructFTSPM), prof, o)
		if err != nil {
			return nil, nil, err
		}
		p := ThresholdPoint{
			WriteFraction: frac,
			Vulnerability: out.AVF.Vulnerability(),
			STTWriteRate:  out.STTWriteRate,
			Cycles:        uint64(out.Sim.Cycles),
		}
		points = append(points, p)
		t.AddRow(report.Pct(frac), report.Float(p.Vulnerability, 4),
			report.Float(p.STTWriteRate, 0), report.Count(int(p.Cycles)))
	}
	return points, t, nil
}

// InterleavePoint compares one code's per-strike outcome rates under the
// 40 nm MBU distribution.
type InterleavePoint struct {
	Code          string
	StorageBits   int // stored bits per 32 data bits
	DRE, DUE, SDC float64
}

// AblationInterleaving quantifies the paper's motivation that "ECCs have
// severe limitations on correcting MBUs": it bombards plain parity,
// plain SEC-DED, and a 2-way-interleaved SEC-DED organization with the
// 40 nm MBU mix and tallies the real decoder outcomes. Interleaving
// turns the 25% 2-bit-cluster mass from DUEs into corrected errors, at
// the cost of 5 extra stored bits per word.
func AblationInterleaving(strikes int, seed int64) ([]InterleavePoint, *report.Table, error) {
	if strikes <= 0 {
		strikes = 50000
	}
	codes := []struct {
		name string
		mk   func() (ecc.Codec, error)
	}{
		{"parity(33,32)", func() (ecc.Codec, error) { return ecc.NewParity(32) }},
		{"hamming(39,32)", func() (ecc.Codec, error) { return ecc.NewHamming(32) }},
		{"interleaved-2x hamming(22,16)", func() (ecc.Codec, error) {
			return ecc.NewInterleaved(2, func() (ecc.Codec, error) { return ecc.NewHamming(16) })
		}},
	}
	t := report.New(
		"Ablation: MBU tolerance of the protection codes (40 nm cluster mix, adjacent-bit strikes)",
		"Code", "Stored bits/word", "DRE (corrected)", "DUE (detected)", "SDC (silent)")
	var points []InterleavePoint
	for _, c := range codes {
		codec, err := c.mk()
		if err != nil {
			return nil, nil, err
		}
		campaign := faults.Campaign{Codec: codec, Dist: faults.Dist40nm, Seed: seed}
		tally, err := campaign.Run(strikes)
		if err != nil {
			return nil, nil, err
		}
		p := InterleavePoint{
			Code:        c.name,
			StorageBits: codec.CodeBits(),
			DRE:         tally.Rate(faults.DRE),
			DUE:         tally.Rate(faults.DUE),
			SDC:         tally.Rate(faults.SDC),
		}
		points = append(points, p)
		t.AddRow(c.name, report.Count(p.StorageBits),
			report.Pct(p.DRE), report.Pct(p.DUE), report.Pct(p.SDC))
	}
	return points, t, nil
}

// ScrubPoint is one scrubbing-interval setting under test.
type ScrubPoint struct {
	// StrikesBetweenScrubs is the scrub interval (0 = never scrub).
	StrikesBetweenScrubs int
	// UncorrectableWords is the final count of words the SEC-DED
	// decoder can no longer repair.
	UncorrectableWords int
	// SilentWords is the final count of silently corrupted words.
	SilentWords int
	// Repairs is the total number of scrub repairs performed.
	Repairs int
}

// AblationScrubbing measures how periodic scrubbing of the ECC region
// keeps independent single-bit upsets from accumulating into
// uncorrectable multi-bit words. It bombards a 2 KB SEC-DED region with
// single-bit strikes (the 62% MBU mass) and compares scrub intervals.
func AblationScrubbing(totalStrikes int, seed int64) ([]ScrubPoint, *report.Table, error) {
	if totalStrikes <= 0 {
		totalStrikes = 2000
	}
	t := report.New(
		"Ablation: periodic scrubbing of the ECC region (single-bit strikes accumulating over time)",
		"Scrub interval (strikes)", "Uncorrectable words", "Silent words", "Scrub repairs")
	var points []ScrubPoint
	for _, interval := range []int{0, 1000, 250, 50} {
		r, err := spm.NewRegion(spm.RegionECC, 2*1024)
		if err != nil {
			return nil, nil, err
		}
		values := make([]uint32, r.Words())
		for i := range values {
			values[i] = dram.Value(uint32(i))
		}
		if _, err := r.Write(0, values); err != nil {
			return nil, nil, err
		}
		rng := rand.New(rand.NewSource(seed))
		repairs := 0
		for s := 1; s <= totalStrikes; s++ {
			if _, err := r.InjectStrike(rng, rng.Intn(r.Words()), 1); err != nil {
				return nil, nil, err
			}
			if interval > 0 && s%interval == 0 {
				rep, _, _ := r.Scrub()
				repairs += rep
			}
		}
		audit := r.Audit()
		p := ScrubPoint{
			StrikesBetweenScrubs: interval,
			UncorrectableWords:   audit.DUE,
			SilentWords:          audit.SDC,
			Repairs:              repairs,
		}
		points = append(points, p)
		label := "never"
		if interval > 0 {
			label = report.Count(interval)
		}
		t.AddRow(label, report.Count(p.UncorrectableWords),
			report.Count(p.SilentWords), report.Count(p.Repairs))
	}
	return points, t, nil
}

// RelatedWorkRow compares one structure in the related-work table.
type RelatedWorkRow struct {
	Structure     core.Structure
	SDCAVF        float64
	DUEAVF        float64
	Reliability   float64
	DynamicPJ     float64
	StaticMJ      float64
	Cycles        uint64
	DataCapacityB int
}

// RelatedWork evaluates the case study on the three paper structures
// plus the duplication (DMR) comparator of [3], splitting the AVF into
// its SDC and DUE components: duplication eliminates silent corruption
// but converts every upset into a detected-unrecoverable error, halves
// the usable capacity at iso-area (driving blocks off-SPM), and doubles
// the access energy — the "high overheads" the paper's related-work
// section claims, quantified.
func RelatedWork(opts Options) ([]RelatedWorkRow, *report.Table, error) {
	opts = opts.normalize()
	w := workloads.CaseStudy()
	t := report.New(
		"Related-work comparison on the case study: FTSPM vs baselines vs duplication [3]",
		"Structure", "SDC AVF", "DUE AVF", "Reliability", "Dynamic energy",
		"Static energy", "Cycles", "Data capacity")
	var rows []RelatedWorkRow
	for _, s := range core.AllStructures() {
		out, err := Evaluate(w, s, opts)
		if err != nil {
			return nil, nil, err
		}
		r := RelatedWorkRow{
			Structure:     s,
			SDCAVF:        out.AVF.SDCAVF,
			DUEAVF:        out.AVF.DUEAVF,
			Reliability:   out.AVF.Reliability(),
			DynamicPJ:     float64(out.Sim.SPMDynamicEnergy),
			StaticMJ:      float64(out.Sim.SPMStaticEnergy),
			Cycles:        uint64(out.Sim.Cycles),
			DataCapacityB: out.Spec.TotalBytes(),
		}
		rows = append(rows, r)
		t.AddRow(s.String(),
			report.Float(r.SDCAVF, 4), report.Float(r.DUEAVF, 4),
			report.Pct(r.Reliability),
			report.Energy(r.DynamicPJ),
			report.Energy(r.StaticMJ*1e9),
			report.Count(int(r.Cycles)),
			fmt.Sprintf("%d KB", r.DataCapacityB/1024))
	}
	return rows, t, nil
}

// RetentionPoint is one retention-time setting of the relaxed-retention
// STT-RAM study.
type RetentionPoint struct {
	// RetentionCycles is how long a cell holds its value before needing
	// a refresh (in core cycles at 1 GHz).
	RetentionCycles float64
	// WriteCycleDelta and WriteEnergyDelta are the savings on program +
	// DMA writes from the faster, cheaper low-retention writes.
	WriteCycleDelta    float64
	WriteEnergyDeltaPJ float64
	// RefreshCyclesTotal and RefreshEnergyPJ are the added refresh
	// costs over the run.
	RefreshCyclesTotal float64
	RefreshEnergyPJ    float64
	// NetCycleDelta and NetEnergyDeltaPJ are savings minus refresh
	// costs (positive = relaxation wins).
	NetCycleDelta    float64
	NetEnergyDeltaPJ float64
}

// Relaxed-retention STT-RAM parameters, after [18] ("When to forget"):
// dropping the retention target from years to milliseconds shrinks the
// magnetic tunnel junction's thermal-stability factor, cutting write
// latency to ~3 cycles and write energy to ~25% — at the price of
// DRAM-style refresh.
const (
	lowRetWriteLatency     = 3.0  // cycles, vs 10 for full-retention
	lowRetWriteEnergyScale = 0.25 // of the full-retention write energy
)

// AblationRetention models replacing FTSPM's STT-RAM regions with
// relaxed-retention STT-RAM: it takes the measured full-retention run
// (write word counts, live words, execution time) and computes, for a
// sweep of retention times, the write savings against the refresh tax.
// The crossover shows where [18]'s idea pays off for this workload.
func AblationRetention(workloadName string, opts Options) ([]RetentionPoint, *report.Table, error) {
	opts = opts.normalize()
	out, err := EvaluateByName(workloadName, core.StructFTSPM, opts)
	if err != nil {
		return nil, nil, err
	}
	stt := out.Sim.DataRegionStats[spm.RegionSTT]
	sttBank, err := memtech.EstimateBank(memtech.STTRAM, memtech.Unprotected, 12*1024)
	if err != nil {
		return nil, nil, err
	}
	writeWords := float64(stt.WordsWritten)
	execCycles := float64(out.Sim.Cycles)

	// Live words needing refresh: the words of the STT-mapped data
	// blocks (occupied SPM space holds live data between uses).
	liveWords := 0.0
	for id, kind := range out.Mapping.Placement {
		if kind != spm.RegionSTT {
			continue
		}
		bp := out.Profile.Blocks[id]
		if bp.Block.Kind.IsData() {
			liveWords += float64(memtech.WordsIn(bp.Block.Size))
		}
	}

	writeCycleSave := writeWords * (10 - lowRetWriteLatency)
	writeEnergySave := writeWords * float64(sttBank.WriteEnergy) * (1 - lowRetWriteEnergyScale)

	t := report.New(
		fmt.Sprintf("Extension [18]: relaxed-retention STT-RAM for FTSPM's data region (%s)", workloadName),
		"Retention", "Refresh energy", "Refresh cycles", "Write savings (pJ)", "Net energy delta", "Net cycle delta")
	var points []RetentionPoint
	for _, retention := range []float64{1e4, 1e5, 1e6, 1e7, 1e8} { // 10us .. 100ms at 1 GHz
		refreshes := execCycles / retention
		refreshEnergy := refreshes * liveWords * float64(sttBank.WriteEnergy) * lowRetWriteEnergyScale
		refreshCycles := refreshes * (lowRetWriteLatency + liveWords - 1) // pipelined burst rewrite
		p := RetentionPoint{
			RetentionCycles:    retention,
			WriteCycleDelta:    writeCycleSave,
			WriteEnergyDeltaPJ: writeEnergySave,
			RefreshCyclesTotal: refreshCycles,
			RefreshEnergyPJ:    refreshEnergy,
			NetCycleDelta:      writeCycleSave - refreshCycles,
			NetEnergyDeltaPJ:   writeEnergySave - refreshEnergy,
		}
		points = append(points, p)
		t.AddRow(
			fmt.Sprintf("%.0e cyc", retention),
			report.Energy(p.RefreshEnergyPJ),
			report.Count(int(p.RefreshCyclesTotal)),
			report.Energy(p.WriteEnergyDeltaPJ),
			report.Energy(p.NetEnergyDeltaPJ),
			report.Count(int(p.NetCycleDelta)))
	}
	return points, t, nil
}

// GranularityPoint compares coarse (whole-block) and fine (refined)
// mapping units on one workload.
type GranularityPoint struct {
	Label string
	// UnmappedBytes counts data+code bytes left off-SPM. Unmapped data
	// lives in the unprotected L1 cache — outside the SPM AVF metric
	// (the paper ignores cache vulnerability too) but physically exposed
	// to strikes with no code at all, which is what fine granularity
	// eliminates in a safety-critical deployment.
	UnmappedBytes  int
	Cycles         uint64
	SPMDynamicPJ   float64
	TotalDynamicPJ float64
	Vulnerability  float64
}

// refineOversized returns a program in which every block too large for
// the region that might need to host it is split into equal word-aligned
// parts that fit: code blocks against the I-SPM, data blocks against the
// largest eviction-target (SRAM) region, so write-hot blocks always have
// somewhere to be deported to. Trace addresses keep resolving — Refine
// tiles the parent's range.
func refineOversized(prog *program.Program, spec core.Spec) (*program.Program, error) {
	out := prog
	for _, b := range prog.Blocks() {
		limit := spec.ISPMBytes()
		if b.Kind.IsData() {
			limit = 0
			for _, kind := range spec.DataKinds[1:] {
				if n := spec.DataRegionBytes(kind); n > limit {
					limit = n
				}
			}
			if limit == 0 {
				for _, kind := range spec.DataKinds {
					if n := spec.DataRegionBytes(kind); n > limit {
						limit = n
					}
				}
			}
		}
		if limit <= 0 || b.Size <= limit {
			continue
		}
		parts := (b.Size + limit - 1) / limit
		refined, err := out.Refine(b.Name, parts)
		if err != nil {
			return nil, err
		}
		out = refined
	}
	return out, nil
}

// AblationGranularity contrasts whole-block mapping with refined
// (fine-grained, [15]) mapping units on one workload. Refinement always
// eliminates the off-SPM (unprotected-cache) bytes; whether it also wins
// on energy depends on transfer amortization versus cache behaviour —
// the tests record a negative energy result for the case study's
// streaming Main and for matmul's cache-friendly output tile, which is
// precisely why Algorithm 1's size check plus an L1 backstop is a
// defensible design for non-critical data, and why a safety-critical
// deployment (where unprotected residency is unacceptable) pays the
// refinement tax.
func AblationGranularity(workloadName string, opts Options) ([]GranularityPoint, *report.Table, error) {
	opts = opts.normalize()
	w, err := workloads.ByName(workloadName)
	if err != nil {
		return nil, nil, err
	}
	spec := core.MustSpec(core.StructFTSPM)

	evalOn := func(label string, prog *program.Program) (GranularityPoint, error) {
		prof, err := profile.Run(prog, cachedTrace(w, opts.Scale))
		if err != nil {
			return GranularityPoint{}, err
		}
		mapping, err := core.MapBlocks(prof, spec, opts.Thresholds, opts.Priority)
		if err != nil {
			return GranularityPoint{}, err
		}
		machine, err := sim.New(prog, spec.SimConfig(mapping.Placement))
		if err != nil {
			return GranularityPoint{}, err
		}
		res, err := machine.Run(cachedTrace(w, opts.Scale))
		if err != nil {
			return GranularityPoint{}, err
		}
		rep, err := avf.Compute(prof, mapping.Placement, faults.Dist40nm,
			spec.DSPMBytes(), avf.ModePerBlock)
		if err != nil {
			return GranularityPoint{}, err
		}
		unmapped := 0
		for _, b := range prog.Blocks() {
			if _, ok := mapping.Placement[b.ID]; !ok {
				unmapped += b.Size
			}
		}
		return GranularityPoint{
			Label:          label,
			UnmappedBytes:  unmapped,
			Cycles:         uint64(res.Cycles),
			SPMDynamicPJ:   float64(res.SPMDynamicEnergy),
			TotalDynamicPJ: float64(res.TotalDynamicEnergy()),
			Vulnerability:  rep.Vulnerability(),
		}, nil
	}

	coarse, err := evalOn("coarse (whole blocks)", w.Program())
	if err != nil {
		return nil, nil, err
	}
	refined, err := refineOversized(w.Program(), spec)
	if err != nil {
		return nil, nil, err
	}
	fine, err := evalOn("fine (oversized blocks split)", refined)
	if err != nil {
		return nil, nil, err
	}

	t := report.New(
		fmt.Sprintf("Ablation [15]: block granularity (%s)", workloadName),
		"Granularity", "Unmapped bytes", "Cycles", "SPM dynamic", "Total dynamic", "Vulnerability")
	points := []GranularityPoint{coarse, fine}
	for _, p := range points {
		t.AddRow(p.Label, report.Count(p.UnmappedBytes), report.Count(int(p.Cycles)),
			report.Energy(p.SPMDynamicPJ), report.Energy(p.TotalDynamicPJ),
			report.Float(p.Vulnerability, 4))
	}
	return points, t, nil
}

// ValidationRow is one structure's empirical fault-injection outcome.
type ValidationRow struct {
	Structure core.Structure
	// Strikes landed on the data SPM during execution.
	Strikes uint64
	// CorrectedReads, DetectedReads, SilentReads classify the reads that
	// met corrupted words (DRE / DUE / SDC consumed by the program).
	CorrectedReads, DetectedReads, SilentReads uint64
	// AnalyticVulnerability is the AVF model's prediction.
	AnalyticVulnerability float64
}

// ConsumedErrors returns the architecturally visible error events
// (detected + silent), the empirical counterpart of eq. (1)'s SDC+DUE.
func (r ValidationRow) ConsumedErrors() uint64 { return r.DetectedReads + r.SilentReads }

// ValidateAVF validates the analytic reliability model end to end: it
// executes the same workload on each structure while landing particle
// strikes on the data SPM (40 nm cluster mix), and tallies, through the
// real codecs, the corrupted words the program actually consumed. The
// pure STT-RAM structure must consume zero; FTSPM must consume several
// times fewer than the pure SRAM baseline — the empirical face of the
// paper's 7x claim.
func ValidateAVF(workloadName string, strikesPerAccess float64, seed int64,
	opts Options) ([]ValidationRow, *report.Table, error) {
	opts = opts.normalize()
	if strikesPerAccess <= 0 {
		strikesPerAccess = 0.02
	}
	w, err := workloads.ByName(workloadName)
	if err != nil {
		return nil, nil, err
	}
	prof, err := profile.Run(w.Program(), cachedTrace(w, opts.Scale))
	if err != nil {
		return nil, nil, err
	}

	t := report.New(
		fmt.Sprintf("Validation: live fault injection vs the analytic AVF model (%s, %.3f strikes/access)",
			workloadName, strikesPerAccess),
		"Structure", "Strikes", "Corrected (DRE)", "Detected (DUE)", "Silent (SDC)", "Analytic vulnerability")
	var rows []ValidationRow
	for _, s := range core.Structures() {
		spec := core.MustSpec(s)
		mapping, err := core.MapBlocks(prof, spec, opts.Thresholds, opts.Priority)
		if err != nil {
			return nil, nil, err
		}
		cfg := spec.SimConfig(mapping.Placement)
		cfg.Injection = &sim.InjectionConfig{
			StrikesPerAccess: strikesPerAccess,
			Dist:             faults.Dist40nm,
			Seed:             seed,
		}
		machine, err := sim.New(w.Program(), cfg)
		if err != nil {
			return nil, nil, err
		}
		res, err := machine.Run(cachedTrace(w, opts.Scale))
		if err != nil {
			return nil, nil, err
		}
		mode := avf.ModeUniform
		if len(spec.DataKinds) > 1 {
			mode = avf.ModePerBlock
		}
		rep, err := avf.Compute(prof, mapping.Placement, faults.Dist40nm, spec.DSPMBytes(), mode)
		if err != nil {
			return nil, nil, err
		}
		row := ValidationRow{
			Structure:             s,
			Strikes:               res.InjectedStrikes,
			AnalyticVulnerability: rep.Vulnerability(),
		}
		for _, st := range res.DataRegionStats {
			row.CorrectedReads += st.CorrectedErrors
			row.DetectedReads += st.DetectedErrors
			row.SilentReads += st.SilentReads
		}
		rows = append(rows, row)
		t.AddRow(s.String(),
			report.Count(int(row.Strikes)),
			report.Count(int(row.CorrectedReads)),
			report.Count(int(row.DetectedReads)),
			report.Count(int(row.SilentReads)),
			report.Float(row.AnalyticVulnerability, 4))
	}
	return rows, t, nil
}

// NodePoint is one technology node's vulnerability comparison.
type NodePoint struct {
	Node         string
	BaselineVuln float64
	FTSPMVuln    float64
	Improvement  float64
	ECCWeight    float64 // P(2)+P(>=3): the SEC-DED escape probability
}

// AblationTechNode sweeps the MBU multiplicity distribution across
// technology nodes (65 nm down to 16 nm, after the trend of [6]) and
// recomputes the Fig. 5 comparison at each: as the multi-bit tail grows,
// the SEC-DED baseline's escape probability rises while FTSPM's immune
// STT-RAM region is unaffected — the paper's "down scaling" motivation,
// extrapolated forward.
func AblationTechNode(workloadName string, opts Options) ([]NodePoint, *report.Table, error) {
	opts = opts.normalize()
	w, err := workloads.ByName(workloadName)
	if err != nil {
		return nil, nil, err
	}
	prof, err := profile.Run(w.Program(), cachedTrace(w, opts.Scale))
	if err != nil {
		return nil, nil, err
	}
	spec := core.MustSpec(core.StructFTSPM)
	mapping, err := core.MapBlocks(prof, spec, opts.Thresholds, opts.Priority)
	if err != nil {
		return nil, nil, err
	}
	baseSpec := core.MustSpec(core.StructPureSRAM)
	baseMapping, err := core.MapBlocks(prof, baseSpec, opts.Thresholds, opts.Priority)
	if err != nil {
		return nil, nil, err
	}

	t := report.New(
		fmt.Sprintf("Extension: vulnerability vs technology node (%s; MBU tail after [6])", workloadName),
		"Node", "P(multi-bit)", "Pure SRAM", "FTSPM", "Improvement")
	var points []NodePoint
	for _, node := range faults.TechNodes() {
		ft, err := avf.Compute(prof, mapping.Placement, node.Dist, spec.DSPMBytes(), avf.ModePerBlock)
		if err != nil {
			return nil, nil, err
		}
		base, err := avf.Compute(prof, baseMapping.Placement, node.Dist, baseSpec.DSPMBytes(), avf.ModeUniform)
		if err != nil {
			return nil, nil, err
		}
		p := NodePoint{
			Node:         node.Name,
			BaselineVuln: base.Vulnerability(),
			FTSPMVuln:    ft.Vulnerability(),
			Improvement:  base.Vulnerability() / ft.Vulnerability(),
			ECCWeight:    node.Dist.PAtLeast(2),
		}
		points = append(points, p)
		t.AddRow(p.Node, report.Pct(p.ECCWeight),
			report.Float(p.BaselineVuln, 4), report.Float(p.FTSPMVuln, 4),
			report.Float(p.Improvement, 1)+"x")
	}
	return points, t, nil
}

package experiments

import (
	"strings"
	"testing"

	"ftspm/internal/core"
)

func TestAblationScheduleReducesTransfers(t *testing.T) {
	// The statically planned schedule (Belady evictions) must never
	// cause more transfer traffic than the on-demand LRU controller.
	for _, name := range []string{"casestudy", "fft", "jpeg"} {
		c, err := AblationSchedule(name, testOpts)
		if err != nil {
			t.Fatal(err)
		}
		if c.ScheduledMapIns > c.OnDemandMapIns {
			t.Errorf("%s: plan performed more map-ins (%d) than LRU (%d)",
				name, c.ScheduledMapIns, c.OnDemandMapIns)
		}
		if c.ScheduledTransferCycles > c.OnDemandTransferCycles {
			t.Errorf("%s: plan spent more transfer cycles (%d) than LRU (%d)",
				name, c.ScheduledTransferCycles, c.OnDemandTransferCycles)
		}
		if c.PlannedLoads == 0 {
			t.Errorf("%s: empty plan", name)
		}
	}
}

func TestAblationScheduleTableRenders(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite double runs")
	}
	tb, err := AblationScheduleTable(testOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 13 {
		t.Errorf("rows = %d, want 13", len(tb.Rows))
	}
}

func TestAblationRegionSplitTradeoff(t *testing.T) {
	points, tb, err := AblationRegionSplit(testOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 5 || len(tb.Rows) != 5 {
		t.Fatalf("points = %d", len(points))
	}
	// All-parity (0 KB ECC) must be the most vulnerable split: every
	// evicted block sits under the weakest protection.
	allParity := points[0]
	for _, p := range points[1:] {
		if p.ECCBytes > 0 && p.Vulnerability > allParity.Vulnerability+1e-9 {
			t.Errorf("split %d/%d more vulnerable (%.4f) than all-parity (%.4f)",
				p.ECCBytes, p.ParityBytes, p.Vulnerability, allParity.Vulnerability)
		}
	}
}

func TestAblationPriorities(t *testing.T) {
	tb, err := AblationPriorities("basicmath", testOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	out := tb.String()
	for _, p := range []string{"reliability", "performance", "power", "endurance"} {
		if !strings.Contains(out, p) {
			t.Errorf("missing priority %s", p)
		}
	}
}

func TestAblationWriteThresholdMonotone(t *testing.T) {
	points, tb, err := AblationWriteThreshold(testOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) < 4 || len(tb.Rows) != len(points) {
		t.Fatalf("points = %d", len(points))
	}
	// Loosening the threshold keeps more write traffic in STT-RAM: the
	// hottest-cell rate must be non-decreasing in the fraction, and the
	// loosest setting must wear STT-RAM far faster than the tightest
	// (the endurance the knob exists to protect).
	// (Allow slack: keeping more blocks in STT-RAM also slows execution,
	// which can shave the per-second rate even as per-cell counts rise.)
	for i := 1; i < len(points); i++ {
		if points[i].STTWriteRate < 0.8*points[i-1].STTWriteRate {
			t.Errorf("STT write rate fell from %.0f to %.0f when loosening %.4f -> %.4f",
				points[i-1].STTWriteRate, points[i].STTWriteRate,
				points[i-1].WriteFraction, points[i].WriteFraction)
		}
	}
	first, last := points[0], points[len(points)-1]
	if last.STTWriteRate < 10*first.STTWriteRate {
		t.Errorf("loosest threshold rate %.0f not far above tightest %.0f",
			last.STTWriteRate, first.STTWriteRate)
	}
	// With everything kept in the immune region, the loosest setting has
	// the best vulnerability.
	if last.Vulnerability > first.Vulnerability {
		t.Errorf("loosest vulnerability %.4f worse than tightest %.4f",
			last.Vulnerability, first.Vulnerability)
	}
}

func TestAblationInterleavingShape(t *testing.T) {
	points, tb, err := AblationInterleaving(30000, 99)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 || len(tb.Rows) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	parity, plain, inter := points[0], points[1], points[2]
	// Parity corrects nothing; SEC-DED corrects the 62% singles;
	// interleaving additionally corrects the 25% adjacent doubles.
	if parity.DRE != 0 {
		t.Error("parity corrected something")
	}
	if plain.DRE < 0.58 || plain.DRE > 0.66 {
		t.Errorf("plain SEC-DED DRE = %.3f, want ~0.62", plain.DRE)
	}
	if inter.DRE < plain.DRE+0.2 {
		t.Errorf("interleaving DRE = %.3f, want >> plain %.3f (doubles corrected)",
			inter.DRE, plain.DRE)
	}
	if inter.SDC > plain.SDC {
		t.Errorf("interleaving increased SDC: %.4f > %.4f", inter.SDC, plain.SDC)
	}
	if inter.StorageBits != 44 || plain.StorageBits != 39 || parity.StorageBits != 33 {
		t.Error("storage accounting wrong")
	}
	_ = tb
}

func TestAblationInterleavingDefaults(t *testing.T) {
	// Non-positive strike count falls back to the default.
	points, _, err := AblationInterleaving(0, 1)
	if err != nil || len(points) != 3 {
		t.Fatalf("default run failed: %v", err)
	}
}

func TestAblationScrubbingReducesAccumulation(t *testing.T) {
	points, tb, err := AblationScrubbing(3000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 || len(tb.Rows) != 4 {
		t.Fatalf("points = %d", len(points))
	}
	never := points[0]
	if never.StrikesBetweenScrubs != 0 || never.Repairs != 0 {
		t.Fatal("first point must be the no-scrub baseline")
	}
	if never.UncorrectableWords == 0 {
		t.Error("no accumulated uncorrectable words without scrubbing")
	}
	// Tighter scrub intervals leave fewer uncorrectable words.
	for _, p := range points[1:] {
		if p.Repairs == 0 {
			t.Errorf("interval %d performed no repairs", p.StrikesBetweenScrubs)
		}
		if p.UncorrectableWords > never.UncorrectableWords {
			t.Errorf("scrubbing every %d strikes increased DUEs (%d > %d)",
				p.StrikesBetweenScrubs, p.UncorrectableWords, never.UncorrectableWords)
		}
	}
	tightest := points[len(points)-1]
	if tightest.UncorrectableWords >= never.UncorrectableWords {
		t.Errorf("tight scrubbing did not reduce DUEs: %d vs %d",
			tightest.UncorrectableWords, never.UncorrectableWords)
	}
}

func TestRelatedWorkComparison(t *testing.T) {
	rows, tb, err := RelatedWork(testOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 || len(tb.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 structures", len(rows))
	}
	byStruct := map[core.Structure]RelatedWorkRow{}
	for _, r := range rows {
		byStruct[r.Structure] = r
	}
	dmr := byStruct[core.StructDMR]
	sram := byStruct[core.StructPureSRAM]
	ft := byStruct[core.StructFTSPM]
	// Duplication: zero silent corruption, but everything becomes DUE.
	if dmr.SDCAVF != 0 {
		t.Errorf("DMR SDC AVF = %v, want 0", dmr.SDCAVF)
	}
	if dmr.DUEAVF <= sram.DUEAVF {
		t.Errorf("DMR DUE AVF (%v) must exceed the ECC baseline's (%v)", dmr.DUEAVF, sram.DUEAVF)
	}
	// Duplication halves the capacity at iso-area.
	if dmr.DataCapacityB != 16*1024 {
		t.Errorf("DMR capacity = %d, want 16 KB", dmr.DataCapacityB)
	}
	// The doubled cells cost power ("high overheads in terms of power
	// and die size" [3]): DMR leaks more than twice the per-KB rate of
	// the plain baseline and burns more dynamic energy per access; at
	// half the data capacity its total dynamic energy must exceed the
	// full-size ECC baseline's.
	if dmr.DynamicPJ <= sram.DynamicPJ {
		t.Errorf("DMR dynamic energy (%v) should exceed the ECC baseline (%v)",
			dmr.DynamicPJ, sram.DynamicPJ)
	}
	// FTSPM beats duplication on overall vulnerability (eq. 1).
	if ft.SDCAVF+ft.DUEAVF >= dmr.SDCAVF+dmr.DUEAVF {
		t.Error("FTSPM should have lower total vulnerability than DMR")
	}
}

func TestAblationRetentionCrossover(t *testing.T) {
	points, tb, err := AblationRetention("sha", testOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 5 || len(tb.Rows) != 5 {
		t.Fatalf("points = %d", len(points))
	}
	// Refresh cost must fall monotonically as retention lengthens, and
	// the write savings are retention-independent.
	for i := 1; i < len(points); i++ {
		if points[i].RefreshEnergyPJ >= points[i-1].RefreshEnergyPJ {
			t.Error("refresh energy not decreasing with retention")
		}
		if points[i].WriteEnergyDeltaPJ != points[0].WriteEnergyDeltaPJ {
			t.Error("write savings changed with retention")
		}
	}
	// At very short retention the refresh tax must dominate (net loss);
	// at the longest retention the relaxation must win on energy.
	if points[0].NetEnergyDeltaPJ >= 0 {
		t.Errorf("10us retention should lose: net %.0f pJ", points[0].NetEnergyDeltaPJ)
	}
	last := points[len(points)-1]
	if last.NetEnergyDeltaPJ <= 0 {
		t.Errorf("100ms retention should win: net %.0f pJ", last.NetEnergyDeltaPJ)
	}
}

func TestAblationGranularityCaseStudyNegativeResult(t *testing.T) {
	// The honest finding on the case study: splitting the 20 KB Main so
	// it fits the I-SPM eliminates the unmapped bytes, but a large
	// streaming code block is better served by the 8 KB I-cache than by
	// DMA-ing 10 KB halves into STT-RAM (each transfer writes thousands
	// of expensive STT cells) — granularity alone is not a win; it needs
	// transfer-aware placement. The mapping check of Algorithm 1 line 2,
	// which leaves Main unmapped, is vindicated.
	points, tb, err := AblationGranularity("casestudy", testOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 || len(tb.Rows) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	coarse, fine := points[0], points[1]
	if coarse.UnmappedBytes < 20*1024 {
		t.Errorf("coarse unmapped = %d, want >= 20 KB (Main)", coarse.UnmappedBytes)
	}
	if fine.UnmappedBytes != 0 {
		t.Errorf("fine unmapped = %d, want 0", fine.UnmappedBytes)
	}
	if fine.TotalDynamicPJ <= coarse.TotalDynamicPJ {
		t.Errorf("expected the negative result: fine %.0f should exceed coarse %.0f",
			fine.TotalDynamicPJ, coarse.TotalDynamicPJ)
	}
}

func TestAblationGranularityMatmulProtectsOutput(t *testing.T) {
	// matmul's 4 KB write-hot output tile fits no SRAM region whole, so
	// the coarse mapping leaves it off-SPM — resident in the completely
	// unprotected L1 D-cache. Split in half it lives under ECC/parity
	// protection. The energy price of that protection (DMA time-sharing
	// of the 2 KB ECC region vs a cache the whole tile fits in) is real
	// and bounded; a safety-critical deployment pays it.
	points, _, err := AblationGranularity("matmul", testOpts)
	if err != nil {
		t.Fatal(err)
	}
	coarse, fine := points[0], points[1]
	if coarse.UnmappedBytes < 4*1024 {
		t.Errorf("coarse unmapped = %d, want >= 4 KB (Out)", coarse.UnmappedBytes)
	}
	if fine.UnmappedBytes != 0 {
		t.Errorf("fine unmapped = %d, want 0 (output now under SPM protection)", fine.UnmappedBytes)
	}
	if fine.TotalDynamicPJ > 5*coarse.TotalDynamicPJ {
		t.Errorf("protection tax implausibly high: fine %.0f vs coarse %.0f",
			fine.TotalDynamicPJ, coarse.TotalDynamicPJ)
	}
}

func TestAblationTechNodeTrend(t *testing.T) {
	points, tb, err := AblationTechNode("casestudy", testOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 || len(tb.Rows) != 4 {
		t.Fatalf("points = %d", len(points))
	}
	// The baseline's vulnerability must grow monotonically as the node
	// shrinks (the paper's motivation), while FTSPM stays far below it
	// at every node.
	for i, p := range points {
		if i > 0 && p.BaselineVuln <= points[i-1].BaselineVuln {
			t.Errorf("%s: baseline vulnerability %.4f not above previous %.4f",
				p.Node, p.BaselineVuln, points[i-1].BaselineVuln)
		}
		if p.Improvement < 2 {
			t.Errorf("%s: improvement only %.1fx", p.Node, p.Improvement)
		}
	}
}

package experiments

import (
	"context"
	"encoding/json"
	"fmt"

	"ftspm/internal/campaign"
	"ftspm/internal/core"
	"ftspm/internal/faults"
	"ftspm/internal/resultcache"
	"ftspm/internal/sim"
	"ftspm/internal/spm"
)

// This file keys experiment results for the content-addressed result
// cache (internal/resultcache). Every evaluation here is a pure
// function of its normalized options, so the cache key is the
// canonical digest of exactly the fields that determine the result —
// and nothing else. Performance knobs (Lanes, worker counts,
// checkpoint paths) are deliberately excluded: they change how fast a
// result is computed, never which bytes come out, so runs that differ
// only in those knobs share cache entries.
//
// The key's fault component isolates the fault/wear/recovery model.
// A lookup that matches on the problem but not on the fault model is a
// recorded bypass, never a hit — see the resultcache package docs.
//
// Single evaluations and sweep jobs share one key space: the sweep job
// for (workload, structure) under some Options caches the same entry a
// /v1/evaluate request for that triple hits, which is what makes the
// batch /v1/map endpoint a composition of per-pair cache lookups.

// Cache key kinds. Bump the version suffix when a result-affecting
// field is added, so old entries can never satisfy new semantics.
const (
	cacheKindEvaluate = "ftspm/evaluate/v1"
	cacheKindSoak     = "ftspm/soak-trial/v2" // v2: storm joined the fault half
)

// evaluateFault is the fault model of the single-shot evaluation
// pipeline: analytic AVF over the standard distribution, no live
// injection. It is a fixed marker — every evaluate shares it — but it
// keeps the two-part key shape so evaluate entries can never collide
// with a fault-model-bearing key space.
type evaluateFault struct {
	Model string `json:"model"`
}

// evaluateCacheKey keys one (workload, structure, options) evaluation.
// opts must already be normalized.
func evaluateCacheKey(workload string, s core.Structure, opts Options) (resultcache.Key, error) {
	base := struct {
		Workload  string          `json:"workload"`
		Structure string          `json:"structure"`
		Scale     float64         `json:"scale"`
		Budgets   core.Thresholds `json:"budgets"`
		Priority  core.Priority   `json:"priority"`
	}{workload, s.String(), opts.Scale, opts.Thresholds, opts.Priority}
	return resultcache.NewKey(cacheKindEvaluate, base, evaluateFault{Model: "analytic-avf"})
}

// soakFault is the fault/wear/recovery model of one soak trial — the
// component whose mismatch forces a bypass. Any knob that changes what
// faults occur or how the controller reacts to them lives here.
type soakFault struct {
	StrikesPerAccess float64                `json:"strikes_per_access"`
	Dist             faults.MBUDistribution `json:"dist"`
	Target           sim.InjectionTarget    `json:"target"`
	Seed             int64                  `json:"seed"`
	Recovery         *spm.RecoveryConfig    `json:"recovery"`
	Wear             *spm.WearConfig        `json:"wear"`
	// Storm is the correlated-storm model (normalized), nil for the
	// memoryless process. Its presence in the fault half means a
	// cached non-storm result can never satisfy a storm request (or
	// vice versa): the key mismatch is a recorded bypass, never a
	// hit.
	Storm *faults.StormConfig `json:"storm"`
}

// soakCacheKey keys one (structure, trial) soak job. opts must already
// be normalized and carry the job's structure. Trials (the campaign's
// trial count) and Lanes are excluded: per-trial results depend only
// on the derived seed, so campaigns of different sizes share entries.
func soakCacheKey(opts SoakOptions, s core.Structure, trial int) (resultcache.Key, error) {
	base := struct {
		Workload  string          `json:"workload"`
		Structure string          `json:"structure"`
		Trial     int             `json:"trial"`
		Scale     float64         `json:"scale"`
		Budgets   core.Thresholds `json:"budgets"`
		Priority  core.Priority   `json:"priority"`
	}{opts.Workload, s.String(), trial, opts.Scale, opts.Thresholds, opts.Priority}
	fault := soakFault{
		StrikesPerAccess: opts.StrikesPerAccess,
		Dist:             opts.Dist,
		Target:           opts.Target,
		Seed:             opts.Seed,
		Recovery:         opts.Recovery,
		Wear:             opts.Wear,
		Storm:            opts.Storm,
	}
	return resultcache.NewKey(cacheKindSoak, base, fault)
}

// UseCache attaches a result cache to the source: Job/Jobs wrap every
// runner in a cache lookup (with singleflight collapsing), so a job
// whose key is cached journals the cached bytes without executing.
// Because the cache stores the exact bytes the runner would have
// produced, campaign reports stay byte-identical either way. A nil
// cache is a no-op.
func (s *JobSource) UseCache(c *resultcache.Cache) error {
	if c == nil {
		return nil
	}
	keys := make(map[string]resultcache.Key, len(s.IDs))
	switch s.Kind {
	case KindSweep:
		for _, st := range s.structures {
			for _, w := range s.suite {
				k, err := evaluateCacheKey(w.Name, st, *s.SweepOpts)
				if err != nil {
					return err
				}
				keys[sweepJobID(w.Name, st)] = k
			}
		}
	case KindSoak:
		for _, st := range s.SoakStructures {
			opts := *s.SoakOpts
			opts.Structure = st
			for t := 0; t < s.SoakOpts.Trials; t++ {
				k, err := soakCacheKey(opts, st, t)
				if err != nil {
					return err
				}
				keys[soakJobID(st, t)] = k
			}
		}
	default:
		return fmt.Errorf("experiments: UseCache on a %s source", s.Kind)
	}
	s.cache = c
	s.keys = keys
	return nil
}

// CacheKey returns the cache key of one job ID (valid only after
// UseCache).
func (s *JobSource) CacheKey(id string) (resultcache.Key, bool) {
	k, ok := s.keys[id]
	return k, ok
}

// CachedResult consults the cache (both tiers, no compute) for one job
// and, on a hit, synthesizes the finished result exactly as a fresh
// first-attempt run would have journaled it. The fabric coordinator
// uses this to merge hits instantly instead of placing the job on a
// worker.
func (s *JobSource) CachedResult(id string) (campaign.Result[json.RawMessage], bool) {
	if s.cache == nil {
		return campaign.Result[json.RawMessage]{}, false
	}
	k, ok := s.keys[id]
	if !ok {
		return campaign.Result[json.RawMessage]{}, false
	}
	v, ok := s.cache.Get(k)
	if !ok {
		return campaign.Result[json.RawMessage]{}, false
	}
	return campaign.Result[json.RawMessage]{
		ID:       id,
		Status:   campaign.StatusDone,
		Attempts: 1,
		Value:    json.RawMessage(v),
	}, true
}

// cachedRun wraps one job runner in the cache: lookup (or collapse
// onto an identical in-flight run), compute on miss, store. The bytes
// returned are the runner's own marshaling either way.
func (s *JobSource) cachedRun(k resultcache.Key, run func(context.Context) (json.RawMessage, error)) func(context.Context) (json.RawMessage, error) {
	return func(ctx context.Context) (json.RawMessage, error) {
		v, _, err := s.cache.GetOrCompute(ctx, k, func(cctx context.Context) ([]byte, error) {
			return run(cctx)
		})
		return v, err
	}
}

// EvaluateCached is EvaluateCachedContext with a background context.
func EvaluateCached(c *resultcache.Cache, name string, structure core.Structure, opts Options) (Outcome, bool, error) {
	return EvaluateCachedContext(context.Background(), c, name, structure, opts)
}

// EvaluateCachedContext evaluates one workload × structure through the
// result cache: a hit (or a collapse onto a concurrent identical
// evaluation) decodes the cached bytes instead of running the
// pipeline. The returned Outcome is the JSON round-trip of the
// uncached one — byte-identical when re-marshaled — except that
// Profile (excluded from JSON by design) is nil on hits. The second
// return reports whether the cache satisfied the call. A nil cache
// degrades to EvaluateByNameContext.
func EvaluateCachedContext(ctx context.Context, c *resultcache.Cache, name string, structure core.Structure, opts Options) (Outcome, bool, error) {
	if c == nil {
		out, err := EvaluateByNameContext(ctx, name, structure, opts)
		return out, false, err
	}
	opts = opts.normalize()
	k, err := evaluateCacheKey(name, structure, opts)
	if err != nil {
		return Outcome{}, false, err
	}
	v, hit, err := c.GetOrCompute(ctx, k, func(cctx context.Context) ([]byte, error) {
		out, err := EvaluateByNameContext(cctx, name, structure, opts)
		if err != nil {
			return nil, err
		}
		return json.Marshal(out)
	})
	if err != nil {
		return Outcome{}, false, err
	}
	var out Outcome
	if err := json.Unmarshal(v, &out); err != nil {
		return Outcome{}, false, fmt.Errorf("experiments: decode cached outcome: %w", err)
	}
	return out, hit, nil
}

package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"ftspm/internal/core"
	"ftspm/internal/resultcache"
	"ftspm/internal/spm"
)

func newTestCache(t *testing.T) *resultcache.Cache {
	t.Helper()
	c, err := resultcache.Open(resultcache.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// The PR's equivalence invariant for sweeps: an uncached run, a
// cold-cache run, and a warm-cache run of the same campaign marshal to
// byte-identical artifacts, and the warm run is all hits.
func TestSweepCacheEquivalence(t *testing.T) {
	opts := Options{Scale: 0.02}
	ctx := context.Background()

	plain, status, err := RunSweepCampaign(ctx, opts, CampaignConfig{})
	if err != nil || status.Failed != 0 {
		t.Fatalf("uncached sweep: %v (status %+v)", err, status)
	}
	want, err := json.Marshal(plain)
	if err != nil {
		t.Fatal(err)
	}

	c := newTestCache(t)
	cold, _, err := RunSweepCampaign(ctx, opts, CampaignConfig{Cache: c})
	if err != nil {
		t.Fatalf("cold cached sweep: %v", err)
	}
	coldB, _ := json.Marshal(cold)
	if !bytes.Equal(want, coldB) {
		t.Fatal("cold cached sweep diverges from uncached sweep")
	}
	s := c.Stats()
	if s.Hits != 0 || s.Misses == 0 {
		t.Fatalf("cold stats = %+v, want all misses", s)
	}

	warm, _, err := RunSweepCampaign(ctx, opts, CampaignConfig{Cache: c})
	if err != nil {
		t.Fatalf("warm cached sweep: %v", err)
	}
	warmB, _ := json.Marshal(warm)
	if !bytes.Equal(want, warmB) {
		t.Fatal("warm cached sweep diverges from uncached sweep")
	}
	jobs := len(core.Structures()) * len(plain.Workloads)
	if s2 := c.Stats(); s2.Hits != uint64(jobs) {
		t.Fatalf("warm stats = %+v, want %d hits", s2, jobs)
	}

	// Single evaluations share the sweep's key space: an evaluate of
	// any pair the sweep covered is a hit with re-marshaled bytes equal
	// to the sweep's cell.
	name := plain.Workloads[0]
	st := core.Structures()[0]
	out, hit, err := EvaluateCachedContext(ctx, c, name, st, opts)
	if err != nil || !hit {
		t.Fatalf("evaluate after sweep: hit=%v err=%v", hit, err)
	}
	cell, err := plain.Get(name, st)
	if err != nil {
		t.Fatal(err)
	}
	ob, _ := json.Marshal(out)
	cb, _ := json.Marshal(cell)
	if !bytes.Equal(ob, cb) {
		t.Fatal("cached evaluate diverges from the sweep cell")
	}
}

// Same invariant for soaks, plus the bypass rule: a campaign whose
// fault/wear/recovery model differs from the cached one records
// bypasses and recomputes — never a false hit.
func TestSoakCacheEquivalenceAndBypass(t *testing.T) {
	rec := spm.DefaultRecovery()
	opts := SoakOptions{
		Workload: "sha", Trials: 4, Scale: 0.02,
		StrikesPerAccess: 0.01, Seed: 7, Recovery: &rec,
	}
	structures := []core.Structure{core.StructFTSPM}
	ctx := context.Background()

	plain, status, err := RunSoakCampaign(ctx, opts, structures, CampaignConfig{})
	if err != nil || status.Failed != 0 {
		t.Fatalf("uncached soak: %v (status %+v)", err, status)
	}
	want, _ := json.Marshal(plain)

	c := newTestCache(t)
	for _, cfg := range []CampaignConfig{{Cache: c}, {Cache: c}} {
		got, _, err := RunSoakCampaign(ctx, opts, structures, cfg)
		if err != nil {
			t.Fatalf("cached soak: %v", err)
		}
		gotB, _ := json.Marshal(got)
		if !bytes.Equal(want, gotB) {
			t.Fatal("cached soak diverges from uncached soak")
		}
	}
	s := c.Stats()
	if s.Hits != uint64(opts.Trials) || s.Misses != uint64(opts.Trials) {
		t.Fatalf("stats = %+v, want %d hits and %d misses", s, opts.Trials, opts.Trials)
	}

	// Different strike rate: same problem, different fault model.
	hotter := opts
	hotter.StrikesPerAccess = 0.02
	if _, _, err := RunSoakCampaign(ctx, hotter, structures, CampaignConfig{Cache: c}); err != nil {
		t.Fatalf("bypass soak: %v", err)
	}
	s = c.Stats()
	if s.Bypasses != uint64(opts.Trials) {
		t.Fatalf("stats = %+v, want %d bypasses", s, opts.Trials)
	}
	if s.Hits != uint64(opts.Trials) {
		t.Fatalf("stats = %+v: a fault-model change must never hit", s)
	}

	// Different recovery policy: also a bypass, even at equal rates.
	rb := rec
	rb.MaxRefetchRetries++
	differentRecovery := opts
	differentRecovery.Recovery = &rb
	if _, _, err := RunSoakCampaign(ctx, differentRecovery, structures, CampaignConfig{Cache: c}); err != nil {
		t.Fatalf("recovery-bypass soak: %v", err)
	}
	if s2 := c.Stats(); s2.Bypasses != s.Bypasses+uint64(opts.Trials) {
		t.Fatalf("stats = %+v, want %d more bypasses", s2, opts.Trials)
	}

	// A larger campaign with the same models reuses the smaller one's
	// trials: trial identity excludes the trial count.
	bigger := opts
	bigger.Trials = 6
	if _, _, err := RunSoakCampaign(ctx, bigger, structures, CampaignConfig{Cache: c}); err != nil {
		t.Fatalf("bigger soak: %v", err)
	}
	if s2 := c.Stats(); s2.Hits < uint64(opts.Trials)+uint64(opts.Trials) {
		t.Fatalf("stats = %+v: trial-count change lost the shared trials", s2)
	}
}

// CachedResult synthesizes exactly the record a fresh first-attempt
// run journals, so a fabric pre-merge hit is indistinguishable from a
// locally-run job.
func TestCachedResultMatchesFreshRun(t *testing.T) {
	opts := Options{Scale: 0.02}
	c := newTestCache(t)
	ctx := context.Background()
	if _, _, err := RunSweepCampaign(ctx, opts, CampaignConfig{Cache: c}); err != nil {
		t.Fatal(err)
	}
	src, err := SweepSource(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := src.UseCache(c); err != nil {
		t.Fatal(err)
	}
	id := src.IDs[0]
	res, ok := src.CachedResult(id)
	if !ok {
		t.Fatalf("no cached result for %s after a cached sweep", id)
	}
	job, err := src.Job(id)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := job.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Value, fresh) {
		t.Fatal("cached result bytes diverge from a fresh run")
	}
	if res.ID != id || res.Attempts != 1 {
		t.Fatalf("synthesized record %+v, want first-attempt shape", res)
	}
}

package experiments

import (
	"time"

	"ftspm/internal/campaign"
	"ftspm/internal/resultcache"
)

// This file holds the shared configuration and status types of the
// crash-safe campaign layer (internal/campaign) that both the sweep and
// the soak engines run on. The division of labour: internal/campaign
// owns job scheduling, panic isolation, retries, deadlines, the
// checkpoint journal, and graceful drain; this package owns job
// identity (deterministic IDs + a config hash over the normalized
// experiment options) and the domain-specific aggregation of job
// results into Sweep / SoakReport values.

// CampaignConfig parameterizes the crash-safe runner under
// RunSweepCampaign and RunSoakCampaign. The zero value runs in-memory:
// no checkpoint, no retries, no deadline — exactly the behaviour of the
// plain RunSweep/RunSoak wrappers.
type CampaignConfig struct {
	// Checkpoint, when non-empty, journals each finished (workload,
	// structure[, trial]) job to this append-only JSONL file.
	Checkpoint string
	// Resume skips jobs already journaled in Checkpoint. The journal's
	// config hash must match the current options — a mismatch is a
	// hard error, never silent reuse.
	Resume bool
	// Workers bounds the worker pool (default GOMAXPROCS).
	Workers int
	// JobTimeout is the per-job context deadline (0 = none).
	JobTimeout time.Duration
	// Retries is the per-job retry budget after the first attempt;
	// once exhausted the job is recorded failed-permanent.
	Retries int
	// Backoff is the first retry's backoff, doubling per retry
	// (default 100ms).
	Backoff time.Duration
	// Cache, when non-nil, is the content-addressed result cache
	// consulted before each job runs (and filled by each miss). Cached
	// bytes are the exact bytes the job would have produced, so
	// reports and checkpoints stay byte-identical; see
	// internal/resultcache.
	Cache *resultcache.Cache

	// onJobDone is a test seam observing each finished job (used to
	// cancel mid-campaign in the crash-resume tests).
	onJobDone func(id string, status campaign.Status)
}

// Validate rejects inconsistent configurations.
func (c CampaignConfig) Validate() error {
	if c.Resume && c.Checkpoint == "" {
		return campaign.Usagef("resume requires a checkpoint path")
	}
	if c.Retries < 0 {
		return campaign.Usagef("retries must be >= 0 (got %d)", c.Retries)
	}
	if c.JobTimeout < 0 {
		return campaign.Usagef("job timeout must be >= 0 (got %v)", c.JobTimeout)
	}
	return nil
}

func (c CampaignConfig) runnerConfig(hash string) campaign.Config {
	return campaign.Config{
		Workers:        c.Workers,
		JobTimeout:     c.JobTimeout,
		Attempts:       c.Retries + 1,
		Backoff:        c.Backoff,
		CheckpointPath: c.Checkpoint,
		Resume:         c.Resume,
		ConfigHash:     hash,
		OnJobDone:      c.onJobDone,
	}
}

// JobFailure is one failed-permanent job, salvaged into reports.
type JobFailure struct {
	ID       string `json:"id"`
	Error    string `json:"error"`
	Stack    string `json:"stack,omitempty"`
	Attempts int    `json:"attempts"`

	// cause is the live error value (nil for checkpoint-resumed
	// failures, which only retain the text).
	cause error
}

// CampaignStatus summarizes a campaign run for salvage reporting.
type CampaignStatus struct {
	// Completed, Failed, and Resumed count finished jobs (Resumed is
	// the subset loaded from the checkpoint); Pending counts jobs the
	// drain left unrun.
	Completed int `json:"completed"`
	Failed    int `json:"failed"`
	Resumed   int `json:"resumed"`
	Pending   int `json:"pending"`
	// Incomplete marks a campaign drained before every job ran; the
	// pending jobs are retried on resume.
	Incomplete bool `json:"incomplete"`
	// Failures lists failed-permanent jobs in campaign order.
	Failures []JobFailure `json:"failures,omitempty"`
	// PendingIDs lists the unrun jobs.
	PendingIDs []string `json:"pending_ids,omitempty"`
	// Audit carries the integrity-audit summary of executors that
	// re-execute a fraction of finished jobs (the distributed fabric
	// with -audit-frac); nil otherwise.
	Audit *campaign.AuditSummary `json:"audit,omitempty"`
}

// FirstFailure returns the first failure's error value (its journaled
// text when the error value itself did not survive a resume).
func (s *CampaignStatus) FirstFailure() error {
	if len(s.Failures) == 0 {
		return nil
	}
	f := s.Failures[0]
	if f.cause != nil {
		return f.cause
	}
	return &resumedFailure{msg: f.Error}
}

type resumedFailure struct{ msg string }

func (e *resumedFailure) Error() string { return e.msg }

// statusOf flattens a campaign report, ordering failures by the
// campaign's job order so salvage output is deterministic.
func statusOf[R any](rep *campaign.Report[R], jobOrder []string) *CampaignStatus {
	st := &CampaignStatus{
		Completed:  rep.Completed,
		Failed:     rep.Failed,
		Resumed:    rep.Resumed,
		Pending:    len(rep.PendingIDs),
		Incomplete: rep.Incomplete(),
		PendingIDs: rep.PendingIDs,
		Audit:      rep.Audit,
	}
	for _, id := range jobOrder {
		r, ok := rep.Results[id]
		if !ok || r.Status != campaign.StatusFailed {
			continue
		}
		st.Failures = append(st.Failures, JobFailure{
			ID:       r.ID,
			Error:    r.Err,
			Stack:    r.Stack,
			Attempts: r.Attempts,
			cause:    r.Cause,
		})
	}
	return st
}

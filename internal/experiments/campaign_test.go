package experiments

import (
	"context"
	"encoding/json"
	"errors"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"ftspm/internal/campaign"
	"ftspm/internal/core"
)

// summaryBytes renders the sweep summary exactly as `ftspm-bench -json`
// does, so "byte-identical report" means the user-visible artifact.
func summaryBytes(t *testing.T, sw *Sweep) []byte {
	t.Helper()
	s, err := Summarize(sw)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := s.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	return []byte(b.String())
}

// TestSweepCrashResumeByteIdentical kills a checkpointed sweep after a
// handful of jobs, resumes it, and demands the final summary be
// byte-identical to an uninterrupted run — the tentpole guarantee.
func TestSweepCrashResumeByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite sweep")
	}
	opts := Options{Scale: 0.02}
	path := filepath.Join(t.TempDir(), "sweep.ckpt")

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := 0
	cc := CampaignConfig{Checkpoint: path, Workers: 2,
		onJobDone: func(string, campaign.Status) {
			if done++; done == 5 {
				cancel() // the "crash": drain after 5 finished jobs
			}
		}}
	sw1, st1, err := RunSweepCampaign(ctx, opts, cc)
	if !errors.Is(err, campaign.ErrIncomplete) {
		t.Fatalf("interrupted run: err = %v, want ErrIncomplete", err)
	}
	if sw1 == nil || !st1.Incomplete || st1.Pending == 0 {
		t.Fatalf("interrupted run salvaged nothing: %+v", st1)
	}
	if st1.Completed == 0 {
		t.Fatal("interrupted run journaled no jobs")
	}

	// Resume: journaled jobs are skipped, the rest run, the report is
	// complete.
	sw2, st2, err := RunSweepCampaign(context.Background(), opts,
		CampaignConfig{Checkpoint: path, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if st2.Resumed != st1.Completed {
		t.Errorf("resumed %d jobs, journal held %d", st2.Resumed, st1.Completed)
	}
	if st2.Incomplete || st2.Failed > 0 {
		t.Fatalf("resumed run not clean: %+v", st2)
	}

	uninterrupted, err := RunSweepContext(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	got, want := summaryBytes(t, sw2), summaryBytes(t, uninterrupted)
	if string(got) != string(want) {
		t.Fatalf("resumed summary differs from uninterrupted run:\n--- resumed ---\n%s\n--- uninterrupted ---\n%s", got, want)
	}
}

// TestSweepPanicIsolatedToOneJob injects a panic into exactly one
// (workload, structure) job and requires the rest of the campaign to
// complete, with the poisoned job recorded failed with its stack.
func TestSweepPanicIsolatedToOneJob(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite sweep")
	}
	const victim = "sha"
	sweepJobHook = func(w string, s core.Structure) {
		if w == victim && s == core.StructFTSPM {
			panic("injected sweep panic")
		}
	}
	defer func() { sweepJobHook = nil }()

	opts := Options{Scale: 0.02}
	sw, st, err := RunSweepCampaign(context.Background(), opts, CampaignConfig{})
	if err != nil {
		t.Fatalf("campaign error (panic escaped isolation?): %v", err)
	}
	if st.Failed != 1 || len(st.Failures) != 1 {
		t.Fatalf("want exactly one failure, got %+v", st)
	}
	f := st.Failures[0]
	if f.ID != "sweep/sha/FTSPM" {
		t.Errorf("failed job ID = %q", f.ID)
	}
	if !strings.Contains(f.Error, "injected sweep panic") {
		t.Errorf("failure error %q does not name the panic", f.Error)
	}
	if !strings.Contains(f.Stack, "runSweepJob") {
		t.Errorf("failure stack does not reach the job body:\n%s", f.Stack)
	}
	if sw.Has(victim, core.StructFTSPM) {
		t.Error("poisoned cell reported an outcome")
	}
	// Every other cell completed, including the victim workload on the
	// other structures (the panic fired before profiling, so the shared
	// profile was computed by a healthy job).
	for _, w := range sw.Workloads {
		for _, s := range core.Structures() {
			if w == victim && s == core.StructFTSPM {
				continue
			}
			if !sw.Has(w, s) {
				t.Errorf("missing outcome %s/%v", w, s)
			}
		}
	}
}

func soakTestOptions() SoakOptions {
	return SoakOptions{
		Workload:         "crc32",
		Trials:           6,
		Scale:            0.02,
		StrikesPerAccess: 0.02,
		Seed:             7,
	}
}

// TestRunSoakCampaignMatchesRunSoak pins the refactor: the in-memory
// wrapper and the campaign path produce identical reports.
func TestRunSoakCampaignMatchesRunSoak(t *testing.T) {
	o := soakTestOptions()
	o.Structure = core.StructFTSPM
	want, err := RunSoak(o)
	if err != nil {
		t.Fatal(err)
	}
	got, st, err := RunSoakCampaign(context.Background(), o,
		[]core.Structure{core.StructFTSPM}, CampaignConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Failed != 0 || st.Incomplete {
		t.Fatalf("campaign not clean: %+v", st)
	}
	if !reflect.DeepEqual(got[0], want) {
		t.Fatalf("campaign report diverged:\n%+v\nvs\n%+v", got[0], want)
	}
}

// TestSoakCrashResumeByteIdentical is the soak-side byte-identical
// guarantee, across a multi-structure campaign sharing one checkpoint.
func TestSoakCrashResumeByteIdentical(t *testing.T) {
	structs := []core.Structure{core.StructFTSPM, core.StructPureSRAM}
	base := soakTestOptions()
	path := filepath.Join(t.TempDir(), "soak.ckpt")

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := 0
	cc := CampaignConfig{Checkpoint: path, Workers: 2,
		onJobDone: func(string, campaign.Status) {
			if done++; done == 3 {
				cancel()
			}
		}}
	_, st1, err := RunSoakCampaign(ctx, base, structs, cc)
	if !errors.Is(err, campaign.ErrIncomplete) {
		t.Fatalf("interrupted run: err = %v, want ErrIncomplete", err)
	}
	if st1.Completed == 0 || st1.Pending == 0 {
		t.Fatalf("unexpected interrupted status: %+v", st1)
	}

	resumed, st2, err := RunSoakCampaign(context.Background(), base, structs,
		CampaignConfig{Checkpoint: path, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if st2.Resumed != st1.Completed || st2.Incomplete {
		t.Fatalf("resume status: %+v (interrupted: %+v)", st2, st1)
	}

	uninterrupted, _, err := RunSoakCampaign(context.Background(), base, structs, CampaignConfig{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.MarshalIndent(resumed, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.MarshalIndent(uninterrupted, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("resumed reports differ from uninterrupted run:\n%s\nvs\n%s", got, want)
	}
}

// TestSoakResumeConfigMismatchRejected proves a checkpoint cannot be
// silently reused for a differently-configured campaign.
func TestSoakResumeConfigMismatchRejected(t *testing.T) {
	base := soakTestOptions()
	base.Trials = 2
	structs := []core.Structure{core.StructFTSPM}
	path := filepath.Join(t.TempDir(), "soak.ckpt")
	if _, _, err := RunSoakCampaign(context.Background(), base, structs,
		CampaignConfig{Checkpoint: path}); err != nil {
		t.Fatal(err)
	}
	base.Seed++ // any knob change must invalidate the journal
	_, _, err := RunSoakCampaign(context.Background(), base, structs,
		CampaignConfig{Checkpoint: path, Resume: true})
	if !errors.Is(err, campaign.ErrConfigHashMismatch) {
		t.Fatalf("err = %v, want ErrConfigHashMismatch", err)
	}
}

// TestCampaignConfigValidation covers the flag-combination rules the
// cmds rely on for their usage exit code.
func TestCampaignConfigValidation(t *testing.T) {
	if err := (CampaignConfig{Resume: true}).Validate(); !campaign.IsUsage(err) {
		t.Errorf("resume without checkpoint: err = %v, want usage error", err)
	}
	if err := (CampaignConfig{Retries: -1}).Validate(); !campaign.IsUsage(err) {
		t.Errorf("negative retries: err = %v, want usage error", err)
	}
	if err := (CampaignConfig{JobTimeout: -1}).Validate(); !campaign.IsUsage(err) {
		t.Errorf("negative timeout: err = %v, want usage error", err)
	}
	if err := (CampaignConfig{Checkpoint: "x", Resume: true, Retries: 2}).Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

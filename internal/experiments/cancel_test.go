package experiments

import (
	"context"
	"errors"
	"testing"
	"time"

	"ftspm/internal/core"
	"ftspm/internal/workloads"
)

// TestEvaluateContextCanceledReturnsPromptly pins the satellite
// requirement that a canceled evaluate stops the work, not just the
// caller: with a pre-canceled context the full pipeline must return a
// context error quickly instead of profiling and simulating the whole
// trace.
func TestEvaluateContextCanceledReturnsPromptly(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err := EvaluateByNameContext(ctx, workloads.CaseStudyName, core.StructFTSPM, Options{Scale: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrapped context.Canceled", err)
	}
	// The periodic check fires within a few thousand trace events;
	// generous bound so slow CI machines never flake.
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("canceled evaluate took %v, want prompt return", elapsed)
	}
}

// TestEvaluateContextDeadlineStopsMidPipeline drives a live deadline
// into the pipeline: a deadline far shorter than the full-scale run
// must surface context.DeadlineExceeded from whichever stage (profile
// or simulate) it lands in.
func TestEvaluateContextDeadlineStopsMidPipeline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := EvaluateByNameContext(ctx, workloads.CaseStudyName, core.StructFTSPM, Options{Scale: 4})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want wrapped context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("deadline-exceeded evaluate took %v, want prompt return", elapsed)
	}
}

// TestEvaluateBackgroundUnchanged guards against drift: the plain
// Evaluate path (background context) still completes and matches the
// ctx-threaded path bit-for-bit on the headline accounting.
func TestEvaluateBackgroundUnchanged(t *testing.T) {
	a, err := EvaluateByName(workloads.CaseStudyName, core.StructFTSPM, testOpts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EvaluateByNameContext(context.Background(), workloads.CaseStudyName, core.StructFTSPM, testOpts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Sim.Cycles != b.Sim.Cycles || a.Sim.Accesses != b.Sim.Accesses ||
		a.AVF.Vulnerability() != b.AVF.Vulnerability() {
		t.Fatalf("EvaluateContext drifted from Evaluate: %+v vs %+v", b.Sim, a.Sim)
	}
}

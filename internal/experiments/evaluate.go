// Package experiments contains one driver per table and figure of the
// paper's evaluation (see the experiment index in DESIGN.md §4). The
// drivers are shared by cmd/ftspm-bench, the examples, and the
// bench_test.go harness, so every reported number is regenerated through
// exactly one code path.
package experiments

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"ftspm/internal/avf"
	"ftspm/internal/core"
	"ftspm/internal/endurance"
	"ftspm/internal/faults"
	"ftspm/internal/profile"
	"ftspm/internal/sim"
	"ftspm/internal/spm"
	"ftspm/internal/trace"
	"ftspm/internal/workloads"
)

// Options parameterize an experiment run.
type Options struct {
	// Scale multiplies the reference trace length (1.0 = full length;
	// the default keeps full-suite sweeps in seconds).
	Scale float64
	// Thresholds are the MDA budgets.
	Thresholds core.Thresholds
	// Priority selects the MDA optimization target.
	Priority core.Priority
}

// DefaultOptions returns the settings used for the recorded results in
// EXPERIMENTS.md.
func DefaultOptions() Options {
	return Options{
		Scale:      0.25,
		Thresholds: core.DefaultThresholds(),
		Priority:   core.PriorityReliability,
	}
}

// normalize fills zero fields with defaults.
func (o Options) normalize() Options {
	def := DefaultOptions()
	if o.Scale <= 0 {
		o.Scale = def.Scale
	}
	if o.Thresholds == (core.Thresholds{}) {
		o.Thresholds = def.Thresholds
	}
	if !o.Priority.Valid() {
		o.Priority = def.Priority
	}
	return o
}

// Outcome is the full evaluation of one workload on one structure.
type Outcome struct {
	// Workload and Structure identify the run.
	Workload  string
	Structure core.Structure
	// Spec is the structure geometry.
	Spec core.Spec
	// Profile is the off-line profiling result.
	Profile *profile.Profile
	// Mapping is the MDA output.
	Mapping core.Mapping
	// Sim is the execution accounting.
	Sim sim.Result
	// AVF is the reliability report (per-block for the hybrid, uniform
	// for the single-region baselines, as in the paper — see avf docs).
	AVF avf.Report
	// STTWriteRate is the hottest STT-RAM cell's write rate in writes
	// per second (0 when the structure has no STT-RAM or no writes).
	STTWriteRate float64
}

// ErrUnknownWorkload re-exports workload resolution failures.
var ErrUnknownWorkload = workloads.ErrUnknownWorkload

// Evaluate runs the full pipeline — profile, MDA, simulate, AVF,
// endurance — for one workload on one structure. Both the profiler and
// the simulator consume streaming trace generators, so a single run
// never materializes the trace.
func Evaluate(w workloads.Workload, structure core.Structure, opts Options) (Outcome, error) {
	opts = opts.normalize()
	spec, err := core.NewSpec(structure)
	if err != nil {
		return Outcome{}, err
	}
	prof, err := profile.Run(w.Program(), w.TraceStream(opts.Scale))
	if err != nil {
		return Outcome{}, fmt.Errorf("experiments: profile %s: %w", w.Name, err)
	}
	return evaluateSpec(w, spec, prof, opts)
}

// evaluateSpec is the Evaluate body for a pre-computed profile and a
// possibly-customized structure spec (used by the ablation studies).
// The simulated trace is regenerated as a stream.
func evaluateSpec(w workloads.Workload, spec core.Spec, prof *profile.Profile, opts Options) (Outcome, error) {
	return evaluateSpecStream(w, spec, prof, w.TraceStream(opts.normalize().Scale), opts)
}

// evaluateSpecStream is the shared evaluation body: everything after
// profiling, consuming the simulated trace from the given stream. The
// sweep engine passes replay streams over one shared materialized
// trace; the single-run paths pass fresh generators. Profiles are only
// read here, so one profile may back any number of concurrent calls.
func evaluateSpecStream(w workloads.Workload, spec core.Spec, prof *profile.Profile,
	st trace.Stream, opts Options) (Outcome, error) {
	opts = opts.normalize()
	structure := spec.Structure
	mapping, err := core.MapBlocks(prof, spec, opts.Thresholds, opts.Priority)
	if err != nil {
		return Outcome{}, fmt.Errorf("experiments: map %s/%v: %w", w.Name, structure, err)
	}
	machine, err := sim.New(w.Program(), spec.SimConfig(mapping.Placement))
	if err != nil {
		return Outcome{}, fmt.Errorf("experiments: build %s/%v: %w", w.Name, structure, err)
	}
	res, err := machine.Run(st)
	if err != nil {
		return Outcome{}, fmt.Errorf("experiments: run %s/%v: %w", w.Name, structure, err)
	}

	mode := avf.ModeUniform
	if len(spec.DataKinds) > 1 {
		mode = avf.ModePerBlock
	}
	// Occupancy is normalized over the data-SPM surface: the mapping
	// algorithm distributes data blocks over it, and in the structures
	// with STT-RAM I-SPMs the instruction side is immune anyway.
	rep, err := avf.Compute(prof, mapping.Placement, faults.Dist40nm, spec.DSPMBytes(), mode)
	if err != nil {
		return Outcome{}, fmt.Errorf("experiments: avf %s/%v: %w", w.Name, structure, err)
	}

	var rate float64
	if _, hasSTT := machine.DataSPM().RegionByKind(spm.RegionSTT); hasSTT {
		dataRate, err := endurance.MaxCellWriteRate(machine.DataSPM(), res.Cycles, spm.RegionSTT)
		if err != nil && !errors.Is(err, endurance.ErrNoExecution) {
			return Outcome{}, err
		}
		rate = dataRate
	}

	return Outcome{
		Workload:     w.Name,
		Structure:    structure,
		Spec:         spec,
		Profile:      prof,
		Mapping:      mapping,
		Sim:          res,
		AVF:          rep,
		STTWriteRate: rate,
	}, nil
}

// EvaluateByName resolves the workload by name and evaluates it.
func EvaluateByName(name string, structure core.Structure, opts Options) (Outcome, error) {
	w, err := workloads.ByName(name)
	if err != nil {
		return Outcome{}, err
	}
	return Evaluate(w, structure, opts)
}

// Sweep evaluates the full MiBench-substitute suite on all three
// structures. Outcomes are indexed [workload][structure in
// core.Structures() order].
type Sweep struct {
	// Workloads lists the evaluated workload names in order.
	Workloads []string
	// Outcomes holds one row per workload, one column per structure in
	// core.Structures() order (pure SRAM, pure STT, FTSPM).
	Outcomes [][]Outcome
	// Options records the sweep settings.
	Options Options
}

// RunSweep evaluates the suite. See RunSweepContext.
func RunSweep(opts Options) (*Sweep, error) {
	return RunSweepContext(context.Background(), opts)
}

// sharedWorkload is the once-per-workload state of a sweep: the
// materialized trace and its profile, computed by whichever worker
// reaches the workload first and read-shared by the structure runs.
// remaining counts the structure runs still owing a replay; the last
// one drops the trace so at most a worker-pool's worth of traces is
// ever live.
type sharedWorkload struct {
	once      sync.Once
	events    []trace.Event
	prof      *profile.Profile
	err       error
	remaining atomic.Int32
}

// RunSweepContext evaluates the full suite on all structures. The
// profile and trace of each (workload, scale) depend only on the
// seeded generator, never on the structure, so each workload is
// profiled exactly once and its trace is materialized exactly once;
// the (workload, structure) simulations fan out over a bounded worker
// pool, replaying the shared trace. Results are deterministic
// regardless of scheduling (every generator is seeded, shared state is
// read-only, and each run owns its machine). On the first error the
// context is cancelled, outstanding jobs are abandoned, and the error
// — wrapped with the failing (workload, structure) pair — is returned.
func RunSweepContext(ctx context.Context, opts Options) (*Sweep, error) {
	opts = opts.normalize()
	suite := workloads.Suite()
	structures := core.Structures()
	sw := &Sweep{Options: opts}
	sw.Workloads = make([]string, len(suite))
	sw.Outcomes = make([][]Outcome, len(suite))
	shares := make([]sharedWorkload, len(suite))
	for i, w := range suite {
		sw.Workloads[i] = w.Name
		sw.Outcomes[i] = make([]Outcome, len(structures))
		shares[i].remaining.Store(int32(len(structures)))
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	type job struct{ wi, si int }
	jobs := make(chan job)
	workers := runtime.GOMAXPROCS(0)
	if workers > len(suite)*len(structures) {
		workers = len(suite) * len(structures)
	}
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			cancel()
		})
	}
	for n := 0; n < workers; n++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				if ctx.Err() != nil {
					continue
				}
				w := suite[j.wi]
				sh := &shares[j.wi]
				sh.once.Do(func() {
					sh.events = w.TraceEvents(opts.Scale)
					sh.prof, sh.err = profile.Run(w.Program(), trace.Replay(sh.events))
					if sh.err != nil {
						sh.err = fmt.Errorf("experiments: profile %s: %w", w.Name, sh.err)
					}
				})
				if sh.err != nil {
					fail(sh.err)
					continue
				}
				spec, err := core.NewSpec(structures[j.si])
				if err != nil {
					fail(fmt.Errorf("experiments: sweep %s/%v: %w", w.Name, structures[j.si], err))
					continue
				}
				out, err := evaluateSpecStream(w, spec, sh.prof, trace.Replay(sh.events), opts)
				if err != nil {
					fail(fmt.Errorf("experiments: sweep %s/%v: %w", w.Name, structures[j.si], err))
					continue
				}
				sw.Outcomes[j.wi][j.si] = out
				if sh.remaining.Add(-1) == 0 {
					sh.events = nil // last replay done; release the trace
				}
			}
		}()
	}
	// Structure-major order spreads the once-per-workload profiling over
	// distinct workers instead of serializing them on one sync.Once.
	go func() {
		defer close(jobs)
		for si := range structures {
			for wi := range suite {
				select {
				case jobs <- job{wi: wi, si: si}:
				case <-ctx.Done():
					return
				}
			}
		}
	}()
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return sw, nil
}

// Get returns the outcome for a workload/structure pair.
func (s *Sweep) Get(workload string, structure core.Structure) (Outcome, error) {
	for i, name := range s.Workloads {
		if name != workload {
			continue
		}
		for _, out := range s.Outcomes[i] {
			if out.Structure == structure {
				return out, nil
			}
		}
	}
	return Outcome{}, fmt.Errorf("experiments: no outcome for %s/%v", workload, structure)
}

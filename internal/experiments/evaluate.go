// Package experiments contains one driver per table and figure of the
// paper's evaluation (see the experiment index in DESIGN.md §4). The
// drivers are shared by cmd/ftspm-bench, the examples, and the
// bench_test.go harness, so every reported number is regenerated through
// exactly one code path.
package experiments

import (
	"context"
	"errors"
	"fmt"

	"ftspm/internal/avf"
	"ftspm/internal/core"
	"ftspm/internal/endurance"
	"ftspm/internal/faults"
	"ftspm/internal/profile"
	"ftspm/internal/sim"
	"ftspm/internal/spm"
	"ftspm/internal/trace"
	"ftspm/internal/workloads"
)

// Options parameterize an experiment run.
type Options struct {
	// Scale multiplies the reference trace length (1.0 = full length;
	// the default keeps full-suite sweeps in seconds).
	Scale float64
	// Thresholds are the MDA budgets.
	Thresholds core.Thresholds
	// Priority selects the MDA optimization target.
	Priority core.Priority
}

// DefaultOptions returns the settings used for the recorded results in
// EXPERIMENTS.md.
func DefaultOptions() Options {
	return Options{
		Scale:      0.25,
		Thresholds: core.DefaultThresholds(),
		Priority:   core.PriorityReliability,
	}
}

// normalize fills zero fields with defaults.
func (o Options) normalize() Options {
	def := DefaultOptions()
	if o.Scale <= 0 {
		o.Scale = def.Scale
	}
	if o.Thresholds == (core.Thresholds{}) {
		o.Thresholds = def.Thresholds
	}
	if !o.Priority.Valid() {
		o.Priority = def.Priority
	}
	return o
}

// Outcome is the full evaluation of one workload on one structure.
type Outcome struct {
	// Workload and Structure identify the run.
	Workload  string
	Structure core.Structure
	// Spec is the structure geometry.
	Spec core.Spec
	// Profile is the off-line profiling result. It is excluded from
	// JSON so checkpointed sweep records stay compact; consumers of
	// serialized outcomes (figures, summaries) never read it.
	Profile *profile.Profile `json:"-"`
	// Mapping is the MDA output.
	Mapping core.Mapping
	// Sim is the execution accounting.
	Sim sim.Result
	// AVF is the reliability report (per-block for the hybrid, uniform
	// for the single-region baselines, as in the paper — see avf docs).
	AVF avf.Report
	// STTWriteRate is the hottest STT-RAM cell's write rate in writes
	// per second (0 when the structure has no STT-RAM or no writes).
	STTWriteRate float64
}

// ErrUnknownWorkload re-exports workload resolution failures.
var ErrUnknownWorkload = workloads.ErrUnknownWorkload

// Evaluate runs the full pipeline — profile, MDA, simulate, AVF,
// endurance — for one workload on one structure. Both the profiler and
// the simulator consume streaming trace generators, so a single run
// never materializes the trace.
func Evaluate(w workloads.Workload, structure core.Structure, opts Options) (Outcome, error) {
	return EvaluateContext(context.Background(), w, structure, opts)
}

// EvaluateContext is Evaluate with cooperative cancellation: both the
// profiling and the simulation loops poll ctx every few thousand trace
// events, so a request deadline or client cancellation stops the work
// promptly instead of merely abandoning its result (errors.Is on the
// returned error sees the context error).
func EvaluateContext(ctx context.Context, w workloads.Workload, structure core.Structure, opts Options) (Outcome, error) {
	opts = opts.normalize()
	spec, err := core.NewSpec(structure)
	if err != nil {
		return Outcome{}, err
	}
	prof, err := profile.RunContext(ctx, w.Program(), w.TraceStream(opts.Scale))
	if err != nil {
		return Outcome{}, fmt.Errorf("experiments: profile %s: %w", w.Name, err)
	}
	return evaluateSpec(ctx, w, spec, prof, opts)
}

// evaluateSpec is the Evaluate body for a pre-computed profile and a
// possibly-customized structure spec (used by the ablation studies).
// The simulated trace is regenerated as a stream.
func evaluateSpec(ctx context.Context, w workloads.Workload, spec core.Spec, prof *profile.Profile, opts Options) (Outcome, error) {
	return evaluateSpecStream(ctx, w, spec, prof, w.TraceStream(opts.normalize().Scale), opts)
}

// evaluateSpecStream is the shared evaluation body: everything after
// profiling, consuming the simulated trace from the given stream. The
// sweep engine passes replay streams over one shared materialized
// trace; the single-run paths pass fresh generators. Profiles are only
// read here, so one profile may back any number of concurrent calls.
// The simulation loop polls ctx for cancellation (nil never cancels).
func evaluateSpecStream(ctx context.Context, w workloads.Workload, spec core.Spec, prof *profile.Profile,
	st trace.Stream, opts Options) (Outcome, error) {
	opts = opts.normalize()
	structure := spec.Structure
	mapping, err := core.MapBlocks(prof, spec, opts.Thresholds, opts.Priority)
	if err != nil {
		return Outcome{}, fmt.Errorf("experiments: map %s/%v: %w", w.Name, structure, err)
	}
	machine, err := sim.New(w.Program(), spec.SimConfig(mapping.Placement))
	if err != nil {
		return Outcome{}, fmt.Errorf("experiments: build %s/%v: %w", w.Name, structure, err)
	}
	res, err := machine.RunContext(ctx, st)
	if err != nil {
		return Outcome{}, fmt.Errorf("experiments: run %s/%v: %w", w.Name, structure, err)
	}

	mode := avf.ModeUniform
	if len(spec.DataKinds) > 1 {
		mode = avf.ModePerBlock
	}
	// Occupancy is normalized over the data-SPM surface: the mapping
	// algorithm distributes data blocks over it, and in the structures
	// with STT-RAM I-SPMs the instruction side is immune anyway.
	rep, err := avf.Compute(prof, mapping.Placement, faults.Dist40nm, spec.DSPMBytes(), mode)
	if err != nil {
		return Outcome{}, fmt.Errorf("experiments: avf %s/%v: %w", w.Name, structure, err)
	}

	var rate float64
	if _, hasSTT := machine.DataSPM().RegionByKind(spm.RegionSTT); hasSTT {
		dataRate, err := endurance.MaxCellWriteRate(machine.DataSPM(), res.Cycles, spm.RegionSTT)
		if err != nil && !errors.Is(err, endurance.ErrNoExecution) {
			return Outcome{}, err
		}
		rate = dataRate
	}

	return Outcome{
		Workload:     w.Name,
		Structure:    structure,
		Spec:         spec,
		Profile:      prof,
		Mapping:      mapping,
		Sim:          res,
		AVF:          rep,
		STTWriteRate: rate,
	}, nil
}

// EvaluateByName resolves the workload by name and evaluates it.
func EvaluateByName(name string, structure core.Structure, opts Options) (Outcome, error) {
	return EvaluateByNameContext(context.Background(), name, structure, opts)
}

// EvaluateByNameContext resolves the workload by name and evaluates it
// under ctx (see EvaluateContext).
func EvaluateByNameContext(ctx context.Context, name string, structure core.Structure, opts Options) (Outcome, error) {
	w, err := workloads.ByName(name)
	if err != nil {
		return Outcome{}, err
	}
	return EvaluateContext(ctx, w, structure, opts)
}

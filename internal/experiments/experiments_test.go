package experiments

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"ftspm/internal/core"
)

// testOpts keeps full-suite sweeps fast in the unit-test run; the bench
// harness uses DefaultOptions.
var testOpts = Options{Scale: 0.1}

var (
	sweepOnce sync.Once
	sweepVal  *Sweep
	sweepErr  error
)

// testSweep computes the suite sweep once per test binary.
func testSweep(t *testing.T) *Sweep {
	t.Helper()
	sweepOnce.Do(func() {
		sweepVal, sweepErr = RunSweep(testOpts)
	})
	if sweepErr != nil {
		t.Fatal(sweepErr)
	}
	return sweepVal
}

func TestOptionsNormalize(t *testing.T) {
	n := Options{}.normalize()
	def := DefaultOptions()
	if n.Scale != def.Scale || n.Thresholds != def.Thresholds || n.Priority != def.Priority {
		t.Errorf("normalize() = %+v", n)
	}
	keep := Options{Scale: 0.5, Thresholds: core.DefaultThresholds(), Priority: core.PriorityPower}
	if keep.normalize() != keep {
		t.Error("normalize clobbered explicit options")
	}
}

func TestEvaluateByNameUnknown(t *testing.T) {
	if _, err := EvaluateByName("nope", core.StructFTSPM, testOpts); err == nil {
		t.Error("unknown workload accepted")
	}
	if _, err := EvaluateByName("sha", core.Structure(0), testOpts); err == nil {
		t.Error("unknown structure accepted")
	}
}

func TestSweepShape(t *testing.T) {
	sw := testSweep(t)
	if len(sw.Workloads) != 12 || len(sw.Outcomes) != 12 {
		t.Fatalf("sweep shape: %d workloads", len(sw.Workloads))
	}
	for i, row := range sw.Outcomes {
		if len(row) != 3 {
			t.Fatalf("row %d has %d structures", i, len(row))
		}
	}
	if _, err := sw.Get("sha", core.StructFTSPM); err != nil {
		t.Error(err)
	}
	if _, err := sw.Get("nope", core.StructFTSPM); err == nil {
		t.Error("phantom workload resolved")
	}
}

func TestHeadlineVulnerability(t *testing.T) {
	// Fig. 5: the pure SRAM baseline is ~7x more vulnerable than FTSPM
	// (geometric mean over the suite), and the baseline is flat at 0.38.
	sw := testSweep(t)
	_, sum, err := Fig5(sw)
	if err != nil {
		t.Fatal(err)
	}
	if sum.GeoMeanRatio < 4 || sum.GeoMeanRatio > 15 {
		t.Errorf("vulnerability improvement = %.1fx, want ~7x (paper)", sum.GeoMeanRatio)
	}
	for _, name := range sw.Workloads {
		sram, err := sw.Get(name, core.StructPureSRAM)
		if err != nil {
			t.Fatal(err)
		}
		if v := sram.AVF.Vulnerability(); v < 0.379 || v > 0.381 {
			t.Errorf("%s: baseline vulnerability = %v, want flat 0.38", name, v)
		}
		ft, err := sw.Get(name, core.StructFTSPM)
		if err != nil {
			t.Fatal(err)
		}
		if ft.AVF.Vulnerability() >= sram.AVF.Vulnerability() {
			t.Errorf("%s: FTSPM not less vulnerable", name)
		}
		stt, err := sw.Get(name, core.StructPureSTT)
		if err != nil {
			t.Fatal(err)
		}
		if stt.AVF.Vulnerability() != 0 {
			t.Errorf("%s: pure STT-RAM vulnerability = %v, want 0", name, stt.AVF.Vulnerability())
		}
	}
}

func TestHeadlineDynamicEnergy(t *testing.T) {
	// Fig. 7: FTSPM dynamic energy ~47% below pure SRAM and well below
	// pure STT-RAM (paper: 77% below; our suite is more read-dominated,
	// see EXPERIMENTS.md).
	sw := testSweep(t)
	_, vsSRAM, vsSTT, err := Fig7(sw)
	if err != nil {
		t.Fatal(err)
	}
	if vsSRAM < 0.35 || vsSRAM > 0.65 {
		t.Errorf("FTSPM/SRAM dynamic = %.2f, want ~0.53", vsSRAM)
	}
	if vsSTT > 0.55 {
		t.Errorf("FTSPM/STT dynamic = %.2f, want well below 1 (paper 0.23)", vsSTT)
	}
}

func TestHeadlineStaticEnergy(t *testing.T) {
	// Fig. 6: FTSPM static energy roughly half the pure SRAM SPM's;
	// pure STT-RAM lowest.
	sw := testSweep(t)
	_, vsSRAM, vsSTT, err := Fig6(sw)
	if err != nil {
		t.Fatal(err)
	}
	if vsSRAM < 0.30 || vsSRAM > 0.60 {
		t.Errorf("FTSPM/SRAM static = %.2f, want ~0.45-0.55", vsSRAM)
	}
	if vsSTT < 1 {
		t.Errorf("FTSPM/STT static = %.2f; pure STT-RAM must leak least", vsSTT)
	}
}

func TestHeadlinePerformance(t *testing.T) {
	// Section V: FTSPM performance overhead vs pure SRAM is negligible.
	sw := testSweep(t)
	_, ratio, err := PerfOverhead(sw)
	if err != nil {
		t.Fatal(err)
	}
	if ratio > 1.02 {
		t.Errorf("FTSPM/SRAM cycles = %.3f, want < 1.02 (paper: <1%% overhead)", ratio)
	}
}

func TestHeadlineEndurance(t *testing.T) {
	// Fig. 8: FTSPM extends STT-RAM lifetime by orders of magnitude on
	// every workload that wears STT-RAM at all.
	sw := testSweep(t)
	_, sum, err := Fig8(sw)
	if err != nil {
		t.Fatal(err)
	}
	if sum.GeoMeanRatio < 10 {
		t.Errorf("endurance improvement geo-mean = %.0fx, want >> 1", sum.GeoMeanRatio)
	}
	for i, r := range sum.Ratios {
		if r < 1 {
			t.Errorf("%s: FTSPM wears STT-RAM faster than the baseline (%.2fx)", sw.Workloads[i], r)
		}
	}
}

func TestCaseStudyScalars(t *testing.T) {
	// Section IV: reliability 86% vs 62%; dynamic energy 44% lower;
	// static 56% lower; negligible performance overhead.
	cs, err := CaseStudy(Options{Scale: 0.15})
	if err != nil {
		t.Fatal(err)
	}
	if cs.ReliabilityBaseline < 0.619 || cs.ReliabilityBaseline > 0.621 {
		t.Errorf("baseline reliability = %.3f, want 0.62", cs.ReliabilityBaseline)
	}
	if cs.ReliabilityFTSPM < 0.82 || cs.ReliabilityFTSPM > 0.95 {
		t.Errorf("FTSPM reliability = %.3f, want ~0.86-0.9", cs.ReliabilityFTSPM)
	}
	if cs.DynamicVsSRAM > 0.7 {
		t.Errorf("dynamic ratio = %.2f, want < 0.7 (paper 0.56)", cs.DynamicVsSRAM)
	}
	if cs.StaticVsSRAM < 0.30 || cs.StaticVsSRAM > 0.60 {
		t.Errorf("static ratio = %.2f, want ~0.44", cs.StaticVsSRAM)
	}
	if cs.PerfOverheadVsSRAM > 0.03 {
		t.Errorf("perf overhead = %.3f, want < 3%%", cs.PerfOverheadVsSRAM)
	}
}

func TestTableIRenders(t *testing.T) {
	tb, err := TableI(testOpts)
	if err != nil {
		t.Fatal(err)
	}
	out := tb.String()
	for _, name := range []string{"Main", "Mul", "Add", "Array1", "Array4", "Stack"} {
		if !strings.Contains(out, name) {
			t.Errorf("Table I missing %s", name)
		}
	}
}

func TestTableIIRenders(t *testing.T) {
	tb, err := TableII(testOpts)
	if err != nil {
		t.Fatal(err)
	}
	// Each block's row must land in the Table II region.
	wants := map[string]string{
		"Main":   "-",
		"Mul":    "STT-RAM",
		"Add":    "STT-RAM",
		"Array1": "SRAM(ECC)",
		"Array2": "STT-RAM",
		"Array3": "SRAM(ECC)",
		"Array4": "STT-RAM",
		"Stack":  "SRAM(parity)",
	}
	for _, line := range strings.Split(tb.String(), "\n") {
		fields := strings.Fields(line)
		if len(fields) < 3 {
			continue
		}
		if want, ok := wants[fields[0]]; ok {
			if fields[2] != want {
				t.Errorf("%s -> %s, want %s", fields[0], fields[2], want)
			}
			delete(wants, fields[0])
		}
	}
	if len(wants) > 0 {
		t.Errorf("Table II missing rows for %v:\n%s", wants, tb.String())
	}
}

func TestTableIIIImprovement(t *testing.T) {
	if testing.Short() {
		t.Skip("full-length trace")
	}
	res, tb, err := TableIII(testOpts)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: ~3 orders of magnitude (40 min -> 61 days is ~2200x).
	if res.Improvement() < 200 {
		t.Errorf("endurance improvement = %.0fx, want hundreds-to-thousands", res.Improvement())
	}
	if res.BaselineRate <= res.FTSPMRate {
		t.Error("baseline must wear faster")
	}
	if len(res.Rows) != 5 || !strings.Contains(tb.String(), "1e+12") {
		t.Errorf("Table III malformed:\n%s", tb.String())
	}
}

func TestTableIVAndFig3Render(t *testing.T) {
	tb, err := TableIV()
	if err != nil {
		t.Fatal(err)
	}
	out := tb.String()
	for _, want := range []string{"FTSPM", "pure-SRAM", "pure-STT-RAM", "12 KB", "2 KB", "16 KB"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table IV missing %q", want)
		}
	}
	f3, err := Fig3()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(f3.String(), "STT-RAM") || !strings.Contains(f3.String(), "pJ") {
		t.Error("Fig. 3 malformed")
	}
}

func TestFig2SharesSumToOne(t *testing.T) {
	tb, err := Fig2(testOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("Fig. 2 rows = %d, want 3 regions", len(tb.Rows))
	}
	// The STT region must dominate reads and the SRAM regions the
	// writes — the core of the paper's Fig. 2 story.
	if !strings.Contains(tb.String(), "STT-RAM") {
		t.Error("missing STT row")
	}
}

func TestFig4CoversSuite(t *testing.T) {
	sw := testSweep(t)
	tb, err := Fig4(sw)
	if err != nil {
		t.Fatal(err)
	}
	out := tb.String()
	for _, name := range sw.Workloads {
		if !strings.Contains(out, name) {
			t.Errorf("Fig. 4 missing %s", name)
		}
	}
}

func TestSummarizeJSON(t *testing.T) {
	sw := testSweep(t)
	s, err := Summarize(sw)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Runs) != 36 {
		t.Fatalf("runs = %d, want 36", len(s.Runs))
	}
	if s.Headlines.VulnerabilityImprovement < 4 {
		t.Error("headline missing")
	}
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded Summary
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("emitted JSON does not parse: %v", err)
	}
	if len(decoded.Runs) != 36 || decoded.Headlines.PerfVsSRAM == 0 {
		t.Error("JSON roundtrip lost data")
	}
	names := StructureNames()
	for _, r := range decoded.Runs {
		if _, ok := names[r.Structure]; !ok {
			t.Errorf("unknown structure string %q", r.Structure)
		}
		if r.Cycles == 0 || r.Workload == "" {
			t.Error("empty run record")
		}
	}
}

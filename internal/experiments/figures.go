package experiments

import (
	"fmt"

	"ftspm/internal/core"
	"ftspm/internal/memtech"
	"ftspm/internal/report"
	"ftspm/internal/spm"
	"ftspm/internal/workloads"
)

// dataKinds is the region order used in distribution tables.
var dataKinds = []spm.RegionKind{spm.RegionSTT, spm.RegionECC, spm.RegionParity}

// distributionRows appends per-region read/write shares of an outcome's
// data SPM to a table.
func distributionRows(t *report.Table, out Outcome) {
	var totalReads, totalWrites uint64
	for _, k := range dataKinds {
		if c, ok := out.Sim.DCtl.PerKind[k]; ok {
			totalReads += c.Reads
			totalWrites += c.Writes
		}
	}
	for _, k := range dataKinds {
		c, ok := out.Sim.DCtl.PerKind[k]
		if !ok {
			continue
		}
		readShare, writeShare := 0.0, 0.0
		if totalReads > 0 {
			readShare = float64(c.Reads) / float64(totalReads)
		}
		if totalWrites > 0 {
			writeShare = float64(c.Writes) / float64(totalWrites)
		}
		t.AddRow(
			out.Workload, k.String(),
			report.Count(int(c.Reads)), report.Count(int(c.Writes)),
			report.Pct(readShare), report.Pct(writeShare),
		)
	}
}

// Fig2 regenerates the case-study read/write distribution across the
// FTSPM regions (paper Fig. 2).
func Fig2(opts Options) (*report.Table, error) {
	out, err := EvaluateByName(workloads.CaseStudyName, core.StructFTSPM, opts)
	if err != nil {
		return nil, err
	}
	t := report.New(
		"Fig. 2: distribution of data-SPM read/write operations across the FTSPM structure (case study)",
		"Workload", "Region", "Reads", "Writes", "Read share", "Write share")
	distributionRows(t, out)
	return t, nil
}

// CaseStudyScalars are the Section IV headline numbers.
type CaseStudyScalars struct {
	// ReliabilityFTSPM and ReliabilityBaseline are the AVF-based
	// reliabilities (paper: 86% vs 62%).
	ReliabilityFTSPM, ReliabilityBaseline float64
	// DynamicVsSRAM is FTSPM dynamic energy relative to the baseline
	// SRAM SPM (paper: 0.56, i.e. 44% lower).
	DynamicVsSRAM float64
	// StaticVsSRAM is the static-energy ratio (paper: 0.44).
	StaticVsSRAM float64
	// PerfOverheadVsSRAM is FTSPM cycles over baseline SRAM cycles − 1
	// (paper: negligible).
	PerfOverheadVsSRAM float64
}

// CaseStudy computes the Section IV scalar results.
func CaseStudy(opts Options) (CaseStudyScalars, error) {
	ft, err := EvaluateByName(workloads.CaseStudyName, core.StructFTSPM, opts)
	if err != nil {
		return CaseStudyScalars{}, err
	}
	sram, err := EvaluateByName(workloads.CaseStudyName, core.StructPureSRAM, opts)
	if err != nil {
		return CaseStudyScalars{}, err
	}
	return CaseStudyScalars{
		ReliabilityFTSPM:    ft.AVF.Reliability(),
		ReliabilityBaseline: sram.AVF.Reliability(),
		DynamicVsSRAM:       float64(ft.Sim.SPMDynamicEnergy) / float64(sram.Sim.SPMDynamicEnergy),
		StaticVsSRAM:        float64(ft.Sim.SPMStaticEnergy) / float64(sram.Sim.SPMStaticEnergy),
		PerfOverheadVsSRAM:  float64(ft.Sim.Cycles)/float64(sram.Sim.Cycles) - 1,
	}, nil
}

// Fig3 regenerates the per-access dynamic-energy comparison (paper
// Fig. 3): read/write energy of every region of every structure.
func Fig3() (*report.Table, error) {
	t := report.New(
		"Fig. 3: dynamic energy per word access in different structures",
		"Structure", "Region", "Size", "Read energy", "Write energy")
	for _, s := range core.Structures() {
		spec, err := core.NewSpec(s)
		if err != nil {
			return nil, err
		}
		for _, rc := range spec.DSPM {
			bank, err := memtech.EstimateBank(rc.Kind.Technology(), rc.Kind.Protection(), rc.SizeBytes)
			if err != nil {
				return nil, err
			}
			t.AddRow(
				s.String(), rc.Kind.String(),
				fmt.Sprintf("%d KB", rc.SizeBytes/1024),
				bank.ReadEnergy.String(), bank.WriteEnergy.String(),
			)
		}
	}
	return t, nil
}

// Fig4 regenerates the per-benchmark read/write distribution across the
// FTSPM regions (paper Fig. 4).
func Fig4(sw *Sweep) (*report.Table, error) {
	t := report.New(
		"Fig. 4: distribution of data-SPM read/write operations across the FTSPM structure, per benchmark",
		"Workload", "Region", "Reads", "Writes", "Read share", "Write share")
	for _, name := range sw.Workloads {
		out, err := sw.Get(name, core.StructFTSPM)
		if err != nil {
			return nil, err
		}
		distributionRows(t, out)
	}
	return t, nil
}

// Fig5Summary aggregates the vulnerability comparison.
type Fig5Summary struct {
	// Ratios holds the per-workload baseline/FTSPM vulnerability
	// ratios.
	Ratios []float64
	// GeoMeanRatio is the headline improvement (paper: ~7x).
	GeoMeanRatio float64
}

// Fig5 regenerates the vulnerability comparison (paper Fig. 5): FTSPM
// versus the pure SEC-DED SRAM baseline, per benchmark. The pure
// STT-RAM structure is immune (vulnerability 0) and omitted, exactly as
// in the paper.
func Fig5(sw *Sweep) (*report.Table, Fig5Summary, error) {
	t := report.New(
		"Fig. 5: SPM vulnerability (SDC+DUE AVF), FTSPM vs pure SRAM baseline",
		"Workload", "Pure SRAM", "FTSPM", "Improvement")
	var sum Fig5Summary
	for _, name := range sw.Workloads {
		sram, err := sw.Get(name, core.StructPureSRAM)
		if err != nil {
			return nil, sum, err
		}
		ft, err := sw.Get(name, core.StructFTSPM)
		if err != nil {
			return nil, sum, err
		}
		ratio := sram.AVF.Vulnerability() / ft.AVF.Vulnerability()
		sum.Ratios = append(sum.Ratios, ratio)
		t.AddRow(
			name,
			report.Float(sram.AVF.Vulnerability(), 4),
			report.Float(ft.AVF.Vulnerability(), 4),
			report.Float(ratio, 1)+"x",
		)
	}
	sum.GeoMeanRatio = report.GeoMean(sum.Ratios)
	t.AddRow("geo-mean", "", "", report.Float(sum.GeoMeanRatio, 1)+"x")
	return t, sum, nil
}

// energyFig builds a per-workload, per-structure energy table and
// returns the FTSPM/pure-SRAM and FTSPM/pure-STT aggregate ratios
// (ratio of totals, matching the paper's whole-suite percentages).
func energyFig(sw *Sweep, title string, value func(Outcome) float64) (*report.Table, float64, float64, error) {
	t := report.New(title, "Workload", "Pure SRAM", "Pure STT-RAM", "FTSPM",
		"FTSPM/SRAM", "FTSPM/STT")
	var totSRAM, totSTT, totFT float64
	for _, name := range sw.Workloads {
		sram, err := sw.Get(name, core.StructPureSRAM)
		if err != nil {
			return nil, 0, 0, err
		}
		stt, err := sw.Get(name, core.StructPureSTT)
		if err != nil {
			return nil, 0, 0, err
		}
		ft, err := sw.Get(name, core.StructFTSPM)
		if err != nil {
			return nil, 0, 0, err
		}
		vs, vt, vf := value(sram), value(stt), value(ft)
		totSRAM += vs
		totSTT += vt
		totFT += vf
		t.AddRow(name,
			report.Energy(vs), report.Energy(vt), report.Energy(vf),
			report.Float(vf/vs, 2), report.Float(vf/vt, 2))
	}
	rS, rT := totFT/totSRAM, totFT/totSTT
	t.AddRow("total", report.Energy(totSRAM), report.Energy(totSTT), report.Energy(totFT),
		report.Float(rS, 2), report.Float(rT, 2))
	return t, rS, rT, nil
}

// Fig6 regenerates the static-energy comparison (paper Fig. 6). It
// returns the FTSPM/pure-SRAM and FTSPM/pure-STT total ratios.
func Fig6(sw *Sweep) (*report.Table, float64, float64, error) {
	return energyFig(sw,
		"Fig. 6: SPM static energy per benchmark (leakage x execution time)",
		func(o Outcome) float64 { return float64(o.Sim.SPMStaticEnergy) * 1e9 }) // mJ -> pJ
}

// Fig7 regenerates the dynamic-energy comparison (paper Fig. 7: FTSPM
// 47% below pure SRAM, 77% below pure STT-RAM). It returns the
// FTSPM/pure-SRAM and FTSPM/pure-STT total ratios.
func Fig7(sw *Sweep) (*report.Table, float64, float64, error) {
	return energyFig(sw,
		"Fig. 7: SPM dynamic energy per benchmark",
		func(o Outcome) float64 { return float64(o.Sim.SPMDynamicEnergy) })
}

// Fig8 regenerates the endurance comparison (paper Fig. 8): the hottest
// STT-RAM cell's write rate under the pure STT-RAM baseline and FTSPM,
// and the lifetime improvement, per benchmark.
func Fig8(sw *Sweep) (*report.Table, Fig5Summary, error) {
	t := report.New(
		"Fig. 8: STT-RAM endurance, pure STT-RAM baseline vs FTSPM (hottest-cell write rate, writes/s)",
		"Workload", "Pure STT-RAM", "FTSPM", "Lifetime improvement")
	var sum Fig5Summary
	for _, name := range sw.Workloads {
		stt, err := sw.Get(name, core.StructPureSTT)
		if err != nil {
			return nil, sum, err
		}
		ft, err := sw.Get(name, core.StructFTSPM)
		if err != nil {
			return nil, sum, err
		}
		ratio := stt.STTWriteRate / ft.STTWriteRate
		sum.Ratios = append(sum.Ratios, ratio)
		improvement := report.Float(ratio, 0) + "x"
		if ft.STTWriteRate == 0 {
			improvement = "unlimited"
		}
		t.AddRow(name,
			report.Float(stt.STTWriteRate, 0),
			report.Float(ft.STTWriteRate, 0),
			improvement)
	}
	sum.GeoMeanRatio = report.GeoMean(sum.Ratios)
	t.AddRow("geo-mean", "", "", report.Float(sum.GeoMeanRatio, 0)+"x")
	return t, sum, nil
}

// PerfOverhead regenerates the Section V performance claim: FTSPM
// execution time relative to the pure SRAM baseline, per benchmark. The
// returned aggregate is the ratio of total cycles.
func PerfOverhead(sw *Sweep) (*report.Table, float64, error) {
	t := report.New(
		"Performance: execution cycles, FTSPM vs baselines",
		"Workload", "Pure SRAM", "Pure STT-RAM", "FTSPM", "FTSPM/SRAM")
	var totSRAM, totSTT, totFT float64
	for _, name := range sw.Workloads {
		sram, err := sw.Get(name, core.StructPureSRAM)
		if err != nil {
			return nil, 0, err
		}
		stt, err := sw.Get(name, core.StructPureSTT)
		if err != nil {
			return nil, 0, err
		}
		ft, err := sw.Get(name, core.StructFTSPM)
		if err != nil {
			return nil, 0, err
		}
		totSRAM += float64(sram.Sim.Cycles)
		totSTT += float64(stt.Sim.Cycles)
		totFT += float64(ft.Sim.Cycles)
		t.AddRow(name,
			report.Count(int(sram.Sim.Cycles)),
			report.Count(int(stt.Sim.Cycles)),
			report.Count(int(ft.Sim.Cycles)),
			report.Float(float64(ft.Sim.Cycles)/float64(sram.Sim.Cycles), 3))
	}
	ratio := totFT / totSRAM
	t.AddRow("total", report.Count(int(totSRAM)), report.Count(int(totSTT)),
		report.Count(int(totFT)), report.Float(ratio, 3))
	return t, ratio, nil
}

package experiments

import (
	"context"
	"reflect"
	"testing"

	"ftspm/internal/core"
	"ftspm/internal/sim"
	"ftspm/internal/spm"
)

// runSoakBothPaths runs the same campaign through the packed engine
// (Lanes auto) and the scalar simulator (Lanes 1) and returns both
// report sets.
func runSoakBothPaths(t *testing.T, opts SoakOptions, structures []core.Structure) (packed, scalar []*SoakReport) {
	t.Helper()
	opts.Lanes = 0
	packed, status, err := RunSoakCampaign(context.Background(), opts, structures, CampaignConfig{})
	if err != nil {
		t.Fatalf("packed campaign: %v", err)
	}
	if f := status.FirstFailure(); f != nil {
		t.Fatalf("packed campaign trial failed: %v", f)
	}
	opts.Lanes = 1
	scalar, status, err = RunSoakCampaign(context.Background(), opts, structures, CampaignConfig{})
	if err != nil {
		t.Fatalf("scalar campaign: %v", err)
	}
	if f := status.FirstFailure(); f != nil {
		t.Fatalf("scalar campaign trial failed: %v", f)
	}
	return packed, scalar
}

// TestSoakLaneEquivalence is the packed engine's correctness contract:
// for every structure, recovery policy, and injection target, the
// per-structure soak reports of the packed path must equal the scalar
// simulator's exactly — same strike streams, same recovery tallies,
// same end-of-run audit, cycle for cycle.
func TestSoakLaneEquivalence(t *testing.T) {
	allStructs := []core.Structure{
		core.StructFTSPM, core.StructPureSRAM, core.StructPureSTT, core.StructDMR,
	}
	rollback := spm.DefaultRecovery()
	sdc := rollback
	sdc.DirtyPolicy = spm.DUEAsSDC
	fastScrub := rollback
	fastScrub.ScrubInterval = 512
	noScrub := rollback
	noScrub.ScrubInterval = 0

	cases := []struct {
		name       string
		opts       SoakOptions
		structures []core.Structure
	}{
		{
			name: "default-recovery-all-structures",
			opts: SoakOptions{
				Trials: 4, Scale: 0.02, StrikesPerAccess: 0.02, Seed: 1,
				Recovery: &rollback,
			},
			structures: allStructs,
		},
		{
			name: "dirty-due-as-sdc",
			opts: SoakOptions{
				Trials: 3, Scale: 0.02, StrikesPerAccess: 0.03, Seed: 9,
				Recovery: &sdc,
			},
			structures: []core.Structure{core.StructFTSPM, core.StructPureSRAM},
		},
		{
			name: "fast-scrub-both-spms",
			opts: SoakOptions{
				Trials: 3, Scale: 0.02, StrikesPerAccess: 0.02, Seed: 3,
				Target: sim.TargetBothSPMs, Recovery: &fastScrub,
			},
			structures: []core.Structure{core.StructFTSPM, core.StructDMR},
		},
		{
			name: "inst-spm-no-scrub",
			opts: SoakOptions{
				Trials: 3, Scale: 0.02, StrikesPerAccess: 0.02, Seed: 11,
				Target: sim.TargetInstSPM, Recovery: &noScrub,
			},
			structures: []core.Structure{core.StructPureSRAM},
		},
		{
			name: "detection-only-no-recovery",
			opts: SoakOptions{
				Trials: 3, Scale: 0.02, StrikesPerAccess: 0.02, Seed: 17,
			},
			structures: []core.Structure{core.StructFTSPM, core.StructPureSRAM},
		},
		{
			name: "no-strikes",
			opts: SoakOptions{
				Trials: 2, Scale: 0.02, Seed: 23, Recovery: &rollback,
			},
			structures: []core.Structure{core.StructFTSPM},
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			packed, scalar := runSoakBothPaths(t, tc.opts, tc.structures)
			for i, s := range tc.structures {
				if !reflect.DeepEqual(packed[i], scalar[i]) {
					t.Errorf("%v: packed and scalar reports diverge:\npacked: %+v\nscalar: %+v",
						s, *packed[i], *scalar[i])
				}
			}
		})
	}
}

// TestSoakLaneEquivalencePartialBatch covers trial counts that do not
// fill a lane word and an explicit narrow lane width (two batches).
func TestSoakLaneEquivalencePartialBatch(t *testing.T) {
	rec := spm.DefaultRecovery()
	opts := SoakOptions{
		Trials: 5, Scale: 0.02, StrikesPerAccess: 0.02, Seed: 29,
		Recovery: &rec, Lanes: 3,
	}
	structures := []core.Structure{core.StructFTSPM}
	narrow, status, err := RunSoakCampaign(context.Background(), opts, structures, CampaignConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if f := status.FirstFailure(); f != nil {
		t.Fatal(f)
	}
	opts.Lanes = 1
	scalar, status, err := RunSoakCampaign(context.Background(), opts, structures, CampaignConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if f := status.FirstFailure(); f != nil {
		t.Fatal(f)
	}
	if !reflect.DeepEqual(narrow[0], scalar[0]) {
		t.Errorf("3-lane and scalar reports diverge:\nlanes=3: %+v\nscalar:  %+v", *narrow[0], *scalar[0])
	}
}

// TestSoakWearFallsBackToScalar pins the fallback gate: a wear model
// forks per-trial control flow, so the packed path must decline and the
// campaign must still produce the scalar result.
func TestSoakWearFallsBackToScalar(t *testing.T) {
	rec := spm.DefaultRecovery()
	rec.RemapThreshold = 1
	wear := &spm.WearConfig{WriteFailProb: 0.05, MaxWriteRetries: 2, StuckAtProb: 0.02}
	opts := SoakOptions{
		Structure: core.StructFTSPM, Trials: 2, Scale: 0.02, Seed: 7,
		StrikesPerAccess: 0.01, Recovery: &rec, Wear: wear,
	}
	opts.Lanes = 0
	auto, err := RunSoak(opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Lanes = 1
	scalar, err := RunSoak(opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(auto, scalar) {
		t.Errorf("wear campaign diverged between lane settings:\nauto:   %+v\nscalar: %+v", *auto, *scalar)
	}
	if auto.Recovery.StuckWordEvents == 0 {
		t.Error("wear model inactive; fallback test is vacuous")
	}
}

// TestLaneWidth pins the knob resolution: auto packs fully, explicit
// widths clamp to the engine capacity, non-positive values are scalar.
func TestLaneWidth(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, 64}, {1, 1}, {-5, 1}, {3, 3}, {64, 64}, {200, 64},
	} {
		if got := laneWidth(tc.in); got != tc.want {
			t.Errorf("laneWidth(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

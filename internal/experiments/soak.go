package experiments

import (
	"fmt"
	"runtime"
	"sync"

	"ftspm/internal/core"
	"ftspm/internal/faults"
	"ftspm/internal/profile"
	"ftspm/internal/sim"
	"ftspm/internal/spm"
	"ftspm/internal/trace"
	"ftspm/internal/workloads"
)

// This file implements the soak campaign: a Monte-Carlo stress run of
// the runtime error-recovery subsystem (spm.RecoveryConfig). Each trial
// executes the workload under live particle strikes — and optionally
// STT-RAM write wear — with a distinct seed, then audits the surviving
// SPM state. The aggregate answers the questions the single-shot
// evaluation cannot: how often a detected error is actually repaired,
// what leaks through as DUE or silent corruption, and how long a
// structure runs before wear forces it to degrade.

// SoakOptions parameterize a soak campaign. The zero value of every
// field selects a sensible default (see normalize).
type SoakOptions struct {
	// Workload names the executed workload (default: the case study).
	Workload string
	// Structure is the evaluated SPM organization (default FTSPM).
	Structure core.Structure
	// Trials is the number of independently-seeded runs (default 8).
	Trials int
	// Scale is the trace length relative to the reference (default
	// 0.05: soak wants many short trials, not one long one).
	Scale float64
	// StrikesPerAccess is the per-access strike probability.
	StrikesPerAccess float64
	// Dist gives strike multiplicities (zero value: faults.Dist40nm).
	Dist faults.MBUDistribution
	// Target selects the struck SPM(s).
	Target sim.InjectionTarget
	// Seed drives the campaign; trial t derives its streams from it.
	Seed int64
	// Recovery, when non-nil, enables the runtime recovery subsystem
	// with these settings. Nil runs the detection-only baseline.
	Recovery *spm.RecoveryConfig
	// Wear, when non-nil, applies STT-RAM write unreliability. Each
	// trial re-derives its wear seed, so wear-out sites vary per trial.
	Wear *spm.WearConfig
	// Thresholds and Priority configure the MDA (defaults as in
	// DefaultOptions).
	Thresholds core.Thresholds
	// Priority selects the MDA optimization target.
	Priority core.Priority
}

func (o SoakOptions) normalize() SoakOptions {
	if o.Workload == "" {
		o.Workload = workloads.CaseStudyName
	}
	if !o.Structure.Valid() {
		o.Structure = core.StructFTSPM
	}
	if o.Trials <= 0 {
		o.Trials = 8
	}
	if o.Scale <= 0 {
		o.Scale = 0.05
	}
	if o.Dist == (faults.MBUDistribution{}) {
		o.Dist = faults.Dist40nm
	}
	def := DefaultOptions()
	if o.Thresholds == (core.Thresholds{}) {
		o.Thresholds = def.Thresholds
	}
	if !o.Priority.Valid() {
		o.Priority = def.Priority
	}
	return o
}

// SoakReport aggregates a soak campaign.
type SoakReport struct {
	// Workload and Structure identify the campaign.
	Workload  string         `json:"workload"`
	Structure core.Structure `json:"structure"`
	// Trials is the number of completed runs.
	Trials int `json:"trials"`
	// Accesses and Strikes are summed over all trials.
	Accesses uint64 `json:"accesses"`
	Strikes  uint64 `json:"strikes"`
	// Recovery is the summed recovery activity of both controllers over
	// all trials (FirstDegradedTick holds the earliest over the
	// campaign; per-trial means are in MeanTimeToDegraded).
	Recovery spm.RecoveryStats `json:"recovery"`
	// EndAudit is the summed end-of-run SPM audit: the error state left
	// standing after the last access (both SPMs).
	EndAudit faults.Tally `json:"end_audit"`
	// DegradedTrials counts trials where at least one block remapped or
	// demoted; MeanTimeToDegraded is the mean first-degradation tick
	// (in controller accesses) over those trials.
	DegradedTrials     int     `json:"degraded_trials"`
	MeanTimeToDegraded float64 `json:"mean_time_to_degraded"`
}

// RecoveredRate returns transparently-repaired error events per strike.
func (r SoakReport) RecoveredRate() float64 { return r.perStrike(float64(r.Recovery.Recovered())) }

// DUERate returns detected-but-unrecovered words per strike: the DUEs
// recovery gave up on plus the latent ones still standing at the end of
// the run.
func (r SoakReport) DUERate() float64 {
	return r.perStrike(float64(r.Recovery.DUEs()) + float64(r.EndAudit.DUE))
}

// SDCRate returns silently-corrupt words left at end of run per strike.
func (r SoakReport) SDCRate() float64 { return r.perStrike(float64(r.EndAudit.SDC)) }

func (r SoakReport) perStrike(n float64) float64 {
	if r.Strikes == 0 {
		return 0
	}
	return n / float64(r.Strikes)
}

// soakTrial is one trial's contribution, collected per index so the
// aggregate is deterministic regardless of worker scheduling.
type soakTrial struct {
	accesses uint64
	strikes  uint64
	recovery spm.RecoveryStats
	audit    faults.Tally
}

// RunSoak executes a soak campaign: Trials seeded runs of the workload
// on the structure, each under its own strike/wear streams, aggregated
// into one report. Trials run on a bounded worker pool; the trace is
// materialized once and replayed read-only by every trial.
func RunSoak(opts SoakOptions) (*SoakReport, error) {
	opts = opts.normalize()
	if err := opts.Dist.Validate(); err != nil {
		return nil, fmt.Errorf("experiments: soak: %w", err)
	}
	w, err := workloads.ByName(opts.Workload)
	if err != nil {
		return nil, err
	}
	spec, err := core.NewSpec(opts.Structure)
	if err != nil {
		return nil, err
	}
	events := w.TraceEvents(opts.Scale)
	prof, err := profile.Run(w.Program(), trace.Replay(events))
	if err != nil {
		return nil, fmt.Errorf("experiments: soak profile %s: %w", w.Name, err)
	}
	mapping, err := core.MapBlocks(prof, spec, opts.Thresholds, opts.Priority)
	if err != nil {
		return nil, fmt.Errorf("experiments: soak map %s/%v: %w", w.Name, opts.Structure, err)
	}

	trials := make([]soakTrial, opts.Trials)
	errs := make([]error, opts.Trials)
	workers := runtime.GOMAXPROCS(0)
	if workers > opts.Trials {
		workers = opts.Trials
	}
	var wg sync.WaitGroup
	jobs := make(chan int)
	for n := 0; n < workers; n++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range jobs {
				trials[t], errs[t] = runSoakTrial(w, spec, mapping.Placement, events, opts, t)
			}
		}()
	}
	for t := 0; t < opts.Trials; t++ {
		jobs <- t
	}
	close(jobs)
	wg.Wait()
	for t, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("experiments: soak trial %d: %w", t, err)
		}
	}

	rep := &SoakReport{Workload: w.Name, Structure: opts.Structure, Trials: opts.Trials}
	var degradedSum float64
	for _, tr := range trials {
		rep.Accesses += tr.accesses
		rep.Strikes += tr.strikes
		rep.Recovery.Add(tr.recovery)
		rep.EndAudit.Benign += tr.audit.Benign
		rep.EndAudit.DRE += tr.audit.DRE
		rep.EndAudit.DUE += tr.audit.DUE
		rep.EndAudit.SDC += tr.audit.SDC
		if tr.recovery.FirstDegradedTick > 0 {
			rep.DegradedTrials++
			degradedSum += float64(tr.recovery.FirstDegradedTick)
		}
	}
	if rep.DegradedTrials > 0 {
		rep.MeanTimeToDegraded = degradedSum / float64(rep.DegradedTrials)
	}
	return rep, nil
}

// runSoakTrial executes one seeded trial. Every random stream (strikes,
// wear) is derived from the campaign seed and the trial index, so the
// campaign is reproducible and its trials are independent.
func runSoakTrial(w workloads.Workload, spec core.Spec, place spm.Placement,
	events []trace.Event, opts SoakOptions, t int) (soakTrial, error) {
	const trialStride = 1_000_003 // prime: keeps per-trial seeds distinct
	cfg := spec.SimConfig(place)
	if opts.StrikesPerAccess > 0 {
		cfg.Injection = &sim.InjectionConfig{
			StrikesPerAccess: opts.StrikesPerAccess,
			Dist:             opts.Dist,
			Seed:             opts.Seed + int64(t)*trialStride,
			Target:           opts.Target,
		}
	}
	if opts.Recovery != nil {
		rc := *opts.Recovery
		cfg.Recovery = &rc
	}
	if opts.Wear != nil {
		wc := *opts.Wear
		wc.Seed = opts.Seed + wc.Seed + int64(t)*trialStride + 1
		cfg.Wear = &wc
	}
	m, err := sim.New(w.Program(), cfg)
	if err != nil {
		return soakTrial{}, err
	}
	res, err := m.Run(trace.Replay(events))
	if err != nil {
		return soakTrial{}, err
	}
	audit := m.DataSPM().Audit()
	iAudit := m.InstSPM().Audit()
	audit.Benign += iAudit.Benign
	audit.DRE += iAudit.DRE
	audit.DUE += iAudit.DUE
	audit.SDC += iAudit.SDC
	return soakTrial{
		accesses: res.Accesses,
		strikes:  res.InjectedStrikes,
		recovery: res.RecoveryTotals(),
		audit:    audit,
	}, nil
}

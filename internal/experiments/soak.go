package experiments

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"ftspm/internal/campaign"
	"ftspm/internal/core"
	"ftspm/internal/faults"
	"ftspm/internal/profile"
	"ftspm/internal/sim"
	"ftspm/internal/simd"
	"ftspm/internal/spm"
	"ftspm/internal/trace"
	"ftspm/internal/workloads"
)

// This file implements the soak campaign: a Monte-Carlo stress run of
// the runtime error-recovery subsystem (spm.RecoveryConfig). Each trial
// executes the workload under live particle strikes — and optionally
// STT-RAM write wear — with a distinct seed, then audits the surviving
// SPM state. The aggregate answers the questions the single-shot
// evaluation cannot: how often a detected error is actually repaired,
// what leaks through as DUE or silent corruption, and how long a
// structure runs before wear forces it to degrade.

// SoakOptions parameterize a soak campaign. The zero value of every
// field selects a sensible default (see normalize).
type SoakOptions struct {
	// Workload names the executed workload (default: the case study).
	Workload string
	// Structure is the evaluated SPM organization (default FTSPM).
	Structure core.Structure
	// Trials is the number of independently-seeded runs (default 8).
	Trials int
	// Scale is the trace length relative to the reference (default
	// 0.05: soak wants many short trials, not one long one).
	Scale float64
	// StrikesPerAccess is the per-access strike probability.
	StrikesPerAccess float64
	// Dist gives strike multiplicities (zero value: faults.Dist40nm).
	Dist faults.MBUDistribution
	// Target selects the struck SPM(s).
	Target sim.InjectionTarget
	// Seed drives the campaign; trial t derives its streams from it.
	Seed int64
	// Recovery, when non-nil, enables the runtime recovery subsystem
	// with these settings. Nil runs the detection-only baseline.
	Recovery *spm.RecoveryConfig
	// Wear, when non-nil, applies STT-RAM write unreliability. Each
	// trial re-derives its wear seed, so wear-out sites vary per trial.
	Wear *spm.WearConfig
	// Storm, when non-nil, replaces the memoryless strike process with
	// the correlated fault storm (faults.StormConfig): Markov-modulated
	// bursts, spatially clustered events, thermal wear ramps, and
	// adversarial hot-block targeting. StrikesPerAccess is ignored —
	// the storm's calm intensity is the background rate. Storm trials
	// always run the scalar simulator: the packed engine rejects them
	// with simd.ErrUnsupported and the job falls back. Omitted from
	// JSON when nil so non-storm config hashes are unchanged.
	Storm *faults.StormConfig `json:",omitempty"`
	// Thresholds and Priority configure the MDA (defaults as in
	// DefaultOptions).
	Thresholds core.Thresholds
	// Priority selects the MDA optimization target.
	Priority core.Priority
	// Lanes caps the packed engine's scenarios per trace pass: 0 (auto)
	// packs up to 64 trials per pass, 1 forces the scalar path, 2..64
	// pack that many. Purely a performance knob — per-trial results are
	// byte-identical either way — so it is excluded from the campaign
	// config hash (checkpoints stay resumable across lane settings).
	Lanes int `json:"-"`
}

// laneWidth resolves the Lanes knob to a batch width.
func laneWidth(lanes int) int {
	switch {
	case lanes == 0:
		return simd.MaxLanes
	case lanes < 1:
		return 1
	case lanes > simd.MaxLanes:
		return simd.MaxLanes
	default:
		return lanes
	}
}

func (o SoakOptions) normalize() SoakOptions {
	if o.Workload == "" {
		o.Workload = workloads.CaseStudyName
	}
	if !o.Structure.Valid() {
		o.Structure = core.StructFTSPM
	}
	if o.Trials <= 0 {
		o.Trials = 8
	}
	if o.Scale <= 0 {
		o.Scale = 0.05
	}
	if o.Dist == (faults.MBUDistribution{}) {
		o.Dist = faults.Dist40nm
	}
	def := DefaultOptions()
	if o.Thresholds == (core.Thresholds{}) {
		o.Thresholds = def.Thresholds
	}
	if !o.Priority.Valid() {
		o.Priority = def.Priority
	}
	if o.Storm != nil {
		st := o.Storm.Normalized()
		o.Storm = &st
	}
	return o
}

// scalarFallbacks counts packed-engine declines that sent soak jobs to
// the scalar simulator (storm/wear/unsupported configurations),
// process-wide. Surfaced on ftspmd's /healthz.
var scalarFallbacks atomic.Uint64

// ScalarFallbackCount returns the process-wide scalar-fallback count.
func ScalarFallbackCount() uint64 { return scalarFallbacks.Load() }

// SoakReport aggregates a soak campaign.
type SoakReport struct {
	// Workload and Structure identify the campaign.
	Workload  string         `json:"workload"`
	Structure core.Structure `json:"structure"`
	// Trials is the number of completed runs.
	Trials int `json:"trials"`
	// PlannedTrials is the configured trial count, recorded only when it
	// differs from Trials — i.e. when the report was salvaged from an
	// interrupted or partially-failed campaign. Complete reports omit it
	// (and Incomplete), so their JSON is unchanged from earlier versions.
	PlannedTrials int `json:"planned_trials,omitempty"`
	// Incomplete marks a salvaged report whose campaign was drained or
	// lost trials to permanent failures; resuming from the checkpoint
	// runs the missing trials.
	Incomplete bool `json:"incomplete,omitempty"`
	// Accesses and Strikes are summed over all trials.
	Accesses uint64 `json:"accesses"`
	Strikes  uint64 `json:"strikes"`
	// Recovery is the summed recovery activity of both controllers over
	// all trials (FirstDegradedTick holds the earliest over the
	// campaign; per-trial means are in MeanTimeToDegraded).
	Recovery spm.RecoveryStats `json:"recovery"`
	// EndAudit is the summed end-of-run SPM audit: the error state left
	// standing after the last access (both SPMs).
	EndAudit faults.Tally `json:"end_audit"`
	// DegradedTrials counts trials where at least one block remapped or
	// demoted; MeanTimeToDegraded is the mean first-degradation tick
	// (in controller accesses) over those trials.
	DegradedTrials     int     `json:"degraded_trials"`
	MeanTimeToDegraded float64 `json:"mean_time_to_degraded"`
}

// RecoveredRate returns transparently-repaired error events per strike.
func (r SoakReport) RecoveredRate() float64 { return r.perStrike(float64(r.Recovery.Recovered())) }

// DUERate returns detected-but-unrecovered words per strike: the DUEs
// recovery gave up on plus the latent ones still standing at the end of
// the run.
func (r SoakReport) DUERate() float64 {
	return r.perStrike(float64(r.Recovery.DUEs()) + float64(r.EndAudit.DUE))
}

// SDCRate returns silently-corrupt words left at end of run per strike.
func (r SoakReport) SDCRate() float64 { return r.perStrike(float64(r.EndAudit.SDC)) }

func (r SoakReport) perStrike(n float64) float64 {
	if r.Strikes == 0 {
		return 0
	}
	return n / float64(r.Strikes)
}

// soakTrialResult is one trial's contribution. Fields are exported so
// checkpointed trials round-trip through the campaign journal.
type soakTrialResult struct {
	Accesses uint64            `json:"accesses"`
	Strikes  uint64            `json:"strikes"`
	Recovery spm.RecoveryStats `json:"recovery"`
	Audit    faults.Tally      `json:"audit"`
}

// RunSoak executes a soak campaign in-memory: Trials seeded runs of the
// workload on the structure, aggregated into one report. Any trial
// failure fails the campaign with that trial's error. See
// RunSoakCampaign for the crash-safe form.
func RunSoak(opts SoakOptions) (*SoakReport, error) {
	opts = opts.normalize()
	reps, status, err := RunSoakCampaign(context.Background(), opts,
		[]core.Structure{opts.Structure}, CampaignConfig{})
	if err != nil {
		return nil, err
	}
	if f := status.FirstFailure(); f != nil {
		return nil, f
	}
	return reps[0], nil
}

// soakShared is the campaign-wide lazily-computed state: the workload
// trace is materialized once and its profile computed once, shared
// read-only by every structure and trial.
type soakShared struct {
	w      workloads.Workload
	opts   SoakOptions
	once   sync.Once
	events []trace.Event
	prof   *profile.Profile
	err    error
}

func (sh *soakShared) ensure() error {
	sh.once.Do(func() {
		sh.events = sh.w.TraceEvents(sh.opts.Scale)
		sh.prof, sh.err = profile.Run(sh.w.Program(), trace.Replay(sh.events))
		if sh.err != nil {
			sh.err = fmt.Errorf("experiments: soak profile %s: %w", sh.w.Name, sh.err)
		}
	})
	if sh.err != nil {
		return sh.err
	}
	if sh.prof == nil {
		return fmt.Errorf("experiments: soak profile %s: unavailable (profiling panicked)", sh.w.Name)
	}
	return nil
}

// soakStructShared is the per-structure lazily-computed state: the spec
// and MDA placement every trial of that structure replays against, and
// the packed-engine results when the fast path applies.
type soakStructShared struct {
	structure core.Structure
	once      sync.Once
	spec      core.Spec
	place     spm.Placement
	// hotWindows are the adversarial storm targets (the footprints of
	// the profile's hottest placed blocks), computed once per
	// structure when the storm's HotBias is armed.
	hotWindows []faults.HotWindow
	err        error
	ready      bool
	packed     packedState
}

// packedState memoizes the packed engine's output for one structure,
// one lane batch at a time. The first trial job to run builds the
// skeleton and engine; each batch of up to width trials is computed by
// the first job that lands in it and cached for its lane-mates. Lazy
// batching matters in distributed runs: a worker assigned a slice of a
// structure's trials computes only the batches covering its slice, not
// the whole campaign. A configuration the engine rejects flips the
// state off, and every job falls back to the scalar path.
type packedState struct {
	mu      sync.Mutex
	off     bool
	eng     *simd.Engine
	batches map[int][]soakTrialResult
}

// trial returns trial t's packed result, computing its lane batch on
// first use. ok=false means the packed path does not apply (caller runs
// the scalar trial). Context errors are returned uncached, so a retried
// or resumed job recomputes.
func (ps *packedState) trial(ctx context.Context, w workloads.Workload, spec core.Spec,
	place spm.Placement, events []trace.Event, opts SoakOptions, t, width int) (soakTrialResult, bool, error) {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if ps.off {
		return soakTrialResult{}, false, nil
	}
	if ps.eng == nil {
		eng, err := buildPackedEngine(ctx, w, spec, place, events, opts)
		if errors.Is(err, simd.ErrUnsupported) {
			ps.off = true
			scalarFallbacks.Add(1)
			return soakTrialResult{}, false, nil
		}
		if err != nil {
			return soakTrialResult{}, false, err
		}
		ps.eng = eng
		ps.batches = make(map[int][]soakTrialResult)
	}
	b := t / width
	res, ok := ps.batches[b]
	if !ok {
		var err error
		res, err = packedBatch(ctx, ps.eng, opts, b*width, width)
		if errors.Is(err, simd.ErrUnsupported) {
			ps.off = true
			scalarFallbacks.Add(1)
			return soakTrialResult{}, false, nil
		}
		if err != nil {
			return soakTrialResult{}, false, err
		}
		ps.batches[b] = res
	}
	return res[t-b*width], true, nil
}

// buildPackedEngine records the instrumented fault-free pass and builds
// the lane engine for one (workload, structure) soak configuration.
func buildPackedEngine(ctx context.Context, w workloads.Workload, spec core.Spec,
	place spm.Placement, events []trace.Event, opts SoakOptions) (*simd.Engine, error) {
	cfg := spec.SimConfig(place)
	if opts.Recovery != nil {
		rc := *opts.Recovery
		cfg.Recovery = &rc
	}
	if opts.Storm != nil {
		// Attach the storm so BuildSkeleton rejects it with
		// ErrUnsupported and the campaign falls back to the scalar
		// simulator (the storm process cannot be lane-packed).
		st := *opts.Storm
		cfg.Injection = &sim.InjectionConfig{Dist: opts.Dist, Target: opts.Target, Storm: &st}
	}
	sk, err := simd.BuildSkeleton(ctx, w.Program(), cfg, events)
	if err != nil {
		return nil, err
	}
	return simd.NewEngine(sk, simd.Injection{
		StrikesPerAccess: opts.StrikesPerAccess,
		Dist:             opts.Dist,
		Target:           opts.Target,
	})
}

// packedBatch runs the lane batch starting at trial t0 (up to width
// trials, clipped to the campaign's trial count) through one packed
// trace pass. Seeds derive exactly as in runSoakTrial, and RunBatch
// resets the engine per call, so batch results depend only on the
// seeds — byte-identical to the scalar path whichever batches run, in
// whatever order.
func packedBatch(ctx context.Context, eng *simd.Engine, opts SoakOptions, t0, width int) ([]soakTrialResult, error) {
	n := width
	if t0+n > opts.Trials {
		n = opts.Trials - t0
	}
	seeds := make([]int64, n)
	for i := 0; i < n; i++ {
		seeds[i] = opts.Seed + int64(t0+i)*soakTrialStride
	}
	batch := make([]simd.TrialResult, n)
	if err := eng.RunBatch(ctx, seeds, batch); err != nil {
		return nil, err
	}
	out := make([]soakTrialResult, n)
	for i := 0; i < n; i++ {
		out[i] = soakTrialResult{
			Accesses: batch[i].Accesses,
			Strikes:  batch[i].Strikes,
			Recovery: batch[i].Recovery,
			Audit:    batch[i].Audit,
		}
	}
	return out, nil
}

func (ss *soakStructShared) ensure(sh *soakShared) error {
	if err := sh.ensure(); err != nil {
		return err
	}
	ss.once.Do(func() {
		ss.spec, ss.err = core.NewSpec(ss.structure)
		if ss.err != nil {
			return
		}
		var mapping core.Mapping
		mapping, ss.err = core.MapBlocks(sh.prof, ss.spec, sh.opts.Thresholds, sh.opts.Priority)
		if ss.err != nil {
			ss.err = fmt.Errorf("experiments: soak map %s/%v: %w", sh.w.Name, ss.structure, ss.err)
			return
		}
		ss.place = mapping.Placement
		if st := sh.opts.Storm; st != nil && st.HotBias > 0 {
			ss.hotWindows = computeHotWindows(ss.spec, ss.place, sh.prof, st.HotBlocks)
		}
		ss.ready = true
	})
	if ss.err != nil {
		return ss.err
	}
	if !ss.ready {
		return fmt.Errorf("experiments: soak map %s/%v: unavailable (mapping panicked)", sh.w.Name, ss.structure)
	}
	return nil
}

// soakTrialStride derives trial t's injection seed as Seed + t*stride
// (prime: keeps per-trial seeds distinct). The packed and scalar paths
// share it, which is what makes their per-trial results comparable at
// all.
const soakTrialStride = 1_000_003

// soakJobID is the deterministic identity of one (structure, trial)
// job; workload, scale, seed, and every other knob are carried by the
// campaign's config hash.
func soakJobID(s core.Structure, trial int) string {
	return fmt.Sprintf("soak/%v/trial/%d", s, trial)
}

// soakConfigHash fingerprints everything that determines a soak trial's
// result.
func soakConfigHash(opts SoakOptions, structures []core.Structure) (string, error) {
	structs := make([]string, len(structures))
	for i, s := range structures {
		structs[i] = s.String()
	}
	return campaign.HashJSON(struct {
		Kind       string
		Options    SoakOptions
		Structures []string
	}{Kind: "soak", Options: opts, Structures: structs})
}

// RunSoakCampaign executes the soak as a crash-safe campaign over every
// (structure, trial) pair: base.Trials seeded runs of the workload on
// each listed structure, fanned out over the bounded worker pool. Trial
// t uses the same derived seeds on every structure, so the structures
// face identical strike streams (a paired comparison). The trace is
// materialized once and replayed read-only by every trial.
//
// One report per structure is returned in input order, aggregating the
// trials in trial order so the result is deterministic regardless of
// scheduling — and byte-identical whether the campaign ran through or
// was interrupted and resumed from its checkpoint. A trial that panics
// or errors fails alone (recorded in the status with its stack); a
// cancelled context drains in-flight trials, salvages the finished
// ones into reports marked Incomplete, and returns an error wrapping
// campaign.ErrIncomplete.
func RunSoakCampaign(ctx context.Context, base SoakOptions, structures []core.Structure,
	cc CampaignConfig) ([]*SoakReport, *CampaignStatus, error) {
	if err := cc.Validate(); err != nil {
		return nil, nil, err
	}
	src, err := SoakSource(base, structures)
	if err != nil {
		return nil, nil, err
	}
	if err := src.UseCache(cc.Cache); err != nil {
		return nil, nil, err
	}
	jobs, err := src.Jobs(src.IDs)
	if err != nil {
		return nil, nil, err
	}
	rep, runErr := campaign.Run(ctx, cc.runnerConfig(src.Hash), jobs)
	if rep == nil {
		return nil, nil, runErr
	}
	reports, status, err := src.AssembleSoak(rep)
	if err != nil {
		return nil, nil, err
	}
	return reports, status, runErr
}

// runSoakJobBody is the body of one (structure, trial) soak job, shared
// by the local campaign path and the distributed fabric's job source.
func runSoakJobBody(ctx context.Context, sh *soakShared, ss *soakStructShared,
	w workloads.Workload, opts SoakOptions, t int) (soakTrialResult, error) {
	if err := ss.ensure(sh); err != nil {
		return soakTrialResult{}, err
	}
	// Packed fast path: with no wear model, up to 64 trials advance
	// through one trace pass. Unsupported configurations fall back to
	// the scalar simulator.
	if width := laneWidth(opts.Lanes); width > 1 && opts.Wear == nil {
		res, ok, err := ss.packed.trial(ctx, w, ss.spec, ss.place, sh.events, opts, t, width)
		if err != nil {
			return soakTrialResult{}, fmt.Errorf("experiments: soak trial %d: %w", t, err)
		}
		if ok {
			return res, nil
		}
	}
	res, err := runSoakTrial(ctx, w, ss.spec, ss.place, ss.hotWindows, sh.events, opts, t)
	if err != nil {
		return soakTrialResult{}, fmt.Errorf("experiments: soak trial %d: %w", t, err)
	}
	return res, nil
}

// aggregateSoak folds completed trials into one report, in trial order.
func aggregateSoak(workload string, s core.Structure, planned int, trials []soakTrialResult) *SoakReport {
	rep := &SoakReport{Workload: workload, Structure: s, Trials: len(trials)}
	if len(trials) != planned {
		rep.PlannedTrials = planned
		rep.Incomplete = true
	}
	var degradedSum float64
	for _, tr := range trials {
		rep.Accesses += tr.Accesses
		rep.Strikes += tr.Strikes
		rep.Recovery.Add(tr.Recovery)
		rep.EndAudit.Benign += tr.Audit.Benign
		rep.EndAudit.DRE += tr.Audit.DRE
		rep.EndAudit.DUE += tr.Audit.DUE
		rep.EndAudit.SDC += tr.Audit.SDC
		if tr.Recovery.FirstDegradedTick > 0 {
			rep.DegradedTrials++
			degradedSum += float64(tr.Recovery.FirstDegradedTick)
		}
	}
	if rep.DegradedTrials > 0 {
		rep.MeanTimeToDegraded = degradedSum / float64(rep.DegradedTrials)
	}
	return rep
}

// runSoakTrial executes one seeded trial. Every random stream (strikes,
// wear) is derived from the campaign seed and the trial index, so the
// campaign is reproducible and its trials are independent. The trial's
// simulation loop polls ctx, so a per-job deadline stops it promptly.
func runSoakTrial(ctx context.Context, w workloads.Workload, spec core.Spec, place spm.Placement,
	hot []faults.HotWindow, events []trace.Event, opts SoakOptions, t int) (soakTrialResult, error) {
	cfg := spec.SimConfig(place)
	if opts.StrikesPerAccess > 0 || opts.Storm != nil {
		cfg.Injection = &sim.InjectionConfig{
			StrikesPerAccess: opts.StrikesPerAccess,
			Dist:             opts.Dist,
			Seed:             opts.Seed + int64(t)*soakTrialStride,
			Target:           opts.Target,
		}
		if opts.Storm != nil {
			st := *opts.Storm
			cfg.Injection.Storm = &st
			cfg.Injection.HotWindows = hot
		}
	}
	if opts.Recovery != nil {
		rc := *opts.Recovery
		cfg.Recovery = &rc
	}
	if opts.Wear != nil {
		wc := *opts.Wear
		wc.Seed = opts.Seed + wc.Seed + int64(t)*soakTrialStride + 1
		cfg.Wear = &wc
	}
	m, err := sim.New(w.Program(), cfg)
	if err != nil {
		return soakTrialResult{}, err
	}
	res, err := m.RunContext(ctx, trace.Replay(events))
	if err != nil {
		return soakTrialResult{}, err
	}
	audit := m.DataSPM().Audit()
	iAudit := m.InstSPM().Audit()
	audit.Benign += iAudit.Benign
	audit.DRE += iAudit.DRE
	audit.DUE += iAudit.DUE
	audit.SDC += iAudit.SDC
	return soakTrialResult{
		Accesses: res.Accesses,
		Strikes:  res.InjectedStrikes,
		Recovery: res.RecoveryTotals(),
		Audit:    audit,
	}, nil
}

package experiments

import (
	"testing"

	"ftspm/internal/core"
	"ftspm/internal/spm"
)

func TestSoakScrubbingReducesDUERate(t *testing.T) {
	// Acceptance: at an identical strike rate and identical seeds, a
	// scrubbing controller must leave strictly fewer DUE words standing
	// than a scrub-off one — latent errors in cold words are cleared
	// before the end of the run instead of accumulating.
	base := SoakOptions{
		Structure:        core.StructFTSPM,
		Trials:           3,
		Scale:            0.05,
		StrikesPerAccess: 0.02,
		Seed:             42,
	}
	recOn := spm.DefaultRecovery()
	recOn.ScrubInterval = 256
	recOff := recOn
	recOff.ScrubInterval = 0

	on, off := base, base
	on.Recovery, off.Recovery = &recOn, &recOff
	repOn, err := RunSoak(on)
	if err != nil {
		t.Fatal(err)
	}
	repOff, err := RunSoak(off)
	if err != nil {
		t.Fatal(err)
	}
	if repOn.Strikes != repOff.Strikes {
		t.Fatalf("strike streams diverged: %d vs %d", repOn.Strikes, repOff.Strikes)
	}
	if repOn.Strikes == 0 {
		t.Fatal("no strikes landed; the comparison is vacuous")
	}
	if repOn.Recovery.ScrubRuns == 0 || repOff.Recovery.ScrubRuns != 0 {
		t.Fatalf("scrub wiring wrong: on=%d off=%d runs",
			repOn.Recovery.ScrubRuns, repOff.Recovery.ScrubRuns)
	}
	if repOn.DUERate() >= repOff.DUERate() {
		t.Errorf("scrubbing did not reduce the DUE rate: on %.5f >= off %.5f (strikes %d)",
			repOn.DUERate(), repOff.DUERate(), repOn.Strikes)
	}
}

func TestSoakWearDrivesGracefulDegradation(t *testing.T) {
	// A campaign with aggressive STT-RAM wear must observe write-verify
	// faults, degrade at least one block, and record the time-to-degraded.
	rec := spm.DefaultRecovery()
	rec.RemapThreshold = 1
	opts := SoakOptions{
		Structure: core.StructFTSPM,
		Trials:    2,
		Scale:     0.05,
		Seed:      7,
		Recovery:  &rec,
		Wear: &spm.WearConfig{
			WriteFailProb:   0.05,
			MaxWriteRetries: 2,
			StuckAtProb:     0.02,
		},
	}
	rep, err := RunSoak(opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Recovery.StuckWordEvents == 0 || rep.Recovery.WriteRetries == 0 {
		t.Errorf("wear model inactive: %+v", rep.Recovery)
	}
	if rep.Recovery.Remaps+rep.Recovery.Demotions == 0 {
		t.Error("no block degraded under aggressive wear")
	}
	if rep.DegradedTrials == 0 || rep.MeanTimeToDegraded <= 0 {
		t.Errorf("time-to-degraded not recorded: trials=%d mean=%.1f",
			rep.DegradedTrials, rep.MeanTimeToDegraded)
	}
}

func TestSoakDeterministic(t *testing.T) {
	rec := spm.DefaultRecovery()
	opts := SoakOptions{
		Trials:           2,
		Scale:            0.02,
		StrikesPerAccess: 0.01,
		Seed:             5,
		Recovery:         &rec,
	}
	a, err := RunSoak(opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSoak(opts)
	if err != nil {
		t.Fatal(err)
	}
	if *a != *b {
		t.Errorf("soak not deterministic:\n%+v\n%+v", a, b)
	}
}

func TestSoakOptionDefaultsAndValidation(t *testing.T) {
	n := SoakOptions{}.normalize()
	if n.Workload == "" || !n.Structure.Valid() || n.Trials <= 0 || n.Scale <= 0 {
		t.Errorf("normalize left zero fields: %+v", n)
	}
	if _, err := RunSoak(SoakOptions{Workload: "no-such-workload"}); err == nil {
		t.Error("unknown workload accepted")
	}
	bad := SoakOptions{StrikesPerAccess: 0.1}
	bad.Dist.P1 = 0.5 // does not sum to 1
	if _, err := RunSoak(bad); err == nil {
		t.Error("invalid distribution accepted")
	}
}

package experiments

import (
	"context"
	"encoding/json"
	"fmt"

	"ftspm/internal/campaign"
	"ftspm/internal/core"
	"ftspm/internal/resultcache"
	"ftspm/internal/workloads"
)

// This file defines JobSource, the location-transparent view of one
// campaign that the distributed fabric is built on. A source is derived
// purely from serializable options, so two processes given the same
// options construct the same job IDs, the same config hash, and jobs
// that compute the same results — which is what lets a coordinator ship
// ID lists to remote ftspmd workers, merge the streamed-back raw
// results, and still assemble reports byte-identical to a local run.
// The local campaign paths (RunSweepCampaign, RunSoakCampaign) run on
// the very same source, so there is exactly one job-construction and
// one aggregation code path to keep correct.

// Campaign kinds a JobSource can describe.
const (
	KindSweep = "sweep"
	KindSoak  = "soak"
)

// JobSource is one campaign's deterministic job list: stable IDs, the
// config hash that fingerprints every knob influencing results, and a
// runner per job returning the result as raw JSON (exactly the bytes
// the checkpoint journal records).
type JobSource struct {
	// Kind is KindSweep or KindSoak.
	Kind string
	// Hash fingerprints the campaign configuration; remote workers
	// refuse job lists whose hash does not match their own derivation.
	Hash string
	// IDs lists every job in campaign (dispatch) order.
	IDs []string

	// SweepOpts holds the normalized options of a sweep source.
	SweepOpts *Options
	// SoakOpts and SoakStructures hold the normalized configuration of
	// a soak source.
	SoakOpts       *SoakOptions
	SoakStructures []core.Structure

	runs map[string]func(ctx context.Context) (json.RawMessage, error)

	// cache state (set by UseCache): the result cache consulted before
	// running a job, and each job's content-addressed key.
	cache *resultcache.Cache
	keys  map[string]resultcache.Key

	// assembly state
	suite      []workloads.Workload
	structures []core.Structure
}

// Job returns the runnable job for one ID. With a cache attached (see
// UseCache), the runner consults it first and stores on miss; the
// journaled bytes are identical either way.
func (s *JobSource) Job(id string) (campaign.Job[json.RawMessage], error) {
	run, ok := s.runs[id]
	if !ok {
		return campaign.Job[json.RawMessage]{}, fmt.Errorf("experiments: unknown job ID %q", id)
	}
	if s.cache != nil {
		if k, ok := s.keys[id]; ok {
			run = s.cachedRun(k, run)
		}
	}
	return campaign.Job[json.RawMessage]{ID: id, Run: run}, nil
}

// Jobs returns runnable jobs for the listed IDs, in the given order.
func (s *JobSource) Jobs(ids []string) ([]campaign.Job[json.RawMessage], error) {
	jobs := make([]campaign.Job[json.RawMessage], 0, len(ids))
	for _, id := range ids {
		j, err := s.Job(id)
		if err != nil {
			return nil, err
		}
		jobs = append(jobs, j)
	}
	return jobs, nil
}

// JobsUncached returns runnable jobs that bypass any attached cache —
// always a real execution. Integrity audits re-execute through this
// path: an audit that read back a memo instead of recomputing would
// verify nothing.
func (s *JobSource) JobsUncached(ids []string) ([]campaign.Job[json.RawMessage], error) {
	jobs := make([]campaign.Job[json.RawMessage], 0, len(ids))
	for _, id := range ids {
		run, ok := s.runs[id]
		if !ok {
			return nil, fmt.Errorf("experiments: unknown job ID %q", id)
		}
		jobs = append(jobs, campaign.Job[json.RawMessage]{ID: id, Run: run})
	}
	return jobs, nil
}

// SweepSource builds the full-suite sweep campaign as a job source.
func SweepSource(opts Options) (*JobSource, error) {
	opts = opts.normalize()
	suite := workloads.Suite()
	structures := core.Structures()
	hash, err := sweepConfigHash(opts, suite, structures)
	if err != nil {
		return nil, err
	}
	src := &JobSource{
		Kind:       KindSweep,
		Hash:       hash,
		SweepOpts:  &opts,
		runs:       make(map[string]func(context.Context) (json.RawMessage, error), len(suite)*len(structures)),
		suite:      suite,
		structures: structures,
	}
	shares := make([]sharedWorkload, len(suite))
	for i := range shares {
		shares[i].remaining.Store(int32(len(structures)))
	}
	// Structure-major job order spreads the once-per-workload profiling
	// over distinct workers instead of serializing them on one
	// sync.Once.
	for _, s := range structures {
		for wi, w := range suite {
			w, s, sh := w, s, &shares[wi]
			id := sweepJobID(w.Name, s)
			src.IDs = append(src.IDs, id)
			src.runs[id] = func(jctx context.Context) (json.RawMessage, error) {
				out, err := runSweepJob(jctx, w, s, sh, opts)
				if err != nil {
					return nil, err
				}
				return json.Marshal(out)
			}
		}
	}
	return src, nil
}

// AssembleSweep folds a finished (possibly merged-from-remote) raw
// report of this sweep source into the Sweep and campaign status.
func (s *JobSource) AssembleSweep(raw *campaign.Report[json.RawMessage]) (*Sweep, *CampaignStatus, error) {
	if s.Kind != KindSweep {
		return nil, nil, fmt.Errorf("experiments: AssembleSweep on a %s source", s.Kind)
	}
	rep, err := campaign.DecodeReport[Outcome](raw)
	if err != nil {
		return nil, nil, err
	}
	sw := &Sweep{Options: *s.SweepOpts}
	sw.Workloads = make([]string, len(s.suite))
	sw.Outcomes = make([][]Outcome, len(s.suite))
	for wi, w := range s.suite {
		sw.Workloads[wi] = w.Name
		sw.Outcomes[wi] = make([]Outcome, len(s.structures))
		for si, st := range s.structures {
			if r, ok := rep.Results[sweepJobID(w.Name, st)]; ok && r.Status == campaign.StatusDone {
				sw.Outcomes[wi][si] = r.Value
			}
		}
	}
	return sw, statusOf(rep, s.IDs), nil
}

// SoakSource builds a soak campaign over the listed structures as a job
// source. An empty structure list soaks base.Structure alone.
func SoakSource(base SoakOptions, structures []core.Structure) (*JobSource, error) {
	base = base.normalize()
	if len(structures) == 0 {
		structures = []core.Structure{base.Structure}
	}
	for _, s := range structures {
		if !s.Valid() {
			return nil, fmt.Errorf("experiments: soak: invalid structure %d", s)
		}
	}
	if err := base.Dist.Validate(); err != nil {
		return nil, fmt.Errorf("experiments: soak: %w", err)
	}
	w, err := workloads.ByName(base.Workload)
	if err != nil {
		return nil, err
	}
	hash, err := soakConfigHash(base, structures)
	if err != nil {
		return nil, err
	}
	src := &JobSource{
		Kind:           KindSoak,
		Hash:           hash,
		SoakOpts:       &base,
		SoakStructures: structures,
		runs:           make(map[string]func(context.Context) (json.RawMessage, error), len(structures)*base.Trials),
	}
	sh := &soakShared{w: w, opts: base}
	// Structure-major dispatch: with short trials this keeps every
	// structure's shared setup warm early instead of computing them all
	// back-to-back at the end.
	for _, s := range structures {
		s := s
		ss := &soakStructShared{structure: s}
		opts := base
		opts.Structure = s
		for t := 0; t < base.Trials; t++ {
			t := t
			id := soakJobID(s, t)
			src.IDs = append(src.IDs, id)
			src.runs[id] = func(jctx context.Context) (json.RawMessage, error) {
				res, err := runSoakJobBody(jctx, sh, ss, w, opts, t)
				if err != nil {
					return nil, err
				}
				return json.Marshal(res)
			}
		}
	}
	return src, nil
}

// AssembleSoak folds a finished (possibly merged-from-remote) raw
// report of this soak source into per-structure reports and the
// campaign status.
func (s *JobSource) AssembleSoak(raw *campaign.Report[json.RawMessage]) ([]*SoakReport, *CampaignStatus, error) {
	if s.Kind != KindSoak {
		return nil, nil, fmt.Errorf("experiments: AssembleSoak on a %s source", s.Kind)
	}
	rep, err := campaign.DecodeReport[soakTrialResult](raw)
	if err != nil {
		return nil, nil, err
	}
	base := *s.SoakOpts
	reports := make([]*SoakReport, len(s.SoakStructures))
	for i, st := range s.SoakStructures {
		trials := make([]soakTrialResult, 0, base.Trials)
		for t := 0; t < base.Trials; t++ {
			if r, ok := rep.Results[soakJobID(st, t)]; ok && r.Status == campaign.StatusDone {
				trials = append(trials, r.Value)
			}
		}
		reports[i] = aggregateSoak(base.Workload, st, base.Trials, trials)
	}
	return reports, statusOf(rep, s.IDs), nil
}

package experiments

import (
	"sort"

	"ftspm/internal/core"
	"ftspm/internal/faults"
	"ftspm/internal/memtech"
	"ftspm/internal/profile"
	"ftspm/internal/sim"
	"ftspm/internal/spm"
)

// Adversarial storm targeting. The attack model of the storm's
// HotBias mode is a write-stream adversary who knows the program's
// access profile and aims its events at the SPM words holding the
// hottest blocks — the blocks whose corruption is most likely to be
// consumed before a scrub pass catches it. The simulator cannot know
// block addresses ahead of residency, so the windows approximate the
// controller's first-fit allocator: the hottest blocks' footprints
// are assumed packed at the start of their placement region, which is
// where first-fit lands them in the common case of early first
// touch. Targeting is computed statically from the shared profile and
// placement, so every trial (and PlanStorm) sees identical windows.

// computeHotWindows returns the adversary's target windows: per
// address space, the top-k hottest placed blocks (by profiled access
// count, ties to the lower BlockID) whose placement region is not
// strike-immune, coalesced into one window per region covering their
// combined footprint from the region's start.
func computeHotWindows(spec core.Spec, place spm.Placement, prof *profile.Profile, k int) []faults.HotWindow {
	var out []faults.HotWindow
	out = append(out, hotWindowsFor(sim.HotSurfaceInstSPM, spec.ISPM, place, prof.CodeBlocks(), k)...)
	out = append(out, hotWindowsFor(sim.HotSurfaceDataSPM, spec.DSPM, place, prof.DataBlocks(), k)...)
	return out
}

func hotWindowsFor(surface int, regions []spm.RegionConfig, place spm.Placement,
	blocks []profile.BlockProfile, k int) []faults.HotWindow {
	// Region index by kind, mirroring the controller's first-match
	// rule (spm.NewController).
	kindIdx := make(map[spm.RegionKind]int)
	for i, rc := range regions {
		if _, ok := kindIdx[rc.Kind]; !ok {
			kindIdx[rc.Kind] = i
		}
	}
	hot := make([]profile.BlockProfile, 0, len(blocks))
	for _, bp := range blocks {
		kind, ok := place[bp.Block.ID]
		if !ok || kind.Immune() {
			continue // unplaced, or strikes are absorbed anyway
		}
		if _, ok := kindIdx[kind]; !ok {
			continue
		}
		hot = append(hot, bp)
	}
	sort.Slice(hot, func(i, j int) bool {
		ai := hot[i].Reads + hot[i].Writes
		aj := hot[j].Reads + hot[j].Writes
		if ai != aj {
			return ai > aj
		}
		return hot[i].Block.ID < hot[j].Block.ID
	})
	if k < len(hot) {
		hot = hot[:k]
	}
	words := make(map[int]int) // region index → accumulated footprint
	for _, bp := range hot {
		idx := kindIdx[place[bp.Block.ID]]
		words[idx] += memtech.WordsIn(bp.Block.Size)
	}
	idxs := make([]int, 0, len(words))
	for idx := range words {
		idxs = append(idxs, idx)
	}
	sort.Ints(idxs)
	var out []faults.HotWindow
	for _, idx := range idxs {
		n := words[idx]
		if max := regions[idx].SizeBytes / memtech.WordBytes; n > max {
			n = max
		}
		if n > 0 {
			out = append(out, faults.HotWindow{Surface: surface, Region: idx, Start: 0, Words: n})
		}
	}
	return out
}

package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"path/filepath"
	"reflect"
	"testing"

	"ftspm/internal/campaign"
	"ftspm/internal/core"
	"ftspm/internal/faults"
	"ftspm/internal/sim"
	"ftspm/internal/spm"
)

// stormTestOptions is a small but violent storm campaign: bursts
// arrive every ~1k accesses, last ~200, and corrupt two adjacent
// words per event.
func stormTestOptions() SoakOptions {
	rec := spm.DefaultRecovery()
	return SoakOptions{
		Workload: "crc32", Trials: 4, Scale: 0.02, Seed: 13,
		Recovery: &rec,
		Storm: &faults.StormConfig{
			CalmStrikesPerAccess:  0.001,
			StormStrikesPerAccess: 0.25,
			MeanCalmAccesses:      1000,
			MeanStormAccesses:     200,
			SpatialSpan:           2,
		},
	}
}

// runSoakOn runs one storm campaign against a single structure.
func runSoakOn(opts SoakOptions, s core.Structure) (*SoakReport, error) {
	opts.Structure = s
	return RunSoak(opts)
}

// TestStormSoakFallsBackToScalar pins the storm half of the fallback
// gate: the packed engine declines storm configurations through
// simd.ErrUnsupported (no pre-gate in the job body), the scalar
// fallback counter ticks, and the campaign still produces the scalar
// result byte for byte.
func TestStormSoakFallsBackToScalar(t *testing.T) {
	opts := stormTestOptions()
	structures := []core.Structure{core.StructFTSPM, core.StructPureSRAM}
	before := ScalarFallbackCount()
	packed, scalar := runSoakBothPaths(t, opts, structures)
	if got := ScalarFallbackCount() - before; got == 0 {
		t.Error("packed path never declined: storm jobs did not fall back through ErrUnsupported")
	}
	for i, s := range structures {
		if !reflect.DeepEqual(packed[i], scalar[i]) {
			t.Errorf("%v: storm campaign diverged between lane settings:\nauto:   %+v\nscalar: %+v",
				s, *packed[i], *scalar[i])
		}
	}
	if packed[0].Strikes == 0 {
		t.Error("storm injected no strikes; fallback test is vacuous")
	}
}

// TestAdaptiveStormSoakBeatsFixedScrub is the PR's pinned acceptance
// criterion: under the same storm, the adaptive defenses (scrub
// escalation + emergency refresh) end with strictly fewer SDC
// outcomes than a fixed-rate scrubber.
func TestAdaptiveStormSoakBeatsFixedScrub(t *testing.T) {
	fixed := spm.DefaultRecovery()
	fixed.ScrubInterval = 4096

	adaptive := fixed
	ad := spm.DefaultAdaptive()
	// FTSPM's detected-error rate is low in absolute terms (most of the
	// surface is strike-immune STT), so the windows are tuned to catch
	// bursts of a few events: any 256-access window with >= 1 detection
	// escalates, and calm de-escalates after 4 quiet windows.
	ad.WindowAccesses = 256
	ad.MinDwellWindows = 4
	ad.EscalateRate = 0.002
	ad.DeescalateRate = 0.0005
	ad.EscalatedScrubInterval = 64
	adaptive.Adaptive = &ad

	opts := SoakOptions{
		Workload: "crc32", Trials: 8, Scale: 0.02, Seed: 101,
		Target: sim.TargetBothSPMs,
		Storm: &faults.StormConfig{
			CalmStrikesPerAccess:  0.001,
			StormStrikesPerAccess: 0.3,
			MeanCalmAccesses:      800,
			MeanStormAccesses:     400,
			SpatialSpan:           2,
		},
	}
	sdcOutcomes := func(rec *spm.RecoveryConfig) uint64 {
		o := opts
		rc := *rec
		o.Recovery = &rc
		rep, err := runSoakOn(o, core.StructFTSPM)
		if err != nil {
			t.Fatal(err)
		}
		return uint64(rep.EndAudit.SDC) + rep.Recovery.SDCEscalations
	}
	fixedSDC := sdcOutcomes(&fixed)
	adaptiveSDC := sdcOutcomes(&adaptive)
	if fixedSDC == 0 {
		t.Fatal("fixed-scrub storm produced no SDC outcomes; acceptance test is vacuous")
	}
	if adaptiveSDC >= fixedSDC {
		t.Fatalf("adaptive defenses did not beat fixed scrub: %d SDC outcomes vs %d",
			adaptiveSDC, fixedSDC)
	}
}

// TestStormSoakDeterministic pins seed determinism: identical storm
// campaigns are byte-identical across runs, and across a
// checkpoint/resume cycle interrupted mid-campaign.
func TestStormSoakDeterministic(t *testing.T) {
	opts := stormTestOptions()
	ad := spm.DefaultAdaptive()
	opts.Recovery.Adaptive = &ad
	opts.Storm.HotBias = 0.3
	opts.Storm.HotBlocks = 2
	structs := []core.Structure{core.StructFTSPM}

	run := func(cc CampaignConfig, ctx context.Context) ([]*SoakReport, *CampaignStatus, error) {
		return RunSoakCampaign(ctx, opts, structs, cc)
	}
	a, st, err := run(CampaignConfig{}, context.Background())
	if err != nil || st.Failed != 0 {
		t.Fatalf("first run: %v (%+v)", err, st)
	}
	b, _, err := run(CampaignConfig{}, context.Background())
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if !bytes.Equal(ja, jb) {
		t.Fatalf("identical storm campaigns diverged:\n%s\nvs\n%s", ja, jb)
	}
	if a[0].Strikes == 0 {
		t.Fatal("storm injected nothing; determinism test is vacuous")
	}

	// Interrupt after the first finished trial, then resume.
	path := filepath.Join(t.TempDir(), "storm.ckpt")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := 0
	_, _, err = run(CampaignConfig{Checkpoint: path,
		onJobDone: func(string, campaign.Status) {
			if done++; done == 1 {
				cancel()
			}
		}}, ctx)
	if !errors.Is(err, campaign.ErrIncomplete) {
		t.Fatalf("interrupted run: err = %v, want ErrIncomplete", err)
	}
	resumed, st2, err := run(CampaignConfig{Checkpoint: path, Resume: true}, context.Background())
	if err != nil || st2.Incomplete {
		t.Fatalf("resume: %v (%+v)", err, st2)
	}
	jr, _ := json.Marshal(resumed)
	if !bytes.Equal(ja, jr) {
		t.Fatalf("resumed storm campaign diverged from uninterrupted run:\n%s\nvs\n%s", ja, jr)
	}
}

// TestStormCacheBypass pins the cache rule: a cached non-storm result
// is never served for a storm request (and vice versa) — the fault-
// half mismatch is a recorded bypass, never a hit.
func TestStormCacheBypass(t *testing.T) {
	rec := spm.DefaultRecovery()
	base := SoakOptions{
		Workload: "crc32", Trials: 3, Scale: 0.02,
		StrikesPerAccess: 0.01, Seed: 7, Recovery: &rec,
	}
	structs := []core.Structure{core.StructFTSPM}
	ctx := context.Background()
	c := newTestCache(t)

	// Warm the cache with the non-storm campaign.
	if _, _, err := RunSoakCampaign(ctx, base, structs, CampaignConfig{Cache: c}); err != nil {
		t.Fatal(err)
	}
	warm := c.Stats()
	if warm.Misses != uint64(base.Trials) {
		t.Fatalf("warm-up stats %+v, want %d misses", warm, base.Trials)
	}

	// The same campaign with a storm attached must recompute every
	// trial: all bypasses, zero new hits.
	storm := base
	storm.Storm = &faults.StormConfig{StormStrikesPerAccess: 0.2}
	stormReps, _, err := RunSoakCampaign(ctx, storm, structs, CampaignConfig{Cache: c})
	if err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Hits != warm.Hits {
		t.Fatalf("stats %+v: a storm request hit a non-storm entry", st)
	}
	if st.Bypasses != warm.Bypasses+uint64(base.Trials) {
		t.Fatalf("stats %+v, want %d recorded bypasses", st, base.Trials)
	}

	// And the storm entries themselves are sound: a repeat hits, a
	// non-storm rerun bypasses the storm entries right back.
	again, _, err := RunSoakCampaign(ctx, storm, structs, CampaignConfig{Cache: c})
	if err != nil {
		t.Fatal(err)
	}
	if s2 := c.Stats(); s2.Hits != st.Hits+uint64(base.Trials) {
		t.Fatalf("stats %+v: identical storm campaign did not hit", s2)
	}
	ja, _ := json.Marshal(stormReps)
	jb, _ := json.Marshal(again)
	if !bytes.Equal(ja, jb) {
		t.Fatal("cached storm campaign diverged from the computed one")
	}
	if _, _, err := RunSoakCampaign(ctx, base, structs, CampaignConfig{Cache: c}); err != nil {
		t.Fatal(err)
	}
	if s3 := c.Stats(); s3.Hits != st.Hits+2*uint64(base.Trials) {
		t.Fatalf("stats %+v: non-storm rerun should hit its own warm entries", s3)
	}
}

// TestStormHotWindowsDeterministic pins the adversarial targeting: hot
// windows derive from the shared profile and placement, so every
// trial sees the same windows and a hot-biased campaign stays
// deterministic while differing from the untargeted one.
func TestStormHotWindowsDeterministic(t *testing.T) {
	opts := stormTestOptions()
	opts.Storm.HotBias = 0.9
	opts.Storm.HotBlocks = 2
	a, err := runSoakOn(opts, core.StructFTSPM)
	if err != nil {
		t.Fatal(err)
	}
	b, err := runSoakOn(opts, core.StructFTSPM)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("hot-biased storm campaign is not deterministic")
	}
	opts.Storm.HotBias = 0
	untargeted, err := runSoakOn(opts, core.StructFTSPM)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, untargeted) {
		t.Error("hot bias had no effect on the campaign (targeting inert)")
	}
}

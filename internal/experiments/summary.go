package experiments

import (
	"encoding/json"
	"io"

	"ftspm/internal/core"
)

// Summary is the machine-readable result of a sweep: the headline
// numbers plus one record per (workload, structure) run. It is what
// `ftspm-bench -json` emits, for downstream plotting or regression
// tracking.
type Summary struct {
	// Options echoes the sweep settings.
	Scale float64 `json:"scale"`
	// Headlines are the paper-comparable aggregates.
	Headlines Headlines `json:"headlines"`
	// Runs holds the per-run metrics.
	Runs []RunSummary `json:"runs"`
	// Campaign records the crash-safe campaign's salvage status when the
	// sweep was interrupted or lost jobs to permanent failures. Complete
	// sweeps omit it, so their JSON is unchanged from earlier versions.
	Campaign *CampaignStatus `json:"campaign,omitempty"`
}

// Headlines are the whole-suite aggregates matched against the paper.
type Headlines struct {
	// VulnerabilityImprovement is the Fig. 5 geo-mean ratio (paper ~7x).
	VulnerabilityImprovement float64 `json:"vulnerability_improvement"`
	// DynamicVsSRAM and DynamicVsSTT are the Fig. 7 total ratios
	// (paper 0.53 and 0.23).
	DynamicVsSRAM float64 `json:"dynamic_vs_sram"`
	DynamicVsSTT  float64 `json:"dynamic_vs_stt"`
	// StaticVsSRAM is the Fig. 6 total ratio (paper ~0.45-0.55).
	StaticVsSRAM float64 `json:"static_vs_sram"`
	// EnduranceImprovement is the Fig. 8 geo-mean ratio (paper ~10^3).
	EnduranceImprovement float64 `json:"endurance_improvement"`
	// PerfVsSRAM is the cycles ratio (paper < 1.01).
	PerfVsSRAM float64 `json:"perf_vs_sram"`
}

// RunSummary flattens one Outcome into serializable metrics.
type RunSummary struct {
	Workload         string  `json:"workload"`
	Structure        string  `json:"structure"`
	Cycles           uint64  `json:"cycles"`
	Accesses         uint64  `json:"accesses"`
	SPMDynamicPJ     float64 `json:"spm_dynamic_pj"`
	SPMStaticMJ      float64 `json:"spm_static_mj"`
	SPMLeakageMW     float64 `json:"spm_leakage_mw"`
	CacheEnergyPJ    float64 `json:"cache_energy_pj"`
	DRAMEnergyPJ     float64 `json:"dram_energy_pj"`
	Vulnerability    float64 `json:"vulnerability"`
	Reliability      float64 `json:"reliability"`
	STTWriteRate     float64 `json:"stt_write_rate_per_s"`
	MapIns           uint64  `json:"map_ins"`
	Evictions        uint64  `json:"evictions"`
	TransferCycles   uint64  `json:"transfer_cycles"`
	MappedBlocks     int     `json:"mapped_blocks"`
	EstPerfOverhead  float64 `json:"est_perf_overhead"`
	EstEnergyOverhd  float64 `json:"est_energy_overhead"`
	WriteThresholdWd float64 `json:"write_threshold_words"`
}

// Summarize flattens a sweep into a Summary.
func Summarize(sw *Sweep) (*Summary, error) {
	_, f5, err := Fig5(sw)
	if err != nil {
		return nil, err
	}
	_, dynSRAM, dynSTT, err := Fig7(sw)
	if err != nil {
		return nil, err
	}
	_, statSRAM, _, err := Fig6(sw)
	if err != nil {
		return nil, err
	}
	_, f8, err := Fig8(sw)
	if err != nil {
		return nil, err
	}
	_, perf, err := PerfOverhead(sw)
	if err != nil {
		return nil, err
	}
	s := &Summary{
		Scale: sw.Options.Scale,
		Headlines: Headlines{
			VulnerabilityImprovement: f5.GeoMeanRatio,
			DynamicVsSRAM:            dynSRAM,
			DynamicVsSTT:             dynSTT,
			StaticVsSRAM:             statSRAM,
			EnduranceImprovement:     f8.GeoMeanRatio,
			PerfVsSRAM:               perf,
		},
	}
	for i := range sw.Workloads {
		for _, out := range sw.Outcomes[i] {
			s.Runs = append(s.Runs, summarizeRun(out))
		}
	}
	return s, nil
}

// SummarizePartial flattens a possibly-salvaged sweep. A complete,
// fully-successful campaign (resumed or not) summarizes exactly as
// Summarize, byte-identically to an uninterrupted run; a salvaged sweep
// keeps only the runs that finished, zeroes the cross-suite headlines
// (meaningless over a partial suite), and records the campaign status
// under "campaign".
func SummarizePartial(sw *Sweep, status *CampaignStatus) (*Summary, error) {
	if status == nil || (!status.Incomplete && len(status.Failures) == 0) {
		return Summarize(sw)
	}
	s := &Summary{Scale: sw.Options.Scale, Campaign: status}
	for i, name := range sw.Workloads {
		for _, out := range sw.Outcomes[i] {
			if out.Workload != name {
				continue // cell lost to the drain or a failed job
			}
			s.Runs = append(s.Runs, summarizeRun(out))
		}
	}
	return s, nil
}

// SummarizeOutcome flattens one outcome into its serializable metrics —
// the single-evaluation analogue of Summarize, used by the serving
// layer for /v1/evaluate responses.
func SummarizeOutcome(out Outcome) RunSummary { return summarizeRun(out) }

func summarizeRun(out Outcome) RunSummary {
	return RunSummary{
		Workload:         out.Workload,
		Structure:        out.Structure.String(),
		Cycles:           uint64(out.Sim.Cycles),
		Accesses:         out.Sim.Accesses,
		SPMDynamicPJ:     float64(out.Sim.SPMDynamicEnergy),
		SPMStaticMJ:      float64(out.Sim.SPMStaticEnergy),
		SPMLeakageMW:     float64(out.Sim.SPMLeakage),
		CacheEnergyPJ:    float64(out.Sim.CacheEnergy),
		DRAMEnergyPJ:     float64(out.Sim.DRAMEnergy),
		Vulnerability:    out.AVF.Vulnerability(),
		Reliability:      out.AVF.Reliability(),
		STTWriteRate:     out.STTWriteRate,
		MapIns:           out.Sim.ICtl.MapIns + out.Sim.DCtl.MapIns,
		Evictions:        out.Sim.ICtl.Evictions + out.Sim.DCtl.Evictions,
		TransferCycles:   uint64(out.Sim.ICtl.TransferCycles + out.Sim.DCtl.TransferCycles),
		MappedBlocks:     len(out.Mapping.Placement),
		EstPerfOverhead:  out.Mapping.EstPerfOverhead,
		EstEnergyOverhd:  out.Mapping.EstEnergyOverhead,
		WriteThresholdWd: out.Mapping.WriteThresholdWords,
	}
}

// WriteJSON encodes the summary, indented, to w.
func (s *Summary) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// StructureNames maps the serialized structure strings back to
// Structure values (for consumers of the JSON).
func StructureNames() map[string]core.Structure {
	out := make(map[string]core.Structure)
	for _, s := range core.AllStructures() {
		out[s.String()] = s
	}
	return out
}

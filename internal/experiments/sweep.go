package experiments

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"ftspm/internal/campaign"
	"ftspm/internal/core"
	"ftspm/internal/profile"
	"ftspm/internal/trace"
	"ftspm/internal/workloads"
)

// Sweep evaluates the full MiBench-substitute suite on all three
// structures. Outcomes are indexed [workload][structure in
// core.Structures() order].
type Sweep struct {
	// Workloads lists the evaluated workload names in order.
	Workloads []string
	// Outcomes holds one row per workload, one column per structure in
	// core.Structures() order (pure SRAM, pure STT, FTSPM). In a
	// salvaged (incomplete or partially failed) sweep, missing cells
	// are zero-valued; Has reports presence.
	Outcomes [][]Outcome
	// Options records the sweep settings.
	Options Options
}

// RunSweep evaluates the suite. See RunSweepCampaign.
func RunSweep(opts Options) (*Sweep, error) {
	return RunSweepContext(context.Background(), opts)
}

// RunSweepContext evaluates the suite in-memory (no checkpoint). Any
// permanently-failed job fails the sweep with that job's error; a
// cancelled context returns the context error. Callers needing partial
// results, resume, retries, or deadlines use RunSweepCampaign.
func RunSweepContext(ctx context.Context, opts Options) (*Sweep, error) {
	sw, status, err := RunSweepCampaign(ctx, opts, CampaignConfig{})
	if err != nil {
		return nil, err
	}
	if f := status.FirstFailure(); f != nil {
		return nil, f
	}
	return sw, nil
}

// sharedWorkload is the once-per-workload state of a sweep: the
// materialized trace and its profile, computed by whichever worker
// reaches the workload first and read-shared by the structure runs.
// remaining counts the structure runs still owing a replay; the last
// one drops the trace so at most a worker-pool's worth of traces is
// ever live. (On a resumed sweep, structure runs already journaled
// never replay, so a partially-resumed workload's trace is retained
// until the sweep returns — bounded by the suite size.)
type sharedWorkload struct {
	once      sync.Once
	events    []trace.Event
	prof      *profile.Profile
	err       error
	remaining atomic.Int32
}

// sweepJobHook, when non-nil, runs at the start of every sweep job —
// the test seam for injecting a per-job panic and proving it stays
// isolated to that job.
var sweepJobHook func(workload string, s core.Structure)

// sweepJobID is the deterministic job identity inside a sweep
// campaign; the scale/threshold/priority configuration is carried by
// the campaign's config hash, not the ID.
func sweepJobID(workload string, s core.Structure) string {
	return "sweep/" + workload + "/" + s.String()
}

// sweepConfigHash fingerprints everything that determines a sweep
// job's result, so a checkpoint can never be silently reused across
// differently-configured campaigns.
func sweepConfigHash(opts Options, suite []workloads.Workload, structures []core.Structure) (string, error) {
	names := make([]string, len(suite))
	for i, w := range suite {
		names[i] = w.Name
	}
	structs := make([]string, len(structures))
	for i, s := range structures {
		structs[i] = s.String()
	}
	return campaign.HashJSON(struct {
		Kind       string
		Options    Options
		Workloads  []string
		Structures []string
	}{Kind: "sweep", Options: opts, Workloads: names, Structures: structs})
}

// RunSweepCampaign evaluates the full suite on all structures as a
// crash-safe campaign. The profile and trace of each (workload, scale)
// depend only on the seeded generator, never on the structure, so each
// workload is profiled exactly once and its trace is materialized
// exactly once; the (workload, structure) simulations fan out over the
// bounded worker pool, replaying the shared trace. Results are
// deterministic regardless of scheduling (every generator is seeded,
// shared state is read-only, each run owns its machine), and results
// restored from a checkpoint round-trip bit-exactly through JSON — an
// interrupted-then-resumed sweep reports byte-identically to an
// uninterrupted one.
//
// A job that panics or errors fails alone (recorded in the status with
// its stack) while the rest of the campaign completes. When ctx is
// cancelled, in-flight jobs finish and are journaled, the rest are
// reported pending, and the error wraps campaign.ErrIncomplete — the
// returned Sweep then holds every salvaged outcome.
func RunSweepCampaign(ctx context.Context, opts Options, cc CampaignConfig) (*Sweep, *CampaignStatus, error) {
	if err := cc.Validate(); err != nil {
		return nil, nil, err
	}
	src, err := SweepSource(opts)
	if err != nil {
		return nil, nil, err
	}
	if err := src.UseCache(cc.Cache); err != nil {
		return nil, nil, err
	}
	jobs, err := src.Jobs(src.IDs)
	if err != nil {
		return nil, nil, err
	}
	rep, runErr := campaign.Run(ctx, cc.runnerConfig(src.Hash), jobs)
	if rep == nil {
		return nil, nil, runErr
	}
	sw, status, err := src.AssembleSweep(rep)
	if err != nil {
		return nil, nil, err
	}
	return sw, status, runErr
}

// runSweepJob is one (workload, structure) evaluation: share the
// workload's profile and materialized trace, then simulate. The job
// context (carrying the per-job deadline) cancels only this job's
// simulation; the once-per-workload shared profiling runs detached so
// one job's deadline can never poison the share for its siblings.
func runSweepJob(ctx context.Context, w workloads.Workload, s core.Structure, sh *sharedWorkload, opts Options) (Outcome, error) {
	if sweepJobHook != nil {
		sweepJobHook(w.Name, s)
	}
	sh.once.Do(func() {
		sh.events = w.TraceEvents(opts.Scale)
		sh.prof, sh.err = profile.Run(w.Program(), trace.Replay(sh.events))
		if sh.err != nil {
			sh.err = fmt.Errorf("experiments: profile %s: %w", w.Name, sh.err)
		}
	})
	if sh.err != nil {
		return Outcome{}, sh.err
	}
	if sh.prof == nil {
		// The profiling attempt panicked out of the Once: the panic was
		// isolated to the job that ran it, but the share is poisoned.
		return Outcome{}, fmt.Errorf("experiments: profile %s: unavailable (profiling panicked)", w.Name)
	}
	spec, err := core.NewSpec(s)
	if err != nil {
		return Outcome{}, fmt.Errorf("experiments: sweep %s/%v: %w", w.Name, s, err)
	}
	out, err := evaluateSpecStream(ctx, w, spec, sh.prof, trace.Replay(sh.events), opts)
	if err != nil {
		return Outcome{}, fmt.Errorf("experiments: sweep %s/%v: %w", w.Name, s, err)
	}
	if sh.remaining.Add(-1) == 0 {
		sh.events = nil // last replay done; release the trace
	}
	return out, nil
}

// Has reports whether the sweep holds an outcome for the pair (always
// true for a complete sweep; false for cells lost to a drain or a
// failed job in a salvaged sweep).
func (s *Sweep) Has(workload string, structure core.Structure) bool {
	_, err := s.Get(workload, structure)
	return err == nil
}

// Get returns the outcome for a workload/structure pair.
func (s *Sweep) Get(workload string, structure core.Structure) (Outcome, error) {
	for i, name := range s.Workloads {
		if name != workload {
			continue
		}
		for _, out := range s.Outcomes[i] {
			if out.Structure == structure && out.Workload == workload {
				return out, nil
			}
		}
	}
	return Outcome{}, fmt.Errorf("experiments: no outcome for %s/%v", workload, structure)
}

package experiments

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"

	"ftspm/internal/core"
	"ftspm/internal/workloads"
)

var sweepTestOpts = Options{Scale: 0.05}

// outcomesAgree compares the externally meaningful fields of two
// outcomes: execution accounting, energies, reliability, endurance,
// and the placement itself.
func outcomesAgree(t *testing.T, label string, a, b Outcome) {
	t.Helper()
	if a.Sim.Cycles != b.Sim.Cycles {
		t.Fatalf("%s: cycles %d vs %d", label, a.Sim.Cycles, b.Sim.Cycles)
	}
	if a.Sim.SPMDynamicEnergy != b.Sim.SPMDynamicEnergy ||
		a.Sim.SPMStaticEnergy != b.Sim.SPMStaticEnergy {
		t.Fatalf("%s: energies diverge", label)
	}
	if a.AVF.SDCAVF != b.AVF.SDCAVF || a.AVF.DUEAVF != b.AVF.DUEAVF {
		t.Fatalf("%s: AVF diverges (%v/%v vs %v/%v)", label,
			a.AVF.SDCAVF, a.AVF.DUEAVF, b.AVF.SDCAVF, b.AVF.DUEAVF)
	}
	if a.STTWriteRate != b.STTWriteRate {
		t.Fatalf("%s: STT write rate %v vs %v", label, a.STTWriteRate, b.STTWriteRate)
	}
	if !reflect.DeepEqual(a.Mapping.Placement, b.Mapping.Placement) {
		t.Fatalf("%s: placements diverge", label)
	}
}

// TestSweepSharedProfileMatchesIndependentRuns is the tentpole
// determinism gate: the sweep — which profiles each workload once and
// replays one shared trace — must produce outcomes identical to
// independent Evaluate calls that recompute everything per run.
func TestSweepSharedProfileMatchesIndependentRuns(t *testing.T) {
	sw, err := RunSweep(sweepTestOpts)
	if err != nil {
		t.Fatal(err)
	}
	suite := workloads.Suite()
	structures := core.Structures()
	for wi, w := range suite {
		for si, s := range structures {
			independent, err := Evaluate(w, s, sweepTestOpts)
			if err != nil {
				t.Fatal(err)
			}
			outcomesAgree(t, w.Name+"/"+s.String(), sw.Outcomes[wi][si], independent)
		}
	}
}

// TestConcurrentSweepsDoNotInterfere runs two full sweeps in parallel;
// sharing a profile inside one sweep must not leak state across
// sweeps (every generator is seeded, shared slices are read-only).
func TestConcurrentSweepsDoNotInterfere(t *testing.T) {
	var wg sync.WaitGroup
	results := make([]*Sweep, 2)
	errs := make([]error, 2)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = RunSweep(sweepTestOpts)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("sweep %d: %v", i, err)
		}
	}
	a, b := results[0], results[1]
	for wi := range a.Outcomes {
		for si := range a.Outcomes[wi] {
			outcomesAgree(t, a.Workloads[wi]+"/"+a.Outcomes[wi][si].Structure.String(),
				a.Outcomes[wi][si], b.Outcomes[wi][si])
		}
	}
}

func TestRunSweepContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sw, err := RunSweepContext(ctx, sweepTestOpts)
	if sw != nil {
		t.Fatal("cancelled sweep returned results")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestCachedTraceMatchesGenerator guards the ablation drivers' shared
// cache: a replayed cached trace must profile identically to a fresh
// generator stream.
func TestCachedTraceMatchesGenerator(t *testing.T) {
	w := workloads.CaseStudy()
	a, err := Evaluate(w, core.StructFTSPM, sweepTestOpts)
	if err != nil {
		t.Fatal(err)
	}
	spec := core.MustSpec(core.StructFTSPM)
	b, err := evaluateSpecStream(context.Background(), w, spec, a.Profile, cachedTrace(w, sweepTestOpts.Scale), sweepTestOpts)
	if err != nil {
		t.Fatal(err)
	}
	outcomesAgree(t, "cached-vs-stream", a, b)
}

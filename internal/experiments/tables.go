package experiments

import (
	"fmt"

	"ftspm/internal/core"
	"ftspm/internal/endurance"
	"ftspm/internal/memtech"
	"ftspm/internal/report"
	"ftspm/internal/spm"
	"ftspm/internal/workloads"
)

// TableI regenerates the case-study profiling table (paper Table I):
// per-block reads, writes, per-reference averages, stack statistics, and
// life-time.
func TableI(opts Options) (*report.Table, error) {
	opts = opts.normalize()
	w := workloads.CaseStudy()
	out, err := Evaluate(w, core.StructFTSPM, opts)
	if err != nil {
		return nil, err
	}
	t := report.New(
		fmt.Sprintf("Table I: profiling of the case-study program (scale %.2f)", opts.Scale),
		"Block", "Reads", "Writes", "Avg reads/ref", "Avg writes/ref",
		"Stack calls", "Max stack (B)", "Life-time (cycles)")
	for _, bp := range out.Profile.Blocks {
		t.AddRow(
			bp.Block.Name,
			report.Count(bp.Reads),
			report.Count(bp.Writes),
			report.Float(bp.AvgReadsPerRef(), 1),
			report.Float(bp.AvgWritesPerRef(), 1),
			report.Count(bp.StackCalls),
			report.Count(bp.MaxStackBytes),
			report.Count(int(bp.Lifetime)),
		)
	}
	return t, nil
}

// TableII regenerates the MDA placement for the case study (paper Table
// II): whether each block is mapped and to which region.
func TableII(opts Options) (*report.Table, error) {
	opts = opts.normalize()
	w := workloads.CaseStudy()
	out, err := Evaluate(w, core.StructFTSPM, opts)
	if err != nil {
		return nil, err
	}
	t := report.New(
		"Table II: Mapping Determiner Algorithm output for the case study",
		"Block", "Mapped to SPM", "Region", "Reason")
	for _, d := range out.Mapping.Decisions {
		mapped, region := "No", "-"
		if d.Mapped {
			mapped = "Yes"
			region = d.Target.String()
		}
		t.AddRow(d.Block.Name, mapped, region, d.Reason)
	}
	return t, nil
}

// TableIIIResult carries the endurance sweep of paper Table III.
type TableIIIResult struct {
	// Rows are the per-threshold lifetimes.
	Rows []endurance.Row
	// BaselineRate and FTSPMRate are the hottest-STT-cell write rates
	// (writes/second).
	BaselineRate, FTSPMRate float64
}

// Improvement returns the (threshold-invariant) lifetime ratio.
func (r TableIIIResult) Improvement() float64 {
	if len(r.Rows) == 0 {
		return 0
	}
	return r.Rows[0].Improvement()
}

// TableIII regenerates the endurance comparison (paper Table III):
// lifetime of the pure STT-RAM SPM versus FTSPM across write-cycle
// thresholds 10^12..10^16. The case study runs at full trace length
// regardless of opts.Scale: the hottest-cell rates are what a real
// execution accumulates, and short traces understate the stack's wear.
func TableIII(opts Options) (*TableIIIResult, *report.Table, error) {
	opts = opts.normalize()
	opts.Scale = 1.0
	w := workloads.CaseStudy()
	base, err := Evaluate(w, core.StructPureSTT, opts)
	if err != nil {
		return nil, nil, err
	}
	ftspm, err := Evaluate(w, core.StructFTSPM, opts)
	if err != nil {
		return nil, nil, err
	}
	res := &TableIIIResult{
		Rows:         endurance.Table(base.STTWriteRate, ftspm.STTWriteRate, endurance.PaperThresholds()),
		BaselineRate: base.STTWriteRate,
		FTSPMRate:    ftspm.STTWriteRate,
	}
	t := report.New(
		"Table III: endurance of pure STT-RAM SPM vs FTSPM (case study, full trace)",
		"Write threshold", "Pure STT-RAM SPM", "FTSPM", "Improvement")
	for _, row := range res.Rows {
		t.AddRow(
			fmt.Sprintf("%.0e", row.Threshold),
			endurance.Humanize(row.BaselineSTTSec),
			endurance.Humanize(row.FTSPMSec),
			report.Float(row.Improvement(), 0)+"x",
		)
	}
	return res, t, nil
}

// TableIV renders the structure configurations (paper Table IV).
func TableIV() (*report.Table, error) {
	t := report.New(
		"Table IV: configuration parameters of the evaluated structures",
		"Structure", "SPM", "Region", "Size", "Read lat", "Write lat", "Leakage")
	for _, s := range core.Structures() {
		spec, err := core.NewSpec(s)
		if err != nil {
			return nil, err
		}
		add := func(side string, regions []spm.RegionConfig) error {
			for _, rc := range regions {
				bank, err := memtech.EstimateBank(rc.Kind.Technology(), rc.Kind.Protection(), rc.SizeBytes)
				if err != nil {
					return err
				}
				t.AddRow(
					s.String(), side, rc.Kind.String(),
					fmt.Sprintf("%d KB", rc.SizeBytes/1024),
					fmt.Sprintf("%d clk", bank.ReadLatency),
					fmt.Sprintf("%d clk", bank.WriteLatency),
					bank.Leakage.String(),
				)
			}
			return nil
		}
		if err := add("I-SPM", spec.ISPM); err != nil {
			return nil, err
		}
		if err := add("D-SPM", spec.DSPM); err != nil {
			return nil, err
		}
	}
	return t, nil
}

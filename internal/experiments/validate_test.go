package experiments

import (
	"testing"

	"ftspm/internal/core"
)

func TestValidateAVFEmpiricalOrdering(t *testing.T) {
	rows, tb, err := ValidateAVF("casestudy", 0.05, 404, testOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 || len(tb.Rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	byStruct := map[core.Structure]ValidationRow{}
	for _, r := range rows {
		byStruct[r.Structure] = r
		if r.Strikes == 0 {
			t.Fatalf("%v: no strikes landed", r.Structure)
		}
	}
	sram := byStruct[core.StructPureSRAM]
	stt := byStruct[core.StructPureSTT]
	ft := byStruct[core.StructFTSPM]

	// The immune structure consumes nothing, ever.
	if stt.ConsumedErrors() != 0 || stt.CorrectedReads != 0 {
		t.Errorf("pure STT-RAM consumed errors under injection: %+v", stt)
	}
	// The ECC baseline corrects the single-bit majority.
	if sram.CorrectedReads == 0 {
		t.Error("ECC baseline corrected nothing")
	}
	// The empirical face of Fig. 5: the baseline consumes several times
	// more corrupted reads than FTSPM at the same strike rate.
	if sram.ConsumedErrors() == 0 {
		t.Fatal("baseline consumed no errors — campaign too small")
	}
	if ft.ConsumedErrors()*2 >= sram.ConsumedErrors() {
		t.Errorf("FTSPM consumed %d vs baseline %d; want a clear gap",
			ft.ConsumedErrors(), sram.ConsumedErrors())
	}
	// Analytic predictions attached for the table: baseline at 0.38.
	if sram.AnalyticVulnerability < 0.379 || sram.AnalyticVulnerability > 0.381 {
		t.Errorf("baseline analytic vulnerability = %v", sram.AnalyticVulnerability)
	}
}

func TestValidateAVFDefaultsAndErrors(t *testing.T) {
	if _, _, err := ValidateAVF("nope", 0.01, 1, testOpts); err == nil {
		t.Error("unknown workload accepted")
	}
	rows, _, err := ValidateAVF("crc32", 0, 1, Options{Scale: 0.05})
	if err != nil || len(rows) != 3 {
		t.Fatalf("default rate run failed: %v", err)
	}
}

package fabric

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"time"

	"ftspm/internal/campaign"
)

// This file is the coordinator's audit arm: re-execute a deterministic
// fraction of remotely-completed jobs on a different executor and
// compare payloads. Attestation (sum + fingerprint checks at merge
// time) catches results corrupted in flight; the audit catches the
// strictly worse failure the attestation cannot — a worker that
// computes a wrong value and then honestly checksums it (bad RAM, a
// flaky core, a byzantine process). One divergence convicts the origin:
// nothing it produced that an audit has not confirmed stays in the
// report.
//
// Comparison is over the result *value* payload only
// (campaign.SumBytes of Result.Value), not the whole record: a job that
// needed a retry on one executor and not the other differs in Attempts
// without its answer differing, and convicting over retry metadata
// would turn flakiness into false SDC verdicts.

// auditPick deterministically selects jobs for audit re-execution: a
// seeded hash of the campaign and job identity against AuditFrac, so
// the same campaign audits the same jobs on every run (and a resume
// does not re-roll the dice).
func (f *fabricRun) auditPick(id string) bool {
	if f.cfg.AuditFrac <= 0 {
		return false
	}
	if f.cfg.AuditFrac >= 1 {
		return true
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "audit|%s|%s|%d", f.src.Hash, id, f.cfg.AuditSeed)
	return float64(h.Sum64()>>11)/float64(uint64(1)<<53) < f.cfg.AuditFrac
}

// audit re-executes one job and compares value payloads. origSum is the
// value sum of the merged result; origin the worker that produced it.
// The re-execution prefers a different worker; divergence against a
// remote auditor is tie-broken by a local re-execution (the trust
// anchor), which decides whether the origin, the auditor, or both lied.
// An audit that cannot complete (no executor, drain) is inconclusive
// and convicts nobody.
func (f *fabricRun) audit(ctx context.Context, id, origSum string, origin *workerRef) {
	if ctx.Err() != nil {
		return
	}
	trusted := ""
	var auditor *workerRef
	if w := f.auditorFor(origin); w != nil {
		if sum, ok := f.reexecRemote(ctx, w, id); ok {
			auditor, trusted = w, sum
		}
	}
	if auditor == nil {
		sum, err := f.reexecLocal(ctx, id)
		if err != nil {
			f.cfg.Logf("fabric: audit of %s inconclusive: %v", id, err)
			return
		}
		trusted = sum
	}

	f.auditMu.Lock()
	f.auditSum.Audited++
	f.auditMu.Unlock()

	// A concurrent conviction may already have revoked the result this
	// audit re-executed; its verdict applies to a record that no longer
	// exists, so it is discarded either way.
	stale := func() bool { return f.m.currentSum(id) != origSum }

	if trusted == origSum {
		if !stale() {
			f.auditConfirm(id)
		}
		return
	}

	// Divergence. If the auditor was remote, it is as suspect as the
	// origin until a local re-execution arbitrates.
	local := trusted
	if auditor != nil {
		sum, err := f.reexecLocal(ctx, id)
		if err != nil {
			f.cfg.Logf("fabric: audit of %s diverged (%s vs %s) but local tiebreak failed: %v; convicting nobody",
				id, origSum, trusted, err)
			return
		}
		local = sum
		if trusted != local {
			// The auditor itself diverges from the trust anchor.
			f.convict(auditor, id, trusted, local)
		}
	}
	if origSum == local {
		// The origin agreed with the trusted value all along — the
		// remote auditor was the liar (convicted above).
		if !stale() {
			f.auditConfirm(id)
		}
		return
	}
	if stale() {
		return
	}
	f.convict(origin, id, origSum, local)
}

// auditConfirm records a passed audit and shields the result from later
// convictions of its origin.
func (f *fabricRun) auditConfirm(id string) {
	f.m.auditPass(id)
	f.auditMu.Lock()
	f.auditSum.Passed++
	f.auditMu.Unlock()
}

// auditorFor picks a worker other than the origin to re-execute on:
// healthy, not convicted, breaker closed. nil falls the audit back to
// local re-execution.
func (f *fabricRun) auditorFor(origin *workerRef) *workerRef {
	for _, w := range f.workers {
		if w == origin || w.isSuspect() || w.isDown() || !w.brk.Ready() {
			continue
		}
		return w
	}
	return nil
}

// convict marks one worker SUSPECT after a confirmed divergence: its
// breaker latches open (no cooldown recovery), its loop exits, every
// unconfirmed result it produced is revoked — tombstoned in the journal
// and dropped from the report — and the revoked jobs re-queue onto
// trustworthy executors. The divergence is itemized in the audit
// summary.
func (f *fabricRun) convict(w *workerRef, id, gotSum, wantSum string) {
	w.setSuspect()
	w.brk.ForceOpen()
	ids, err := f.m.invalidateFrom(w.url)

	f.auditMu.Lock()
	f.auditSum.Divergences = append(f.auditSum.Divergences, campaign.AuditDivergence{
		JobID: id, Worker: w.url, GotSum: gotSum, WantSum: wantSum,
	})
	f.auditSum.Invalidated += len(ids)
	if !f.suspects[w.url] {
		f.suspects[w.url] = true
		f.auditSum.SuspectWorkers = append(f.auditSum.SuspectWorkers, w.url)
	}
	f.auditMu.Unlock()

	f.cfg.Logf("fabric: worker %s CONVICTED: job %s re-executed to %s, worker returned %s; %d unaudited results invalidated and re-queued",
		w.url, id, wantSum, gotSum, len(ids))
	if err != nil {
		// The tombstone journaling failed mid-conviction: the journal is
		// gone, and with it the crash-safety of the revocation.
		f.q.fail(fmt.Errorf("checkpoint: invalidate convicted results: %w", err))
		return
	}
	f.q.reopen(ids)
}

// reexecRemote re-executes one job on worker w and returns its value
// attestation sum. ok=false means the audit attempt is inconclusive
// (placement failed, stream died, attestation mismatch, or the job
// failed remotely); the caller falls back to local re-execution.
func (f *fabricRun) reexecRemote(ctx context.Context, w *workerRef, id string) (sum string, ok bool) {
	req := f.tmpl
	req.JobIDs = []string{id}

	sctx, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)
	lease := time.AfterFunc(f.cfg.Lease, func() { cancel(errLeaseExpired) })
	defer lease.Stop()
	st, err := w.cl.Fabric(sctx, req)
	if err != nil {
		w.brk.RecordOutcome(true)
		return "", false
	}
	defer st.Close()
	for {
		line, err := st.Next()
		if err != nil {
			return "", false
		}
		lease.Reset(f.cfg.Lease)
		if line.Result != nil && line.Result.ID == id {
			res := *line.Result
			rsum, _, serr := campaign.SumResult(res)
			if serr != nil || line.Sum != rsum || line.Fp != f.fp {
				w.brk.RecordOutcome(true)
				w.setDown(true)
				return "", false
			}
			if res.Status != campaign.StatusDone {
				return "", false
			}
			return campaign.SumBytes(res.Value), true
		}
		if line.Done != nil {
			return "", false
		}
	}
}

// reexecLocal re-executes one job in-process — the audit's trust anchor
// — and returns its value attestation sum. The uncached job path is
// deliberate: an audit must recompute, never read back a memo, or the
// verification would be circular.
func (f *fabricRun) reexecLocal(ctx context.Context, id string) (string, error) {
	jobs, err := f.src.JobsUncached([]string{id})
	if err != nil {
		return "", err
	}
	var sum string
	cfg := campaign.Config{
		Workers:    1,
		JobTimeout: f.cfg.JobTimeout,
		Attempts:   f.cfg.Retries + 1,
		OnJobResult: func(res campaign.Result[json.RawMessage]) {
			if res.ID == id && res.Status == campaign.StatusDone {
				sum = campaign.SumBytes(res.Value)
			}
		},
	}
	if _, err := campaign.Run(ctx, cfg, jobs); err != nil {
		return "", err
	}
	if sum == "" {
		return "", fmt.Errorf("local re-execution of %s did not complete", id)
	}
	return sum, nil
}

package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
	"time"

	"ftspm/internal/core"
	"ftspm/internal/experiments"
	"ftspm/internal/resultcache"
)

// A coordinator whose cache already holds every result must complete
// the campaign without placing a single job: the worker list is an
// unreachable address and local fallback is disabled, so any job that
// escaped the cache pre-merge would hang the run. The assembled sweep
// must be byte-identical to a plain single-node run.
func TestCoordinatorCacheCompletesWithoutWorkers(t *testing.T) {
	opts := experiments.Options{Scale: 0.02}
	golden, gst, err := experiments.RunSweepCampaign(context.Background(), opts, experiments.CampaignConfig{})
	if err != nil {
		t.Fatalf("golden sweep: %v", err)
	}
	if gst.Incomplete || gst.Failed != 0 {
		t.Fatalf("golden status unclean: %+v", gst)
	}

	c, err := resultcache.Open(resultcache.Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Warm the cache through a local cached campaign — the only path
	// results are allowed to enter a coordinator cache from.
	if _, _, err := experiments.RunSweepCampaign(context.Background(), opts,
		experiments.CampaignConfig{Cache: c}); err != nil {
		t.Fatalf("warming sweep: %v", err)
	}
	warm := c.Stats()

	// Safety net: a cache miss would leave the queue undrainable (no
	// reachable worker, no fallback), so a stuck run fails loudly here
	// rather than timing out the whole test binary.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	sw, st, err := RunSweep(ctx, Config{
		Workers:         []string{"http://127.0.0.1:1"},
		NoLocalFallback: true,
		ProbeInterval:   20 * time.Millisecond,
		ProbeTimeout:    100 * time.Millisecond,
		Cache:           c,
		Logf:            t.Logf,
	}, opts)
	if err != nil {
		t.Fatalf("fabric sweep from cache: %v", err)
	}
	if st.Incomplete || st.Failed != 0 || st.Pending != 0 {
		t.Fatalf("fabric status unclean: %+v", st)
	}
	got, _ := json.Marshal(sw)
	want, _ := json.Marshal(golden)
	if !bytes.Equal(got, want) {
		t.Fatalf("cache-served sweep diverged from single-node golden:\n got %s\nwant %s", got, want)
	}
	if after := c.Stats(); after.Hits <= warm.Hits {
		t.Fatalf("coordinator run recorded no cache hits: before %+v after %+v", warm, after)
	}
}

// A partially warm cache pre-merges what it holds and the rest executes
// through the normal placement path (here the local fallback, with
// every worker down): the soak report must be byte-identical to a
// single-node run, and the shared trial keys mean a 2-trial warmup
// serves half of a 4-trial campaign.
func TestCoordinatorCachePartialWarmMergesWithExecution(t *testing.T) {
	structures := []core.Structure{core.StructFTSPM}
	warmOpts := experiments.SoakOptions{Trials: 2, Scale: 0.02, StrikesPerAccess: 0.02, Seed: 5}
	fullOpts := warmOpts
	fullOpts.Trials = 4

	golden, gst, err := experiments.RunSoakCampaign(context.Background(), fullOpts, structures, experiments.CampaignConfig{})
	if err != nil {
		t.Fatalf("golden soak: %v", err)
	}
	if gst.Incomplete || gst.Failed != 0 {
		t.Fatalf("golden status unclean: %+v", gst)
	}

	c, err := resultcache.Open(resultcache.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := experiments.RunSoakCampaign(context.Background(), warmOpts, structures,
		experiments.CampaignConfig{Cache: c}); err != nil {
		t.Fatalf("warming soak: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	reports, st, err := RunSoak(ctx, Config{
		Workers:       []string{"http://127.0.0.1:1"},
		ProbeInterval: 20 * time.Millisecond,
		ProbeTimeout:  100 * time.Millisecond,
		Cache:         c,
		Logf:          t.Logf,
	}, fullOpts, structures)
	if err != nil {
		t.Fatalf("fabric soak: %v", err)
	}
	if st.Incomplete || st.Failed != 0 {
		t.Fatalf("fabric status unclean: %+v", st)
	}
	got, _ := json.Marshal(reports)
	want, _ := json.Marshal(golden)
	if !bytes.Equal(got, want) {
		t.Fatalf("partially-cached soak diverged from single-node golden:\n got %s\nwant %s", got, want)
	}
	if s := c.Stats(); s.Hits < 2 {
		t.Fatalf("expected the 2 warmed trials to pre-merge as hits, stats %+v", s)
	}
}

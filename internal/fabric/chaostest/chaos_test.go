package chaostest

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"

	"ftspm/internal/campaign"
	"ftspm/internal/core"
	"ftspm/internal/experiments"
	"ftspm/internal/fabric"
)

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// A 3-worker sweep where one worker sheds its first placements, one is
// killed mid-stream, and one hangs mid-stream until the lease watchdog
// reaps it: the merged sweep must still be byte-identical to a
// single-node run, with nothing pending and nothing failed.
func TestChaosSweepByteIdenticalUnderKillHangShed(t *testing.T) {
	opts := experiments.Options{Scale: 0.02}
	golden, gst, err := experiments.RunSweepCampaign(context.Background(), opts, experiments.CampaignConfig{})
	if err != nil {
		t.Fatalf("golden sweep: %v", err)
	}
	if gst.Incomplete || gst.Failed != 0 {
		t.Fatalf("golden status unclean: %+v", gst)
	}

	shedder := New(t)
	shedder.SetScript(Script{KillAfterLines: Off, HangAfterLines: Off, Shed429: 2})
	killer := New(t)
	killer.SetScript(Script{KillAfterLines: 2, HangAfterLines: Off, Once: true})
	hanger := New(t)
	hanger.SetScript(Script{KillAfterLines: Off, HangAfterLines: 1, Once: true})

	sw, st, err := fabric.RunSweep(context.Background(), fabric.Config{
		Workers:       []string{shedder.URL(), killer.URL(), hanger.URL()},
		ChunkSize:     3,
		Lease:         1500 * time.Millisecond,
		ProbeInterval: 50 * time.Millisecond,
		MaxPlacements: 5,
		Logf:          t.Logf,
	}, opts)
	if err != nil {
		t.Fatalf("fabric sweep: %v", err)
	}
	if st.Incomplete || st.Failed != 0 || st.Pending != 0 {
		t.Fatalf("fabric status unclean: %+v", st)
	}
	if got, want := mustJSON(t, sw), mustJSON(t, golden); !bytes.Equal(got, want) {
		t.Fatalf("distributed sweep diverged from single-node golden:\n got %s\nwant %s", got, want)
	}
}

// With every worker down, the coordinator must degrade to local
// execution and still finish the campaign byte-identical to a
// single-node run.
func TestChaosSoakAllWorkersDownFallsBackToLocal(t *testing.T) {
	base := experiments.SoakOptions{Trials: 3, Scale: 0.02, StrikesPerAccess: 0.02, Seed: 11}
	structures := []core.Structure{core.StructFTSPM, core.StructPureSRAM}
	golden, gst, err := experiments.RunSoakCampaign(context.Background(), base, structures, experiments.CampaignConfig{})
	if err != nil {
		t.Fatalf("golden soak: %v", err)
	}
	if gst.Incomplete || gst.Failed != 0 {
		t.Fatalf("golden status unclean: %+v", gst)
	}

	w1, w2 := New(t), New(t)
	w1.SetDown(true)
	w2.SetDown(true)

	reports, st, err := fabric.RunSoak(context.Background(), fabric.Config{
		Workers:       []string{w1.URL(), w2.URL()},
		ProbeInterval: 50 * time.Millisecond,
		ProbeTimeout:  200 * time.Millisecond,
		Logf:          t.Logf,
	}, base, structures)
	if err != nil {
		t.Fatalf("fabric soak with all workers down: %v", err)
	}
	if st.Incomplete || st.Failed != 0 {
		t.Fatalf("fabric status unclean: %+v", st)
	}
	if w1.Placements()+w2.Placements() != 0 {
		t.Fatalf("down workers accepted placements: %d/%d", w1.Placements(), w2.Placements())
	}
	if got, want := mustJSON(t, reports), mustJSON(t, golden); !bytes.Equal(got, want) {
		t.Fatalf("local-fallback soak diverged from single-node golden:\n got %s\nwant %s", got, want)
	}
}

// A worker that kills every stream before the first result is a poison
// environment for every job placed on it: with no local fallback, the
// coordinator must re-place each job solo, burn its placement budget,
// quarantine it, and report the campaign incomplete instead of spinning
// forever.
func TestChaosPersistentKillerQuarantinesJobs(t *testing.T) {
	base := experiments.SoakOptions{Trials: 2, Scale: 0.02, StrikesPerAccess: 0.02, Seed: 3}
	structures := []core.Structure{core.StructFTSPM}

	killer := New(t)
	killer.SetScript(Script{KillAfterLines: 0, HangAfterLines: Off})

	_, st, err := fabric.RunSoak(context.Background(), fabric.Config{
		Workers:         []string{killer.URL()},
		ProbeInterval:   20 * time.Millisecond,
		Lease:           2 * time.Second,
		MaxPlacements:   2,
		NoLocalFallback: true,
		Logf:            t.Logf,
	}, base, structures)
	if !errors.Is(err, campaign.ErrIncomplete) {
		t.Fatalf("err = %v, want wrapped campaign.ErrIncomplete", err)
	}
	if !strings.Contains(err.Error(), "quarantined") {
		t.Fatalf("err = %v, want quarantine diagnosis", err)
	}
	if !st.Incomplete || st.Pending != 2 {
		t.Fatalf("status = %+v, want 2 pending (quarantined) jobs", st)
	}
	// 2 jobs × MaxPlacements lost placements each.
	if killer.Placements() < 4 {
		t.Fatalf("placements = %d, want >= 4", killer.Placements())
	}
}

// The checkpoint journal a fabric run writes is the same file a
// single-node campaign writes: a campaign interrupted on the fabric
// resumes locally, and the final report matches the uninterrupted
// golden byte for byte (cross-executor resume interop).
func TestChaosFabricCheckpointResumesLocally(t *testing.T) {
	base := experiments.SoakOptions{Trials: 4, Scale: 0.02, StrikesPerAccess: 0.02, Seed: 17}
	structures := []core.Structure{core.StructFTSPM}
	golden, _, err := experiments.RunSoakCampaign(context.Background(), base, structures, experiments.CampaignConfig{})
	if err != nil {
		t.Fatalf("golden soak: %v", err)
	}

	ckpt := t.TempDir() + "/fabric.ckpt"
	w := New(t)
	w.SetScript(Script{KillAfterLines: 2, HangAfterLines: Off}) // every placement dies after 2 results

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	var fabErr error
	go func() {
		defer close(done)
		_, _, fabErr = fabric.RunSoak(ctx, fabric.Config{
			Workers:         []string{w.URL()},
			ChunkSize:       4,
			ProbeInterval:   20 * time.Millisecond,
			MaxPlacements:   2,
			NoLocalFallback: true,
			Checkpoint:      ckpt,
			Logf:            t.Logf,
		}, base, structures)
	}()
	// Let it merge some results, then drain the coordinator mid-flight.
	time.Sleep(400 * time.Millisecond)
	cancel()
	<-done
	if fabErr == nil {
		t.Log("fabric run finished before the drain; resume covers 0 pending jobs")
	} else if !errors.Is(fabErr, campaign.ErrIncomplete) {
		t.Fatalf("fabric err = %v, want wrapped campaign.ErrIncomplete", fabErr)
	}

	// Resume the same checkpoint with the plain single-node runner.
	reports, st, err := experiments.RunSoakCampaign(context.Background(), base, structures,
		experiments.CampaignConfig{Checkpoint: ckpt, Resume: true})
	if err != nil {
		t.Fatalf("local resume of fabric checkpoint: %v", err)
	}
	if st.Incomplete || st.Failed != 0 {
		t.Fatalf("resumed status unclean: %+v", st)
	}
	if got, want := mustJSON(t, reports), mustJSON(t, golden); !bytes.Equal(got, want) {
		t.Fatalf("resumed report diverged from golden:\n got %s\nwant %s", got, want)
	}
}

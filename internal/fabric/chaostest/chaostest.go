// Package chaostest is the fabric's deterministic chaos harness: a
// FakeWorker is a real ftspmd handler (the genuine /v1/fabric and
// /healthz code paths) wrapped in a scriptable fault injector that can
// refuse connections, shed placements with 429, start slowly, cut the
// connection after a scripted number of streamed lines, or hang
// mid-stream until the coordinator's lease gives up on it. Faults are
// scripted by line count, not by timing, so a chaos run exercises the
// same failure sequence on every machine; the test oracle is
// byte-identity of the merged report against a single-node golden run.
package chaostest

import (
	"bytes"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"ftspm/internal/server"
)

// Script describes one worker's misbehaviour. The zero value of the
// line-count fields means "fire immediately"; use Off (or DefaultScript)
// to disable a fault.
type Script struct {
	// KillAfterLines cuts the connection (hijack + close, no trailer)
	// once this many stream lines have been written. Off disables.
	KillAfterLines int
	// HangAfterLines stops streaming after this many lines and blocks
	// until the coordinator abandons the connection — the shape of a
	// hung-but-alive worker only the lease watchdog can detect. Off
	// disables.
	HangAfterLines int
	// Once clears the kill/hang faults after their first firing, so the
	// worker is healthy for re-placements (a crashed-and-restarted
	// worker rather than a persistently broken one).
	Once bool
	// Shed429 answers this worker's first N placements with 429.
	Shed429 int
	// SlowStart delays each placement's first byte.
	SlowStart time.Duration
}

// Off disables a line-count fault.
const Off = -1

// DefaultScript is a fault-free script.
func DefaultScript() Script {
	return Script{KillAfterLines: Off, HangAfterLines: Off}
}

// FakeWorker is one scriptable cluster member.
type FakeWorker struct {
	ts    *httptest.Server
	inner http.Handler

	mu         sync.Mutex
	script     Script
	down       bool
	placements int
}

// New starts a fake worker backed by a real server handler. It is
// stopped via t.Cleanup.
func New(t testing.TB) *FakeWorker {
	return NewWithServerConfig(t, server.Config{})
}

// NewWithServerConfig starts a fake worker whose inner server uses the
// given config — the hook for integrity drills: a byzantine worker is
// built with ChaosCorruptFrac > 0, a version-skewed one with a foreign
// Fingerprint. DataDir defaults to a test temp dir.
func NewWithServerConfig(t testing.TB, cfg server.Config) *FakeWorker {
	t.Helper()
	if cfg.DataDir == "" {
		cfg.DataDir = t.TempDir()
	}
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatalf("chaostest: server: %v", err)
	}
	fw := &FakeWorker{inner: srv.Handler(), script: DefaultScript()}
	fw.ts = httptest.NewServer(http.HandlerFunc(fw.handle))
	t.Cleanup(fw.ts.Close)
	return fw
}

// URL returns the worker's base URL.
func (fw *FakeWorker) URL() string { return fw.ts.URL }

// SetScript replaces the fault script.
func (fw *FakeWorker) SetScript(s Script) {
	fw.mu.Lock()
	fw.script = s
	fw.mu.Unlock()
}

// SetDown makes every request (probes included) abort at the
// connection level, as a dead host would.
func (fw *FakeWorker) SetDown(v bool) {
	fw.mu.Lock()
	fw.down = v
	fw.mu.Unlock()
}

// Placements counts /v1/fabric requests this worker has accepted.
func (fw *FakeWorker) Placements() int {
	fw.mu.Lock()
	defer fw.mu.Unlock()
	return fw.placements
}

func (fw *FakeWorker) clearOnce() {
	fw.mu.Lock()
	if fw.script.Once {
		fw.script.KillAfterLines = Off
		fw.script.HangAfterLines = Off
	}
	fw.mu.Unlock()
}

func (fw *FakeWorker) handle(w http.ResponseWriter, r *http.Request) {
	fw.mu.Lock()
	down := fw.down
	sc := fw.script
	if r.URL.Path == "/v1/fabric" && !down {
		fw.placements++
		if sc.Shed429 > 0 {
			fw.script.Shed429--
		}
	}
	fw.mu.Unlock()

	if down {
		panic(http.ErrAbortHandler) // connection reset, no reply
	}
	if r.URL.Path != "/v1/fabric" {
		fw.inner.ServeHTTP(w, r)
		return
	}
	if sc.Shed429 > 0 {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusTooManyRequests)
		_, _ = w.Write([]byte(`{"error":"chaos shed"}`))
		return
	}
	if sc.SlowStart > 0 {
		select {
		case <-time.After(sc.SlowStart):
		case <-r.Context().Done():
			return
		}
	}
	fw.inner.ServeHTTP(&faultWriter{w: w, fw: fw, sc: sc, done: r.Context().Done()}, r)
}

var errKilled = errors.New("chaostest: connection killed by script")

// faultWriter counts streamed lines and fires the scripted kill/hang.
// Faults surface as write errors, never panics, so the real handler
// underneath winds down through its normal stream-error path.
type faultWriter struct {
	w     http.ResponseWriter
	fw    *FakeWorker
	sc    Script
	done  <-chan struct{}
	lines int
	dead  bool
}

func (f *faultWriter) Header() http.Header  { return f.w.Header() }
func (f *faultWriter) WriteHeader(code int) { f.w.WriteHeader(code) }

func (f *faultWriter) Flush() {
	if f.dead {
		return
	}
	if fl, ok := f.w.(http.Flusher); ok {
		fl.Flush()
	}
}

func (f *faultWriter) Write(p []byte) (int, error) {
	if f.dead {
		return 0, errKilled
	}
	if f.sc.KillAfterLines != Off && f.lines >= f.sc.KillAfterLines {
		f.dead = true
		f.fw.clearOnce()
		if hj, ok := f.w.(http.Hijacker); ok {
			if conn, _, err := hj.Hijack(); err == nil {
				conn.Close()
			}
		}
		return 0, errKilled
	}
	if f.sc.HangAfterLines != Off && f.lines >= f.sc.HangAfterLines {
		f.dead = true
		f.fw.clearOnce()
		<-f.done // hold the stream open until the coordinator gives up
		return 0, errKilled
	}
	n, err := f.w.Write(p)
	f.lines += bytes.Count(p[:n], []byte{'\n'})
	return n, err
}

package chaostest

import (
	"bytes"
	"context"
	"testing"
	"time"

	"ftspm/internal/core"
	"ftspm/internal/experiments"
	"ftspm/internal/fabric"
	"ftspm/internal/server"
)

// Tentpole acceptance: a byzantine worker that silently corrupts every
// payload it computes — and then honestly checksums the corrupted bytes,
// so attestation alone cannot catch it — must be convicted by audit
// re-execution, its results revoked and re-run elsewhere, and the merged
// report must still be byte-identical to a single-node golden run. The
// divergence is itemized in the campaign status like an SDC count.
func TestChaosByzantineWorkerQuarantinedByteIdentical(t *testing.T) {
	base := experiments.SoakOptions{Trials: 3, Scale: 0.02, StrikesPerAccess: 0.02, Seed: 29}
	structures := []core.Structure{core.StructFTSPM, core.StructPureSRAM}
	golden, gst, err := experiments.RunSoakCampaign(context.Background(), base, structures, experiments.CampaignConfig{})
	if err != nil {
		t.Fatalf("golden soak: %v", err)
	}
	if gst.Incomplete || gst.Failed != 0 {
		t.Fatalf("golden status unclean: %+v", gst)
	}

	byz := NewWithServerConfig(t, server.Config{ChaosCorruptFrac: 1})
	honest := New(t)
	// Slow the honest worker's placements slightly so the byzantine one
	// is guaranteed to pop chunks before the campaign drains.
	honest.SetScript(Script{KillAfterLines: Off, HangAfterLines: Off, SlowStart: 25 * time.Millisecond})

	reports, st, err := fabric.RunSoak(context.Background(), fabric.Config{
		Workers:       []string{byz.URL(), honest.URL()},
		ChunkSize:     1,
		Lease:         2 * time.Second,
		ProbeInterval: 20 * time.Millisecond,
		MaxPlacements: 5,
		AuditFrac:     1,
		Logf:          t.Logf,
	}, base, structures)
	if err != nil {
		t.Fatalf("fabric soak with byzantine worker: %v", err)
	}
	if st.Incomplete || st.Failed != 0 || st.Pending != 0 {
		t.Fatalf("fabric status unclean: %+v", st)
	}
	if byz.Placements() == 0 {
		t.Fatal("byzantine worker was never placed on; the drill proved nothing")
	}

	if st.Audit == nil {
		t.Fatal("no audit summary in campaign status")
	}
	if st.Audit.Audited == 0 {
		t.Fatalf("audit summary counts zero re-executions: %+v", st.Audit)
	}
	if len(st.Audit.Divergences) < 1 {
		t.Fatalf("corrupter produced no itemized divergence: %+v", st.Audit)
	}
	if len(st.Audit.SuspectWorkers) == 0 {
		t.Fatalf("corrupter not convicted: %+v", st.Audit)
	}
	for _, w := range st.Audit.SuspectWorkers {
		if w != byz.URL() {
			t.Fatalf("honest worker %s convicted; suspects %v", w, st.Audit.SuspectWorkers)
		}
	}
	for _, d := range st.Audit.Divergences {
		if d.Worker != byz.URL() {
			t.Fatalf("divergence blamed on %s, want %s", d.Worker, byz.URL())
		}
		if d.GotSum == d.WantSum {
			t.Fatalf("divergence with equal sums: %+v", d)
		}
	}

	if got, want := mustJSON(t, reports), mustJSON(t, golden); !bytes.Equal(got, want) {
		t.Fatalf("report with byzantine worker diverged from single-node golden:\n got %s\nwant %s", got, want)
	}
}

// A worker running a different build (foreign fingerprint) is refused at
// placement time — version skew across the fleet silently changes
// results, so the coordinator must never place on it. The campaign
// completes on the matching worker, byte-identical to the golden.
func TestChaosFingerprintSkewRefusedAtPlacement(t *testing.T) {
	base := experiments.SoakOptions{Trials: 2, Scale: 0.02, StrikesPerAccess: 0.02, Seed: 5}
	structures := []core.Structure{core.StructFTSPM}
	golden, _, err := experiments.RunSoakCampaign(context.Background(), base, structures, experiments.CampaignConfig{})
	if err != nil {
		t.Fatalf("golden soak: %v", err)
	}

	skewed := NewWithServerConfig(t, server.Config{Fingerprint: "fp-skewed-build"})
	honest := New(t)

	reports, st, err := fabric.RunSoak(context.Background(), fabric.Config{
		Workers:       []string{skewed.URL(), honest.URL()},
		ProbeInterval: 20 * time.Millisecond,
		Logf:          t.Logf,
	}, base, structures)
	if err != nil {
		t.Fatalf("fabric soak with skewed worker: %v", err)
	}
	if st.Incomplete || st.Failed != 0 {
		t.Fatalf("fabric status unclean: %+v", st)
	}
	if skewed.Placements() != 0 {
		t.Fatalf("version-skewed worker accepted %d placements, want 0", skewed.Placements())
	}
	if got, want := mustJSON(t, reports), mustJSON(t, golden); !bytes.Equal(got, want) {
		t.Fatalf("report with skewed worker diverged from golden:\n got %s\nwant %s", got, want)
	}
}

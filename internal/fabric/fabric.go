// Package fabric is the distributed campaign coordinator: it shards a
// campaign's job list across a cluster of ftspmd workers, streams
// per-job results back over /v1/fabric, and merges them into a report
// byte-identical to a local run of the same campaign.
//
// The design is pull-based and journal-anchored. Worker loops pull
// chunks from a shared queue only while their daemon probes healthy, so
// placement follows capacity; every merged result is fsynced to the
// campaign checkpoint journal before the job is acked, so the only
// coordinator state worth preserving IS the journal — a SIGTERM drain
// or crash loses nothing but in-flight compute, and a restarted
// coordinator (or a plain single-node run) resumes from the same file.
//
// Failure handling, layer by layer: a lease watchdog cancels streams
// that stop heartbeating; un-acked jobs of a dead placement are
// re-queued (exactly-once is restored by job-ID dedup at the merger); a
// placement that started and then died marks its jobs as suspects,
// which are re-placed alone so a poison job can only take itself down,
// and quarantined after MaxPlacements burned placements; a per-worker
// circuit breaker stops hammering a flapping daemon; and when every
// worker is down at once the coordinator degrades to executing chunks
// locally rather than stalling the campaign.
package fabric

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"ftspm/internal/campaign"
	"ftspm/internal/experiments"
	"ftspm/internal/fabric/wire"
	"ftspm/internal/resultcache"
	"ftspm/internal/server"
	"ftspm/internal/server/client"
)

// ErrNoWorkers rejects a fabric run configured with no worker URLs.
var ErrNoWorkers = errors.New("fabric: no workers configured")

// errLeaseExpired cancels a chunk stream whose worker stopped
// heartbeating (no line received within the lease).
var errLeaseExpired = errors.New("fabric: lease expired: no heartbeat from worker")

// Config parameterizes a coordinator run. Zero values select the
// defaults in parentheses.
type Config struct {
	// Workers lists the ftspmd base URLs the campaign is sharded over.
	Workers []string
	// Parallel bounds each worker's sim pool per chunk, and the local
	// fallback pool (0 = worker/local GOMAXPROCS).
	Parallel int
	// ChunkSize caps jobs per placement (computed: enough chunks for
	// ~4 rounds per worker, clamped to [1, 64]).
	ChunkSize int
	// Lease is the per-stream heartbeat timeout: a placement that
	// streams nothing for this long is declared dead and its un-acked
	// jobs re-queued (60s).
	Lease time.Duration
	// ProbeInterval spaces /healthz probes of unhealthy or busy
	// workers (2s); ProbeTimeout bounds each probe (= ProbeInterval).
	ProbeInterval, ProbeTimeout time.Duration
	// MaxPlacements quarantines a job after this many placements that
	// started and then died with it outstanding (3).
	MaxPlacements int
	// Retries and JobTimeout bound each sim job, as in the local
	// campaign runner.
	Retries    int
	JobTimeout time.Duration
	// Checkpoint names the campaign journal; Resume loads it and skips
	// finished jobs. The file is interchangeable with a single-node
	// run's checkpoint of the same campaign.
	Checkpoint string
	Resume     bool
	// AuditFrac makes the coordinator deterministically re-execute that
	// fraction of remotely-completed jobs on a different worker (or
	// locally) and compare payloads. A divergence convicts the origin
	// worker: its breaker latches open, its unaudited results are
	// invalidated and re-queued elsewhere, and the divergence is
	// itemized in the report's audit summary. 0 disables auditing.
	AuditFrac float64
	// AuditSeed varies which jobs the deterministic audit selection
	// picks (same seed + same campaign = same picks).
	AuditSeed int64
	// Fingerprint overrides the coordinator's build fingerprint
	// (default wire.Fingerprint()). Workers whose /healthz fingerprint
	// differs are refused at placement time, and every streamed result
	// line must carry it.
	Fingerprint string
	// Breaker tunes the per-worker circuit breaker.
	Breaker server.BreakerConfig
	// NoLocalFallback disables degrading to local execution when every
	// worker is down.
	NoLocalFallback bool
	// Cache, when non-nil, is the coordinator's content-addressed
	// result cache. Jobs whose results it holds merge instantly —
	// journaled exactly as local first-attempt runs, never placed on a
	// worker — and locally-executed fallback chunks read and fill it.
	// The cache is a trust anchor: only locally-computed results enter
	// it. Results streamed back by remote workers are deliberately NOT
	// cached, because the audit path re-executes suspect jobs locally —
	// a cache poisoned by a byzantine worker's bytes would let the
	// worker confirm its own lies.
	Cache *resultcache.Cache
	// HTTPClient overrides the transport (http.DefaultClient).
	HTTPClient *http.Client
	// Logf, when set, receives coordinator progress and fault events.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Lease <= 0 {
		c.Lease = 60 * time.Second
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 2 * time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = c.ProbeInterval
	}
	if c.MaxPlacements <= 0 {
		c.MaxPlacements = 3
	}
	if c.Fingerprint == "" {
		c.Fingerprint = wire.Fingerprint()
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// workerRef is one daemon's coordinator-side state.
type workerRef struct {
	url  string
	cl   *client.Client
	brk  *server.Breaker
	down sync.Mutex // guards the flags below
	isDn bool
	// sus marks a worker convicted by the audit: its loop exits, its
	// breaker is force-opened, and nothing it streams merges again.
	sus bool
}

func (w *workerRef) setDown(v bool) {
	w.down.Lock()
	w.isDn = v
	w.down.Unlock()
}

func (w *workerRef) isDown() bool {
	w.down.Lock()
	defer w.down.Unlock()
	return w.isDn
}

// setSuspect marks the worker convicted; a suspect is also permanently
// down, so the local fallback's all-down check counts it out.
func (w *workerRef) setSuspect() {
	w.down.Lock()
	w.sus = true
	w.isDn = true
	w.down.Unlock()
}

func (w *workerRef) isSuspect() bool {
	w.down.Lock()
	defer w.down.Unlock()
	return w.sus
}

// fabricRun is one coordinator run's shared state.
type fabricRun struct {
	cfg     Config
	src     *experiments.JobSource
	tmpl    wire.Request
	q       *queue
	m       *merger
	workers []*workerRef
	chunk   int
	fp      string

	// auditWG tracks in-flight audit goroutines; auditMu guards the
	// accumulating summary and the suspect set.
	auditWG  sync.WaitGroup
	auditMu  sync.Mutex
	auditSum campaign.AuditSummary
	suspects map[string]bool
}

// Run executes the campaign described by src across cfg.Workers and
// returns the merged raw report. On cancellation or quarantine the
// report carries every durable result and the error wraps
// campaign.ErrIncomplete, exactly like the local campaign runner.
func Run(ctx context.Context, cfg Config, src *experiments.JobSource) (*campaign.Report[json.RawMessage], error) {
	cfg = cfg.withDefaults()
	if len(cfg.Workers) == 0 {
		return nil, ErrNoWorkers
	}

	rep := &campaign.Report[json.RawMessage]{
		Results: make(map[string]campaign.Result[json.RawMessage], len(src.IDs)),
	}
	var jl *campaign.Journal
	if cfg.Checkpoint != "" {
		var done map[string]campaign.Result[json.RawMessage]
		var err error
		jl, done, err = campaign.OpenJournal(cfg.Checkpoint, src.Hash, cfg.Resume)
		if err != nil {
			return nil, fmt.Errorf("fabric: %w", err)
		}
		defer jl.Close()
		for _, id := range src.IDs {
			r, ok := done[id]
			if !ok {
				continue
			}
			r.Resumed = true
			rep.Results[id] = r
			rep.Resumed++
			if r.Status == campaign.StatusFailed {
				rep.Failed++
			} else {
				rep.Completed++
			}
		}
		if rep.Resumed > 0 {
			cfg.Logf("fabric: resumed %d finished jobs from %s", rep.Resumed, cfg.Checkpoint)
		}
	}

	var todo []string
	for _, id := range src.IDs {
		if _, ok := rep.Results[id]; !ok {
			todo = append(todo, id)
		}
	}

	m := newMerger(jl, rep)
	if cfg.Cache != nil {
		// Cache pre-merge: jobs whose results the coordinator's cache
		// already holds never reach the queue. Each hit merges through
		// the normal path — journal-fsync first, exactly-once dedup,
		// trusted "" origin — so the checkpoint stays byte-identical to
		// a run that computed them, and a resume sees no difference.
		if err := src.UseCache(cfg.Cache); err != nil {
			return nil, fmt.Errorf("fabric: %w", err)
		}
		remaining := todo[:0]
		hits := 0
		for _, id := range todo {
			res, ok := src.CachedResult(id)
			if !ok {
				remaining = append(remaining, id)
				continue
			}
			if _, merr := m.add(res, ""); merr != nil {
				return rep, fmt.Errorf("fabric: checkpoint: %w", merr)
			}
			hits++
		}
		todo = remaining
		if hits > 0 {
			cfg.Logf("fabric: %d jobs served from the result cache; %d to place", hits, len(todo))
		}
	}

	f := &fabricRun{
		cfg:      cfg,
		src:      src,
		tmpl:     requestFor(src, cfg),
		q:        newQueue(todo, cfg.MaxPlacements),
		m:        m,
		chunk:    chunkSize(cfg, len(todo)),
		fp:       cfg.Fingerprint,
		suspects: make(map[string]bool),
	}
	for _, u := range cfg.Workers {
		cl, err := client.New(client.Config{BaseURL: u, HTTPClient: cfg.HTTPClient})
		if err != nil {
			return nil, fmt.Errorf("fabric: worker %s: %w", u, err)
		}
		f.workers = append(f.workers, &workerRef{
			url: u,
			cl:  cl,
			brk: server.NewBreaker(cfg.Breaker, nil),
		})
	}

	// Cancellation path: closing the queue wakes blocked poppers; each
	// chunk stream is additionally canceled through its own context,
	// which derives from ctx.
	stop := context.AfterFunc(ctx, f.q.close)
	defer stop()

	var wg sync.WaitGroup
	for _, w := range f.workers {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			f.workerLoop(ctx, w)
		}()
	}
	if !cfg.NoLocalFallback {
		wg.Add(1)
		go func() {
			defer wg.Done()
			f.localLoop(ctx)
		}()
	}
	wg.Wait()
	f.auditWG.Wait()

	if cfg.AuditFrac > 0 {
		f.auditMu.Lock()
		s := f.auditSum
		f.auditMu.Unlock()
		rep.Audit = &s
	}

	for _, id := range src.IDs {
		if _, ok := rep.Results[id]; !ok {
			rep.PendingIDs = append(rep.PendingIDs, id)
		}
	}
	if err := f.q.failure(); err != nil {
		return rep, fmt.Errorf("fabric: %w", err)
	}
	if jl != nil {
		if err := jl.Close(); err != nil {
			return rep, fmt.Errorf("fabric: checkpoint: %w", err)
		}
	}
	if qids := f.q.quarantinedIDs(); len(qids) > 0 {
		return rep, fmt.Errorf("%w: %d of %d jobs not run (%d quarantined after %d lost placements each: %s)",
			campaign.ErrIncomplete, len(rep.PendingIDs), len(src.IDs),
			len(qids), cfg.MaxPlacements, strings.Join(qids, ", "))
	}
	if len(rep.PendingIDs) > 0 {
		return rep, fmt.Errorf("%w: %d of %d jobs not run: %w",
			campaign.ErrIncomplete, len(rep.PendingIDs), len(src.IDs), context.Cause(ctx))
	}
	return rep, nil
}

// requestFor builds the wire request template for one source; the
// worker loops fill in JobIDs per chunk.
func requestFor(src *experiments.JobSource, cfg Config) wire.Request {
	req := wire.Request{
		Kind:         src.Kind,
		ConfigHash:   src.Hash,
		Parallel:     cfg.Parallel,
		Retries:      cfg.Retries,
		JobTimeoutMS: cfg.JobTimeout.Milliseconds(),
	}
	switch src.Kind {
	case experiments.KindSweep:
		req.Sweep = src.SweepOpts
	case experiments.KindSoak:
		req.Soak = src.SoakOpts
		for _, s := range src.SoakStructures {
			req.Structures = append(req.Structures, s.String())
		}
	}
	return req
}

// chunkSize picks the placement granularity: explicit, or enough chunks
// for about four placement rounds per worker, so a lost placement costs
// a fraction of the campaign, clamped to [1, 64].
func chunkSize(cfg Config, jobs int) int {
	if cfg.ChunkSize > 0 {
		return cfg.ChunkSize
	}
	n := jobs / (4 * len(cfg.Workers))
	if n < 1 {
		n = 1
	}
	if n > 64 {
		n = 64
	}
	return n
}

// workerLoop drives one worker: probe until healthy, pull a chunk,
// stream it, repeat. The circuit breaker gates placements after
// repeated failures; a down or busy worker sleeps a probe interval
// without holding any jobs.
func (f *fabricRun) workerLoop(ctx context.Context, w *workerRef) {
	for {
		if ctx.Err() != nil || f.q.isClosed() || w.isSuspect() {
			return
		}
		if !w.brk.Ready() {
			if !f.sleep(ctx, f.cfg.ProbeInterval) {
				return
			}
			continue
		}
		up, busy := f.probe(ctx, w)
		w.setDown(!up)
		if !up || busy {
			if !f.sleep(ctx, f.cfg.ProbeInterval) {
				return
			}
			continue
		}
		chunk, ok := f.q.pop(f.chunk)
		if !ok {
			return
		}
		f.place(ctx, w, chunk)
	}
}

// probe checks one worker's /healthz: up means reachable and not
// draining; busy means its fabric admission queue is full, so placing
// now would only be shed.
func (f *fabricRun) probe(ctx context.Context, w *workerRef) (up, busy bool) {
	pctx, cancel := context.WithTimeout(ctx, f.cfg.ProbeTimeout)
	defer cancel()
	h, err := w.cl.Healthz(pctx)
	if err != nil {
		f.cfg.Logf("fabric: worker %s down: %v", w.url, err)
		return false, false
	}
	if h.Draining {
		return false, false
	}
	if h.Fingerprint != f.fp {
		// Version skew: a worker built differently may compute "the same
		// job" differently. Refusing it at probe time keeps every result
		// in the report attributable to one build.
		f.cfg.Logf("fabric: worker %s refused: fingerprint %s, coordinator wants %s (version skew)",
			w.url, h.Fingerprint, f.fp)
		return false, false
	}
	busy = h.Fabric.QueueCap > 0 && h.Fabric.Queued >= h.Fabric.QueueCap
	return true, busy
}

// place streams one chunk on one worker. Jobs are acked as their
// results become durable; whatever the stream did not deliver is
// re-queued — with a placement penalty only if the stream had actually
// started (the worker accepted and then died mid-chunk), since a
// connection-refused or shed placement says nothing about the jobs.
func (f *fabricRun) place(ctx context.Context, w *workerRef, chunk []string) {
	req := f.tmpl
	req.JobIDs = chunk

	sctx, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)
	// Lease watchdog, armed before the request is even sent: every
	// streamed line is a heartbeat, and silence for a full lease kills
	// the stream — including a worker that accepts the connection but
	// never answers, which would otherwise hang the placement forever.
	lease := time.AfterFunc(f.cfg.Lease, func() { cancel(errLeaseExpired) })
	defer lease.Stop()
	st, err := w.cl.Fabric(sctx, req)
	if err != nil {
		w.brk.RecordOutcome(true)
		w.setDown(true)
		f.cfg.Logf("fabric: worker %s rejected chunk (%d jobs): %v", w.url, len(chunk), err)
		f.q.requeue(chunk, false)
		return
	}
	defer st.Close()

	placed := make(map[string]bool, len(chunk))
	outstanding := make(map[string]bool, len(chunk))
	for _, id := range chunk {
		placed[id] = true
		outstanding[id] = true
	}
	// abort kills the placement on a protocol- or transport-grade
	// violation: the un-acked jobs re-queue without a placement penalty
	// (the fault is the worker's, not possibly the jobs'), the breaker
	// takes a strike, and the worker is re-probed before it gets more
	// work.
	abort := func(format string, args ...any) {
		w.brk.RecordOutcome(true)
		w.setDown(true)
		f.cfg.Logf("fabric: worker %s: %s; aborting placement", w.url, fmt.Sprintf(format, args...))
		missing := make([]string, 0, len(outstanding))
		for _, id := range chunk {
			if outstanding[id] {
				missing = append(missing, id)
			}
		}
		f.q.requeue(missing, false)
	}
	sawTrailer := false
	var trailerErr string
	for {
		line, err := st.Next()
		if err != nil {
			break
		}
		lease.Reset(f.cfg.Lease)
		if line.Result != nil {
			res := *line.Result
			// Placement validation: a result for a job this chunk never
			// placed is a protocol violation — merging it would let any
			// worker overwrite any job in the campaign.
			if !placed[res.ID] {
				abort("streamed result for job %q, which was never placed here", res.ID)
				return
			}
			// Attestation: the sum must match the bytes as merged and
			// the fingerprint must be this coordinator's build. Either
			// mismatch is transport-grade — re-queue, never merge.
			sum, _, serr := campaign.SumResult(res)
			if serr != nil || line.Sum != sum {
				abort("result %s failed attestation (sum %q, payload hashes %q)", res.ID, line.Sum, sum)
				return
			}
			if line.Fp != f.fp {
				abort("result %s carries fingerprint %q, coordinator wants %q", res.ID, line.Fp, f.fp)
				return
			}
			merged, merr := f.m.add(res, w.url)
			if errors.Is(merr, errSuspectOrigin) {
				// Convicted mid-stream by a concurrent audit; nothing
				// further from this worker merges.
				abort("convicted while streaming")
				return
			}
			if merr != nil {
				// Not durable: leave the job un-acked so a resume
				// re-runs it, and fail the run — the journal is gone.
				f.q.requeue(chunk, false)
				f.q.fail(fmt.Errorf("checkpoint: %w", merr))
				return
			}
			if merged && res.Status == campaign.StatusDone && f.auditPick(res.ID) {
				// Registered before the ack so the queue cannot close
				// with this audit unaccounted.
				f.q.beginAudit()
				f.auditWG.Add(1)
				vsum := campaign.SumBytes(res.Value)
				go func() {
					defer f.auditWG.Done()
					defer f.q.endAudit()
					f.audit(ctx, res.ID, vsum, w)
				}()
			}
			delete(outstanding, res.ID)
			f.q.ack(res.ID)
		}
		if line.Done != nil {
			sawTrailer = true
			trailerErr = line.Done.Error
			break
		}
	}

	if len(outstanding) > 0 {
		missing := make([]string, 0, len(outstanding))
		for _, id := range chunk {
			if outstanding[id] {
				missing = append(missing, id)
			}
		}
		// A trailer with missing jobs is a graceful worker drain (no
		// penalty); a cut stream is a dead or hung placement.
		f.q.requeue(missing, !sawTrailer)
		f.cfg.Logf("fabric: worker %s lost %d of %d jobs (trailer=%v err=%q); re-queued",
			w.url, len(missing), len(chunk), sawTrailer, trailerErr)
	}
	if sawTrailer {
		w.brk.RecordOutcome(false)
	} else {
		w.brk.RecordOutcome(true)
		w.setDown(true)
	}
}

// localLoop is the graceful-degradation path: while every worker is
// down at once, chunks execute in this process through the very same
// source runners, so the campaign makes progress instead of stalling.
func (f *fabricRun) localLoop(ctx context.Context) {
	for {
		if ctx.Err() != nil || f.q.isClosed() {
			return
		}
		if !f.allDown() {
			if !f.sleep(ctx, f.cfg.ProbeInterval) {
				return
			}
			continue
		}
		chunk, ok := f.q.tryPop(f.chunk)
		if !ok {
			if f.q.isClosed() {
				return
			}
			if !f.sleep(ctx, f.cfg.ProbeInterval) {
				return
			}
			continue
		}
		f.cfg.Logf("fabric: all %d workers down; running %d jobs locally", len(f.workers), len(chunk))
		f.runLocal(ctx, chunk)
	}
}

func (f *fabricRun) allDown() bool {
	for _, w := range f.workers {
		if !w.isDown() {
			return false
		}
	}
	return true
}

// runLocal executes one chunk in-process, merging and acking each
// result exactly as a worker stream would.
func (f *fabricRun) runLocal(ctx context.Context, chunk []string) {
	jobs, err := f.src.Jobs(chunk)
	if err != nil {
		f.q.fail(err)
		return
	}
	cfg := campaign.Config{
		Workers:    f.cfg.Parallel,
		JobTimeout: f.cfg.JobTimeout,
		Attempts:   f.cfg.Retries + 1,
		OnJobResult: func(res campaign.Result[json.RawMessage]) {
			// Local execution is the trust anchor ("" origin): it is
			// never audited and never convicted.
			if _, merr := f.m.add(res, ""); merr != nil {
				f.q.fail(fmt.Errorf("checkpoint: %w", merr))
				return
			}
			f.q.ack(res.ID)
		},
	}
	_, _ = campaign.Run(ctx, cfg, jobs)
	// Whatever the local run did not finish (drain) goes back; acked
	// jobs are skipped by requeue. Local execution is trusted — no
	// placement penalty.
	f.q.requeue(chunk, false)
}

// sleep waits d or until ctx is done; false means stop looping.
func (f *fabricRun) sleep(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

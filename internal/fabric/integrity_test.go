package fabric

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"ftspm/internal/campaign"
	"ftspm/internal/experiments"
	"ftspm/internal/fabric/wire"
	"ftspm/internal/server"
	"ftspm/internal/server/client"
)

// streamWorker builds a fake /v1/fabric worker that streams exactly the
// given lines, and the coordinator-side plumbing pointed at it.
func streamWorker(t *testing.T, lines []wire.Line) (*fabricRun, *workerRef) {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		enc := json.NewEncoder(w)
		for _, l := range lines {
			if err := enc.Encode(l); err != nil {
				return
			}
		}
	}))
	t.Cleanup(srv.Close)
	cl, err := client.New(client.Config{BaseURL: srv.URL})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Workers: []string{srv.URL}}.withDefaults()
	f := &fabricRun{
		cfg:      cfg,
		q:        newQueue([]string{"good"}, cfg.MaxPlacements),
		m:        newMerger(nil, &campaign.Report[json.RawMessage]{}),
		fp:       cfg.Fingerprint,
		suspects: make(map[string]bool),
	}
	w := &workerRef{url: srv.URL, cl: cl, brk: server.NewBreaker(cfg.Breaker, nil)}
	f.workers = []*workerRef{w}
	return f, w
}

// attested wraps a result in a correctly-attested stream line.
func attested(t *testing.T, res wire.JobResult) wire.Line {
	t.Helper()
	sum, _, err := campaign.SumResult(res)
	if err != nil {
		t.Fatal(err)
	}
	return wire.Line{Result: &res, Sum: sum, Fp: wire.Fingerprint()}
}

func doneResult(id string) wire.JobResult {
	return wire.JobResult{ID: id, Status: campaign.StatusDone, Attempts: 1,
		Value: json.RawMessage(`42`)}
}

// Satellite: a result whose job ID was never placed on this worker must
// not merge — previously it was only deduplicated, which let any worker
// write any job in the campaign.
func TestPlaceRejectsUnplacedJobID(t *testing.T) {
	f, w := streamWorker(t, []wire.Line{
		attested(t, doneResult("evil")),
		{Done: &wire.Trailer{Completed: 1}},
	})
	chunk, ok := f.q.tryPop(8)
	if !ok {
		t.Fatal("queue empty")
	}
	f.place(context.Background(), w, chunk)

	if len(f.m.rep.Results) != 0 {
		t.Fatalf("unplaced result merged: %+v", f.m.rep.Results)
	}
	if !w.isDown() {
		t.Fatal("worker not marked down after protocol violation")
	}
	// The placed job must be back on the queue, without a placement
	// penalty.
	requeued, rok := f.q.tryPop(8)
	if !rok || len(requeued) != 1 || requeued[0] != "good" {
		t.Fatalf("placed job not re-queued: %v ok=%v", requeued, rok)
	}
	if f.q.st["good"].placements != 0 {
		t.Fatalf("protocol violation penalized the job: %d placements", f.q.st["good"].placements)
	}
}

// A result whose payload does not hash to its attestation sum is a
// transport-grade failure: re-queue, never merge.
func TestPlaceRejectsAttestationMismatch(t *testing.T) {
	res := doneResult("good")
	line := attested(t, res)
	// Corrupt the payload after the sum was computed — a wire-level bit
	// flip with a stale checksum.
	flipped := doneResult("good")
	flipped.Value = json.RawMessage(`43`)
	line.Result = &flipped

	f, w := streamWorker(t, []wire.Line{line, {Done: &wire.Trailer{Completed: 1}}})
	chunk, ok := f.q.tryPop(8)
	if !ok {
		t.Fatal("queue empty")
	}
	f.place(context.Background(), w, chunk)

	if len(f.m.rep.Results) != 0 {
		t.Fatalf("corrupt result merged: %+v", f.m.rep.Results)
	}
	if !w.isDown() {
		t.Fatal("worker not marked down after attestation failure")
	}
	if requeued, rok := f.q.tryPop(8); !rok || len(requeued) != 1 || requeued[0] != "good" {
		t.Fatalf("job not re-queued after attestation failure: %v ok=%v", requeued, rok)
	}
}

// A result stamped with a foreign build fingerprint must not merge even
// when its sum checks out.
func TestPlaceRejectsFingerprintMismatch(t *testing.T) {
	line := attested(t, doneResult("good"))
	line.Fp = "fp-deadbeef"
	f, w := streamWorker(t, []wire.Line{line, {Done: &wire.Trailer{Completed: 1}}})
	chunk, ok := f.q.tryPop(8)
	if !ok {
		t.Fatal("queue empty")
	}
	f.place(context.Background(), w, chunk)

	if len(f.m.rep.Results) != 0 {
		t.Fatalf("foreign-fingerprint result merged: %+v", f.m.rep.Results)
	}
	if requeued, rok := f.q.tryPop(8); !rok || len(requeued) != 1 || requeued[0] != "good" {
		t.Fatalf("job not re-queued: %v ok=%v", requeued, rok)
	}
}

// A well-attested stream merges and acks normally — the verification
// layer must not get in the honest path's way.
func TestPlaceAcceptsAttestedResult(t *testing.T) {
	f, w := streamWorker(t, []wire.Line{
		attested(t, doneResult("good")),
		{Done: &wire.Trailer{Completed: 1}},
	})
	chunk, ok := f.q.tryPop(8)
	if !ok {
		t.Fatal("queue empty")
	}
	f.place(context.Background(), w, chunk)

	if got := f.m.rep.Results["good"]; got.Status != campaign.StatusDone {
		t.Fatalf("attested result did not merge: %+v", f.m.rep.Results)
	}
	if !f.q.isClosed() {
		t.Fatal("queue should close once the only job is acked")
	}
}

// The queue must not close on remaining==0 while audits are in flight,
// and reopened (invalidated) jobs must be poppable again.
func TestQueueAuditHoldsCloseAndReopens(t *testing.T) {
	q := newQueue([]string{"a"}, 3)
	if chunk, ok := q.tryPop(4); !ok || len(chunk) != 1 {
		t.Fatalf("pop: %v ok=%v", chunk, ok)
	}
	q.beginAudit()
	q.ack("a")
	if q.isClosed() {
		t.Fatal("queue closed with an audit outstanding")
	}
	q.reopen([]string{"a"})
	chunk, ok := q.tryPop(4)
	if !ok || len(chunk) != 1 || chunk[0] != "a" {
		t.Fatalf("reopened job not poppable: %v ok=%v", chunk, ok)
	}
	q.ack("a")
	q.endAudit()
	if !q.isClosed() {
		t.Fatal("queue should close once the audit settles and no work remains")
	}
}

// Audit selection is deterministic and tracks the configured fraction.
func TestAuditPickDeterministicFraction(t *testing.T) {
	mk := func(frac float64, seed int64) *fabricRun {
		return &fabricRun{
			cfg: Config{AuditFrac: frac, AuditSeed: seed},
			src: &experiments.JobSource{Hash: "cafebabe"},
		}
	}
	a, b := mk(0.25, 7), mk(0.25, 7)
	picked := 0
	for i := 0; i < 2000; i++ {
		id := "job/" + string(rune('a'+i%26)) + "/" + time.Duration(i).String()
		if a.auditPick(id) != b.auditPick(id) {
			t.Fatalf("audit selection not deterministic for %q", id)
		}
		if a.auditPick(id) {
			picked++
		}
	}
	if picked < 350 || picked > 650 {
		t.Fatalf("picked %d of 2000 at frac 0.25, want ~500", picked)
	}
	if !mk(1, 0).auditPick("x") {
		t.Fatal("frac 1 must pick everything")
	}
	if mk(0, 0).auditPick("x") {
		t.Fatal("frac 0 must pick nothing")
	}
}

// Conviction revokes exactly the convicted worker's unaudited results:
// audit-passed results and other workers' results survive.
func TestInvalidateFromScopesToConvictedWorker(t *testing.T) {
	rep := &campaign.Report[json.RawMessage]{}
	m := newMerger(nil, rep)
	for _, tc := range []struct{ id, origin string }{
		{"a", "w1"}, {"b", "w1"}, {"c", "w2"}, {"d", ""},
	} {
		if _, err := m.add(doneResult(tc.id), tc.origin); err != nil {
			t.Fatal(err)
		}
	}
	m.auditPass("a")

	ids, err := m.invalidateFrom("w1")
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 || ids[0] != "b" {
		t.Fatalf("invalidated %v, want [b] only", ids)
	}
	if rep.Completed != 3 {
		t.Fatalf("completed %d after revocation, want 3", rep.Completed)
	}
	for _, id := range []string{"a", "c", "d"} {
		if _, ok := rep.Results[id]; !ok {
			t.Fatalf("result %s wrongly revoked", id)
		}
	}
	// And the convicted worker can no longer merge anything.
	if _, err := m.add(doneResult("e"), "w1"); err != errSuspectOrigin {
		t.Fatalf("post-conviction merge err = %v, want errSuspectOrigin", err)
	}
}

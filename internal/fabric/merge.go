package fabric

import (
	"encoding/json"
	"sync"

	"ftspm/internal/campaign"
	"ftspm/internal/fabric/wire"
)

// merger folds streamed job results — from any worker stream or the
// local fallback runner, concurrently — into one campaign report with
// exactly-once semantics. Results are journaled before they are
// accounted, so a job is acked (and never re-placed) only once its
// result is durable; the journal it writes is the same JSONL checkpoint
// campaign.Run writes, so a single-node run can resume a fabric
// checkpoint and vice versa.
type merger struct {
	mu  sync.Mutex
	jl  *campaign.Journal // nil when the run is not checkpointed
	rep *campaign.Report[json.RawMessage]
}

func newMerger(jl *campaign.Journal, rep *campaign.Report[json.RawMessage]) *merger {
	if rep.Results == nil {
		rep.Results = make(map[string]campaign.Result[json.RawMessage])
	}
	return &merger{jl: jl, rep: rep}
}

// add merges one result. Duplicates — the same job streamed by two
// placements because a lease expired on a slow-but-alive worker — are
// dropped by job ID: first durable result wins. A non-nil error means
// the result could not be made durable (checkpoint append failed); the
// caller must not ack the job, so it stays pending for a resumed run.
func (m *merger) add(res wire.JobResult) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.rep.Results[res.ID]; dup {
		return nil
	}
	if m.jl != nil {
		if err := m.jl.Append(res); err != nil {
			return err
		}
	}
	m.rep.Results[res.ID] = res
	if res.Status == campaign.StatusFailed {
		m.rep.Failed++
	} else {
		m.rep.Completed++
	}
	return nil
}

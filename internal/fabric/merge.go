package fabric

import (
	"encoding/json"
	"errors"
	"sync"

	"ftspm/internal/campaign"
	"ftspm/internal/fabric/wire"
)

// errSuspectOrigin rejects a merge from a worker that has been convicted
// of returning divergent results. The placement loop treats it as a
// stream abort, not a fatal error: the un-acked jobs re-queue onto
// trustworthy executors.
var errSuspectOrigin = errors.New("fabric: result from convicted worker")

// merger folds streamed job results — from any worker stream or the
// local fallback runner, concurrently — into one campaign report with
// exactly-once semantics. Results are journaled before they are
// accounted, so a job is acked (and never re-placed) only once its
// result is durable; the journal it writes is the same JSONL checkpoint
// campaign.Run writes, so a single-node run can resume a fabric
// checkpoint and vice versa.
//
// For the integrity layer the merger additionally keeps provenance:
// which worker produced each merged result ("" for local execution,
// which is trusted by definition), which results an audit re-execution
// has confirmed, and which workers have been convicted. Conviction
// revokes every unconfirmed result of that worker — journal tombstone
// first, then the in-memory drop, so a crash between the two cannot
// resurrect a convicted worker's result on resume.
type merger struct {
	mu  sync.Mutex
	jl  *campaign.Journal // nil when the run is not checkpointed
	rep *campaign.Report[json.RawMessage]
	// origin maps live-merged job IDs to the worker URL that produced
	// them ("" = local fallback). Resumed results have no origin and are
	// never revoked.
	origin map[string]string
	// passed marks results confirmed by audit re-execution; a conviction
	// of their origin does not revoke them.
	passed map[string]bool
	// convicted workers can no longer merge anything.
	convicted map[string]bool
}

func newMerger(jl *campaign.Journal, rep *campaign.Report[json.RawMessage]) *merger {
	if rep.Results == nil {
		rep.Results = make(map[string]campaign.Result[json.RawMessage])
	}
	return &merger{
		jl: jl, rep: rep,
		origin:    make(map[string]string),
		passed:    make(map[string]bool),
		convicted: make(map[string]bool),
	}
}

// add merges one result produced by origin (a worker URL, or "" for
// local execution). Duplicates — the same job streamed by two placements
// because a lease expired on a slow-but-alive worker — are dropped by
// job ID: first durable result wins (merged=false, no error). A
// non-nil error means the result must not be acked: errSuspectOrigin if
// the producer was convicted mid-stream, otherwise the result could not
// be made durable (checkpoint append failed) and stays pending for a
// resumed run.
func (m *merger) add(res wire.JobResult, origin string) (merged bool, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.convicted[origin] {
		return false, errSuspectOrigin
	}
	if _, dup := m.rep.Results[res.ID]; dup {
		return false, nil
	}
	if m.jl != nil {
		if err := m.jl.Append(res); err != nil {
			return false, err
		}
	}
	m.rep.Results[res.ID] = res
	m.origin[res.ID] = origin
	if res.Status == campaign.StatusFailed {
		m.rep.Failed++
	} else {
		m.rep.Completed++
	}
	return true, nil
}

// auditPass marks one merged result as confirmed by re-execution.
func (m *merger) auditPass(id string) {
	m.mu.Lock()
	m.passed[id] = true
	m.mu.Unlock()
}

// currentSum returns the value attestation sum of the currently-merged
// result for id ("" if none) — the audit's check that the result it
// re-executed is still the one in the report.
func (m *merger) currentSum(id string) string {
	m.mu.Lock()
	defer m.mu.Unlock()
	res, ok := m.rep.Results[id]
	if !ok {
		return ""
	}
	return campaign.SumBytes(res.Value)
}

// invalidateFrom convicts one worker: every result it produced that no
// audit has confirmed is revoked — journaled as a StatusInvalidated
// tombstone (fsynced) and then dropped from the report — and the
// revoked job IDs are returned for re-queueing. Idempotent: a second
// conviction of the same worker revokes nothing further. A journal
// error aborts mid-way; the IDs already revoked are still returned and
// the caller must fail the run (the journal is gone).
func (m *merger) invalidateFrom(url string) ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.convicted[url] = true
	var ids []string
	for id, o := range m.origin {
		if o != url || m.passed[id] {
			continue
		}
		if m.jl != nil {
			if err := m.jl.Invalidate(id); err != nil {
				return ids, err
			}
		}
		res := m.rep.Results[id]
		delete(m.rep.Results, id)
		delete(m.origin, id)
		if res.Status == campaign.StatusFailed {
			m.rep.Failed--
		} else {
			m.rep.Completed--
		}
		ids = append(ids, id)
	}
	return ids, nil
}

package fabric

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"ftspm/internal/campaign"
	"ftspm/internal/fabric/wire"
)

// Satellite regression: eight goroutines streaming results into the
// merger out of order — with overlapping duplicates, as two placements
// of the same job after a lease expiry would produce — must yield a
// report byte-identical to a single writer merging the sorted stream.
// Run under -race: this is also the merger's data-race canary.
func TestMergerConcurrentStreamsByteIdentical(t *testing.T) {
	const n = 64
	results := make([]wire.JobResult, n)
	for i := range results {
		results[i] = wire.JobResult{
			ID:       fmt.Sprintf("job-%02d", i),
			Status:   campaign.StatusDone,
			Attempts: 1,
			Value:    json.RawMessage(fmt.Sprintf(`{"trial":%d,"metric":%d}`, i, i*i)),
		}
		if i%7 == 3 {
			results[i].Status = campaign.StatusFailed
			results[i].Value = nil
			results[i].Err = fmt.Sprintf("sim fault %d", i)
		}
	}

	// Golden: one writer, sorted (ID) order.
	golden := newMerger(nil, &campaign.Report[json.RawMessage]{})
	for _, r := range results {
		if _, err := golden.add(r, "w1"); err != nil {
			t.Fatal(err)
		}
	}

	// Concurrent: 8 interleaved streams, each shuffled, each also
	// replaying a slice of its neighbour's results as duplicates.
	rep := &campaign.Report[json.RawMessage]{}
	m := newMerger(nil, rep)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			var mine []wire.JobResult
			for i := g; i < n; i += 8 {
				mine = append(mine, results[i])
			}
			for i := (g + 1) % 8; i < n; i += 16 {
				mine = append(mine, results[i]) // duplicates
			}
			rng.Shuffle(len(mine), func(i, j int) { mine[i], mine[j] = mine[j], mine[i] })
			for _, r := range mine {
				if _, err := m.add(r, fmt.Sprintf("w%d", g)); err != nil {
					t.Error(err)
				}
			}
		}()
	}
	wg.Wait()

	if rep.Completed+rep.Failed != n {
		t.Fatalf("accounted %d+%d jobs, want %d (duplicates must not double-count)",
			rep.Completed, rep.Failed, n)
	}
	got, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(golden.rep)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("concurrent merge diverged from single-writer golden:\n got %s\nwant %s", got, want)
	}
}

package fabric

import "sync"

// queue is the coordinator's shared work list: every job ID of the
// campaign that still needs a durable result. Worker loops pop chunks,
// stream them to their daemon, and ack each job as its result is
// merged; a placement that dies gives its un-acked jobs back via
// requeue. The queue closes when every job is done or quarantined,
// when a fatal error is recorded, or when the run is canceled —
// blocked poppers wake and exit either way.
type jobState struct {
	// placements counts started-then-lost placements: streams that
	// opened and then died with this job still outstanding. Jobs with a
	// burned placement are suspects — placed alone so a poison job can
	// only take itself down — and quarantined once they burn
	// maxPlacements.
	placements  int
	done        bool
	quarantined bool
}

type queue struct {
	mu            sync.Mutex
	cond          *sync.Cond
	pending       []string
	st            map[string]*jobState
	remaining     int
	maxPlacements int
	closed        bool
	err           error
	quarantined   []string
	// audits counts in-flight audit re-executions. The queue refuses to
	// close on remaining==0 while audits are outstanding: an audit can
	// still convict a worker and reopen its jobs, so "every job acked"
	// is not yet "the campaign is done".
	audits int
}

func newQueue(ids []string, maxPlacements int) *queue {
	q := &queue{
		pending:       append([]string(nil), ids...),
		st:            make(map[string]*jobState, len(ids)),
		remaining:     len(ids),
		maxPlacements: maxPlacements,
	}
	for _, id := range ids {
		q.st[id] = &jobState{}
	}
	q.cond = sync.NewCond(&q.mu)
	if len(ids) == 0 {
		q.closed = true
	}
	return q
}

// pop blocks until work is available — returning a chunk of up to max
// job IDs — or the queue closes (ok=false). A suspect job is returned
// alone, and never shares a chunk with clean jobs.
func (q *queue) pop(max int) ([]string, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for !q.closed && len(q.pending) == 0 {
		q.cond.Wait()
	}
	if q.closed {
		return nil, false
	}
	return q.popLocked(max), true
}

// tryPop is pop without blocking.
func (q *queue) tryPop(max int) ([]string, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed || len(q.pending) == 0 {
		return nil, false
	}
	return q.popLocked(max), true
}

func (q *queue) popLocked(max int) []string {
	if max < 1 {
		max = 1
	}
	take := 1
	if q.st[q.pending[0]].placements == 0 {
		for take < max && take < len(q.pending) && q.st[q.pending[take]].placements == 0 {
			take++
		}
	}
	chunk := make([]string, take)
	copy(chunk, q.pending[:take])
	q.pending = q.pending[take:]
	return chunk
}

// ack marks one job durably merged. Idempotent — the merger dedups, so
// a duplicate stream line acks a job that is already done.
func (q *queue) ack(id string) {
	q.mu.Lock()
	defer q.mu.Unlock()
	s, ok := q.st[id]
	if !ok || s.done {
		return
	}
	s.done = true
	q.remaining--
	if q.remaining == 0 && q.audits == 0 {
		q.closed = true
		q.cond.Broadcast()
	}
}

// beginAudit registers one in-flight audit re-execution. It must be
// called BEFORE the audited job is acked, so the queue cannot observe
// remaining==0 with the audit unaccounted and close under it.
func (q *queue) beginAudit() {
	q.mu.Lock()
	q.audits++
	q.mu.Unlock()
}

// endAudit settles one audit; the last settled audit with no work left
// closes the queue.
func (q *queue) endAudit() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.audits--
	if q.remaining == 0 && q.audits == 0 {
		q.closed = true
		q.cond.Broadcast()
	}
}

// reopen puts convicted-and-invalidated jobs back on the queue: their
// merged results were revoked, so they are no longer done. Only called
// from an audit still holding its beginAudit slot, which is what
// guarantees the queue has not closed; a queue closed by cancellation
// or a fatal error stays closed.
func (q *queue) reopen(ids []string) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return
	}
	for _, id := range ids {
		s, ok := q.st[id]
		if !ok || !s.done {
			continue
		}
		s.done = false
		q.remaining++
		q.pending = append(q.pending, id)
	}
	q.cond.Broadcast()
}

// requeue gives a dead placement's un-acked jobs back. penalize marks
// the placement as started-then-lost: each job burns one placement and
// is quarantined once maxPlacements are burned. Placements that never
// started (connection refused, shed) requeue without penalty — the
// fault was the worker's, not possibly the job's.
func (q *queue) requeue(ids []string, penalize bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for _, id := range ids {
		s, ok := q.st[id]
		if !ok || s.done || s.quarantined {
			continue
		}
		if penalize {
			s.placements++
			if s.placements >= q.maxPlacements {
				s.quarantined = true
				q.quarantined = append(q.quarantined, id)
				q.remaining--
				continue
			}
		}
		q.pending = append(q.pending, id)
	}
	if q.remaining == 0 && q.audits == 0 {
		q.closed = true
	}
	q.cond.Broadcast()
}

// fail records a fatal error (first one wins) and closes the queue.
func (q *queue) fail(err error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.err == nil {
		q.err = err
	}
	q.closed = true
	q.cond.Broadcast()
}

// close shuts the queue for cancellation; pending jobs stay unfinished.
func (q *queue) close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.cond.Broadcast()
}

func (q *queue) isClosed() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.closed
}

func (q *queue) failure() error {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.err
}

func (q *queue) quarantinedIDs() []string {
	q.mu.Lock()
	defer q.mu.Unlock()
	return append([]string(nil), q.quarantined...)
}

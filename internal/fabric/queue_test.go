package fabric

import (
	"reflect"
	"testing"
	"time"
)

func TestQueueSuspectsArePlacedAlone(t *testing.T) {
	q := newQueue([]string{"a", "b", "c", "d"}, 3)
	chunk, ok := q.pop(4)
	if !ok || len(chunk) != 4 {
		t.Fatalf("pop = %v, %v", chunk, ok)
	}
	// The placement started and died: every job burns a placement and
	// becomes a suspect.
	q.requeue(chunk, true)
	for i := 0; i < 4; i++ {
		chunk, ok = q.pop(4)
		if !ok || len(chunk) != 1 {
			t.Fatalf("suspect pop %d = %v, want a solo chunk", i, chunk)
		}
		q.ack(chunk[0])
	}
	if _, ok := q.pop(4); ok {
		t.Fatal("queue did not close after all jobs acked")
	}
}

func TestQueueQuarantineAfterMaxPlacements(t *testing.T) {
	q := newQueue([]string{"poison", "fine"}, 2)
	chunk, _ := q.pop(1) // "poison"
	q.requeue(chunk, true)
	if got := q.quarantinedIDs(); len(got) != 0 {
		t.Fatalf("quarantined after one lost placement: %v", got)
	}
	chunk2, _ := q.pop(1) // "fine" (suspect "poison" went to the back)
	q.ack(chunk2[0])
	chunk, _ = q.pop(1) // "poison" again, solo
	q.requeue(chunk, true)
	if got := q.quarantinedIDs(); !reflect.DeepEqual(got, []string{"poison"}) {
		t.Fatalf("quarantined = %v, want [poison]", got)
	}
	// Quarantine of the last live job closes the queue.
	if _, ok := q.pop(1); ok {
		t.Fatal("queue still open after last job quarantined")
	}
	// A quarantined job never comes back, even if re-queued again.
	q.requeue([]string{"poison"}, true)
	if _, ok := q.tryPop(1); ok {
		t.Fatal("quarantined job re-entered the queue")
	}
}

func TestQueueRequeueSkipsAckedJobs(t *testing.T) {
	q := newQueue([]string{"a", "b"}, 3)
	chunk, _ := q.pop(2)
	q.ack("a")
	q.requeue(chunk, false) // worker died; "a" already merged
	got, ok := q.tryPop(2)
	if !ok || !reflect.DeepEqual(got, []string{"b"}) {
		t.Fatalf("tryPop = %v, %v, want [b]", got, ok)
	}
}

func TestQueuePopWakesOnCloseAndFail(t *testing.T) {
	q := newQueue([]string{"a"}, 3)
	if _, ok := q.pop(1); !ok {
		t.Fatal("pop of live queue failed")
	}
	done := make(chan bool, 1)
	go func() {
		_, ok := q.pop(1) // blocks: nothing pending, "a" leased
		done <- ok
	}()
	time.Sleep(10 * time.Millisecond)
	q.fail(errLeaseExpired)
	select {
	case ok := <-done:
		if ok {
			t.Fatal("pop returned work from a failed queue")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("pop did not wake on fail")
	}
	if q.failure() == nil {
		t.Fatal("failure not recorded")
	}
}

package fabric

import (
	"context"
	"strings"

	"ftspm/internal/core"
	"ftspm/internal/experiments"
)

// ParseWorkers parses a CLI worker list: comma-separated base URLs,
// with a bare host:port defaulting to http.
func ParseWorkers(s string) []string {
	var out []string
	for _, w := range strings.Split(s, ",") {
		w = strings.TrimSpace(w)
		if w == "" {
			continue
		}
		if !strings.Contains(w, "://") {
			w = "http://" + w
		}
		out = append(out, strings.TrimRight(w, "/"))
	}
	return out
}

// RunSweep executes the full-suite sweep campaign across the fabric.
// It returns the same (sweep, status, error) a local
// experiments.RunSweepCampaign does — assembled by the same source, so
// a distributed sweep is byte-identical to a single-node run.
func RunSweep(ctx context.Context, cfg Config, opts experiments.Options) (*experiments.Sweep, *experiments.CampaignStatus, error) {
	src, err := experiments.SweepSource(opts)
	if err != nil {
		return nil, nil, err
	}
	raw, runErr := Run(ctx, cfg, src)
	if raw == nil {
		return nil, nil, runErr
	}
	sw, st, err := src.AssembleSweep(raw)
	if err != nil {
		return nil, nil, err
	}
	return sw, st, runErr
}

// RunSoak executes a soak campaign over the listed structures across
// the fabric, mirroring experiments.RunSoakCampaign.
func RunSoak(ctx context.Context, cfg Config, base experiments.SoakOptions, structures []core.Structure) ([]*experiments.SoakReport, *experiments.CampaignStatus, error) {
	src, err := experiments.SoakSource(base, structures)
	if err != nil {
		return nil, nil, err
	}
	raw, runErr := Run(ctx, cfg, src)
	if raw == nil {
		return nil, nil, runErr
	}
	reports, st, err := src.AssembleSoak(raw)
	if err != nil {
		return nil, nil, err
	}
	return reports, st, runErr
}

package fabric

import (
	"fmt"
	"io"

	"ftspm/internal/experiments"
)

// PrintAuditSummary renders a campaign's integrity-audit outcome for
// human output, in the style of the soak engine's SDC counts: one
// headline, then one line per itemized divergence. It prints nothing
// when auditing was off (st.Audit nil) so non-fabric runs are
// unaffected. It belongs on the text stream, never in -json artifacts —
// those must stay byte-identical to a single-node run.
func PrintAuditSummary(w io.Writer, st *experiments.CampaignStatus) {
	a := st.Audit
	if a == nil {
		return
	}
	fmt.Fprintf(w, "audit: %d re-executed, %d passed, %d divergence(s), %d unaudited result(s) invalidated and re-run\n",
		a.Audited, a.Passed, len(a.Divergences), a.Invalidated)
	for _, d := range a.Divergences {
		fmt.Fprintf(w, "audit: DIVERGENCE job %s on %s: worker returned %s, re-execution says %s\n",
			d.JobID, d.Worker, d.GotSum, d.WantSum)
	}
	for _, s := range a.SuspectWorkers {
		fmt.Fprintf(w, "audit: worker %s CONVICTED and quarantined\n", s)
	}
}

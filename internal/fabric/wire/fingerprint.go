package wire

import (
	"crypto/sha256"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
)

// ProtocolVersion versions the fabric wire protocol itself. It is part
// of the build fingerprint, so a protocol change alone is enough to
// fence off old workers.
const ProtocolVersion = 2

var (
	fpOnce sync.Once
	fpVal  string
)

// Fingerprint identifies this build of the fabric: a short hash over
// the protocol version, the Go toolchain, the main module path@version,
// and the VCS revision when the binary was built from one. Workers
// serve it on /healthz and stamp it on every streamed result line; the
// coordinator compares against its own and refuses mismatched workers
// at placement time. Two binaries built from the same commit with the
// same toolchain fingerprint identically, whatever their cmd — ftspmd
// and ftspm-soak from one build agree.
func Fingerprint() string {
	fpOnce.Do(func() {
		h := sha256.New()
		fmt.Fprintf(h, "proto=%d\n", ProtocolVersion)
		fmt.Fprintf(h, "go=%s\n", runtime.Version())
		if bi, ok := debug.ReadBuildInfo(); ok {
			fmt.Fprintf(h, "mod=%s@%s\n", bi.Main.Path, bi.Main.Version)
			for _, s := range bi.Settings {
				switch s.Key {
				case "vcs.revision", "vcs.modified":
					fmt.Fprintf(h, "%s=%s\n", s.Key, s.Value)
				}
			}
		}
		fpVal = fmt.Sprintf("fp-%x", h.Sum(nil)[:8])
	})
	return fpVal
}

// Package wire defines the fabric's worker protocol: the request a
// coordinator POSTs to a worker's /v1/fabric endpoint and the NDJSON
// lines the worker streams back. It lives below both internal/server
// (which serves the endpoint) and internal/fabric (which drives it), so
// neither imports the other.
//
// The protocol is deliberately thin. The coordinator never ships job
// code — it ships the campaign options plus a list of job IDs, and the
// worker re-derives the same experiments.JobSource locally. The
// config hash pins both sides to the same derivation: a worker whose
// source hashes differently (version skew, diverging defaults) refuses
// the chunk with 409 instead of silently computing different results.
package wire

import (
	"encoding/json"
	"fmt"

	"ftspm/internal/campaign"
	"ftspm/internal/core"
	"ftspm/internal/experiments"
)

// Request is the body of POST /v1/fabric: one chunk of a campaign's
// job list, to be executed and streamed back line by line.
type Request struct {
	// Kind selects the campaign family: experiments.KindSweep or
	// experiments.KindSoak.
	Kind string `json:"kind"`
	// Sweep holds the normalized sweep options (kind "sweep").
	Sweep *experiments.Options `json:"sweep,omitempty"`
	// Soak holds the normalized soak base options, and Structures the
	// soaked structures by their canonical core.Structure.String()
	// names (kind "soak").
	Soak       *experiments.SoakOptions `json:"soak,omitempty"`
	Structures []string                 `json:"structures,omitempty"`
	// ConfigHash is the coordinator's campaign config hash. The worker
	// re-derives its own from the options above and answers 409 on
	// mismatch.
	ConfigHash string `json:"config_hash"`
	// JobIDs lists the jobs of this chunk, a subset of the campaign's
	// job list. Unknown IDs are a 400.
	JobIDs []string `json:"job_ids"`
	// Parallel bounds the worker's sim pool for this chunk (0 =
	// GOMAXPROCS).
	Parallel int `json:"parallel,omitempty"`
	// Retries and JobTimeoutMS bound each sim job as in the local
	// campaign runner.
	Retries      int   `json:"retries,omitempty"`
	JobTimeoutMS int64 `json:"job_timeout_ms,omitempty"`
}

// JobResult is one finished job in journal form — exactly the record
// the campaign checkpoint stores, so the coordinator can append it to
// its own journal verbatim.
type JobResult = campaign.Result[json.RawMessage]

// Line is one NDJSON line of the worker's streamed response: a job
// result, or the trailer that marks the chunk complete. A stream that
// ends without a trailer was cut mid-chunk; the coordinator re-queues
// whatever it has not seen.
type Line struct {
	Result *JobResult `json:"result,omitempty"`
	Done   *Trailer   `json:"done,omitempty"`
	// Sum attests a Result line: the canonical SHA-256 of the marshaled
	// result (campaign.SumBytes over the exact bytes the worker
	// journals). The coordinator re-derives the sum on receipt; a
	// mismatch means the payload changed between the worker's compute
	// and the coordinator's merge — a transport-grade failure, never a
	// merge.
	Sum string `json:"sum,omitempty"`
	// Fp is the worker's build fingerprint (see Fingerprint). The
	// coordinator refuses lines from a worker whose fingerprint differs
	// from its own: version skew means "the same job ID" may not mean
	// the same computation.
	Fp string `json:"fp,omitempty"`
}

// Trailer closes a chunk stream.
type Trailer struct {
	// Completed and Failed count this chunk's finished jobs by status.
	Completed int `json:"completed"`
	Failed    int `json:"failed"`
	// Error carries a worker-side campaign error (e.g. a drain caught
	// the chunk mid-run); jobs missing from the stream are re-queued by
	// the coordinator either way.
	Error string `json:"error,omitempty"`
}

// ParseStructure resolves a canonical core.Structure.String() name.
func ParseStructure(name string) (core.Structure, error) {
	for _, s := range core.AllStructures() {
		if s.String() == name {
			return s, nil
		}
	}
	return 0, fmt.Errorf("%w: %q", core.ErrUnknownStructure, name)
}

// Source re-derives the request's campaign job source. Both sides use
// it: the coordinator to build the job list it shards, the worker to
// rebuild — and hash-check — the same source from the wire options.
func (r Request) Source() (*experiments.JobSource, error) {
	switch r.Kind {
	case experiments.KindSweep:
		if r.Sweep == nil {
			return nil, fmt.Errorf("wire: sweep request without sweep options")
		}
		return experiments.SweepSource(*r.Sweep)
	case experiments.KindSoak:
		if r.Soak == nil {
			return nil, fmt.Errorf("wire: soak request without soak options")
		}
		structures := make([]core.Structure, len(r.Structures))
		for i, name := range r.Structures {
			s, err := ParseStructure(name)
			if err != nil {
				return nil, fmt.Errorf("wire: %w", err)
			}
			structures[i] = s
		}
		return experiments.SoakSource(*r.Soak, structures)
	default:
		return nil, fmt.Errorf("wire: unknown campaign kind %q", r.Kind)
	}
}

// Package faults models radiation-induced soft errors: the multi-bit
// upset (MBU) multiplicity statistics the paper takes from Dixit &
// Wood [6], a Poisson particle-strike process, and bit-flip injection
// into codewords. It supplies both the analytic probabilities used by the
// AVF equations (1)–(7) and Monte-Carlo campaigns that exercise the real
// ecc codecs.
package faults

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"ftspm/internal/ecc"
)

// MBUDistribution is the probability distribution of the number of bits
// flipped by a single particle strike.
type MBUDistribution struct {
	// P1..P3 are the probabilities of exactly 1, 2, and 3 flipped bits.
	P1, P2, P3 float64
	// PMore is the probability of more than 3 flipped bits.
	PMore float64
}

// Dist40nm is the 40 nm technology-node distribution reported in [6] and
// used throughout the paper's reliability analysis: 62% single-bit, 25%
// double-bit, 6% triple-bit, 7% more than three bits.
var Dist40nm = MBUDistribution{P1: 0.62, P2: 0.25, P3: 0.06, PMore: 0.07}

// Older and newer technology nodes, extrapolated from the trend in [6]
// (the multi-bit tail grows as the feature size shrinks — the paper's
// core motivation: "with continuous down scaling ... SPMs have become
// more vulnerable"). Used by the node-scaling study
// (experiments.AblationTechNode); the paper itself evaluates only 40 nm.
var (
	// Dist65nm: upsets at 65 nm are still dominated by single bits.
	Dist65nm = MBUDistribution{P1: 0.85, P2: 0.11, P3: 0.03, PMore: 0.01}
	// Dist28nm: at 28 nm roughly half of all upsets are multi-bit.
	Dist28nm = MBUDistribution{P1: 0.48, P2: 0.30, P3: 0.11, PMore: 0.11}
	// Dist16nm: deep-nanometer node where multi-bit clusters dominate.
	Dist16nm = MBUDistribution{P1: 0.35, P2: 0.32, P3: 0.16, PMore: 0.17}
)

// TechNodes lists the modelled nodes, largest feature size first.
func TechNodes() []struct {
	Name string
	Dist MBUDistribution
} {
	return []struct {
		Name string
		Dist MBUDistribution
	}{
		{"65nm", Dist65nm},
		{"40nm", Dist40nm},
		{"28nm", Dist28nm},
		{"16nm", Dist16nm},
	}
}

// maxMultiplicity bounds the ">3 bits" tail when sampling: real MBU
// clusters at 40 nm rarely exceed 8 bits.
const maxMultiplicity = 8

// Validate checks that the distribution sums to 1 and has no negative
// mass.
func (d MBUDistribution) Validate() error {
	for _, p := range []float64{d.P1, d.P2, d.P3, d.PMore} {
		if p < 0 || p > 1 {
			return fmt.Errorf("faults: probability %v out of [0,1]", p)
		}
	}
	if s := d.P1 + d.P2 + d.P3 + d.PMore; math.Abs(s-1) > 1e-9 {
		return fmt.Errorf("faults: distribution sums to %v, want 1", s)
	}
	return nil
}

// PExactly returns P(multiplicity == k) for k in 1..3; for k > 3 it
// spreads PMore uniformly over 4..maxMultiplicity.
func (d MBUDistribution) PExactly(k int) float64 {
	switch {
	case k <= 0:
		return 0
	case k == 1:
		return d.P1
	case k == 2:
		return d.P2
	case k == 3:
		return d.P3
	case k <= maxMultiplicity:
		return d.PMore / float64(maxMultiplicity-3)
	default:
		return 0
	}
}

// PAtLeast returns P(multiplicity ≥ k), the quantity the paper's
// equations (4)–(7) consume: e.g. the parity-region SDC probability is
// PAtLeast(2) and the ECC-region SDC probability is PAtLeast(3).
func (d MBUDistribution) PAtLeast(k int) float64 {
	switch {
	case k <= 1:
		return d.P1 + d.P2 + d.P3 + d.PMore
	case k == 2:
		return d.P2 + d.P3 + d.PMore
	case k == 3:
		return d.P3 + d.PMore
	default:
		p := 0.0
		for i := k; i <= maxMultiplicity; i++ {
			p += d.PExactly(i)
		}
		return p
	}
}

// Sample draws a strike multiplicity from the distribution.
func (d MBUDistribution) Sample(rng *rand.Rand) int {
	u := rng.Float64()
	switch {
	case u < d.P1:
		return 1
	case u < d.P1+d.P2:
		return 2
	case u < d.P1+d.P2+d.P3:
		return 3
	default:
		return 4 + rng.Intn(maxMultiplicity-3)
	}
}

// StrikeProcess is a homogeneous Poisson process of particle strikes over
// a memory surface.
type StrikeProcess struct {
	// RatePerBitSec is the strike rate per stored bit per second.
	RatePerBitSec float64
	// Dist gives the flip multiplicity of each strike.
	Dist MBUDistribution
}

// ExpectedStrikes returns the mean number of strikes on a structure of
// the given bit count over the given interval.
func (s StrikeProcess) ExpectedStrikes(bitCount int, seconds float64) float64 {
	return s.RatePerBitSec * float64(bitCount) * seconds
}

// SampleStrikes draws the number of strikes from Poisson(mean) using
// Knuth's method for small means and a normal approximation for large
// ones.
func SampleStrikes(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 500 {
		n := int(math.Round(mean + math.Sqrt(mean)*rng.NormFloat64()))
		if n < 0 {
			return 0
		}
		return n
	}
	l := math.Exp(-mean)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// InjectCluster flips `multiplicity` physically-adjacent bit positions of
// the codeword (MBUs strike neighbouring cells), starting at a random
// position within codeBits. It returns the corrupted word.
func InjectCluster(rng *rand.Rand, word ecc.Bits, codeBits, multiplicity int) ecc.Bits {
	if multiplicity <= 0 || codeBits <= 0 {
		return word
	}
	if multiplicity > codeBits {
		multiplicity = codeBits
	}
	start := rng.Intn(codeBits)
	for i := 0; i < multiplicity; i++ {
		word = word.Flip((start + i) % codeBits)
	}
	return word
}

// ApplyStuckAt returns the codeword as it is actually stored in a word
// containing permanently-failed cells: the bits under mask are forced
// to their frozen values in val regardless of what the write driver
// attempted. This is the storage semantics of STT-RAM wear-out — a
// worn magnetic tunnel junction holds its last state forever — and of
// classic stuck-at manufacturing faults.
func ApplyStuckAt(word, mask, val ecc.Bits) ecc.Bits {
	return word.AndNot(mask).Or(val.And(mask))
}

// InjectScattered flips `multiplicity` distinct uniformly-random bit
// positions of the codeword — the independent-flip variant used to probe
// sensitivity to the adjacency assumption.
func InjectScattered(rng *rand.Rand, word ecc.Bits, codeBits, multiplicity int) ecc.Bits {
	if multiplicity <= 0 || codeBits <= 0 {
		return word
	}
	if multiplicity > codeBits {
		multiplicity = codeBits
	}
	for _, pos := range rng.Perm(codeBits)[:multiplicity] {
		word = word.Flip(pos)
	}
	return word
}

// Outcome classifies the architectural effect of one strike on one
// protected word, following the Section IV taxonomy.
type Outcome int

// Strike outcomes.
const (
	// Benign: the decoded data is intact and no error was signalled.
	Benign Outcome = iota + 1
	// DRE: detected and recovered (ECC corrected the flip).
	DRE
	// DUE: detected but unrecoverable.
	DUE
	// SDC: silent data corruption — wrong data with no signal, or a
	// miscorrection.
	SDC
)

// String implements fmt.Stringer.
func (o Outcome) String() string {
	switch o {
	case Benign:
		return "benign"
	case DRE:
		return "DRE"
	case DUE:
		return "DUE"
	case SDC:
		return "SDC"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// ClassifyStrike injects one strike of the given multiplicity into a
// fresh encoding of data under the codec, decodes, and classifies the
// architectural outcome.
func ClassifyStrike(rng *rand.Rand, codec ecc.Codec, data uint64, multiplicity int) Outcome {
	code := codec.Encode(ecc.BitsFromUint64(data))
	corrupt := InjectCluster(rng, code, codec.CodeBits(), multiplicity)
	decoded, status := codec.Decode(corrupt)
	intact := decoded.Uint64() == data
	switch status {
	case ecc.Corrected:
		if intact {
			return DRE
		}
		return SDC
	case ecc.Detected:
		return DUE
	default: // ecc.Clean
		if intact {
			return Benign
		}
		return SDC
	}
}

// Tally accumulates strike outcomes over a campaign.
type Tally struct {
	Benign, DRE, DUE, SDC int
}

// Total returns the number of classified strikes.
func (t Tally) Total() int { return t.Benign + t.DRE + t.DUE + t.SDC }

// Rate returns the fraction of strikes with the given outcome.
func (t Tally) Rate(o Outcome) float64 {
	n := t.Total()
	if n == 0 {
		return 0
	}
	var c int
	switch o {
	case Benign:
		c = t.Benign
	case DRE:
		c = t.DRE
	case DUE:
		c = t.DUE
	case SDC:
		c = t.SDC
	}
	return float64(c) / float64(n)
}

// Add accumulates o into the tally.
func (t *Tally) Add(o Outcome) {
	switch o {
	case Benign:
		t.Benign++
	case DRE:
		t.DRE++
	case DUE:
		t.DUE++
	case SDC:
		t.SDC++
	}
}

// ErrNoStrikes is returned by Campaign.Run for a non-positive count.
var ErrNoStrikes = errors.New("faults: strike count must be positive")

// Campaign is a Monte-Carlo fault-injection campaign against one codec.
type Campaign struct {
	// Codec under test.
	Codec ecc.Codec
	// Dist gives strike multiplicities; zero value is invalid — use
	// Dist40nm for the paper's environment.
	Dist MBUDistribution
	// Seed makes the campaign reproducible.
	Seed int64
}

// Run classifies n strikes against random payloads and returns the tally.
func (c Campaign) Run(n int) (Tally, error) {
	if n <= 0 {
		return Tally{}, fmt.Errorf("%w: %d", ErrNoStrikes, n)
	}
	if err := c.Dist.Validate(); err != nil {
		return Tally{}, err
	}
	rng := rand.New(rand.NewSource(c.Seed))
	var tally Tally
	mask := ^uint64(0)
	if c.Codec.DataBits() < 64 {
		mask = (uint64(1) << uint(c.Codec.DataBits())) - 1
	}
	for i := 0; i < n; i++ {
		data := rng.Uint64() & mask
		tally.Add(ClassifyStrike(rng, c.Codec, data, c.Dist.Sample(rng)))
	}
	return tally, nil
}

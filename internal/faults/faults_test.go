package faults

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ftspm/internal/ecc"
)

func TestDist40nmMatchesPaper(t *testing.T) {
	// Section IV quotes [6]: 62% / 25% / 6% / 7% at the 40 nm node.
	d := Dist40nm
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.P1 != 0.62 || d.P2 != 0.25 || d.P3 != 0.06 || d.PMore != 0.07 {
		t.Errorf("Dist40nm = %+v", d)
	}
	// Equations (4)-(7) consume these tail probabilities.
	if got := d.PAtLeast(2); math.Abs(got-0.38) > 1e-12 {
		t.Errorf("P(>=2) = %v, want 0.38 (parity SDC probability, eq. 6)", got)
	}
	if got := d.PAtLeast(3); math.Abs(got-0.13) > 1e-12 {
		t.Errorf("P(>=3) = %v, want 0.13 (ECC SDC probability, eq. 7)", got)
	}
	if got := d.PAtLeast(1); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("P(>=1) = %v, want 1", got)
	}
}

func TestValidateRejectsBadDistributions(t *testing.T) {
	if err := (MBUDistribution{P1: 0.5, P2: 0.5, P3: 0.5}).Validate(); err == nil {
		t.Error("sum > 1 accepted")
	}
	if err := (MBUDistribution{P1: -0.1, P2: 0.6, P3: 0.3, PMore: 0.2}).Validate(); err == nil {
		t.Error("negative probability accepted")
	}
}

func TestPExactly(t *testing.T) {
	d := Dist40nm
	if d.PExactly(0) != 0 || d.PExactly(-1) != 0 || d.PExactly(99) != 0 {
		t.Error("out-of-range multiplicity has nonzero mass")
	}
	var sum float64
	for k := 1; k <= 8; k++ {
		sum += d.PExactly(k)
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("PExactly sums to %v", sum)
	}
	// PAtLeast must be the tail sum of PExactly for every k.
	for k := 1; k <= 9; k++ {
		var tail float64
		for i := k; i <= 8; i++ {
			tail += d.PExactly(i)
		}
		if math.Abs(d.PAtLeast(k)-tail) > 1e-12 {
			t.Errorf("PAtLeast(%d) = %v, want %v", k, d.PAtLeast(k), tail)
		}
	}
}

func TestSampleMatchesDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 200000
	counts := map[int]int{}
	for i := 0; i < n; i++ {
		m := Dist40nm.Sample(rng)
		if m < 1 || m > 8 {
			t.Fatalf("sampled multiplicity %d out of range", m)
		}
		counts[m]++
	}
	check := func(k int, want float64) {
		got := float64(counts[k]) / n
		if math.Abs(got-want) > 0.01 {
			t.Errorf("P(%d) empirical = %.4f, want %.2f", k, got, want)
		}
	}
	check(1, 0.62)
	check(2, 0.25)
	check(3, 0.06)
	more := float64(counts[4]+counts[5]+counts[6]+counts[7]+counts[8]) / n
	if math.Abs(more-0.07) > 0.01 {
		t.Errorf("P(>3) empirical = %.4f, want 0.07", more)
	}
}

func TestSampleStrikesPoisson(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	if SampleStrikes(rng, 0) != 0 || SampleStrikes(rng, -1) != 0 {
		t.Error("nonzero strikes for nonpositive mean")
	}
	for _, mean := range []float64{0.5, 5, 50, 5000} {
		const n = 20000
		var sum float64
		for i := 0; i < n; i++ {
			sum += float64(SampleStrikes(rng, mean))
		}
		got := sum / n
		if math.Abs(got-mean) > mean*0.05+0.05 {
			t.Errorf("Poisson(%v) empirical mean = %v", mean, got)
		}
	}
}

func TestExpectedStrikes(t *testing.T) {
	p := StrikeProcess{RatePerBitSec: 1e-9, Dist: Dist40nm}
	got := p.ExpectedStrikes(8*1024*8, 100)
	want := 1e-9 * 65536 * 100
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("ExpectedStrikes = %v, want %v", got, want)
	}
}

func TestInjectClusterFlipsExactly(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	word := ecc.BitsFromUint64(0)
	for mult := 1; mult <= 8; mult++ {
		got := InjectCluster(rng, word, 39, mult)
		if got.OnesCount() != mult {
			t.Errorf("cluster of %d flipped %d bits", mult, got.OnesCount())
		}
	}
	if got := InjectCluster(rng, word, 39, 0); !got.IsZero() {
		t.Error("zero multiplicity flipped bits")
	}
	if got := InjectCluster(rng, word, 0, 3); !got.IsZero() {
		t.Error("zero-width word flipped bits")
	}
	// Multiplicity larger than the word saturates.
	if got := InjectCluster(rng, word, 4, 100); got.OnesCount() != 4 {
		t.Errorf("saturated cluster flipped %d bits, want 4", got.OnesCount())
	}
}

func TestInjectClusterAdjacency(t *testing.T) {
	// Property: the flipped positions form a contiguous run modulo the
	// word width.
	rng := rand.New(rand.NewSource(10))
	f := func(seed int64, multRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		mult := int(multRaw%4) + 2 // 2..5
		const width = 39
		got := InjectCluster(r, ecc.BitsFromUint64(0), width, mult)
		// Find a start such that all flips are start..start+mult-1 mod width.
		for start := 0; start < width; start++ {
			ok := true
			for i := 0; i < mult; i++ {
				if !got.Get((start + i) % width) {
					ok = false
					break
				}
			}
			if ok && got.OnesCount() == mult {
				return true
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestInjectScattered(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	got := InjectScattered(rng, ecc.BitsFromUint64(0), 39, 5)
	if got.OnesCount() != 5 {
		t.Errorf("scattered 5 flipped %d bits", got.OnesCount())
	}
	if got := InjectScattered(rng, ecc.BitsFromUint64(0), 39, 0); !got.IsZero() {
		t.Error("zero multiplicity flipped bits")
	}
	if got := InjectScattered(rng, ecc.BitsFromUint64(0), 3, 9); got.OnesCount() != 3 {
		t.Error("scattered saturation failed")
	}
}

func TestClassifyStrikeSECDED(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	codec := ecc.MustHamming(32)
	// Single flips are always DRE.
	for i := 0; i < 200; i++ {
		if got := ClassifyStrike(rng, codec, rng.Uint64()&0xffffffff, 1); got != DRE {
			t.Fatalf("single flip -> %v, want DRE", got)
		}
	}
	// Double flips are always DUE.
	for i := 0; i < 200; i++ {
		if got := ClassifyStrike(rng, codec, rng.Uint64()&0xffffffff, 2); got != DUE {
			t.Fatalf("double flip -> %v, want DUE", got)
		}
	}
	// Triple flips are DUE or SDC, never clean/benign or recovered.
	for i := 0; i < 500; i++ {
		got := ClassifyStrike(rng, codec, rng.Uint64()&0xffffffff, 3)
		if got != DUE && got != SDC {
			t.Fatalf("triple flip -> %v, want DUE or SDC", got)
		}
	}
}

func TestClassifyStrikeParity(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	codec, err := ecc.NewParity(32)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if got := ClassifyStrike(rng, codec, rng.Uint64()&0xffffffff, 1); got != DUE {
			t.Fatalf("parity single flip -> %v, want DUE", got)
		}
	}
	for i := 0; i < 200; i++ {
		got := ClassifyStrike(rng, codec, rng.Uint64()&0xffffffff, 2)
		// Two flips may both land in data (SDC) or one may be the parity
		// bit itself (still SDC since data changed), unless both flips
		// hit... any two flips leave parity consistent => undetected.
		if got != SDC {
			t.Fatalf("parity double flip -> %v, want SDC", got)
		}
	}
}

func TestCampaignMatchesAnalyticModel(t *testing.T) {
	// The empirical DRE/DUE rates of a SEC-DED campaign under Dist40nm
	// must approach the analytic values the paper uses: DRE = P(1),
	// DUE >= P(2), SDC <= P(>=3) (some >=3-bit strikes are detected, so
	// the paper's eq. (7) is an upper bound on true SDC).
	c := Campaign{Codec: ecc.MustHamming(32), Dist: Dist40nm, Seed: 42}
	tally, err := c.Run(100000)
	if err != nil {
		t.Fatal(err)
	}
	if got := tally.Rate(DRE); math.Abs(got-0.62) > 0.01 {
		t.Errorf("DRE rate = %.4f, want ~0.62", got)
	}
	if got := tally.Rate(DUE); got < 0.25 {
		t.Errorf("DUE rate = %.4f, want >= 0.25", got)
	}
	if got := tally.Rate(SDC); got > 0.13 {
		t.Errorf("SDC rate = %.4f, want <= 0.13 (eq. 7 bound)", got)
	}
	if got := tally.Rate(DUE) + tally.Rate(SDC); math.Abs(got-0.38) > 0.01 {
		t.Errorf("DUE+SDC = %.4f, want ~0.38 (ECC vulnerability weight)", got)
	}
	if tally.Total() != 100000 {
		t.Errorf("total = %d", tally.Total())
	}
}

func TestCampaignErrors(t *testing.T) {
	c := Campaign{Codec: ecc.MustHamming(32), Dist: Dist40nm}
	if _, err := c.Run(0); !errors.Is(err, ErrNoStrikes) {
		t.Error("zero strikes accepted")
	}
	bad := Campaign{Codec: ecc.MustHamming(32), Dist: MBUDistribution{}}
	if _, err := bad.Run(10); err == nil {
		t.Error("invalid distribution accepted")
	}
}

func TestTally(t *testing.T) {
	var tl Tally
	tl.Add(Benign)
	tl.Add(DRE)
	tl.Add(DUE)
	tl.Add(SDC)
	tl.Add(SDC)
	if tl.Total() != 5 {
		t.Errorf("Total = %d", tl.Total())
	}
	if tl.Rate(SDC) != 0.4 || tl.Rate(Benign) != 0.2 {
		t.Error("Rate wrong")
	}
	if (Tally{}).Rate(DRE) != 0 {
		t.Error("empty tally rate not 0")
	}
	if Benign.String() != "benign" || DRE.String() != "DRE" ||
		DUE.String() != "DUE" || SDC.String() != "SDC" {
		t.Error("outcome stringer wrong")
	}
	if Outcome(9).String() != "Outcome(9)" {
		t.Error("unknown outcome stringer wrong")
	}
}

func TestTechNodeDistributionsValidAndTrending(t *testing.T) {
	nodes := TechNodes()
	if len(nodes) != 4 || nodes[1].Name != "40nm" {
		t.Fatalf("nodes = %+v", nodes)
	}
	prevTail := -1.0
	for _, n := range nodes {
		if err := n.Dist.Validate(); err != nil {
			t.Errorf("%s: %v", n.Name, err)
		}
		// The defining trend of [6]: the multi-bit tail P(>=2) grows
		// monotonically as the node shrinks.
		tail := n.Dist.PAtLeast(2)
		if tail <= prevTail {
			t.Errorf("%s: MBU tail %.2f not above previous %.2f", n.Name, tail, prevTail)
		}
		prevTail = tail
	}
}

package faults

import "math/rand"

// Batched per-lane strike planning for the packed soak engine
// (internal/simd). A live campaign draws each strike's location and
// multiplicity from the lane's RNG at access time; the packed engine
// instead precomputes a lane's entire strike schedule up front, which
// is possible because the struck surface (stored code bits per region)
// is static for a whole run. PlanStrike replays the exact draw sequence
// of spm.SPM.InjectStrike + Region.InjectStrike, so a schedule built
// here lands bit-for-bit the same flips the scalar path would.

// RegionSurface describes one region of a strike surface: its word
// count, stored bits per word, and whether its cells absorb strikes
// (STT-RAM immunity).
type RegionSurface struct {
	Words    int
	CodeBits int
	Immune   bool
}

// SurfaceBits returns the total stored bits of the surface — the
// denominator of the strike location draw (spm.SPM.StoredBits).
func SurfaceBits(regions []RegionSurface) int {
	total := 0
	for _, r := range regions {
		total += r.Words * r.CodeBits
	}
	return total
}

// PlannedStrike is one precomputed strike: the struck region and word,
// and the cluster of flipped bits as a mask over the word's codeword
// (bit i of Delta flips code bit i). Delta is zero for strikes absorbed
// by an immune region — the strike still happened (it is counted), it
// just flipped nothing.
type PlannedStrike struct {
	Region int
	Word   int
	Delta  uint64
}

// PlanStrike draws one strike against the surface, consuming rng in
// exactly the order the live injection path does: the bit-weighted
// location pick, then the multiplicity sample, then — only for
// non-immune regions — the cluster start. The surface's total bits are
// passed in so per-strike planning stays O(regions). Requires
// CodeBits ≤ 64 for every region (every codec in this module fits);
// totalBits must be positive.
func PlanStrike(rng *rand.Rand, regions []RegionSurface, totalBits int, dist MBUDistribution) PlannedStrike {
	pick := rng.Intn(totalBits)
	for idx, r := range regions {
		bits := r.Words * r.CodeBits
		if pick >= bits {
			pick -= bits
			continue
		}
		word := pick / r.CodeBits
		mult := dist.Sample(rng)
		if r.Immune {
			return PlannedStrike{Region: idx, Word: word}
		}
		if mult > r.CodeBits {
			mult = r.CodeBits
		}
		start := rng.Intn(r.CodeBits)
		var delta uint64
		for i := 0; i < mult; i++ {
			delta ^= 1 << uint((start+i)%r.CodeBits)
		}
		return PlannedStrike{Region: idx, Word: word, Delta: delta}
	}
	return PlannedStrike{Region: -1} // unreachable with a consistent totalBits
}

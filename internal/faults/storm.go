package faults

import (
	"errors"
	"fmt"
	"math/rand"
)

// Correlated fault storms. The base soak model is memoryless: every
// access draws an independent strike with a fixed probability and an
// i.i.d. MBU multiplicity. Real failure modes cluster — thermal ramps
// and adversarial write streams drive STT-RAM write-failure bursts,
// and process variation makes upsets land in adjacent words. A
// StormProcess replaces the memoryless draw with a two-state
// Markov-modulated strike process (calm/storm intensities with
// geometric dwell times), spatially clustered multi-word events, a
// thermal wear-probability ramp, and an adversarial mode that aims at
// the hottest words of the access profile. Both the live simulator and
// PlanStorm consume the *same* process, so a planned schedule is
// byte-identical to a live run by construction rather than by RNG
// lockstep.

// ErrBadStormConfig reports an invalid StormConfig.
var ErrBadStormConfig = errors.New("faults: invalid storm config")

// StormConfig parameterizes a correlated fault storm.
//
// The process is a two-state Markov chain stepped once per access:
// in the calm state a strike fires with probability
// CalmStrikesPerAccess, in the storm state with
// StormStrikesPerAccess. State dwell times are geometric with means
// MeanCalmAccesses / MeanStormAccesses. Storm-state events corrupt
// SpatialSpan adjacent words (each word gets its own multiplicity
// draw from the campaign's MBU distribution), so a single event can
// defeat per-word SEC-DED. While storming, the transient
// write-failure probability of any attached wear model ramps
// linearly to ThermalFactor× over ThermalRampAccesses and decays the
// same way after the storm passes. With HotBias > 0, that fraction
// of strikes aims at the hottest profiled blocks instead of being
// bit-weighted over the whole surface.
type StormConfig struct {
	// CalmStrikesPerAccess is the calm-state strike probability per
	// access (the background rate; zero means calm is quiet).
	CalmStrikesPerAccess float64 `json:"calm_strikes_per_access"`
	// StormStrikesPerAccess is the storm-state strike probability
	// per access.
	StormStrikesPerAccess float64 `json:"storm_strikes_per_access"`
	// MeanCalmAccesses is the mean dwell time of the calm state, in
	// accesses (geometric distribution).
	MeanCalmAccesses float64 `json:"mean_calm_accesses"`
	// MeanStormAccesses is the mean dwell time of the storm state.
	MeanStormAccesses float64 `json:"mean_storm_accesses"`
	// SpatialSpan is how many adjacent words a storm-state event
	// corrupts (clipped at the end of the struck region). Calm-state
	// strikes always hit a single word.
	SpatialSpan int `json:"spatial_span"`
	// ThermalFactor scales the wear model's transient
	// write-failure probability at full storm heat. 1 disables the
	// thermal ramp.
	ThermalFactor float64 `json:"thermal_factor,omitempty"`
	// ThermalRampAccesses is how many accesses the wear scale takes
	// to ramp from 1 to ThermalFactor after storm onset (and back
	// down after it ends).
	ThermalRampAccesses uint64 `json:"thermal_ramp_accesses,omitempty"`
	// HotBias is the fraction of strikes aimed at the adversary's
	// hot windows (the hottest profiled blocks) instead of being
	// bit-weighted over the whole surface. 0 disables targeting.
	HotBias float64 `json:"hot_bias,omitempty"`
	// HotBlocks is how many of the hottest blocks (by profiled
	// access count) the adversary targets per address space.
	HotBlocks int `json:"hot_blocks,omitempty"`
}

// DefaultStorm returns a moderately violent storm: a quiet background
// with ~0.2 strikes/access bursts arriving every ~4k accesses and
// lasting ~400, each event spanning two adjacent words.
func DefaultStorm() StormConfig {
	return StormConfig{
		CalmStrikesPerAccess:  0.001,
		StormStrikesPerAccess: 0.2,
		MeanCalmAccesses:      4000,
		MeanStormAccesses:     400,
		SpatialSpan:           2,
		ThermalFactor:         1,
		ThermalRampAccesses:   256,
	}
}

// Normalized fills unset (zero) fields from DefaultStorm so partially
// specified configs (CLI flags, wire requests) resolve to one
// canonical form before hashing or planning. CalmStrikesPerAccess and
// HotBias keep their zero values — a quiet calm state and an
// untargeted storm are both meaningful.
func (c StormConfig) Normalized() StormConfig {
	def := DefaultStorm()
	if c.StormStrikesPerAccess <= 0 {
		c.StormStrikesPerAccess = def.StormStrikesPerAccess
	}
	if c.MeanCalmAccesses <= 0 {
		c.MeanCalmAccesses = def.MeanCalmAccesses
	}
	if c.MeanStormAccesses <= 0 {
		c.MeanStormAccesses = def.MeanStormAccesses
	}
	if c.SpatialSpan <= 0 {
		c.SpatialSpan = def.SpatialSpan
	}
	if c.ThermalFactor <= 0 {
		c.ThermalFactor = def.ThermalFactor
	}
	if c.ThermalRampAccesses == 0 {
		c.ThermalRampAccesses = def.ThermalRampAccesses
	}
	if c.HotBias > 0 && c.HotBlocks <= 0 {
		c.HotBlocks = 4
	}
	return c
}

// Validate reports whether the config is usable.
func (c StormConfig) Validate() error {
	switch {
	case c.CalmStrikesPerAccess < 0 || c.CalmStrikesPerAccess > 1:
		return fmt.Errorf("%w: calm strike probability %v outside [0,1]", ErrBadStormConfig, c.CalmStrikesPerAccess)
	case c.StormStrikesPerAccess <= 0 || c.StormStrikesPerAccess > 1:
		return fmt.Errorf("%w: storm strike probability %v outside (0,1]", ErrBadStormConfig, c.StormStrikesPerAccess)
	case c.MeanCalmAccesses < 1 || c.MeanStormAccesses < 1:
		return fmt.Errorf("%w: mean dwell times (%v calm, %v storm) must be >= 1 access", ErrBadStormConfig, c.MeanCalmAccesses, c.MeanStormAccesses)
	case c.SpatialSpan < 1:
		return fmt.Errorf("%w: spatial span %d must be >= 1", ErrBadStormConfig, c.SpatialSpan)
	case c.ThermalFactor < 1:
		return fmt.Errorf("%w: thermal factor %v must be >= 1", ErrBadStormConfig, c.ThermalFactor)
	case c.ThermalFactor > 1 && c.ThermalRampAccesses == 0:
		return fmt.Errorf("%w: thermal ramp needs a nonzero ramp length", ErrBadStormConfig)
	case c.HotBias < 0 || c.HotBias > 1:
		return fmt.Errorf("%w: hot bias %v outside [0,1]", ErrBadStormConfig, c.HotBias)
	case c.HotBias > 0 && c.HotBlocks < 1:
		return fmt.Errorf("%w: hot bias needs at least one hot block", ErrBadStormConfig)
	default:
		return nil
	}
}

// HotWindow is one adversarial target: a word range inside one region
// of one strike surface, covering a hot block's footprint. Surface
// indexes the process's surface list (the caller defines the order).
type HotWindow struct {
	Surface int `json:"surface"`
	Region  int `json:"region"`
	Start   int `json:"start"`
	Words   int `json:"words"`
}

// StormEvent is one corrupted word: bit i of Delta flips code bit i
// of the word, exactly like PlannedStrike. Delta is zero when the
// struck region is immune (the event is absorbed but still counted).
// A spatially clustered strike emits SpatialSpan consecutive events
// in one step.
type StormEvent struct {
	Surface int
	Region  int
	Word    int
	Delta   uint64
}

// PlannedStormEvent is a StormEvent stamped with the access index it
// fires at — the schedule form PlanStorm emits.
type PlannedStormEvent struct {
	AtAccess uint64 `json:"at_access"`
	Surface  int    `json:"surface"`
	Region   int    `json:"region"`
	Word     int    `json:"word"`
	Delta    uint64 `json:"delta"`
}

// StormProcess is the stateful generator: one instance drives one
// run, stepped exactly once per simulated access. All randomness
// comes from a single seeded rand.Rand with a fixed per-step draw
// order (state transition, then strike, then targeting), so two
// processes built from identical arguments emit identical event
// sequences.
type StormProcess struct {
	cfg      StormConfig
	dist     MBUDistribution
	rng      *rand.Rand
	surfaces [][]RegionSurface
	bits     []int // per-surface total bits
	total    int   // all surfaces
	hot      []HotWindow
	hotBits  int

	storming bool
	access   uint64
	ramp     float64 // thermal progress in [0,1]
	events   []StormEvent
}

// NewStormProcess builds a process over the given strike surfaces.
// Surfaces and hot windows must describe the same geometry the run
// injects into; windows are validated against it.
func NewStormProcess(cfg StormConfig, dist MBUDistribution, seed int64, surfaces [][]RegionSurface, hot []HotWindow) (*StormProcess, error) {
	cfg = cfg.Normalized()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := dist.Validate(); err != nil {
		return nil, err
	}
	p := &StormProcess{
		cfg:      cfg,
		dist:     dist,
		rng:      rand.New(rand.NewSource(seed)),
		surfaces: surfaces,
		bits:     make([]int, len(surfaces)),
		events:   make([]StormEvent, 0, cfg.SpatialSpan),
	}
	for i, s := range surfaces {
		p.bits[i] = SurfaceBits(s)
		p.total += p.bits[i]
	}
	if p.total <= 0 {
		return nil, fmt.Errorf("%w: empty strike surface", ErrBadStormConfig)
	}
	for _, w := range hot {
		if w.Surface < 0 || w.Surface >= len(surfaces) {
			return nil, fmt.Errorf("%w: hot window surface %d out of range", ErrBadStormConfig, w.Surface)
		}
		regions := surfaces[w.Surface]
		if w.Region < 0 || w.Region >= len(regions) {
			return nil, fmt.Errorf("%w: hot window region %d out of range", ErrBadStormConfig, w.Region)
		}
		if w.Words <= 0 || w.Start < 0 || w.Start+w.Words > regions[w.Region].Words {
			return nil, fmt.Errorf("%w: hot window [%d,%d) outside region of %d words", ErrBadStormConfig, w.Start, w.Start+w.Words, regions[w.Region].Words)
		}
		p.hot = append(p.hot, w)
		p.hotBits += w.Words * regions[w.Region].CodeBits
	}
	return p, nil
}

// Storming reports whether the process is currently in the storm
// state.
func (p *StormProcess) Storming() bool { return p.storming }

// Accesses returns how many steps the process has taken.
func (p *StormProcess) Accesses() uint64 { return p.access }

// WearScale returns the current thermal multiplier for the wear
// model's transient write-failure probability: 1 when cool, ramping
// linearly to ThermalFactor while the storm persists.
func (p *StormProcess) WearScale() float64 {
	return 1 + (p.cfg.ThermalFactor-1)*p.ramp
}

// Step advances the process one access and returns the strike events
// that fire on it (empty most steps). The returned slice is reused by
// the next Step.
func (p *StormProcess) Step() []StormEvent {
	p.access++
	// 1. State transition (one draw, every step).
	pSwitch := 1 / p.cfg.MeanCalmAccesses
	if p.storming {
		pSwitch = 1 / p.cfg.MeanStormAccesses
	}
	if p.rng.Float64() < pSwitch {
		p.storming = !p.storming
	}
	// 2. Thermal ramp (no draws).
	if p.cfg.ThermalFactor > 1 {
		delta := 1 / float64(p.cfg.ThermalRampAccesses)
		if p.storming {
			p.ramp += delta
			if p.ramp > 1 {
				p.ramp = 1
			}
		} else {
			p.ramp -= delta
			if p.ramp < 0 {
				p.ramp = 0
			}
		}
	}
	// 3. Strike draw (one draw, every step).
	intensity := p.cfg.CalmStrikesPerAccess
	span := 1
	if p.storming {
		intensity = p.cfg.StormStrikesPerAccess
		span = p.cfg.SpatialSpan
	}
	p.events = p.events[:0]
	if p.rng.Float64() >= intensity {
		return p.events
	}
	// 4. Targeting: adversarial hot-window pick or bit-weighted
	// global pick.
	var si, ri, word int
	if p.hotBits > 0 && p.cfg.HotBias > 0 && p.rng.Float64() < p.cfg.HotBias {
		si, ri, word = p.pickHot()
	} else {
		si, ri, word = p.pickGlobal()
	}
	// 5. Corrupt span adjacent words, clipped at the region end.
	// Each word draws its own multiplicity, like independent cells
	// of one physical event.
	r := p.surfaces[si][ri]
	for i := 0; i < span && word+i < r.Words; i++ {
		mult := p.dist.Sample(p.rng)
		ev := StormEvent{Surface: si, Region: ri, Word: word + i}
		if !r.Immune {
			if mult > r.CodeBits {
				mult = r.CodeBits
			}
			start := p.rng.Intn(r.CodeBits)
			for b := 0; b < mult; b++ {
				ev.Delta ^= 1 << uint((start+b)%r.CodeBits)
			}
		}
		p.events = append(p.events, ev)
	}
	return p.events
}

// pickGlobal draws a bit-weighted (surface, region, word) location
// over all surfaces, mirroring PlanStrike's location draw.
func (p *StormProcess) pickGlobal() (si, ri, word int) {
	pick := p.rng.Intn(p.total)
	for i, regions := range p.surfaces {
		if pick >= p.bits[i] {
			pick -= p.bits[i]
			continue
		}
		for j, r := range regions {
			bits := r.Words * r.CodeBits
			if pick >= bits {
				pick -= bits
				continue
			}
			return i, j, pick / r.CodeBits
		}
	}
	return 0, 0, 0 // unreachable with consistent totals
}

// pickHot draws a bit-weighted location restricted to the hot
// windows.
func (p *StormProcess) pickHot() (si, ri, word int) {
	pick := p.rng.Intn(p.hotBits)
	for _, w := range p.hot {
		cb := p.surfaces[w.Surface][w.Region].CodeBits
		bits := w.Words * cb
		if pick >= bits {
			pick -= bits
			continue
		}
		return w.Surface, w.Region, w.Start + pick/cb
	}
	return 0, 0, 0 // unreachable with a consistent hotBits
}

// PlanStorm runs a fresh process for the given number of accesses and
// returns its full schedule — the analogue of PlanStrike for
// correlated storms. Because the plan and a live run consume the same
// StormProcess, equal arguments yield bit-identical fault sequences.
func PlanStorm(cfg StormConfig, dist MBUDistribution, seed int64, surfaces [][]RegionSurface, hot []HotWindow, accesses uint64) ([]PlannedStormEvent, error) {
	p, err := NewStormProcess(cfg, dist, seed, surfaces, hot)
	if err != nil {
		return nil, err
	}
	var plan []PlannedStormEvent
	for p.access < accesses {
		for _, ev := range p.Step() {
			plan = append(plan, PlannedStormEvent{
				AtAccess: p.access,
				Surface:  ev.Surface,
				Region:   ev.Region,
				Word:     ev.Word,
				Delta:    ev.Delta,
			})
		}
	}
	return plan, nil
}

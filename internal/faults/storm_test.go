package faults

import (
	"bytes"
	"encoding/json"
	"errors"
	"testing"
)

func testSurfaces() [][]RegionSurface {
	return [][]RegionSurface{
		{ // surface 0: a small instruction SPM
			{Words: 64, CodeBits: 38, Immune: false},
			{Words: 32, CodeBits: 32, Immune: true},
		},
		{ // surface 1: a data SPM with a parity region
			{Words: 128, CodeBits: 38, Immune: false},
			{Words: 48, CodeBits: 33, Immune: false},
		},
	}
}

func TestDefaultStormValidates(t *testing.T) {
	if err := DefaultStorm().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (StormConfig{}).Normalized().Validate(); err != nil {
		t.Fatalf("normalized zero config invalid: %v", err)
	}
}

func TestStormConfigValidateRejects(t *testing.T) {
	bad := []StormConfig{
		{CalmStrikesPerAccess: -0.1, StormStrikesPerAccess: 0.5, MeanCalmAccesses: 10, MeanStormAccesses: 10, SpatialSpan: 1, ThermalFactor: 1},
		{StormStrikesPerAccess: 0, MeanCalmAccesses: 10, MeanStormAccesses: 10, SpatialSpan: 1, ThermalFactor: 1},
		{StormStrikesPerAccess: 1.5, MeanCalmAccesses: 10, MeanStormAccesses: 10, SpatialSpan: 1, ThermalFactor: 1},
		{StormStrikesPerAccess: 0.5, MeanCalmAccesses: 0.5, MeanStormAccesses: 10, SpatialSpan: 1, ThermalFactor: 1},
		{StormStrikesPerAccess: 0.5, MeanCalmAccesses: 10, MeanStormAccesses: 10, SpatialSpan: 0, ThermalFactor: 1},
		{StormStrikesPerAccess: 0.5, MeanCalmAccesses: 10, MeanStormAccesses: 10, SpatialSpan: 1, ThermalFactor: 0.5},
		{StormStrikesPerAccess: 0.5, MeanCalmAccesses: 10, MeanStormAccesses: 10, SpatialSpan: 1, ThermalFactor: 2, ThermalRampAccesses: 0},
		{StormStrikesPerAccess: 0.5, MeanCalmAccesses: 10, MeanStormAccesses: 10, SpatialSpan: 1, ThermalFactor: 1, HotBias: 1.5},
		{StormStrikesPerAccess: 0.5, MeanCalmAccesses: 10, MeanStormAccesses: 10, SpatialSpan: 1, ThermalFactor: 1, HotBias: 0.5, HotBlocks: 0},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); !errors.Is(err, ErrBadStormConfig) {
			t.Errorf("config %d: err = %v, want ErrBadStormConfig", i, err)
		}
	}
}

func TestNewStormProcessRejectsBadWindows(t *testing.T) {
	surf := testSurfaces()
	bad := []HotWindow{
		{Surface: 2, Region: 0, Start: 0, Words: 1},
		{Surface: 0, Region: 5, Start: 0, Words: 1},
		{Surface: 0, Region: 0, Start: 60, Words: 10},
		{Surface: 0, Region: 0, Start: -1, Words: 2},
		{Surface: 0, Region: 0, Start: 0, Words: 0},
	}
	for i, w := range bad {
		if _, err := NewStormProcess(DefaultStorm(), Dist40nm, 1, surf, []HotWindow{w}); !errors.Is(err, ErrBadStormConfig) {
			t.Errorf("window %d: err = %v, want ErrBadStormConfig", i, err)
		}
	}
	if _, err := NewStormProcess(DefaultStorm(), Dist40nm, 1, nil, nil); !errors.Is(err, ErrBadStormConfig) {
		t.Errorf("empty surface: err = %v, want ErrBadStormConfig", err)
	}
}

// TestPlanStormDeterministic pins the tentpole guarantee: the same
// seed and config yield a byte-identical schedule, and live Step()
// consumption reproduces the plan exactly.
func TestPlanStormDeterministic(t *testing.T) {
	surf := testSurfaces()
	hot := []HotWindow{{Surface: 1, Region: 0, Start: 0, Words: 16}}
	cfg := DefaultStorm()
	cfg.HotBias = 0.3
	cfg.HotBlocks = 2
	const accesses = 50_000

	a, err := PlanStorm(cfg, Dist40nm, 42, surf, hot, accesses)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PlanStorm(cfg, Dist40nm, 42, surf, hot, accesses)
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if !bytes.Equal(ja, jb) {
		t.Fatal("same seed+config produced different schedules")
	}
	if len(a) == 0 {
		t.Fatal("storm produced no events over 50k accesses (vacuous test)")
	}

	// A live process stepped the same number of times emits the same
	// events at the same access indices.
	p, err := NewStormProcess(cfg, Dist40nm, 42, surf, hot)
	if err != nil {
		t.Fatal(err)
	}
	var live []PlannedStormEvent
	for p.Accesses() < accesses {
		for _, ev := range p.Step() {
			live = append(live, PlannedStormEvent{
				AtAccess: p.Accesses(), Surface: ev.Surface,
				Region: ev.Region, Word: ev.Word, Delta: ev.Delta,
			})
		}
	}
	jl, _ := json.Marshal(live)
	if !bytes.Equal(ja, jl) {
		t.Fatal("live Step() sequence diverged from PlanStorm")
	}

	// Different seeds diverge (the process actually uses its RNG).
	c, err := PlanStorm(cfg, Dist40nm, 43, surf, hot, accesses)
	if err != nil {
		t.Fatal(err)
	}
	if jc, _ := json.Marshal(c); bytes.Equal(ja, jc) {
		t.Error("different seeds produced identical schedules")
	}
}

// checkStormInvariants validates a schedule against the surface
// geometry: in-bounds locations, immune regions absorb (Delta 0),
// non-immune deltas fit the region's code bits, events are ordered by
// access index, and clustered events stay within SpatialSpan adjacent
// words of one region.
func checkStormInvariants(t *testing.T, cfg StormConfig, surf [][]RegionSurface, plan []PlannedStormEvent, accesses uint64) {
	t.Helper()
	cfg = cfg.Normalized()
	var last uint64
	for i, ev := range plan {
		if ev.AtAccess == 0 || ev.AtAccess > accesses {
			t.Fatalf("event %d: access %d outside (0,%d]", i, ev.AtAccess, accesses)
		}
		if ev.AtAccess < last {
			t.Fatalf("event %d: access %d before predecessor %d", i, ev.AtAccess, last)
		}
		last = ev.AtAccess
		if ev.Surface < 0 || ev.Surface >= len(surf) {
			t.Fatalf("event %d: surface %d out of range", i, ev.Surface)
		}
		regions := surf[ev.Surface]
		if ev.Region < 0 || ev.Region >= len(regions) {
			t.Fatalf("event %d: region %d out of range", i, ev.Region)
		}
		r := regions[ev.Region]
		if ev.Word < 0 || ev.Word >= r.Words {
			t.Fatalf("event %d: word %d outside region of %d words", i, ev.Word, r.Words)
		}
		if r.Immune {
			if ev.Delta != 0 {
				t.Fatalf("event %d: immune region took delta %#x", i, ev.Delta)
			}
		} else {
			if r.CodeBits < 64 && ev.Delta>>uint(r.CodeBits) != 0 {
				t.Fatalf("event %d: delta %#x exceeds %d code bits", i, ev.Delta, r.CodeBits)
			}
			if ev.Delta == 0 {
				t.Fatalf("event %d: non-immune region took empty delta", i)
			}
		}
		// Cluster shape: all events of one access share a region and
		// span at most SpatialSpan consecutive words.
		if i > 0 && plan[i-1].AtAccess == ev.AtAccess {
			prev := plan[i-1]
			if prev.Surface != ev.Surface || prev.Region != ev.Region {
				t.Fatalf("event %d: cluster crosses regions", i)
			}
			if ev.Word != prev.Word+1 {
				t.Fatalf("event %d: cluster words not adjacent (%d after %d)", i, ev.Word, prev.Word)
			}
		}
	}
	// Span bound: count the longest same-access run.
	run, maxRun := 1, 1
	for i := 1; i < len(plan); i++ {
		if plan[i].AtAccess == plan[i-1].AtAccess {
			run++
		} else {
			run = 1
		}
		if run > maxRun {
			maxRun = run
		}
	}
	if maxRun > cfg.SpatialSpan {
		t.Fatalf("cluster of %d words exceeds spatial span %d", maxRun, cfg.SpatialSpan)
	}
}

func TestPlanStormInvariants(t *testing.T) {
	surf := testSurfaces()
	cfg := DefaultStorm()
	cfg.SpatialSpan = 3
	cfg.HotBias = 0.5
	cfg.HotBlocks = 2
	hot := []HotWindow{
		{Surface: 0, Region: 0, Start: 8, Words: 8},
		{Surface: 1, Region: 1, Start: 0, Words: 12},
	}
	const accesses = 100_000
	plan, err := PlanStorm(cfg, Dist40nm, 7, surf, hot, accesses)
	if err != nil {
		t.Fatal(err)
	}
	checkStormInvariants(t, cfg, surf, plan, accesses)
}

func TestStormWearScaleRamp(t *testing.T) {
	cfg := StormConfig{
		CalmStrikesPerAccess:  0,
		StormStrikesPerAccess: 0.5,
		MeanCalmAccesses:      10,
		MeanStormAccesses:     10,
		SpatialSpan:           1,
		ThermalFactor:         4,
		ThermalRampAccesses:   16,
	}
	p, err := NewStormProcess(cfg, Dist40nm, 5, testSurfaces(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.WearScale(); got != 1 {
		t.Fatalf("initial wear scale %v, want 1", got)
	}
	sawHot := false
	for i := 0; i < 10_000; i++ {
		p.Step()
		s := p.WearScale()
		if s < 1 || s > cfg.ThermalFactor {
			t.Fatalf("wear scale %v outside [1,%v]", s, cfg.ThermalFactor)
		}
		if s > 1 {
			sawHot = true
		}
	}
	if !sawHot {
		t.Error("thermal ramp never engaged over 10k accesses")
	}
}

// FuzzPlanStorm fuzzes the determinism contract and schedule
// invariants over arbitrary configs and seeds.
func FuzzPlanStorm(f *testing.F) {
	f.Add(int64(1), 0.001, 0.2, 4000.0, 400.0, 2, 1.0, uint64(256), 0.0)
	f.Add(int64(99), 0.0, 0.9, 10.0, 10.0, 4, 8.0, uint64(8), 0.5)
	f.Add(int64(-7), 0.05, 0.5, 100.0, 50.0, 1, 2.0, uint64(64), 1.0)
	f.Fuzz(func(t *testing.T, seed int64, calm, storm, calmDwell, stormDwell float64,
		span int, thermal float64, ramp uint64, hotBias float64) {
		cfg := StormConfig{
			CalmStrikesPerAccess:  calm,
			StormStrikesPerAccess: storm,
			MeanCalmAccesses:      calmDwell,
			MeanStormAccesses:     stormDwell,
			SpatialSpan:           span,
			ThermalFactor:         thermal,
			ThermalRampAccesses:   ramp,
			HotBias:               hotBias,
			HotBlocks:             2,
		}
		surf := testSurfaces()
		hot := []HotWindow{{Surface: 0, Region: 0, Start: 0, Words: 8}}
		const accesses = 4096
		a, err := PlanStorm(cfg, Dist40nm, seed, surf, hot, accesses)
		if err != nil {
			if !errors.Is(err, ErrBadStormConfig) {
				t.Fatalf("unexpected error class: %v", err)
			}
			return // invalid config rejected up front: fine
		}
		b, err := PlanStorm(cfg, Dist40nm, seed, surf, hot, accesses)
		if err != nil {
			t.Fatalf("second plan errored after first succeeded: %v", err)
		}
		ja, _ := json.Marshal(a)
		jb, _ := json.Marshal(b)
		if !bytes.Equal(ja, jb) {
			t.Fatal("same seed+config produced different schedules")
		}
		checkStormInvariants(t, cfg, surf, a, accesses)
	})
}

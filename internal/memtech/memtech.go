package memtech

import (
	"errors"
	"fmt"
	"math"
)

// Technology identifies the storage cell technology of a memory bank.
type Technology int

// Supported technologies. STT-RAM is the NVM the paper selects ("the most
// promising NVM technology for on-chip memories" [21]); per [9] its cells
// are immune to radiation-induced particle strikes.
const (
	SRAM Technology = iota + 1
	STTRAM
)

// String implements fmt.Stringer.
func (t Technology) String() string {
	switch t {
	case SRAM:
		return "SRAM"
	case STTRAM:
		return "STT-RAM"
	default:
		return fmt.Sprintf("Technology(%d)", int(t))
	}
}

// Valid reports whether t is a known technology.
func (t Technology) Valid() bool { return t == SRAM || t == STTRAM }

// Protection identifies the error-protection scheme wrapped around a bank.
type Protection int

// Protection levels, mirroring the legend of Table IV:
// (1) unprotected SRAM, (2) parity-protected SRAM,
// (3) SEC-DED-protected SRAM, (4) STT-RAM (inherently immune, no code).
const (
	Unprotected Protection = iota + 1
	Parity
	SECDED
	// DMR duplicates every word (dual modular redundancy) — the
	// related-work protection of [3] that FTSPM argues against: near-
	// total detection, no correction, 2x cells and 2x access energy.
	DMR
)

// String implements fmt.Stringer.
func (p Protection) String() string {
	switch p {
	case Unprotected:
		return "unprotected"
	case Parity:
		return "parity"
	case SECDED:
		return "SEC-DED"
	case DMR:
		return "DMR"
	default:
		return fmt.Sprintf("Protection(%d)", int(p))
	}
}

// Valid reports whether p is a known protection level.
func (p Protection) Valid() bool {
	switch p {
	case Unprotected, Parity, SECDED, DMR:
		return true
	default:
		return false
	}
}

// Bank holds the simulator-facing parameters of one memory bank: a
// contiguous region of a single technology and protection level. All
// energies are per 32-bit word access and already include the code
// (parity/SEC-DED) encode/decode energy for protected banks.
type Bank struct {
	Tech         Technology
	Prot         Protection
	SizeBytes    int
	ReadLatency  Cycles
	WriteLatency Cycles
	ReadEnergy   Picojoules
	WriteEnergy  Picojoules
	Leakage      Milliwatts
}

// String implements fmt.Stringer.
func (b Bank) String() string {
	return fmt.Sprintf("%s/%s %dKB r=%dclk/%v w=%dclk/%v leak=%v",
		b.Tech, b.Prot, b.SizeBytes/1024,
		b.ReadLatency, b.ReadEnergy, b.WriteLatency, b.WriteEnergy, b.Leakage)
}

// Calibration constants.
//
// Dynamic energy: NVSim-style square-root scaling with bank size around a
// 16 KB reference bank (the SPM size in Table IV). The reference energies
// were fitted so that, with the access mixes the MiBench-substitute suite
// produces, the structure-level ratios of Fig. 7 hold: FTSPM dynamic
// energy ~47% below the pure SEC-DED SRAM SPM and ~77% below the pure
// STT-RAM SPM. STT-RAM reads are cheaper than SRAM reads and STT-RAM
// writes far more expensive, as the paper states in Section V.
//
// Leakage: linear in size. Raw SRAM leakage was fitted so the baseline
// 32 KB SEC-DED SRAM SPM leaks 15.8 mW and the 32 KB STT-RAM SPM leaks
// 3.0 mW, the exact static powers the paper reports in Section V; the
// hybrid-controller constant then places FTSPM at the reported 7.1 mW.
const (
	refBankBytes = 16 * 1024

	sramReadEnergyRef  Picojoules = 72.0 // 16 KB raw SRAM bank, per word
	sramWriteEnergyRef Picojoules = 76.0
	sttReadEnergyRef   Picojoules = 25.0 // 16 KB STT-RAM bank, per word
	// STT-RAM writes must flip magnetic tunnel junctions: per-word write
	// energy is ~50x the read energy at DSN-2013-era technology
	// parameters, which is what makes the pure STT-RAM SPM the most
	// dynamic-energy-hungry structure in Fig. 7 despite its cheap reads.
	sttWriteEnergyRef Picojoules = 2000.0

	sramLeakPerKB Milliwatts = 0.4389 // raw SRAM cells
	sttLeakPerKB  Milliwatts = 0.09375

	// Storage and codec overheads of the protection wrappers.
	// Parity: 1 bit per 32-bit word (3.125% cells) plus XOR tree energy.
	// SEC-DED: Hamming(39,32) per word (21.9% cells in a word-organized
	// bank; the paper's 72,64 organization amortizes to 12.5%) plus
	// encoder/corrector energy and one extra pipeline cycle each way.
	parityCellOverhead  = 1.0625
	parityEnergyFactor  = 1.06
	secdedCellOverhead  = 1.125
	secdedEnergyFactor  = 1.12
	secdedExtraLatency  = 1 // cycles, each direction (Table IV: 2 vs 1)
	dmrCellOverhead     = 2.0
	dmrEnergyFactor     = 2.0 // both copies written and read-compared
	dmrExtraReadLatency = 1   // word-compare stage in the read path
	sramBaseReadLatency = 1   // unprotected SRAM, Table IV row (1)
	sttReadLatency      = 1   // Table IV row (4)
	sttWriteLatency     = 10

	// HybridControllerLeakage is the extra leakage of the FTSPM mapping
	// controller and the additional bank peripherals of the three-region
	// hybrid structure (Fig. 1). Fitted so the Table IV FTSPM
	// configuration leaks the paper's reported 7.1 mW.
	HybridControllerLeakage Milliwatts = 2.55
)

// Errors returned by EstimateBank.
var (
	ErrUnknownTechnology = errors.New("memtech: unknown technology")
	ErrUnknownProtection = errors.New("memtech: unknown protection")
	ErrBadSize           = errors.New("memtech: bank size must be a positive multiple of the word size")
	ErrSTTProtected      = errors.New("memtech: STT-RAM banks are inherently immune and take no protection code")
)

// sizeScale returns the NVSim-style dynamic-energy scale factor for a bank
// of the given size: access energy grows with the square root of the bank
// size (longer bit/word lines, larger decoders).
func sizeScale(sizeBytes int) float64 {
	return math.Sqrt(float64(sizeBytes) / float64(refBankBytes))
}

// EstimateBank returns the simulator parameters of a bank of the given
// technology, protection, and size. It is the package's NVSim substitute:
// same inputs (technology, organization, capacity), same outputs
// (latency, dynamic energy, leakage).
//
// STT-RAM banks must be Unprotected: per [9] they are immune to particle
// strikes, so FTSPM spends no code bits on them.
func EstimateBank(tech Technology, prot Protection, sizeBytes int) (Bank, error) {
	if !tech.Valid() {
		return Bank{}, fmt.Errorf("%w: %d", ErrUnknownTechnology, int(tech))
	}
	if !prot.Valid() {
		return Bank{}, fmt.Errorf("%w: %d", ErrUnknownProtection, int(prot))
	}
	if sizeBytes <= 0 || sizeBytes%WordBytes != 0 {
		return Bank{}, fmt.Errorf("%w: %d bytes", ErrBadSize, sizeBytes)
	}
	if tech == STTRAM && prot != Unprotected {
		return Bank{}, ErrSTTProtected
	}

	scale := sizeScale(sizeBytes)
	b := Bank{Tech: tech, Prot: prot, SizeBytes: sizeBytes}

	switch tech {
	case SRAM:
		b.ReadEnergy = sramReadEnergyRef * Picojoules(scale)
		b.WriteEnergy = sramWriteEnergyRef * Picojoules(scale)
		b.ReadLatency = sramBaseReadLatency
		b.WriteLatency = sramBaseReadLatency
		b.Leakage = sramLeakPerKB * Milliwatts(float64(sizeBytes)/1024)
	case STTRAM:
		b.ReadEnergy = sttReadEnergyRef * Picojoules(scale)
		b.WriteEnergy = sttWriteEnergyRef * Picojoules(scale)
		b.ReadLatency = sttReadLatency
		b.WriteLatency = sttWriteLatency
		b.Leakage = sttLeakPerKB * Milliwatts(float64(sizeBytes)/1024)
	}

	switch prot {
	case Parity:
		b.ReadEnergy *= parityEnergyFactor
		b.WriteEnergy *= parityEnergyFactor
		b.Leakage *= parityCellOverhead
	case SECDED:
		b.ReadEnergy *= secdedEnergyFactor
		b.WriteEnergy *= secdedEnergyFactor
		b.Leakage *= secdedCellOverhead
		b.ReadLatency += secdedExtraLatency
		b.WriteLatency += secdedExtraLatency
	case DMR:
		b.ReadEnergy *= dmrEnergyFactor
		b.WriteEnergy *= dmrEnergyFactor
		b.Leakage *= dmrCellOverhead
		b.ReadLatency += dmrExtraReadLatency
	}
	return b, nil
}

// MustEstimateBank is EstimateBank for statically-known-good arguments;
// it panics on error and is intended for package-level configuration
// tables in this module, not for user input.
func MustEstimateBank(tech Technology, prot Protection, sizeBytes int) Bank {
	b, err := EstimateBank(tech, prot, sizeBytes)
	if err != nil {
		panic(err)
	}
	return b
}

// AccessEnergy returns the dynamic energy of touching n bytes of the bank
// with the given operation (write=true for stores).
func (b Bank) AccessEnergy(n int, write bool) Picojoules {
	w := Picojoules(WordsIn(n))
	if write {
		return b.WriteEnergy * w
	}
	return b.ReadEnergy * w
}

// AccessLatency returns the cycle cost of touching n bytes of the bank.
// Sequential word accesses within the bank are pipelined: the first word
// pays the full latency and each further word one additional cycle.
func (b Bank) AccessLatency(n int, write bool) Cycles {
	words := WordsIn(n)
	if words == 0 {
		return 0
	}
	lat := b.ReadLatency
	if write {
		lat = b.WriteLatency
	}
	return lat + Cycles(words-1)
}

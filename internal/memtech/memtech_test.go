package memtech

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestEstimateBankTableIVLatencies(t *testing.T) {
	// Latencies must match Table IV exactly.
	tests := []struct {
		name  string
		tech  Technology
		prot  Protection
		size  int
		read  Cycles
		write Cycles
	}{
		{"unprotected SRAM cache", SRAM, Unprotected, 8 * 1024, 1, 1},
		{"SEC-DED SRAM SPM", SRAM, SECDED, 16 * 1024, 2, 2},
		{"parity SRAM region", SRAM, Parity, 2 * 1024, 1, 1},
		{"STT-RAM region", STTRAM, Unprotected, 12 * 1024, 1, 10},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			b, err := EstimateBank(tt.tech, tt.prot, tt.size)
			if err != nil {
				t.Fatalf("EstimateBank: %v", err)
			}
			if b.ReadLatency != tt.read || b.WriteLatency != tt.write {
				t.Errorf("latency = %d/%d, want %d/%d",
					b.ReadLatency, b.WriteLatency, tt.read, tt.write)
			}
		})
	}
}

func TestEstimateBankPaperStaticPowers(t *testing.T) {
	// Section V: baseline 32 KB SEC-DED SRAM SPM leaks 15.8 mW, the pure
	// 32 KB STT-RAM SPM 3.0 mW, and FTSPM's Table IV configuration
	// 7.1 mW. The calibration must reproduce those within 2%.
	within := func(got, want float64) bool { return math.Abs(got-want)/want < 0.02 }

	iSRAM := MustEstimateBank(SRAM, SECDED, 16*1024)
	dSRAM := MustEstimateBank(SRAM, SECDED, 16*1024)
	if got := float64(iSRAM.Leakage + dSRAM.Leakage); !within(got, 15.8) {
		t.Errorf("baseline SRAM SPM leakage = %.2f mW, want ~15.8", got)
	}

	iSTT := MustEstimateBank(STTRAM, Unprotected, 16*1024)
	dSTT := MustEstimateBank(STTRAM, Unprotected, 16*1024)
	if got := float64(iSTT.Leakage + dSTT.Leakage); !within(got, 3.0) {
		t.Errorf("pure STT-RAM SPM leakage = %.2f mW, want ~3.0", got)
	}

	ftspm := iSTT.Leakage +
		MustEstimateBank(STTRAM, Unprotected, 12*1024).Leakage +
		MustEstimateBank(SRAM, SECDED, 2*1024).Leakage +
		MustEstimateBank(SRAM, Parity, 2*1024).Leakage +
		HybridControllerLeakage
	if got := float64(ftspm); !within(got, 7.1) {
		t.Errorf("FTSPM leakage = %.2f mW, want ~7.1", got)
	}
}

func TestEstimateBankEnergyOrdering(t *testing.T) {
	sram := MustEstimateBank(SRAM, SECDED, 16*1024)
	stt := MustEstimateBank(STTRAM, Unprotected, 16*1024)
	if stt.ReadEnergy >= sram.ReadEnergy {
		t.Errorf("STT-RAM read energy %v should be below SEC-DED SRAM read %v (Section V)",
			stt.ReadEnergy, sram.ReadEnergy)
	}
	if stt.WriteEnergy <= 3*sram.WriteEnergy {
		t.Errorf("STT-RAM write energy %v should be several times SRAM write %v",
			stt.WriteEnergy, sram.WriteEnergy)
	}
}

func TestEstimateBankSmallBanksCheaper(t *testing.T) {
	big := MustEstimateBank(SRAM, Parity, 16*1024)
	small := MustEstimateBank(SRAM, Parity, 2*1024)
	if small.ReadEnergy >= big.ReadEnergy {
		t.Errorf("2KB bank read %v not cheaper than 16KB %v", small.ReadEnergy, big.ReadEnergy)
	}
	wantScale := math.Sqrt(2.0 / 16.0)
	got := float64(small.ReadEnergy / big.ReadEnergy)
	if math.Abs(got-wantScale) > 1e-9 {
		t.Errorf("size scaling = %.4f, want sqrt(2/16)=%.4f", got, wantScale)
	}
}

func TestEstimateBankErrors(t *testing.T) {
	tests := []struct {
		name string
		tech Technology
		prot Protection
		size int
		want error
	}{
		{"bad tech", Technology(0), Parity, 1024, ErrUnknownTechnology},
		{"bad prot", SRAM, Protection(9), 1024, ErrUnknownProtection},
		{"zero size", SRAM, Parity, 0, ErrBadSize},
		{"negative size", SRAM, Parity, -4, ErrBadSize},
		{"unaligned size", SRAM, Parity, 1026, ErrBadSize},
		{"protected STT", STTRAM, SECDED, 1024, ErrSTTProtected},
		{"parity STT", STTRAM, Parity, 1024, ErrSTTProtected},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := EstimateBank(tt.tech, tt.prot, tt.size); !errors.Is(err, tt.want) {
				t.Errorf("err = %v, want %v", err, tt.want)
			}
		})
	}
}

func TestMustEstimateBankPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustEstimateBank with bad args did not panic")
		}
	}()
	MustEstimateBank(SRAM, Protection(0), 1024)
}

func TestAccessEnergyAndLatency(t *testing.T) {
	b := MustEstimateBank(SRAM, SECDED, 16*1024)
	if got := b.AccessEnergy(4, false); got != b.ReadEnergy {
		t.Errorf("1-word read energy = %v, want %v", got, b.ReadEnergy)
	}
	if got := b.AccessEnergy(8, true); got != 2*b.WriteEnergy {
		t.Errorf("2-word write energy = %v, want %v", got, 2*b.WriteEnergy)
	}
	// Partial words round up.
	if got := b.AccessEnergy(5, false); got != 2*b.ReadEnergy {
		t.Errorf("5-byte read energy = %v, want 2 words", got)
	}
	if got := b.AccessEnergy(0, false); got != 0 {
		t.Errorf("0-byte access energy = %v, want 0", got)
	}
	if got := b.AccessLatency(4, false); got != 2 {
		t.Errorf("1-word read latency = %d, want 2", got)
	}
	// Pipelined burst: first word full latency, then 1 cycle per word.
	if got := b.AccessLatency(16, true); got != 2+3 {
		t.Errorf("4-word write latency = %d, want 5", got)
	}
	if got := b.AccessLatency(0, true); got != 0 {
		t.Errorf("0-byte latency = %d, want 0", got)
	}
}

func TestWordsIn(t *testing.T) {
	tests := []struct{ n, want int }{
		{0, 0}, {-3, 0}, {1, 1}, {4, 1}, {5, 2}, {8, 2}, {2048, 512},
	}
	for _, tt := range tests {
		if got := WordsIn(tt.n); got != tt.want {
			t.Errorf("WordsIn(%d) = %d, want %d", tt.n, got, tt.want)
		}
	}
}

func TestStaticEnergy(t *testing.T) {
	// 10 mW over 1e9 cycles at 1 GHz = 10 mW × 1 s = 10 mJ.
	got := StaticEnergy(10, Cycles(1e9))
	if math.Abs(float64(got)-10) > 1e-9 {
		t.Errorf("StaticEnergy = %v, want 10 mJ", got)
	}
}

func TestBankMonotonicityProperty(t *testing.T) {
	// Property: for any valid size, energy and leakage are positive and
	// monotonically non-decreasing in size.
	f := func(kb8 uint8) bool {
		size := (int(kb8%63) + 1) * 1024
		a := MustEstimateBank(SRAM, SECDED, size)
		b := MustEstimateBank(SRAM, SECDED, size+1024)
		return a.ReadEnergy > 0 && a.Leakage > 0 &&
			b.ReadEnergy >= a.ReadEnergy && b.Leakage >= a.Leakage
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStringers(t *testing.T) {
	if SRAM.String() != "SRAM" || STTRAM.String() != "STT-RAM" {
		t.Error("technology stringer wrong")
	}
	if Technology(7).String() != "Technology(7)" {
		t.Error("unknown technology stringer wrong")
	}
	if Parity.String() != "parity" || SECDED.String() != "SEC-DED" || Unprotected.String() != "unprotected" {
		t.Error("protection stringer wrong")
	}
	if Protection(7).String() != "Protection(7)" {
		t.Error("unknown protection stringer wrong")
	}
	b := MustEstimateBank(SRAM, Parity, 2*1024)
	if b.String() == "" {
		t.Error("bank stringer empty")
	}
}

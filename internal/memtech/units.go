// Package memtech models the memory technologies used by FTSPM: SRAM and
// STT-RAM banks with optional parity or SEC-DED protection.
//
// It is the reproduction's substitute for NVSim [26] and for the Synopsys
// Design Compiler characterization of the parity/SEC-DED circuits used by
// the paper: it produces, for a bank of a given technology, protection
// level, and size, the per-access read/write energies, the leakage power,
// and the access latencies the simulator charges. The calibration constants
// are documented alongside the paper values they were fitted to.
package memtech

import "fmt"

// Picojoules measures dynamic energy of a single memory access.
type Picojoules float64

// Millijoules measures accumulated energy over a program execution.
type Millijoules float64

// Milliwatts measures leakage (static) power.
type Milliwatts float64

// Cycles counts processor clock cycles.
type Cycles uint64

// ClockHz is the simulated core clock. The paper's platform is an
// embedded ARM at nominal frequency; all latencies in Table IV are in
// clock cycles, so only the conversion of cycles to wall-clock seconds
// (used by the static-energy and endurance models) depends on this value.
const ClockHz = 1e9

// Seconds converts a cycle count to wall-clock seconds at ClockHz.
func (c Cycles) Seconds() float64 { return float64(c) / ClockHz }

// ToMillijoules converts picojoules to millijoules.
func (p Picojoules) ToMillijoules() Millijoules { return Millijoules(p) * 1e-9 }

// StaticEnergy returns the energy leaked by a structure of power p over
// the given number of cycles, in millijoules.
func StaticEnergy(p Milliwatts, c Cycles) Millijoules {
	return Millijoules(float64(p) * c.Seconds())
}

// WordBytes is the access granularity of every memory structure in the
// model: one 32-bit word, matching the paper's embedded ARM platform.
const WordBytes = 4

// WordsIn returns the number of word accesses needed to touch n bytes,
// rounding up to whole words.
func WordsIn(n int) int {
	if n <= 0 {
		return 0
	}
	return (n + WordBytes - 1) / WordBytes
}

// String implements fmt.Stringer for energies in engineering notation.
func (p Picojoules) String() string { return fmt.Sprintf("%.2f pJ", float64(p)) }

// String implements fmt.Stringer.
func (m Millijoules) String() string { return fmt.Sprintf("%.4f mJ", float64(m)) }

// String implements fmt.Stringer.
func (m Milliwatts) String() string { return fmt.Sprintf("%.2f mW", float64(m)) }

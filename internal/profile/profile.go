// Package profile is the reproduction's substitute for the paper's
// static-profiling tool: it runs a workload trace on an idealized
// timeline and produces, per program block, the columns of Table I —
// read/write counts, references (activations), per-reference averages,
// stack-call statistics, and life-time in cycles — plus the live span
// used by the AVF model.
//
// Two notions of time-in-use are recorded, because the paper uses them
// for different purposes:
//
//   - Lifetime: the sum of activation durations, where an activation
//     starts when the block is referenced and ends at the first reference
//     to another block in the same address space (the paper's §IV
//     definition). Susceptibility (Algorithm 1 line 10) multiplies
//     references by this quantity, which is why the heavily-touched but
//     always-briefly-active stack ends up least susceptible.
//   - Span: the interval from the block's first to its last access. The
//     AVF model uses the span as the block's ACE window: data parked in
//     the SPM stays architecturally correct-execution-critical between
//     activations as long as it will be read again.
package profile

import (
	"context"
	"errors"
	"fmt"

	"ftspm/internal/memtech"
	"ftspm/internal/program"
	"ftspm/internal/trace"
)

// BlockProfile aggregates the profiling columns for one block.
type BlockProfile struct {
	// Block is the profiled block.
	Block program.Block
	// Reads and Writes count access events by direction.
	Reads, Writes int
	// ReadWords and WriteWords count touched 32-bit words (an access
	// event may burst several words).
	ReadWords, WriteWords int
	// References counts activations (maximal runs of accesses to this
	// block within its address space).
	References int
	// StackCalls counts call events issued while this code block was
	// active.
	StackCalls int
	// MaxStackBytes is the deepest stack observed while this code block
	// was active.
	MaxStackBytes int
	// Lifetime is the summed activation duration in cycles (see package
	// comment).
	Lifetime memtech.Cycles
	// FirstCycle and LastCycle bound the block's live span.
	FirstCycle, LastCycle memtech.Cycles
	// MaxWordWrites is the write count of the block's hottest word —
	// the per-cell concentration that decides STT-RAM wear (a stack
	// slot rewritten by every call wears out its cell even when the
	// block's total write volume is modest).
	MaxWordWrites int

	wordWrites []int // per-word write counters, allocated on first write
}

// Span returns the first-to-last access interval in cycles.
func (b BlockProfile) Span() memtech.Cycles {
	if b.LastCycle < b.FirstCycle {
		return 0
	}
	return b.LastCycle - b.FirstCycle
}

// Accesses returns reads + writes.
func (b BlockProfile) Accesses() int { return b.Reads + b.Writes }

// AvgReadsPerRef returns the Table I "average number of reads in each
// reference" column.
func (b BlockProfile) AvgReadsPerRef() float64 {
	if b.References == 0 {
		return 0
	}
	return float64(b.Reads) / float64(b.References)
}

// AvgWritesPerRef returns the Table I "average number of writes in each
// reference" column.
func (b BlockProfile) AvgWritesPerRef() float64 {
	if b.References == 0 {
		return 0
	}
	return float64(b.Writes) / float64(b.References)
}

// Susceptibility returns the Algorithm 1 (line 10) vulnerability metric:
// number of block references multiplied by the block's life-time.
func (b BlockProfile) Susceptibility() float64 {
	return float64(b.Accesses()) * float64(b.Lifetime)
}

// Profile is the result of profiling one workload.
type Profile struct {
	// Workload is the profiled workload's name.
	Workload string
	// Blocks holds one entry per program block, indexed by BlockID.
	Blocks []BlockProfile
	// ExecCycles is the length of the idealized profiling timeline.
	ExecCycles memtech.Cycles
	// TotalDataReads/Writes aggregate over data-space accesses.
	TotalDataReads, TotalDataWrites int

	prog *program.Program
}

// Program returns the profiled program image.
func (p *Profile) Program() *program.Program { return p.prog }

// ByName returns the profile of the named block.
func (p *Profile) ByName(name string) (BlockProfile, error) {
	id, ok := p.prog.Lookup(name)
	if !ok {
		return BlockProfile{}, fmt.Errorf("%w: %q", program.ErrUnknownBlock, name)
	}
	return p.Blocks[id], nil
}

// DataBlocks returns the profiles of data-space blocks (data + stack) in
// block order.
func (p *Profile) DataBlocks() []BlockProfile {
	var out []BlockProfile
	for _, b := range p.Blocks {
		if b.Block.Kind.IsData() {
			out = append(out, b)
		}
	}
	return out
}

// CodeBlocks returns the profiles of code blocks in block order.
func (p *Profile) CodeBlocks() []BlockProfile {
	var out []BlockProfile
	for _, b := range p.Blocks {
		if b.Block.Kind == program.CodeBlock {
			out = append(out, b)
		}
	}
	return out
}

// ErrUnresolvedAccess is returned when a trace access falls outside every
// program block.
var ErrUnresolvedAccess = errors.New("profile: access outside all program blocks")

// Run profiles the trace against the program image. The idealized
// timeline charges each access its think cycles plus one cycle per
// touched word (an ideal single-cycle SPM), so life-times are measured in
// the same units as the paper's profiler.
func Run(prog *program.Program, s trace.Stream) (*Profile, error) {
	return RunContext(nil, prog, s)
}

// ctxCheckMask throttles cancellation checks: the context is polled
// every ctxCheckMask+1 trace events (same cadence as the simulator).
const ctxCheckMask = 4095

// ErrCanceled wraps the context error when profiling is stopped by
// cancellation or deadline; errors.Is sees through it to
// context.Canceled / context.DeadlineExceeded.
var ErrCanceled = errors.New("profile: canceled")

// RunContext is Run with cooperative cancellation: the trace loop polls
// ctx every few thousand events and abandons profiling with an error
// wrapping ErrCanceled once it is done. A nil ctx never cancels.
func RunContext(ctx context.Context, prog *program.Program, s trace.Stream) (*Profile, error) {
	p := &Profile{
		prog:   prog,
		Blocks: make([]BlockProfile, prog.NumBlocks()),
	}
	for i, b := range prog.Blocks() {
		p.Blocks[i].Block = b
	}

	var now memtech.Cycles
	type active struct {
		id    program.BlockID
		start memtech.Cycles
		live  bool
	}
	var curCode, curData active
	stackDepth := 0
	frames := make([]int, 0, 16)

	closeActivation := func(a *active) {
		if !a.live {
			return
		}
		bp := &p.Blocks[a.id]
		bp.Lifetime += now - a.start
		a.live = false
	}

	var events uint64
	for {
		e, ok := s.Next()
		if !ok {
			break
		}
		events++
		if ctx != nil && events&ctxCheckMask == 0 {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("%w after %d events: %w", ErrCanceled, events, err)
			}
		}
		switch e.Kind {
		case trace.KindCall:
			now++
			stackDepth += e.StackBytes
			frames = append(frames, e.StackBytes)
			if curCode.live {
				bp := &p.Blocks[curCode.id]
				bp.StackCalls++
				if stackDepth > bp.MaxStackBytes {
					bp.MaxStackBytes = stackDepth
				}
			}
		case trace.KindReturn:
			now++
			if n := len(frames); n > 0 {
				stackDepth -= frames[n-1]
				frames = frames[:n-1]
			}
		case trace.KindAccess:
			a := e.Access
			id, found := prog.FindAddr(a.Addr)
			if !found {
				return nil, fmt.Errorf("%w: addr %#x", ErrUnresolvedAccess, a.Addr)
			}
			now += memtech.Cycles(a.Think)
			cur := &curData
			if a.Space == trace.Code {
				cur = &curCode
			}
			if !cur.live || cur.id != id {
				closeActivation(cur)
				*cur = active{id: id, start: now, live: true}
				p.Blocks[id].References++
			}
			words := memtech.WordsIn(a.Size)
			now += memtech.Cycles(words)
			bp := &p.Blocks[id]
			if bp.References == 1 && bp.Reads+bp.Writes == 0 {
				bp.FirstCycle = now
			}
			bp.LastCycle = now
			if a.Op == trace.Read {
				bp.Reads++
				bp.ReadWords += words
				if a.Space == trace.Data {
					p.TotalDataReads++
				}
			} else {
				bp.Writes++
				bp.WriteWords += words
				if a.Space == trace.Data {
					p.TotalDataWrites++
				}
				if bp.wordWrites == nil {
					bp.wordWrites = make([]int, memtech.WordsIn(bp.Block.Size))
				}
				first := int(a.Addr-bp.Block.Addr) / memtech.WordBytes
				for w := 0; w < words && first+w < len(bp.wordWrites); w++ {
					bp.wordWrites[first+w]++
					if bp.wordWrites[first+w] > bp.MaxWordWrites {
						bp.MaxWordWrites = bp.wordWrites[first+w]
					}
				}
			}
		default:
			return nil, fmt.Errorf("profile: unknown event kind %v", e.Kind)
		}
	}
	closeActivation(&curCode)
	closeActivation(&curData)
	p.ExecCycles = now
	return p, nil
}

// ACE returns the block's architecturally-correct-execution time
// fraction: the live span over the whole execution, the quantity the AVF
// equations (2)-(3) weight by the per-region SDC/DUE probabilities.
func (p *Profile) ACE(id program.BlockID) float64 {
	if p.ExecCycles == 0 || int(id) >= len(p.Blocks) || id < 0 {
		return 0
	}
	return float64(p.Blocks[id].Span()) / float64(p.ExecCycles)
}

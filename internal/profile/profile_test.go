package profile

import (
	"errors"
	"testing"

	"ftspm/internal/program"
	"ftspm/internal/trace"
	"ftspm/internal/workloads"
)

// tinyProgram builds a two-block program with a hand-written trace whose
// profile is fully predictable.
func tinyProgram(t *testing.T) (*program.Program, []trace.Event) {
	t.Helper()
	p := program.New("tiny")
	fn := p.MustAddBlock("Fn", program.CodeBlock, 256)
	arr := p.MustAddBlock("Arr", program.DataBlock, 256)
	stk := p.MustAddBlock("Stk", program.StackBlock, 128)
	addr := func(id program.BlockID, off int) uint32 {
		a, err := p.AddrOf(id, off)
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	evs := []trace.Event{
		// Fetch 2 words of Fn (think 3): cycles 3+2 → now=5.
		trace.AccessEvent(trace.Access{Op: trace.Read, Space: trace.Code, Addr: addr(fn, 0), Size: 8, Think: 3}),
		// Call with a 64-byte frame: now=6, depth 64, attributed to Fn.
		trace.CallEvent(64),
		// Write 1 word of Arr: now=7.
		trace.AccessEvent(trace.Access{Op: trace.Write, Space: trace.Data, Addr: addr(arr, 0), Size: 4}),
		// Read 2 words of Arr: now=9.
		trace.AccessEvent(trace.Access{Op: trace.Read, Space: trace.Data, Addr: addr(arr, 4), Size: 8}),
		// Touch the stack: ends Arr's first activation at now=9 → starts
		// Stk; write 1 word: now=10.
		trace.AccessEvent(trace.Access{Op: trace.Write, Space: trace.Data, Addr: addr(stk, 0), Size: 4}),
		// Return: now=11.
		trace.ReturnEvent(),
		// Back to Arr (second activation): read 1 word, now=12.
		trace.AccessEvent(trace.Access{Op: trace.Read, Space: trace.Data, Addr: addr(arr, 8), Size: 4}),
	}
	return p, evs
}

func TestRunTinyTrace(t *testing.T) {
	p, evs := tinyProgram(t)
	prof, err := Run(p, trace.NewSliceStream(evs))
	if err != nil {
		t.Fatal(err)
	}
	if prof.ExecCycles != 12 {
		t.Errorf("ExecCycles = %d, want 12", prof.ExecCycles)
	}

	fn, err := prof.ByName("Fn")
	if err != nil {
		t.Fatal(err)
	}
	if fn.Reads != 1 || fn.Writes != 0 || fn.ReadWords != 2 {
		t.Errorf("Fn counts = %+v", fn)
	}
	if fn.StackCalls != 1 || fn.MaxStackBytes != 64 {
		t.Errorf("Fn stack stats = %d calls / %d bytes", fn.StackCalls, fn.MaxStackBytes)
	}
	if fn.References != 1 {
		t.Errorf("Fn references = %d", fn.References)
	}
	// Fn's activation starts when its first access issues (after think,
	// at cycle 3) and spans the rest of the trace (no other code block).
	if fn.Lifetime != 12-3 {
		t.Errorf("Fn lifetime = %d, want 9", fn.Lifetime)
	}

	arr, err := prof.ByName("Arr")
	if err != nil {
		t.Fatal(err)
	}
	if arr.Reads != 2 || arr.Writes != 1 || arr.ReadWords != 3 || arr.WriteWords != 1 {
		t.Errorf("Arr counts = %+v", arr)
	}
	if arr.References != 2 {
		t.Errorf("Arr references = %d, want 2 (stack access split the run)", arr.References)
	}
	// First activation: starts at now=6 (before first Arr access),
	// closed by the Stk access at now=9 → 3 cycles. Second activation:
	// starts at 11, still open at end (12) → 1 cycle.
	if arr.Lifetime != 4 {
		t.Errorf("Arr lifetime = %d, want 4", arr.Lifetime)
	}
	if arr.FirstCycle != 7 || arr.LastCycle != 12 {
		t.Errorf("Arr span = [%d,%d], want [7,12]", arr.FirstCycle, arr.LastCycle)
	}
	if arr.Span() != 5 {
		t.Errorf("Arr Span = %d", arr.Span())
	}
	if arr.AvgReadsPerRef() != 1.0 || arr.AvgWritesPerRef() != 0.5 {
		t.Errorf("Arr per-ref averages = %v/%v", arr.AvgReadsPerRef(), arr.AvgWritesPerRef())
	}
	if arr.Accesses() != 3 {
		t.Errorf("Arr Accesses = %d", arr.Accesses())
	}
	if got := arr.Susceptibility(); got != 3*4 {
		t.Errorf("Arr susceptibility = %v, want 12", got)
	}

	stk, err := prof.ByName("Stk")
	if err != nil {
		t.Fatal(err)
	}
	if stk.References != 1 || stk.Writes != 1 {
		t.Errorf("Stk = %+v", stk)
	}
	if prof.TotalDataReads != 2 || prof.TotalDataWrites != 2 {
		t.Errorf("totals = %d/%d", prof.TotalDataReads, prof.TotalDataWrites)
	}

	// ACE: Arr live for 5 of 12 cycles.
	if got := prof.ACE(arr.Block.ID); got < 0.41 || got > 0.42 {
		t.Errorf("ACE(Arr) = %v", got)
	}
	if prof.ACE(program.BlockID(-1)) != 0 || prof.ACE(program.BlockID(99)) != 0 {
		t.Error("ACE out-of-range not 0")
	}
}

func TestRunRejectsUnresolvedAccess(t *testing.T) {
	p := program.New("x")
	p.MustAddBlock("A", program.DataBlock, 64)
	evs := []trace.Event{
		trace.AccessEvent(trace.Access{Op: trace.Read, Space: trace.Data, Addr: 0xdead_0000, Size: 4}),
	}
	if _, err := Run(p, trace.NewSliceStream(evs)); !errors.Is(err, ErrUnresolvedAccess) {
		t.Errorf("err = %v", err)
	}
}

func TestRunRejectsUnknownKind(t *testing.T) {
	p := program.New("x")
	p.MustAddBlock("A", program.DataBlock, 64)
	evs := []trace.Event{{Kind: trace.Kind(42)}}
	if _, err := Run(p, trace.NewSliceStream(evs)); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestEmptyProfile(t *testing.T) {
	p := program.New("empty")
	id := p.MustAddBlock("A", program.DataBlock, 64)
	prof, err := Run(p, trace.NewSliceStream(nil))
	if err != nil {
		t.Fatal(err)
	}
	if prof.ExecCycles != 0 || prof.Blocks[id].References != 0 {
		t.Error("empty trace produced nonzero profile")
	}
	if prof.ACE(id) != 0 {
		t.Error("ACE on empty profile not 0")
	}
	bp := prof.Blocks[id]
	if bp.AvgReadsPerRef() != 0 || bp.AvgWritesPerRef() != 0 || bp.Susceptibility() != 0 {
		t.Error("zero-division guards failed")
	}
}

func TestSpanNeverNegative(t *testing.T) {
	b := BlockProfile{FirstCycle: 10, LastCycle: 5}
	if b.Span() != 0 {
		t.Error("inverted span not clamped")
	}
}

func TestCaseStudyProfileShape(t *testing.T) {
	// The profile of the case-study workload must reproduce the ordering
	// relations of Table I that drive the MDA decisions.
	w := workloads.CaseStudy()
	prof, err := Run(w.Program(), w.Trace(0.2))
	if err != nil {
		t.Fatal(err)
	}
	get := func(name string) BlockProfile {
		bp, err := prof.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		return bp
	}

	arr1, arr2 := get("Array1"), get("Array2")
	arr3, arr4 := get("Array3"), get("Array4")
	stack := get("Stack")
	mul, add := get("Mul"), get("Add")

	// Write-intensity ordering: Array1/3 and Stack write-hot; Array2/4
	// nearly write-free.
	for _, hot := range []BlockProfile{arr1, arr3, stack} {
		if hot.Writes*20 < hot.Reads {
			t.Errorf("%s should be write-hot: %d w / %d r", hot.Block.Name, hot.Writes, hot.Reads)
		}
	}
	for _, cold := range []BlockProfile{arr2, arr4} {
		if cold.Writes*50 > cold.Reads {
			t.Errorf("%s should be read-mostly: %d w / %d r", cold.Block.Name, cold.Writes, cold.Reads)
		}
	}

	// Susceptibility ordering (drives Table II): the stack must be less
	// susceptible than the write-hot arrays (tiny activations), so it
	// lands in the parity region while Array1/3 take ECC.
	if stack.Susceptibility() >= arr1.Susceptibility() ||
		stack.Susceptibility() >= arr3.Susceptibility() {
		t.Errorf("stack susceptibility %.0f must be below Array1 %.0f / Array3 %.0f",
			stack.Susceptibility(), arr1.Susceptibility(), arr3.Susceptibility())
	}

	// Mul is the hottest code block and its per-reference read burst is
	// the largest (Table I: 40,710 per reference).
	if mul.Reads <= add.Reads {
		t.Error("Mul must out-read Add")
	}
	if mul.StackCalls == 0 {
		t.Error("Mul should accumulate stack calls")
	}
	if stack.Lifetime >= arr1.Lifetime {
		t.Error("stack lifetime should be far below Array1's")
	}
	// Stack ACE must be small relative to the arrays' (drives the low
	// parity-region contribution in the AVF model).
	if prof.ACE(stack.Block.ID) > prof.ACE(arr1.Block.ID) {
		t.Error("stack ACE exceeds Array1 ACE")
	}
}

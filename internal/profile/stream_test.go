package profile

import (
	"reflect"
	"testing"

	"ftspm/internal/workloads"
)

// TestProfileStreamMatchesSlice: the profiler must see the identical
// event sequence whether the trace is streamed from the generator or
// materialized — every Table I column, the word-write histograms, and
// the timeline length agree, for every workload.
func TestProfileStreamMatchesSlice(t *testing.T) {
	for _, w := range workloads.All() {
		fromSlice, err := Run(w.Program(), w.Trace(0.05))
		if err != nil {
			t.Fatalf("%s: slice profile: %v", w.Name, err)
		}
		fromStream, err := Run(w.Program(), w.TraceStream(0.05))
		if err != nil {
			t.Fatalf("%s: stream profile: %v", w.Name, err)
		}
		if fromSlice.ExecCycles != fromStream.ExecCycles {
			t.Fatalf("%s: exec cycles %d vs %d", w.Name, fromSlice.ExecCycles, fromStream.ExecCycles)
		}
		if fromSlice.TotalDataReads != fromStream.TotalDataReads ||
			fromSlice.TotalDataWrites != fromStream.TotalDataWrites {
			t.Fatalf("%s: data access totals diverge", w.Name)
		}
		if !reflect.DeepEqual(fromSlice.Blocks, fromStream.Blocks) {
			t.Fatalf("%s: per-block profiles diverge between slice and stream paths", w.Name)
		}
	}
}

// Package program models an application as the mapping unit FTSPM works
// with: a set of named blocks — code blocks (functions), data blocks
// (arrays, globals), and the stack — each with a size and a fixed base
// address in the off-chip memory image. The profiler attributes trace
// accesses to blocks through this image, and the MDA mapping algorithm
// decides, per block, which SPM region (if any) it occupies.
package program

import (
	"errors"
	"fmt"
	"sort"
)

// BlockKind classifies a program block.
type BlockKind int

// Block kinds. The paper's profiler distinguishes instruction blocks
// (functions) from data blocks (arrays) and the stack (Table I).
const (
	CodeBlock BlockKind = iota + 1
	DataBlock
	StackBlock
)

// String implements fmt.Stringer.
func (k BlockKind) String() string {
	switch k {
	case CodeBlock:
		return "code"
	case DataBlock:
		return "data"
	case StackBlock:
		return "stack"
	default:
		return fmt.Sprintf("BlockKind(%d)", int(k))
	}
}

// Valid reports whether k is a known kind.
func (k BlockKind) Valid() bool {
	return k == CodeBlock || k == DataBlock || k == StackBlock
}

// IsData reports whether blocks of this kind live in the data address
// space (data and stack blocks do; code blocks are fetched).
func (k BlockKind) IsData() bool { return k == DataBlock || k == StackBlock }

// BlockID identifies a block within its program. IDs are dense indices
// assigned in AddBlock order, starting at 0.
type BlockID int

// Block is one mapping unit.
type Block struct {
	// ID is the block's identity within its program.
	ID BlockID
	// Name is unique within the program (e.g. "Mul", "Array1", "Stack").
	Name string
	// Kind classifies the block.
	Kind BlockKind
	// Size is the block footprint in bytes.
	Size int
	// Addr is the base address of the block in the off-chip image.
	Addr uint32
}

// End returns the first address past the block.
func (b Block) End() uint32 { return b.Addr + uint32(b.Size) }

// Contains reports whether addr falls inside the block.
func (b Block) Contains(addr uint32) bool { return addr >= b.Addr && addr < b.End() }

// String implements fmt.Stringer.
func (b Block) String() string {
	return fmt.Sprintf("%s[%s %dB @%#x]", b.Name, b.Kind, b.Size, b.Addr)
}

// Address-space layout of the off-chip image: code and data live in
// disjoint windows so a raw address identifies its space, mirroring the
// separate I/D hierarchies of Table IV.
const (
	codeBase  uint32 = 0x0010_0000
	dataBase  uint32 = 0x4000_0000
	blockAlig        = 64 // block base alignment, bytes
)

// Errors returned by Program methods.
var (
	ErrDuplicateBlock = errors.New("program: duplicate block name")
	ErrBadBlockSize   = errors.New("program: block size must be positive")
	ErrBadBlockKind   = errors.New("program: unknown block kind")
	ErrUnknownBlock   = errors.New("program: unknown block")
)

// Program is an application image: an ordered set of blocks with assigned
// addresses.
type Program struct {
	name     string
	blocks   []Block
	byName   map[string]BlockID
	nextCode uint32
	nextData uint32
	// Flat address index for FindAddr, rebuilt lazily: sortedAddrs
	// holds block base addresses in ascending order and sortedIDs the
	// matching block IDs, so the lookup binary-searches one dense
	// uint32 slice with no per-probe indirection.
	sortedAddrs []uint32
	sortedIDs   []BlockID
}

// New returns an empty program.
func New(name string) *Program {
	return &Program{
		name:     name,
		byName:   make(map[string]BlockID),
		nextCode: codeBase,
		nextData: dataBase,
	}
}

// Name returns the program name.
func (p *Program) Name() string { return p.name }

// NumBlocks returns the number of blocks.
func (p *Program) NumBlocks() int { return len(p.blocks) }

// AddBlock appends a block of the given kind and size, assigns its
// address in the off-chip image, and returns its ID.
func (p *Program) AddBlock(name string, kind BlockKind, size int) (BlockID, error) {
	if !kind.Valid() {
		return 0, fmt.Errorf("%w: %d", ErrBadBlockKind, int(kind))
	}
	if size <= 0 {
		return 0, fmt.Errorf("%w: %q has size %d", ErrBadBlockSize, name, size)
	}
	if _, dup := p.byName[name]; dup {
		return 0, fmt.Errorf("%w: %q", ErrDuplicateBlock, name)
	}
	id := BlockID(len(p.blocks))
	b := Block{ID: id, Name: name, Kind: kind, Size: size}
	if kind == CodeBlock {
		b.Addr = p.nextCode
		p.nextCode += align(uint32(size))
	} else {
		b.Addr = p.nextData
		p.nextData += align(uint32(size))
	}
	p.blocks = append(p.blocks, b)
	p.byName[name] = id
	p.sortedAddrs, p.sortedIDs = nil, nil
	return id, nil
}

// MustAddBlock is AddBlock for statically-valid arguments; it panics on
// error and exists for the fixed workload definitions in this module.
func (p *Program) MustAddBlock(name string, kind BlockKind, size int) BlockID {
	id, err := p.AddBlock(name, kind, size)
	if err != nil {
		panic(err)
	}
	return id
}

func align(n uint32) uint32 {
	return (n + blockAlig - 1) &^ uint32(blockAlig-1)
}

// Block returns the block with the given ID.
func (p *Program) Block(id BlockID) (Block, error) {
	if id < 0 || int(id) >= len(p.blocks) {
		return Block{}, fmt.Errorf("%w: id %d", ErrUnknownBlock, id)
	}
	return p.blocks[id], nil
}

// Blocks returns a copy of all blocks in ID order.
func (p *Program) Blocks() []Block {
	out := make([]Block, len(p.blocks))
	copy(out, p.blocks)
	return out
}

// Lookup resolves a block name.
func (p *Program) Lookup(name string) (BlockID, bool) {
	id, ok := p.byName[name]
	return id, ok
}

// AddrOf returns the image address of the given offset into a block.
func (p *Program) AddrOf(id BlockID, offset int) (uint32, error) {
	b, err := p.Block(id)
	if err != nil {
		return 0, err
	}
	if offset < 0 || offset >= b.Size {
		return 0, fmt.Errorf("%w: offset %d outside %s", ErrUnknownBlock, offset, b)
	}
	return b.Addr + uint32(offset), nil
}

// FindAddr resolves an image address to the block containing it.
func (p *Program) FindAddr(addr uint32) (BlockID, bool) {
	if p.sortedAddrs == nil {
		ids := make([]BlockID, len(p.blocks))
		for i := range p.blocks {
			ids[i] = BlockID(i)
		}
		// Addresses are unique by construction; the ID tie-break keeps
		// the order fully determined regardless.
		sort.Slice(ids, func(i, j int) bool {
			ai, aj := p.blocks[ids[i]].Addr, p.blocks[ids[j]].Addr
			if ai != aj {
				return ai < aj
			}
			return ids[i] < ids[j]
		})
		addrs := make([]uint32, len(ids))
		for i, id := range ids {
			addrs[i] = p.blocks[id].Addr
		}
		p.sortedAddrs, p.sortedIDs = addrs, ids
	}
	// Binary search the flat address slice for the last base <= addr.
	lo, hi := 0, len(p.sortedAddrs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if p.sortedAddrs[mid] <= addr {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return 0, false
	}
	id := p.sortedIDs[lo-1]
	if p.blocks[id].Contains(addr) {
		return id, true
	}
	return 0, false
}

// TotalSize returns the summed footprint in bytes of blocks matching the
// filter (nil matches all).
func (p *Program) TotalSize(match func(Block) bool) int {
	total := 0
	for _, b := range p.blocks {
		if match == nil || match(b) {
			total += b.Size
		}
	}
	return total
}

// Refine returns a copy of the program in which the named block is split
// into `parts` word-aligned sub-blocks covering exactly the parent's
// address range (named "X#0".."X#n-1"). Traces recorded against the
// original image stay valid — every address still resolves, now to a
// sub-block — so refinement gives the mapping algorithm finer units
// without regenerating workloads. This is the coarse/fine block
// granularity knob of the SPM-mapping literature ([15] §II).
func (p *Program) Refine(name string, parts int) (*Program, error) {
	id, ok := p.Lookup(name)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownBlock, name)
	}
	if parts < 2 {
		return nil, fmt.Errorf("%w: refine needs >= 2 parts, got %d", ErrBadBlockSize, parts)
	}
	target := p.blocks[id]
	words := (target.Size + 3) / 4
	if parts > words {
		return nil, fmt.Errorf("%w: %q has only %d words for %d parts",
			ErrBadBlockSize, name, words, parts)
	}

	out := &Program{
		name:     p.name,
		byName:   make(map[string]BlockID),
		nextCode: p.nextCode,
		nextData: p.nextData,
	}
	appendBlock := func(b Block) {
		b.ID = BlockID(len(out.blocks))
		out.blocks = append(out.blocks, b)
		out.byName[b.Name] = b.ID
	}
	for _, b := range p.blocks {
		if b.ID != id {
			appendBlock(b)
			continue
		}
		per := (words / parts) * 4 // bytes per sub-block, word-aligned
		off := 0
		for i := 0; i < parts; i++ {
			size := per
			if i == parts-1 {
				size = target.Size - off
			}
			appendBlock(Block{
				Name: fmt.Sprintf("%s#%d", target.Name, i),
				Kind: target.Kind,
				Size: size,
				Addr: target.Addr + uint32(off),
			})
			off += size
		}
	}
	return out, nil
}

package program

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func buildSample(t *testing.T) *Program {
	t.Helper()
	p := New("sample")
	mustAdd := func(name string, kind BlockKind, size int) {
		if _, err := p.AddBlock(name, kind, size); err != nil {
			t.Fatalf("AddBlock(%s): %v", name, err)
		}
	}
	mustAdd("Main", CodeBlock, 20*1024)
	mustAdd("Mul", CodeBlock, 1024)
	mustAdd("Array1", DataBlock, 2048)
	mustAdd("Array2", DataBlock, 2048)
	mustAdd("Stack", StackBlock, 512)
	return p
}

func TestAddBlockLayout(t *testing.T) {
	p := buildSample(t)
	if p.NumBlocks() != 5 {
		t.Fatalf("NumBlocks = %d", p.NumBlocks())
	}
	if p.Name() != "sample" {
		t.Errorf("Name = %q", p.Name())
	}
	blocks := p.Blocks()
	// Code and data live in disjoint windows.
	for _, b := range blocks {
		if b.Kind == CodeBlock && b.Addr >= 0x4000_0000 {
			t.Errorf("code block %s in data window", b)
		}
		if b.Kind.IsData() && b.Addr < 0x4000_0000 {
			t.Errorf("data block %s in code window", b)
		}
	}
	// Blocks within a space must not overlap and must be 64-byte aligned.
	for i, a := range blocks {
		if a.Addr%64 != 0 {
			t.Errorf("%s not aligned", a)
		}
		for _, b := range blocks[i+1:] {
			if a.Contains(b.Addr) || b.Contains(a.Addr) {
				t.Errorf("blocks overlap: %s / %s", a, b)
			}
		}
	}
}

func TestAddBlockErrors(t *testing.T) {
	p := buildSample(t)
	if _, err := p.AddBlock("Main", CodeBlock, 10); !errors.Is(err, ErrDuplicateBlock) {
		t.Errorf("duplicate: %v", err)
	}
	if _, err := p.AddBlock("Z", CodeBlock, 0); !errors.Is(err, ErrBadBlockSize) {
		t.Errorf("zero size: %v", err)
	}
	if _, err := p.AddBlock("Z", CodeBlock, -1); !errors.Is(err, ErrBadBlockSize) {
		t.Errorf("negative size: %v", err)
	}
	if _, err := p.AddBlock("Z", BlockKind(0), 8); !errors.Is(err, ErrBadBlockKind) {
		t.Errorf("bad kind: %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Error("MustAddBlock did not panic")
		}
	}()
	p.MustAddBlock("Main", CodeBlock, 10)
}

func TestBlockLookup(t *testing.T) {
	p := buildSample(t)
	id, ok := p.Lookup("Array1")
	if !ok {
		t.Fatal("Lookup(Array1) failed")
	}
	b, err := p.Block(id)
	if err != nil || b.Name != "Array1" || b.Kind != DataBlock || b.Size != 2048 {
		t.Errorf("Block = %v, err = %v", b, err)
	}
	if _, ok := p.Lookup("Nope"); ok {
		t.Error("Lookup(Nope) succeeded")
	}
	if _, err := p.Block(BlockID(99)); !errors.Is(err, ErrUnknownBlock) {
		t.Errorf("Block(99): %v", err)
	}
	if _, err := p.Block(BlockID(-1)); !errors.Is(err, ErrUnknownBlock) {
		t.Errorf("Block(-1): %v", err)
	}
}

func TestAddrOfAndFindAddr(t *testing.T) {
	p := buildSample(t)
	id, _ := p.Lookup("Array2")
	addr, err := p.AddrOf(id, 100)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := p.FindAddr(addr)
	if !ok || got != id {
		t.Errorf("FindAddr(%#x) = %d,%v; want %d", addr, got, ok, id)
	}
	if _, err := p.AddrOf(id, 2048); err == nil {
		t.Error("offset past end accepted")
	}
	if _, err := p.AddrOf(id, -1); err == nil {
		t.Error("negative offset accepted")
	}
	if _, err := p.AddrOf(BlockID(99), 0); err == nil {
		t.Error("bad id accepted")
	}
	// Addresses outside every block resolve to nothing.
	if _, ok := p.FindAddr(0); ok {
		t.Error("FindAddr(0) resolved")
	}
	if _, ok := p.FindAddr(0xffff_ffff); ok {
		t.Error("FindAddr(max) resolved")
	}
	// The gap between aligned blocks must not resolve.
	b, _ := p.Block(id)
	if _, ok := p.FindAddr(b.End()); ok {
		// End may coincide with the next block's start only if sizes are
		// exactly aligned; Array2 (2048) is followed by Stack at +2048,
		// so End() IS the stack base here. Pick an address in the
		// alignment gap after Stack instead.
		stackID, _ := p.Lookup("Stack")
		sb, _ := p.Block(stackID)
		if _, ok := p.FindAddr(sb.End()); ok {
			t.Error("alignment gap resolved to a block")
		}
	}
}

func TestFindAddrProperty(t *testing.T) {
	// Property: every in-block address resolves to exactly that block.
	p := buildSample(t)
	blocks := p.Blocks()
	rng := rand.New(rand.NewSource(3))
	f := func(blockIdx uint8, off uint16) bool {
		b := blocks[int(blockIdx)%len(blocks)]
		addr := b.Addr + uint32(int(off)%b.Size)
		got, ok := p.FindAddr(addr)
		return ok && got == b.ID
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestFindAddrAfterMutation(t *testing.T) {
	// The lazy sorted index must be invalidated by AddBlock.
	p := buildSample(t)
	if _, ok := p.FindAddr(0x4000_0000); !ok {
		t.Fatal("warmup FindAddr failed")
	}
	id := p.MustAddBlock("Array3", DataBlock, 4096)
	addr, _ := p.AddrOf(id, 10)
	got, ok := p.FindAddr(addr)
	if !ok || got != id {
		t.Error("FindAddr missed block added after index build")
	}
}

func TestTotalSize(t *testing.T) {
	p := buildSample(t)
	if got := p.TotalSize(nil); got != 20*1024+1024+2048+2048+512 {
		t.Errorf("TotalSize(nil) = %d", got)
	}
	data := p.TotalSize(func(b Block) bool { return b.Kind.IsData() })
	if data != 2048+2048+512 {
		t.Errorf("data TotalSize = %d", data)
	}
}

func TestBlockKindHelpers(t *testing.T) {
	if CodeBlock.String() != "code" || DataBlock.String() != "data" ||
		StackBlock.String() != "stack" || BlockKind(9).String() != "BlockKind(9)" {
		t.Error("kind stringer")
	}
	if CodeBlock.IsData() || !DataBlock.IsData() || !StackBlock.IsData() {
		t.Error("IsData")
	}
	if BlockKind(0).Valid() || !StackBlock.Valid() {
		t.Error("Valid")
	}
	b := Block{Name: "X", Kind: DataBlock, Size: 8, Addr: 0x40}
	if b.String() == "" || b.End() != 0x48 {
		t.Error("block helpers")
	}
}

func TestRefineSplitsInPlace(t *testing.T) {
	p := buildSample(t)
	refined, err := p.Refine("Array1", 4)
	if err != nil {
		t.Fatal(err)
	}
	if refined.NumBlocks() != p.NumBlocks()+3 {
		t.Fatalf("refined has %d blocks", refined.NumBlocks())
	}
	orig, _ := p.Lookup("Array1")
	ob, err := p.Block(orig)
	if err != nil {
		t.Fatal(err)
	}
	// The sub-blocks tile the parent's range exactly.
	total := 0
	for i := 0; i < 4; i++ {
		id, ok := refined.Lookup("Array1#" + string(rune('0'+i)))
		if !ok {
			t.Fatalf("missing sub-block %d", i)
		}
		sb, err := refined.Block(id)
		if err != nil {
			t.Fatal(err)
		}
		if sb.Kind != ob.Kind {
			t.Error("kind not inherited")
		}
		if sb.Addr != ob.Addr+uint32(total) {
			t.Errorf("sub-block %d at %#x, want %#x", i, sb.Addr, ob.Addr+uint32(total))
		}
		total += sb.Size
	}
	if total != ob.Size {
		t.Errorf("sub-blocks tile %d bytes of %d", total, ob.Size)
	}
	// Every parent address resolves to some sub-block.
	for off := 0; off < ob.Size; off += 128 {
		if _, ok := refined.FindAddr(ob.Addr + uint32(off)); !ok {
			t.Fatalf("address %#x unresolvable after refinement", ob.Addr+uint32(off))
		}
	}
	// The original name is gone; other blocks are intact.
	if _, ok := refined.Lookup("Array1"); ok {
		t.Error("parent name still resolves")
	}
	if _, ok := refined.Lookup("Stack"); !ok {
		t.Error("unrelated block lost")
	}
}

func TestRefineErrors(t *testing.T) {
	p := buildSample(t)
	if _, err := p.Refine("Nope", 2); !errors.Is(err, ErrUnknownBlock) {
		t.Error("unknown block accepted")
	}
	if _, err := p.Refine("Array1", 1); !errors.Is(err, ErrBadBlockSize) {
		t.Error("1 part accepted")
	}
	if _, err := p.Refine("Array1", 10000); !errors.Is(err, ErrBadBlockSize) {
		t.Error("more parts than words accepted")
	}
}

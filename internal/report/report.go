// Package report renders experiment results as aligned text tables and
// CSV files — the textual equivalents of the paper's tables and figure
// series.
package report

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"math"
	"strings"
)

// Table is a titled grid of cells.
type Table struct {
	// Title is printed above the grid.
	Title string
	// Columns are the header cells.
	Columns []string
	// Rows hold the body cells; ragged rows are padded when rendered.
	Rows [][]string
}

// New returns a table with the given title and column headers.
func New(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends one row.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(cells))
	copy(row, cells)
	t.Rows = append(t.Rows, row)
}

// ErrNoColumns rejects rendering a table without headers.
var ErrNoColumns = errors.New("report: table has no columns")

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	if len(t.Columns) == 0 {
		return ErrNoColumns
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", t.Title); err != nil {
			return err
		}
	}
	line := func(cells []string) error {
		var b strings.Builder
		for i, width := range widths {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width, cell)
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
		return err
	}
	if err := line(t.Columns); err != nil {
		return err
	}
	sep := make([]string, len(t.Columns))
	for i, width := range widths {
		sep[i] = strings.Repeat("-", width)
	}
	if err := line(sep); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := line(row); err != nil {
			return err
		}
	}
	return nil
}

// String renders the table to a string (empty on error).
func (t *Table) String() string {
	var b strings.Builder
	if err := t.Render(&b); err != nil {
		return ""
	}
	return b.String()
}

// RenderCSV writes the table in CSV form (title omitted).
func (t *Table) RenderCSV(w io.Writer) error {
	if len(t.Columns) == 0 {
		return ErrNoColumns
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		padded := make([]string, len(t.Columns))
		copy(padded, row)
		if err := cw.Write(padded); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Float formats a float with the given number of decimals, rendering
// infinities and NaNs readably.
func Float(v float64, decimals int) string {
	switch {
	case math.IsInf(v, 1):
		return "inf"
	case math.IsInf(v, -1):
		return "-inf"
	case math.IsNaN(v):
		return "n/a"
	default:
		return fmt.Sprintf("%.*f", decimals, v)
	}
}

// Pct formats a fraction as a percentage.
func Pct(v float64) string {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return Float(v, 0)
	}
	return fmt.Sprintf("%.1f%%", v*100)
}

// Count formats an integer with thousands separators.
func Count(n int) string {
	s := fmt.Sprintf("%d", n)
	neg := strings.HasPrefix(s, "-")
	if neg {
		s = s[1:]
	}
	var parts []string
	for len(s) > 3 {
		parts = append([]string{s[len(s)-3:]}, parts...)
		s = s[:len(s)-3]
	}
	parts = append([]string{s}, parts...)
	out := strings.Join(parts, ",")
	if neg {
		return "-" + out
	}
	return out
}

// Energy formats picojoules with an adaptive unit.
func Energy(pj float64) string {
	switch {
	case math.Abs(pj) >= 1e9:
		return fmt.Sprintf("%.3f mJ", pj/1e9)
	case math.Abs(pj) >= 1e6:
		return fmt.Sprintf("%.2f uJ", pj/1e6)
	case math.Abs(pj) >= 1e3:
		return fmt.Sprintf("%.2f nJ", pj/1e3)
	default:
		return fmt.Sprintf("%.2f pJ", pj)
	}
}

// GeoMean returns the geometric mean of positive values; zero or
// negative entries are skipped. It is the aggregate used for ratio
// summaries (arithmetic means of ratios are dominated by outliers).
func GeoMean(values []float64) float64 {
	var sum float64
	n := 0
	for _, v := range values {
		if v > 0 && !math.IsInf(v, 0) && !math.IsNaN(v) {
			sum += math.Log(v)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

package report

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := New("Title", "A", "BB")
	tb.AddRow("x", "y")
	tb.AddRow("longer", "z", "extra-ignored-column-cell")
	var buf bytes.Buffer
	if err := tb.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "Title\n") {
		t.Error("missing title")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, two rows
		t.Fatalf("lines = %d: %q", len(lines), out)
	}
	if !strings.Contains(lines[1], "A") || !strings.Contains(lines[2], "--") {
		t.Error("header/separator wrong")
	}
	// Alignment: column B starts at the same offset in every row.
	if strings.Index(lines[1], "BB") != strings.Index(lines[3], "y") {
		t.Errorf("columns misaligned:\n%s", out)
	}
	if tb.String() == "" {
		t.Error("String() empty")
	}
}

func TestTableRenderErrors(t *testing.T) {
	tb := &Table{}
	if err := tb.Render(&bytes.Buffer{}); err != ErrNoColumns {
		t.Errorf("err = %v", err)
	}
	if err := tb.RenderCSV(&bytes.Buffer{}); err != ErrNoColumns {
		t.Errorf("csv err = %v", err)
	}
	if tb.String() != "" {
		t.Error("String on bad table not empty")
	}
}

func TestTableCSV(t *testing.T) {
	tb := New("ignored", "a", "b")
	tb.AddRow("1")
	tb.AddRow("2", "3,with comma")
	var buf bytes.Buffer
	if err := tb.RenderCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n1,\n2,\"3,with comma\"\n"
	if buf.String() != want {
		t.Errorf("csv = %q, want %q", buf.String(), want)
	}
}

func TestFormatters(t *testing.T) {
	if Float(1.2345, 2) != "1.23" {
		t.Error("Float")
	}
	if Float(math.Inf(1), 2) != "inf" || Float(math.Inf(-1), 0) != "-inf" || Float(math.NaN(), 1) != "n/a" {
		t.Error("Float special values")
	}
	if Pct(0.4567) != "45.7%" {
		t.Errorf("Pct = %s", Pct(0.4567))
	}
	if Pct(math.NaN()) != "n/a" {
		t.Error("Pct NaN")
	}
	if Count(1234567) != "1,234,567" || Count(12) != "12" || Count(-4321) != "-4,321" || Count(0) != "0" {
		t.Error("Count")
	}
	if Energy(12.3) != "12.30 pJ" || Energy(4500) != "4.50 nJ" ||
		Energy(7.2e6) != "7.20 uJ" || Energy(3.1e9) != "3.100 mJ" {
		t.Errorf("Energy: %s %s %s %s", Energy(12.3), Energy(4500), Energy(7.2e6), Energy(3.1e9))
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{2, 8}); math.Abs(got-4) > 1e-9 {
		t.Errorf("GeoMean = %v", got)
	}
	// Skips non-positive and non-finite values.
	if got := GeoMean([]float64{2, 8, 0, -1, math.Inf(1), math.NaN()}); math.Abs(got-4) > 1e-9 {
		t.Errorf("GeoMean with junk = %v", got)
	}
	if GeoMean(nil) != 0 || GeoMean([]float64{0}) != 0 {
		t.Error("empty GeoMean not 0")
	}
}

package resultcache

import (
	"container/list"
	"context"
	"errors"
	"sync"
)

// Config sizes and locates a cache.
type Config struct {
	// MaxEntries bounds the in-memory tier's entry count (0 = 4096).
	MaxEntries int
	// MaxBytes bounds the in-memory tier's total value bytes
	// (0 = 64 MiB). Both bounds are enforced by LRU eviction; an entry
	// larger than MaxBytes is stored on disk (if configured) but not
	// pinned in memory.
	MaxBytes int64
	// Path, when non-empty, enables the on-disk tier: an append-only
	// JSONL segment whose records reuse the campaign journal's v2
	// self-verifying envelope. Entries evicted from memory remain
	// servable from disk, and the file survives process restarts.
	Path string
	// Fingerprint is the evaluator build fingerprint (wire.Fingerprint
	// in this repo). It versions the disk segment: a file written by a
	// different build is discarded wholesale on open, so a stale binary
	// can never serve results computed by different code. Required when
	// Path is set.
	Fingerprint string
}

// Stats is a point-in-time counter snapshot.
type Stats struct {
	// Hits counts lookups served from either tier (disk hits are also
	// counted in DiskHits). Misses counts lookups that found nothing
	// under the full key with no fault-model near-miss. Bypasses counts
	// lookups whose base key matched a cached entry but whose
	// fault/wear/recovery component differed — deliberately not served.
	Hits     uint64 `json:"hits"`
	Misses   uint64 `json:"misses"`
	Bypasses uint64 `json:"bypasses"`
	// Collapsed counts GetOrCompute callers that waited on another
	// caller's in-flight computation of the same key (singleflight).
	Collapsed uint64 `json:"collapsed"`
	// Evictions counts LRU evictions from the memory tier. DiskHits
	// counts hits promoted from the disk tier; DiskDrops counts disk
	// records discarded as corrupt, torn, stale-fingerprint, or
	// unwritable — always a miss or a smaller file, never an error.
	Evictions uint64 `json:"evictions"`
	DiskHits  uint64 `json:"disk_hits"`
	DiskDrops uint64 `json:"disk_drops"`
	// Entries/Bytes describe the memory tier right now; DiskEntries the
	// disk index.
	Entries     int   `json:"entries"`
	Bytes       int64 `json:"bytes"`
	DiskEntries int   `json:"disk_entries"`
}

// Cache is a two-tier (memory LRU + optional disk segment)
// content-addressed result cache. All methods are safe for concurrent
// use. Values returned by Get/GetOrCompute are private copies.
type Cache struct {
	maxEntries int
	maxBytes   int64

	mu     sync.Mutex
	lru    *list.List               // front = most recent; elements hold *entry
	index  map[string]*list.Element // full key → element
	faults map[string]string        // base key → fault key last stored (bypass detection)
	bytes  int64
	stats  Stats
	disk   *diskTier

	fmu    sync.Mutex
	flight map[string]*call
}

type entry struct {
	key Key
	val []byte
}

// call is one in-flight computation other callers can wait on.
type call struct {
	done chan struct{}
	val  []byte
	err  error
}

// Open creates a cache. With cfg.Path set, the disk segment is loaded
// (or created), dropping it first if its fingerprint does not match
// cfg.Fingerprint. Disk corruption is never an error: bad records are
// skipped and counted.
func Open(cfg Config) (*Cache, error) {
	if cfg.MaxEntries <= 0 {
		cfg.MaxEntries = 4096
	}
	if cfg.MaxBytes <= 0 {
		cfg.MaxBytes = 64 << 20
	}
	c := &Cache{
		maxEntries: cfg.MaxEntries,
		maxBytes:   cfg.MaxBytes,
		lru:        list.New(),
		index:      make(map[string]*list.Element),
		faults:     make(map[string]string),
		flight:     make(map[string]*call),
	}
	if cfg.Path != "" {
		if cfg.Fingerprint == "" {
			return nil, errors.New("resultcache: disk tier requires a build fingerprint")
		}
		d, dropped, err := openDisk(cfg.Path, cfg.Fingerprint)
		if err != nil {
			return nil, err
		}
		c.disk = d
		c.stats.DiskDrops += dropped
		for _, k := range d.keys() {
			c.faults[k.Base] = k.Fault
		}
	}
	return c, nil
}

// Get looks k up in the memory tier, then the disk tier (promoting a
// disk hit into memory). A miss with a matching base key but different
// fault component is counted as a bypass.
func (c *Cache) Get(k Key) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.getLocked(k)
}

func (c *Cache) getLocked(k Key) ([]byte, bool) {
	if el, ok := c.index[k.String()]; ok {
		c.lru.MoveToFront(el)
		c.stats.Hits++
		return clone(el.Value.(*entry).val), true
	}
	if c.disk != nil {
		if v, ok, dropped := c.disk.get(k); ok {
			c.stats.Hits++
			c.stats.DiskHits++
			c.storeLocked(k, v)
			return clone(v), true
		} else if dropped > 0 {
			c.stats.DiskDrops += dropped
		}
	}
	if f, ok := c.faults[k.Base]; ok && f != k.Fault {
		c.stats.Bypasses++
	} else {
		c.stats.Misses++
	}
	return nil, false
}

// Put stores value bytes under k in both tiers. The value is copied.
func (c *Cache) Put(k Key, v []byte) {
	if !k.Valid() {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.index[k.String()]; ok {
		return // content-addressed: same key ⇒ same bytes, nothing to update
	}
	c.storeLocked(k, clone(v))
	if c.disk != nil {
		if err := c.disk.put(k, v); err != nil {
			// A failing disk tier degrades to memory-only, never errors.
			c.stats.DiskDrops++
			c.disk.close()
			c.disk = nil
		}
	}
}

// storeLocked inserts into the memory tier and evicts LRU entries
// until both capacity bounds hold. An entry bigger than the byte bound
// would evict everything and still not fit; it is not pinned.
func (c *Cache) storeLocked(k Key, v []byte) {
	if int64(len(v)) > c.maxBytes {
		c.faults[k.Base] = k.Fault
		return
	}
	if _, ok := c.index[k.String()]; ok {
		return
	}
	c.index[k.String()] = c.lru.PushFront(&entry{key: k, val: v})
	c.bytes += int64(len(v))
	c.faults[k.Base] = k.Fault
	for c.lru.Len() > c.maxEntries || c.bytes > c.maxBytes {
		el := c.lru.Back()
		if el == nil {
			break
		}
		e := c.lru.Remove(el).(*entry)
		delete(c.index, e.key.String())
		c.bytes -= int64(len(e.val))
		c.stats.Evictions++
	}
}

// GetOrCompute returns the cached value for k, or runs compute exactly
// once per key across concurrent callers (singleflight) and caches its
// result. The second return reports whether the value came from the
// cache or a collapsed peer computation rather than this caller's own
// execution. Waiters whose own context is still live retry if the
// executing caller was cancelled, so one cancelled client cannot poison
// the flight for the others.
func (c *Cache) GetOrCompute(ctx context.Context, k Key, compute func(context.Context) ([]byte, error)) ([]byte, bool, error) {
	if !k.Valid() {
		v, err := compute(ctx)
		return v, false, err
	}
	ks := k.String()
	for {
		if v, ok := c.Get(k); ok {
			return v, true, nil
		}
		c.fmu.Lock()
		if cl, ok := c.flight[ks]; ok {
			c.fmu.Unlock()
			c.mu.Lock()
			c.stats.Collapsed++
			c.mu.Unlock()
			select {
			case <-cl.done:
				if cl.err == nil {
					return clone(cl.val), true, nil
				}
				if isContextErr(cl.err) && ctx.Err() == nil {
					continue // executor cancelled, we are not: retry
				}
				return nil, false, cl.err
			case <-ctx.Done():
				return nil, false, ctx.Err()
			}
		}
		cl := &call{done: make(chan struct{})}
		c.flight[ks] = cl
		c.fmu.Unlock()

		v, err := compute(ctx)
		if err == nil {
			c.Put(k, v)
		}
		cl.val, cl.err = v, err
		c.fmu.Lock()
		delete(c.flight, ks)
		c.fmu.Unlock()
		close(cl.done)
		return v, false, err
	}
}

// Stats snapshots the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = c.lru.Len()
	s.Bytes = c.bytes
	if c.disk != nil {
		s.DiskEntries = c.disk.entries()
	}
	return s
}

// Close releases the disk tier. The memory tier stays usable.
func (c *Cache) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.disk != nil {
		err := c.disk.close()
		c.disk = nil
		return err
	}
	return nil
}

func clone(b []byte) []byte {
	if b == nil {
		return nil
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

func isContextErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

package resultcache

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
)

func mustKey(t *testing.T, kind string, base, fault any) Key {
	t.Helper()
	k, err := NewKey(kind, base, fault)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

// Two semantically identical requests whose JSON field order differs —
// a map-typed config field marshaled from different insertion orders,
// and hand-built raw JSON with reordered fields — must canonicalize to
// one cache key. This is the regression test for the map-field
// canonicalization fix.
func TestKeyCanonicalizationFieldOrder(t *testing.T) {
	raw1 := json.RawMessage(`{"workload":"sha","opts":{"scale":1,"lanes":4},"structure":"ftspm"}`)
	raw2 := json.RawMessage(`{"structure":"ftspm","opts":{"lanes":4,"scale":1},"workload":"sha"}`)
	k1 := mustKey(t, "t", raw1, nil)
	k2 := mustKey(t, "t", raw2, nil)
	if k1 != k2 {
		t.Fatalf("field order split the key: %v vs %v", k1, k2)
	}

	// Map-typed fields: build the same map in adversarial insertion
	// orders. Go map iteration is randomized, so without
	// canonicalization this would flake rather than fail reliably —
	// the raw-JSON case above is the deterministic witness.
	m1 := map[string]any{"a": 1.0, "b": 2.0, "c": map[string]any{"x": true, "y": false}}
	m2 := map[string]any{"c": map[string]any{"y": false, "x": true}, "b": 2.0, "a": 1.0}
	k1 = mustKey(t, "t", m1, nil)
	k2 = mustKey(t, "t", m2, nil)
	if k1 != k2 {
		t.Fatalf("map insertion order split the key: %v vs %v", k1, k2)
	}

	// And a changed value must split it.
	k3 := mustKey(t, "t", map[string]any{"a": 1.0, "b": 3.0}, nil)
	if k3 == k1 {
		t.Fatal("different values produced one key")
	}
	// The kind namespaces the key space.
	if mustKey(t, "u", m1, nil) == k1 {
		t.Fatal("different kinds produced one key")
	}
}

func TestGetPutAndBypass(t *testing.T) {
	c, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	base := map[string]string{"workload": "sha"}
	kA := mustKey(t, "t", base, map[string]float64{"strikes": 0.01})
	kB := mustKey(t, "t", base, map[string]float64{"strikes": 0.02})

	if _, ok := c.Get(kA); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(kA, []byte(`{"r":1}`))
	if v, ok := c.Get(kA); !ok || string(v) != `{"r":1}` {
		t.Fatalf("got %q %v", v, ok)
	}
	// Same problem, different fault model: must be a bypass, never a hit.
	if _, ok := c.Get(kB); ok {
		t.Fatal("false hit across fault models")
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Bypasses != 1 {
		t.Fatalf("stats = %+v, want hits=1 misses=1 bypasses=1", s)
	}
}

// 32 goroutines issue identical and distinct requests through the
// singleflight path; each key must compute exactly once and every
// caller must observe byte-identical value bytes. Run under -race.
func TestSingleflightRace(t *testing.T) {
	c, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 32
	const keys = 4
	var execs [keys]atomic.Int64
	var start, done sync.WaitGroup
	vals := make([][]byte, goroutines)
	errs := make([]error, goroutines)
	start.Add(1)
	done.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer done.Done()
			ki := g % keys
			k := mustKey(t, "t", map[string]int{"problem": ki}, nil)
			start.Wait()
			v, _, err := c.GetOrCompute(context.Background(), k, func(context.Context) ([]byte, error) {
				execs[ki].Add(1)
				return []byte(fmt.Sprintf(`{"problem":%d,"answer":42}`, ki)), nil
			})
			vals[g], errs[g] = v, err
		}(g)
	}
	start.Done()
	done.Wait()
	for g := 0; g < goroutines; g++ {
		if errs[g] != nil {
			t.Fatalf("goroutine %d: %v", g, errs[g])
		}
		want := fmt.Sprintf(`{"problem":%d,"answer":42}`, g%keys)
		if string(vals[g]) != want {
			t.Fatalf("goroutine %d: value %q, want %q", g, vals[g], want)
		}
	}
	for ki := 0; ki < keys; ki++ {
		if n := execs[ki].Load(); n != 1 {
			t.Fatalf("key %d computed %d times, want exactly 1", ki, n)
		}
	}
}

// Deterministic collapse: while one caller's compute is in flight, a
// second caller of the same key waits on it (Collapsed counts it) and
// receives the same bytes without executing.
func TestSingleflightCollapseDeterministic(t *testing.T) {
	c, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	k := mustKey(t, "t", "slow", nil)
	entered := make(chan struct{})
	release := make(chan struct{})
	first := make(chan []byte, 1)
	go func() {
		v, _, _ := c.GetOrCompute(context.Background(), k, func(context.Context) ([]byte, error) {
			close(entered)
			<-release
			return []byte("answer"), nil
		})
		first <- v
	}()
	<-entered
	second := make(chan []byte, 1)
	go func() {
		v, hit, err := c.GetOrCompute(context.Background(), k, func(context.Context) ([]byte, error) {
			return nil, errors.New("second caller must not execute")
		})
		if err != nil || !hit {
			t.Errorf("collapsed caller: hit=%v err=%v", hit, err)
		}
		second <- v
	}()
	// The second caller increments Collapsed the moment it finds the
	// in-flight call; only then is it safe to release the executor.
	for c.Stats().Collapsed == 0 {
	}
	close(release)
	v1, v2 := <-first, <-second
	if string(v1) != "answer" || !bytes.Equal(v1, v2) {
		t.Fatalf("divergent values: %q vs %q", v1, v2)
	}
}

// A compute error must not be cached, and a waiter with a live context
// retries when the executing caller was cancelled.
func TestGetOrComputeErrors(t *testing.T) {
	c, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	k := mustKey(t, "t", "p", nil)
	boom := errors.New("boom")
	if _, _, err := c.GetOrCompute(context.Background(), k, func(context.Context) ([]byte, error) {
		return nil, boom
	}); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	calls := 0
	v, hit, err := c.GetOrCompute(context.Background(), k, func(context.Context) ([]byte, error) {
		calls++
		return []byte("ok"), nil
	})
	if err != nil || hit || string(v) != "ok" || calls != 1 {
		t.Fatalf("v=%q hit=%v err=%v calls=%d", v, hit, err, calls)
	}
	// Now cached.
	v, hit, err = c.GetOrCompute(context.Background(), k, func(context.Context) ([]byte, error) {
		t.Fatal("computed despite cache hit")
		return nil, nil
	})
	if err != nil || !hit || string(v) != "ok" {
		t.Fatalf("v=%q hit=%v err=%v", v, hit, err)
	}
}

// LRU capacity accounting: the entry bound and the byte bound both
// evict from the cold end, and the byte counter tracks exactly.
func TestLRUEviction(t *testing.T) {
	c, err := Open(Config{MaxEntries: 3, MaxBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	key := func(i int) Key { return mustKey(t, "t", i, nil) }
	val := func(i int) []byte { return []byte(fmt.Sprintf("value-%03d", i)) }
	for i := 0; i < 5; i++ {
		c.Put(key(i), val(i))
	}
	s := c.Stats()
	if s.Entries != 3 || s.Evictions != 2 {
		t.Fatalf("stats = %+v, want entries=3 evictions=2", s)
	}
	if want := int64(3 * len(val(0))); s.Bytes != want {
		t.Fatalf("bytes = %d, want %d", s.Bytes, want)
	}
	for i := 0; i < 2; i++ {
		if _, ok := c.Get(key(i)); ok {
			t.Fatalf("entry %d survived eviction", i)
		}
	}
	// Touch entry 2 (now the coldest survivor is 3) and insert: 3 evicts.
	if _, ok := c.Get(key(2)); !ok {
		t.Fatal("entry 2 missing")
	}
	c.Put(key(5), val(5))
	if _, ok := c.Get(key(3)); ok {
		t.Fatal("LRU order ignored the Get refresh")
	}
	if _, ok := c.Get(key(2)); !ok {
		t.Fatal("recently-used entry evicted")
	}

	// Byte bound: values of 100 bytes with a 250-byte budget hold 2.
	cb, err := Open(Config{MaxEntries: 100, MaxBytes: 250})
	if err != nil {
		t.Fatal(err)
	}
	big := bytes.Repeat([]byte("x"), 100)
	for i := 0; i < 4; i++ {
		cb.Put(mustKey(t, "b", i, nil), big)
	}
	s = cb.Stats()
	if s.Entries != 2 || s.Bytes != 200 || s.Evictions != 2 {
		t.Fatalf("byte-bound stats = %+v, want entries=2 bytes=200 evictions=2", s)
	}
	// An entry larger than the whole budget is not pinned in memory.
	cb.Put(mustKey(t, "b", "huge", nil), bytes.Repeat([]byte("y"), 300))
	if s = cb.Stats(); s.Entries != 2 || s.Bytes != 200 {
		t.Fatalf("oversized entry disturbed accounting: %+v", s)
	}
}

func TestDiskTierRoundTripAndRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.jsonl")
	cfg := Config{Path: path, Fingerprint: "fp-test"}
	c, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	k := mustKey(t, "t", "problem", "fault")
	c.Put(k, []byte(`{"answer":42}`))
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	// Same build restarts: the entry survives on disk.
	c2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	v, ok := c2.Get(k)
	if !ok || string(v) != `{"answer":42}` {
		t.Fatalf("after restart: %q %v", v, ok)
	}
	s := c2.Stats()
	if s.DiskHits != 1 || s.Hits != 1 {
		t.Fatalf("stats = %+v, want disk_hits=1", s)
	}
	// Bypass detection works across restarts too: the fault index is
	// rebuilt from disk.
	kB := mustKey(t, "t", "problem", "other-fault")
	if _, ok := c2.Get(kB); ok {
		t.Fatal("false hit across fault models from disk")
	}
	if s := c2.Stats(); s.Bypasses != 1 {
		t.Fatalf("stats = %+v, want bypasses=1", s)
	}
	c2.Close()

	// A different build fingerprint discards the file wholesale.
	c3, err := Open(Config{Path: path, Fingerprint: "fp-other"})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c3.Get(k); ok {
		t.Fatal("stale-build entry served")
	}
	if s := c3.Stats(); s.DiskDrops == 0 {
		t.Fatalf("stats = %+v, want disk_drops > 0", s)
	}
	c3.Close()
}

// Corrupt and truncated disk records are detected by the record
// envelope (CRC + SHA-256, the v2 journal framing) and treated as
// misses — never an error, and never corrupt bytes served.
func TestDiskCorruptionIsMissNeverError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.jsonl")
	cfg := Config{Path: path, Fingerprint: "fp-test"}
	c, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	k1 := mustKey(t, "t", "one", nil)
	k2 := mustKey(t, "t", "two", nil)
	c.Put(k1, []byte(`{"v":1}`))
	c.Put(k2, []byte(`{"v":2}`))
	c.Close()

	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Flip one byte inside the first record's payload region.
	lines := bytes.SplitAfter(pristine, []byte("\n"))
	if len(lines) < 3 {
		t.Fatalf("unexpected segment shape: %d lines", len(lines))
	}
	corrupt := append([]byte{}, pristine...)
	off := len(lines[0]) + len(lines[1])/2
	corrupt[off] ^= 0x41
	if err := os.WriteFile(path, corrupt, 0o644); err != nil {
		t.Fatal(err)
	}
	cc, err := Open(cfg)
	if err != nil {
		t.Fatalf("corrupt record must not fail open: %v", err)
	}
	if _, ok := cc.Get(k1); ok {
		t.Fatal("served a record that fails its checksum")
	}
	// The undamaged record still serves.
	if v, ok := cc.Get(k2); !ok || string(v) != `{"v":2}` {
		t.Fatalf("undamaged record lost: %q %v", v, ok)
	}
	if s := cc.Stats(); s.DiskDrops == 0 {
		t.Fatalf("stats = %+v, want disk_drops > 0", s)
	}
	cc.Close()

	// Truncate mid-record (torn tail): dropped, file reusable, and new
	// appends land cleanly.
	if err := os.WriteFile(path, pristine[:len(pristine)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	ct, err := Open(cfg)
	if err != nil {
		t.Fatalf("torn tail must not fail open: %v", err)
	}
	if _, ok := ct.Get(k2); ok {
		t.Fatal("served a torn record")
	}
	if v, ok := ct.Get(k1); !ok || string(v) != `{"v":1}` {
		t.Fatalf("intact record lost: %q %v", v, ok)
	}
	ct.Put(k2, []byte(`{"v":2}`))
	ct.Close()
	cr, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := cr.Get(k2); !ok || string(v) != `{"v":2}` {
		t.Fatalf("append after truncation lost: %q %v", v, ok)
	}
	cr.Close()
}

package resultcache

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"

	"ftspm/internal/campaign"
)

// The disk tier is an append-only JSONL segment: a header line naming
// the format version and the evaluator build fingerprint, then one
// record per cached entry, each wrapped in the campaign journal's v2
// self-verifying envelope (CRC32C + canonical SHA-256 via
// campaign.FrameRecord). The cache is lossy by contract, so the
// corruption discipline is softer than the journal's: a record that
// fails to unframe — torn tail, flipped byte, truncation — is dropped
// and counted, never an error. A header that fails to parse, carries
// the wrong version, or names a different build fingerprint discards
// the whole file: results computed by different code must never be
// served by this one.

const diskVersion = 1

type diskHeader struct {
	V  int    `json:"v"`
	FP string `json:"fp"`
}

// diskRec is the payload inside each framed record line.
type diskRec struct {
	B string          `json:"b"`
	F string          `json:"f"`
	V json.RawMessage `json:"v"`
}

type diskRef struct {
	off int64
	n   int
}

type diskTier struct {
	f     *os.File
	size  int64
	index map[string]diskRef
}

// openDisk loads (or creates) the segment at path, returning the tier
// and the number of records dropped as unusable.
func openDisk(path, fp string) (*diskTier, uint64, error) {
	blob, err := os.ReadFile(path)
	fresh := false
	switch {
	case errors.Is(err, os.ErrNotExist):
		fresh = true
		blob = nil
	case err != nil:
		return nil, 0, fmt.Errorf("resultcache: %w", err)
	}

	var dropped uint64
	d := &diskTier{index: make(map[string]diskRef)}
	valid := int64(0)
	if !fresh {
		nl := bytes.IndexByte(blob, '\n')
		var h diskHeader
		if nl < 0 || json.Unmarshal(blob[:nl], &h) != nil || h.V != diskVersion || h.FP != fp {
			// Unreadable header or another build's results: start over.
			fresh = true
			if len(blob) > 0 {
				dropped++
			}
		} else {
			valid = int64(nl + 1)
			rest := blob[valid:]
			for len(rest) > 0 {
				nl := bytes.IndexByte(rest, '\n')
				if nl < 0 {
					dropped++ // torn tail: truncated before appends resume
					break
				}
				line, lineLen := rest[:nl], int64(nl+1)
				rest = rest[lineLen:]
				rb, err := campaign.UnframeRecord(line)
				var rec diskRec
				if err != nil || json.Unmarshal(rb, &rec) != nil || rec.B == "" || rec.F == "" {
					// Mid-file bad line: skip it but keep scanning — the
					// surviving records are individually checksummed.
					dropped++
					valid += lineLen
					continue
				}
				k := Key{Base: rec.B, Fault: rec.F}
				d.index[k.String()] = diskRef{off: valid, n: nl}
				valid += lineLen
			}
		}
	}

	flags := os.O_CREATE | os.O_RDWR
	f, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		return nil, dropped, fmt.Errorf("resultcache: %w", err)
	}
	if fresh {
		hdr, err := json.Marshal(diskHeader{V: diskVersion, FP: fp})
		if err != nil {
			f.Close()
			return nil, dropped, err
		}
		hdr = append(hdr, '\n')
		if err := f.Truncate(0); err != nil {
			f.Close()
			return nil, dropped, fmt.Errorf("resultcache: %w", err)
		}
		if _, err := f.WriteAt(hdr, 0); err != nil {
			f.Close()
			return nil, dropped, fmt.Errorf("resultcache: %w", err)
		}
		valid = int64(len(hdr))
	} else if valid < int64(len(blob)) {
		// Drop the torn tail so appends resume on a line boundary.
		if err := f.Truncate(valid); err != nil {
			f.Close()
			return nil, dropped, fmt.Errorf("resultcache: %w", err)
		}
	}
	d.f = f
	d.size = valid
	return d, dropped, nil
}

// get reads and re-verifies one record. A record that no longer
// unframes (bitrot since open) is dropped from the index and reported
// in the dropped count — a miss, never an error.
func (d *diskTier) get(k Key) (val []byte, ok bool, dropped uint64) {
	ref, exists := d.index[k.String()]
	if !exists {
		return nil, false, 0
	}
	line := make([]byte, ref.n)
	if _, err := d.f.ReadAt(line, ref.off); err != nil {
		delete(d.index, k.String())
		return nil, false, 1
	}
	rb, err := campaign.UnframeRecord(line)
	var rec diskRec
	if err != nil || json.Unmarshal(rb, &rec) != nil || rec.B != k.Base || rec.F != k.Fault {
		delete(d.index, k.String())
		return nil, false, 1
	}
	return rec.V, true, 0
}

// put appends one framed record. Errors bubble up so the cache can
// degrade to memory-only.
func (d *diskTier) put(k Key, v []byte) error {
	if _, ok := d.index[k.String()]; ok {
		return nil
	}
	rb, err := json.Marshal(diskRec{B: k.Base, F: k.Fault, V: v})
	if err != nil {
		return err
	}
	line, err := campaign.FrameRecord(rb)
	if err != nil {
		return err
	}
	line = append(line, '\n')
	if _, err := d.f.WriteAt(line, d.size); err != nil {
		return err
	}
	d.index[k.String()] = diskRef{off: d.size, n: len(line) - 1}
	d.size += int64(len(line))
	return nil
}

func (d *diskTier) keys() []Key {
	out := make([]Key, 0, len(d.index))
	for ks := range d.index {
		// The map key is base+"."+fault; recover the parts from the
		// stored ref by splitting on the separator, which never appears
		// inside a hex digest.
		for i := 0; i < len(ks); i++ {
			if ks[i] == '.' {
				out = append(out, Key{Base: ks[:i], Fault: ks[i+1:]})
				break
			}
		}
	}
	return out
}

func (d *diskTier) entries() int { return len(d.index) }

func (d *diskTier) close() error { return d.f.Close() }

// Package resultcache is a content-addressed, two-tier cache for
// deterministic evaluation results. Every evaluation in this system is
// a pure function of (workload, structure, config) — the paper's MDA
// mapping is a static offline decision — so a result can be keyed by
// the canonical SHA-256 of its normalized request and served to any
// later request with the same key: sweep fan-outs, repeated
// /v1/evaluate traffic, soak trials, and fabric placements all share
// one memo table ("mapping as a service").
//
// Keys have two parts, and that split is the safety story. The base
// component identifies the problem (workload, structure, scale,
// thresholds...); the fault component identifies the fault/wear/
// recovery model the result was computed under (strike rate, injection
// target, seed, recovery policy, wear model). A lookup whose base
// matches a cached entry but whose fault component differs is a
// recorded *bypass* — deliberately not a hit, in the spirit of the
// STT-RAM cache-bypassing literature: serving a result computed under
// a different fault model would be a silent-data-corruption factory.
// Because the full key includes the fault digest, a false hit is
// structurally impossible; the bypass counter exists so operators can
// see near-misses on /healthz.
//
// Values are the exact marshaled result bytes the uncached path would
// have produced, so cached and uncached runs yield byte-identical
// artifacts (the PR's equivalence invariant). Entries never encode
// anything derived from wall-clock time or iteration order.
package resultcache

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

// Key is a two-part content address. Base digests the problem
// identity; Fault digests the fault/wear/recovery model. Both are hex
// SHA-256 truncations of canonical JSON. The zero Key is invalid.
type Key struct {
	Base  string
	Fault string
}

// String renders the full key ("base.fault"), the form used for map
// indexing and singleflight collapsing.
func (k Key) String() string { return k.Base + "." + k.Fault }

// Valid reports whether the key has both components.
func (k Key) Valid() bool { return k.Base != "" && k.Fault != "" }

// CanonicalJSON returns the canonical encoding of v: marshal, decode
// into untyped maps/slices, and re-marshal. encoding/json sorts map
// keys at every nesting level on the second marshal, so two
// semantically identical values whose JSON field order differs (map
// iteration, hand-built json.RawMessage, clients with different field
// order) canonicalize to the same bytes. This is the same
// canonicalization discipline campaign.HashJSON relies on for struct
// configs, extended to cover map-typed and raw fields.
func CanonicalJSON(v any) ([]byte, error) {
	blob, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	var u any
	if err := json.Unmarshal(blob, &u); err != nil {
		return nil, err
	}
	return json.Marshal(u)
}

// digest hashes kind + canonical JSON into a hex digest. The kind
// string namespaces key spaces (evaluate vs soak trial) so identical
// payloads in different domains can never collide.
func digest(kind string, v any) (string, error) {
	blob, err := CanonicalJSON(v)
	if err != nil {
		return "", err
	}
	h := sha256.New()
	h.Write([]byte(kind))
	h.Write([]byte{0})
	h.Write(blob)
	return hex.EncodeToString(h.Sum(nil))[:32], nil
}

// NewKey builds a content address from a kind tag, the problem
// identity, and the fault/wear/recovery model. Both values go through
// CanonicalJSON, so field order never splits a key.
func NewKey(kind string, base, fault any) (Key, error) {
	b, err := digest(kind, base)
	if err != nil {
		return Key{}, fmt.Errorf("resultcache: base key: %w", err)
	}
	f, err := digest(kind, fault)
	if err != nil {
		return Key{}, fmt.Errorf("resultcache: fault key: %w", err)
	}
	return Key{Base: b, Fault: f}, nil
}

// Package schedule implements the second (on-line) phase of FTSPM as the
// paper actually deploys it: an off-line tool walks the profiled access
// sequence and inserts explicit SPM-mapping commands — the paper's "SPM
// Mapping Instructions" (SMI, after [16]) — at the proper points of the
// code, so blocks are transferred between off-chip memory and the SPM at
// statically-known moments instead of on demand.
//
// Because the whole access sequence is known off-line, the planner uses
// Belady's MIN policy for evictions: when a region must make room, it
// displaces the resident block whose next use is farthest in the future.
// The simulator's fallback path is the on-demand LRU controller, so a
// plan can only reduce transfer traffic; the ablation benchmark
// (BenchmarkAblation_ScheduledVsOnDemand) quantifies the gap.
package schedule

import (
	"errors"
	"fmt"

	"ftspm/internal/memtech"
	"ftspm/internal/program"
	"ftspm/internal/spm"
	"ftspm/internal/trace"
)

// Command is one SMI: before issuing the access at trace position
// AtAccess, transfer a block.
type Command struct {
	// AtAccess is the 0-based index (counting access events only) the
	// command precedes.
	AtAccess int
	// Block is the transferred block.
	Block program.BlockID
	// Load is true for a map-in, false for an unmap (with write-back of
	// dirty contents).
	Load bool
}

// Plan is the full transfer schedule of one workload under one
// placement.
type Plan struct {
	// Commands are ordered by AtAccess (unmaps before loads at the same
	// position).
	Commands []Command
	// Loads and Evictions count the planned transfers.
	Loads, Evictions int
}

// Errors returned by Build.
var (
	ErrNilProgram   = errors.New("schedule: program must not be nil")
	ErrNilPlacement = errors.New("schedule: placement must not be nil")
	ErrBlockTooBig  = errors.New("schedule: block larger than its target region")
)

// regionState tracks planned occupancy of one region kind.
type regionState struct {
	capacityWords int
	freeWords     int
	resident      map[program.BlockID]bool
}

// Build walks the trace and produces the transfer schedule for the
// mapped data and code blocks of the placement. regionWords gives the
// capacity in 32-bit words of each region kind used by the placement
// (per SPM side — the instruction SPM's kind capacity applies to code
// blocks, the data SPM's to data blocks; pass the two maps merged with
// the helper RegionWords).
func Build(prog *program.Program, place spm.Placement, s trace.Stream,
	codeWords, dataWords map[spm.RegionKind]int) (*Plan, error) {
	if prog == nil {
		return nil, ErrNilProgram
	}
	if place == nil {
		return nil, ErrNilPlacement
	}

	// Pass 1: extract the sequence of accesses to mapped blocks.
	type use struct {
		at    int
		block program.BlockID
	}
	var uses []use
	accessIdx := 0
	for {
		e, ok := s.Next()
		if !ok {
			break
		}
		if e.Kind != trace.KindAccess {
			continue
		}
		id, found := prog.FindAddr(e.Access.Addr)
		if found {
			if _, mapped := place[id]; mapped {
				uses = append(uses, use{at: accessIdx, block: id})
			}
		}
		accessIdx++
	}

	// nextUse[i] = index into uses of the next use of the same block
	// after i (len(uses) = never).
	nextUse := make([]int, len(uses))
	last := make(map[program.BlockID]int)
	for i := len(uses) - 1; i >= 0; i-- {
		if n, ok := last[uses[i].block]; ok {
			nextUse[i] = n
		} else {
			nextUse[i] = len(uses)
		}
		last[uses[i].block] = i
	}

	// Planned occupancy per (side, kind): the code and data SPMs are
	// physically separate structures.
	type sideKind struct {
		code bool
		kind spm.RegionKind
	}
	states := make(map[sideKind]*regionState)
	stateFor := func(b program.Block, kind spm.RegionKind) (*regionState, error) {
		key := sideKind{code: b.Kind == program.CodeBlock, kind: kind}
		words := dataWords[kind]
		if key.code {
			words = codeWords[kind]
		}
		st, ok := states[key]
		if !ok {
			st = &regionState{
				capacityWords: words,
				freeWords:     words,
				resident:      make(map[program.BlockID]bool),
			}
			states[key] = st
		}
		if memtech.WordsIn(b.Size) > st.capacityWords {
			return nil, fmt.Errorf("%w: %s (%d B) -> %v", ErrBlockTooBig, b.Name, b.Size, kind)
		}
		return st, nil
	}

	// cursors[block] = sorted positions where the block is used; each
	// block keeps a monotonically-advancing cursor so Belady victim
	// selection is amortized O(1) per query.
	cursors := make(map[program.BlockID][]int)
	for i, u := range uses {
		cursors[u.block] = append(cursors[u.block], i)
	}
	cursorPos := make(map[program.BlockID]int)
	nextUseOf := func(id program.BlockID, now int) int {
		list := cursors[id]
		p := cursorPos[id]
		for p < len(list) && list[p] <= now {
			p++
		}
		cursorPos[id] = p
		if p == len(list) {
			return len(uses)
		}
		return list[p]
	}

	plan := &Plan{}
	for i, u := range uses {
		b, err := prog.Block(u.block)
		if err != nil {
			return nil, err
		}
		kind := place[u.block]
		st, err := stateFor(b, kind)
		if err != nil {
			return nil, err
		}
		if st.resident[u.block] {
			continue
		}
		need := memtech.WordsIn(b.Size)
		// Belady: evict residents with the farthest next use until the
		// block fits.
		for st.freeWords < need {
			victim := program.BlockID(-1)
			farthest := -1
			for id := range st.resident {
				n := nextUseOf(id, i)
				// Tie-break on block ID for determinism.
				if n > farthest || (n == farthest && id < victim) {
					farthest = n
					victim = id
				}
			}
			vb, err := prog.Block(victim)
			if err != nil {
				return nil, err
			}
			delete(st.resident, victim)
			st.freeWords += memtech.WordsIn(vb.Size)
			plan.Commands = append(plan.Commands, Command{
				AtAccess: u.at, Block: victim, Load: false,
			})
			plan.Evictions++
		}
		st.resident[u.block] = true
		st.freeWords -= need
		plan.Commands = append(plan.Commands, Command{
			AtAccess: u.at, Block: u.block, Load: true,
		})
		plan.Loads++
	}
	return plan, nil
}

// RegionWords returns the per-kind word capacities of a region
// configuration list.
func RegionWords(configs []spm.RegionConfig) map[spm.RegionKind]int {
	out := make(map[spm.RegionKind]int, len(configs))
	for _, rc := range configs {
		out[rc.Kind] += rc.SizeBytes / memtech.WordBytes
	}
	return out
}

package schedule_test

import (
	"errors"
	"testing"

	"ftspm/internal/core"
	"ftspm/internal/profile"
	"ftspm/internal/program"
	"ftspm/internal/schedule"
	"ftspm/internal/spm"
	"ftspm/internal/trace"
	"ftspm/internal/workloads"
)

// planFixture builds a program with three 1 KB data blocks that must
// time-share a 2 KB STT region, and a trace alternating A, B, C, A.
func planFixture(t *testing.T) (*program.Program, spm.Placement, []trace.Event, map[string]program.BlockID) {
	t.Helper()
	p := program.New("plan")
	ids := map[string]program.BlockID{
		"A": p.MustAddBlock("A", program.DataBlock, 1024),
		"B": p.MustAddBlock("B", program.DataBlock, 1024),
		"C": p.MustAddBlock("C", program.DataBlock, 1024),
	}
	place := spm.Placement{
		ids["A"]: spm.RegionSTT,
		ids["B"]: spm.RegionSTT,
		ids["C"]: spm.RegionSTT,
	}
	acc := func(name string) trace.Event {
		a, err := p.AddrOf(ids[name], 0)
		if err != nil {
			t.Fatal(err)
		}
		return trace.AccessEvent(trace.Access{Op: trace.Read, Space: trace.Data, Addr: a, Size: 4})
	}
	evs := []trace.Event{acc("A"), acc("B"), acc("C"), acc("A")}
	return p, place, evs, ids
}

func TestBuildBeladyEviction(t *testing.T) {
	p, place, evs, ids := planFixture(t)
	words := map[spm.RegionKind]int{spm.RegionSTT: 512} // 2 KB
	plan, err := schedule.Build(p, place, trace.NewSliceStream(evs), nil, words)
	if err != nil {
		t.Fatal(err)
	}
	// A and B fit; C forces an eviction. Belady must evict B (next use
	// never) and keep A (used again at position 3).
	if plan.Loads != 3 || plan.Evictions != 1 {
		t.Fatalf("loads/evictions = %d/%d, want 3/1: %+v", plan.Loads, plan.Evictions, plan.Commands)
	}
	var evicted program.BlockID = -1
	for _, cmd := range plan.Commands {
		if !cmd.Load {
			evicted = cmd.Block
		}
	}
	if evicted != ids["B"] {
		t.Errorf("Belady evicted block %d, want B (%d)", evicted, ids["B"])
	}
	// Commands are ordered by position.
	for i := 1; i < len(plan.Commands); i++ {
		if plan.Commands[i].AtAccess < plan.Commands[i-1].AtAccess {
			t.Error("commands out of order")
		}
	}
}

func TestBuildNoEvictionWhenEverythingFits(t *testing.T) {
	p, place, evs, _ := planFixture(t)
	words := map[spm.RegionKind]int{spm.RegionSTT: 1024} // 4 KB
	plan, err := schedule.Build(p, place, trace.NewSliceStream(evs), nil, words)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Loads != 3 || plan.Evictions != 0 {
		t.Errorf("loads/evictions = %d/%d, want 3/0", plan.Loads, plan.Evictions)
	}
}

func TestBuildValidation(t *testing.T) {
	p, place, evs, _ := planFixture(t)
	if _, err := schedule.Build(nil, place, trace.NewSliceStream(evs), nil, nil); !errors.Is(err, schedule.ErrNilProgram) {
		t.Error("nil program accepted")
	}
	if _, err := schedule.Build(p, nil, trace.NewSliceStream(evs), nil, nil); !errors.Is(err, schedule.ErrNilPlacement) {
		t.Error("nil placement accepted")
	}
	tiny := map[spm.RegionKind]int{spm.RegionSTT: 16}
	if _, err := schedule.Build(p, place, trace.NewSliceStream(evs), nil, tiny); !errors.Is(err, schedule.ErrBlockTooBig) {
		t.Error("oversized block accepted")
	}
}

func TestBuildIgnoresUnmappedAndStrayEvents(t *testing.T) {
	p, place, evs, ids := planFixture(t)
	delete(place, ids["C"]) // C unmapped: no commands for it
	evs = append(evs, trace.CallEvent(8), trace.ReturnEvent())
	words := map[spm.RegionKind]int{spm.RegionSTT: 512}
	plan, err := schedule.Build(p, place, trace.NewSliceStream(evs), nil, words)
	if err != nil {
		t.Fatal(err)
	}
	for _, cmd := range plan.Commands {
		if cmd.Block == ids["C"] {
			t.Error("unmapped block scheduled")
		}
	}
	if plan.Loads != 2 || plan.Evictions != 0 {
		t.Errorf("loads/evictions = %d/%d, want 2/0", plan.Loads, plan.Evictions)
	}
}

func TestRegionWords(t *testing.T) {
	got := schedule.RegionWords([]spm.RegionConfig{
		{Kind: spm.RegionSTT, SizeBytes: 1024},
		{Kind: spm.RegionECC, SizeBytes: 512},
		{Kind: spm.RegionSTT, SizeBytes: 1024},
	})
	if got[spm.RegionSTT] != 512 || got[spm.RegionECC] != 128 {
		t.Errorf("RegionWords = %v", got)
	}
}

func TestScheduleNeverBeatenByOnDemandOnCaseStudy(t *testing.T) {
	// Integration: the Belady schedule must not cause more transfer
	// traffic than the on-demand LRU controller on the case study.
	w := workloads.CaseStudy()
	prof, err := profile.Run(w.Program(), w.Trace(0.1))
	if err != nil {
		t.Fatal(err)
	}
	spec := core.MustSpec(core.StructFTSPM)
	mapping, err := core.MapBlocks(prof, spec, core.DefaultThresholds(), core.PriorityReliability)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := schedule.Build(w.Program(), mapping.Placement, w.Trace(0.1),
		schedule.RegionWords(spec.ISPM), schedule.RegionWords(spec.DSPM))
	if err != nil {
		t.Fatal(err)
	}
	if plan.Loads == 0 {
		t.Fatal("empty plan")
	}
	// On-demand map-ins for comparison: replay and count activations
	// needing transfers is exactly what the plan encodes, so planned
	// loads can never exceed the on-demand count for the same capacity
	// (Belady optimality); check the plan is internally consistent
	// instead: every load is preceded by enough space.
	if plan.Evictions > plan.Loads {
		t.Errorf("more evictions (%d) than loads (%d)", plan.Evictions, plan.Loads)
	}
}

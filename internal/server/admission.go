package server

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// errOverloaded is returned by limiter.admit when the class's wait
// queue is full; the handler maps it to 429 with a Retry-After hint.
var errOverloaded = errors.New("server: class overloaded")

// limiter is one admission class: a concurrency limit plus a bounded
// FIFO wait queue. Admission is decided synchronously under one lock,
// so shedding is deterministic — with limit L and queue capacity Q, the
// L+Q+1-th concurrent request is shed, always. (A channel-semaphore
// with a racy waiter counter would admit a scheduling-dependent number
// instead, which is exactly what the overload tests must not tolerate.)
type limiter struct {
	name     string
	limit    int
	queueCap int

	mu      sync.Mutex
	active  int
	waiters []*slot // FIFO; head is granted on each release

	sheds atomic.Uint64
}

// slot is one admitted request's position: active immediately, or
// queued until a release grants it.
type slot struct {
	l     *limiter
	ready chan struct{} // closed when the slot becomes active
	// granted and abandoned are guarded by l.mu.
	granted   bool
	abandoned bool
}

func newLimiter(name string, limit, queueCap int) *limiter {
	return &limiter{name: name, limit: limit, queueCap: queueCap}
}

// admit reserves an active slot or a queue position without blocking.
// It returns errOverloaded when the queue is full (the caller sheds).
// On success the caller must eventually release() the slot — after
// wait() returns nil.
func (l *limiter) admit() (*slot, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	s := &slot{l: l, ready: make(chan struct{})}
	if l.active < l.limit {
		l.active++
		s.granted = true
		close(s.ready)
		return s, nil
	}
	if len(l.waiters) >= l.queueCap {
		l.sheds.Add(1)
		return nil, errOverloaded
	}
	l.waiters = append(l.waiters, s)
	return s, nil
}

// wait blocks until the slot is active or ctx is done. A ctx expiry
// abandons the queue position (or immediately releases a slot granted
// in the race window) and returns the ctx error; the caller must not
// release() after a non-nil return.
func (s *slot) wait(ctx context.Context) error {
	select {
	case <-s.ready:
		return nil
	case <-ctx.Done():
	}
	l := s.l
	l.mu.Lock()
	defer l.mu.Unlock()
	if s.granted {
		// Granted between ctx.Done and the lock: hand the slot straight
		// to the next waiter so it is never leaked.
		l.releaseLocked()
		return ctx.Err()
	}
	s.abandoned = true
	for i, w := range l.waiters {
		if w == s {
			l.waiters = append(l.waiters[:i], l.waiters[i+1:]...)
			break
		}
	}
	return ctx.Err()
}

// release returns an active slot: the head waiter is granted in FIFO
// order, or the active count drops.
func (s *slot) release() {
	s.l.mu.Lock()
	defer s.l.mu.Unlock()
	s.l.releaseLocked()
}

func (l *limiter) releaseLocked() {
	for len(l.waiters) > 0 {
		w := l.waiters[0]
		l.waiters = l.waiters[1:]
		if w.abandoned {
			continue
		}
		w.granted = true
		close(w.ready)
		return
	}
	l.active--
}

// status snapshots the class occupancy for /readyz.
func (l *limiter) status() ClassStatus {
	l.mu.Lock()
	active, queued := l.active, len(l.waiters)
	l.mu.Unlock()
	return ClassStatus{
		Active:   active,
		Queued:   queued,
		Limit:    l.limit,
		QueueCap: l.queueCap,
		Shed:     l.sheds.Load(),
	}
}

// retryAfter estimates when a shed client should try again: one base
// interval per queued-or-running request ahead of it, capped so the
// hint never grows unbounded during a stampede.
func (l *limiter) retryAfter(base time.Duration) time.Duration {
	l.mu.Lock()
	backlog := l.active + len(l.waiters)
	l.mu.Unlock()
	d := base * time.Duration(1+backlog)
	if max := 30 * time.Second; d > max {
		d = max
	}
	return d
}

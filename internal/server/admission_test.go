package server

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestLimiterDeterministicShed pins the acceptance property: with limit
// L and queue capacity Q, exactly L+Q requests are admitted and every
// request past that is shed — independent of goroutine scheduling,
// because admission is a synchronous decision under one lock.
func TestLimiterDeterministicShed(t *testing.T) {
	l := newLimiter("test", 2, 2)
	var admitted []*slot
	for i := 0; i < 4; i++ {
		s, err := l.admit()
		if err != nil {
			t.Fatalf("admit %d: unexpected shed: %v", i, err)
		}
		admitted = append(admitted, s)
	}
	for i := 0; i < 3; i++ {
		if _, err := l.admit(); !errors.Is(err, errOverloaded) {
			t.Fatalf("admit beyond capacity: got %v, want errOverloaded", err)
		}
	}
	if got := l.sheds.Load(); got != 3 {
		t.Fatalf("sheds = %d, want 3", got)
	}
	st := l.status()
	if st.Active != 2 || st.Queued != 2 {
		t.Fatalf("status = %+v, want active 2 queued 2", st)
	}
	// Draining the admitted set frees capacity again.
	for _, s := range admitted[:2] {
		if err := s.wait(context.Background()); err != nil {
			t.Fatalf("wait active: %v", err)
		}
		s.release()
	}
	for _, s := range admitted[2:] {
		if err := s.wait(context.Background()); err != nil {
			t.Fatalf("wait queued: %v", err)
		}
		s.release()
	}
	if st := l.status(); st.Active != 0 || st.Queued != 0 {
		t.Fatalf("after drain status = %+v, want empty", st)
	}
	if _, err := l.admit(); err != nil {
		t.Fatalf("admit after drain: %v", err)
	}
}

// TestLimiterFIFOGrant checks queued slots are granted in submission
// order as active slots release.
func TestLimiterFIFOGrant(t *testing.T) {
	l := newLimiter("test", 1, 2)
	a, _ := l.admit()
	b, _ := l.admit()
	c, _ := l.admit()
	ready := func(s *slot) bool {
		select {
		case <-s.ready:
			return true
		default:
			return false
		}
	}
	if !ready(a) || ready(b) || ready(c) {
		t.Fatal("want only the first slot active")
	}
	a.release()
	if !ready(b) || ready(c) {
		t.Fatal("want FIFO: second slot granted before third")
	}
	b.release()
	if !ready(c) {
		t.Fatal("want third slot granted last")
	}
	c.release()
	if st := l.status(); st.Active != 0 {
		t.Fatalf("active = %d, want 0", st.Active)
	}
}

// TestLimiterAbandonedWaiterSkipped checks a waiter that gave up (ctx
// expired while queued) is never granted and does not wedge the queue.
func TestLimiterAbandonedWaiterSkipped(t *testing.T) {
	l := newLimiter("test", 1, 2)
	a, _ := l.admit()
	b, _ := l.admit()
	c, _ := l.admit()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := b.wait(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("abandon wait: got %v, want context.Canceled", err)
	}
	a.release() // must skip b and grant c
	if err := c.wait(context.Background()); err != nil {
		t.Fatalf("wait c: %v", err)
	}
	c.release()
	if st := l.status(); st.Active != 0 || st.Queued != 0 {
		t.Fatalf("status = %+v, want empty", st)
	}
}

// TestLimiterGrantCancelRace exercises the window where a queued slot
// is granted concurrently with its ctx expiring: whichever way the race
// resolves, the slot must not leak — the limiter always returns to
// empty.
func TestLimiterGrantCancelRace(t *testing.T) {
	sawErrPath := false
	for i := 0; i < 200 && !sawErrPath; i++ {
		l := newLimiter("test", 1, 1)
		a, _ := l.admit()
		b, _ := l.admit()
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		a.release() // b is granted; its ctx is already done — select races
		if err := b.wait(ctx); err != nil {
			sawErrPath = true // race-window path: slot auto-released
		} else {
			b.release()
		}
		if st := l.status(); st.Active != 0 || st.Queued != 0 {
			t.Fatalf("iteration %d: status = %+v, want empty", i, st)
		}
		if _, err := l.admit(); err != nil {
			t.Fatalf("iteration %d: limiter wedged: %v", i, err)
		}
	}
	if !sawErrPath {
		t.Skip("select never took the ctx branch; invariant still held on every iteration")
	}
}

func TestRetryAfterScalesWithBacklog(t *testing.T) {
	l := newLimiter("test", 2, 4)
	base := 100 * time.Millisecond
	if got := l.retryAfter(base); got != base {
		t.Fatalf("empty backlog: got %v, want %v", got, base)
	}
	for i := 0; i < 4; i++ {
		l.admit()
	}
	if got, want := l.retryAfter(base), 5*base; got != want {
		t.Fatalf("backlog 4: got %v, want %v", got, want)
	}
	if got := l.retryAfter(time.Hour); got != 30*time.Second {
		t.Fatalf("cap: got %v, want 30s", got)
	}
}

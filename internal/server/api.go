// Package server implements ftspmd, the resilient evaluation service
// over the FTSPM design-space engines: synchronous single-structure
// evaluation plus asynchronous sweep and soak campaigns, served over
// HTTP/JSON on top of the crash-safe campaign runner.
//
// The robustness layer is the point of the package:
//
//   - Admission control: every request class (cheap synchronous
//     evaluates vs heavy campaign jobs) has its own concurrency limit
//     and bounded FIFO queue, so evaluates never starve behind sweeps.
//   - Load shedding: once a class's queue is full, excess requests are
//     rejected immediately with 429 and a Retry-After hint — shed,
//     don't collapse.
//   - Deadlines: every evaluate carries a deadline propagated via
//     context into the simulator hot path, which polls it every few
//     thousand trace events.
//   - Panic isolation: a panicking request answers 500 alone; the
//     process keeps serving.
//   - Circuit breaker: /readyz trips when the error rate spikes or the
//     pool is saturated, steering load balancers away before the
//     backlog grows.
//   - Graceful drain: SIGTERM stops admission, finishes or checkpoints
//     in-flight jobs (campaigns journal every finished sim job, so a
//     drained job resumes byte-identically), and exits 0.
package server

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"ftspm/internal/core"
	"ftspm/internal/experiments"
	"ftspm/internal/faults"
	"ftspm/internal/resultcache"
)

// EvaluateRequest is the body of POST /v1/evaluate: one workload on one
// structure, evaluated synchronously within the request deadline.
type EvaluateRequest struct {
	// Workload names the evaluated workload (see workloads.Names).
	Workload string `json:"workload"`
	// Structure selects the SPM organization: "ftspm", "sram", "stt",
	// "dmr", or a canonical structure name such as "pure-SRAM".
	Structure string `json:"structure"`
	// Scale multiplies the reference trace length (0 = server default).
	Scale float64 `json:"scale,omitempty"`
	// TimeoutMS bounds the evaluation including queueing (0 = server
	// default; clamped to the server maximum).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// EvaluateResponse is the reply to a completed evaluate.
type EvaluateResponse struct {
	// Run holds the flattened evaluation metrics.
	Run experiments.RunSummary `json:"run"`
	// ElapsedMS is the service time (queueing included).
	ElapsedMS int64 `json:"elapsed_ms"`

	// cached reports whether the result cache satisfied the request.
	// It travels in the X-Ftspm-Cache response header, never the body:
	// cached and uncached response bodies are byte-identical.
	cached bool
}

// SweepRequest is the body of POST /v1/sweep: the full suite × all
// structures as an asynchronous crash-safe campaign job.
type SweepRequest struct {
	// Scale multiplies the reference trace length (0 = default).
	Scale float64 `json:"scale,omitempty"`
	// Workers bounds the campaign's sim worker pool (0 = GOMAXPROCS).
	Workers int `json:"workers,omitempty"`
	// Retries is the per-sim-job retry budget.
	Retries int `json:"retries,omitempty"`
	// JobTimeoutMS is the per-sim-job deadline (0 = none).
	JobTimeoutMS int64 `json:"job_timeout_ms,omitempty"`
	// Checkpoint names the job's journal file inside the server data
	// dir (letters, digits, dot, dash, underscore; no separators).
	// Empty uses "<job-id>.ckpt". Naming it lets a client resume the
	// job across daemon restarts.
	Checkpoint string `json:"checkpoint,omitempty"`
	// Resume skips sim jobs already journaled in Checkpoint (which must
	// be named explicitly).
	Resume bool `json:"resume,omitempty"`
}

// SoakRequest is the body of POST /v1/soak: a Monte-Carlo recovery
// stress campaign as an asynchronous job.
type SoakRequest struct {
	// Workload names the soaked workload (default: the case study).
	Workload string `json:"workload,omitempty"`
	// Structures lists the evaluated organizations (default: the
	// requested or default soak structure).
	Structures []string `json:"structures,omitempty"`
	// Trials is the number of independently-seeded runs per structure.
	Trials int `json:"trials,omitempty"`
	// Scale multiplies the reference trace length (default 0.05).
	Scale float64 `json:"scale,omitempty"`
	// Strike is the per-access particle-strike probability.
	Strike float64 `json:"strike,omitempty"`
	// Seed drives the campaign.
	Seed int64 `json:"seed,omitempty"`
	// NoRecovery runs the detection-only baseline.
	NoRecovery bool `json:"no_recovery,omitempty"`
	// Storm, when non-nil, runs the campaign under the correlated
	// fault storm (faults.StormConfig) instead of the memoryless
	// strike process; Strike is then ignored (the storm's calm
	// intensity is the background rate). Unset numeric fields resolve
	// to the DefaultStorm values.
	Storm *faults.StormConfig `json:"storm,omitempty"`
	// AdaptiveScrub arms the controller's adaptive storm defenses
	// (spm.DefaultAdaptive): scrub escalation with hysteresis,
	// emergency refresh, and storm bypass. Ignored with NoRecovery.
	AdaptiveScrub bool `json:"adaptive_scrub,omitempty"`
	// Lanes caps the packed engine's batch width: 0 auto-packs up to
	// 64 trials per trace pass, 1 forces the scalar simulator. The
	// results are identical either way.
	Lanes int `json:"lanes,omitempty"`
	// Workers, Retries, JobTimeoutMS, Checkpoint, Resume: as in
	// SweepRequest.
	Workers      int    `json:"workers,omitempty"`
	Retries      int    `json:"retries,omitempty"`
	JobTimeoutMS int64  `json:"job_timeout_ms,omitempty"`
	Checkpoint   string `json:"checkpoint,omitempty"`
	Resume       bool   `json:"resume,omitempty"`
}

// SoakResult is the payload of a finished soak job.
type SoakResult struct {
	// Reports holds one report per requested structure, in order.
	Reports []*experiments.SoakReport `json:"reports"`
	// Campaign carries the salvage status of interrupted or
	// partially-failed campaigns (omitted when clean).
	Campaign *experiments.CampaignStatus `json:"campaign,omitempty"`
}

// JobStatus is the wire form of an asynchronous job, returned by the
// submit endpoints (202) and GET /v1/jobs/{id}.
type JobStatus struct {
	ID   string `json:"id"`
	Kind string `json:"kind"`
	// State is one of queued, running, done, failed, canceled,
	// interrupted. Canceled and interrupted jobs with a checkpoint are
	// resumable: resubmitting with the same parameters, the same
	// checkpoint name, and resume=true continues them byte-identically.
	State string `json:"state"`
	// Error carries the failure text (failed jobs) or the drain/cancel
	// cause (interrupted and canceled jobs).
	Error string `json:"error,omitempty"`
	// Checkpoint is the job's journal file name inside the data dir.
	Checkpoint string `json:"checkpoint,omitempty"`
	// Resumable marks a job whose checkpoint allows continuation.
	Resumable bool `json:"resumable,omitempty"`
	// Result is the job's JSON payload (done jobs, and salvaged partial
	// payloads of interrupted jobs).
	Result json.RawMessage `json:"result,omitempty"`
	// Created/Started/Finished are RFC3339 timestamps ("" if not yet).
	Created  string `json:"created,omitempty"`
	Started  string `json:"started,omitempty"`
	Finished string `json:"finished,omitempty"`
}

// JobList is the reply to GET /v1/jobs.
type JobList struct {
	Jobs []JobStatus `json:"jobs"`
}

// ErrorResponse is the JSON body of every non-2xx reply.
type ErrorResponse struct {
	Error string `json:"error"`
	// RetryAfterMS mirrors the Retry-After header on 429/503 replies.
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`
}

// HealthStatus is the body of GET /healthz: liveness plus the load
// signals the fabric coordinator uses for load-aware chunk placement.
type HealthStatus struct {
	Status   string `json:"status"`
	Draining bool   `json:"draining"`
	// Breaker mirrors the /readyz circuit-breaker state ("closed" or
	// "open").
	Breaker string `json:"breaker"`
	// InFlightJobs counts executing work units: running async jobs plus
	// fabric chunks.
	InFlightJobs int64 `json:"in_flight_jobs"`
	// Fingerprint is this build's fabric fingerprint
	// (wire.Fingerprint). The coordinator refuses workers whose
	// fingerprint differs from its own.
	Fingerprint string `json:"fingerprint,omitempty"`
	// Evaluate, Campaign, and Fabric report per-class admission
	// backlog.
	Evaluate ClassStatus `json:"evaluate"`
	Campaign ClassStatus `json:"campaign"`
	Fabric   ClassStatus `json:"fabric"`
	// Cache reports the result cache's hit/miss/bypass/eviction
	// counters and tier occupancy (omitted when the cache is disabled).
	Cache *resultcache.Stats `json:"cache,omitempty"`
	// Storm reports the storm-soak counters: campaigns served in storm
	// mode and process-wide packed-engine scalar fallbacks.
	Storm *StormHealth `json:"storm,omitempty"`
}

// StormHealth is the /healthz storm-soak counter block.
type StormHealth struct {
	// Jobs counts soak campaigns served in storm mode.
	Jobs uint64 `json:"jobs"`
	// ScalarFallbacks counts packed-engine declines that fell back to
	// the scalar simulator (process-wide, all causes).
	ScalarFallbacks uint64 `json:"scalar_fallbacks"`
}

// ReadyStatus is the body of GET /readyz.
type ReadyStatus struct {
	Ready    bool        `json:"ready"`
	Draining bool        `json:"draining"`
	Breaker  string      `json:"breaker"`
	Evaluate ClassStatus `json:"evaluate"`
	Campaign ClassStatus `json:"campaign"`
}

// ClassStatus reports one admission class's occupancy.
type ClassStatus struct {
	Active   int    `json:"active"`
	Queued   int    `json:"queued"`
	Limit    int    `json:"limit"`
	QueueCap int    `json:"queue_cap"`
	Shed     uint64 `json:"shed"`
}

// ParseStructure resolves the wire names of the evaluated structures:
// the short aliases used by the CLIs ("ftspm", "sram", "stt", "dmr")
// and the canonical Structure.String() names.
func ParseStructure(name string) (core.Structure, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "ftspm":
		return core.StructFTSPM, nil
	case "sram", "pure-sram":
		return core.StructPureSRAM, nil
	case "stt", "stt-ram", "pure-stt", "pure-stt-ram":
		return core.StructPureSTT, nil
	case "dmr", "duplication", "dmr-sram":
		return core.StructDMR, nil
	default:
		return 0, fmt.Errorf("%w: %q (ftspm, sram, stt, dmr)", core.ErrUnknownStructure, name)
	}
}

// fmtTime renders a timestamp for the wire ("" for the zero time).
func fmtTime(t time.Time) string {
	if t.IsZero() {
		return ""
	}
	return t.UTC().Format(time.RFC3339Nano)
}

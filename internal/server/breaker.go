package server

import (
	"sync"
	"time"
)

// BreakerConfig parameterizes the readiness circuit breaker. The zero
// value of every field selects the default in parentheses.
type BreakerConfig struct {
	// Window is the outcome ring size over which the error rate is
	// measured (32).
	Window int
	// MinSamples is the minimum number of recorded outcomes before the
	// error rate can trip the breaker (8).
	MinSamples int
	// ErrorRate is the tripping error fraction over the window (0.5).
	ErrorRate float64
	// ShedWindow is the saturation horizon: sheds inside it count
	// toward ShedTrip (5s).
	ShedWindow time.Duration
	// ShedTrip is the shed count within ShedWindow that trips the
	// breaker — the worker pool is saturated and actively rejecting
	// (16).
	ShedTrip int
	// Cooldown is how long the breaker stays open once tripped (5s).
	Cooldown time.Duration
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Window <= 0 {
		c.Window = 32
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 8
	}
	if c.ErrorRate <= 0 {
		c.ErrorRate = 0.5
	}
	if c.ShedWindow <= 0 {
		c.ShedWindow = 5 * time.Second
	}
	if c.ShedTrip <= 0 {
		c.ShedTrip = 16
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 5 * time.Second
	}
	return c
}

// Breaker is the /readyz circuit breaker: it trips open — reporting the
// instance not ready so load balancers steer traffic away — when the
// recent error rate spikes or admission is shedding hard (pool
// saturation), and closes again after a cooldown with fresh state.
// Request handling itself is never blocked by the breaker; readiness is
// advisory, which is the standard contract of /readyz.
type Breaker struct {
	cfg BreakerConfig
	now func() time.Time

	mu        sync.Mutex
	outcomes  []bool // ring; true = error
	next      int
	filled    int
	errs      int
	sheds     []time.Time // recent shed timestamps, pruned to ShedWindow
	openUntil time.Time
	trips     uint64
}

func NewBreaker(cfg BreakerConfig, now func() time.Time) *Breaker {
	cfg = cfg.withDefaults()
	if now == nil {
		now = time.Now
	}
	return &Breaker{cfg: cfg, now: now, outcomes: make([]bool, cfg.Window)}
}

// RecordOutcome feeds one finished request into the error-rate window.
// Client errors (4xx) are not outcomes — only server-side results.
func (b *Breaker) RecordOutcome(isErr bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.filled == len(b.outcomes) && b.outcomes[b.next] {
		b.errs--
	}
	b.outcomes[b.next] = isErr
	b.next = (b.next + 1) % len(b.outcomes)
	if b.filled < len(b.outcomes) {
		b.filled++
	}
	if isErr {
		b.errs++
	}
	if b.filled >= b.cfg.MinSamples &&
		float64(b.errs)/float64(b.filled) >= b.cfg.ErrorRate {
		b.tripLocked()
	}
}

// RecordShed feeds one load-shedding rejection into the saturation
// window.
func (b *Breaker) RecordShed() {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.now()
	cutoff := now.Add(-b.cfg.ShedWindow)
	kept := b.sheds[:0]
	for _, t := range b.sheds {
		if t.After(cutoff) {
			kept = append(kept, t)
		}
	}
	b.sheds = append(kept, now)
	if len(b.sheds) >= b.cfg.ShedTrip {
		b.tripLocked()
	}
}

// tripLocked opens the breaker for the cooldown and resets the windows
// so the half-open period starts from a clean slate.
func (b *Breaker) tripLocked() {
	b.openUntil = b.now().Add(b.cfg.Cooldown)
	b.trips++
	for i := range b.outcomes {
		b.outcomes[i] = false
	}
	b.next, b.filled, b.errs = 0, 0, 0
	b.sheds = b.sheds[:0]
}

// ForceOpen latches the breaker open with no cooldown recovery — the
// state for a worker convicted of returning divergent results, where
// "try again in five seconds" is exactly wrong. Only a process restart
// (and with it a fresh Breaker) closes it again.
func (b *Breaker) ForceOpen() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.tripLocked()
	// Far past any plausible process lifetime; time.Time has no +Inf.
	b.openUntil = b.now().Add(100 * 365 * 24 * time.Hour)
}

// Ready reports whether the breaker is closed.
func (b *Breaker) Ready() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return !b.now().Before(b.openUntil)
}

// State renders the breaker for /readyz ("closed" or "open").
func (b *Breaker) State() string {
	if b.Ready() {
		return "closed"
	}
	return "open"
}

package server

import (
	"sync"
	"testing"
	"time"
)

// fakeClock is a mutex-guarded manual clock for deterministic breaker
// tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1_700_000_000, 0)}
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

var testBreakerCfg = BreakerConfig{
	Window:     8,
	MinSamples: 4,
	ErrorRate:  0.5,
	ShedWindow: 5 * time.Second,
	ShedTrip:   3,
	Cooldown:   time.Minute,
}

func TestBreakerErrorRateTrip(t *testing.T) {
	clk := newFakeClock()
	b := NewBreaker(testBreakerCfg, clk.now)
	// Below MinSamples nothing trips, even at 100% errors.
	for i := 0; i < 3; i++ {
		b.RecordOutcome(true)
		if !b.Ready() {
			t.Fatalf("tripped after %d samples, below MinSamples=4", i+1)
		}
	}
	b.RecordOutcome(true) // 4/4 errors ≥ 0.5
	if b.Ready() {
		t.Fatal("breaker should be open after error-rate trip")
	}
	if got := b.State(); got != "open" {
		t.Fatalf("state = %q, want open", got)
	}
	clk.advance(61 * time.Second)
	if !b.Ready() {
		t.Fatal("breaker should close after the cooldown")
	}
	// Trip resets the window: old errors must not linger into the
	// half-open period.
	b.RecordOutcome(true)
	b.RecordOutcome(true)
	b.RecordOutcome(true)
	if !b.Ready() {
		t.Fatal("post-cooldown window should have restarted from zero samples")
	}
}

func TestBreakerMixedOutcomesBelowRate(t *testing.T) {
	clk := newFakeClock()
	b := NewBreaker(testBreakerCfg, clk.now)
	// Errors interleaved below the 0.5 rate at every prefix: stays
	// closed.
	for i := 0; i < 9; i++ {
		b.RecordOutcome(i%3 == 2)
		if !b.Ready() {
			t.Fatalf("tripped at sample %d with error rate below threshold", i+1)
		}
	}
}

func TestBreakerShedSaturationTrip(t *testing.T) {
	clk := newFakeClock()
	b := NewBreaker(testBreakerCfg, clk.now)
	b.RecordShed()
	b.RecordShed()
	if !b.Ready() {
		t.Fatal("two sheds must not trip (ShedTrip=3)")
	}
	b.RecordShed()
	if b.Ready() {
		t.Fatal("three sheds inside the window should trip")
	}
}

func TestBreakerShedWindowPrunes(t *testing.T) {
	clk := newFakeClock()
	b := NewBreaker(testBreakerCfg, clk.now)
	b.RecordShed()
	b.RecordShed()
	clk.advance(6 * time.Second) // both fall out of the 5s window
	b.RecordShed()
	b.RecordShed()
	if !b.Ready() {
		t.Fatal("stale sheds outside ShedWindow must not count toward the trip")
	}
	b.RecordShed()
	if b.Ready() {
		t.Fatal("three fresh sheds should trip")
	}
}

// Package client is the Go client for ftspmd with built-in overload
// etiquette: retryable failures (429 shed, 503 drain/queue-timeout, and
// transport errors before a response) are retried with exponential
// backoff and jitter, and a server-supplied Retry-After hint always
// takes precedence over the computed backoff.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"ftspm/internal/server"
)

// StatusError is a non-2xx reply that was not (or could no longer be)
// retried.
type StatusError struct {
	Code       int
	Body       server.ErrorResponse
	RetryAfter time.Duration // parsed Retry-After hint, 0 if absent
}

func (e *StatusError) Error() string {
	msg := e.Body.Error
	if msg == "" {
		msg = http.StatusText(e.Code)
	}
	return fmt.Sprintf("ftspmd: %d: %s", e.Code, msg)
}

// Config parameterizes a Client. The zero value of every field selects
// the default in parentheses.
type Config struct {
	// BaseURL locates the daemon, e.g. "http://127.0.0.1:8077".
	BaseURL string
	// HTTPClient is the underlying transport (http.DefaultClient).
	HTTPClient *http.Client
	// MaxRetries bounds retry attempts beyond the first try (4).
	MaxRetries int
	// BaseBackoff is the first retry's backoff before jitter (200ms);
	// it doubles per attempt up to MaxBackoff (5s).
	BaseBackoff, MaxBackoff time.Duration
}

// Client talks to one ftspmd instance.
type Client struct {
	cfg Config

	// sleep, jitter, and now are test seams: the retry delay actuator,
	// the jitter transform (default: uniform in [d/2, d]), and the
	// clock HTTP-date Retry-After values are measured against.
	sleep  func(ctx context.Context, d time.Duration) error
	jitter func(d time.Duration) time.Duration
	now    func() time.Time
}

// New builds a Client for the daemon at cfg.BaseURL.
func New(cfg Config) (*Client, error) {
	if cfg.BaseURL == "" {
		return nil, errors.New("client: Config.BaseURL is required")
	}
	if _, err := url.Parse(cfg.BaseURL); err != nil {
		return nil, fmt.Errorf("client: base URL: %w", err)
	}
	if cfg.HTTPClient == nil {
		cfg.HTTPClient = http.DefaultClient
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = 4
	}
	if cfg.BaseBackoff <= 0 {
		cfg.BaseBackoff = 200 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 5 * time.Second
	}
	return &Client{
		cfg: cfg,
		sleep: func(ctx context.Context, d time.Duration) error {
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-t.C:
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		},
		jitter: func(d time.Duration) time.Duration {
			return d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
		},
		now: time.Now,
	}, nil
}

// Evaluate runs one synchronous evaluation.
func (c *Client) Evaluate(ctx context.Context, req server.EvaluateRequest) (*server.EvaluateResponse, error) {
	var out server.EvaluateResponse
	if err := c.do(ctx, http.MethodPost, "/v1/evaluate", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Sweep submits an asynchronous sweep campaign job.
func (c *Client) Sweep(ctx context.Context, req server.SweepRequest) (server.JobStatus, error) {
	var out server.JobStatus
	err := c.do(ctx, http.MethodPost, "/v1/sweep", req, &out)
	return out, err
}

// Soak submits an asynchronous soak campaign job.
func (c *Client) Soak(ctx context.Context, req server.SoakRequest) (server.JobStatus, error) {
	var out server.JobStatus
	err := c.do(ctx, http.MethodPost, "/v1/soak", req, &out)
	return out, err
}

// Job fetches one job's status.
func (c *Client) Job(ctx context.Context, id string) (server.JobStatus, error) {
	var out server.JobStatus
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(id), nil, &out)
	return out, err
}

// Jobs lists every job the daemon knows about.
func (c *Client) Jobs(ctx context.Context) (server.JobList, error) {
	var out server.JobList
	err := c.do(ctx, http.MethodGet, "/v1/jobs", nil, &out)
	return out, err
}

// Cancel requests cancellation of a job and returns its status.
func (c *Client) Cancel(ctx context.Context, id string) (server.JobStatus, error) {
	var out server.JobStatus
	err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+url.PathEscape(id), nil, &out)
	return out, err
}

// Ready fetches /readyz. A not-ready daemon answers 503; Ready decodes
// the status either way and only reports other failures as errors.
func (c *Client) Ready(ctx context.Context) (server.ReadyStatus, error) {
	var out server.ReadyStatus
	err := c.do(ctx, http.MethodGet, "/readyz", nil, &out)
	var se *StatusError
	if errors.As(err, &se) && se.Code == http.StatusServiceUnavailable {
		return server.ReadyStatus{Ready: false, Draining: true}, nil
	}
	return out, err
}

// Healthz fetches /healthz: liveness plus the load signals the fabric
// coordinator uses for placement.
func (c *Client) Healthz(ctx context.Context) (server.HealthStatus, error) {
	var out server.HealthStatus
	err := c.do(ctx, http.MethodGet, "/healthz", nil, &out)
	return out, err
}

// WaitJob polls a job until it reaches a terminal state or ctx expires.
func (c *Client) WaitJob(ctx context.Context, id string, poll time.Duration) (server.JobStatus, error) {
	if poll <= 0 {
		poll = 250 * time.Millisecond
	}
	for {
		st, err := c.Job(ctx, id)
		if err != nil {
			return st, err
		}
		switch st.State {
		case server.JobDone, server.JobFailed, server.JobCanceled, server.JobInterrupted:
			return st, nil
		}
		if err := c.sleep(ctx, poll); err != nil {
			return st, err
		}
	}
}

// retryable reports whether a reply status is worth retrying: 429 means
// the server shed the request before doing anything with it, and 503
// means it is draining or the queue wait timed out — in every case no
// server-side state was created, so resubmitting is safe.
func retryable(code int) bool {
	return code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable
}

// do runs one request with the retry policy. Transport errors (no
// response at all) are retried for GETs only; mutating requests retry
// only on explicit 429/503 replies, which the server guarantees precede
// any state change.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body []byte
	if in != nil {
		var err error
		if body, err = json.Marshal(in); err != nil {
			return fmt.Errorf("client: encode request: %w", err)
		}
	}
	backoff := c.cfg.BaseBackoff
	var lastErr error
	for attempt := 0; ; attempt++ {
		resp, err := c.send(ctx, method, path, body, out)
		if err == nil {
			return nil
		}
		lastErr = err
		retryAfter := time.Duration(0)
		var se *StatusError
		switch {
		case errors.As(err, &se):
			if !retryable(se.Code) {
				return err
			}
			retryAfter = se.RetryAfter
		case ctx.Err() != nil:
			return err
		case method != http.MethodGet:
			return err
		}
		_ = resp
		if attempt >= c.cfg.MaxRetries {
			return fmt.Errorf("client: giving up after %d attempts: %w", attempt+1, lastErr)
		}
		delay, derr := c.retryDelay(ctx, backoff, retryAfter, lastErr)
		if derr != nil {
			return derr
		}
		if err := c.sleep(ctx, delay); err != nil {
			return fmt.Errorf("client: %w (last failure: %v)", err, lastErr)
		}
		if backoff *= 2; backoff > c.cfg.MaxBackoff {
			backoff = c.cfg.MaxBackoff
		}
	}
}

// retryDelay picks the wait before the next attempt: the jittered
// backoff, overridden by a server Retry-After hint (the server knows
// its backlog better than our schedule does), but never past the
// request deadline — a delay the deadline cannot absorb fails now
// instead of sleeping into certain failure.
func (c *Client) retryDelay(ctx context.Context, backoff, retryAfter time.Duration, lastErr error) (time.Duration, error) {
	delay := c.jitter(backoff)
	if retryAfter > delay {
		delay = retryAfter
	}
	if dl, ok := ctx.Deadline(); ok {
		if remaining := dl.Sub(c.now()); delay >= remaining {
			return 0, fmt.Errorf("client: retry delay %v exceeds request deadline: %w", delay, lastErr)
		}
	}
	return delay, nil
}

// send runs exactly one HTTP exchange.
func (c *Client) send(ctx context.Context, method, path string, body []byte, out any) (*http.Response, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.cfg.BaseURL+path, rd)
	if err != nil {
		return nil, fmt.Errorf("client: build request: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.cfg.HTTPClient.Do(req)
	if err != nil {
		return nil, fmt.Errorf("client: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return resp, fmt.Errorf("client: read response: %w", err)
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		se := &StatusError{Code: resp.StatusCode}
		_ = json.Unmarshal(data, &se.Body) // non-JSON error bodies keep the status text
		se.RetryAfter = parseRetryAfter(resp.Header.Get("Retry-After"), c.now())
		return resp, se
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			return resp, fmt.Errorf("client: decode response: %w", err)
		}
	}
	return resp, nil
}

// parseRetryAfter parses a Retry-After header value in either RFC 9110
// form — delta-seconds or an HTTP-date, measured against now. Absent,
// unparseable, or already-elapsed values yield 0.
func parseRetryAfter(h string, now time.Time) time.Duration {
	if h == "" {
		return 0
	}
	if secs, err := strconv.ParseInt(h, 10, 64); err == nil {
		if secs > 0 {
			return time.Duration(secs) * time.Second
		}
		return 0
	}
	if t, err := http.ParseTime(h); err == nil {
		if d := t.Sub(now); d > 0 {
			return d
		}
	}
	return 0
}

package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"ftspm/internal/server"
)

// testClient builds a client with deterministic seams: identity jitter
// and a sleep recorder that never actually sleeps.
func testClient(t *testing.T, cfg Config) (*Client, *[]time.Duration) {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	var slept []time.Duration
	c.jitter = func(d time.Duration) time.Duration { return d }
	c.sleep = func(ctx context.Context, d time.Duration) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		slept = append(slept, d)
		return nil
	}
	return c, &slept
}

func TestRetryHonorsRetryAfter(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "2")
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(server.ErrorResponse{Error: "shed", RetryAfterMS: 2000})
			return
		}
		json.NewEncoder(w).Encode(server.EvaluateResponse{ElapsedMS: 1})
	}))
	defer ts.Close()

	c, slept := testClient(t, Config{BaseURL: ts.URL, BaseBackoff: 10 * time.Millisecond})
	resp, err := c.Evaluate(context.Background(), server.EvaluateRequest{Workload: "w"})
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if resp.ElapsedMS != 1 || calls.Load() != 3 {
		t.Fatalf("calls = %d resp = %+v, want 3 calls and the success body", calls.Load(), resp)
	}
	// The server hint (2s) dominates the computed backoff (10ms, 20ms).
	want := []time.Duration{2 * time.Second, 2 * time.Second}
	if len(*slept) != len(want) || (*slept)[0] != want[0] || (*slept)[1] != want[1] {
		t.Fatalf("sleeps = %v, want %v", *slept, want)
	}
}

func TestRetryBackoffDoublesWithoutHint(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 3 {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		json.NewEncoder(w).Encode(server.JobStatus{ID: "soak-000001"})
	}))
	defer ts.Close()

	c, slept := testClient(t, Config{
		BaseURL:     ts.URL,
		BaseBackoff: 100 * time.Millisecond,
		MaxBackoff:  250 * time.Millisecond,
	})
	st, err := c.Soak(context.Background(), server.SoakRequest{})
	if err != nil || st.ID != "soak-000001" {
		t.Fatalf("Soak: %v %+v", err, st)
	}
	// 100ms, 200ms, then clamped to MaxBackoff.
	want := []time.Duration{100 * time.Millisecond, 200 * time.Millisecond, 250 * time.Millisecond}
	if len(*slept) != 3 || (*slept)[0] != want[0] || (*slept)[1] != want[1] || (*slept)[2] != want[2] {
		t.Fatalf("sleeps = %v, want %v", *slept, want)
	}
}

func TestNoRetryOnClientError(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		json.NewEncoder(w).Encode(server.ErrorResponse{Error: "bad structure"})
	}))
	defer ts.Close()

	c, slept := testClient(t, Config{BaseURL: ts.URL})
	_, err := c.Evaluate(context.Background(), server.EvaluateRequest{Workload: "w"})
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusBadRequest {
		t.Fatalf("err = %v, want StatusError 400", err)
	}
	if !strings.Contains(se.Error(), "bad structure") {
		t.Fatalf("error text %q should carry the server message", se.Error())
	}
	if calls.Load() != 1 || len(*slept) != 0 {
		t.Fatalf("calls = %d sleeps = %v, want exactly one attempt", calls.Load(), *slept)
	}
}

func TestGiveUpAfterMaxRetries(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	defer ts.Close()

	c, _ := testClient(t, Config{BaseURL: ts.URL, MaxRetries: 2, BaseBackoff: time.Millisecond})
	_, err := c.Evaluate(context.Background(), server.EvaluateRequest{Workload: "w"})
	if err == nil || !strings.Contains(err.Error(), "giving up") {
		t.Fatalf("err = %v, want giving-up error", err)
	}
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusTooManyRequests {
		t.Fatalf("err = %v, want wrapped 429", err)
	}
	if calls.Load() != 3 { // first try + 2 retries
		t.Fatalf("calls = %d, want 3", calls.Load())
	}
}

func TestTransportErrorRetriesGETOnly(t *testing.T) {
	// Nothing listens here; every exchange fails before a response.
	dead := "http://127.0.0.1:1"
	c, slept := testClient(t, Config{BaseURL: dead, MaxRetries: 2, BaseBackoff: time.Millisecond})

	if _, err := c.Job(context.Background(), "soak-000001"); err == nil {
		t.Fatal("GET against dead server should fail")
	}
	if len(*slept) != 2 {
		t.Fatalf("GET sleeps = %v, want 2 retries", *slept)
	}

	*slept = (*slept)[:0]
	if _, err := c.Sweep(context.Background(), server.SweepRequest{}); err == nil {
		t.Fatal("POST against dead server should fail")
	}
	if len(*slept) != 0 {
		t.Fatalf("POST sleeps = %v, want no transport retries for mutations", *slept)
	}
}

func TestWaitJobPollsUntilTerminal(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		st := server.JobStatus{ID: "soak-000001", State: server.JobRunning}
		if calls.Add(1) >= 3 {
			st.State = server.JobDone
		}
		json.NewEncoder(w).Encode(st)
	}))
	defer ts.Close()

	c, slept := testClient(t, Config{BaseURL: ts.URL})
	st, err := c.WaitJob(context.Background(), "soak-000001", 50*time.Millisecond)
	if err != nil || st.State != server.JobDone {
		t.Fatalf("WaitJob: %v %+v", err, st)
	}
	if calls.Load() != 3 || len(*slept) != 2 {
		t.Fatalf("calls = %d sleeps = %v, want 3 polls with 2 waits", calls.Load(), *slept)
	}
}

func TestReadyDecodesNotReady(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(server.ReadyStatus{Ready: false, Draining: true})
	}))
	defer ts.Close()

	c, err := New(Config{BaseURL: ts.URL, MaxRetries: 1, BaseBackoff: time.Millisecond})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	c.jitter = func(d time.Duration) time.Duration { return d }
	c.sleep = func(ctx context.Context, d time.Duration) error { return nil }
	st, err := c.Ready(context.Background())
	if err != nil {
		t.Fatalf("Ready: %v", err)
	}
	if st.Ready {
		t.Fatalf("status = %+v, want not ready", st)
	}
}

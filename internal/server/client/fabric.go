package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"ftspm/internal/fabric/wire"
)

// FabricStream is an open /v1/fabric chunk stream: one wire.Line per
// Next call until the trailer (Done) line or a stream error. The
// caller owns Close.
type FabricStream struct {
	resp *http.Response
	dec  *json.Decoder
}

// Next decodes the next streamed line. io.EOF (or any other decode
// error) before a trailer line means the stream was cut mid-chunk —
// the worker died or the connection dropped — and the caller re-queues
// whatever it has not received.
func (s *FabricStream) Next() (wire.Line, error) {
	var line wire.Line
	err := s.dec.Decode(&line)
	return line, err
}

// Close releases the stream's connection.
func (s *FabricStream) Close() error { return s.resp.Body.Close() }

// Fabric opens a chunk-execution stream on the worker. Pre-stream
// rejections (429 shed, 503 drain) are retried with the client's
// backoff policy — the worker guarantees they precede any execution —
// while errors after the stream opens are the caller's to handle, since
// results may already be in flight. A non-retryable status returns a
// *StatusError (409 = config-hash mismatch, i.e. version skew).
func (c *Client) Fabric(ctx context.Context, freq wire.Request) (*FabricStream, error) {
	body, err := json.Marshal(freq)
	if err != nil {
		return nil, fmt.Errorf("client: encode fabric request: %w", err)
	}
	backoff := c.cfg.BaseBackoff
	var lastErr error
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost,
			c.cfg.BaseURL+"/v1/fabric", bytes.NewReader(body))
		if err != nil {
			return nil, fmt.Errorf("client: build fabric request: %w", err)
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := c.cfg.HTTPClient.Do(req)
		if err != nil {
			// Transport failure on a POST: whether the worker started the
			// chunk is unknowable here. The fabric treats it as a dead
			// worker and re-queues, so no blind retry.
			return nil, fmt.Errorf("client: POST /v1/fabric: %w", err)
		}
		if resp.StatusCode == http.StatusOK {
			return &FabricStream{resp: resp, dec: json.NewDecoder(resp.Body)}, nil
		}
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
		se := &StatusError{Code: resp.StatusCode}
		_ = json.Unmarshal(data, &se.Body)
		se.RetryAfter = parseRetryAfter(resp.Header.Get("Retry-After"), c.now())
		lastErr = se
		if !retryable(se.Code) {
			return nil, se
		}
		if attempt >= c.cfg.MaxRetries {
			return nil, fmt.Errorf("client: giving up after %d attempts: %w", attempt+1, lastErr)
		}
		delay, derr := c.retryDelay(ctx, backoff, se.RetryAfter, lastErr)
		if derr != nil {
			return nil, derr
		}
		if err := c.sleep(ctx, delay); err != nil {
			return nil, fmt.Errorf("client: %w (last failure: %v)", err, lastErr)
		}
		if backoff *= 2; backoff > c.cfg.MaxBackoff {
			backoff = c.cfg.MaxBackoff
		}
	}
}

package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"net/http"
	"time"

	"ftspm/internal/campaign"
	"ftspm/internal/fabric/wire"
)

// This file serves POST /v1/fabric: one chunk of a distributed
// campaign, executed locally and streamed back as NDJSON — one
// wire.Line per finished job, flushed immediately so the coordinator's
// lease watchdog sees liveness, then a trailer line. The endpoint is
// deliberately stateless: no checkpoint is written here (the
// coordinator owns the campaign journal), so a worker that dies
// mid-chunk loses nothing but compute.

// handleFabric executes one campaign chunk and streams its results.
func (s *Server) handleFabric(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "server draining", s.cfg.RetryAfter)
		return
	}
	var req wire.Request
	// Fabric chunks carry job-ID lists, so the body cap is wider than
	// the interactive endpoints'.
	if err := decodeBodyN(w, r, &req, 8<<20); err != nil {
		writeError(w, http.StatusBadRequest, err.Error(), 0)
		return
	}
	src, err := req.Source()
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error(), 0)
		return
	}
	if src.Hash != req.ConfigHash {
		// Version skew: this worker derives different jobs from the
		// same options. Computing anyway would poison the merged report.
		writeError(w, http.StatusConflict, fmt.Sprintf(
			"config hash mismatch: worker derives %s, coordinator sent %s",
			src.Hash, req.ConfigHash), 0)
		return
	}
	if len(req.JobIDs) == 0 {
		writeError(w, http.StatusBadRequest, "empty job list", 0)
		return
	}
	// A worker's cache serves fabric chunks too: jobs this process (or
	// a previous run of this daemon, via the disk tier) already
	// computed stream back without re-executing. Chaos corruption, when
	// enabled, applies at emit time — after the cache — so the drill
	// corrupts every emission whether or not it was memoized.
	if err := src.UseCache(s.cache); err != nil {
		writeError(w, http.StatusInternalServerError, err.Error(), 0)
		return
	}
	jobs, err := src.Jobs(req.JobIDs)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error(), 0)
		return
	}

	sl, admitErr := s.fabLim.admit()
	if admitErr != nil {
		s.brk.RecordShed()
		writeError(w, http.StatusTooManyRequests, "fabric queue full",
			s.fabLim.retryAfter(s.cfg.RetryAfter))
		return
	}
	if err := sl.wait(r.Context()); err != nil {
		s.brk.RecordShed()
		writeError(w, http.StatusServiceUnavailable, "coordinator gone while queued", 0)
		return
	}
	defer sl.release()
	s.inFlight.Add(1)
	defer s.inFlight.Add(-1)

	// The chunk context: canceled by coordinator disconnect or server
	// drain. Either way campaign.Run drains gracefully — in-flight sim
	// jobs finish (and stream, if the connection is still up).
	ctx, cancel := context.WithCancelCause(r.Context())
	defer cancel(nil)
	stop := context.AfterFunc(s.baseCtx, func() { cancel(errDraining) })
	defer stop()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	var streamErr error
	emit := func(line wire.Line) {
		if streamErr != nil {
			return
		}
		if streamErr = enc.Encode(line); streamErr == nil && flusher != nil {
			flusher.Flush()
		}
	}

	cfg := campaign.Config{
		Workers:    req.Parallel,
		JobTimeout: time.Duration(req.JobTimeoutMS) * time.Millisecond,
		Attempts:   req.Retries + 1,
		OnJobResult: func(res campaign.Result[json.RawMessage]) {
			if s.cfg.ChaosCorruptFrac > 0 && res.Status == campaign.StatusDone &&
				chaosPick(res.ID, s.cfg.ChaosCorruptFrac) {
				res.Value = corruptPayload(res.Value)
			}
			// The attestation sum is computed over the exact bytes
			// emitted — after any chaos corruption, so the drill models a
			// compute-level SDC (wrong value, honest checksums) that only
			// audit re-execution can catch, not a wire flip.
			sum, _, err := campaign.SumResult(res)
			if err != nil {
				sum = "" // unattested; the coordinator refuses and re-places
			}
			emit(wire.Line{Result: &res, Sum: sum, Fp: s.cfg.Fingerprint})
		},
	}
	rep, runErr := campaign.Run(ctx, cfg, jobs)

	trailer := wire.Trailer{}
	if rep != nil {
		trailer.Completed = rep.Completed
		trailer.Failed = rep.Failed
	}
	if runErr != nil {
		trailer.Error = runErr.Error()
		// An interrupted chunk is the coordinator's to re-place, not a
		// worker fault; anything else counts against the breaker.
		if !errors.Is(runErr, campaign.ErrIncomplete) {
			s.brk.RecordOutcome(true)
		}
	} else {
		s.brk.RecordOutcome(false)
	}
	emit(wire.Line{Done: &trailer})
}

// chaosPick deterministically selects jobs for chaos corruption: the
// same job ID is corrupted (or not) on every execution, so a drill's
// divergences are reproducible.
func chaosPick(id string, frac float64) bool {
	h := fnv.New32a()
	h.Write([]byte("chaos|" + id))
	return float64(h.Sum32())/float64(^uint32(0)) < frac
}

// corruptPayload flips the low bit of the first decimal digit in a JSON
// payload — a minimal, JSON-valid bit flip, the byzantine-worker shape
// the integrity drill injects.
func corruptPayload(v json.RawMessage) json.RawMessage {
	out := append(json.RawMessage(nil), v...)
	for i, b := range out {
		if b >= '0' && b <= '9' {
			out[i] ^= 0x01
			return out
		}
	}
	return out
}

// decodeBodyN strictly decodes a JSON request body with a caller-chosen
// size cap.
func decodeBodyN(w http.ResponseWriter, r *http.Request, v any, n int64) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, n))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("bad request body: %w", err)
	}
	return nil
}

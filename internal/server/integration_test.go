package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"ftspm/internal/faults"
	"ftspm/internal/server"
	"ftspm/internal/server/client"
)

func startDaemon(t *testing.T, dataDir string) (*server.Server, *client.Client) {
	t.Helper()
	srv, err := server.New(server.Config{DataDir: dataDir})
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	cl, err := client.New(client.Config{BaseURL: ts.URL})
	if err != nil {
		t.Fatalf("client.New: %v", err)
	}
	return srv, cl
}

// soakParams is the shared job spec of the drain/resume tests; both the
// interrupted-then-resumed run and the golden run must use identical
// parameters for the checkpoint config hash (and the comparison) to be
// meaningful.
func soakParams(checkpoint string, resume bool) server.SoakRequest {
	return server.SoakRequest{
		Trials:     8,
		Scale:      0.05,
		Strike:     0.01,
		Seed:       99,
		Workers:    1,
		Checkpoint: checkpoint,
		Resume:     resume,
		// Scalar path: drain must land while trials are still in
		// flight, and the packed engine finishes all 8 in one trace
		// pass before the Drain call can race it. Packed/scalar output
		// equivalence is pinned by experiments' lane tests.
		Lanes: 1,
	}
}

func runToCompletion(t *testing.T, cl *client.Client, req server.SoakRequest) server.JobStatus {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	job, err := cl.Soak(ctx, req)
	if err != nil {
		t.Fatalf("submit soak: %v", err)
	}
	st, err := cl.WaitJob(ctx, job.ID, 20*time.Millisecond)
	if err != nil {
		t.Fatalf("wait soak: %v", err)
	}
	return st
}

// TestSoakJobLifecycle runs a real (tiny) soak campaign end to end
// through the HTTP API and the retrying client.
func TestSoakJobLifecycle(t *testing.T) {
	_, cl := startDaemon(t, t.TempDir())
	st := runToCompletion(t, cl, server.SoakRequest{
		Trials: 2, Scale: 0.02, Strike: 0.01, Seed: 7, Workers: 1,
	})
	if st.State != server.JobDone {
		t.Fatalf("job state = %q (error %q), want done", st.State, st.Error)
	}
	var res server.SoakResult
	if err := json.Unmarshal(st.Result, &res); err != nil {
		t.Fatalf("decode result: %v\n%s", err, st.Result)
	}
	if len(res.Reports) != 1 || res.Reports[0].Trials != 2 || res.Reports[0].Accesses == 0 {
		t.Fatalf("unexpected soak result: %+v", res)
	}
	if res.Campaign != nil {
		t.Fatalf("clean campaign should omit salvage status, got %+v", res.Campaign)
	}
	jobs, err := cl.Jobs(context.Background())
	if err != nil || len(jobs.Jobs) != 1 {
		t.Fatalf("job list: %v %+v, want exactly the one job", err, jobs)
	}
}

// TestStormSoakJobAndHealthCounters runs a storm soak with the
// adaptive defenses through the HTTP API and checks the /healthz storm
// counters: the job is counted, and the packed engine's refusal of the
// storm shows up as scalar fallbacks.
func TestStormSoakJobAndHealthCounters(t *testing.T) {
	_, cl := startDaemon(t, t.TempDir())
	st := runToCompletion(t, cl, server.SoakRequest{
		Trials: 2, Scale: 0.02, Seed: 7, Workers: 1,
		Storm: &faults.StormConfig{
			StormStrikesPerAccess: 0.25,
			MeanCalmAccesses:      500,
			MeanStormAccesses:     200,
		},
		AdaptiveScrub: true,
	})
	if st.State != server.JobDone {
		t.Fatalf("job state = %q (error %q), want done", st.State, st.Error)
	}
	var res server.SoakResult
	if err := json.Unmarshal(st.Result, &res); err != nil {
		t.Fatalf("decode result: %v\n%s", err, st.Result)
	}
	if len(res.Reports) != 1 || res.Reports[0].Strikes == 0 {
		t.Fatalf("storm soak injected nothing: %+v", res)
	}
	hs, err := cl.Healthz(context.Background())
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	if hs.Storm == nil {
		t.Fatal("healthz omits the storm counters")
	}
	if hs.Storm.Jobs == 0 {
		t.Errorf("storm jobs served = 0, want >= 1")
	}
	if hs.Storm.ScalarFallbacks == 0 {
		t.Errorf("scalar fallbacks = 0: the packed engine should have declined the storm")
	}
}

// TestJobCancelIsResumable cancels a long soak mid-run: the campaign
// drains the in-flight trial, journals it, and the job lands in
// canceled with a checkpoint marked resumable.
func TestJobCancelIsResumable(t *testing.T) {
	_, cl := startDaemon(t, t.TempDir())
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	job, err := cl.Soak(ctx, server.SoakRequest{
		Trials: 500, Scale: 0.02, Strike: 0.01, Seed: 1, Workers: 1,
		Checkpoint: "cancelme.ckpt",
	})
	if err != nil {
		t.Fatalf("submit soak: %v", err)
	}
	waitState(t, cl, job.ID, server.JobRunning)
	if _, err := cl.Cancel(ctx, job.ID); err != nil {
		t.Fatalf("cancel: %v", err)
	}
	st, err := cl.WaitJob(ctx, job.ID, 20*time.Millisecond)
	if err != nil {
		t.Fatalf("wait canceled job: %v", err)
	}
	if st.State != server.JobCanceled {
		t.Fatalf("state = %q (error %q), want canceled", st.State, st.Error)
	}
	if !st.Resumable || st.Checkpoint != "cancelme.ckpt" {
		t.Fatalf("canceled job not resumable: %+v", st)
	}
	if st.Error == "" {
		t.Fatal("canceled job should carry the cancellation cause")
	}
}

func waitState(t *testing.T, cl *client.Client, id, want string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		st, err := cl.Job(context.Background(), id)
		if err != nil {
			t.Fatalf("poll job: %v", err)
		}
		if st.State == want {
			return
		}
		switch st.State {
		case server.JobDone, server.JobFailed, server.JobCanceled, server.JobInterrupted:
			t.Fatalf("job reached terminal state %q (error %q) before %q", st.State, st.Error, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job never reached state %q", want)
}

// TestDrainInterruptsAndResumesByteIdentical is the acceptance test for
// graceful drain: SIGTERM-style Drain during an in-flight soak job
// checkpoints it (state interrupted, resumable); resubmitting the same
// parameters against the same data dir with resume=true completes it,
// and the final artifact is byte-identical to an uninterrupted golden
// run.
func TestDrainInterruptsAndResumesByteIdentical(t *testing.T) {
	sharedDir := t.TempDir()

	// Phase 1: start the job and drain the daemon mid-run.
	srv1, cl1 := startDaemon(t, sharedDir)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	job, err := cl1.Soak(ctx, soakParams("drainme.ckpt", false))
	if err != nil {
		t.Fatalf("submit soak: %v", err)
	}
	waitState(t, cl1, job.ID, server.JobRunning)
	if err := srv1.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	st, err := cl1.Job(ctx, job.ID)
	if err != nil {
		t.Fatalf("post-drain status: %v", err)
	}
	if st.State != server.JobInterrupted || !st.Resumable {
		t.Fatalf("post-drain job = %+v, want interrupted and resumable", st)
	}

	// Phase 2: a fresh daemon on the same data dir resumes the job.
	_, cl2 := startDaemon(t, sharedDir)
	resumed := runToCompletion(t, cl2, soakParams("drainme.ckpt", true))
	if resumed.State != server.JobDone {
		t.Fatalf("resumed job = %q (error %q), want done", resumed.State, resumed.Error)
	}

	// Phase 3: golden uninterrupted run with identical parameters.
	_, cl3 := startDaemon(t, t.TempDir())
	golden := runToCompletion(t, cl3, soakParams("golden.ckpt", false))
	if golden.State != server.JobDone {
		t.Fatalf("golden job = %q (error %q), want done", golden.State, golden.Error)
	}

	if !bytes.Equal(resumed.Result, golden.Result) {
		t.Fatalf("resumed artifact differs from golden:\nresumed: %s\ngolden:  %s",
			resumed.Result, golden.Result)
	}
}

// TestEvaluateEndToEnd runs one real synchronous evaluation through the
// client.
func TestEvaluateEndToEnd(t *testing.T) {
	_, cl := startDaemon(t, t.TempDir())
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	resp, err := cl.Evaluate(ctx, server.EvaluateRequest{
		Workload: "casestudy", Structure: "ftspm", Scale: 0.05,
	})
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if resp.Run.Cycles == 0 || resp.Run.Accesses == 0 {
		t.Fatalf("empty evaluation result: %+v", resp.Run)
	}
}

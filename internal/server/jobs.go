package server

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Job states. Terminal states are done, failed, canceled, interrupted;
// canceled and interrupted jobs with a checkpoint are resumable.
const (
	JobQueued      = "queued"
	JobRunning     = "running"
	JobDone        = "done"
	JobFailed      = "failed"
	JobCanceled    = "canceled"
	JobInterrupted = "interrupted"
)

// Drain/cancel causes attached to job contexts, surfaced in JobStatus.
var (
	errDraining    = fmt.Errorf("server draining")
	errJobCanceled = fmt.Errorf("canceled by client")
)

// job is one asynchronous campaign job.
type job struct {
	id         string
	kind       string
	checkpoint string // journal file name inside the data dir

	cancel context.CancelCauseFunc
	done   chan struct{}

	mu        sync.Mutex
	state     string
	errText   string
	result    json.RawMessage
	resumable bool
	created   time.Time
	started   time.Time
	finished  time.Time
}

func (j *job) setRunning(now time.Time) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = JobRunning
	j.started = now
}

// finish moves the job to a terminal state exactly once.
func (j *job) finish(now time.Time, state, errText string, result json.RawMessage, resumable bool) {
	j.mu.Lock()
	j.state = state
	j.errText = errText
	j.result = result
	j.resumable = resumable
	j.finished = now
	j.mu.Unlock()
	close(j.done)
}

// status snapshots the job for the wire.
func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return JobStatus{
		ID:         j.id,
		Kind:       j.kind,
		State:      j.state,
		Error:      j.errText,
		Checkpoint: j.checkpoint,
		Resumable:  j.resumable,
		Result:     j.result,
		Created:    fmtTime(j.created),
		Started:    fmtTime(j.started),
		Finished:   fmtTime(j.finished),
	}
}

// jobSet is the in-memory job registry. Job metadata lives for the
// daemon's lifetime; what survives restarts is each job's checkpoint
// file, which a client resumes by resubmitting with the same
// parameters, checkpoint name, and resume=true.
type jobSet struct {
	mu   sync.Mutex
	jobs map[string]*job
	seq  int
}

func newJobSet() *jobSet {
	return &jobSet{jobs: make(map[string]*job)}
}

// create registers a new queued job and assigns its ID.
func (js *jobSet) create(kind, checkpoint string, now time.Time) *job {
	js.mu.Lock()
	defer js.mu.Unlock()
	js.seq++
	j := &job{
		id:         fmt.Sprintf("%s-%06d", kind, js.seq),
		kind:       kind,
		checkpoint: checkpoint,
		state:      JobQueued,
		created:    now,
		done:       make(chan struct{}),
	}
	js.jobs[j.id] = j
	return j
}

func (js *jobSet) get(id string) (*job, bool) {
	js.mu.Lock()
	defer js.mu.Unlock()
	j, ok := js.jobs[id]
	return j, ok
}

// list snapshots every job, oldest first.
func (js *jobSet) list() []JobStatus {
	js.mu.Lock()
	all := make([]*job, 0, len(js.jobs))
	for _, j := range js.jobs {
		all = append(all, j)
	}
	js.mu.Unlock()
	sort.Slice(all, func(a, b int) bool { return all[a].id < all[b].id })
	out := make([]JobStatus, len(all))
	for i, j := range all {
		out[i] = j.status()
	}
	return out
}

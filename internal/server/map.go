package server

import (
	"context"
	"errors"
	"net/http"

	"ftspm/internal/core"
	"ftspm/internal/experiments"
	"ftspm/internal/workloads"
)

// This file serves POST /v1/map: "place this program" as a batch,
// answered by composing content-addressed cache entries. Each
// requested (workload, structure) pair resolves through the same key
// space /v1/evaluate and sweep jobs populate, so a daemon that has run
// a sweep — or served the pairs one at a time — answers the whole
// batch from memo lookups and only computes the misses. This is the
// "mapping as a service" shape from the roadmap: the MDA mapping is a
// static offline decision, so serving it is a pure lookup problem.

// MapRequest is the body of POST /v1/map. Empty Workloads means the
// full suite; empty Structures means all evaluated organizations.
type MapRequest struct {
	Workloads  []string `json:"workloads,omitempty"`
	Structures []string `json:"structures,omitempty"`
	// Scale multiplies the reference trace length (0 = server default).
	Scale float64 `json:"scale,omitempty"`
	// TimeoutMS bounds the whole batch (0 = server default; clamped).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// MapEntry is one (workload, structure) placement. The fields are
// derived purely from the evaluation outcome, so an entry is
// byte-identical whether it was computed for this request or served
// from the cache.
type MapEntry struct {
	Workload  string `json:"workload"`
	Structure string `json:"structure"`
	// Mapping is the MDA decision: the block placement, the per-block
	// decision trail, and the estimated overheads.
	Mapping core.Mapping `json:"mapping"`
	// Run holds the flattened evaluation metrics for the placement.
	Run experiments.RunSummary `json:"run"`
}

// MapResponse is the reply to a completed map batch. Entries are
// ordered workload-major in request order. CacheHits/CacheMisses
// describe this request only; they live outside the entries so the
// placement artifact itself stays identical across warm and cold runs.
type MapResponse struct {
	Entries     []MapEntry `json:"entries"`
	CacheHits   int        `json:"cache_hits"`
	CacheMisses int        `json:"cache_misses"`
	ElapsedMS   int64      `json:"elapsed_ms"`
}

func (s *Server) handleMap(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "server draining", s.cfg.RetryAfter)
		return
	}
	var req MapRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err.Error(), 0)
		return
	}
	names := req.Workloads
	if len(names) == 0 {
		names = workloads.Names()
	}
	structures := make([]core.Structure, 0, len(req.Structures))
	for _, name := range req.Structures {
		st, err := ParseStructure(name)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error(), 0)
			return
		}
		structures = append(structures, st)
	}
	if len(structures) == 0 {
		structures = core.Structures()
	}
	opts := experiments.Options{Scale: req.Scale}
	if opts.Scale == 0 {
		opts.Scale = s.cfg.DefaultScale
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.timeout(req.TimeoutMS))
	defer cancel()

	// The batch holds one evaluate slot for its whole composition: it
	// competes with single evaluates as one unit of that class rather
	// than flooding the limiter with its fan-out.
	sl, admitErr := s.evalLim.admit()
	if admitErr != nil {
		s.brk.RecordShed()
		writeError(w, http.StatusTooManyRequests, "evaluate queue full",
			s.evalLim.retryAfter(s.cfg.RetryAfter))
		return
	}
	if err := sl.wait(ctx); err != nil {
		s.brk.RecordShed()
		writeError(w, http.StatusServiceUnavailable, "deadline exceeded while queued",
			s.evalLim.retryAfter(s.cfg.RetryAfter))
		return
	}
	defer sl.release()

	start := s.nowFn()
	resp := MapResponse{Entries: make([]MapEntry, 0, len(names)*len(structures))}
	for _, name := range names {
		for _, st := range structures {
			out, hit, err := experiments.EvaluateCachedContext(ctx, s.cache, name, st, opts)
			if err != nil {
				switch {
				case errors.Is(err, context.DeadlineExceeded):
					s.brk.RecordOutcome(true)
					writeError(w, http.StatusGatewayTimeout, "map deadline exceeded", 0)
				case errors.Is(err, context.Canceled):
					writeError(w, http.StatusServiceUnavailable, "map canceled", 0)
				case errors.Is(err, experiments.ErrUnknownWorkload):
					writeError(w, http.StatusBadRequest, err.Error(), 0)
				default:
					s.brk.RecordOutcome(true)
					writeError(w, http.StatusInternalServerError, err.Error(), 0)
				}
				return
			}
			if hit {
				resp.CacheHits++
			} else {
				resp.CacheMisses++
			}
			resp.Entries = append(resp.Entries, MapEntry{
				Workload:  name,
				Structure: st.String(),
				Mapping:   out.Mapping,
				Run:       experiments.SummarizeOutcome(out),
			})
		}
	}
	s.brk.RecordOutcome(false)
	resp.ElapsedMS = s.nowFn().Sub(start).Milliseconds()
	writeJSON(w, http.StatusOK, resp)
}

package server

import (
	"bytes"
	"encoding/json"
	"testing"
)

// /v1/map composes per-(workload, structure) cache entries: a repeated
// batch is answered entirely from the cache with byte-identical
// entries, and /v1/evaluate shares the same key space.
func TestMapEndpointComposesCache(t *testing.T) {
	_, ts := newTestServer(t, Config{DefaultScale: 0.02})

	body := `{"workloads":["sha","fft"],"structures":["ftspm","sram"]}`
	resp1, data1 := postJSON(t, ts.URL+"/v1/map", body)
	if resp1.StatusCode != 200 {
		t.Fatalf("cold map: %d %s", resp1.StatusCode, data1)
	}
	var cold MapResponse
	if err := json.Unmarshal(data1, &cold); err != nil {
		t.Fatal(err)
	}
	if len(cold.Entries) != 4 {
		t.Fatalf("entries = %d, want 4", len(cold.Entries))
	}
	if cold.CacheMisses != 4 || cold.CacheHits != 0 {
		t.Fatalf("cold: hits=%d misses=%d, want 0/4", cold.CacheHits, cold.CacheMisses)
	}
	if len(cold.Entries[0].Mapping.Placement) == 0 {
		t.Fatal("entry carries no placement")
	}

	resp2, data2 := postJSON(t, ts.URL+"/v1/map", body)
	if resp2.StatusCode != 200 {
		t.Fatalf("warm map: %d %s", resp2.StatusCode, data2)
	}
	var warm MapResponse
	if err := json.Unmarshal(data2, &warm); err != nil {
		t.Fatal(err)
	}
	if warm.CacheHits != 4 || warm.CacheMisses != 0 {
		t.Fatalf("warm: hits=%d misses=%d, want 4/0", warm.CacheHits, warm.CacheMisses)
	}
	ce, _ := json.Marshal(cold.Entries)
	we, _ := json.Marshal(warm.Entries)
	if !bytes.Equal(ce, we) {
		t.Fatal("warm map entries diverge from cold run")
	}

	// /v1/evaluate hits the entry the map batch populated, flagged in
	// the header with an unchanged body shape.
	er, edata := postJSON(t, ts.URL+"/v1/evaluate", `{"workload":"sha","structure":"ftspm","scale":0.02}`)
	if er.StatusCode != 200 {
		t.Fatalf("evaluate: %d %s", er.StatusCode, edata)
	}
	if got := er.Header.Get("X-Ftspm-Cache"); got != "hit" {
		t.Fatalf("X-Ftspm-Cache = %q, want hit", got)
	}
	var ev struct {
		Run json.RawMessage `json:"run"`
	}
	if err := json.Unmarshal(edata, &ev); err != nil || len(ev.Run) == 0 {
		t.Fatalf("evaluate body: %v %s", err, edata)
	}

	// /healthz surfaces the counters.
	var hs HealthStatus
	getJSON(t, ts.URL+"/healthz", &hs)
	if hs.Cache == nil || hs.Cache.Hits == 0 || hs.Cache.Misses == 0 {
		t.Fatalf("healthz cache stats = %+v, want hits and misses", hs.Cache)
	}

	// Unknown structure and workload are client errors.
	if r, _ := postJSON(t, ts.URL+"/v1/map", `{"structures":["bogus"]}`); r.StatusCode != 400 {
		t.Fatalf("bogus structure: %d, want 400", r.StatusCode)
	}
	if r, _ := postJSON(t, ts.URL+"/v1/map", `{"workloads":["nope"]}`); r.StatusCode != 400 {
		t.Fatalf("bogus workload: %d, want 400", r.StatusCode)
	}
}

// With NoCache everything still works — recomputed every time, miss
// headers, no /healthz stats block.
func TestMapEndpointNoCache(t *testing.T) {
	_, ts := newTestServer(t, Config{DefaultScale: 0.02, NoCache: true})
	body := `{"workloads":["sha"],"structures":["ftspm"]}`
	for i := 0; i < 2; i++ {
		resp, data := postJSON(t, ts.URL+"/v1/map", body)
		if resp.StatusCode != 200 {
			t.Fatalf("map: %d %s", resp.StatusCode, data)
		}
		var mr MapResponse
		if err := json.Unmarshal(data, &mr); err != nil {
			t.Fatal(err)
		}
		if mr.CacheHits != 0 || mr.CacheMisses != 1 {
			t.Fatalf("run %d: hits=%d misses=%d, want 0/1", i, mr.CacheHits, mr.CacheMisses)
		}
	}
	er, _ := postJSON(t, ts.URL+"/v1/evaluate", `{"workload":"sha","structure":"ftspm","scale":0.02}`)
	if got := er.Header.Get("X-Ftspm-Cache"); got != "miss" {
		t.Fatalf("X-Ftspm-Cache = %q, want miss", got)
	}
	var hs HealthStatus
	getJSON(t, ts.URL+"/healthz", &hs)
	if hs.Cache != nil {
		t.Fatalf("healthz cache stats present with NoCache: %+v", hs.Cache)
	}
}

package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ftspm/internal/campaign"
	"ftspm/internal/core"
	"ftspm/internal/experiments"
	"ftspm/internal/fabric/wire"
	"ftspm/internal/resultcache"
	"ftspm/internal/spm"
)

// Config parameterizes the daemon. The zero value of every field
// selects the default in parentheses.
type Config struct {
	// DataDir holds the per-job campaign checkpoints (required).
	DataDir string
	// MaxEvaluate bounds concurrently-running synchronous evaluates
	// (GOMAXPROCS via the limiter default of 4).
	MaxEvaluate int
	// EvaluateQueue bounds evaluates waiting for a slot; beyond it the
	// server sheds with 429 (2 × MaxEvaluate).
	EvaluateQueue int
	// MaxCampaigns bounds concurrently-running async campaign jobs (1).
	MaxCampaigns int
	// CampaignQueue bounds queued campaign jobs (4).
	CampaignQueue int
	// MaxFabric bounds concurrently-executing fabric chunks (1).
	MaxFabric int
	// FabricQueue bounds fabric chunks waiting for a slot; beyond it
	// the worker sheds with 429 so the coordinator places the chunk
	// elsewhere (2).
	FabricQueue int
	// DefaultTimeout is the evaluate deadline when the request does not
	// carry one (30s); MaxTimeout clamps client-supplied deadlines
	// (2m).
	DefaultTimeout, MaxTimeout time.Duration
	// RetryAfter is the base unit of the Retry-After hint on shed
	// responses, scaled by the backlog (250ms).
	RetryAfter time.Duration
	// DefaultScale is the evaluate/sweep trace scale when the request
	// does not set one (0 = the experiments default).
	DefaultScale float64
	// Breaker configures the readiness circuit breaker.
	Breaker BreakerConfig
	// Fingerprint overrides the build fingerprint served on /healthz
	// and stamped on fabric result lines (default wire.Fingerprint()).
	// An override is an operator's escape hatch — and the test seam for
	// version-skew scenarios.
	Fingerprint string
	// ChaosCorruptFrac, when > 0, makes the fabric endpoint corrupt
	// that fraction of streamed result payloads — recomputing the
	// attestation sum over the corrupted bytes, so the corruption is
	// NOT detectable by hash check, only by audit re-execution. It
	// exists for integrity drills (scripts/integrity_smoke.sh): a
	// deliberate byzantine worker to verify the coordinator's audit
	// machinery quarantines it. Never set it in production.
	ChaosCorruptFrac float64
	// NoCache disables the content-addressed result cache; every
	// request recomputes. CachePath, when set, adds the cache's on-disk
	// tier (an append-only segment under the operator's chosen path,
	// versioned by the build fingerprint) so memoized results survive
	// daemon restarts. CacheEntries/CacheBytes bound the in-memory tier
	// (0 = resultcache defaults).
	NoCache      bool
	CachePath    string
	CacheEntries int
	CacheBytes   int64
}

func (c Config) withDefaults() Config {
	if c.MaxEvaluate <= 0 {
		c.MaxEvaluate = 4
	}
	if c.EvaluateQueue <= 0 {
		c.EvaluateQueue = 2 * c.MaxEvaluate
	}
	if c.MaxCampaigns <= 0 {
		c.MaxCampaigns = 1
	}
	if c.CampaignQueue <= 0 {
		c.CampaignQueue = 4
	}
	if c.MaxFabric <= 0 {
		c.MaxFabric = 1
	}
	if c.FabricQueue <= 0 {
		c.FabricQueue = 2
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 2 * time.Minute
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = 250 * time.Millisecond
	}
	if c.Fingerprint == "" {
		c.Fingerprint = wire.Fingerprint()
	}
	return c
}

// Server is the ftspmd request-handling core: admission control, load
// shedding, deadlines, panic isolation, the readiness circuit breaker,
// the async job registry, and graceful drain. It is transport-agnostic
// — the caller owns the http.Server wrapping Handler().
type Server struct {
	cfg     Config
	evalLim *limiter
	campLim *limiter
	fabLim  *limiter
	brk     *Breaker
	jobs    *jobSet
	mux     *http.ServeMux
	// cache is the content-addressed result cache behind every
	// endpoint (nil with Config.NoCache). It is a trust anchor: only
	// results this process computed enter it — never bytes received
	// from remote workers — so a cache hit is always as trustworthy as
	// a local run.
	cache *resultcache.Cache

	baseCtx    context.Context
	baseCancel context.CancelCauseFunc
	wg         sync.WaitGroup
	draining   atomic.Bool
	// inFlight counts executing work units — running async jobs plus
	// fabric chunks — for the /healthz load report.
	inFlight atomic.Int64
	// stormJobs counts soak campaigns served in storm mode (/healthz).
	stormJobs atomic.Uint64

	// nowFn and evalFn are test seams: the clock, and the synchronous
	// evaluation body (replaced by overload tests with gated stubs).
	nowFn  func() time.Time
	evalFn func(ctx context.Context, req EvaluateRequest, structure core.Structure) (*EvaluateResponse, error)
}

// New builds a Server and creates its data dir.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.DataDir == "" {
		return nil, errors.New("server: Config.DataDir is required")
	}
	if err := os.MkdirAll(cfg.DataDir, 0o755); err != nil {
		return nil, fmt.Errorf("server: data dir: %w", err)
	}
	s := &Server{
		cfg:     cfg,
		evalLim: newLimiter("evaluate", cfg.MaxEvaluate, cfg.EvaluateQueue),
		campLim: newLimiter("campaign", cfg.MaxCampaigns, cfg.CampaignQueue),
		fabLim:  newLimiter("fabric", cfg.MaxFabric, cfg.FabricQueue),
		jobs:    newJobSet(),
		nowFn:   time.Now,
	}
	s.brk = NewBreaker(cfg.Breaker, func() time.Time { return s.nowFn() })
	s.baseCtx, s.baseCancel = context.WithCancelCause(context.Background())
	s.evalFn = s.evaluate
	if !cfg.NoCache {
		cache, err := resultcache.Open(resultcache.Config{
			MaxEntries:  cfg.CacheEntries,
			MaxBytes:    cfg.CacheBytes,
			Path:        cfg.CachePath,
			Fingerprint: cfg.Fingerprint,
		})
		if err != nil {
			return nil, fmt.Errorf("server: result cache: %w", err)
		}
		s.cache = cache
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/evaluate", s.handleEvaluate)
	s.mux.HandleFunc("POST /v1/map", s.handleMap)
	s.mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	s.mux.HandleFunc("POST /v1/soak", s.handleSoak)
	s.mux.HandleFunc("POST /v1/fabric", s.handleFabric)
	s.mux.HandleFunc("GET /v1/jobs", s.handleJobList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	return s, nil
}

// Handler returns the HTTP handler with panic isolation applied: a
// panicking request answers 500 alone (and counts as an error outcome
// on the breaker) while the process keeps serving.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if p := recover(); p != nil {
				s.brk.RecordOutcome(true)
				// Best-effort: if the handler already wrote, this is a no-op.
				writeJSON(w, http.StatusInternalServerError, ErrorResponse{
					Error: fmt.Sprintf("internal panic: %v", p),
				})
				_ = debug.Stack() // keep the stack retrievable under a debugger
			}
		}()
		s.mux.ServeHTTP(w, r)
	})
}

// Draining reports whether the server has begun its drain.
func (s *Server) Draining() bool { return s.draining.Load() }

// Drain gracefully stops the server: admission closes (submit
// endpoints answer 503, /readyz goes not-ready), every in-flight async
// job's context is canceled — which makes its campaign finish the sim
// jobs already running, journal them, and return incomplete — and
// Drain waits for all job goroutines to settle or ctx to expire.
// In-flight synchronous evaluates are the transport's to drain
// (http.Server.Shutdown waits for them); their request contexts are
// deliberately left alone so they finish within their own deadlines.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	s.baseCancel(errDraining)
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		if s.cache != nil {
			// Release the disk tier only after every job settled; the
			// segment is complete and survives the restart.
			return s.cache.Close()
		}
		return nil
	case <-ctx.Done():
		return fmt.Errorf("server: drain interrupted: %w", context.Cause(ctx))
	}
}

// timeout clamps a client-requested deadline into [1ms, MaxTimeout],
// defaulting when unset.
func (s *Server) timeout(ms int64) time.Duration {
	if ms <= 0 {
		return s.cfg.DefaultTimeout
	}
	d := time.Duration(ms) * time.Millisecond
	if d > s.cfg.MaxTimeout {
		d = s.cfg.MaxTimeout
	}
	return d
}

// evaluate is the production evaluation body behind /v1/evaluate. It
// runs through the result cache: a repeated (workload, structure,
// scale) request — or one whose sub-problem an earlier sweep already
// computed — decodes the memoized outcome instead of simulating, and
// concurrent identical requests collapse onto one execution. The
// response body is byte-identical either way; cache status travels in
// the X-Ftspm-Cache header only.
func (s *Server) evaluate(ctx context.Context, req EvaluateRequest, structure core.Structure) (*EvaluateResponse, error) {
	opts := experiments.Options{Scale: req.Scale}
	if opts.Scale == 0 {
		opts.Scale = s.cfg.DefaultScale
	}
	out, hit, err := experiments.EvaluateCachedContext(ctx, s.cache, req.Workload, structure, opts)
	if err != nil {
		return nil, err
	}
	return &EvaluateResponse{Run: experiments.SummarizeOutcome(out), cached: hit}, nil
}

func (s *Server) handleEvaluate(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "server draining", s.cfg.RetryAfter)
		return
	}
	var req EvaluateRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err.Error(), 0)
		return
	}
	if req.Workload == "" {
		writeError(w, http.StatusBadRequest, "workload is required", 0)
		return
	}
	structure, err := ParseStructure(req.Structure)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error(), 0)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.timeout(req.TimeoutMS))
	defer cancel()

	sl, admitErr := s.evalLim.admit()
	if admitErr != nil {
		s.brk.RecordShed()
		writeError(w, http.StatusTooManyRequests, "evaluate queue full",
			s.evalLim.retryAfter(s.cfg.RetryAfter))
		return
	}
	if err := sl.wait(ctx); err != nil {
		// Admitted but the deadline ran out in the queue: saturation,
		// not a server fault.
		s.brk.RecordShed()
		writeError(w, http.StatusServiceUnavailable, "deadline exceeded while queued",
			s.evalLim.retryAfter(s.cfg.RetryAfter))
		return
	}
	defer sl.release()

	start := s.nowFn()
	resp, err := s.evalFn(ctx, req, structure)
	if err != nil {
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			s.brk.RecordOutcome(true)
			writeError(w, http.StatusGatewayTimeout, "evaluation deadline exceeded", 0)
		case errors.Is(err, context.Canceled):
			// The client went away; the response is a formality.
			writeError(w, http.StatusServiceUnavailable, "evaluation canceled", 0)
		case errors.Is(err, experiments.ErrUnknownWorkload):
			writeError(w, http.StatusBadRequest, err.Error(), 0)
		default:
			s.brk.RecordOutcome(true)
			writeError(w, http.StatusInternalServerError, err.Error(), 0)
		}
		return
	}
	s.brk.RecordOutcome(false)
	resp.ElapsedMS = s.nowFn().Sub(start).Milliseconds()
	// Cache status is a header, not a body field: cached and uncached
	// responses must stay byte-identical.
	if resp.cached {
		w.Header().Set("X-Ftspm-Cache", "hit")
	} else {
		w.Header().Set("X-Ftspm-Cache", "miss")
	}
	writeJSON(w, http.StatusOK, resp)
}

// checkpointName validates client-chosen checkpoint file names: a
// single path component, no separators or dot-traversal.
var checkpointName = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]*$`)

// resolveCheckpoint picks the job's journal file name.
func resolveCheckpoint(requested, jobDefault string) (string, error) {
	if requested == "" {
		return jobDefault, nil
	}
	if !checkpointName.MatchString(requested) || requested == "." || requested == ".." {
		return "", fmt.Errorf("invalid checkpoint name %q (single path component, [A-Za-z0-9._-])", requested)
	}
	return requested, nil
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err.Error(), 0)
		return
	}
	if req.Resume && req.Checkpoint == "" {
		writeError(w, http.StatusBadRequest, "resume requires a named checkpoint", 0)
		return
	}
	scale := req.Scale
	if scale == 0 {
		scale = s.cfg.DefaultScale
	}
	s.submitJob(w, "sweep", req.Checkpoint, func(ctx context.Context, ckptPath string) (json.RawMessage, error) {
		opts := experiments.Options{Scale: scale}
		cc := experiments.CampaignConfig{
			Checkpoint: ckptPath,
			Resume:     req.Resume,
			Workers:    req.Workers,
			Retries:    req.Retries,
			JobTimeout: time.Duration(req.JobTimeoutMS) * time.Millisecond,
			Cache:      s.cache,
		}
		sw, status, runErr := experiments.RunSweepCampaign(ctx, opts, cc)
		if sw == nil {
			return nil, runErr
		}
		sum, err := experiments.SummarizePartial(sw, status)
		if err != nil {
			return nil, err
		}
		payload, err := json.Marshal(sum)
		if err != nil {
			return nil, err
		}
		return payload, runErr
	})
}

func (s *Server) handleSoak(w http.ResponseWriter, r *http.Request) {
	var req SoakRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err.Error(), 0)
		return
	}
	if req.Resume && req.Checkpoint == "" {
		writeError(w, http.StatusBadRequest, "resume requires a named checkpoint", 0)
		return
	}
	structures := make([]core.Structure, 0, len(req.Structures))
	for _, name := range req.Structures {
		st, err := ParseStructure(name)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error(), 0)
			return
		}
		structures = append(structures, st)
	}
	strike := req.Strike
	if strike == 0 && req.Storm == nil {
		strike = 0.01
	}
	opts := experiments.SoakOptions{
		Workload:         req.Workload,
		Trials:           req.Trials,
		Scale:            req.Scale,
		StrikesPerAccess: strike,
		Seed:             req.Seed,
		Lanes:            req.Lanes,
		Storm:            req.Storm,
	}
	if !req.NoRecovery {
		rec := spm.DefaultRecovery()
		if req.AdaptiveScrub {
			ad := spm.DefaultAdaptive()
			rec.Adaptive = &ad
		}
		opts.Recovery = &rec
	}
	if req.Storm != nil {
		s.stormJobs.Add(1)
	}
	s.submitJob(w, "soak", req.Checkpoint, func(ctx context.Context, ckptPath string) (json.RawMessage, error) {
		cc := experiments.CampaignConfig{
			Checkpoint: ckptPath,
			Resume:     req.Resume,
			Workers:    req.Workers,
			Retries:    req.Retries,
			JobTimeout: time.Duration(req.JobTimeoutMS) * time.Millisecond,
			Cache:      s.cache,
		}
		reports, status, runErr := experiments.RunSoakCampaign(ctx, opts, structures, cc)
		if reports == nil {
			return nil, runErr
		}
		res := SoakResult{Reports: reports}
		if status != nil && (status.Incomplete || len(status.Failures) > 0) {
			res.Campaign = status
		}
		payload, err := json.Marshal(res)
		if err != nil {
			return nil, err
		}
		return payload, runErr
	})
}

// submitJob is the shared async-submit path: admission, registration,
// and the worker goroutine. fn receives the job context (canceled by
// client cancel or server drain — either way the campaign drains
// in-flight sim jobs, journals them, and returns wrapping
// campaign.ErrIncomplete) and may return a salvaged payload alongside a
// non-nil error.
func (s *Server) submitJob(w http.ResponseWriter, kind, requestedCkpt string,
	fn func(ctx context.Context, ckptPath string) (json.RawMessage, error)) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "server draining", s.cfg.RetryAfter)
		return
	}
	sl, admitErr := s.campLim.admit()
	if admitErr != nil {
		s.brk.RecordShed()
		writeError(w, http.StatusTooManyRequests, "campaign queue full",
			s.campLim.retryAfter(s.cfg.RetryAfter))
		return
	}
	now := s.nowFn()
	// Reserve the ID first so the default checkpoint can embed it.
	j := s.jobs.create(kind, "", now)
	ckpt, err := resolveCheckpoint(requestedCkpt, j.id+".ckpt")
	if err != nil {
		j.finish(s.nowFn(), JobFailed, err.Error(), nil, false)
		sl.release()
		writeError(w, http.StatusBadRequest, err.Error(), 0)
		return
	}
	j.checkpoint = ckpt
	jctx, cancel := context.WithCancelCause(s.baseCtx)
	j.cancel = cancel
	s.wg.Add(1)
	go s.runJob(j, sl, jctx, fn)
	writeJSON(w, http.StatusAccepted, j.status())
}

// runJob drives one async job through its lifecycle on a worker
// goroutine: wait for a class slot, run the campaign, classify the
// outcome. A panic in the aggregation path fails the job alone.
func (s *Server) runJob(j *job, sl *slot, jctx context.Context,
	fn func(ctx context.Context, ckptPath string) (json.RawMessage, error)) {
	defer s.wg.Done()
	defer func() {
		if p := recover(); p != nil {
			s.brk.RecordOutcome(true)
			j.finish(s.nowFn(), JobFailed,
				fmt.Sprintf("panic: %v\n%s", p, debug.Stack()), nil, false)
		}
	}()

	if err := sl.wait(jctx); err != nil {
		// Canceled or drained while still queued: the campaign never
		// started, so there is no checkpoint to resume.
		state, msg := JobInterrupted, "drained before start"
		if context.Cause(jctx) == errJobCanceled {
			state, msg = JobCanceled, "canceled before start"
		}
		j.finish(s.nowFn(), state, msg, nil, false)
		return
	}
	defer sl.release()

	j.setRunning(s.nowFn())
	s.inFlight.Add(1)
	defer s.inFlight.Add(-1)
	payload, err := fn(jctx, filepath.Join(s.cfg.DataDir, j.checkpoint))
	switch {
	case err == nil:
		s.brk.RecordOutcome(false)
		j.finish(s.nowFn(), JobDone, "", payload, false)
	case errors.Is(err, campaign.ErrIncomplete):
		// Drained or canceled mid-campaign: finished sim jobs are
		// journaled; the job resumes byte-identically from its
		// checkpoint. Not a server fault — the breaker ignores it.
		state := JobInterrupted
		if context.Cause(jctx) == errJobCanceled {
			state = JobCanceled
		}
		j.finish(s.nowFn(), state, err.Error(), payload, true)
	default:
		s.brk.RecordOutcome(true)
		j.finish(s.nowFn(), JobFailed, err.Error(), payload, false)
	}
}

func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, JobList{Jobs: s.jobs.list()})
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job", 0)
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job", 0)
		return
	}
	if j.cancel != nil {
		j.cancel(errJobCanceled)
	}
	// Canceling a finished job is a no-op; the status tells the client
	// what actually happened.
	writeJSON(w, http.StatusOK, j.status())
}

// handleHealthz is the liveness endpoint, extended with the load
// signals the fabric coordinator's health probe uses for load-aware
// placement: in-flight work, per-class admission backlog, and breaker
// state. A live-but-loaded worker still answers 200 — load steers
// placement, it does not fail the probe.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	st := HealthStatus{
		Status:       "ok",
		Draining:     s.draining.Load(),
		Breaker:      s.brk.State(),
		InFlightJobs: s.inFlight.Load(),
		Fingerprint:  s.cfg.Fingerprint,
		Evaluate:     s.evalLim.status(),
		Campaign:     s.campLim.status(),
		Fabric:       s.fabLim.status(),
	}
	if s.cache != nil {
		cs := s.cache.Stats()
		st.Cache = &cs
	}
	st.Storm = &StormHealth{
		Jobs:            s.stormJobs.Load(),
		ScalarFallbacks: experiments.ScalarFallbackCount(),
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	st := ReadyStatus{
		Draining: s.draining.Load(),
		Breaker:  s.brk.State(),
		Evaluate: s.evalLim.status(),
		Campaign: s.campLim.status(),
	}
	st.Ready = !st.Draining && st.Breaker == "closed"
	code := http.StatusOK
	if !st.Ready {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, st)
}

// decodeBody strictly decodes a bounded JSON request body.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("bad request body: %w", err)
	}
	return nil
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // the client hung up; nothing useful to do
}

// writeError writes the uniform error body; retryAfter > 0 additionally
// sets the Retry-After header (whole seconds, rounded up, minimum 1 —
// the standard header has no sub-second form).
func writeError(w http.ResponseWriter, code int, msg string, retryAfter time.Duration) {
	body := ErrorResponse{Error: msg}
	if retryAfter > 0 {
		secs := int64((retryAfter + time.Second - 1) / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
		body.RetryAfterMS = retryAfter.Milliseconds()
	}
	writeJSON(w, code, body)
}

package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"ftspm/internal/core"
	"ftspm/internal/experiments"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.DataDir == "" {
		cfg.DataDir = t.TempDir()
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSON(t *testing.T, url string, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp, data
}

func getJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("decode %s: %v\n%s", url, err, data)
		}
	}
	return resp
}

// gatedEval installs a stub evaluation that signals entry and blocks
// until released (or its ctx expires). A workload named "panic" panics;
// one named "unknown" returns ErrUnknownWorkload.
func gatedEval(s *Server) (entered chan struct{}, release chan struct{}) {
	entered = make(chan struct{}, 64)
	release = make(chan struct{})
	s.evalFn = func(ctx context.Context, req EvaluateRequest, _ core.Structure) (*EvaluateResponse, error) {
		switch req.Workload {
		case "panic":
			panic("kaboom")
		case "unknown":
			return nil, fmt.Errorf("%w: %q", experiments.ErrUnknownWorkload, req.Workload)
		case "boom":
			return nil, errors.New("boom")
		}
		entered <- struct{}{}
		select {
		case <-release:
			return &EvaluateResponse{Run: experiments.RunSummary{Workload: req.Workload}}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return entered, release
}

func waitEntered(t *testing.T, entered chan struct{}, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		select {
		case <-entered:
		case <-time.After(10 * time.Second):
			t.Fatalf("evaluation %d/%d never started", i+1, n)
		}
	}
}

// TestOverloadShedsDeterministically is the acceptance test for the
// shed-don't-collapse contract: with MaxEvaluate=2 and EvaluateQueue=2
// the server admits exactly 4 concurrent evaluates; at 2× that load the
// excess 4 are shed immediately with 429 + Retry-After, every admitted
// request completes, and every request receives a definite response —
// zero silent drops.
func TestOverloadShedsDeterministically(t *testing.T) {
	s, ts := newTestServer(t, Config{
		MaxEvaluate:   2,
		EvaluateQueue: 2,
		RetryAfter:    100 * time.Millisecond,
		Breaker:       BreakerConfig{ShedTrip: 1000, ShedWindow: time.Hour},
	})
	entered, release := gatedEval(s)

	type reply struct {
		code int
		body []byte
	}
	results := make(chan reply, 8)
	fire := func() {
		go func() {
			resp, body := postJSONQuiet(ts.URL+"/v1/evaluate", `{"workload":"w","structure":"ftspm"}`)
			results <- reply{resp, body}
		}()
	}

	// Fill the active slots, then the queue.
	fire()
	fire()
	waitEntered(t, entered, 2)
	fire()
	fire()
	waitQueue(t, s.evalLim, 2)

	// 2× capacity: the next 4 must be shed synchronously with 429.
	for i := 0; i < 4; i++ {
		resp, body := postJSON(t, ts.URL+"/v1/evaluate", `{"workload":"w","structure":"ftspm"}`)
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("overload request %d: code %d, want 429\n%s", i, resp.StatusCode, body)
		}
		ra := resp.Header.Get("Retry-After")
		secs, err := strconv.Atoi(ra)
		if err != nil || secs < 1 {
			t.Fatalf("overload request %d: Retry-After = %q, want whole seconds >= 1", i, ra)
		}
		var er ErrorResponse
		if err := json.Unmarshal(body, &er); err != nil || er.RetryAfterMS <= 0 {
			t.Fatalf("overload request %d: body %s, want retry_after_ms > 0", i, body)
		}
	}

	// Release the gate: all 4 admitted requests must complete with 200.
	close(release)
	for i := 0; i < 4; i++ {
		select {
		case r := <-results:
			if r.code != http.StatusOK {
				t.Fatalf("admitted request: code %d, want 200\n%s", r.code, r.body)
			}
			var er EvaluateResponse
			if err := json.Unmarshal(r.body, &er); err != nil || er.Run.Workload != "w" {
				t.Fatalf("admitted request: bad body %s (%v)", r.body, err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("admitted request never completed: silent drop")
		}
	}
	if got := s.evalLim.sheds.Load(); got != 4 {
		t.Fatalf("sheds = %d, want exactly 4", got)
	}
	waitIdle(t, s.evalLim)
}

func postJSONQuiet(url, body string) (int, []byte) {
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		return 0, []byte(err.Error())
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, data
}

func waitQueue(t *testing.T, l *limiter, want int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if l.status().Queued == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("queue never reached %d (status %+v)", want, l.status())
}

func waitIdle(t *testing.T, l *limiter) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if st := l.status(); st.Active == 0 && st.Queued == 0 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("limiter never drained (status %+v)", l.status())
}

// TestQueuedEvaluateDeadline checks a request whose deadline expires
// while still queued is shed with 503 + Retry-After instead of hanging.
func TestQueuedEvaluateDeadline(t *testing.T) {
	s, ts := newTestServer(t, Config{
		MaxEvaluate:   1,
		EvaluateQueue: 2,
		RetryAfter:    50 * time.Millisecond,
		Breaker:       BreakerConfig{ShedTrip: 1000},
	})
	entered, release := gatedEval(s)
	done := make(chan int, 1)
	go func() {
		code, _ := postJSONQuiet(ts.URL+"/v1/evaluate", `{"workload":"w","structure":"ftspm"}`)
		done <- code
	}()
	waitEntered(t, entered, 1)

	start := time.Now()
	resp, body := postJSON(t, ts.URL+"/v1/evaluate",
		`{"workload":"w","structure":"ftspm","timeout_ms":80}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("queued-timeout request: code %d, want 503\n%s", resp.StatusCode, body)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("queued-timeout request took %v, want prompt shedding", elapsed)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("queued-timeout reply missing Retry-After")
	}
	close(release)
	if code := <-done; code != http.StatusOK {
		t.Fatalf("gated request: code %d, want 200", code)
	}
}

// TestBreakerTripsReadyzAndRecovers drives the error-rate breaker with
// a failing stub and a fake clock: /readyz must go 503/open after the
// spike and return to 200/closed once the cooldown elapses.
func TestBreakerTripsReadyzAndRecovers(t *testing.T) {
	s, ts := newTestServer(t, Config{Breaker: testBreakerCfg})
	clk := newFakeClock()
	s.nowFn = clk.now
	gatedEval(s)

	var st ReadyStatus
	if resp := getJSON(t, ts.URL+"/readyz", &st); resp.StatusCode != http.StatusOK || !st.Ready {
		t.Fatalf("initial readyz: %d %+v, want 200 ready", resp.StatusCode, st)
	}
	for i := 0; i < 4; i++ { // MinSamples=4, all errors
		resp, _ := postJSON(t, ts.URL+"/v1/evaluate", `{"workload":"boom","structure":"ftspm"}`)
		if resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("failing evaluate %d: code %d, want 500", i, resp.StatusCode)
		}
	}
	if resp := getJSON(t, ts.URL+"/readyz", &st); resp.StatusCode != http.StatusServiceUnavailable ||
		st.Ready || st.Breaker != "open" {
		t.Fatalf("post-spike readyz: %d %+v, want 503 breaker open", resp.StatusCode, st)
	}
	clk.advance(testBreakerCfg.Cooldown + time.Second)
	if resp := getJSON(t, ts.URL+"/readyz", &st); resp.StatusCode != http.StatusOK ||
		!st.Ready || st.Breaker != "closed" {
		t.Fatalf("post-cooldown readyz: %d %+v, want 200 breaker closed", resp.StatusCode, st)
	}
}

// TestShedSaturationTripsReadyz checks hard shedding (pool saturation)
// also trips readiness, steering traffic away from a saturated
// instance.
func TestShedSaturationTripsReadyz(t *testing.T) {
	s, ts := newTestServer(t, Config{
		MaxEvaluate:   1,
		EvaluateQueue: 1,
		Breaker:       testBreakerCfg, // ShedTrip=3 inside 5s
	})
	clk := newFakeClock()
	s.nowFn = clk.now
	entered, release := gatedEval(s)
	defer close(release)

	results := make(chan int, 2)
	for i := 0; i < 2; i++ { // one active, one queued
		go func() {
			code, _ := postJSONQuiet(ts.URL+"/v1/evaluate", `{"workload":"w","structure":"ftspm"}`)
			results <- code
		}()
	}
	waitEntered(t, entered, 1)
	waitQueue(t, s.evalLim, 1)
	for i := 0; i < 3; i++ {
		resp, _ := postJSON(t, ts.URL+"/v1/evaluate", `{"workload":"w","structure":"ftspm"}`)
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("shed %d: code %d, want 429", i, resp.StatusCode)
		}
	}
	var st ReadyStatus
	if resp := getJSON(t, ts.URL+"/readyz", &st); resp.StatusCode != http.StatusServiceUnavailable ||
		st.Breaker != "open" {
		t.Fatalf("saturated readyz: %d %+v, want 503 breaker open", resp.StatusCode, st)
	}
	if st.Evaluate.Shed != 3 {
		t.Fatalf("readyz shed count = %d, want 3", st.Evaluate.Shed)
	}
}

// TestPanicIsolation checks a panicking request answers 500 alone while
// the server keeps serving.
func TestPanicIsolation(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	_, release := gatedEval(s)
	close(release)

	resp, body := postJSON(t, ts.URL+"/v1/evaluate", `{"workload":"panic","structure":"ftspm"}`)
	if resp.StatusCode != http.StatusInternalServerError ||
		!bytes.Contains(body, []byte("internal panic")) {
		t.Fatalf("panicking request: %d %s, want 500 internal panic", resp.StatusCode, body)
	}
	resp, body = postJSON(t, ts.URL+"/v1/evaluate", `{"workload":"w","structure":"ftspm"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("request after panic: %d %s, want 200", resp.StatusCode, body)
	}
}

func TestEvaluateValidation(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	gatedEval(s)
	cases := []struct {
		name, body string
	}{
		{"bad json", `{`},
		{"unknown field", `{"workload":"w","structure":"ftspm","bogus":1}`},
		{"missing workload", `{"structure":"ftspm"}`},
		{"bad structure", `{"workload":"w","structure":"quantum"}`},
		{"unknown workload", `{"workload":"unknown","structure":"ftspm"}`},
	}
	for _, tc := range cases {
		resp, body := postJSON(t, ts.URL+"/v1/evaluate", tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: code %d, want 400\n%s", tc.name, resp.StatusCode, body)
		}
	}
	// Validation failures are client errors: the breaker must stay
	// clean.
	var st ReadyStatus
	if resp := getJSON(t, ts.URL+"/readyz", &st); resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz after client errors: %d, want 200", resp.StatusCode)
	}
}

func TestDrainRejectsNewWork(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	gatedEval(s)
	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	for _, ep := range []string{"/v1/evaluate", "/v1/sweep", "/v1/soak"} {
		resp, body := postJSON(t, ts.URL+ep, `{}`)
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("POST %s while draining: %d, want 503\n%s", ep, resp.StatusCode, body)
		}
	}
	var st ReadyStatus
	if resp := getJSON(t, ts.URL+"/readyz", &st); resp.StatusCode != http.StatusServiceUnavailable ||
		!st.Draining {
		t.Fatalf("draining readyz: %d %+v, want 503 draining", resp.StatusCode, st)
	}
	// Liveness is unaffected by drain.
	if resp := getJSON(t, ts.URL+"/healthz", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz while draining: %d, want 200", resp.StatusCode)
	}
}

func TestJobEndpointsUnknownID(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	if resp := getJSON(t, ts.URL+"/v1/jobs/soak-999999", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET unknown job: %d, want 404", resp.StatusCode)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/soak-999999", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("DELETE: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("DELETE unknown job: %d, want 404", resp.StatusCode)
	}
}

func TestSubmitValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name, ep, body string
	}{
		{"sweep resume unnamed", "/v1/sweep", `{"resume":true}`},
		{"soak resume unnamed", "/v1/soak", `{"resume":true}`},
		{"soak bad structure", "/v1/soak", `{"structures":["quantum"]}`},
		{"sweep bad checkpoint", "/v1/sweep", `{"checkpoint":"../evil"}`},
		{"soak bad checkpoint", "/v1/soak", `{"checkpoint":"a/b"}`},
	}
	for _, tc := range cases {
		resp, body := postJSON(t, ts.URL+tc.ep, tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: code %d, want 400\n%s", tc.name, resp.StatusCode, body)
		}
	}
}

func TestResolveCheckpoint(t *testing.T) {
	good := []string{"run1.ckpt", "a-b_c.d", "X9"}
	for _, name := range good {
		got, err := resolveCheckpoint(name, "def")
		if err != nil || got != name {
			t.Errorf("resolveCheckpoint(%q) = %q, %v; want accepted", name, got, err)
		}
	}
	bad := []string{"../evil", "a/b", `a\b`, ".", "..", ".hidden", "-dash", ""}
	for _, name := range bad[:len(bad)-1] {
		if _, err := resolveCheckpoint(name, "def"); err == nil {
			t.Errorf("resolveCheckpoint(%q): want rejection", name)
		}
	}
	if got, err := resolveCheckpoint("", "fallback"); err != nil || got != "fallback" {
		t.Errorf("empty checkpoint: got %q, %v; want fallback", got, err)
	}
}

func TestParseStructure(t *testing.T) {
	cases := map[string]core.Structure{
		"ftspm":     core.StructFTSPM,
		"FTSPM":     core.StructFTSPM,
		"sram":      core.StructPureSRAM,
		"pure-SRAM": core.StructPureSRAM,
		"stt":       core.StructPureSTT,
		"dmr":       core.StructDMR,
	}
	for name, want := range cases {
		got, err := ParseStructure(name)
		if err != nil || got != want {
			t.Errorf("ParseStructure(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := ParseStructure("quantum"); !errors.Is(err, core.ErrUnknownStructure) {
		t.Errorf("ParseStructure(quantum): %v, want ErrUnknownStructure", err)
	}
}

package sim

import (
	"context"
	"errors"
	"testing"
	"time"

	"ftspm/internal/spm"
	"ftspm/internal/trace"
	"ftspm/internal/workloads"
)

// cancelTestMachine builds a case-study machine with empty placement
// (every access runs through the caches), big enough to chew through a
// long trace when not canceled.
func cancelTestMachine(t *testing.T) *Machine {
	t.Helper()
	cfg := DefaultPlatform()
	cfg.ISPM = []spm.RegionConfig{{Kind: spm.RegionSTT, SizeBytes: 16 * 1024}}
	cfg.DSPM = []spm.RegionConfig{{Kind: spm.RegionSTT, SizeBytes: 16 * 1024}}
	m, err := New(workloads.CaseStudy().Program(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestRunContextCanceledStopsMidRun proves the run loop's periodic
// cancellation check abandons a long trace instead of simulating it to
// completion: a pre-canceled context must error out wrapping both
// ErrCanceled and the context error, well before the full trace is
// consumed.
func TestRunContextCanceledStopsMidRun(t *testing.T) {
	w := workloads.CaseStudy()
	m := cancelTestMachine(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	counting := &trace.CountingStream{S: w.TraceStream(0.25)}
	_, err := m.RunContext(ctx, counting)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want wrapped ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrapped context.Canceled", err)
	}
	// The loop checks every ctxCheckMask+1 events; a canceled context
	// must stop it at the very first check.
	if counting.N > ctxCheckMask+1 {
		t.Fatalf("consumed %d events after cancellation, want <= %d", counting.N, ctxCheckMask+1)
	}
}

// TestRunContextDeadlineExceeded covers the deadline flavour: an
// already-expired deadline surfaces context.DeadlineExceeded.
func TestRunContextDeadlineExceeded(t *testing.T) {
	w := workloads.CaseStudy()
	m := cancelTestMachine(t)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := m.RunContext(ctx, w.TraceStream(0.25)); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want wrapped context.DeadlineExceeded", err)
	}
}

// TestRunContextBackgroundMatchesRun pins that cancellation support is
// free of behavioural drift: a run under a never-canceled context is
// identical to a plain Run.
func TestRunContextBackgroundMatchesRun(t *testing.T) {
	w := workloads.CaseStudy()
	m1 := cancelTestMachine(t)
	m2 := cancelTestMachine(t)
	r1, err := m1.Run(w.TraceStream(0.1))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := m2.RunContext(context.Background(), w.TraceStream(0.1))
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cycles != r2.Cycles || r1.Accesses != r2.Accesses {
		t.Fatalf("RunContext drifted from Run: %+v vs %+v", r2, r1)
	}
}

// Package sim is the reproduction's substitute for FaCSim [25]: a
// trace-driven, cycle-accounting simulator of the evaluated platform —
// an in-order embedded core front end with split L1 caches, split
// instruction/data SPMs with an on-line mapping controller, and off-chip
// memory. FTSPM's results depend on the memory-access stream and the
// per-access latency/energy of each structure, which this model charges
// exactly; the ARM pipeline itself is orthogonal (DESIGN.md §2).
package sim

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"ftspm/internal/cache"
	"ftspm/internal/dram"
	"ftspm/internal/faults"
	"ftspm/internal/memtech"
	"ftspm/internal/program"
	"ftspm/internal/schedule"
	"ftspm/internal/spm"
	"ftspm/internal/trace"
)

// Config assembles a machine.
type Config struct {
	// ISPM and DSPM size the two scratchpads (Table IV rows).
	ISPM, DSPM []spm.RegionConfig
	// ExtraLeakage is structure-level controller leakage added to the
	// data SPM (memtech.HybridControllerLeakage for FTSPM, 0 for the
	// single-region baselines).
	ExtraLeakage memtech.Milliwatts
	// Placement assigns mapped blocks (code and data) to region kinds.
	Placement spm.Placement
	// ICache and DCache configure the L1s behind unmapped blocks.
	ICache, DCache cache.Config
	// DRAM configures the off-chip memory.
	DRAM dram.Config
	// Injection, when non-nil, lands particle strikes on the selected
	// SPM(s) during execution (live fault-injection campaigns).
	Injection *InjectionConfig
	// Recovery, when non-nil, enables the runtime error-recovery engine
	// on both SPM controllers: DUE re-fetch from DRAM, background
	// scrubbing, and wear-triggered graceful degradation.
	Recovery *spm.RecoveryConfig
	// Wear, when non-nil, attaches the STT-RAM write-unreliability model
	// to the STT-RAM regions of both SPMs (SRAM regions are unaffected).
	Wear *spm.WearConfig
}

// InjectionTarget selects which scratchpad(s) a live fault-injection
// campaign strikes.
type InjectionTarget int

// Injection targets. The zero value strikes the data SPM, preserving
// the behaviour of configs written before instruction-SPM targeting
// existed.
const (
	// TargetDataSPM strikes only the data SPM.
	TargetDataSPM InjectionTarget = iota
	// TargetInstSPM strikes only the instruction SPM.
	TargetInstSPM
	// TargetBothSPMs strikes both SPMs, choosing per strike in
	// proportion to each SPM's stored code bits (a larger surface
	// catches more particles).
	TargetBothSPMs
)

// String implements fmt.Stringer.
func (t InjectionTarget) String() string {
	switch t {
	case TargetDataSPM:
		return "data-SPM"
	case TargetInstSPM:
		return "inst-SPM"
	case TargetBothSPMs:
		return "both-SPMs"
	default:
		return fmt.Sprintf("InjectionTarget(%d)", int(t))
	}
}

// Valid reports whether t is a known target.
func (t InjectionTarget) Valid() bool {
	switch t {
	case TargetDataSPM, TargetInstSPM, TargetBothSPMs:
		return true
	default:
		return false
	}
}

// InjectionConfig parameterizes live fault injection.
//
// Strikes are word-granular at every protection level: the struck word
// is chosen in proportion to its stored code bits — a parity word holds
// 33 bits (32 data + 1 check), a SEC-DED word 39 (32 + 7), a DMR word
// 64 — and the flipped cluster stays confined to that word's codeword.
// A multi-bit upset therefore never straddles two words, matching the
// per-word protection-circuit granularity of the paper's Section IV
// analysis.
type InjectionConfig struct {
	// StrikesPerAccess is the probability of one strike landing on the
	// target surface before each memory access (compressed time: real
	// flux is far lower, but vulnerability ratios are rate-invariant).
	StrikesPerAccess float64
	// Dist gives the strike multiplicities (use faults.Dist40nm).
	Dist faults.MBUDistribution
	// Seed makes the campaign reproducible.
	Seed int64
	// Target selects the struck SPM(s); the zero value is the data SPM.
	Target InjectionTarget
	// Storm, when non-nil, replaces the memoryless per-access strike
	// draw with the correlated storm process (faults.StormConfig):
	// Markov-modulated burst intensities, spatially clustered
	// multi-word events, thermal wear ramps, and adversarial
	// hot-block targeting. StrikesPerAccess is ignored under a storm
	// (the calm-state intensity is the background rate); Dist, Seed,
	// and Target apply as usual.
	Storm *faults.StormConfig
	// HotWindows lists the adversarial mode's targets: word ranges
	// holding the profile's hottest blocks. Surface 0 is the
	// instruction SPM, 1 the data SPM; windows on an untargeted SPM
	// are ignored. Only meaningful with Storm.HotBias > 0.
	HotWindows []faults.HotWindow
}

// Sim-convention hot-window surface indices (InjectionConfig.HotWindows).
const (
	HotSurfaceInstSPM = 0
	HotSurfaceDataSPM = 1
)

// DefaultPlatform fills the non-SPM parts of a Config with the Table IV
// platform: two 8 KB unprotected-SRAM L1s and the default off-chip
// memory.
func DefaultPlatform() Config {
	return Config{
		ICache: cache.DefaultL1(),
		DCache: cache.DefaultL1(),
		DRAM:   dram.Default(),
	}
}

// Result reports one simulated execution.
type Result struct {
	// Cycles is the total execution time.
	Cycles memtech.Cycles
	// ThinkCycles is the compute (non-memory) share of Cycles.
	ThinkCycles memtech.Cycles
	// SPMDynamicEnergy is the dynamic energy spent in both SPMs,
	// including the region side of DMA transfers.
	SPMDynamicEnergy memtech.Picojoules
	// SPMStaticEnergy is SPM leakage integrated over the execution.
	SPMStaticEnergy memtech.Millijoules
	// SPMLeakage is the static power of both SPMs.
	SPMLeakage memtech.Milliwatts
	// CacheEnergy and DRAMEnergy are charged outside the SPMs.
	CacheEnergy memtech.Picojoules
	DRAMEnergy  memtech.Picojoules
	// ICtl and DCtl are the controller tallies (on-line phase activity
	// and the per-region access distribution of Figs. 2 and 4).
	ICtl, DCtl spm.ControllerStats
	// ICacheStats and DCacheStats report the cache behaviour of
	// unmapped blocks.
	ICacheStats, DCacheStats cache.Stats
	// DRAMStats reports off-chip traffic.
	DRAMStats dram.Stats
	// Accesses counts simulated memory accesses.
	Accesses uint64
	// DataRegionStats aggregates the raw region counters of the data
	// SPM by kind (DMA traffic included), for post-run analyses such as
	// the retention-relaxation study.
	DataRegionStats map[spm.RegionKind]spm.RegionStats
	// InjectedStrikes counts the particle strikes landed during the run
	// (zero unless Config.Injection was set).
	InjectedStrikes uint64
}

// TotalDynamicEnergy sums SPM, cache, and DRAM dynamic energy.
func (r Result) TotalDynamicEnergy() memtech.Picojoules {
	return r.SPMDynamicEnergy + r.CacheEnergy + r.DRAMEnergy
}

// RecoveryTotals merges the recovery tallies of both SPM controllers.
func (r Result) RecoveryTotals() spm.RecoveryStats {
	t := r.ICtl.Recovery
	t.Add(r.DCtl.Recovery)
	return t
}

// Machine is an assembled platform ready to execute traces.
type Machine struct {
	cfg    Config
	prog   *program.Program
	blocks []program.Block // dense BlockID → block, avoids per-access lookups
	iCache *cache.Cache
	dCache *cache.Cache
	mem    *dram.Memory
	iSPM   *spm.SPM
	dSPM   *spm.SPM
	iCtl   *spm.Controller
	dCtl   *spm.Controller
	probe  func() // fired once per access event, before strike injection
}

// ErrNilProgram rejects machine construction without a program image.
var ErrNilProgram = errors.New("sim: program must not be nil")

// New assembles a machine for the program. The placement is split
// between the instruction and data controllers by block kind.
func New(prog *program.Program, cfg Config) (*Machine, error) {
	if prog == nil {
		return nil, ErrNilProgram
	}
	m := &Machine{cfg: cfg, prog: prog, blocks: prog.Blocks()}
	var err error
	if m.iCache, err = cache.New(cfg.ICache); err != nil {
		return nil, fmt.Errorf("sim: icache: %w", err)
	}
	if m.dCache, err = cache.New(cfg.DCache); err != nil {
		return nil, fmt.Errorf("sim: dcache: %w", err)
	}
	if m.mem, err = dram.New(cfg.DRAM); err != nil {
		return nil, fmt.Errorf("sim: dram: %w", err)
	}
	if m.iSPM, err = spm.New(0, cfg.ISPM...); err != nil {
		return nil, fmt.Errorf("sim: ispm: %w", err)
	}
	if m.dSPM, err = spm.New(cfg.ExtraLeakage, cfg.DSPM...); err != nil {
		return nil, fmt.Errorf("sim: dspm: %w", err)
	}

	// Split the placement in ascending BlockID order so the block a
	// validation error names is deterministic, not map-iteration luck.
	ids := make([]program.BlockID, 0, len(cfg.Placement))
	for id := range cfg.Placement {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	iPlace := make(spm.Placement)
	dPlace := make(spm.Placement)
	for _, id := range ids {
		b, err := prog.Block(id)
		if err != nil {
			return nil, fmt.Errorf("sim: placement: %w", err)
		}
		if b.Kind == program.CodeBlock {
			iPlace[id] = cfg.Placement[id]
		} else {
			dPlace[id] = cfg.Placement[id]
		}
	}
	if m.iCtl, err = spm.NewController(m.iSPM, prog, iPlace, m.mem); err != nil {
		return nil, fmt.Errorf("sim: i-controller: %w", err)
	}
	if m.dCtl, err = spm.NewController(m.dSPM, prog, dPlace, m.mem); err != nil {
		return nil, fmt.Errorf("sim: d-controller: %w", err)
	}
	if cfg.Wear != nil {
		// Distinct seed bases keep the two SPMs' wear streams
		// independent while staying reproducible from one config seed.
		if err := m.dSPM.EnableWear(*cfg.Wear); err != nil {
			return nil, fmt.Errorf("sim: d-wear: %w", err)
		}
		iWear := *cfg.Wear
		iWear.Seed ^= 0x5bd1e995
		if err := m.iSPM.EnableWear(iWear); err != nil {
			return nil, fmt.Errorf("sim: i-wear: %w", err)
		}
	}
	if cfg.Recovery != nil {
		if err := m.iCtl.EnableRecovery(*cfg.Recovery); err != nil {
			return nil, fmt.Errorf("sim: i-recovery: %w", err)
		}
		if err := m.dCtl.EnableRecovery(*cfg.Recovery); err != nil {
			return nil, fmt.Errorf("sim: d-recovery: %w", err)
		}
	}
	return m, nil
}

// DataSPM exposes the data scratchpad for post-run analysis (endurance
// write counters, fault injection).
func (m *Machine) DataSPM() *spm.SPM { return m.dSPM }

// InstSPM exposes the instruction scratchpad.
func (m *Machine) InstSPM() *spm.SPM { return m.iSPM }

// InstController exposes the instruction-SPM mapping controller, for
// instruments that attach an op recorder (spm.OpRecorder).
func (m *Machine) InstController() *spm.Controller { return m.iCtl }

// DataController exposes the data-SPM mapping controller.
func (m *Machine) DataController() *spm.Controller { return m.dCtl }

// SetAccessProbe installs a callback fired once per access event, after
// scheduled plan commands apply and before any strike injection — i.e.
// at the exact point in the event stream where the injection RNG would
// be consulted. The packed soak engine uses it to align recorded ops
// with strike schedules. Nil detaches.
func (m *Machine) SetAccessProbe(fn func()) { m.probe = fn }

// Run executes the trace to completion and returns the accounting. A
// machine accumulates state across calls (caches stay warm, blocks stay
// resident); use a fresh Machine per measured run.
func (m *Machine) Run(s trace.Stream) (Result, error) {
	return m.run(nil, s, nil)
}

// ctxCheckMask throttles cancellation checks in the run loop: the
// context is polled every ctxCheckMask+1 trace events, keeping the
// steady-state cost of deadline support to one counter test per event
// (the hot path stays allocation-free; see AllocsPerRun guards).
const ctxCheckMask = 4095

// ErrCanceled wraps the context error when a run is stopped by
// cancellation or deadline; errors.Is sees through it to
// context.Canceled / context.DeadlineExceeded.
var ErrCanceled = errors.New("sim: run canceled")

// RunContext is Run with cooperative cancellation: the loop polls ctx
// every few thousand trace events and abandons the run with an error
// wrapping ErrCanceled and the context's error once it is done. This is
// the hook that lets a server-side request deadline actually stop
// simulation work instead of merely abandoning its result.
func (m *Machine) RunContext(ctx context.Context, s trace.Stream) (Result, error) {
	return m.run(ctx, s, nil)
}

// RunWithPlan executes the trace with scheduled SPM transfers: before
// the i-th access event, every plan command at position i is executed
// (unmaps, then loads, in plan order). Accesses to blocks the plan
// failed to make resident fall back to the on-demand path, so a plan
// affects cost, never correctness.
func (m *Machine) RunWithPlan(s trace.Stream, plan *schedule.Plan) (Result, error) {
	return m.run(nil, s, plan)
}

// RunWithPlanContext is RunWithPlan with cooperative cancellation (see
// RunContext).
func (m *Machine) RunWithPlanContext(ctx context.Context, s trace.Stream, plan *schedule.Plan) (Result, error) {
	return m.run(ctx, s, plan)
}

func (m *Machine) run(ctx context.Context, s trace.Stream, plan *schedule.Plan) (Result, error) {
	var res Result
	accessIdx := 0
	planPos := 0
	var strikeRNG *rand.Rand
	var storm *stormState
	switch {
	case m.cfg.Injection != nil && m.cfg.Injection.Storm != nil:
		var err error
		if storm, err = m.newStormState(); err != nil {
			return Result{}, err
		}
	case m.cfg.Injection != nil && m.cfg.Injection.StrikesPerAccess > 0:
		if err := m.cfg.Injection.Dist.Validate(); err != nil {
			return Result{}, fmt.Errorf("sim: injection: %w", err)
		}
		if !m.cfg.Injection.Target.Valid() {
			return Result{}, fmt.Errorf("sim: injection: unknown target %d", int(m.cfg.Injection.Target))
		}
		strikeRNG = rand.New(rand.NewSource(m.cfg.Injection.Seed))
	}
	var events uint64
	for {
		e, ok := s.Next()
		if !ok {
			break
		}
		events++
		if ctx != nil && events&ctxCheckMask == 0 {
			if err := ctx.Err(); err != nil {
				return Result{}, fmt.Errorf("%w after %d events: %w", ErrCanceled, events, err)
			}
		}
		switch e.Kind {
		case trace.KindCall, trace.KindReturn:
			res.Cycles++
		case trace.KindAccess:
			if plan != nil {
				for planPos < len(plan.Commands) && plan.Commands[planPos].AtAccess <= accessIdx {
					cycles, err := m.applyCommand(plan.Commands[planPos])
					if err != nil {
						return Result{}, err
					}
					res.Cycles += cycles
					planPos++
				}
			}
			accessIdx++
			if m.probe != nil {
				m.probe()
			}
			if strikeRNG != nil && strikeRNG.Float64() < m.cfg.Injection.StrikesPerAccess {
				if _, err := m.strikeTarget(strikeRNG).InjectStrike(strikeRNG, m.cfg.Injection.Dist); err != nil {
					return Result{}, fmt.Errorf("sim: injection: %w", err)
				}
				res.InjectedStrikes++
			}
			if storm != nil {
				if err := storm.step(&res); err != nil {
					return Result{}, err
				}
			}
			a := e.Access
			res.Cycles += memtech.Cycles(a.Think)
			res.ThinkCycles += memtech.Cycles(a.Think)
			res.Accesses++
			cycles, err := m.access(a)
			if err != nil {
				return Result{}, err
			}
			res.Cycles += cycles
		default:
			return Result{}, fmt.Errorf("sim: unknown event kind %v", e.Kind)
		}
	}

	// Drain dirty cache lines so every structure has written its state
	// back (end-of-program flush, charged to the run).
	dirtyWords := m.dCache.Flush()
	if dirtyWords > 0 {
		cycles, _ := m.mem.Burst(dirtyWords, true)
		res.Cycles += cycles
	}

	res.SPMDynamicEnergy = m.iSPM.DynamicEnergy() + m.dSPM.DynamicEnergy()
	res.SPMLeakage = m.iSPM.Leakage() + m.dSPM.Leakage()
	res.SPMStaticEnergy = memtech.StaticEnergy(res.SPMLeakage, res.Cycles)
	res.ICacheStats = m.iCache.Stats()
	res.DCacheStats = m.dCache.Stats()
	res.CacheEnergy = res.ICacheStats.EnergyPicojoules + res.DCacheStats.EnergyPicojoules
	res.DRAMStats = m.mem.Stats()
	res.DRAMEnergy = res.DRAMStats.EnergyPicojoules
	res.ICtl = m.iCtl.Stats()
	res.DCtl = m.dCtl.Stats()
	res.DataRegionStats = make(map[spm.RegionKind]spm.RegionStats)
	for _, r := range m.dSPM.Regions() {
		agg := res.DataRegionStats[r.Kind()]
		st := r.Stats()
		agg.ReadAccesses += st.ReadAccesses
		agg.WriteAccesses += st.WriteAccesses
		agg.WordsRead += st.WordsRead
		agg.WordsWritten += st.WordsWritten
		agg.Energy += st.Energy
		agg.CorrectedErrors += st.CorrectedErrors
		agg.DetectedErrors += st.DetectedErrors
		agg.SilentReads += st.SilentReads
		res.DataRegionStats[r.Kind()] = agg
	}
	return res, nil
}

// stormState drives one run's correlated fault storm: the
// seed-deterministic faults.StormProcess plus the SPM surfaces it
// strikes and the thermal coupling into the wear models.
type stormState struct {
	proc      *faults.StormProcess
	spms      []*spm.SPM // process surface index → struck SPM
	thermal   bool       // wear model attached and ThermalFactor > 1
	lastScale float64
	iSPM      *spm.SPM
	dSPM      *spm.SPM
}

// newStormState builds the storm process over the targeted SPMs. The
// surface order follows the injection target (inst before data for
// TargetBothSPMs), and hot windows are translated from the
// HotSurface* convention, dropping windows on untargeted SPMs.
func (m *Machine) newStormState() (*stormState, error) {
	inj := m.cfg.Injection
	if !inj.Target.Valid() {
		return nil, fmt.Errorf("sim: injection: unknown target %d", int(inj.Target))
	}
	st := &stormState{iSPM: m.iSPM, dSPM: m.dSPM, lastScale: 1}
	instSurf, dataSurf := -1, -1
	switch inj.Target {
	case TargetInstSPM:
		st.spms = []*spm.SPM{m.iSPM}
		instSurf = 0
	case TargetBothSPMs:
		st.spms = []*spm.SPM{m.iSPM, m.dSPM}
		instSurf, dataSurf = 0, 1
	default:
		st.spms = []*spm.SPM{m.dSPM}
		dataSurf = 0
	}
	surfaces := make([][]faults.RegionSurface, len(st.spms))
	for i, s := range st.spms {
		for _, r := range s.Regions() {
			surfaces[i] = append(surfaces[i], faults.RegionSurface{
				Words: r.Words(), CodeBits: r.Codec().CodeBits(), Immune: r.Kind().Immune(),
			})
		}
	}
	var hot []faults.HotWindow
	for _, w := range inj.HotWindows {
		switch w.Surface {
		case HotSurfaceInstSPM:
			w.Surface = instSurf
		case HotSurfaceDataSPM:
			w.Surface = dataSurf
		default:
			return nil, fmt.Errorf("sim: injection: hot window surface %d is neither inst (%d) nor data (%d)",
				w.Surface, HotSurfaceInstSPM, HotSurfaceDataSPM)
		}
		if w.Surface < 0 {
			continue // the window's SPM is not targeted
		}
		hot = append(hot, w)
	}
	proc, err := faults.NewStormProcess(*inj.Storm, inj.Dist, inj.Seed, surfaces, hot)
	if err != nil {
		return nil, fmt.Errorf("sim: injection: %w", err)
	}
	st.proc = proc
	st.thermal = m.cfg.Wear != nil && inj.Storm.Normalized().ThermalFactor > 1
	return st, nil
}

// step advances the storm one access, lands its events on the SPM
// words, and forwards the thermal wear scale when it moves.
func (st *stormState) step(res *Result) error {
	events := st.proc.Step()
	if len(events) > 0 {
		res.InjectedStrikes++
		for _, ev := range events {
			r, err := st.spms[ev.Surface].Region(ev.Region)
			if err != nil {
				return fmt.Errorf("sim: storm: %w", err)
			}
			if err := r.ApplyStrikeDelta(ev.Word, ev.Delta); err != nil {
				return fmt.Errorf("sim: storm: %w", err)
			}
		}
	}
	if st.thermal {
		if scale := st.proc.WearScale(); scale != st.lastScale {
			st.lastScale = scale
			st.iSPM.SetWearScale(scale)
			st.dSPM.SetWearScale(scale)
		}
	}
	return nil
}

// strikeTarget picks the SPM one particle strike lands on per the
// injection target, weighting TargetBothSPMs by stored code bits.
func (m *Machine) strikeTarget(rng *rand.Rand) *spm.SPM {
	switch m.cfg.Injection.Target {
	case TargetInstSPM:
		return m.iSPM
	case TargetBothSPMs:
		iBits, dBits := m.iSPM.StoredBits(), m.dSPM.StoredBits()
		if total := iBits + dBits; total > 0 && rng.Intn(total) < iBits {
			return m.iSPM
		}
		return m.dSPM
	default:
		return m.dSPM
	}
}

// applyCommand executes one scheduled transfer command on the
// controller owning the block's address space.
func (m *Machine) applyCommand(cmd schedule.Command) (memtech.Cycles, error) {
	b, err := m.prog.Block(cmd.Block)
	if err != nil {
		return 0, fmt.Errorf("sim: plan: %w", err)
	}
	ctl := m.dCtl
	if b.Kind == program.CodeBlock {
		ctl = m.iCtl
	}
	if cmd.Load {
		return ctl.MapIn(cmd.Block)
	}
	return ctl.Unmap(cmd.Block)
}

// access routes one memory access to the SPM controller of its space or,
// for unmapped blocks, through the cache hierarchy.
func (m *Machine) access(a trace.Access) (memtech.Cycles, error) {
	id, ok := m.prog.FindAddr(a.Addr)
	if !ok {
		return 0, fmt.Errorf("sim: access at %#x outside all blocks", a.Addr)
	}
	b := &m.blocks[id]
	ctl, l1 := m.dCtl, m.dCache
	if a.Space == trace.Code {
		ctl, l1 = m.iCtl, m.iCache
	}

	if ctl.IsMapped(id) {
		cost, err := ctl.Access(id, int(a.Addr-b.Addr), a.Size, a.Op == trace.Write)
		if err == nil {
			return cost.Cycles, nil
		}
		if !errors.Is(err, spm.ErrNotMapped) {
			return 0, err
		}
		// The controller demoted the block mid-run (graceful
		// degradation found no region with room): fall through to the
		// cache path, which serves it from here on.
	}

	// Cache path: array access plus any off-chip fill/write-back.
	r := l1.Access(a.Addr, a.Size, a.Op == trace.Write)
	cycles := r.Cycles
	if r.WritebackWords > 0 {
		c, _ := m.mem.Burst(r.WritebackWords, true)
		cycles += c
	}
	if r.FillWords > 0 {
		c, _ := m.mem.Burst(r.FillWords, false)
		cycles += c
	}
	return cycles, nil
}

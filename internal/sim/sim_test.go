package sim

import (
	"errors"
	"testing"

	"ftspm/internal/dram"
	"ftspm/internal/faults"
	"ftspm/internal/memtech"
	"ftspm/internal/profile"
	"ftspm/internal/program"
	"ftspm/internal/schedule"
	"ftspm/internal/spm"
	"ftspm/internal/trace"
	"ftspm/internal/workloads"
)

func tinyMachine(t *testing.T, place spm.Placement, prog *program.Program) *Machine {
	t.Helper()
	cfg := DefaultPlatform()
	cfg.ISPM = []spm.RegionConfig{{Kind: spm.RegionSTT, SizeBytes: 4 * 1024}}
	cfg.DSPM = []spm.RegionConfig{
		{Kind: spm.RegionSTT, SizeBytes: 2 * 1024},
		{Kind: spm.RegionParity, SizeBytes: 1 * 1024},
	}
	cfg.Placement = place
	m, err := New(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, DefaultPlatform()); !errors.Is(err, ErrNilProgram) {
		t.Error("nil program accepted")
	}
	p := program.New("x")
	cfg := DefaultPlatform()
	if _, err := New(p, cfg); err == nil {
		t.Error("empty SPM config accepted")
	}
	cfg.ISPM = []spm.RegionConfig{{Kind: spm.RegionSTT, SizeBytes: 1024}}
	cfg.DSPM = []spm.RegionConfig{{Kind: spm.RegionSTT, SizeBytes: 1024}}
	cfg.Placement = spm.Placement{program.BlockID(5): spm.RegionSTT}
	if _, err := New(p, cfg); err == nil {
		t.Error("placement with phantom block accepted")
	}
}

func TestRunRoutesMappedAndUnmapped(t *testing.T) {
	p := program.New("route")
	code := p.MustAddBlock("Code", program.CodeBlock, 512)
	hot := p.MustAddBlock("Hot", program.DataBlock, 512)
	cold := p.MustAddBlock("Cold", program.DataBlock, 512) // unmapped
	m := tinyMachine(t, spm.Placement{
		code: spm.RegionSTT,
		hot:  spm.RegionSTT,
	}, p)

	addr := func(id program.BlockID, off int) uint32 {
		a, err := p.AddrOf(id, off)
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	evs := []trace.Event{
		trace.CallEvent(32),
		trace.AccessEvent(trace.Access{Op: trace.Read, Space: trace.Code, Addr: addr(code, 0), Size: 16, Think: 2}),
		trace.AccessEvent(trace.Access{Op: trace.Read, Space: trace.Data, Addr: addr(hot, 0), Size: 4}),
		trace.AccessEvent(trace.Access{Op: trace.Write, Space: trace.Data, Addr: addr(hot, 4), Size: 4}),
		trace.AccessEvent(trace.Access{Op: trace.Read, Space: trace.Data, Addr: addr(cold, 0), Size: 4}),
		trace.ReturnEvent(),
	}
	res, err := m.Run(trace.NewSliceStream(evs))
	if err != nil {
		t.Fatal(err)
	}
	if res.Accesses != 4 {
		t.Errorf("Accesses = %d", res.Accesses)
	}
	if res.ThinkCycles != 2 {
		t.Errorf("ThinkCycles = %d", res.ThinkCycles)
	}
	// Mapped traffic shows up in the controllers.
	if res.ICtl.PerKind[spm.RegionSTT].Reads != 1 {
		t.Errorf("I-SPM reads = %+v", res.ICtl.PerKind)
	}
	if res.DCtl.PerKind[spm.RegionSTT].Reads != 1 || res.DCtl.PerKind[spm.RegionSTT].Writes != 1 {
		t.Errorf("D-SPM counts = %+v", res.DCtl.PerKind[spm.RegionSTT])
	}
	if res.DCtl.MapIns != 1 || res.ICtl.MapIns != 1 {
		t.Errorf("MapIns = %d/%d", res.ICtl.MapIns, res.DCtl.MapIns)
	}
	// Unmapped traffic goes through the D-cache and DRAM.
	if res.DCacheStats.Misses == 0 {
		t.Error("cold block never missed the cache")
	}
	if res.DRAMStats.WordsRead == 0 {
		t.Error("no DRAM fill traffic")
	}
	if res.Cycles == 0 || res.SPMDynamicEnergy <= 0 || res.SPMStaticEnergy <= 0 {
		t.Error("missing accounting")
	}
	if res.TotalDynamicEnergy() <= res.SPMDynamicEnergy {
		t.Error("total energy must include cache+DRAM")
	}
	if res.SPMLeakage <= 0 {
		t.Error("no leakage reported")
	}
}

func TestRunDirtyCacheFlushed(t *testing.T) {
	p := program.New("flush")
	blk := p.MustAddBlock("W", program.DataBlock, 64)
	m := tinyMachine(t, spm.Placement{}, p)
	a, err := p.AddrOf(blk, 0)
	if err != nil {
		t.Fatal(err)
	}
	evs := []trace.Event{
		trace.AccessEvent(trace.Access{Op: trace.Write, Space: trace.Data, Addr: a, Size: 4}),
	}
	res, err := m.Run(trace.NewSliceStream(evs))
	if err != nil {
		t.Fatal(err)
	}
	if res.DRAMStats.WordsWritten == 0 {
		t.Error("dirty line not flushed at end of run")
	}
}

func TestRunRejectsStrayAccess(t *testing.T) {
	p := program.New("stray")
	p.MustAddBlock("A", program.DataBlock, 64)
	m := tinyMachine(t, spm.Placement{}, p)
	evs := []trace.Event{
		trace.AccessEvent(trace.Access{Op: trace.Read, Space: trace.Data, Addr: 0x0dead000, Size: 4}),
	}
	if _, err := m.Run(trace.NewSliceStream(evs)); err == nil {
		t.Error("stray access accepted")
	}
	evs = []trace.Event{{Kind: trace.Kind(77)}}
	if _, err := m.Run(trace.NewSliceStream(evs)); err == nil {
		t.Error("unknown event accepted")
	}
}

func TestSTTWritePenaltyVisible(t *testing.T) {
	// The same write-heavy trace must take longer on an STT-RAM-mapped
	// block than on a parity-SRAM-mapped one (10 vs 1 cycle writes).
	p := program.New("penalty")
	blk := p.MustAddBlock("B", program.DataBlock, 512)
	a, err := p.AddrOf(blk, 0)
	if err != nil {
		t.Fatal(err)
	}
	var evs []trace.Event
	for i := 0; i < 200; i++ {
		evs = append(evs, trace.AccessEvent(trace.Access{
			Op: trace.Write, Space: trace.Data, Addr: a + uint32(i*4)%512, Size: 4,
		}))
	}
	run := func(kind spm.RegionKind) memtech.Cycles {
		m := tinyMachine(t, spm.Placement{blk: kind}, p)
		res, err := m.Run(trace.NewSliceStream(evs))
		if err != nil {
			t.Fatal(err)
		}
		return res.Cycles
	}
	stt := run(spm.RegionSTT)
	par := run(spm.RegionParity)
	if stt <= par {
		t.Errorf("STT run (%d cycles) not slower than parity run (%d)", stt, par)
	}
	// ~9 extra cycles on each of 200 writes, minus transfer noise.
	if diff := stt - par; diff < 1500 {
		t.Errorf("write penalty only %d cycles over 200 writes", diff)
	}
}

func TestMachineSPMAccessors(t *testing.T) {
	p := program.New("acc")
	m := tinyMachine(t, spm.Placement{}, p)
	if m.DataSPM() == nil || m.InstSPM() == nil {
		t.Fatal("nil SPM accessor")
	}
	if m.DataSPM().TotalBytes() != 3*1024 || m.InstSPM().TotalBytes() != 4*1024 {
		t.Error("accessors return wrong SPMs")
	}
}

func TestEndToEndCaseStudyRuns(t *testing.T) {
	// Full pipeline smoke test: profile the case study, map nothing
	// (all-cache) vs map-all-to-STT, and verify the machine completes
	// with self-consistent accounting.
	w := workloads.CaseStudy()
	prof, err := profile.Run(w.Program(), w.Trace(0.05))
	if err != nil {
		t.Fatal(err)
	}
	place := spm.Placement{}
	for _, bp := range prof.Blocks {
		if bp.Block.Kind.IsData() && bp.Block.Size <= 12*1024 {
			place[bp.Block.ID] = spm.RegionSTT
		}
	}
	cfg := DefaultPlatform()
	cfg.ISPM = []spm.RegionConfig{{Kind: spm.RegionSTT, SizeBytes: 16 * 1024}}
	cfg.DSPM = []spm.RegionConfig{{Kind: spm.RegionSTT, SizeBytes: 16 * 1024}}
	cfg.Placement = place
	m, err := New(w.Program(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run(w.Trace(0.05))
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles < memtech.Cycles(res.Accesses) {
		t.Error("cycles below access count")
	}
	// The data SPM must have accumulated write wear for endurance
	// analysis.
	stt, ok := m.DataSPM().RegionByKind(spm.RegionSTT)
	if !ok || stt.MaxWriteCount() == 0 {
		t.Error("no write wear recorded")
	}
}

func TestRunWithPlanMatchesOnDemandAccounting(t *testing.T) {
	// A plan that maps blocks ahead of use must serve the same accesses
	// with no more transfer traffic than the on-demand controller.
	w := workloads.CaseStudy()
	prof, err := profile.Run(w.Program(), w.Trace(0.05))
	if err != nil {
		t.Fatal(err)
	}
	place := spm.Placement{}
	for _, bp := range prof.Blocks {
		if bp.Block.Kind.IsData() && bp.Block.Size <= 2*1024 {
			place[bp.Block.ID] = spm.RegionSTT
		}
	}
	cfg := DefaultPlatform()
	cfg.ISPM = []spm.RegionConfig{{Kind: spm.RegionSTT, SizeBytes: 16 * 1024}}
	cfg.DSPM = []spm.RegionConfig{{Kind: spm.RegionSTT, SizeBytes: 4 * 1024}} // forces time-sharing
	cfg.Placement = place

	mOn, err := New(w.Program(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	onDemand, err := mOn.Run(w.Trace(0.05))
	if err != nil {
		t.Fatal(err)
	}

	plan, err := schedule.Build(w.Program(), place, w.Trace(0.05),
		schedule.RegionWords(cfg.ISPM), schedule.RegionWords(cfg.DSPM))
	if err != nil {
		t.Fatal(err)
	}
	mPlan, err := New(w.Program(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	planned, err := mPlan.RunWithPlan(w.Trace(0.05), plan)
	if err != nil {
		t.Fatal(err)
	}

	if planned.Accesses != onDemand.Accesses {
		t.Errorf("access counts differ: %d vs %d", planned.Accesses, onDemand.Accesses)
	}
	if planned.DCtl.MapIns > onDemand.DCtl.MapIns {
		t.Errorf("plan mapped in more often (%d) than LRU (%d)",
			planned.DCtl.MapIns, onDemand.DCtl.MapIns)
	}
	if planned.DCtl.TransferCycles > onDemand.DCtl.TransferCycles {
		t.Errorf("plan transfer cycles %d exceed LRU %d",
			planned.DCtl.TransferCycles, onDemand.DCtl.TransferCycles)
	}
	if planned.DataRegionStats == nil || planned.DataRegionStats[spm.RegionSTT].WordsWritten == 0 {
		t.Error("region stats missing from result")
	}
}

func TestRunWithPlanBadBlock(t *testing.T) {
	p := program.New("bad")
	p.MustAddBlock("A", program.DataBlock, 64)
	m := tinyMachine(t, spm.Placement{}, p)
	plan := &schedule.Plan{Commands: []schedule.Command{{AtAccess: 0, Block: 99, Load: true}}}
	a, err := p.AddrOf(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	evs := []trace.Event{
		trace.AccessEvent(trace.Access{Op: trace.Read, Space: trace.Data, Addr: a, Size: 4}),
	}
	if _, err := m.RunWithPlan(trace.NewSliceStream(evs), plan); err == nil {
		t.Error("plan with phantom block accepted")
	}
}

func TestInjectionTargetsInstSPM(t *testing.T) {
	// Strikes aimed at the instruction SPM must land there and only
	// there: the data SPM's audit stays clean at any strike rate.
	p := program.New("itarget")
	code := p.MustAddBlock("Code", program.CodeBlock, 512)
	data := p.MustAddBlock("Data", program.DataBlock, 512)
	cfg := DefaultPlatform()
	cfg.ISPM = []spm.RegionConfig{{Kind: spm.RegionParity, SizeBytes: 1024}}
	cfg.DSPM = []spm.RegionConfig{{Kind: spm.RegionParity, SizeBytes: 1024}}
	cfg.Placement = spm.Placement{code: spm.RegionParity, data: spm.RegionParity}
	cfg.Injection = &InjectionConfig{
		StrikesPerAccess: 0.5,
		Dist:             faults.Dist40nm,
		Seed:             7,
		Target:           TargetInstSPM,
	}
	m, err := New(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	addrC, _ := p.AddrOf(code, 0)
	addrD, _ := p.AddrOf(data, 0)
	var evs []trace.Event
	for i := 0; i < 400; i++ {
		evs = append(evs,
			trace.AccessEvent(trace.Access{Op: trace.Read, Space: trace.Code, Addr: addrC + uint32(i*4)%512, Size: 4}),
			trace.AccessEvent(trace.Access{Op: trace.Read, Space: trace.Data, Addr: addrD + uint32(i*4)%512, Size: 4}),
		)
	}
	res, err := m.Run(trace.NewSliceStream(evs))
	if err != nil {
		t.Fatal(err)
	}
	if res.InjectedStrikes == 0 {
		t.Fatal("no strikes landed")
	}
	iT := m.InstSPM().Audit()
	if iT.DRE+iT.DUE+iT.SDC == 0 {
		t.Error("instruction SPM shows no strike damage")
	}
	dT := m.DataSPM().Audit()
	if dT.DRE+dT.DUE+dT.SDC != 0 {
		t.Errorf("data SPM damaged by inst-SPM-targeted strikes: %+v", dT)
	}
}

func TestInjectionTargetBothSPMsSpreads(t *testing.T) {
	p := program.New("btarget")
	code := p.MustAddBlock("Code", program.CodeBlock, 512)
	cfg := DefaultPlatform()
	cfg.ISPM = []spm.RegionConfig{{Kind: spm.RegionParity, SizeBytes: 1024}}
	cfg.DSPM = []spm.RegionConfig{{Kind: spm.RegionParity, SizeBytes: 1024}}
	cfg.Placement = spm.Placement{code: spm.RegionParity}
	cfg.Injection = &InjectionConfig{
		StrikesPerAccess: 0.9,
		Dist:             faults.Dist40nm,
		Seed:             11,
		Target:           TargetBothSPMs,
	}
	m, err := New(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	addrC, _ := p.AddrOf(code, 0)
	var evs []trace.Event
	for i := 0; i < 600; i++ {
		evs = append(evs, trace.AccessEvent(trace.Access{Op: trace.Read, Space: trace.Code, Addr: addrC, Size: 4}))
	}
	if _, err := m.Run(trace.NewSliceStream(evs)); err != nil {
		t.Fatal(err)
	}
	iT, dT := m.InstSPM().Audit(), m.DataSPM().Audit()
	if iT.DRE+iT.DUE+iT.SDC == 0 || dT.DRE+dT.DUE+dT.SDC == 0 {
		t.Errorf("strikes did not spread over both SPMs: inst %+v data %+v", iT, dT)
	}
}

func TestInjectionRejectsUnknownTarget(t *testing.T) {
	p := program.New("badtarget")
	blk := p.MustAddBlock("A", program.DataBlock, 64)
	cfg := DefaultPlatform()
	cfg.ISPM = []spm.RegionConfig{{Kind: spm.RegionSTT, SizeBytes: 1024}}
	cfg.DSPM = []spm.RegionConfig{{Kind: spm.RegionSTT, SizeBytes: 1024}}
	cfg.Injection = &InjectionConfig{
		StrikesPerAccess: 0.5,
		Dist:             faults.Dist40nm,
		Target:           InjectionTarget(42),
	}
	m, err := New(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := p.AddrOf(blk, 0)
	evs := []trace.Event{trace.AccessEvent(trace.Access{Op: trace.Read, Space: trace.Data, Addr: a, Size: 4})}
	if _, err := m.Run(trace.NewSliceStream(evs)); err == nil {
		t.Error("unknown injection target accepted")
	}
}

func TestRecoveryWiredThroughConfig(t *testing.T) {
	// With Config.Recovery set, strikes on a parity region holding a
	// clean block are recovered by DRAM re-fetch (on access or by the
	// scrubber) instead of standing as DUEs.
	p := program.New("recwire")
	data := p.MustAddBlock("Data", program.DataBlock, 512)
	cfg := DefaultPlatform()
	cfg.ISPM = []spm.RegionConfig{{Kind: spm.RegionSTT, SizeBytes: 1024}}
	cfg.DSPM = []spm.RegionConfig{{Kind: spm.RegionParity, SizeBytes: 1024}}
	cfg.Placement = spm.Placement{data: spm.RegionParity}
	cfg.Injection = &InjectionConfig{StrikesPerAccess: 0.2, Dist: faults.Dist40nm, Seed: 3}
	rec := spm.DefaultRecovery()
	rec.ScrubInterval = 64
	cfg.Recovery = &rec
	m, err := New(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	addrD, _ := p.AddrOf(data, 0)
	var evs []trace.Event
	for i := 0; i < 1500; i++ {
		evs = append(evs, trace.AccessEvent(trace.Access{Op: trace.Read, Space: trace.Data, Addr: addrD + uint32(i*4)%512, Size: 4}))
	}
	res, err := m.Run(trace.NewSliceStream(evs))
	if err != nil {
		t.Fatal(err)
	}
	rt := res.RecoveryTotals()
	if rt.ScrubRuns == 0 {
		t.Error("scrubber never ran")
	}
	if rt.RefetchedWords+rt.ScrubRefetches+rt.ScrubRestores == 0 {
		t.Error("no DUE word was recovered")
	}
	if rt.RecoveryCycles == 0 {
		t.Error("recovery charged no cycles")
	}
}

func TestWearDemotionFallsBackToCache(t *testing.T) {
	// A block that cannot stay in a degraded single-region SPM is demoted
	// mid-run; the simulator must route it (and blocks that no longer
	// fit) through the cache hierarchy and complete the run.
	p := program.New("demote")
	a := p.MustAddBlock("A", program.DataBlock, 64)
	bb := p.MustAddBlock("B", program.DataBlock, 64)
	cfg := DefaultPlatform()
	cfg.ISPM = []spm.RegionConfig{{Kind: spm.RegionSTT, SizeBytes: 1024}}
	cfg.DSPM = []spm.RegionConfig{{Kind: spm.RegionSTT, SizeBytes: 64}}
	cfg.Placement = spm.Placement{a: spm.RegionSTT, bb: spm.RegionSTT}
	rec := spm.DefaultRecovery()
	rec.RemapThreshold = 1
	rec.ScrubInterval = 0
	cfg.Recovery = &rec
	m, err := New(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Stick one cell of region word 0 at the inverse of the bit the DMA
	// of block A will write there, guaranteeing a write-verify failure
	// on map-in (raw codec: codeword bit i = payload bit i).
	addrA, _ := p.AddrOf(a, 0)
	addrB, _ := p.AddrOf(bb, 0)
	r0, err := m.DataSPM().Region(0)
	if err != nil {
		t.Fatal(err)
	}
	want := dram.Value(addrA / 4)
	if err := r0.InjectStuckAt(0, 0, want&1 == 0); err != nil {
		t.Fatal(err)
	}
	var evs []trace.Event
	for i := 0; i < 20; i++ {
		evs = append(evs,
			trace.AccessEvent(trace.Access{Op: trace.Read, Space: trace.Data, Addr: addrA, Size: 4}),
			trace.AccessEvent(trace.Access{Op: trace.Read, Space: trace.Data, Addr: addrB, Size: 4}),
		)
	}
	res, err := m.Run(trace.NewSliceStream(evs))
	if err != nil {
		t.Fatalf("run failed after demotion: %v", err)
	}
	rt := res.RecoveryTotals()
	if rt.Demotions != 2 {
		t.Errorf("Demotions = %d, want 2 (A via remap path, B via allocation failure)", rt.Demotions)
	}
	if rt.RetiredWords == 0 {
		t.Error("stuck word was not retired on the way out")
	}
	if rt.FirstDegradedTick == 0 {
		t.Error("time-to-degraded not recorded")
	}
	if res.DCacheStats.Hits+res.DCacheStats.Misses == 0 {
		t.Error("demoted blocks never reached the cache")
	}
}

package simd

import (
	"context"
	"fmt"
	"math/bits"
	"math/rand"

	"ftspm/internal/dram"
	"ftspm/internal/ecc"
	"ftspm/internal/faults"
	"ftspm/internal/sim"
	"ftspm/internal/spm"
)

// MaxLanes is the scenario capacity of one packed batch: one scenario
// per bit of the lane words.
const MaxLanes = 64

// Injection parameterizes the strike process shared by all lanes; each
// lane draws from its own RNG stream (the per-trial seed), so lanes are
// statistically independent scenarios of the same process.
type Injection struct {
	// StrikesPerAccess is the per-access strike probability
	// (sim.InjectionConfig.StrikesPerAccess).
	StrikesPerAccess float64
	// Dist gives strike multiplicities.
	Dist faults.MBUDistribution
	// Target selects the struck SPM(s).
	Target sim.InjectionTarget
}

// TrialResult is one lane's outcome, bit-identical to what the scalar
// simulator reports for the same seed.
type TrialResult struct {
	Accesses uint64
	Strikes  uint64
	Recovery spm.RecoveryStats
	Audit    faults.Tally
}

// strike is one scheduled fault for one lane: flip delta into the
// region's word just before the ops of access atAccess.
type strike struct {
	atAccess uint32
	region   int32
	word     int32
	delta    uint64
}

// Engine replays a skeleton under up to 64 strike scenarios at once.
// All mutable state is preallocated at construction and reused across
// batches: steady-state RunBatch performs no allocations.
type Engine struct {
	sk  *Skeleton
	inj Injection

	// Per-region fault state, nil for immune regions. delta holds each
	// lane's stored-codeword XOR against the fault-free codeword
	// (delta[w*64+L]); mask[w] has bit L set iff lane L's delta at word
	// w is non-zero; base[w] is the fault-free codeword and golden[w]
	// its payload, shared by all lanes (the shared trajectory writes
	// the same values everywhere).
	delta  [][]uint64
	mask   [][]uint64
	base   [][]uint64
	golden [][]uint32
	zero   []uint64 // per-region power-on codeword

	rngs   [MaxLanes]*rand.Rand
	sched  [MaxLanes][]strike
	cursor [MaxLanes]int

	strikes [MaxLanes]uint64
	stats   [MaxLanes]spm.RecoveryStats
	tally   [MaxLanes]faults.Tally
	planes  [MaxLanes]uint64
}

// NewEngine builds an engine over the skeleton. The injection is
// validated the same way the scalar simulator validates its
// InjectionConfig (a zero StrikesPerAccess disables strikes).
func NewEngine(sk *Skeleton, inj Injection) (*Engine, error) {
	if inj.StrikesPerAccess > 0 {
		if err := inj.Dist.Validate(); err != nil {
			return nil, fmt.Errorf("simd: injection: %w", err)
		}
		if !inj.Target.Valid() {
			return nil, fmt.Errorf("simd: injection: unknown target %d", int(inj.Target))
		}
	}
	e := &Engine{sk: sk, inj: inj}
	e.delta = make([][]uint64, len(sk.regions))
	e.mask = make([][]uint64, len(sk.regions))
	e.base = make([][]uint64, len(sk.regions))
	e.golden = make([][]uint32, len(sk.regions))
	e.zero = make([]uint64, len(sk.regions))
	for i := range sk.regions {
		rs := &sk.regions[i]
		if rs.immune {
			continue
		}
		e.delta[i] = make([]uint64, rs.words*MaxLanes)
		e.mask[i] = make([]uint64, rs.words)
		e.base[i] = make([]uint64, rs.words)
		e.golden[i] = make([]uint32, rs.words)
		e.zero[i] = rs.codec.Encode(ecc.BitsFromUint64(0)).Uint64()
	}
	for l := range e.rngs {
		e.rngs[l] = rand.New(rand.NewSource(0))
	}
	return e, nil
}

// reset returns all shared and per-lane state to power-on.
func (e *Engine) reset(lanes int) {
	for r := range e.sk.regions {
		if e.mask[r] == nil {
			continue
		}
		mask, delta := e.mask[r], e.delta[r]
		for w, m := range mask {
			if m == 0 {
				continue
			}
			for off := w * MaxLanes; m != 0; m &= m - 1 {
				delta[off+bits.TrailingZeros64(m)] = 0
			}
			mask[w] = 0
		}
		base, golden, zero := e.base[r], e.golden[r], e.zero[r]
		for w := range base {
			base[w] = zero
			golden[w] = 0
		}
	}
	for l := 0; l < lanes; l++ {
		e.cursor[l] = 0
		e.strikes[l] = 0
		e.stats[l] = spm.RecoveryStats{}
		e.tally[l] = faults.Tally{}
	}
}

// plan precomputes lane l's strike schedule by replaying the exact RNG
// draw sequence of the scalar injection path over the whole run: the
// struck surface is static, so strike placement is independent of the
// fault state. Immune-absorbed strikes are counted but not scheduled.
func (e *Engine) plan(l int, seed int64) {
	rng := e.rngs[l]
	rng.Seed(seed)
	sched := e.sched[l][:0]
	sk := e.sk
	p := e.inj.StrikesPerAccess
	for a := uint64(1); a <= sk.accesses; a++ {
		if rng.Float64() >= p {
			continue
		}
		e.strikes[l]++
		surf, total, off := sk.dSurf, sk.dBits, sk.dOff
		switch e.inj.Target {
		case sim.TargetInstSPM:
			surf, total, off = sk.iSurf, sk.iBits, sk.iOff
		case sim.TargetBothSPMs:
			if t := sk.iBits + sk.dBits; t > 0 && rng.Intn(t) < sk.iBits {
				surf, total, off = sk.iSurf, sk.iBits, sk.iOff
			}
		}
		ps := faults.PlanStrike(rng, surf, total, e.inj.Dist)
		if ps.Delta == 0 {
			continue
		}
		sched = append(sched, strike{
			atAccess: uint32(a), region: int32(off + ps.Region),
			word: int32(ps.Word), delta: ps.Delta,
		})
	}
	e.sched[l] = sched
}

func (e *Engine) applyStrike(l int, s *strike) {
	d := &e.delta[s.region][int(s.word)*MaxLanes+l]
	*d ^= s.delta
	if *d != 0 {
		e.mask[s.region][s.word] |= 1 << uint(l)
	} else {
		e.mask[s.region][s.word] &^= 1 << uint(l)
	}
}

// classify builds the bit-sliced planes for one faulted word and runs
// the region's lane-parallel decoder over the faulted lanes. Lanes
// outside the mask hold the fault-free codeword and are trivially
// clean, so only faulted lanes are active.
func (e *Engine) classify(r int, w int) (corrected, detected uint64) {
	rs := &e.sk.regions[r]
	m := e.mask[r][w]
	base := e.base[r][w]
	for p := 0; p < rs.codeBits; p++ {
		// Broadcast the fault-free codeword bit across all lanes.
		e.planes[p] = -(base >> uint(p) & 1)
	}
	delta := e.delta[r]
	for mm := m; mm != 0; mm &= mm - 1 {
		l := bits.TrailingZeros64(mm)
		for d := delta[w*MaxLanes+l]; d != 0; d &= d - 1 {
			e.planes[bits.TrailingZeros64(d)] ^= 1 << uint(l)
		}
	}
	return rs.lanes.ClassifyLanes(e.planes[:rs.codeBits], m)
}

// repair replicates the scalar scrub-on-read store: the stored word
// becomes the re-encoding of whatever the decoder extracted — zero
// delta for a true correction, a latent miscorrection otherwise.
func (e *Engine) repair(r, w, l int) {
	rs := &e.sk.regions[r]
	base := e.base[r][w]
	d := &e.delta[r][w*MaxLanes+l]
	data, _ := rs.codec.Decode(ecc.BitsFromUint64(base ^ *d))
	*d = rs.codec.Encode(data).Uint64() ^ base
	if *d == 0 {
		e.mask[r][w] &^= 1 << uint(l)
	}
}

// clearLane zeroes one lane's delta at a word (re-fetch, rollback,
// restore: the stored word returns to the fault-free codeword).
func (e *Engine) clearLane(r, w, l int) {
	e.delta[r][w*MaxLanes+l] = 0
	e.mask[r][w] &^= 1 << uint(l)
}

// runWrite replays an exact encode of address-derived values: all
// lanes' words become the same fault-free codeword, wiping any deltas.
func (e *Engine) runWrite(o *op) {
	r := int(o.region)
	rs := &e.sk.regions[r]
	base, golden, mask, delta := e.base[r], e.golden[r], e.mask[r], e.delta[r]
	for i := 0; i < int(o.words); i++ {
		w := int(o.word) + i
		v := dram.Value(o.addrW + uint32(i))
		golden[w] = v
		base[w] = rs.codec.Encode(ecc.BitsFromUint64(uint64(v))).Uint64()
		if m := mask[w]; m != 0 {
			for off := w * MaxLanes; m != 0; m &= m - 1 {
				delta[off+bits.TrailingZeros64(m)] = 0
			}
			mask[w] = 0
		}
	}
}

// runAccessRead replays a checked read on the program access path:
// corrected lanes count a DRE and repair in place, detected lanes
// trigger DUE recovery per the block's dirty state and the policy.
func (e *Engine) runAccessRead(o *op) {
	r := int(o.region)
	rs := &e.sk.regions[r]
	sk := e.sk
	for i := 0; i < int(o.words); i++ {
		w := int(o.word) + i
		if e.mask[r][w] == 0 {
			continue
		}
		corrected, detected := e.classify(r, w)
		for m := corrected; m != 0; m &= m - 1 {
			l := bits.TrailingZeros64(m)
			e.stats[l].CorrectedOnAccess++
			e.repair(r, w, l)
		}
		for m := detected; m != 0; m &= m - 1 {
			l := bits.TrailingZeros64(m)
			st := &e.stats[l]
			switch {
			case !sk.recoveryOn:
				st.UnrecoveredDUEs++
			case o.dirty && sk.recovery.DirtyPolicy == spm.DUERollback:
				st.Rollbacks++
				st.RecoveryCycles += rs.restore + sk.recovery.RollbackCycles
				e.clearLane(r, w, l)
			case o.dirty:
				st.SDCEscalations++
			default:
				// Clean block: the re-fetch rewrites the exact stored
				// value, so the verify read always succeeds first try.
				st.RefetchedWords++
				st.RecoveryCycles += rs.refetch
				e.clearLane(r, w, l)
			}
		}
	}
}

// runEvictRead replays a write-back read whose detection outcome the
// controller drops: corrections still repair the stored word, detected
// errors trigger nothing.
func (e *Engine) runEvictRead(o *op) {
	r := int(o.region)
	for i := 0; i < int(o.words); i++ {
		w := int(o.word) + i
		if e.mask[r][w] == 0 {
			continue
		}
		corrected, _ := e.classify(r, w)
		for m := corrected; m != 0; m &= m - 1 {
			e.repair(r, w, bits.TrailingZeros64(m))
		}
	}
}

// runScrub replays one background scrub walk using the recorded
// residency snapshot: corrected words are repaired in place, detected
// words recover per their residency class at scrub time.
func (e *Engine) runScrub(o *op) {
	snap := e.sk.snaps[o.snap]
	sk := e.sk
	for r := range snap {
		classes := snap[r]
		if classes == nil {
			continue
		}
		rs := &sk.regions[r]
		mask := e.mask[r]
		for w, m := range mask {
			if m == 0 {
				continue
			}
			corrected, detected := e.classify(r, w)
			for cm := corrected; cm != 0; cm &= cm - 1 {
				l := bits.TrailingZeros64(cm)
				e.stats[l].ScrubRepairs++
				e.stats[l].RecoveryCycles += rs.repair
				e.repair(r, w, l)
			}
			for dm := detected; dm != 0; dm &= dm - 1 {
				l := bits.TrailingZeros64(dm)
				st := &e.stats[l]
				switch classes[w] {
				case spm.ScrubWordClean:
					st.ScrubRefetches++
					st.RecoveryCycles += rs.refetch
					e.clearLane(r, w, l)
				case spm.ScrubWordDirty:
					if sk.recovery.DirtyPolicy == spm.DUERollback {
						st.ScrubRestores++
						st.RecoveryCycles += rs.restore + sk.recovery.RollbackCycles
						e.clearLane(r, w, l)
					} else {
						st.ScrubDUEs++
					}
				default: // ScrubWordFree
					st.ScrubRestores++
					st.RecoveryCycles += rs.restore
					e.clearLane(r, w, l)
				}
			}
		}
	}
}

// audit classifies every faulted (word, lane) against the golden
// payload, adjusting each lane's tally away from the all-Benign
// fault-free baseline.
func (e *Engine) audit() {
	for r := range e.sk.regions {
		mask := e.mask[r]
		if mask == nil {
			continue
		}
		rs := &e.sk.regions[r]
		base, golden, delta := e.base[r], e.golden[r], e.delta[r]
		for w, m := range mask {
			for ; m != 0; m &= m - 1 {
				l := bits.TrailingZeros64(m)
				t := &e.tally[l]
				t.Benign--
				data, status := rs.codec.Decode(ecc.BitsFromUint64(base[w] ^ delta[w*MaxLanes+l]))
				intact := uint32(data.Uint64()) == golden[w]
				switch status {
				case ecc.Corrected:
					if intact {
						t.DRE++
					} else {
						t.SDC++
					}
				case ecc.Detected:
					t.DUE++
				default:
					if intact {
						t.Benign++
					} else {
						t.SDC++
					}
				}
			}
		}
	}
}

// ctxStride throttles cancellation checks to match the scalar run
// loop's per-event polling granularity.
const ctxStride = 4096

// RunBatch executes one packed batch: lane l runs the skeleton's
// trajectory under the strike scenario seeded by seeds[l], and out[l]
// receives its result. len(seeds) must be 1..MaxLanes and len(out) at
// least len(seeds). Cancellation returns an error wrapping
// sim.ErrCanceled, like the scalar simulator.
func (e *Engine) RunBatch(ctx context.Context, seeds []int64, out []TrialResult) error {
	lanes := len(seeds)
	if lanes == 0 || lanes > MaxLanes {
		return fmt.Errorf("simd: batch of %d lanes (want 1..%d)", lanes, MaxLanes)
	}
	if len(out) < lanes {
		return fmt.Errorf("simd: %d result slots for %d lanes", len(out), lanes)
	}
	e.reset(lanes)
	if e.inj.StrikesPerAccess > 0 {
		for l := 0; l < lanes; l++ {
			if ctx != nil {
				if err := ctx.Err(); err != nil {
					return fmt.Errorf("%w while planning lane %d: %w", sim.ErrCanceled, l, err)
				}
			}
			e.plan(l, seeds[l])
		}
	}

	sk := e.sk
	for i := range sk.ops {
		o := &sk.ops[i]
		if ctx != nil && i%ctxStride == ctxStride-1 {
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("%w after %d ops: %w", sim.ErrCanceled, i, err)
			}
		}
		for l := 0; l < lanes; l++ {
			sc := e.sched[l]
			cur := e.cursor[l]
			for cur < len(sc) && sc[cur].atAccess <= o.atAccess {
				e.applyStrike(l, &sc[cur])
				cur++
			}
			e.cursor[l] = cur
		}
		switch o.kind {
		case opWrite:
			e.runWrite(o)
		case opAccessRead:
			e.runAccessRead(o)
		case opEvictRead:
			e.runEvictRead(o)
		case opScrub:
			e.runScrub(o)
		}
	}
	// Strikes landing after the last recorded op still corrupt state
	// the end-of-run audit sees.
	for l := 0; l < lanes; l++ {
		sc := e.sched[l]
		for cur := e.cursor[l]; cur < len(sc); cur++ {
			e.applyStrike(l, &sc[cur])
		}
		e.cursor[l] = len(sc)
	}

	for l := 0; l < lanes; l++ {
		e.tally[l].Benign = sk.baseBenign
	}
	e.audit()

	for l := 0; l < lanes; l++ {
		rec := sk.base
		rec.Add(e.stats[l])
		out[l] = TrialResult{
			Accesses: sk.accesses,
			Strikes:  e.strikes[l],
			Recovery: rec,
			Audit:    e.tally[l],
		}
	}
	return nil
}

// Lanes returns the batch capacity.
func (e *Engine) Lanes() int { return MaxLanes }

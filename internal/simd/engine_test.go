package simd_test

import (
	"context"
	"errors"
	"strings"
	"testing"

	"ftspm/internal/core"
	"ftspm/internal/faults"
	"ftspm/internal/profile"
	"ftspm/internal/sim"
	"ftspm/internal/simd"
	"ftspm/internal/spm"
	"ftspm/internal/trace"
	"ftspm/internal/workloads"
)

// buildConfig maps the case study onto a structure and returns the
// simulator config plus the trace, mirroring what the soak runner does.
func buildConfig(t *testing.T, s core.Structure, scale float64) (sim.Config, []trace.Event, *workloads.Workload) {
	t.Helper()
	w, err := workloads.ByName(workloads.CaseStudyName)
	if err != nil {
		t.Fatal(err)
	}
	events := w.TraceEvents(scale)
	prof, err := profile.Run(w.Program(), trace.Replay(events))
	if err != nil {
		t.Fatal(err)
	}
	spec, err := core.NewSpec(s)
	if err != nil {
		t.Fatal(err)
	}
	mapping, err := core.MapBlocks(prof, spec, core.DefaultThresholds(), core.PriorityReliability)
	if err != nil {
		t.Fatal(err)
	}
	cfg := spec.SimConfig(mapping.Placement)
	rec := spm.DefaultRecovery()
	cfg.Recovery = &rec
	return cfg, events, &w
}

func buildEngine(t *testing.T, p float64) (*simd.Skeleton, *simd.Engine) {
	t.Helper()
	cfg, events, w := buildConfig(t, core.StructFTSPM, 0.02)
	sk, err := simd.BuildSkeleton(context.Background(), w.Program(), cfg, events)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := simd.NewEngine(sk, simd.Injection{
		StrikesPerAccess: p,
		Dist:             faults.Dist40nm,
		Target:           sim.TargetBothSPMs,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sk, eng
}

// TestBuildSkeletonRejectsWear pins the fallback gate: a wear model
// forks per-trial control flow, so recording must refuse up front.
func TestBuildSkeletonRejectsWear(t *testing.T) {
	cfg, events, w := buildConfig(t, core.StructFTSPM, 0.02)
	cfg.Wear = &spm.WearConfig{WriteFailProb: 0.01, MaxWriteRetries: 2}
	_, err := simd.BuildSkeleton(context.Background(), w.Program(), cfg, events)
	if !errors.Is(err, simd.ErrUnsupported) {
		t.Fatalf("BuildSkeleton with wear: got %v, want ErrUnsupported", err)
	}
}

// TestRunBatchValidation covers the lane-count contract.
func TestRunBatchValidation(t *testing.T) {
	_, eng := buildEngine(t, 0.02)
	out := make([]simd.TrialResult, simd.MaxLanes+1)
	if err := eng.RunBatch(context.Background(), nil, out); err == nil {
		t.Error("RunBatch with zero seeds succeeded")
	}
	seeds := make([]int64, simd.MaxLanes+1)
	if err := eng.RunBatch(context.Background(), seeds, out); err == nil {
		t.Errorf("RunBatch with %d lanes succeeded", len(seeds))
	}
	if err := eng.RunBatch(context.Background(), seeds[:4], out[:3]); err == nil {
		t.Error("RunBatch with short result slice succeeded")
	}
}

// TestRunBatchCancellation: a cancelled context aborts the batch with
// the scalar simulator's sentinel.
func TestRunBatchCancellation(t *testing.T) {
	_, eng := buildEngine(t, 0.02)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out := make([]simd.TrialResult, 2)
	err := eng.RunBatch(ctx, []int64{1, 2}, out)
	if !errors.Is(err, sim.ErrCanceled) {
		t.Fatalf("cancelled RunBatch: got %v, want sim.ErrCanceled", err)
	}
}

// TestRunBatchDeterministic: the same seeds give the same results on a
// reused engine, and distinct seeds give distinct strike streams.
func TestRunBatchDeterministic(t *testing.T) {
	_, eng := buildEngine(t, 0.05)
	seeds := []int64{7, 1_000_010, 2_000_013, 3_000_016}
	a := make([]simd.TrialResult, len(seeds))
	b := make([]simd.TrialResult, len(seeds))
	if err := eng.RunBatch(context.Background(), seeds, a); err != nil {
		t.Fatal(err)
	}
	if err := eng.RunBatch(context.Background(), seeds, b); err != nil {
		t.Fatal(err)
	}
	for l := range seeds {
		if a[l] != b[l] {
			t.Errorf("lane %d not reproducible:\nfirst:  %+v\nsecond: %+v", l, a[l], b[l])
		}
	}
	distinct := false
	for l := 1; l < len(seeds); l++ {
		if a[l].Strikes != a[0].Strikes {
			distinct = true
		}
	}
	if !distinct {
		t.Error("all lanes drew identical strike counts; seeds look ignored")
	}
}

// TestRunBatchSteadyStateAllocs: after the first (warm-up) batch,
// RunBatch must not allocate.
func TestRunBatchSteadyStateAllocs(t *testing.T) {
	_, eng := buildEngine(t, 0.05)
	seeds := make([]int64, simd.MaxLanes)
	for l := range seeds {
		seeds[l] = int64(l + 1)
	}
	out := make([]simd.TrialResult, simd.MaxLanes)
	if err := eng.RunBatch(context.Background(), seeds, out); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(3, func() {
		if err := eng.RunBatch(context.Background(), seeds, out); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state RunBatch allocates %.1f times per batch, want 0", allocs)
	}
}

// TestSkeletonAccesses: the recorded access count matches the trace's
// access-event count, which is what the strike planner iterates over.
func TestSkeletonAccesses(t *testing.T) {
	sk, _ := buildEngine(t, 0)
	if sk.Accesses() == 0 {
		t.Fatal("skeleton recorded zero accesses")
	}
	cfg, events, w := buildConfig(t, core.StructFTSPM, 0.02)
	m, err := sim.New(w.Program(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.RunContext(context.Background(), trace.Replay(events))
	if err != nil {
		t.Fatal(err)
	}
	if sk.Accesses() != res.Accesses {
		t.Errorf("skeleton accesses %d, scalar run %d", sk.Accesses(), res.Accesses)
	}
}

// TestNewEngineValidatesInjection mirrors the scalar simulator's
// injection validation.
func TestNewEngineValidatesInjection(t *testing.T) {
	sk, _ := buildEngine(t, 0)
	_, err := simd.NewEngine(sk, simd.Injection{
		StrikesPerAccess: 0.01, Dist: faults.Dist40nm, Target: sim.InjectionTarget(99),
	})
	if err == nil || !strings.Contains(err.Error(), "target") {
		t.Errorf("bad target: got %v, want target validation error", err)
	}
	_, err = simd.NewEngine(sk, simd.Injection{StrikesPerAccess: 0.01})
	if err == nil {
		t.Error("zero-value distribution with strikes enabled passed validation")
	}
}

// Package simd is the bit-parallel Monte-Carlo soak engine: it advances
// up to 64 independently-seeded fault scenarios through a single trace
// pass, one scenario per bit lane of machine words (SWAR).
//
// The key observation is that with no wear model attached, the
// controller's control flow — block residency, evictions, dirty bits,
// scrub timing — is a pure function of the access trace: particle
// strikes corrupt stored codewords, but every recovery action either
// restores the exact pre-fault content (re-fetch, rollback, scrub
// repair of a true single-bit upset) or leaves the word untouched, so
// the trajectory of *which* operations happen never depends on the
// strike history. One instrumented scalar run therefore yields a
// region-level operation skeleton (skeleton.go), and a packed engine
// (engine.go) replays that skeleton against 64 strike scenarios at
// once, tracking per-lane codeword deltas and classifying them with the
// lane-parallel decoders of internal/ecc. Scenarios whose configuration
// breaks the shared-trajectory argument (a wear model, an operation the
// replay cannot reproduce) are rejected with ErrUnsupported, and the
// caller falls back to the scalar path — the packed engine is an
// optimization, never a semantic fork.
package simd

import (
	"context"
	"errors"
	"fmt"

	"ftspm/internal/ecc"
	"ftspm/internal/faults"
	"ftspm/internal/memtech"
	"ftspm/internal/program"
	"ftspm/internal/sim"
	"ftspm/internal/spm"
	"ftspm/internal/trace"
)

// ErrUnsupported reports a configuration or recorded operation outside
// the packed engine's shared-trajectory envelope; callers run the
// scalar simulator instead.
var ErrUnsupported = errors.New("simd: configuration unsupported by the packed engine")

// opKind enumerates the recorded operation types.
type opKind uint8

const (
	opWrite opKind = iota + 1
	opAccessRead
	opEvictRead
	opScrub
)

// op is one recorded codeword-level operation. Region indices are
// global across both SPMs: instruction-SPM regions first, in
// configuration order, then data-SPM regions.
type op struct {
	kind  opKind
	dirty bool // serving block dirty at read time (opAccessRead)
	// region/word/words locate the touched interval (not for opScrub).
	region int32
	word   int32
	words  int32
	// snap indexes Skeleton.snaps (opScrub only).
	snap int32
	// atAccess is the 1-based access-event count the operation belongs
	// to; strikes drawn at access k land before the ops recorded at k.
	atAccess uint32
	// addrW is the DRAM word address written to word `word` (opWrite):
	// word+i receives dram.Value(addrW+i).
	addrW uint32
}

// regionState is the static per-region geometry the engine needs.
type regionState struct {
	codec    ecc.Codec
	lanes    ecc.LaneClassifier // nil for immune regions
	words    int
	codeBits int
	immune   bool
	// refetch/restore/repair are the per-word recovery cycle costs,
	// precomputed from the region's bank and the DRAM timing so the
	// replay never touches the latency models.
	refetch memtech.Cycles
	restore memtech.Cycles
	repair  memtech.Cycles
}

// Skeleton is one recorded fault-free trajectory of a (workload,
// structure) configuration: everything the packed engine needs to
// replay the run under 64 strike scenarios.
type Skeleton struct {
	regions []regionState
	ops     []op
	// snaps holds the scrub residency snapshots: snaps[i][region] is
	// the per-word spm.ScrubWord* class slice of each protected region
	// of the scrubbing controller (nil for regions the scrub skips).
	snaps [][][]byte

	accesses uint64
	// base is the fault-free recovery tally (scrub runs and their walk
	// cycles); every lane starts from it.
	base spm.RecoveryStats
	// baseBenign is the total auditable words across both SPMs: the
	// fault-free audit classifies every one of them Benign.
	baseBenign int

	recovery   spm.RecoveryConfig
	recoveryOn bool

	// Strike-surface geometry per SPM, in region order, for replaying
	// the injection RNG draw sequence.
	iSurf, dSurf []faults.RegionSurface
	iBits, dBits int
	iOff, dOff   int // global region index of each surface's region 0
}

// Accesses returns the trace's access-event count (every lane of every
// batch performs exactly this many accesses).
func (sk *Skeleton) Accesses() uint64 { return sk.accesses }

// builder accumulates the recording; ctlRecorder adapts it to one
// controller's spm.OpRecorder with a global region-index offset.
type builder struct {
	sk          *Skeleton
	access      uint32
	unsupported string
}

type ctlRecorder struct {
	b      *builder
	offset int
}

func (c *ctlRecorder) skip(region int) bool {
	return c.b.sk.regions[c.offset+region].immune
}

func (c *ctlRecorder) RecordWrite(region, wordIdx, words int, addrWord uint32) {
	// Ops on immune regions are skipped entirely: no strike ever lands
	// a delta there, so the replay has nothing to do. On FTSPM this
	// drops the STT-RAM traffic — the bulk of the op stream.
	if c.skip(region) {
		return
	}
	c.b.sk.ops = append(c.b.sk.ops, op{
		kind: opWrite, region: int32(c.offset + region),
		word: int32(wordIdx), words: int32(words),
		atAccess: c.b.access, addrW: addrWord,
	})
}

func (c *ctlRecorder) RecordAccessRead(region, wordIdx, words int, dirty bool) {
	if c.skip(region) {
		return
	}
	c.b.sk.ops = append(c.b.sk.ops, op{
		kind: opAccessRead, region: int32(c.offset + region),
		word: int32(wordIdx), words: int32(words),
		dirty: dirty, atAccess: c.b.access,
	})
}

func (c *ctlRecorder) RecordEvictRead(region, wordIdx, words int) {
	if c.skip(region) {
		return
	}
	c.b.sk.ops = append(c.b.sk.ops, op{
		kind: opEvictRead, region: int32(c.offset + region),
		word: int32(wordIdx), words: int32(words),
		atAccess: c.b.access,
	})
}

func (c *ctlRecorder) RecordScrub(classes [][]byte) {
	sk := c.b.sk
	snap := make([][]byte, len(sk.regions))
	for local, cl := range classes {
		if cl == nil {
			continue
		}
		cp := make([]byte, len(cl))
		copy(cp, cl)
		snap[c.offset+local] = cp
	}
	sk.snaps = append(sk.snaps, snap)
	sk.ops = append(sk.ops, op{
		kind: opScrub, snap: int32(len(sk.snaps) - 1), atAccess: c.b.access,
	})
}

func (c *ctlRecorder) RecordUnsupported(opName string) {
	if c.b.unsupported == "" {
		c.b.unsupported = opName
	}
}

// BuildSkeleton runs the configuration once, fault-free and
// instrumented, and returns the recorded trajectory. Configurations the
// packed engine cannot replay return an error wrapping ErrUnsupported.
func BuildSkeleton(ctx context.Context, prog *program.Program, cfg sim.Config, events []trace.Event) (*Skeleton, error) {
	if cfg.Wear != nil {
		// Wear makes write outcomes stochastic per trial, which forks
		// the control flow (retries, stuck cells, remaps) — the whole
		// shared-trajectory argument collapses.
		return nil, fmt.Errorf("%w: wear model attached", ErrUnsupported)
	}
	if cfg.Injection != nil && cfg.Injection.Storm != nil {
		// Correlated storms emit multi-word events from a stateful
		// process and couple into the wear scale; the per-lane strike
		// schedule (faults.PlanStrike) cannot express them.
		return nil, fmt.Errorf("%w: storm injection model attached", ErrUnsupported)
	}
	if cfg.Recovery != nil && cfg.Recovery.Adaptive != nil {
		// Adaptive defenses make scrub timing and block placement
		// depend on each lane's error history, so lanes no longer
		// share one trajectory.
		return nil, fmt.Errorf("%w: adaptive recovery attached", ErrUnsupported)
	}
	rcfg := cfg
	rcfg.Injection = nil // the recording run is fault-free by definition
	m, err := sim.New(prog, rcfg)
	if err != nil {
		return nil, err
	}

	sk := &Skeleton{recoveryOn: cfg.Recovery != nil}
	if cfg.Recovery != nil {
		sk.recovery = *cfg.Recovery
	}
	iRegions := m.InstSPM().Regions()
	dRegions := m.DataSPM().Regions()
	sk.iOff, sk.dOff = 0, len(iRegions)
	for _, r := range append(iRegions, dRegions...) {
		codec := r.Codec()
		immune := r.Kind().Immune()
		rs := regionState{
			codec:    codec,
			words:    r.Words(),
			codeBits: codec.CodeBits(),
			immune:   immune,
		}
		if !immune {
			if rs.codeBits > 64 {
				return nil, fmt.Errorf("%w: %s codewords exceed one lane word", ErrUnsupported, codec.Name())
			}
			lanes, ok := codec.(ecc.LaneClassifier)
			if !ok {
				return nil, fmt.Errorf("%w: %s has no lane-parallel classifier", ErrUnsupported, codec.Name())
			}
			rs.lanes = lanes
			bank := r.Bank()
			word := memtech.WordBytes
			rs.refetch = cfg.DRAM.FirstWordLatency +
				bank.AccessLatency(word, true) + bank.AccessLatency(word, false)
			rs.restore = bank.AccessLatency(word, true)
			rs.repair = bank.AccessLatency(word, true)
		}
		sk.regions = append(sk.regions, rs)
		sk.baseBenign += r.Words()
	}
	for _, r := range iRegions {
		sk.iSurf = append(sk.iSurf, faults.RegionSurface{
			Words: r.Words(), CodeBits: r.Codec().CodeBits(), Immune: r.Kind().Immune(),
		})
	}
	for _, r := range dRegions {
		sk.dSurf = append(sk.dSurf, faults.RegionSurface{
			Words: r.Words(), CodeBits: r.Codec().CodeBits(), Immune: r.Kind().Immune(),
		})
	}
	sk.iBits = faults.SurfaceBits(sk.iSurf)
	sk.dBits = faults.SurfaceBits(sk.dSurf)

	b := &builder{sk: sk}
	m.InstController().SetRecorder(&ctlRecorder{b: b, offset: sk.iOff})
	m.DataController().SetRecorder(&ctlRecorder{b: b, offset: sk.dOff})
	m.SetAccessProbe(func() { b.access++ })

	res, err := m.RunContext(ctx, trace.Replay(events))
	if err != nil {
		return nil, err
	}
	if b.unsupported != "" {
		return nil, fmt.Errorf("%w: recorded %s", ErrUnsupported, b.unsupported)
	}
	sk.accesses = res.Accesses
	sk.base = res.RecoveryTotals()
	return sk, nil
}

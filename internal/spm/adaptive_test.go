package spm

import (
	"errors"
	"math/rand"
	"testing"

	"ftspm/internal/program"
)

// adaptiveFixture is recoveryFixture with the storm defenses armed.
func adaptiveFixture(t *testing.T, rc RecoveryConfig, ac AdaptiveConfig) (*Controller, map[string]program.BlockID) {
	t.Helper()
	rc.Adaptive = &ac
	ctl, _, ids := recoveryFixture(t, rc)
	return ctl, ids
}

func TestAdaptiveConfigValidation(t *testing.T) {
	if err := DefaultAdaptive().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []AdaptiveConfig{
		{WindowAccesses: 0, EscalateRate: 0.1, EscalatedScrubInterval: 16},
		{WindowAccesses: 16, EscalateRate: 0, EscalatedScrubInterval: 16},
		{WindowAccesses: 16, EscalateRate: 0.1, DeescalateRate: 0.5, EscalatedScrubInterval: 16},
		{WindowAccesses: 16, EscalateRate: 0.1, EscalatedScrubInterval: 0},
		{WindowAccesses: 16, EscalateRate: 0.1, EscalatedScrubInterval: 16, MinDwellWindows: -1},
		{WindowAccesses: 16, EscalateRate: 0.1, EscalatedScrubInterval: 16, BypassRate: -0.5},
	}
	for i, ac := range bad {
		if err := ac.Validate(); !errors.Is(err, ErrBadRecoveryConfig) {
			t.Errorf("config %d: err = %v, want ErrBadRecoveryConfig", i, err)
		}
	}
	// Adaptive scrub escalation needs a base scrub to escalate.
	rc := DefaultRecovery()
	rc.ScrubInterval = 0
	ad := DefaultAdaptive()
	rc.Adaptive = &ad
	if err := rc.Validate(); !errors.Is(err, ErrBadRecoveryConfig) {
		t.Errorf("adaptive without base scrub accepted: %v", err)
	}
}

// hammer injects a fresh single-bit strike into the block's first word
// and reads it, so every access yields one corrected-on-access event —
// a 100% window error rate.
func hammer(t *testing.T, ctl *Controller, id program.BlockID, rng *rand.Rand, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		res := ctl.resident[id]
		if res.live {
			r := ctl.regions[res.region]
			if _, err := r.InjectStrike(rng, res.baseWord, 1); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := ctl.Access(id, 0, 4, false); err != nil && !errors.Is(err, ErrNotMapped) {
			t.Fatal(err)
		}
	}
}

// quiet performs fault-free accesses.
func quiet(t *testing.T, ctl *Controller, id program.BlockID, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, err := ctl.Access(id, 0, 4, false); err != nil {
			t.Fatal(err)
		}
	}
}

func TestAdaptiveEscalatesAndDeescalates(t *testing.T) {
	rc := DefaultRecovery()
	rc.ScrubInterval = 1 << 20 // park the base scrubber
	ctl, ids := adaptiveFixture(t, rc, AdaptiveConfig{
		WindowAccesses:         16,
		EscalateRate:           0.5,
		DeescalateRate:         0.05,
		EscalatedScrubInterval: 8,
		MinDwellWindows:        4,
	})
	warm := ids["Warm"]
	rng := rand.New(rand.NewSource(3))

	quiet(t, ctl, warm, 1) // map in
	hammer(t, ctl, warm, rng, 40)
	st := ctl.Stats().Recovery
	if st.ScrubEscalations != 1 {
		t.Fatalf("ScrubEscalations = %d, want 1", st.ScrubEscalations)
	}
	if !ctl.escalated {
		t.Fatal("controller not in the escalated state after a hammered window")
	}
	if st.EscalatedAccesses == 0 {
		t.Error("no accesses counted as escalated")
	}
	if st.PeakWindowErrorRate < 0.5 {
		t.Errorf("PeakWindowErrorRate = %v, want >= 0.5", st.PeakWindowErrorRate)
	}

	// While escalated, scrub runs every EscalatedScrubInterval accesses
	// instead of the parked base interval.
	runsBefore := ctl.Stats().Recovery.ScrubRuns
	quiet(t, ctl, warm, 32)
	if got := ctl.Stats().Recovery.ScrubRuns - runsBefore; got < 3 {
		t.Errorf("escalated scrub ran %d times over 32 accesses, want >= 3", got)
	}

	// Hysteresis: the error rate is now ~0, but de-escalation waits out
	// MinDwellWindows before dropping back.
	quiet(t, ctl, warm, 16*5)
	st = ctl.Stats().Recovery
	if st.ScrubDeescalations != 1 {
		t.Fatalf("ScrubDeescalations = %d, want 1", st.ScrubDeescalations)
	}
	if ctl.escalated {
		t.Fatal("controller still escalated after quiet dwell windows")
	}
	runsBefore = ctl.Stats().Recovery.ScrubRuns
	quiet(t, ctl, warm, 32)
	if got := ctl.Stats().Recovery.ScrubRuns - runsBefore; got != 0 {
		t.Errorf("base scrub ran %d times after de-escalation, want 0", got)
	}
}

func TestEmergencyRefreshFlushesLatentCorruption(t *testing.T) {
	rc := DefaultRecovery()
	rc.ScrubInterval = 1 << 20
	ctl, ids := adaptiveFixture(t, rc, AdaptiveConfig{
		WindowAccesses:         16,
		EscalateRate:           0.5,
		EscalatedScrubInterval: 1 << 20, // isolate the refresh from the scrubber
		EmergencyRefresh:       true,
	})
	warm := ids["Warm"]
	rng := rand.New(rand.NewSource(5))
	quiet(t, ctl, warm, 1)

	// Plant a latent double-bit error (a SEC-DED DUE) in a word of the
	// clean resident block that the hammered accesses never touch.
	res := ctl.resident[warm]
	r := ctl.regions[res.region]
	latent := res.baseWord + res.words - 1
	if err := r.ApplyStrikeDelta(latent, 0b11); err != nil {
		t.Fatal(err)
	}
	if _, _, oc, err := r.ReadChecked(latent, 1); err != nil || len(oc.Detected) != 1 {
		t.Fatalf("latent DUE not armed: oc=%+v err=%v", oc, err)
	}

	hammer(t, ctl, warm, rng, 20)
	st := ctl.Stats().Recovery
	if st.ScrubEscalations == 0 {
		t.Fatal("escalation never fired")
	}
	if st.EmergencyRefreshBlocks == 0 || st.EmergencyRefreshWords < uint64(res.words) {
		t.Fatalf("emergency refresh did not rewrite the block: %d blocks / %d words",
			st.EmergencyRefreshBlocks, st.EmergencyRefreshWords)
	}
	if _, _, oc, err := r.ReadChecked(latent, 1); err != nil || len(oc.Detected) != 0 {
		t.Fatalf("latent DUE survived the emergency refresh: oc=%+v err=%v", oc, err)
	}
}

func TestStormBypassDemotesAfflictedBlock(t *testing.T) {
	rc := DefaultRecovery()
	rc.ScrubInterval = 1 << 20
	ctl, ids := adaptiveFixture(t, rc, AdaptiveConfig{
		WindowAccesses:         16,
		EscalateRate:           0.5,
		EscalatedScrubInterval: 1 << 20,
		BypassRate:             0.5,
	})
	warm := ids["Warm"] // 1024 B in the 1 KiB ECC region; no fallback fits
	rng := rand.New(rand.NewSource(7))
	quiet(t, ctl, warm, 1)
	hammer(t, ctl, warm, rng, 64)

	st := ctl.Stats().Recovery
	if st.StormBypasses == 0 {
		t.Fatal("storm bypass never fired")
	}
	if ctl.IsMapped(warm) {
		t.Fatal("afflicted block still mapped after bypass (no fallback region fits it)")
	}
	if st.Demotions == 0 {
		t.Error("bypass demotion not counted")
	}
	// The demoted block now routes to the cache path.
	if _, err := ctl.Access(warm, 0, 4, false); !errors.Is(err, ErrNotMapped) {
		t.Fatalf("access after bypass: %v, want ErrNotMapped", err)
	}
	checkSpaceInvariant(t, ctl, 1)
}

func TestApplyStrikeDelta(t *testing.T) {
	s, err := New(0,
		RegionConfig{Kind: RegionSTT, SizeBytes: 64},
		RegionConfig{Kind: RegionECC, SizeBytes: 64},
	)
	if err != nil {
		t.Fatal(err)
	}
	stt, ecc := s.Regions()[0], s.Regions()[1]
	if err := ecc.ApplyStrikeDelta(99, 1); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("out-of-range delta: %v", err)
	}
	if _, err := ecc.Write(0, []uint32{0xdeadbeef}); err != nil {
		t.Fatal(err)
	}
	if err := ecc.ApplyStrikeDelta(0, 0); err != nil {
		t.Fatal(err)
	}
	if _, _, oc, err := ecc.ReadChecked(0, 1); err != nil || oc.Corrected != 0 || len(oc.Detected) != 0 {
		t.Fatalf("zero delta corrupted the word: oc=%+v err=%v", oc, err)
	}
	if err := ecc.ApplyStrikeDelta(0, 1<<3); err != nil {
		t.Fatal(err)
	}
	if _, _, oc, err := ecc.ReadChecked(0, 1); err != nil || oc.Corrected != 1 {
		t.Fatalf("single-bit delta not corrected: oc=%+v err=%v", oc, err)
	}
	// Immune regions absorb deltas without touching the cells.
	if _, err := stt.Write(0, []uint32{0x1234}); err != nil {
		t.Fatal(err)
	}
	if err := stt.ApplyStrikeDelta(0, 0xff); err != nil {
		t.Fatal(err)
	}
	if v, _, err := stt.Read(0, 1); err != nil || v[0] != 0x1234 {
		t.Fatalf("immune region took a delta: %#x err=%v", v, err)
	}
}

func TestSetWearScaleThermalRamp(t *testing.T) {
	s, err := New(0, RegionConfig{Kind: RegionECC, SizeBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	r := s.Regions()[0]
	// Without wear, SetWearScale is a no-op.
	r.SetWearScale(5)
	if err := r.EnableWear(WearConfig{WriteFailProb: 0.4, MaxWriteRetries: 2}, 11); err != nil {
		t.Fatal(err)
	}

	// Scale 2.5 clamps the failure probability to 1: every write
	// deterministically burns the full retry budget and leaves one
	// unswitched cell.
	r.SetWearScale(2.5)
	vals := []uint32{1, 2, 3, 4}
	_, oc, err := r.WriteChecked(0, vals)
	if err != nil {
		t.Fatal(err)
	}
	if oc.Retries != 2*len(vals) || len(oc.Failed) != len(vals) {
		t.Fatalf("p=1 write: retries=%d failed=%d, want %d/%d",
			oc.Retries, len(oc.Failed), 2*len(vals), len(vals))
	}

	// Cooling back to scale 0 kills the transient failures entirely.
	r.SetWearScale(0)
	if _, oc, err = r.WriteChecked(0, vals); err != nil {
		t.Fatal(err)
	}
	if oc.Retries != 0 || len(oc.Failed) != 0 {
		t.Fatalf("p=0 write still failed: %+v", oc)
	}
	// Negative scales are rejected (the ramp never goes below cool).
	r.SetWearScale(-1)
	if _, oc, err = r.WriteChecked(0, vals); err != nil || oc.Retries != 0 {
		t.Fatalf("negative scale applied: %+v err=%v", oc, err)
	}
}

package spm

import (
	"testing"

	"ftspm/internal/program"
)

// steadyController returns a fixture controller with the Hot block
// already resident, so subsequent Access calls exercise the steady-state
// hot path (no DMA, no eviction).
func steadyController(tb testing.TB, recovery bool) (*Controller, program.BlockID) {
	tb.Helper()
	ctl, _, ids := ctlFixture(tb)
	if recovery {
		if err := ctl.EnableRecovery(DefaultRecovery()); err != nil {
			tb.Fatal(err)
		}
	}
	hot := ids["Hot"]
	if _, err := ctl.Access(hot, 0, 4, true); err != nil {
		tb.Fatal(err)
	}
	return ctl, hot
}

// TestControllerAccessZeroAllocs pins the steady-state access path —
// read and write, with and without the recovery engine — to zero heap
// allocations per call. This is the regression guard for the dense
// block-indexed controller state and the reused scratch buffers
// (DESIGN.md §11); any reintroduced map or per-call make shows up here.
func TestControllerAccessZeroAllocs(t *testing.T) {
	for _, tc := range []struct {
		name     string
		recovery bool
		write    bool
	}{
		{"read", false, false},
		{"write", false, true},
		{"read-recovery", true, false},
		{"write-recovery", true, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ctl, hot := steadyController(t, tc.recovery)
			off := 0
			if n := testing.AllocsPerRun(200, func() {
				if _, err := ctl.Access(hot, off, 16, tc.write); err != nil {
					t.Fatal(err)
				}
				off = (off + 16) % 512
			}); n != 0 {
				t.Errorf("steady-state Access allocates %.1f/op, want 0", n)
			}
		})
	}
}

// BenchmarkControllerAccess times one steady-state controller access —
// the operation every simulated memory reference pays — across the
// read/write × recovery on/off matrix.
func BenchmarkControllerAccess(b *testing.B) {
	for _, tc := range []struct {
		name     string
		recovery bool
		write    bool
	}{
		{"read", false, false},
		{"write", false, true},
		{"read-recovery", true, false},
		{"write-recovery", true, true},
	} {
		b.Run(tc.name, func(b *testing.B) {
			ctl, hot := steadyController(b, tc.recovery)
			b.ReportAllocs()
			b.ResetTimer()
			off := 0
			for i := 0; i < b.N; i++ {
				if _, err := ctl.Access(hot, off, 16, tc.write); err != nil {
					b.Fatal(err)
				}
				off = (off + 16) % 512
			}
		})
	}
}

package spm

import (
	"errors"
	"fmt"
	"sort"

	"ftspm/internal/dram"
	"ftspm/internal/memtech"
	"ftspm/internal/program"
)

// Placement is the output of the mapping phase consumed by the
// controller: for each mapped block, the region kind it is allowed to
// occupy. Blocks absent from the placement are unmapped and served by the
// cache hierarchy.
type Placement map[program.BlockID]RegionKind

// Clone returns a copy of the placement.
func (p Placement) Clone() Placement {
	out := make(Placement, len(p))
	for k, v := range p {
		out[k] = v
	}
	return out
}

// CountByKind returns how many blocks target each region kind.
func (p Placement) CountByKind() map[RegionKind]int {
	out := make(map[RegionKind]int)
	for _, k := range p {
		out[k]++
	}
	return out
}

// sortedIDs returns the placement's block IDs in ascending order, so
// validation walks (and therefore errors name) blocks deterministically
// instead of in map order.
func (p Placement) sortedIDs() []program.BlockID {
	ids := make([]program.BlockID, 0, len(p))
	for id := range p {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// numRegionKinds bounds the dense per-kind arrays (RegionKind values are
// small consecutive constants starting at 1).
const numRegionKinds = int(RegionDMR) + 1

// KindCounts tallies program accesses served by one region kind.
type KindCounts struct {
	Reads, Writes uint64
}

// Total returns reads + writes.
func (k KindCounts) Total() uint64 { return k.Reads + k.Writes }

// ControllerStats aggregates on-line phase activity.
type ControllerStats struct {
	// MapIns counts block transfers into the SPM.
	MapIns uint64
	// Evictions counts blocks displaced to make room.
	Evictions uint64
	// PlannedUnmaps counts blocks removed by explicit (scheduled)
	// unmap commands rather than capacity pressure.
	PlannedUnmaps uint64
	// WritebackWords counts dirty words returned to off-chip memory.
	WritebackWords uint64
	// TransferCycles accumulates DMA stall time.
	TransferCycles memtech.Cycles
	// PerKind tallies program accesses by serving region kind. The
	// controller accumulates these in a dense per-kind array; Stats()
	// materializes this map view.
	PerKind map[RegionKind]*KindCounts
	// Recovery counts the runtime error-recovery subsystem's activity
	// (all zero unless EnableRecovery was called, except the write-
	// verify counters, which a wear model feeds on its own).
	Recovery RecoveryStats
}

// Cost is the charged outcome of one controller access.
type Cost struct {
	// Cycles is the total stall: any DMA transfer plus the region
	// access.
	Cycles memtech.Cycles
	// Kind is the region kind that served the access.
	Kind RegionKind
	// MappedIn is true when the access triggered a block transfer.
	MappedIn bool
}

// Errors returned by the controller.
var (
	ErrBlockTooBig   = errors.New("spm: block larger than its target region")
	ErrNoSuchRegion  = errors.New("spm: placement targets a region kind absent from this SPM")
	ErrNotMapped     = errors.New("spm: block is not in the placement")
	ErrBadPlacement  = errors.New("spm: invalid placement")
	errNoAllocatable = errors.New("spm: internal: allocation failed after full eviction")
)

type interval struct{ start, n int }

type residency struct {
	live     bool
	region   int // region index within the SPM
	baseWord int
	words    int
	dirty    bool
	lastUse  uint64
}

// Controller implements the on-line phase: it tracks which blocks are
// resident where, transfers blocks in on first touch (and back out on
// eviction, when dirty), and routes each program access to the region
// that holds the block. The paper inserts the transfer points statically
// at compile time; this controller triggers the same transfers on demand
// with least-recently-used eviction, which reproduces the transfer
// traffic of the static schedule for the profiled access sequences.
//
// All per-block state lives in dense slices indexed by program.BlockID
// (block IDs are compact indices into one program image), and the access
// path reuses controller-owned scratch buffers, so the steady-state hot
// path performs no map operations and no allocations (DESIGN.md §11).
type Controller struct {
	spm     *SPM
	mem     *dram.Memory
	regions []*Region       // dense region index → region (spm order)
	blocks  []program.Block // dense BlockID → block descriptor snapshot

	place    []RegionKind // dense BlockID → target kind, 0 = unmapped
	resident []residency  // dense BlockID → residency, live=false = absent
	free     [][]interval
	kindIdx  [numRegionKinds]int // kind → region index, -1 = absent
	tick     uint64
	stats    ControllerStats
	perKind  [numRegionKinds]KindCounts

	// writeBuf backs the value vectors of program writes and block
	// DMA-ins; oneWord backs single-word recovery rewrites. Both are
	// reused across calls — never retained past the region write that
	// consumes them.
	writeBuf []uint32
	oneWord  [1]uint32

	// Runtime error recovery (EnableRecovery): detection outcomes on
	// the access path trigger re-fetch/rollback, a background scrubber
	// walks the protected regions, and recurring write-verify faults
	// drive wear-aware graceful degradation.
	recovery    RecoveryConfig
	recoveryOn  bool
	faultCounts []int // dense BlockID → permanent-fault evidence
	sinceScrub  uint64

	// Adaptive storm defenses (RecoveryConfig.Adaptive): detection
	// events are tallied over tumbling windows and drive a scrub
	// escalation machine with hysteresis (recovery.go). adaptive is
	// nil when the defenses are disarmed — one nil check per access.
	adaptive        *AdaptiveConfig
	escalated       bool
	windowAccesses  uint64
	windowErrors    uint64
	stateWindows    int      // windows spent in the current state
	windowRegionErr []uint32 // dense region index → events this window
	windowBlockErr  []uint32 // dense BlockID → events this window

	// rec, when non-nil, observes every codeword-level operation so the
	// packed soak engine can replay this controller's trajectory
	// (recorder.go). One nil check per operation when detached.
	rec OpRecorder
}

// NewController validates the placement against the SPM geometry and
// returns a controller with an empty SPM. Validation walks the placement
// in ascending BlockID order, so which offending block an error names is
// deterministic.
func NewController(s *SPM, prog *program.Program, place Placement, mem *dram.Memory) (*Controller, error) {
	n := prog.NumBlocks()
	c := &Controller{
		spm:         s,
		mem:         mem,
		regions:     s.Regions(),
		blocks:      prog.Blocks(),
		place:       make([]RegionKind, n),
		resident:    make([]residency, n),
		free:        make([][]interval, s.NumRegions()),
		faultCounts: make([]int, n),
	}
	for i := range c.kindIdx {
		c.kindIdx[i] = -1
	}
	for i, r := range c.regions {
		c.free[i] = []interval{{start: 0, n: r.Words()}}
		if c.kindIdx[r.Kind()] < 0 {
			c.kindIdx[r.Kind()] = i
		}
	}
	for _, id := range place.sortedIDs() {
		kind := place[id]
		b, err := prog.Block(id)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadPlacement, err)
		}
		idx := -1
		if int(kind) > 0 && int(kind) < numRegionKinds {
			idx = c.kindIdx[kind]
		}
		if idx < 0 {
			return nil, fmt.Errorf("%w: block %s -> %v", ErrNoSuchRegion, b.Name, kind)
		}
		r := c.regions[idx]
		if memtech.WordsIn(b.Size) > r.Words() {
			return nil, fmt.Errorf("%w: %s (%d B) -> %v (%d B)",
				ErrBlockTooBig, b.Name, b.Size, kind, r.SizeBytes())
		}
		c.place[id] = kind
	}
	return c, nil
}

// EnableRecovery switches on the runtime error-recovery subsystem:
// DUEs detected on the access path are re-fetched from the off-chip
// copy (clean blocks) or escalated per the dirty policy, a background
// scrubber walks the protected regions every ScrubInterval accesses,
// and blocks accumulating RemapThreshold write-verify faults migrate
// out of their failing region (graceful degradation). Call before the
// first access.
func (c *Controller) EnableRecovery(rc RecoveryConfig) error {
	if err := rc.Validate(); err != nil {
		return err
	}
	c.recovery = rc
	c.recoveryOn = true
	if rc.Adaptive != nil {
		a := *rc.Adaptive
		c.adaptive = &a
		c.windowRegionErr = make([]uint32, len(c.regions))
		c.windowBlockErr = make([]uint32, len(c.resident))
	}
	return nil
}

// Stats returns a copy of the controller counters; the PerKind map view
// is materialized from the dense per-kind tallies (kinds that served at
// least one access appear, matching the lazily-created map of earlier
// versions).
func (c *Controller) Stats() ControllerStats {
	out := c.stats
	out.PerKind = make(map[RegionKind]*KindCounts)
	for k := range c.perKind {
		if c.perKind[k].Reads+c.perKind[k].Writes > 0 {
			cp := c.perKind[k]
			out.PerKind[RegionKind(k)] = &cp
		}
	}
	return out
}

// Placement returns a copy of the active placement.
func (c *Controller) Placement() Placement {
	out := make(Placement)
	for id, kind := range c.place {
		if kind != 0 {
			out[program.BlockID(id)] = kind
		}
	}
	return out
}

// mappedKind returns the block's placement target, or 0 when the block
// is outside the placement (including IDs the controller never saw).
func (c *Controller) mappedKind(id program.BlockID) RegionKind {
	if id < 0 || int(id) >= len(c.place) {
		return 0
	}
	return c.place[id]
}

// IsMapped reports whether the block participates in the placement.
func (c *Controller) IsMapped(id program.BlockID) bool {
	return c.mappedKind(id) != 0
}

// IsResident reports whether the block currently occupies SPM space.
func (c *Controller) IsResident(id program.BlockID) bool {
	return id >= 0 && int(id) < len(c.resident) && c.resident[id].live
}

// values returns the controller's write scratch buffer sized to n words.
func (c *Controller) values(n int) []uint32 {
	if cap(c.writeBuf) < n {
		c.writeBuf = make([]uint32, n)
	}
	return c.writeBuf[:n]
}

// Access serves one program access to a mapped block: it transfers the
// block in if necessary and performs the region read/write. Offset and
// size select the touched words within the block. For unmapped blocks it
// returns ErrNotMapped; the simulator then uses the cache path.
func (c *Controller) Access(id program.BlockID, offset, size int, write bool) (Cost, error) {
	kind := c.mappedKind(id)
	if kind == 0 {
		return Cost{}, ErrNotMapped
	}
	c.tick++
	var recCycles memtech.Cycles
	if c.adaptive != nil {
		if c.windowAccesses >= c.adaptive.WindowAccesses {
			cyc, err := c.adaptiveWindowTick()
			if err != nil {
				return Cost{}, err
			}
			recCycles += cyc
			// The tick's storm bypass may have remapped — or demoted —
			// the very block being served; refresh the routing.
			if kind = c.mappedKind(id); kind == 0 {
				c.stats.Recovery.RecoveryCycles += recCycles
				return Cost{}, ErrNotMapped
			}
		}
		c.windowAccesses++
		if c.escalated {
			c.stats.Recovery.EscalatedAccesses++
		}
	}
	if c.recoveryOn && c.recovery.ScrubInterval > 0 {
		interval := c.recovery.ScrubInterval
		if c.escalated {
			interval = c.adaptive.EscalatedScrubInterval
		}
		c.sinceScrub++
		if c.sinceScrub >= interval {
			c.sinceScrub = 0
			cyc, err := c.runScrub()
			if err != nil {
				return Cost{}, err
			}
			recCycles += cyc
		}
	}
	res, transferCycles, err := c.ensureResident(id)
	if err != nil {
		if errors.Is(err, errNoAllocatable) && c.recoveryOn {
			// The region has degraded (retired words) below the block
			// size: demote the block to cache service. The caller sees
			// ErrNotMapped and routes this and all later accesses
			// through the cache hierarchy.
			c.place[id] = 0
			c.faultCounts[id] = 0
			c.stats.Recovery.Demotions++
			if c.stats.Recovery.FirstDegradedTick == 0 {
				c.stats.Recovery.FirstDegradedTick = c.tick
			}
			return Cost{}, ErrNotMapped
		}
		return Cost{}, err
	}
	res.lastUse = c.tick

	b := &c.blocks[id]
	if offset < 0 {
		offset = 0
	}
	if size < 1 {
		size = 1
	}
	if offset+size > b.Size {
		size = b.Size - offset
		if size < 1 {
			return Cost{}, fmt.Errorf("%w: offset %d outside %s", ErrOutOfRange, offset, b.Name)
		}
	}
	r := c.regions[res.region]
	wordIdx := res.baseWord + offset/memtech.WordBytes
	words := memtech.WordsIn(size)
	if wordIdx+words > res.baseWord+res.words {
		words = res.baseWord + res.words - wordIdx
	}

	var accessCycles memtech.Cycles
	if write {
		values := c.values(words)
		base := b.Addr + uint32(offset)
		for i := range values {
			values[i] = dram.Value(base/memtech.WordBytes + uint32(i))
		}
		if c.rec != nil {
			c.rec.RecordWrite(res.region, wordIdx, words, base/memtech.WordBytes)
		}
		var oc WriteOutcome
		accessCycles, oc, err = r.WriteChecked(wordIdx, values)
		res.dirty = true
		c.perKind[kind].Writes++
		if err == nil {
			c.noteWriteFaults(id, oc)
			if c.adaptive != nil && (oc.Retries > 0 || len(oc.Failed) > 0) {
				c.noteStormEvidence(res.region, id, uint32(oc.Retries+len(oc.Failed)))
			}
		}
	} else {
		if c.rec != nil {
			c.rec.RecordAccessRead(res.region, wordIdx, words, res.dirty)
		}
		var oc ReadOutcome
		_, accessCycles, oc, err = r.ReadChecked(wordIdx, words)
		c.perKind[kind].Reads++
		if err == nil {
			c.stats.Recovery.CorrectedOnAccess += uint64(oc.Corrected)
			if c.adaptive != nil && (oc.Corrected > 0 || len(oc.Detected) > 0) {
				c.noteStormEvidence(res.region, id, uint32(oc.Corrected+len(oc.Detected)))
			}
			for _, w := range oc.Detected {
				cyc, derr := c.recoverDUE(r, res, b.Addr, w)
				if derr != nil {
					return Cost{}, derr
				}
				recCycles += cyc
			}
		}
	}
	if err != nil {
		return Cost{}, err
	}
	if c.recoveryOn && c.recovery.RemapThreshold > 0 &&
		c.faultCounts[id] >= c.recovery.RemapThreshold {
		cyc, derr := c.degrade(id)
		if derr != nil {
			return Cost{}, derr
		}
		recCycles += cyc
	}
	c.stats.Recovery.RecoveryCycles += recCycles
	return Cost{
		Cycles:   transferCycles + accessCycles + recCycles,
		Kind:     kind,
		MappedIn: transferCycles > 0,
	}, nil
}

// noteWriteFaults folds one write-verify outcome into the recovery
// accounting: retries are transient (already charged by the region),
// failed words are permanent-fault evidence against the block.
func (c *Controller) noteWriteFaults(id program.BlockID, oc WriteOutcome) {
	if c.rec != nil && (oc.Retries > 0 || len(oc.Failed) > 0) {
		c.rec.RecordUnsupported("write-verify fault")
	}
	c.stats.Recovery.WriteRetries += uint64(oc.Retries)
	if len(oc.Failed) > 0 {
		c.stats.Recovery.StuckWordEvents += uint64(len(oc.Failed))
		c.faultCounts[id] += len(oc.Failed)
	}
}

// noteStormEvidence tallies detection events (ECC corrections,
// detected DUEs, write-verify faults) into the adaptive window,
// attributed to the region and block they surfaced in. Only called
// with c.adaptive armed.
func (c *Controller) noteStormEvidence(regionIdx int, id program.BlockID, n uint32) {
	c.windowErrors += uint64(n)
	c.windowRegionErr[regionIdx] += n
	if id >= 0 && int(id) < len(c.windowBlockErr) {
		c.windowBlockErr[id] += n
	}
}

// adaptiveWindowTick closes one adaptive window: it evaluates the
// detection rate against the escalation thresholds (recovery.go state
// machine), fires the escalation responses (emergency refresh, storm
// bypass), and opens the next window. Response cycles are returned so
// the triggering access is charged like any other recovery action.
func (c *Controller) adaptiveWindowTick() (memtech.Cycles, error) {
	a := c.adaptive
	rate := float64(c.windowErrors) / float64(c.windowAccesses)
	if rate > c.stats.Recovery.PeakWindowErrorRate {
		c.stats.Recovery.PeakWindowErrorRate = rate
	}
	c.stateWindows++
	var cycles memtech.Cycles
	switch {
	case !c.escalated && rate >= a.EscalateRate:
		c.escalated = true
		c.stateWindows = 0
		c.stats.Recovery.ScrubEscalations++
		if a.EmergencyRefresh {
			cyc, err := c.emergencyRefresh()
			if err != nil {
				return 0, err
			}
			cycles += cyc
		}
	case c.escalated && rate <= a.DeescalateRate && c.stateWindows >= a.MinDwellWindows:
		c.escalated = false
		c.stateWindows = 0
		c.stats.Recovery.ScrubDeescalations++
	}
	if c.escalated && a.BypassRate > 0 && rate >= a.BypassRate {
		if id, ok := c.mostAfflictedBlock(); ok {
			cyc, err := c.degrade(id)
			if err != nil {
				return 0, err
			}
			cycles += cyc
			c.stats.Recovery.StormBypasses++
		}
	}
	c.windowAccesses, c.windowErrors = 0, 0
	clear(c.windowRegionErr)
	clear(c.windowBlockErr)
	return cycles, nil
}

// mostAfflictedBlock returns the resident block with the most
// detection events this window (lowest BlockID on ties).
func (c *Controller) mostAfflictedBlock() (program.BlockID, bool) {
	best, bestErrs := program.BlockID(0), uint32(0)
	for i, n := range c.windowBlockErr {
		if n > bestErrs && c.resident[i].live {
			best, bestErrs = program.BlockID(i), n
		}
	}
	return best, bestErrs > 0
}

// emergencyRefresh re-fetches every clean resident block in the
// regions that saw detection events this window, flushing latent
// corruption the storm has deposited before further strikes can
// accumulate past the code's correction capability. Each block is one
// DRAM burst plus a checked region rewrite, charged to the caller.
// Dirty blocks are left to the DUE policy (their only up-to-date copy
// is on-chip), as are immune/unprotected regions (no detection events
// ever attribute to them).
func (c *Controller) emergencyRefresh() (memtech.Cycles, error) {
	if c.rec != nil {
		c.rec.RecordUnsupported("emergency refresh")
	}
	var cycles memtech.Cycles
	for i := range c.resident {
		res := &c.resident[i]
		if !res.live || res.dirty || c.windowRegionErr[res.region] == 0 {
			continue
		}
		r := c.regions[res.region]
		b := &c.blocks[i]
		dramCycles, _ := c.mem.Burst(res.words, false)
		values := c.values(res.words)
		for k := range values {
			values[k] = dram.Value(b.Addr/memtech.WordBytes + uint32(k))
		}
		writeCycles, oc, err := r.WriteChecked(res.baseWord, values)
		if err != nil {
			return 0, err
		}
		cycles += maxCycles(dramCycles, writeCycles)
		c.stats.Recovery.EmergencyRefreshBlocks++
		c.stats.Recovery.EmergencyRefreshWords += uint64(res.words)
		c.noteWriteFaults(program.BlockID(i), oc)
	}
	return cycles, nil
}

// MapIn executes a scheduled map-in command (the paper's SMI): the
// block is transferred into its target region now, ahead of its first
// access. Already-resident blocks are a no-op. Space is made with the
// same LRU fallback the on-demand path uses, but a well-formed schedule
// issues its Unmap commands first, so the fallback stays idle.
func (c *Controller) MapIn(id program.BlockID) (memtech.Cycles, error) {
	if c.mappedKind(id) == 0 {
		return 0, ErrNotMapped
	}
	c.tick++
	res, cycles, err := c.ensureResident(id)
	if err != nil {
		return 0, err
	}
	res.lastUse = c.tick
	return cycles, nil
}

// Unmap executes a scheduled unmap command: the block leaves the SPM
// now, writing dirty contents back off-chip. Non-resident blocks are a
// no-op.
func (c *Controller) Unmap(id program.BlockID) (memtech.Cycles, error) {
	if !c.IsResident(id) {
		return 0, nil
	}
	res := &c.resident[id]
	r := c.regions[res.region]
	var cycles memtech.Cycles
	if res.dirty {
		if c.rec != nil {
			c.rec.RecordEvictRead(res.region, res.baseWord, res.words)
		}
		_, readCycles, err := r.Read(res.baseWord, res.words)
		if err != nil {
			return 0, err
		}
		dramCycles, _ := c.mem.Burst(res.words, true)
		cycles = maxCycles(readCycles, dramCycles)
		c.stats.WritebackWords += uint64(res.words)
	}
	c.releaseInterval(res.region, interval{start: res.baseWord, n: res.words}, r)
	res.live = false
	c.stats.PlannedUnmaps++
	c.stats.TransferCycles += cycles
	return cycles, nil
}

// ensureResident maps the block in if needed, evicting least-recently-
// used blocks from the target region until space is available. The
// returned cycles charge the DMA stall (off-chip burst overlapped with
// the region-side burst: the slower of the two dominates).
func (c *Controller) ensureResident(id program.BlockID) (*residency, memtech.Cycles, error) {
	res := &c.resident[id]
	if res.live {
		return res, 0, nil
	}
	regionIdx := c.kindIdx[c.place[id]]
	b := &c.blocks[id]
	words := memtech.WordsIn(b.Size)

	var cycles memtech.Cycles
	base, evictCycles, err := c.allocate(regionIdx, words)
	if err != nil {
		return nil, 0, err
	}
	cycles += evictCycles

	// DMA the block in: off-chip read burst overlapped with the
	// region-side write burst.
	r := c.regions[regionIdx]
	dramCycles, _ := c.mem.Burst(words, false)
	values := c.values(words)
	for i := range values {
		values[i] = dram.Value(b.Addr/memtech.WordBytes + uint32(i))
	}
	if c.rec != nil {
		c.rec.RecordWrite(regionIdx, base, words, b.Addr/memtech.WordBytes)
	}
	regionCycles, oc, err := r.WriteChecked(base, values)
	if err != nil {
		return nil, 0, err
	}
	cycles += maxCycles(dramCycles, regionCycles)

	*res = residency{live: true, region: regionIdx, baseWord: base, words: words, lastUse: c.tick}
	c.stats.MapIns++
	c.stats.TransferCycles += cycles
	// Write-verify failures during the DMA-in are fault evidence too:
	// a block freshly mapped onto worn cells should migrate before its
	// silent corruption is consumed.
	c.noteWriteFaults(id, oc)
	return res, cycles, nil
}

// allocate finds a first-fit run of words in the region, evicting LRU
// residents until one exists.
func (c *Controller) allocate(regionIdx, words int) (int, memtech.Cycles, error) {
	var cycles memtech.Cycles
	for {
		if base, ok := c.takeInterval(regionIdx, words); ok {
			return base, cycles, nil
		}
		evicted, evictionCycles, err := c.evictLRU(regionIdx)
		if err != nil {
			return 0, 0, err
		}
		if !evicted {
			return 0, 0, errNoAllocatable
		}
		cycles += evictionCycles
	}
}

func (c *Controller) takeInterval(regionIdx, words int) (int, bool) {
	frees := c.free[regionIdx]
	for i, iv := range frees {
		if iv.n >= words {
			base := iv.start
			if iv.n == words {
				c.free[regionIdx] = append(frees[:i], frees[i+1:]...)
			} else {
				frees[i] = interval{start: iv.start + words, n: iv.n - words}
			}
			return base, true
		}
	}
	return 0, false
}

// evictLRU displaces the least-recently-used resident of the region,
// writing dirty contents back off-chip. It returns false when the region
// holds no residents. Residencies are scanned in BlockID order; lastUse
// ticks are unique (one block is touched per tick), so the victim choice
// is deterministic.
func (c *Controller) evictLRU(regionIdx int) (bool, memtech.Cycles, error) {
	var victim program.BlockID
	var vres *residency
	for i := range c.resident {
		res := &c.resident[i]
		if !res.live || res.region != regionIdx {
			continue
		}
		if vres == nil || res.lastUse < vres.lastUse {
			victim, vres = program.BlockID(i), res
		}
	}
	if vres == nil {
		return false, 0, nil
	}
	r := c.regions[regionIdx]
	var cycles memtech.Cycles
	if vres.dirty {
		if c.rec != nil {
			c.rec.RecordEvictRead(regionIdx, vres.baseWord, vres.words)
		}
		_, readCycles, err := r.Read(vres.baseWord, vres.words)
		if err != nil {
			return false, 0, err
		}
		dramCycles, _ := c.mem.Burst(vres.words, true)
		cycles = maxCycles(readCycles, dramCycles)
		c.stats.WritebackWords += uint64(vres.words)
	}
	c.releaseInterval(regionIdx, interval{start: vres.baseWord, n: vres.words}, r)
	c.resident[victim].live = false
	c.stats.Evictions++
	c.stats.TransferCycles += cycles
	return true, cycles, nil
}

// recoverDUE handles one detected-uncorrectable word found while
// serving an access. Clean blocks re-fetch the word from the off-chip
// copy with bounded retry; dirty blocks escalate per the configured
// policy. All recovery traffic (DRAM bursts, region rewrites, verify
// reads) is charged to the returned cycles.
func (c *Controller) recoverDUE(r *Region, res *residency, blockAddr uint32, w int) (memtech.Cycles, error) {
	if !c.recoveryOn {
		c.stats.Recovery.UnrecoveredDUEs++
		return 0, nil
	}
	if res.dirty {
		if c.recovery.DirtyPolicy == DUERollback {
			cyc, err := r.RestoreWord(w)
			if err != nil {
				return 0, err
			}
			c.stats.Recovery.Rollbacks++
			return cyc + c.recovery.RollbackCycles, nil
		}
		c.stats.Recovery.SDCEscalations++
		return 0, nil
	}
	cyc, ok, err := c.refetchWord(r, res, blockAddr, w)
	if err != nil {
		return 0, err
	}
	if ok {
		c.stats.Recovery.RefetchedWords++
	} else {
		c.stats.Recovery.UnrecoveredDUEs++
	}
	return cyc, nil
}

// refetchWord re-fetches one word of a clean block from the off-chip
// image, rewrites it, and verifies the rewrite, retrying up to the
// configured bound. It reports whether the word decodes cleanly
// afterwards.
func (c *Controller) refetchWord(r *Region, res *residency, blockAddr uint32, w int) (memtech.Cycles, bool, error) {
	c.oneWord[0] = dram.Value(blockAddr/memtech.WordBytes + uint32(w-res.baseWord))
	var cycles memtech.Cycles
	for attempt := 0; ; attempt++ {
		dramCycles, _ := c.mem.Burst(1, false)
		writeCycles, _, err := r.WriteChecked(w, c.oneWord[:])
		if err != nil {
			return 0, false, err
		}
		_, verifyCycles, oc, err := r.ReadChecked(w, 1)
		if err != nil {
			return 0, false, err
		}
		cycles += dramCycles + writeCycles + verifyCycles
		if len(oc.Detected) == 0 {
			return cycles, true, nil
		}
		if attempt >= c.recovery.MaxRefetchRetries {
			return cycles, false, nil
		}
		c.stats.Recovery.RefetchRetries++
	}
}

// runScrub walks every protected region, repairing correctable latent
// errors in place and recovering detected-uncorrectable words before a
// second strike can pair with them: clean resident words re-fetch from
// DRAM, dirty words follow the DUE policy, and free-space words are
// rewritten from their last stored payload (their content is dead, but
// clearing the latent error keeps it from surfacing later).
func (c *Controller) runScrub() (memtech.Cycles, error) {
	if c.rec != nil {
		c.rec.RecordScrub(c.scrubClasses())
	}
	st := &c.stats.Recovery
	st.ScrubRuns++
	var cycles memtech.Cycles
	for idx, r := range c.regions {
		if r.Kind().Protection() == memtech.Unprotected {
			continue // nothing to check: no code to scrub against
		}
		repaired, detected, cyc := r.ScrubWords()
		st.ScrubRepairs += uint64(repaired)
		cycles += cyc
		for _, w := range detected {
			id, res, found := c.residentAt(idx, w)
			switch {
			case found && !res.dirty:
				rcyc, ok, err := c.refetchWord(r, res, c.blocks[id].Addr, w)
				if err != nil {
					return 0, err
				}
				cycles += rcyc
				if ok {
					st.ScrubRefetches++
				} else {
					st.ScrubDUEs++
				}
			case found && c.recovery.DirtyPolicy == DUERollback:
				rcyc, err := r.RestoreWord(w)
				if err != nil {
					return 0, err
				}
				cycles += rcyc + c.recovery.RollbackCycles
				st.ScrubRestores++
			case found:
				st.ScrubDUEs++
			default:
				// Free-space word: garbage content, live latent error.
				rcyc, err := r.RestoreWord(w)
				if err != nil {
					return 0, err
				}
				cycles += rcyc
				st.ScrubRestores++
			}
		}
	}
	return cycles, nil
}

// residentAt returns the block whose residency covers the given word of
// the region, if any.
func (c *Controller) residentAt(regionIdx, word int) (program.BlockID, *residency, bool) {
	for i := range c.resident {
		res := &c.resident[i]
		if res.live && res.region == regionIdx && word >= res.baseWord && word < res.baseWord+res.words {
			return program.BlockID(i), res, true
		}
	}
	return 0, nil, false
}

// degrade migrates a block with recurring permanent faults out of its
// failing region into the next region in configuration order (regions
// are configured in falling reliability order, so degradation walks
// toward cheaper protection). Words holding stuck cells are retired on
// the way out. When no region can take the block, it is demoted to
// cache service. Migration reads the intended content (the recovered
// data, not the corrupt cells) and charges the source read, the
// destination write, and any eviction the allocation needs.
func (c *Controller) degrade(id program.BlockID) (memtech.Cycles, error) {
	if c.rec != nil {
		c.rec.RecordUnsupported("graceful degradation")
	}
	if !c.IsResident(id) {
		c.faultCounts[id] = 0
		return 0, nil
	}
	res := &c.resident[id]
	oldIdx := res.region
	oldR := c.regions[oldIdx]
	values, drainCycles, err := oldR.DrainWords(res.baseWord, res.words)
	if err != nil {
		return 0, err
	}

	defer func() {
		c.faultCounts[id] = 0
		if c.stats.Recovery.FirstDegradedTick == 0 {
			c.stats.Recovery.FirstDegradedTick = c.tick
		}
	}()

	for destIdx := oldIdx + 1; destIdx < len(c.regions); destIdx++ {
		destR := c.regions[destIdx]
		if res.words > destR.Words() {
			continue
		}
		base, evictCycles, err := c.allocate(destIdx, res.words)
		if errors.Is(err, errNoAllocatable) {
			continue // this region has degraded too far; try the next
		}
		if err != nil {
			return 0, err
		}
		writeCycles, oc, err := destR.WriteChecked(base, values)
		if err != nil {
			return 0, err
		}
		c.releaseInterval(oldIdx, interval{start: res.baseWord, n: res.words}, oldR)
		res.region = destIdx
		res.baseWord = base
		res.lastUse = c.tick
		c.place[id] = destR.Kind()
		c.stats.Recovery.Remaps++
		// The destination may be failing too (wear in an STT fallback):
		// start its fault account with the migration's own verify
		// failures.
		if len(oc.Failed) > 0 {
			c.stats.Recovery.StuckWordEvents += uint64(len(oc.Failed))
			c.faultCounts[id] = len(oc.Failed)
		}
		return evictCycles + maxCycles(drainCycles, writeCycles), nil
	}

	// No fallback region fits: demote to cache service, writing dirty
	// content back off-chip first.
	var wbCycles memtech.Cycles
	if res.dirty {
		dramCycles, _ := c.mem.Burst(res.words, true)
		wbCycles = maxCycles(drainCycles, dramCycles)
		c.stats.WritebackWords += uint64(res.words)
	}
	c.releaseInterval(oldIdx, interval{start: res.baseWord, n: res.words}, oldR)
	res.live = false
	c.place[id] = 0
	c.stats.Recovery.Demotions++
	return wbCycles, nil
}

// releaseInterval frees a residency's words. With recovery enabled,
// words holding stuck cells are retired — withheld from the free list
// forever — so no future block lands on known-bad cells; the remainder
// is returned in maximal runs.
func (c *Controller) releaseInterval(regionIdx int, iv interval, r *Region) {
	if !c.recoveryOn || r == nil {
		c.returnInterval(regionIdx, iv)
		return
	}
	run := interval{start: iv.start}
	for w := iv.start; w < iv.start+iv.n; w++ {
		if r.WordHasStuck(w) {
			if run.n > 0 {
				c.returnInterval(regionIdx, run)
			}
			// Errors are impossible here: w is in range by construction.
			_ = r.RetireWord(w)
			c.stats.Recovery.RetiredWords++
			run = interval{start: w + 1}
		} else {
			run.n++
		}
	}
	if run.n > 0 {
		c.returnInterval(regionIdx, run)
	}
}

// returnInterval merges a freed run back into the region's free list.
func (c *Controller) returnInterval(regionIdx int, iv interval) {
	frees := c.free[regionIdx]
	pos := len(frees)
	for i, f := range frees {
		if f.start > iv.start {
			pos = i
			break
		}
	}
	frees = append(frees, interval{})
	copy(frees[pos+1:], frees[pos:])
	frees[pos] = iv
	// Merge neighbours.
	merged := frees[:0]
	for _, f := range frees {
		if n := len(merged); n > 0 && merged[n-1].start+merged[n-1].n == f.start {
			merged[n-1].n += f.n
		} else {
			merged = append(merged, f)
		}
	}
	c.free[regionIdx] = merged
}

func maxCycles(a, b memtech.Cycles) memtech.Cycles {
	if a > b {
		return a
	}
	return b
}

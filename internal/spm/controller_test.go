package spm

import (
	"errors"
	"testing"

	"ftspm/internal/dram"
	"ftspm/internal/program"
)

// ctlFixture builds a small hybrid SPM, a three-block program, and a
// controller mapping Hot->STT, Warm->ECC, Stack->parity.
func ctlFixture(t testing.TB) (*Controller, *program.Program, map[string]program.BlockID) {
	t.Helper()
	s, err := New(0,
		RegionConfig{Kind: RegionSTT, SizeBytes: 2 * 1024},
		RegionConfig{Kind: RegionECC, SizeBytes: 1 * 1024},
		RegionConfig{Kind: RegionParity, SizeBytes: 512},
	)
	if err != nil {
		t.Fatal(err)
	}
	p := program.New("ctl")
	ids := map[string]program.BlockID{
		"Hot":   p.MustAddBlock("Hot", program.DataBlock, 1024),
		"Hot2":  p.MustAddBlock("Hot2", program.DataBlock, 1024),
		"Hot3":  p.MustAddBlock("Hot3", program.DataBlock, 512),
		"Warm":  p.MustAddBlock("Warm", program.DataBlock, 1024),
		"Stack": p.MustAddBlock("Stack", program.StackBlock, 256),
		"Off":   p.MustAddBlock("Off", program.DataBlock, 64),
	}
	place := Placement{
		ids["Hot"]:   RegionSTT,
		ids["Hot2"]:  RegionSTT,
		ids["Hot3"]:  RegionSTT,
		ids["Warm"]:  RegionECC,
		ids["Stack"]: RegionParity,
	}
	mem, err := dram.New(dram.Default())
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := NewController(s, p, place, mem)
	if err != nil {
		t.Fatal(err)
	}
	return ctl, p, ids
}

func TestControllerValidation(t *testing.T) {
	s, err := New(0, RegionConfig{Kind: RegionSTT, SizeBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	p := program.New("v")
	big := p.MustAddBlock("Big", program.DataBlock, 1024)
	small := p.MustAddBlock("Small", program.DataBlock, 128)
	mem, err := dram.New(dram.Default())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewController(s, p, Placement{big: RegionSTT}, mem); !errors.Is(err, ErrBlockTooBig) {
		t.Errorf("oversized block: %v", err)
	}
	if _, err := NewController(s, p, Placement{small: RegionECC}, mem); !errors.Is(err, ErrNoSuchRegion) {
		t.Errorf("absent region: %v", err)
	}
	if _, err := NewController(s, p, Placement{program.BlockID(99): RegionSTT}, mem); !errors.Is(err, ErrBadPlacement) {
		t.Errorf("phantom block: %v", err)
	}
}

func TestControllerFirstTouchMapsIn(t *testing.T) {
	ctl, _, ids := ctlFixture(t)
	hot := ids["Hot"]
	if ctl.IsResident(hot) {
		t.Fatal("block resident before first touch")
	}
	cost, err := ctl.Access(hot, 0, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	if !cost.MappedIn {
		t.Error("first touch did not map in")
	}
	if cost.Kind != RegionSTT {
		t.Errorf("served by %v", cost.Kind)
	}
	// Transfer of 256 words dominates: at least the DRAM burst time.
	if cost.Cycles < 60 {
		t.Errorf("map-in cost = %d cycles, implausibly cheap", cost.Cycles)
	}
	if !ctl.IsResident(hot) {
		t.Error("block not resident after touch")
	}
	// Second touch is a plain region access.
	cost2, err := ctl.Access(hot, 0, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	if cost2.MappedIn || cost2.Cycles != 1 {
		t.Errorf("second touch: %+v, want 1-cycle STT read", cost2)
	}
	st := ctl.Stats()
	if st.MapIns != 1 || st.Evictions != 0 {
		t.Errorf("stats = %+v", st)
	}
	if st.PerKind[RegionSTT].Reads != 2 {
		t.Errorf("STT reads = %d", st.PerKind[RegionSTT].Reads)
	}
}

func TestControllerUnmappedBlock(t *testing.T) {
	ctl, _, ids := ctlFixture(t)
	if _, err := ctl.Access(ids["Off"], 0, 4, false); !errors.Is(err, ErrNotMapped) {
		t.Errorf("unmapped access: %v", err)
	}
	if ctl.IsMapped(ids["Off"]) {
		t.Error("Off reported mapped")
	}
	if !ctl.IsMapped(ids["Hot"]) {
		t.Error("Hot reported unmapped")
	}
}

func TestControllerEvictionLRU(t *testing.T) {
	// STT region holds 2 KB; Hot(1K) + Hot2(1K) fill it; touching
	// Hot3(512B) must evict the LRU block (Hot).
	ctl, _, ids := ctlFixture(t)
	mustAccess := func(name string, write bool) Cost {
		c, err := ctl.Access(ids[name], 0, 4, write)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		return c
	}
	mustAccess("Hot", true) // dirty
	mustAccess("Hot2", false)
	mustAccess("Hot2", false) // Hot is now LRU
	c := mustAccess("Hot3", false)
	if !c.MappedIn {
		t.Error("Hot3 did not map in")
	}
	if ctl.IsResident(ids["Hot"]) {
		t.Error("LRU victim Hot still resident")
	}
	if !ctl.IsResident(ids["Hot2"]) || !ctl.IsResident(ids["Hot3"]) {
		t.Error("wrong victim evicted")
	}
	st := ctl.Stats()
	if st.Evictions != 1 {
		t.Errorf("Evictions = %d", st.Evictions)
	}
	// Hot was dirty: its 256 words must have been written back.
	if st.WritebackWords != 256 {
		t.Errorf("WritebackWords = %d, want 256", st.WritebackWords)
	}
	// Re-touching Hot maps it back in.
	c = mustAccess("Hot", false)
	if !c.MappedIn {
		t.Error("re-touch did not remap")
	}
}

func TestControllerWriteReadContent(t *testing.T) {
	// Written content must be the deterministic off-chip image pattern
	// and survive region storage.
	ctl, p, ids := ctlFixture(t)
	warm := ids["Warm"]
	if _, err := ctl.Access(warm, 128, 4, true); err != nil {
		t.Fatal(err)
	}
	b, err := p.Block(warm)
	if err != nil {
		t.Fatal(err)
	}
	r, ok := ctl.spm.RegionByKind(RegionECC)
	if !ok {
		t.Fatal("no ECC region")
	}
	res := ctl.resident[warm]
	got, _, err := r.Read(res.baseWord+128/4, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := dram.Value((b.Addr + 128) / 4)
	if got[0] != want {
		t.Errorf("stored word = %#x, want %#x", got[0], want)
	}
}

func TestControllerAccessClamping(t *testing.T) {
	ctl, _, ids := ctlFixture(t)
	// Oversized access clamps to the block end.
	if _, err := ctl.Access(ids["Stack"], 252, 64, false); err != nil {
		t.Errorf("clamped access failed: %v", err)
	}
	// Access entirely past the end fails.
	if _, err := ctl.Access(ids["Stack"], 512, 4, false); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("past-end access: %v", err)
	}
	// Negative offset and zero size are normalized.
	if _, err := ctl.Access(ids["Stack"], -5, 0, false); err != nil {
		t.Errorf("normalized access failed: %v", err)
	}
}

func TestControllerPlacementAccessors(t *testing.T) {
	ctl, _, ids := ctlFixture(t)
	pl := ctl.Placement()
	if pl[ids["Hot"]] != RegionSTT {
		t.Error("Placement copy wrong")
	}
	pl[ids["Hot"]] = RegionParity
	if ctl.place[ids["Hot"]] != RegionSTT {
		t.Error("Placement not a copy")
	}
	counts := pl.CountByKind()
	if counts[RegionSTT] != 2 || counts[RegionParity] != 2 {
		t.Errorf("CountByKind = %v", counts)
	}
	cl := Placement{ids["Hot"]: RegionECC}.Clone()
	if cl[ids["Hot"]] != RegionECC || len(cl) != 1 {
		t.Error("Clone wrong")
	}
	if (KindCounts{Reads: 2, Writes: 3}).Total() != 5 {
		t.Error("KindCounts.Total wrong")
	}
}

func TestControllerThrashingStaysConsistent(t *testing.T) {
	// Alternate between three STT blocks that cannot all fit: the
	// controller must keep allocating/evicting without leaking space.
	ctl, _, ids := ctlFixture(t)
	names := []string{"Hot", "Hot2", "Hot3", "Hot", "Hot3", "Hot2", "Hot", "Hot2", "Hot3"}
	for i, n := range names {
		write := i%2 == 0
		if _, err := ctl.Access(ids[n], 0, 4, write); err != nil {
			t.Fatalf("step %d (%s): %v", i, n, err)
		}
	}
	// Free list must be consistent: total free + resident words == region words.
	r, err := ctl.spm.Region(0)
	if err != nil {
		t.Fatal(err)
	}
	free := 0
	for _, iv := range ctl.free[0] {
		free += iv.n
	}
	resident := 0
	for _, res := range ctl.resident {
		if res.live && res.region == 0 {
			resident += res.words
		}
	}
	if free+resident != r.Words() {
		t.Errorf("space leak: free %d + resident %d != %d", free, resident, r.Words())
	}
	st := ctl.Stats()
	if st.MapIns < 5 || st.Evictions < 3 {
		t.Errorf("thrash stats implausible: %+v", st)
	}
}

func TestControllerMapInAndUnmap(t *testing.T) {
	ctl, _, ids := ctlFixture(t)
	hot := ids["Hot"]

	// Scheduled map-in ahead of any access.
	cycles, err := ctl.MapIn(hot)
	if err != nil {
		t.Fatal(err)
	}
	if cycles == 0 {
		t.Error("map-in charged no transfer time")
	}
	if !ctl.IsResident(hot) {
		t.Fatal("block not resident after MapIn")
	}
	// Repeated map-in is a free no-op.
	cycles, err = ctl.MapIn(hot)
	if err != nil || cycles != 0 {
		t.Errorf("second MapIn = %d cycles, %v", cycles, err)
	}
	// The later access finds the block resident: no MappedIn flag.
	cost, err := ctl.Access(hot, 0, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	if cost.MappedIn {
		t.Error("access re-transferred a scheduled block")
	}

	// Scheduled unmap writes the dirty block back.
	cycles, err = ctl.Unmap(hot)
	if err != nil {
		t.Fatal(err)
	}
	if cycles == 0 {
		t.Error("dirty unmap charged no write-back time")
	}
	if ctl.IsResident(hot) {
		t.Error("block resident after Unmap")
	}
	st := ctl.Stats()
	if st.PlannedUnmaps != 1 {
		t.Errorf("PlannedUnmaps = %d", st.PlannedUnmaps)
	}
	if st.WritebackWords != 256 {
		t.Errorf("WritebackWords = %d, want 256", st.WritebackWords)
	}

	// Unmapping a non-resident block is a free no-op.
	cycles, err = ctl.Unmap(hot)
	if err != nil || cycles != 0 {
		t.Errorf("no-op Unmap = %d cycles, %v", cycles, err)
	}
	// MapIn of an unmapped block is rejected.
	if _, err := ctl.MapIn(ids["Off"]); !errors.Is(err, ErrNotMapped) {
		t.Errorf("MapIn of unmapped block: %v", err)
	}
}

func TestControllerUnmapCleanBlockFree(t *testing.T) {
	ctl, _, ids := ctlFixture(t)
	if _, err := ctl.Access(ids["Hot"], 0, 4, false); err != nil {
		t.Fatal(err)
	}
	cycles, err := ctl.Unmap(ids["Hot"])
	if err != nil {
		t.Fatal(err)
	}
	if cycles != 0 {
		t.Errorf("clean unmap charged %d cycles, want 0 (nothing to write back)", cycles)
	}
	if ctl.Stats().WritebackWords != 0 {
		t.Error("clean unmap wrote back")
	}
}

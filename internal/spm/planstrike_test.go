package spm_test

import (
	"math/rand"
	"testing"

	"ftspm/internal/ecc"
	"ftspm/internal/faults"
	"ftspm/internal/spm"
)

// TestPlanStrikeMatchesInjectStrike is the RNG-lockstep contract behind
// the packed soak engine's strike precomputation: faults.PlanStrike
// must consume its RNG in exactly the draw order of SPM.InjectStrike
// and land the same bit flips. Two identically seeded generators drive
// the two paths over a mixed surface (immune STT, SEC-DED, parity);
// the planned deltas are accumulated into a shadow store and must
// reproduce the SPM's audit exactly, and the generators must still be
// in lockstep afterwards.
func TestPlanStrikeMatchesInjectStrike(t *testing.T) {
	s, err := spm.New(0,
		spm.RegionConfig{Kind: spm.RegionSTT, SizeBytes: 256},
		spm.RegionConfig{Kind: spm.RegionECC, SizeBytes: 128},
		spm.RegionConfig{Kind: spm.RegionParity, SizeBytes: 64},
	)
	if err != nil {
		t.Fatal(err)
	}
	regions := s.Regions()
	surf := make([]faults.RegionSurface, len(regions))
	shadow := make([][]uint64, len(regions))
	for i, r := range regions {
		surf[i] = faults.RegionSurface{
			Words: r.Words(), CodeBits: r.Codec().CodeBits(), Immune: r.Kind().Immune(),
		}
		shadow[i] = make([]uint64, r.Words())
	}
	total := faults.SurfaceBits(surf)
	if total != s.StoredBits() {
		t.Fatalf("surface bits %d != SPM stored bits %d", total, s.StoredBits())
	}

	dist := faults.Dist40nm
	live := rand.New(rand.NewSource(99))
	plan := rand.New(rand.NewSource(99))
	for i := 0; i < 500; i++ {
		flipped, err := s.InjectStrike(live, dist)
		if err != nil {
			t.Fatal(err)
		}
		ps := faults.PlanStrike(plan, surf, total, dist)
		if ps.Region < 0 {
			t.Fatalf("strike %d: planner fell off the surface", i)
		}
		if flipped != (ps.Delta != 0) {
			t.Fatalf("strike %d: live flipped=%v but planned delta %#x", i, flipped, ps.Delta)
		}
		shadow[ps.Region][ps.Word] ^= ps.Delta
	}
	// Both generators consumed the same number of draws iff their next
	// outputs coincide (and keep coinciding).
	for i := 0; i < 4; i++ {
		if a, b := live.Int63(), plan.Int63(); a != b {
			t.Fatalf("RNG streams out of lockstep after injection (draw %d: %d vs %d)", i, a, b)
		}
	}

	// Replaying the shadow deltas over the power-on codewords must
	// reproduce the SPM's audit classification word for word.
	var want faults.Tally
	for i, r := range regions {
		base := r.Codec().Encode(ecc.BitsFromUint64(0)).Uint64()
		for _, d := range shadow[i] {
			data, status := r.Codec().Decode(ecc.BitsFromUint64(base ^ d))
			intact := uint32(data.Uint64()) == 0
			switch status {
			case ecc.Corrected:
				if intact {
					want.Add(faults.DRE)
				} else {
					want.Add(faults.SDC)
				}
			case ecc.Detected:
				want.Add(faults.DUE)
			default:
				if intact {
					want.Add(faults.Benign)
				} else {
					want.Add(faults.SDC)
				}
			}
		}
	}
	if got := s.Audit(); got != want {
		t.Errorf("audit mismatch:\nshadow: %+v\nSPM:    %+v", want, got)
	}
	if got := s.Audit(); got.DUE+got.SDC+got.DRE == 0 {
		t.Error("no strike left a classifiable mark; test is vacuous")
	}
}

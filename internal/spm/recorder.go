package spm

import "ftspm/internal/memtech"

// Op recording: the hook the packed soak engine (internal/simd) uses to
// capture one fault-free controller trajectory. With no wear model and
// no injected strikes the controller's control flow — residency,
// evictions, dirty bits, scrub timing — is fully deterministic, so one
// instrumented run yields a region-level op stream that a later packed
// pass can replay against 64 fault scenarios at once. The recorder sees
// every operation that touches stored codewords; anything it cannot
// replay (wear-driven write-verify faults, graceful degradation) is
// flagged through RecordUnsupported so the skeleton build can refuse.

// Scrub word classes reported in a RecordScrub snapshot: what the
// controller's recovery would find at each word of a protected region
// when a scrub walk detects an uncorrectable error there.
const (
	// ScrubWordFree: no block resides over the word; recovery restores
	// it from its last stored payload.
	ScrubWordFree byte = iota
	// ScrubWordClean: a clean block resides there; recovery re-fetches
	// the word from the off-chip copy.
	ScrubWordClean
	// ScrubWordDirty: a dirty block resides there; recovery follows the
	// configured dirty-DUE policy.
	ScrubWordDirty
)

// OpRecorder observes the codeword-level operations of one controller.
// Region indices are controller-local (the controller's region order);
// word indices are absolute within the region. Implementations must not
// retain the RecordScrub slices past the call.
type OpRecorder interface {
	// RecordWrite is an exact encode of address-derived values into
	// words [wordIdx, wordIdx+words): program writes and block DMA-ins.
	// Word wordIdx+i holds dram.Value(addrWord+i) afterwards.
	RecordWrite(region, wordIdx, words int, addrWord uint32)
	// RecordAccessRead is a checked read on the program access path,
	// with the serving block's dirty state at read time (which decides
	// the DUE recovery action).
	RecordAccessRead(region, wordIdx, words int, dirty bool)
	// RecordEvictRead is a checked read whose detection outcome the
	// controller drops: eviction and unmap write-backs. Corrections
	// still repair the stored word (scrub-on-read); detections trigger
	// no recovery.
	RecordEvictRead(region, wordIdx, words int)
	// RecordScrub is a background scrub walk. classes[region][word]
	// holds the ScrubWord* residency class of every word of every
	// protected region (nil entries are regions the scrubber skips).
	RecordScrub(classes [][]byte)
	// RecordUnsupported reports an operation whose outcome the packed
	// replay cannot reproduce from the fault-free trajectory.
	RecordUnsupported(op string)
}

// SetRecorder attaches an op recorder to the controller (nil detaches).
// Recording is a build-time instrument: attach before the first access
// and run fault-free.
func (c *Controller) SetRecorder(rec OpRecorder) { c.rec = rec }

// scrubClasses snapshots the per-word residency class of every
// protected region for RecordScrub. Allocation here is fine: recording
// happens once per campaign configuration, never on the replay path.
func (c *Controller) scrubClasses() [][]byte {
	classes := make([][]byte, len(c.regions))
	for idx, r := range c.regions {
		if r.Kind().Protection() == memtech.Unprotected {
			continue
		}
		classes[idx] = make([]byte, r.Words())
	}
	for i := range c.resident {
		res := &c.resident[i]
		if !res.live || classes[res.region] == nil {
			continue
		}
		class := ScrubWordClean
		if res.dirty {
			class = ScrubWordDirty
		}
		for w := res.baseWord; w < res.baseWord+res.words; w++ {
			classes[res.region][w] = class
		}
	}
	return classes
}

package spm

import (
	"errors"
	"fmt"

	"ftspm/internal/memtech"
)

// This file defines the runtime error-recovery subsystem the controller
// threads through its hot path: detection outcomes surfaced by the
// regions (parity DUE, SEC-DED double-bit DUE, corrected SBU, write-
// verify failure) trigger a recovery policy instead of being merely
// counted. The paper's software-managed SPM makes this possible: clean
// blocks have golden copies off-chip (the compiler placed them there),
// so a detected-uncorrectable word in a clean block is recoverable by a
// DRAM re-fetch, and only dirty-block DUEs must escalate. See DESIGN.md
// §9 for the full model.

// DUEPolicy selects how the controller handles a detected-uncorrectable
// error in a *dirty* block — one whose only up-to-date copy is the
// corrupted SPM content itself.
type DUEPolicy int

// Dirty-block DUE policies.
const (
	// DUEAsSDC consumes the corrupted data and counts the event: the
	// model of a system without checkpointing, where a dirty-block DUE
	// is architecturally equivalent to silent corruption (the signal
	// exists but nothing can act on it).
	DUEAsSDC DUEPolicy = iota + 1
	// DUERollback restores the word from the last checkpointed value
	// and charges RollbackCycles — the STT-RAM checkpointing direction
	// of Rathi et al. (PAPERS.md). The simulator's golden copy stands
	// in for the checkpoint image.
	DUERollback
)

// String implements fmt.Stringer.
func (p DUEPolicy) String() string {
	switch p {
	case DUEAsSDC:
		return "sdc"
	case DUERollback:
		return "rollback"
	default:
		return fmt.Sprintf("DUEPolicy(%d)", int(p))
	}
}

// Valid reports whether p is a known policy.
func (p DUEPolicy) Valid() bool { return p == DUEAsSDC || p == DUERollback }

// RecoveryConfig parameterizes the controller's runtime error-recovery
// subsystem. The zero value is invalid; start from DefaultRecovery.
type RecoveryConfig struct {
	// MaxRefetchRetries bounds the DRAM re-fetch attempts per DUE word
	// (each attempt is a burst read, a region re-write, and a verify
	// read, all charged). 0 still allows the initial attempt.
	MaxRefetchRetries int
	// DirtyPolicy handles DUEs in dirty blocks, which cannot be
	// re-fetched.
	DirtyPolicy DUEPolicy
	// RollbackCycles is the penalty charged per DUERollback restore
	// (checkpoint-restore time).
	RollbackCycles memtech.Cycles
	// ScrubInterval is the number of controller accesses between
	// background scrub walks over the protected regions (0 disables
	// scrubbing).
	ScrubInterval uint64
	// RemapThreshold is the number of permanent-fault events observed
	// on one resident block before the controller migrates it out of
	// its failing region (0 disables graceful degradation).
	RemapThreshold int
	// Adaptive, when non-nil, arms the storm defenses: windowed
	// detected-error-rate tracking with scrub escalation/hysteresis,
	// emergency re-fetch of clean residents in storming regions, and
	// error-rate-triggered demotion down the degradation ladder. The
	// field is omitted from JSON when nil so non-adaptive configs
	// hash and serialize exactly as before.
	Adaptive *AdaptiveConfig `json:",omitempty"`
}

// AdaptiveConfig parameterizes the adaptive storm defenses. The
// controller tracks detection events (on-access corrections, detected
// DUEs, and write-verify faults) over tumbling windows of
// WindowAccesses accesses; the per-window rate drives a two-state
// escalation machine with hysteresis:
//
//	calm      --rate >= EscalateRate--------------------> escalated
//	escalated --rate <= DeescalateRate for MinDwell win--> calm
//
// While escalated, background scrubbing runs every
// EscalatedScrubInterval accesses instead of ScrubInterval, and each
// further window whose rate reaches BypassRate demotes the
// most-afflicted resident block via the graceful-degradation ladder.
// On escalation, EmergencyRefresh re-fetches every clean resident
// block in the regions that saw detection events — flushing latent
// corruption before it accumulates past the code's correction
// capability. All responses are charged cycles/energy like any other
// recovery action.
type AdaptiveConfig struct {
	// WindowAccesses is the tumbling evaluation window length, in
	// controller accesses.
	WindowAccesses uint64
	// EscalateRate is the detection-events-per-access threshold at or
	// above which the controller escalates.
	EscalateRate float64
	// DeescalateRate is the rate at or below which an escalated
	// controller relaxes (hysteresis: must not exceed EscalateRate).
	DeescalateRate float64
	// EscalatedScrubInterval replaces ScrubInterval while escalated.
	EscalatedScrubInterval uint64
	// MinDwellWindows is how many consecutive windows the escalated
	// state must persist before de-escalation is considered, damping
	// oscillation at the threshold.
	MinDwellWindows int
	// EmergencyRefresh re-fetches clean resident blocks in storming
	// regions on every escalation.
	EmergencyRefresh bool
	// BypassRate is the window error rate at or above which an
	// escalated controller demotes the most-afflicted resident block
	// (0 disables storm bypass).
	BypassRate float64
}

// DefaultAdaptive returns the storm-soak defaults: 512-access
// windows, escalate at 2% detection rate, relax below 0.5% after two
// windows, 16× faster scrubbing while escalated, emergency refresh
// on, and bypass at 20%.
func DefaultAdaptive() AdaptiveConfig {
	return AdaptiveConfig{
		WindowAccesses:         512,
		EscalateRate:           0.02,
		DeescalateRate:         0.005,
		EscalatedScrubInterval: 256,
		MinDwellWindows:        2,
		EmergencyRefresh:       true,
		BypassRate:             0.2,
	}
}

// Validate checks the configuration.
func (c AdaptiveConfig) Validate() error {
	switch {
	case c.WindowAccesses == 0:
		return fmt.Errorf("%w: adaptive window must be nonzero", ErrBadRecoveryConfig)
	case c.EscalateRate <= 0:
		return fmt.Errorf("%w: EscalateRate %v must be positive", ErrBadRecoveryConfig, c.EscalateRate)
	case c.DeescalateRate < 0 || c.DeescalateRate > c.EscalateRate:
		return fmt.Errorf("%w: DeescalateRate %v outside [0, EscalateRate]", ErrBadRecoveryConfig, c.DeescalateRate)
	case c.EscalatedScrubInterval == 0:
		return fmt.Errorf("%w: EscalatedScrubInterval must be nonzero", ErrBadRecoveryConfig)
	case c.MinDwellWindows < 0:
		return fmt.Errorf("%w: MinDwellWindows %d", ErrBadRecoveryConfig, c.MinDwellWindows)
	case c.BypassRate < 0:
		return fmt.Errorf("%w: BypassRate %v", ErrBadRecoveryConfig, c.BypassRate)
	default:
		return nil
	}
}

// DefaultRecovery returns the settings used by the soak campaigns:
// bounded re-fetch, checkpoint rollback for dirty DUEs, scrubbing every
// 4096 accesses, and remap after two permanent faults on one block.
func DefaultRecovery() RecoveryConfig {
	return RecoveryConfig{
		MaxRefetchRetries: 2,
		DirtyPolicy:       DUERollback,
		RollbackCycles:    5000,
		ScrubInterval:     4096,
		RemapThreshold:    2,
	}
}

// Errors returned by the recovery subsystem.
var (
	ErrBadRecoveryConfig = errors.New("spm: invalid recovery config")
	ErrBadWearConfig     = errors.New("spm: invalid wear config")
)

// Validate checks the configuration.
func (c RecoveryConfig) Validate() error {
	if c.MaxRefetchRetries < 0 {
		return fmt.Errorf("%w: MaxRefetchRetries %d", ErrBadRecoveryConfig, c.MaxRefetchRetries)
	}
	if !c.DirtyPolicy.Valid() {
		return fmt.Errorf("%w: DirtyPolicy %d", ErrBadRecoveryConfig, int(c.DirtyPolicy))
	}
	if c.RollbackCycles < 0 {
		return fmt.Errorf("%w: RollbackCycles %d", ErrBadRecoveryConfig, c.RollbackCycles)
	}
	if c.RemapThreshold < 0 {
		return fmt.Errorf("%w: RemapThreshold %d", ErrBadRecoveryConfig, c.RemapThreshold)
	}
	if c.Adaptive != nil {
		if err := c.Adaptive.Validate(); err != nil {
			return err
		}
		if c.ScrubInterval == 0 {
			return fmt.Errorf("%w: adaptive scrub escalation needs a base ScrubInterval", ErrBadRecoveryConfig)
		}
	}
	return nil
}

// RecoveryStats counts the recovery subsystem's activity. It is part of
// ControllerStats, so the sim result carries one per SPM controller.
type RecoveryStats struct {
	// CorrectedOnAccess counts single-bit upsets repaired in-line by
	// ECC during controller accesses (DREs on the hot path).
	CorrectedOnAccess uint64
	// RefetchedWords counts clean-block DUE words recovered by a DRAM
	// re-fetch.
	RefetchedWords uint64
	// RefetchRetries counts re-fetch attempts beyond the first.
	RefetchRetries uint64
	// Rollbacks counts dirty-block DUE words restored under
	// DUERollback.
	Rollbacks uint64
	// SDCEscalations counts dirty-block DUE words consumed under
	// DUEAsSDC.
	SDCEscalations uint64
	// UnrecoveredDUEs counts DUE words left standing: recovery
	// disabled, or re-fetch retries exhausted.
	UnrecoveredDUEs uint64
	// ScrubRuns counts background scrub walks.
	ScrubRuns uint64
	// ScrubRepairs counts ECC-corrected words rewritten in place by the
	// scrubber.
	ScrubRepairs uint64
	// ScrubRefetches counts clean-resident DUE words the scrubber
	// recovered from DRAM.
	ScrubRefetches uint64
	// ScrubRestores counts DUE words the scrubber restored from the
	// checkpoint/golden copy (free-space words and dirty blocks under
	// DUERollback).
	ScrubRestores uint64
	// ScrubDUEs counts DUE words the scrubber found but could not
	// repair (dirty blocks under DUEAsSDC).
	ScrubDUEs uint64
	// WriteRetries counts write-verify retry attempts (STT-RAM
	// transient write failures).
	WriteRetries uint64
	// StuckWordEvents counts write-verify failures that remained after
	// retry: words observed holding permanently-stuck cells.
	StuckWordEvents uint64
	// Remaps counts blocks migrated out of a failing region into a
	// fallback region.
	Remaps uint64
	// Demotions counts blocks degraded out of the SPM entirely (no
	// fallback region could hold them; the cache hierarchy serves them
	// from then on).
	Demotions uint64
	// RetiredWords counts words permanently removed from allocation
	// because they hold stuck cells.
	RetiredWords uint64
	// RecoveryCycles is the total stall charged to recovery actions
	// (re-fetches, rollbacks, scrub walks, migrations).
	RecoveryCycles memtech.Cycles
	// FirstDegradedTick is the controller tick of the first remap or
	// demotion (0 = the structure never degraded). Ticks advance once
	// per Access/MapIn, so this is the paper-style time-to-degraded in
	// access counts.
	FirstDegradedTick uint64

	// Adaptive storm-defense activity (RecoveryConfig.Adaptive). All
	// fields are omitted from JSON when zero so non-storm reports and
	// their goldens stay byte-identical.

	// ScrubEscalations counts calm→escalated transitions of the
	// adaptive scrub governor.
	ScrubEscalations uint64 `json:",omitempty"`
	// ScrubDeescalations counts escalated→calm transitions.
	ScrubDeescalations uint64 `json:",omitempty"`
	// EscalatedAccesses counts controller accesses served while
	// escalated — the time spent in escalated scrub.
	EscalatedAccesses uint64 `json:",omitempty"`
	// EmergencyRefreshBlocks counts clean resident blocks re-fetched
	// whole by the escalation response.
	EmergencyRefreshBlocks uint64 `json:",omitempty"`
	// EmergencyRefreshWords counts the words those refreshes rewrote.
	EmergencyRefreshWords uint64 `json:",omitempty"`
	// StormBypasses counts blocks pushed down the degradation ladder
	// by the bypass trigger.
	StormBypasses uint64 `json:",omitempty"`
	// PeakWindowErrorRate is the highest detection rate observed in
	// any adaptive window (merged by max, not sum).
	PeakWindowErrorRate float64 `json:",omitempty"`
}

// Recovered returns the total error events the subsystem repaired.
func (s RecoveryStats) Recovered() uint64 {
	return s.CorrectedOnAccess + s.RefetchedWords + s.Rollbacks +
		s.ScrubRepairs + s.ScrubRefetches + s.ScrubRestores
}

// DUEs returns the total detected-uncorrectable words that recovery
// could not transparently repair (escalations included).
func (s RecoveryStats) DUEs() uint64 {
	return s.UnrecoveredDUEs + s.SDCEscalations + s.ScrubDUEs
}

// Add accumulates o into s (used to merge the two controllers' stats
// and to aggregate soak trials).
func (s *RecoveryStats) Add(o RecoveryStats) {
	s.CorrectedOnAccess += o.CorrectedOnAccess
	s.RefetchedWords += o.RefetchedWords
	s.RefetchRetries += o.RefetchRetries
	s.Rollbacks += o.Rollbacks
	s.SDCEscalations += o.SDCEscalations
	s.UnrecoveredDUEs += o.UnrecoveredDUEs
	s.ScrubRuns += o.ScrubRuns
	s.ScrubRepairs += o.ScrubRepairs
	s.ScrubRefetches += o.ScrubRefetches
	s.ScrubRestores += o.ScrubRestores
	s.ScrubDUEs += o.ScrubDUEs
	s.WriteRetries += o.WriteRetries
	s.StuckWordEvents += o.StuckWordEvents
	s.Remaps += o.Remaps
	s.Demotions += o.Demotions
	s.RetiredWords += o.RetiredWords
	s.RecoveryCycles += o.RecoveryCycles
	s.ScrubEscalations += o.ScrubEscalations
	s.ScrubDeescalations += o.ScrubDeescalations
	s.EscalatedAccesses += o.EscalatedAccesses
	s.EmergencyRefreshBlocks += o.EmergencyRefreshBlocks
	s.EmergencyRefreshWords += o.EmergencyRefreshWords
	s.StormBypasses += o.StormBypasses
	if o.PeakWindowErrorRate > s.PeakWindowErrorRate {
		s.PeakWindowErrorRate = o.PeakWindowErrorRate
	}
	if s.FirstDegradedTick == 0 ||
		(o.FirstDegradedTick != 0 && o.FirstDegradedTick < s.FirstDegradedTick) {
		s.FirstDegradedTick = o.FirstDegradedTick
	}
}

// WearConfig models STT-RAM write unreliability: the stochastic
// write failures of failure-aware STT-MRAM design (Pajouhi et al.,
// PAPERS.md) plus permanent wear-out. Every word write can fail
// transiently (the magnetic tunnel junction does not switch; a
// write-verify read catches it and the write retries) and can wear a
// cell out permanently (the cell sticks at its current value). Applied
// to STT-RAM regions via SPM.EnableWear; SRAM regions never wear.
type WearConfig struct {
	// WriteFailProb is the per-word probability that one write attempt
	// fails to switch and must be retried.
	WriteFailProb float64
	// MaxWriteRetries bounds verify-retry attempts per word write;
	// beyond it the word is left with an unswitched cell.
	MaxWriteRetries int
	// StuckAtProb is the per-word-write probability that one cell of
	// the word wears out and sticks permanently at its current value.
	StuckAtProb float64
	// Seed drives the wear process (per-region streams are derived
	// from it).
	Seed int64
}

// Validate checks the configuration.
func (c WearConfig) Validate() error {
	if c.WriteFailProb < 0 || c.WriteFailProb > 1 {
		return fmt.Errorf("%w: WriteFailProb %v", ErrBadWearConfig, c.WriteFailProb)
	}
	if c.StuckAtProb < 0 || c.StuckAtProb > 1 {
		return fmt.Errorf("%w: StuckAtProb %v", ErrBadWearConfig, c.StuckAtProb)
	}
	if c.MaxWriteRetries < 0 {
		return fmt.Errorf("%w: MaxWriteRetries %d", ErrBadWearConfig, c.MaxWriteRetries)
	}
	return nil
}
